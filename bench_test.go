// Benchmarks regenerating the paper's evaluation, one per table and
// figure, plus micro-benchmarks of the substrate. Run with:
//
//	go test -bench=. -benchmem
//
// The table benchmarks use reduced scales (see experiments.Options); the
// cmd/experiments binary regenerates the full versions.
package debugtuner_test

import (
	"io"
	"testing"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/debugger"
	"debugtuner/internal/experiments"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/synth"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
	"debugtuner/internal/vm"
	"debugtuner/internal/workerpool"
)

// benchOpts are one-notch-reduced scales so a full -bench=. run stays in
// the minutes range.
var benchOpts = experiments.Options{
	SynthCount:  30,
	CorpusExecs: 200,
	SampleEvery: 997,
	Dy:          []int{3, 5},
	SpecSubset:  []string{"505.mcf", "531.deepsjeng", "557.xz"},
}

// sharedRunner caches suite loading and pass analyses across benchmarks.
var sharedRunner = experiments.NewRunner(benchOpts)

func benchExperiment(b *testing.B, run func(io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- One benchmark per table and figure ----

func BenchmarkTable1MethodsOnSynthetic(b *testing.B) { benchExperiment(b, sharedRunner.Table1) }
func BenchmarkTable2Libpng(b *testing.B)             { benchExperiment(b, sharedRunner.Table2) }
func BenchmarkTable3SuiteStats(b *testing.B)         { benchExperiment(b, sharedRunner.Table3) }
func BenchmarkTable4SuiteQuality(b *testing.B)       { benchExperiment(b, sharedRunner.Table4) }
func BenchmarkTable5GccRanking(b *testing.B)         { benchExperiment(b, sharedRunner.Table5) }
func BenchmarkTable6ClangRanking(b *testing.B)       { benchExperiment(b, sharedRunner.Table6) }
func BenchmarkTable7PassCounts(b *testing.B)         { benchExperiment(b, sharedRunner.Table7) }
func BenchmarkFig2ParetoFront(b *testing.B)          { benchExperiment(b, sharedRunner.Fig2) }
func BenchmarkTable8ConfigDeltas(b *testing.B)       { benchExperiment(b, sharedRunner.Table8) }
func BenchmarkTable9GccPerProgram(b *testing.B)      { benchExperiment(b, sharedRunner.Table9) }
func BenchmarkTable10ClangPerProgram(b *testing.B)   { benchExperiment(b, sharedRunner.Table10) }
func BenchmarkTable11SpecSpeedups(b *testing.B)      { benchExperiment(b, sharedRunner.Table11) }
func BenchmarkTable12SpecRelative(b *testing.B)      { benchExperiment(b, sharedRunner.Table12) }
func BenchmarkFig3AutoFDO(b *testing.B)              { benchExperiment(b, sharedRunner.Fig3) }
func BenchmarkTable15AutoFDOFull(b *testing.B)       { benchExperiment(b, sharedRunner.Table15) }
func BenchmarkFig4AutoFDOLargeWorkload(b *testing.B) { benchExperiment(b, sharedRunner.Fig4) }

// ---- Evaluation-engine parallelism ----

// benchAnalyzeLevel measures the (program × pass) build/trace matrix of
// one level analysis at a fixed worker-pool size.
func benchAnalyzeLevel(b *testing.B, workers int) {
	b.Helper()
	subjects, err := testsuite.LoadAll(testsuite.CorpusOptions{Execs: benchOpts.CorpusExecs})
	if err != nil {
		b.Fatal(err)
	}
	progs := testsuite.Programs(subjects)
	workerpool.SetWorkers(workers)
	defer workerpool.SetWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.AnalyzeLevel(progs, pipeline.GCC, "O1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeLevelJ1(b *testing.B) { benchAnalyzeLevel(b, 1) }
func BenchmarkAnalyzeLevelJ4(b *testing.B) { benchAnalyzeLevel(b, 4) }

// ---- Substrate micro-benchmarks ----

// BenchmarkCompileO2 measures a full gcc-O2 build of zlib.
func BenchmarkCompileO2(b *testing.B) {
	src, err := testsuite.Source("zlib")
	if err != nil {
		b.Fatal(err)
	}
	info, err := pipeline.Frontend("zlib.mc", src)
	if err != nil {
		b.Fatal(err)
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Build(ir0, pipeline.MustConfig(pipeline.GCC, "O2"))
	}
}

// BenchmarkVMExecution measures raw interpreter throughput on deepsjeng.
func BenchmarkVMExecution(b *testing.B) {
	ir0, err := specsuite.LoadIR("531.deepsjeng")
	if err != nil {
		b.Fatal(err)
	}
	bin := pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2"))
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		m := vm.New(bin)
		m.StepBudget = 1 << 33
		if _, err := m.Call("main"); err != nil {
			b.Fatal(err)
		}
		steps = m.Steps
	}
	b.ReportMetric(float64(steps), "instructions/op")
}

// BenchmarkDebugTrace measures a full temporary-breakpoint session.
func BenchmarkDebugTrace(b *testing.B) {
	src, err := testsuite.Source("libyaml")
	if err != nil {
		b.Fatal(err)
	}
	bin, _, err := pipeline.CompileSource("libyaml.mc", src,
		pipeline.MustConfig(pipeline.GCC, "O1"))
	if err != nil {
		b.Fatal(err)
	}
	sess, err := debugger.NewSession(bin)
	if err != nil {
		b.Fatal(err)
	}
	inputs := [][]int64{{'k', ':', ' ', 'v', '\n', ' ', ' ', 'a', ':', 'b', '\n'}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Trace("fuzz_parse", inputs, 1<<22); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileCollection measures AutoFDO sampling overhead.
func BenchmarkProfileCollection(b *testing.B) {
	ir0, err := specsuite.LoadIR("557.xz")
	if err != nil {
		b.Fatal(err)
	}
	bin := pipeline.Build(ir0,
		pipeline.MustConfig(pipeline.Clang, "O2", pipeline.WithProfiling()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autofdo.Collect(bin, "main", 997); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthGeneration measures the Csmith-substitute generator.
func BenchmarkSynthGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = synth.Generate(int64(i), synth.DefaultOptions())
	}
}
