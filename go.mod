module debugtuner

go 1.22
