// Command debugtuner runs the end-to-end DebugTuner workflow (§III):
// load the test suite, build the per-pass disable matrix, rank the
// passes, construct Ox-dy configurations, and report the debuggability /
// performance trade-off.
//
// Usage:
//
//	debugtuner [flags]
//
//	-compiler gcc|clang   profile to tune (default gcc)
//	-level O1|O2|...      level to tune (default O2)
//	-dy 3,5,7,9           configuration sizes
//	-top 10               ranking rows to print
//	-perf                 also measure SPEC speedups per configuration
//
// plus the shared runtime flags (-j, -cachedir, -trace, -metrics,
// -journal, -resume, -chaos, -cell-timeout, -retries) of
// internal/options. The result tables are rendered from the same
// internal/api structs the tunerd server serves, so CLI output and
// service responses cannot drift.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"debugtuner/internal/api"
	"debugtuner/internal/options"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
)

func main() {
	compiler := flag.String("compiler", "gcc", "profile to tune")
	level := flag.String("level", "O2", "optimization level to tune")
	dyArg := flag.String("dy", "3,5,7,9", "Ox-dy sizes, comma separated")
	top := flag.Int("top", 10, "ranking rows to print")
	perf := flag.Bool("perf", false, "measure SPEC speedups per configuration")
	execs := flag.Int("execs", 400, "fuzzing executions per harness")
	greedy := flag.Int("greedy", 0, "also run a greedy subset search up to N passes")
	shared := options.Install(flag.CommandLine)
	flag.Parse()
	rt, err := shared.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "debugtuner:", err)
		if options.IsUsage(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	// fail is a closure so every os.Exit stays lexically inside main —
	// the lint exit-owner rule's single-owner contract.
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "debugtuner:", err)
		os.Exit(1)
	}

	profile := pipeline.Profile(*compiler)
	var dys []int
	for _, s := range strings.Split(*dyArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fail(err)
		}
		dys = append(dys, n)
	}

	fmt.Printf("loading test suite (%d programs, %d execs per harness)...\n",
		len(testsuite.Names), *execs)
	subjects, err := testsuite.LoadAll(testsuite.CorpusOptions{Execs: *execs})
	if err != nil {
		fail(err)
	}
	progs := testsuite.Programs(subjects)

	fmt.Printf("analyzing %s-%s: one rebuild per pass per program...\n", profile, *level)
	la, err := tuner.AnalyzeLevel(progs, profile, *level)
	if err != nil {
		fail(err)
	}

	res := &api.TuneResult{
		Profile:             string(profile),
		Level:               *level,
		Positive:            la.Positive,
		Neutral:             la.Neutral,
		Negative:            la.Negative,
		Ranking:             api.RankedPassesFrom(la.Ranking),
		QuarantinedSubjects: la.QuarantinedPrograms,
		QuarantinedCells:    la.QuarantinedCells,
	}
	for _, p := range progs {
		res.Subjects = append(res.Subjects, p.Name)
	}

	ref, err := meanProduct(progs, pipeline.MustConfig(profile, *level))
	if err != nil {
		fail(err)
	}
	res.Reference = api.TunedConfig{Name: *level, Product: ref}
	if *perf {
		_, spd, err := specsuite.SuiteSpeedup(pipeline.MustConfig(profile, *level), nil)
		if err != nil {
			fail(err)
		}
		res.Reference.Speedup = &spd
	}
	for _, cfg := range la.Configs(dys) {
		avg, err := meanProduct(progs, cfg)
		if err != nil {
			fail(err)
		}
		tc := api.TunedConfig{
			Name:     cfg.Name(),
			Disabled: api.SortedNames(cfg.Disabled),
			Product:  avg,
			DeltaPct: 100 * (avg - ref) / ref,
		}
		if *perf {
			_, spd, err := specsuite.SuiteSpeedup(cfg, nil)
			if err != nil {
				fail(err)
			}
			tc.Speedup = &spd
		}
		res.Configs = append(res.Configs, tc)
	}
	api.RenderTuneResult(os.Stdout, res, *top)

	if *greedy > 0 {
		fmt.Printf("\ngreedy subset search (<= %d passes)\n", *greedy)
		steps, gcfg, err := la.GreedySelect(progs, *greedy, 0.0005)
		if err != nil {
			fail(err)
		}
		for i, s := range steps {
			fmt.Printf("%2d. disable %-26s -> product %.4f\n", i+1, s.Pass, s.Product)
		}
		fmt.Printf("final: %s disabling %s\n", gcfg.Name(),
			strings.Join(api.SortedNames(gcfg.Disabled), ", "))
	}

	code, err := rt.Finish(os.Stdout)
	if err != nil {
		fail(err)
	}
	os.Exit(code)
}

func meanProduct(progs []*tuner.Program, cfg pipeline.Config) (float64, error) {
	sum := 0.0
	for _, p := range progs {
		m, err := p.Product(cfg)
		if err != nil {
			return 0, err
		}
		sum += m
	}
	return sum / float64(len(progs)), nil
}
