// Command debugtuner runs the end-to-end DebugTuner workflow (§III):
// load the test suite, build the per-pass disable matrix, rank the
// passes, construct Ox-dy configurations, and report the debuggability /
// performance trade-off.
//
// Usage:
//
//	debugtuner [flags]
//
//	-compiler gcc|clang   profile to tune (default gcc)
//	-level O1|O2|...      level to tune (default O2)
//	-dy 3,5,7,9           configuration sizes
//	-top 10               ranking rows to print
//	-perf                 also measure SPEC speedups per configuration
//	-trace out.json       write spans/counters as Chrome trace-event JSON
//	-metrics out.json     write a JSON telemetry summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
)

func main() {
	compiler := flag.String("compiler", "gcc", "profile to tune")
	level := flag.String("level", "O2", "optimization level to tune")
	dyArg := flag.String("dy", "3,5,7,9", "Ox-dy sizes, comma separated")
	top := flag.Int("top", 10, "ranking rows to print")
	perf := flag.Bool("perf", false, "measure SPEC speedups per configuration")
	execs := flag.Int("execs", 400, "fuzzing executions per harness")
	greedy := flag.Int("greedy", 0, "also run a greedy subset search up to N passes")
	tracePath := flag.String("trace", "",
		"write spans and counters as Chrome trace-event JSON to this file")
	metricsPath := flag.String("metrics", "",
		"write a JSON telemetry summary to this file")
	flag.Parse()
	var snk *telemetry.Sink
	if *tracePath != "" || *metricsPath != "" {
		snk = telemetry.Enable()
	}

	profile := pipeline.Profile(*compiler)
	var dys []int
	for _, s := range strings.Split(*dyArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fail(err)
		}
		dys = append(dys, n)
	}

	fmt.Printf("loading test suite (%d programs, %d execs per harness)...\n",
		len(testsuite.Names), *execs)
	subjects, err := testsuite.LoadAll(testsuite.CorpusOptions{Execs: *execs})
	if err != nil {
		fail(err)
	}
	progs := testsuite.Programs(subjects)

	fmt.Printf("analyzing %s-%s: one rebuild per pass per program...\n", profile, *level)
	la, err := tuner.AnalyzeLevel(progs, profile, *level)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\npass ranking for %s-%s (%d toggles; %d improve, %d neutral, %d degrade)\n",
		profile, *level, len(la.Ranking), la.Positive, la.Neutral, la.Negative)
	fmt.Printf("%-3s %-28s %10s %9s\n", "#", "pass", "avg rank", "Δ%")
	for i, rp := range la.Ranking {
		if i >= *top {
			break
		}
		name := rp.Display
		if rp.Backend {
			name += " *"
		}
		fmt.Printf("%-3d %-28s %10.2f %+8.2f\n", i+1, name, rp.AvgRank, rp.GeoIncrementPct)
	}

	fmt.Printf("\nconfigurations (suite-average hybrid product metric)\n")
	ref := 0.0
	for _, p := range progs {
		m, err := p.Product(pipeline.MustConfig(profile, *level))
		if err != nil {
			fail(err)
		}
		ref += m
	}
	ref /= float64(len(progs))
	fmt.Printf("%-10s product=%.4f", *level, ref)
	if *perf {
		_, spd, err := specsuite.SuiteSpeedup(pipeline.MustConfig(profile, *level), nil)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  speedup=%.2fx", spd)
	}
	fmt.Println()
	for _, cfg := range la.Configs(dys) {
		sum := 0.0
		for _, p := range progs {
			m, err := p.Product(cfg)
			if err != nil {
				fail(err)
			}
			sum += m
		}
		avg := sum / float64(len(progs))
		fmt.Printf("%-10s product=%.4f (%+.2f%%)", cfg.Name(), avg, 100*(avg-ref)/ref)
		if *perf {
			_, spd, err := specsuite.SuiteSpeedup(cfg, nil)
			if err != nil {
				fail(err)
			}
			fmt.Printf("  speedup=%.2fx", spd)
		}
		fmt.Println()
		fmt.Printf("           disabled: %s\n", strings.Join(sortedNames(cfg.Disabled), ", "))
	}

	if *greedy > 0 {
		fmt.Printf("\ngreedy subset search (<= %d passes)\n", *greedy)
		steps, gcfg, err := la.GreedySelect(progs, *greedy, 0.0005)
		if err != nil {
			fail(err)
		}
		for i, s := range steps {
			fmt.Printf("%2d. disable %-26s -> product %.4f\n", i+1, s.Pass, s.Product)
		}
		fmt.Printf("final: %s disabling %s\n", gcfg.Name(),
			strings.Join(sortedNames(gcfg.Disabled), ", "))
	}

	if snk != nil {
		if err := telemetry.ExportFiles(snk, *tracePath, *metricsPath); err != nil {
			fail(err)
		}
	}
}

func sortedNames(m map[string]bool) []string {
	var out []string
	for n := range m {
		out = append(out, n)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "debugtuner:", err)
	os.Exit(1)
}
