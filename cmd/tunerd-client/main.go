// Command tunerd-client is the CLI counterpart of the tunerd server.
// It speaks the versioned wire format of internal/api and renders
// responses with the same text renderers cmd/debugtuner and
// cmd/experiments use, so tuning a program over HTTP prints the same
// tables the batch tools do.
//
// Usage:
//
//	tunerd-client -addr host:port <command> [flags] [file.mc ...]
//
// Commands:
//
//	tune    -profile gcc -level O2 [-dy 3,5,7,9] [-top N] [-raw] files...
//	pareto  -profile gcc -level O2 [-dy 3,5,7,9] [-raw] files...
//	report  [-configs levels] [-raw] files...
//	load    [-n 1000] [-c 100] [-distinct 8] [-profile gcc] [-level O2] [-o out.json]
//	metrics
//	quarantine
//	health
//
// -raw prints the server's response body verbatim (the ci.sh
// byte-determinism gate compares these). load fires a synthetic
// concurrent load at the server and writes the throughput/latency
// summary — as an api envelope — to -o (BENCH_serve.json in CI).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"debugtuner/internal/api"
	"debugtuner/internal/serve"
)

// errUsage marks command-line mistakes; main maps it to exit code 2,
// keeping the 0/1/2 exit contract in the one function allowed to exit.
var errUsage = errors.New("usage")

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "tunerd server address")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	c := api.NewClient(*addr)
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "tune":
		err = runTune(c, args)
	case "pareto":
		err = runPareto(c, args)
	case "report":
		err = runReport(c, args)
	case "load":
		err = runLoad(*addr, args)
	case "metrics":
		var raw []byte
		if raw, err = c.Metrics(); err == nil {
			os.Stdout.Write(raw)
		}
	case "quarantine":
		var raw []byte
		if _, raw, err = c.Quarantine(); err == nil {
			os.Stdout.Write(raw)
		}
	case "health":
		if err = c.Healthz(); err == nil {
			fmt.Println("ok")
		}
	default:
		fmt.Fprintf(os.Stderr, "tunerd-client: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tunerd-client:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: tunerd-client -addr host:port {tune|pareto|report|load|metrics|quarantine|health} [flags] [file.mc ...]")
}

// readUnits loads the positional .mc files as request units, named by
// their base filename.
func readUnits(paths []string) ([]api.Unit, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: at least one .mc file is required", errUsage)
	}
	var units []api.Unit
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(p), ".mc")
		units = append(units, api.Unit{Name: name, Source: string(src)})
	}
	return units, nil
}

func parseDy(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var dys []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("%w: -dy: %v", errUsage, err)
		}
		dys = append(dys, n)
	}
	return dys, nil
}

func runTune(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	profile := fs.String("profile", "gcc", "compiler profile")
	level := fs.String("level", "O2", "optimization level")
	dy := fs.String("dy", "", "Ox-dy sizes, comma separated (default server's)")
	top := fs.Int("top", 0, "ranking rows to print (0 = all)")
	raw := fs.Bool("raw", false, "print the raw response body")
	fs.Parse(args)
	dys, err := parseDy(*dy)
	if err != nil {
		return err
	}
	units, err := readUnits(fs.Args())
	if err != nil {
		return err
	}
	req := &api.TuneRequest{Profile: *profile, Level: *level, Dy: dys, Units: units}
	res, rawBody, err := c.Tune(req)
	if err != nil {
		return err
	}
	if *raw {
		os.Stdout.Write(rawBody)
		return nil
	}
	api.RenderTuneResult(os.Stdout, res, *top)
	return nil
}

func runPareto(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("pareto", flag.ExitOnError)
	profile := fs.String("profile", "gcc", "compiler profile")
	level := fs.String("level", "O2", "optimization level")
	dy := fs.String("dy", "", "Ox-dy sizes, comma separated (default server's)")
	raw := fs.Bool("raw", false, "print the raw response body")
	fs.Parse(args)
	dys, err := parseDy(*dy)
	if err != nil {
		return err
	}
	units, err := readUnits(fs.Args())
	if err != nil {
		return err
	}
	req := &api.TuneRequest{Profile: *profile, Level: *level, Dy: dys, Units: units}
	res, rawBody, err := c.Pareto(req)
	if err != nil {
		return err
	}
	if *raw {
		os.Stdout.Write(rawBody)
		return nil
	}
	api.RenderPareto(os.Stdout, fmt.Sprintf(
		"Pareto (%s-%s) — product metric vs speedup over O0; * = Pareto-optimal",
		res.Profile, res.Level), res)
	return nil
}

func runReport(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	configs := fs.String("configs", "levels",
		"difftest matrix: full, levels, or a comma list like gcc-O2,clang-O3*")
	raw := fs.Bool("raw", false, "print the raw response body")
	fs.Parse(args)
	units, err := readUnits(fs.Args())
	if err != nil {
		return err
	}
	req := &api.ReportRequest{Configs: *configs, Units: units}
	res, rawBody, err := c.Report(req)
	if err != nil {
		return err
	}
	if *raw {
		os.Stdout.Write(rawBody)
		return nil
	}
	api.RenderDebugReport(os.Stdout, res)
	return nil
}

func runLoad(addr string, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	n := fs.Int("n", 1000, "total requests")
	conc := fs.Int("c", 100, "concurrent workers")
	distinct := fs.Int("distinct", 8, "distinct request bodies to cycle through")
	profile := fs.String("profile", "gcc", "compiler profile for generated requests")
	level := fs.String("level", "O2", "optimization level for generated requests")
	out := fs.String("o", "", "also write the summary as an api envelope to this file")
	fs.Parse(args)
	lr, err := serve.RunLoad(serve.LoadOptions{
		Addr: addr, Requests: *n, Concurrency: *conc, Distinct: *distinct,
		Profile: *profile, Level: *level,
	})
	if err != nil {
		return err
	}
	api.RenderLoadReport(os.Stdout, lr)
	if *out != "" {
		body, err := api.MarshalEnvelope(&api.Envelope{Kind: "load", Load: lr})
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, body, 0o644); err != nil {
			return err
		}
	}
	if lr.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", lr.Errors, lr.Requests)
	}
	return nil
}
