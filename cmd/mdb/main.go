// Command mdb is the MiniC source-level debugger used for trace
// extraction, exposed as a small CLI.
//
// Usage:
//
//	mdb [flags] file.mc
//
//	-profile gcc|clang, -O <level>, -fno <pass>: build configuration
//	-entry <func>        entry function (default main)
//	-trace               run a full temporary-breakpoint session and
//	                     print the per-line trace (line: variables)
//	-break <line>        stop at the first hit of a line and print the
//	                     visible variables with values
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"debugtuner/internal/debugger"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/sema"
	"debugtuner/internal/vm"
)

// main owns the exit codes (2 usage, 1 failure); everything below it
// reports errors by return.
func main() {
	profile := flag.String("profile", "gcc", "compiler profile")
	level := flag.String("O", "0", "optimization level")
	var disabled []string
	flag.Func("fno", "disable a pass (repeatable)", func(v string) error {
		disabled = append(disabled, v)
		return nil
	})
	entry := flag.String("entry", "main", "entry function")
	trace := flag.Bool("trace", false, "print the full debug trace")
	breakLine := flag.Int("break", 0, "inspect variables at this line")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mdb [flags] file.mc")
		os.Exit(2)
	}
	if err := run(*profile, *level, disabled, *entry, *trace, *breakLine); err != nil {
		fmt.Fprintln(os.Stderr, "mdb:", err)
		os.Exit(1)
	}
}

func run(profile, level string, disabled []string, entry string, trace bool, breakLine int) error {
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	lvl := "O" + strings.ToUpper(level)
	if level == "g" {
		lvl = "Og"
	}
	cfg, err := pipeline.NewConfig(pipeline.Profile(profile), lvl,
		pipeline.Disable(disabled...))
	if err != nil {
		return err
	}
	bin, info, err := pipeline.CompileSource(flag.Arg(0), src, cfg)
	if err != nil {
		return err
	}
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s (%s): %d steppable lines\n",
		flag.Arg(0), cfg.Name(), sess.SteppableLines())

	if breakLine > 0 {
		return inspectAt(sess, bin, entry, breakLine, info)
	}
	if trace {
		tr, err := sess.TraceMain(entry, 1<<32)
		if err != nil {
			return err
		}
		names := info.SymbolNames()
		for _, line := range tr.Lines() {
			var vars []string
			for id := range tr.Avail[line] {
				vars = append(vars, names[id])
			}
			sort.Strings(vars)
			fmt.Printf("line %4d: %s\n", line, strings.Join(vars, " "))
		}
		fmt.Printf("stepped %d of %d steppable lines\n", len(tr.Stepped), tr.Steppable)
	}
	return nil
}

// inspectAt stops at the first address of the line and prints variables.
func inspectAt(sess *debugger.Session, bin *vm.Binary, entry string, line int, info *sema.Info) error {
	names := info.SymbolNames()
	addrs := sess.Table.BreakAddrs()[line]
	if len(addrs) == 0 {
		return fmt.Errorf("line %d is not steppable in this build", line)
	}
	m := vm.New(bin)
	m.StepBudget = 1 << 32
	for _, a := range addrs {
		m.SetBreak(int(a))
	}
	hit := false
	m.OnBreak = func(m *vm.Machine, addr int) {
		if hit {
			return
		}
		hit = true
		fmt.Printf("stopped at line %d (address %d)\n", line, addr)
		var ordered []string
		for _, name := range names {
			ordered = append(ordered, name)
		}
		sort.Strings(ordered)
		for i, name := range ordered {
			if i > 0 && name == ordered[i-1] {
				continue
			}
			if v, ok := sess.ReadVar(m, name, uint32(addr)); ok {
				fmt.Printf("  %s = %d\n", name, v)
			}
		}
		m.ClearAllBreaks()
	}
	if _, err := m.Call(entry); err != nil {
		return err
	}
	if !hit {
		fmt.Println("line never reached")
	}
	return nil
}
