// Command minicc is the MiniC compiler driver.
//
// Usage:
//
//	minicc [flags] file.mc
//
//	-profile gcc|clang   compiler personality (default gcc)
//	-O 0|g|1|2|3         optimization level (default 0)
//	-fno-<pass>          disable one pass (repeatable), e.g. -fno-inline
//	-fdebug-info-for-profiling
//	-run [func]          execute the named function (default main) and
//	                     print the output and cycle count
//	-verify-each         run ir.Verify plus the staticdbg analyzer after
//	                     every pass/stage; violations exit 3
//	-emit-ir             print the optimized IR instead of compiling
//	-dump-debug          print the debug-information section
//	-text-hash           print the .text identity hash
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/options"
	"debugtuner/internal/passes"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/vm"
)

// disabledFlags collects repeated -fno-<pass> style toggles.
type disabledFlags map[string]bool

func (d disabledFlags) String() string {
	var names []string
	for n := range d {
		names = append(names, n)
	}
	return strings.Join(names, ",")
}

func (d disabledFlags) Set(v string) error {
	if passes.Lookup(v) == nil {
		return fmt.Errorf("unknown pass %q", v)
	}
	d[v] = true
	return nil
}

func main() {
	profile := flag.String("profile", "gcc", "compiler profile: gcc or clang")
	level := flag.String("O", "0", "optimization level: 0, g, 1, 2, 3")
	disabled := disabledFlags{}
	flag.Var(disabled, "fno", "disable a pass by name (repeatable)")
	forProfiling := flag.Bool("fdebug-info-for-profiling", false,
		"emit extra debug info for sample profiling")
	run := flag.String("run", "", "execute this function after compiling")
	verifyEach := flag.Bool("verify-each", false,
		"run ir.Verify plus the static debug-info analyzer after every pass "+
			"and back-end stage; violations exit 3 (distinct from hard failure)")
	emitIR := flag.Bool("emit-ir", false, "print the optimized IR")
	dumpDebug := flag.Bool("dump-debug", false, "print the debug section")
	textHash := flag.Bool("text-hash", false, "print the .text hash")
	shared := options.Install(flag.CommandLine)
	flag.Parse()
	rt, err := shared.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		if options.IsUsage(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	// fail and exit are closures so every os.Exit stays lexically inside
	// main — the lint exit-owner rule's single-owner contract.
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "minicc:", err)
		os.Exit(1)
	}
	// exit merges the command's own code with the shared runtime's
	// (quarantine report, telemetry export) and terminates.
	exit := func(code int) {
		c, err := rt.Finish(os.Stdout)
		if err != nil {
			fail(err)
		}
		if code == 0 {
			code = c
		}
		os.Exit(code)
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [flags] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	lvl := "O" + strings.ToUpper(*level)
	if *level == "g" {
		lvl = "Og"
	}
	copts := []pipeline.Option{pipeline.DisableSet(disabled)}
	if *forProfiling {
		copts = append(copts, pipeline.WithProfiling())
	}
	cfg, err := pipeline.NewConfig(pipeline.Profile(*profile), lvl, copts...)
	if err != nil {
		fail(err)
	}
	info, err := pipeline.Frontend(flag.Arg(0), src)
	if err != nil {
		fail(err)
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		fail(err)
	}
	if *emitIR {
		prog, _ := pipeline.OptimizeIR(ir0, cfg)
		for _, f := range prog.Funcs {
			fmt.Print(f.String())
		}
		exit(0)
	}
	if *verifyEach {
		rep := pipeline.BuildVerified(ir0, cfg, false)
		fmt.Printf("verify-each %s %s: baseline lines=%d vars=%d -> binary lines=%d vars=%d\n",
			flag.Arg(0), cfg.Name(), rep.Total.Lines, rep.Total.Vars,
			rep.Final.Lines, rep.Final.Vars)
		for _, st := range rep.Steps {
			if st.LinesLost == 0 && st.VarsLost == 0 &&
				len(st.NewViolations) == 0 && st.VerifyErr == "" {
				continue
			}
			fmt.Printf("  %-24s lines-%-4d vars-%-4d violations=%d\n",
				st.Label, st.LinesLost, st.VarsLost, len(st.NewViolations))
			if st.VerifyErr != "" {
				fmt.Printf("  %-24s ir.Verify: %s\n", st.Label, st.VerifyErr)
			}
		}
		viols := rep.Violations()
		staticdbg.Render(os.Stdout, "FAIL ", viols)
		errs := rep.VerifyErrs()
		for _, e := range errs {
			fmt.Println("FAIL ir.Verify:", e)
		}
		if len(viols)+len(errs) > 0 {
			// Distinct from fail()'s exit 1: the build completed, the
			// metadata it produced is what's broken.
			exit(3)
		}
		fmt.Println("PASS")
		exit(0)
	}
	bin := pipeline.Build(ir0, cfg)
	if *textHash {
		fmt.Printf("%016x\n", bin.TextHash())
	}
	if *dumpDebug {
		table, err := debuginfo.Decode(bin.Debug)
		if err != nil {
			fail(err)
		}
		fmt.Printf("functions: %d, line rows: %d, variables: %d\n",
			len(table.Funcs), len(table.Lines), len(table.Vars))
		for _, f := range table.Funcs {
			fmt.Printf("func %-16s [%d,%d) start line %d prologue end %d\n",
				f.Name, f.Start, f.End, f.StartLine, f.PrologueEnd)
		}
		for _, v := range table.Vars {
			fmt.Printf("var %-12s sym=%d func=%d entries=%d\n",
				v.Name, v.SymID, v.FuncIdx, len(v.Entries))
			for _, e := range v.Entries {
				fmt.Printf("    [%6d,%6d) %s %d\n", e.Start, e.End, e.Kind, e.Operand)
			}
		}
	}
	if *run != "" {
		m := vm.New(bin)
		m.StepBudget = 1 << 34
		ret, err := m.Call(*run)
		if err != nil {
			fail(err)
		}
		for _, v := range m.Output() {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "return=%d cycles=%d instructions=%d code=%d\n",
			ret, m.Cycles, m.Steps, len(bin.Code))
	}
	if !*textHash && !*dumpDebug && *run == "" {
		fmt.Fprintf(os.Stderr, "compiled %s: %d instructions, %d functions (%s)\n",
			flag.Arg(0), len(bin.Code), len(bin.Funcs), cfg.Name())
	}
	exit(0)
}
