// Command lint runs the repo-local static analyzer over the module and
// exits 1 if it finds anything; see internal/lint for the rule set.
//
// Usage:
//
//	lint [-root dir]
package main

import (
	"flag"
	"fmt"
	"os"

	"debugtuner/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	flag.Parse()
	l, err := lint.New(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	findings, err := l.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d findings\n", len(findings))
		os.Exit(1)
	}
}
