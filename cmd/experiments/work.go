package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"debugtuner/internal/options"
	"debugtuner/internal/resilience"
)

// workMain is the `experiments work` supervisor: it re-execs -workers N
// copies of this binary against a shared journal directory, where the
// workers lease (subject × config) cells, checkpoint results to
// per-worker journals, and re-lease expired cells from crashed peers.
// Once the fleet exits, the supervisor merges the worker journals and
// renders stdout by resuming from the merge in-process — every journaled
// cell replays, anything missing (a cell lost with a killed worker
// before any peer re-leased it, or FDO cells outside the fingerprint
// domain) is recomputed — so the output is byte-identical to a
// single-process run.
func workMain(argv []string) int {
	c := newCLI("experiments work")
	workers := c.fs.Int("workers", 2, "worker processes to spawn")
	killWorker := c.fs.String("kill-worker", "",
		"test hook: I:DUR — kill -9 worker I after DUR, exercising lease expiry and re-leasing")
	keepWork := c.fs.Bool("keep-work", false,
		"keep the work directory (worker journals, lease ledger, logs) after success")
	c.fs.Parse(argv)
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "experiments work:", err)
		return 1
	}
	usage := func(msg string) int {
		fmt.Fprintln(os.Stderr, "experiments work:", msg)
		return 2
	}
	if *workers < 1 {
		return usage("-workers must be >= 1")
	}
	if *c.shared.Journal != "" || *c.shared.Resume != "" {
		return usage("-journal/-resume are owned by the supervisor; use -work-dir to place the work directory")
	}
	if *c.shared.WorkID != "" {
		return usage("-work-id is assigned by the supervisor")
	}
	killIdx, killAfter, err := parseKillWorker(*killWorker)
	if err != nil {
		return usage(err.Error())
	}

	dir := *c.shared.WorkDir
	madeTemp := false
	if dir == "" {
		dir, err = os.MkdirTemp("", "experiments-work-")
		if err != nil {
			return fail(err)
		}
		madeTemp = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}
	exps := c.fs.Args()

	// Workers get exactly the flags the user set (supervisor-only and
	// profile flags excluded — N workers sharing one pprof path would
	// clobber it), plus their work-dir identity.
	var passthrough []string
	c.fs.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "workers", "kill-worker", "keep-work",
			"work-dir", "work-id", "journal", "resume",
			"cpuprofile", "memprofile":
			return
		}
		passthrough = append(passthrough, "-"+fl.Name+"="+fl.Value.String())
	})
	exe, err := os.Executable()
	if err != nil {
		return fail(err)
	}

	type worker struct {
		cmd *exec.Cmd
		log *os.File
	}
	procs := make([]worker, *workers)
	for i := range procs {
		args := append([]string{}, passthrough...)
		args = append(args,
			"-work-dir="+dir,
			fmt.Sprintf("-work-id=w%d", i))
		args = append(args, exps...)
		logf, err := os.Create(filepath.Join(dir, fmt.Sprintf("w%d.log", i)))
		if err != nil {
			return fail(err)
		}
		cmd := exec.Command(exe, args...)
		cmd.Stdout = logf
		cmd.Stderr = logf
		if err := cmd.Start(); err != nil {
			logf.Close()
			return fail(fmt.Errorf("start worker %d: %w", i, err))
		}
		procs[i] = worker{cmd: cmd, log: logf}
	}
	// Graceful-stop plumbing: the first SIGINT/SIGTERM marks the run
	// interrupted; SIGTERM (delivered to the supervisor alone) is
	// forwarded so workers drain and flush their journals. SIGINT is not
	// forwarded — the terminal already delivered it to the whole process
	// group, and a second signal would kill a worker mid-flush (each
	// worker uninstalls its handler after the first).
	var interrupted atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		signal.Stop(sigCh)
		interrupted.Store(true)
		if sig == syscall.SIGTERM {
			for _, p := range procs {
				p.cmd.Process.Signal(syscall.SIGTERM)
			}
		}
	}()
	if killIdx >= 0 {
		if killIdx >= len(procs) {
			return usage(fmt.Sprintf("-kill-worker index %d out of range", killIdx))
		}
		victim := procs[killIdx].cmd
		time.AfterFunc(killAfter, func() {
			// SIGKILL, not SIGTERM: the point is a worker that dies
			// mid-append without any cleanup. Killing an already-exited
			// worker is a no-op, which keeps the hook race-free.
			victim.Process.Kill()
		})
	}

	failed := 0
	for i, p := range procs {
		err := p.cmd.Wait()
		p.log.Close()
		// Exit 0 (clean), 3 (completed with quarantined cells), and 4
		// (interrupted after a journal flush) are all useful journals;
		// anything else — including a kill — means this worker's
		// unclaimed cells were re-leased by peers or will be recomputed
		// during the render.
		code := p.cmd.ProcessState.ExitCode()
		if err != nil && code != 3 && code != 4 {
			fmt.Fprintf(os.Stderr, "experiments work: worker %d: %v (its leases expire and peers take over)\n", i, err)
			failed++
		}
	}
	if failed == len(procs) && !interrupted.Load() {
		return fail(fmt.Errorf("all %d workers failed; see %s/w*.log", failed, dir))
	}

	recs, err := resilience.MergeDir(dir)
	if err != nil {
		return fail(err)
	}
	merged := filepath.Join(dir, "merged.jsonl")
	if err := resilience.WriteMerged(merged, recs); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "experiments work: merged %d cells from %d workers\n", len(recs), len(procs))

	// An interrupted fleet stops here: rendering would recompute every
	// cell the drained workers never reached, the opposite of a graceful
	// stop. The merge above is the checkpoint — a later run resumes from
	// it and only computes the remainder.
	if interrupted.Load() {
		fmt.Fprintf(os.Stderr,
			"experiments work: interrupted; resume with -resume %s\n", merged)
		return options.ExitInterrupted
	}

	// Render: resume from the merged journal in this process. Journaled
	// cells replay; anything missing recomputes here, so the output is
	// complete and byte-identical to the single-process run either way.
	*c.shared.WorkDir = ""
	*c.shared.WorkID = ""
	*c.shared.Resume = merged
	if err := startProfiles(c); err != nil {
		return fail(err)
	}
	rt, err := c.shared.Build()
	if err != nil {
		if options.IsUsage(err) {
			return usage(err.Error())
		}
		return fail(err)
	}
	// The fleet is done; the render phase handles its own signals (the
	// fleet handler above stays parked on a dead channel).
	signal.Stop(sigCh)
	c.interrupt = options.NotifyInterrupt()
	code := runExperiments(c, rt, exps)
	if code == 0 && madeTemp && !*keepWork {
		os.RemoveAll(dir)
	}
	return code
}

// parseKillWorker parses the I:DUR test hook ("" = disabled).
func parseKillWorker(s string) (idx int, after time.Duration, err error) {
	if s == "" {
		return -1, 0, nil
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return -1, 0, fmt.Errorf("-kill-worker wants I:DUR, got %q", s)
	}
	idx, err = strconv.Atoi(s[:i])
	if err != nil || idx < 0 {
		return -1, 0, fmt.Errorf("-kill-worker index %q", s[:i])
	}
	after, err = time.ParseDuration(s[i+1:])
	if err != nil {
		return -1, 0, fmt.Errorf("-kill-worker duration %q: %v", s[i+1:], err)
	}
	return idx, after, nil
}
