// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [table1 table2 table3 table4 table5 table6 table7
//	                     fig2 table8 table9 table10 table11 table12
//	                     fig3 table15 fig4 passreport | all]
//
// Flags scale the evaluation; the defaults finish in minutes. Outputs are
// plain-text tables matching the paper's rows.
//
// passreport (not part of "all": its wall-clock column is
// nondeterministic) prints the per-pass debug-damage ledger for the
// -profile/-level build of the test suite. -trace and -metrics write a
// Chrome trace-event file and a JSON telemetry summary for any run;
// stdout stays byte-identical whether or not telemetry is enabled.
//
// difftest (not part of "all": it is a correctness gate, not a paper
// table) cross-checks -seeds synthetic programs and the whole test suite
// across the -configs matrix and reports behavior mismatches and
// debug-info invariant violations; see internal/difftest.
//
// debugify (not part of "all": it is the static verification gate)
// runs a debugify-style verified build of every (subject, config) cell
// — synthetic metadata injected, ir.Verify plus the staticdbg analyzer
// after every pass and back-end stage — and prints per-config survival
// and the per-pass static preservation scoreboard; violations exit 1.
// Scope with -dbg-subjects/-dbg-profile/-dbg-level; -dbg-verify=false
// builds the same matrix plainly (the bench baseline).
//
// The resilience flags (-retries, -cell-timeout, -chaos, -journal,
// -resume) wrap every evaluation cell in the fault-tolerant layer of
// internal/resilience: cells that panic, stall, or fail transiently are
// retried and, on exhaustion, quarantined rather than fatal. A run that
// completes with quarantined cells prints a QUARANTINED(n) report and
// exits 3; -journal checkpoints completed cells to an append-only JSONL
// file, and -resume replays it, rerunning only incomplete or quarantined
// cells. Without these flags nothing is installed and output is
// byte-identical to the pre-resilience harness.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"debugtuner/internal/difftest"
	"debugtuner/internal/experiments"
	"debugtuner/internal/options"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/testsuite"
)

// Profiling state flushed by stopProfiles on every exit path.
var (
	cpuProfileFile *os.File
	memProfilePath string
)

// stopProfiles finalizes the -cpuprofile and -memprofile outputs. It is
// safe to call when profiling was never started.
func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
		cpuProfileFile = nil
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
		}
		f.Close()
		memProfilePath = ""
	}
}

func main() {
	opts := experiments.DefaultOptions()
	flag.IntVar(&opts.SynthCount, "synth", opts.SynthCount,
		"synthetic programs for Table I (paper: 5000)")
	flag.IntVar(&opts.CorpusExecs, "execs", opts.CorpusExecs,
		"fuzzing executions per harness")
	flag.Int64Var(&opts.SampleEvery, "sample-every", opts.SampleEvery,
		"AutoFDO sampling period in cycles")
	quick := flag.Bool("quick", false,
		"shrink every knob for a fast smoke run")
	timings := flag.Bool("timings", false,
		"print per-experiment wall-clock to stderr (stdout stays byte-identical)")
	prProfile := flag.String("profile", "gcc",
		"compiler profile for the passreport experiment")
	prLevel := flag.String("level", "O2",
		"optimization level for the passreport experiment")
	dbgSubjects := flag.String("dbg-subjects", "",
		"debugify: comma list of test-suite subjects (default all)")
	dbgProfile := flag.String("dbg-profile", "",
		"debugify: restrict to one profile (gcc or clang; default both)")
	dbgLevel := flag.String("dbg-level", "",
		"debugify: restrict to one optimization level (default all)")
	dbgVerify := flag.Bool("dbg-verify", true,
		"debugify: run the verify-each analyzer (false = plain builds, the bench baseline)")
	dtSeeds := flag.Int("seeds", 50,
		"synthetic seeds for the difftest experiment")
	dtConfigs := flag.String("configs", "full",
		"difftest matrix: full, levels, or a comma list like gcc-O2,clang-O3*")
	dtSuite := flag.Bool("suite", true,
		"include the test-suite programs as difftest subjects")
	cpuProfile := flag.String("cpuprofile", "",
		"write a runtime/pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "",
		"write a runtime/pprof heap profile (after all experiments) to this file")
	shared := options.Install(flag.CommandLine)
	flag.Parse()
	// exit routes every termination through the profile flush: os.Exit
	// skips defers, and a truncated pprof file is worse than none.
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			os.Exit(1)
		}
		cpuProfileFile = f
	}
	memProfilePath = *memProfile
	rt, err := shared.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if options.IsUsage(err) {
			exit(2)
		}
		exit(1)
	}
	if *quick {
		opts.SynthCount = 20
		opts.CorpusExecs = 120
		opts.Dy = []int{3, 5}
		opts.SpecSubset = []string{"505.mcf", "531.deepsjeng", "557.xz"}
	}

	r := experiments.NewRunner(opts)
	type exp struct {
		name string
		run  func(io.Writer) error
	}
	all := []exp{
		{"table1", r.Table1}, {"table2", r.Table2}, {"table3", r.Table3},
		{"table4", r.Table4}, {"table5", r.Table5}, {"table6", r.Table6},
		{"table7", r.Table7}, {"fig2", r.Fig2}, {"table8", r.Table8},
		{"table9", r.Table9}, {"table10", r.Table10},
		{"table11", r.Table11}, {"table12", r.Table12},
		{"fig3", r.Fig3}, {"table15", r.Table15}, {"fig4", r.Fig4},
	}
	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, e := range all {
			want = append(want, e.name)
		}
	}
	byName := map[string]exp{}
	for _, e := range all {
		byName[e.name] = e
	}
	// Deliberately absent from "all": the report's wall-ms column varies
	// run to run, and "all" output must stay byte-identical.
	byName["passreport"] = exp{"passreport", func(w io.Writer) error {
		return experiments.WritePassReport(w, pipeline.Profile(*prProfile), *prLevel)
	}}
	// Also absent from "all": difftest is a correctness gate. A run with
	// findings exits nonzero so CI can gate on it.
	byName["difftest"] = exp{"difftest", func(w io.Writer) error {
		dopts := difftest.Options{Spec: *dtConfigs}
		for seed := int64(1); seed <= int64(*dtSeeds); seed++ {
			dopts.Seeds = append(dopts.Seeds, seed)
		}
		if *dtSuite {
			dopts.Testsuite = testsuite.Names
		}
		rep, err := difftest.Run(w, dopts)
		if err != nil {
			return err
		}
		// Quarantined cells are gaps, not verdicts — they surface through
		// the quarantine report and exit code 3, not as difftest failures.
		if rep.Mismatches+rep.Violations > 0 {
			return fmt.Errorf("%d behavior mismatches, %d invariant violations",
				rep.Mismatches, rep.Violations)
		}
		return nil
	}}
	// Also absent from "all": debugify is the static verification gate.
	// Violations and verify errors make it exit nonzero; quarantined
	// cells surface through the quarantine report and exit code 3.
	byName["debugify"] = exp{"debugify", func(w io.Writer) error {
		dopts := experiments.DefaultDebugifyOptions()
		dopts.Verify = *dbgVerify
		if *dbgSubjects != "" {
			dopts.Subjects = strings.Split(*dbgSubjects, ",")
		}
		if *dbgProfile != "" {
			dopts.Profiles = []pipeline.Profile{pipeline.Profile(*dbgProfile)}
		}
		if *dbgLevel != "" {
			dopts.Levels = []string{*dbgLevel}
		}
		rep, err := experiments.WriteDebugify(w, dopts)
		if err != nil {
			return err
		}
		if n := len(rep.Findings); n > 0 {
			return fmt.Errorf("%d static debug-info findings", n)
		}
		return nil
	}}
	for _, name := range want {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			exit(2)
		}
		fmt.Printf("==== %s ====\n", e.name)
		start := time.Now()
		if err := e.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			exit(1)
		}
		if *timings {
			// Timing goes to stderr so stdout stays byte-identical
			// across worker counts.
			fmt.Fprintf(os.Stderr, "[%s: %.2fs]\n", e.name, time.Since(start).Seconds())
		}
		fmt.Println()
	}
	// The quarantine gap report prints after every requested table so the
	// run's losses are explicit; "completed with gaps" gets a distinct
	// exit code (3) CI can tell apart from a hard failure (1).
	exitCode, err := rt.Finish(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	exit(exitCode)
}
