// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [table1 table2 table3 table4 table5 table6 table7
//	                     fig2 table8 table9 table10 table11 table12
//	                     fig3 table15 fig4 passreport | all]
//	experiments work -workers N [flags] [experiments...]
//
// Flags scale the evaluation; the defaults finish in minutes. Outputs are
// plain-text tables matching the paper's rows.
//
// passreport (not part of "all": its wall-clock column is
// nondeterministic) prints the per-pass debug-damage ledger for the
// -profile/-level build of the test suite. -trace and -metrics write a
// Chrome trace-event file and a JSON telemetry summary for any run;
// stdout stays byte-identical whether or not telemetry is enabled.
//
// difftest (not part of "all": it is a correctness gate, not a paper
// table) cross-checks -seeds synthetic programs and the whole test suite
// across the -configs matrix and reports behavior mismatches and
// debug-info invariant violations; see internal/difftest.
//
// debugify (not part of "all": it is the static verification gate)
// runs a debugify-style verified build of every (subject, config) cell
// — synthetic metadata injected, ir.Verify plus the staticdbg analyzer
// after every pass and back-end stage — and prints per-config survival
// and the per-pass static preservation scoreboard; violations exit 1.
// Scope with -dbg-subjects/-dbg-profile/-dbg-level; -dbg-verify=false
// builds the same matrix plainly (the bench baseline).
//
// hunt (not part of "all": it is the feedback-directed finding
// campaign, see internal/hunt) generates candidate programs biased by
// the telemetry damage ledger and past findings, runs each through the
// differential oracle and the verify-each analyzer, buckets findings by
// (rule, pass), ddmin-reduces one witness per new bucket, and maintains
// a regression corpus (-hunt-corpus) with a cross-run trend report.
// Scale with -hunt-seed/-hunt-epochs/-hunt-candidates/-hunt-configs;
// -hunt-plant rule@pass arms the planted-bug self-test. Findings are
// the campaign's product, not an error: a fruitful hunt exits 0.
//
// SIGINT/SIGTERM stops the journal-writing experiments (difftest,
// debugify, hunt) between cells: work in flight finishes and
// checkpoints, the journal is flushed, and the run exits 4 — distinct
// from failure (1), usage (2), and quarantine gaps (3) — so -resume
// picks up exactly where the signal landed. A second signal kills the
// process the default way.
//
// The resilience flags (-retries, -cell-timeout, -chaos, -journal,
// -resume) wrap every evaluation cell in the fault-tolerant layer of
// internal/resilience: cells that panic, stall, or fail transiently are
// retried and, on exhaustion, quarantined rather than fatal. A run that
// completes with quarantined cells prints a QUARANTINED(n) report and
// exits 3; -journal checkpoints completed cells to an append-only JSONL
// file, and -resume replays it, rerunning only incomplete or quarantined
// cells. Without these flags nothing is installed and output is
// byte-identical to the pre-resilience harness.
//
// The work subcommand shards the same run across worker processes: it
// re-execs -workers N copies of this binary against a shared journal
// directory, where workers lease (subject × config) cells, checkpoint
// results to per-worker journals, and re-lease expired cells from
// crashed peers; the supervisor then merges the journals and renders
// stdout — byte-identical to the single-process run — by resuming from
// the merge. See internal/resilience and cmd/experiments/work.go.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"debugtuner/internal/difftest"
	"debugtuner/internal/experiments"
	"debugtuner/internal/hunt"
	"debugtuner/internal/metrics"
	"debugtuner/internal/options"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/testsuite"
)

// cli is the full experiments flag surface, registered on its own flag
// set so both the plain command and the work supervisor share it.
type cli struct {
	fs   *flag.FlagSet
	opts experiments.Options

	quick       *bool
	timings     *bool
	prProfile   *string
	prLevel     *string
	dbgSubjects *string
	dbgProfile  *string
	dbgLevel    *string
	dbgVerify   *bool
	dtSeeds     *int
	dtConfigs   *string
	dtSuite     *bool
	cpuProfile  *string
	memProfile  *string
	shared      *options.Flags

	huntSeed         *int64
	huntEpochs       *int
	huntCandidates   *int
	huntConfigs      *string
	huntDenom        *string
	huntPlant        *string
	huntCorpus       *string
	huntState        *string
	huntReduceProbes *int

	// interrupt is cancelled by the first SIGINT/SIGTERM; journal-writing
	// experiments stop between cells and the command exits ExitInterrupted.
	interrupt context.Context
}

func newCLI(name string) *cli {
	c := &cli{fs: flag.NewFlagSet(name, flag.ExitOnError)}
	c.opts = experiments.DefaultOptions()
	c.fs.IntVar(&c.opts.SynthCount, "synth", c.opts.SynthCount,
		"synthetic programs for Table I (paper: 5000)")
	c.fs.IntVar(&c.opts.CorpusExecs, "execs", c.opts.CorpusExecs,
		"fuzzing executions per harness")
	c.fs.Int64Var(&c.opts.SampleEvery, "sample-every", c.opts.SampleEvery,
		"AutoFDO sampling period in cycles")
	c.quick = c.fs.Bool("quick", false,
		"shrink every knob for a fast smoke run")
	c.timings = c.fs.Bool("timings", false,
		"print per-experiment wall-clock to stderr (stdout stays byte-identical)")
	c.prProfile = c.fs.String("profile", "gcc",
		"compiler profile for the passreport experiment")
	c.prLevel = c.fs.String("level", "O2",
		"optimization level for the passreport experiment")
	c.dbgSubjects = c.fs.String("dbg-subjects", "",
		"debugify: comma list of test-suite subjects (default all)")
	c.dbgProfile = c.fs.String("dbg-profile", "",
		"debugify: restrict to one profile (gcc or clang; default both)")
	c.dbgLevel = c.fs.String("dbg-level", "",
		"debugify: restrict to one optimization level (default all)")
	c.dbgVerify = c.fs.Bool("dbg-verify", true,
		"debugify: run the verify-each analyzer (false = plain builds, the bench baseline)")
	c.dtSeeds = c.fs.Int("seeds", 50,
		"synthetic seeds for the difftest experiment")
	c.dtConfigs = c.fs.String("configs", "full",
		"difftest matrix: full, levels, or a comma list like gcc-O2,clang-O3*")
	c.dtSuite = c.fs.Bool("suite", true,
		"include the test-suite programs as difftest subjects")
	c.cpuProfile = c.fs.String("cpuprofile", "",
		"write a runtime/pprof CPU profile of the whole run to this file")
	c.memProfile = c.fs.String("memprofile", "",
		"write a runtime/pprof heap profile (after all experiments) to this file")
	hd := hunt.DefaultOptions()
	c.huntSeed = c.fs.Int64("hunt-seed", hd.Seed, "hunt: campaign seed")
	c.huntEpochs = c.fs.Int("hunt-epochs", hd.Epochs,
		"hunt: feedback epochs (buckets found in epoch e bias epoch e+1)")
	c.huntCandidates = c.fs.Int("hunt-candidates", hd.Candidates,
		"hunt: candidate programs per epoch")
	c.huntConfigs = c.fs.String("hunt-configs", hd.Spec,
		"hunt: configuration matrix; the first entry is the primary config")
	c.huntDenom = c.fs.String("hunt-denom", string(hd.Denom),
		"hunt: score denominator (stmt-lines, stepped-o0, or def-ranges)")
	c.huntPlant = c.fs.String("hunt-plant", "",
		"hunt: planted-bug drill, rule@pass (e.g. scope-nesting@dse)")
	c.huntCorpus = c.fs.String("hunt-corpus", "",
		"hunt: regression corpus directory; enables fixture and trend-state commits")
	c.huntState = c.fs.String("hunt-state", "",
		"hunt: trend state file (default <hunt-corpus>/hunt-state.json)")
	c.huntReduceProbes = c.fs.Int("hunt-reduce-probes", hd.ReduceProbes,
		"hunt: ddmin probe budget per witness reduction")
	c.shared = options.Install(c.fs)
	return c
}

// applyQuick shrinks the knobs the way the -quick flag promises.
func (c *cli) applyQuick() {
	if *c.quick {
		c.opts.SynthCount = 20
		c.opts.CorpusExecs = 120
		c.opts.Dy = []int{3, 5}
		c.opts.SpecSubset = []string{"505.mcf", "531.deepsjeng", "557.xz"}
	}
}

// Profiling state flushed by stopProfiles on every exit path.
var (
	cpuProfileFile *os.File
	memProfilePath string
)

// startProfiles begins the -cpuprofile/-memprofile captures.
func startProfiles(c *cli) error {
	if *c.cpuProfile != "" {
		f, err := os.Create(*c.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		cpuProfileFile = f
	}
	memProfilePath = *c.memProfile
	return nil
}

// stopProfiles finalizes the -cpuprofile and -memprofile outputs. It is
// safe to call when profiling was never started.
func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
		cpuProfileFile = nil
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
		}
		f.Close()
		memProfilePath = ""
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "work" {
		code := workMain(os.Args[2:])
		stopProfiles()
		os.Exit(code)
	}
	code := runMain(os.Args[1:])
	stopProfiles()
	os.Exit(code)
}

// runMain is the plain single-process command.
func runMain(argv []string) int {
	c := newCLI("experiments")
	c.fs.Parse(argv)
	if err := startProfiles(c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rt, err := c.shared.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if options.IsUsage(err) {
			return 2
		}
		return 1
	}
	c.interrupt = options.NotifyInterrupt()
	return runExperiments(c, rt, c.fs.Args())
}

// runExperiments executes the requested experiment set and finishes the
// runtime (quarantine report, journal close, telemetry export). Both the
// plain command and the work supervisor's render phase funnel through
// it, which is what keeps their stdout byte-identical.
func runExperiments(c *cli, rt *options.Runtime, want []string) int {
	c.applyQuick()
	r := experiments.NewRunner(c.opts)
	type exp struct {
		name string
		run  func(io.Writer) error
	}
	all := []exp{
		{"table1", r.Table1}, {"table2", r.Table2}, {"table3", r.Table3},
		{"table4", r.Table4}, {"table5", r.Table5}, {"table6", r.Table6},
		{"table7", r.Table7}, {"fig2", r.Fig2}, {"table8", r.Table8},
		{"table9", r.Table9}, {"table10", r.Table10},
		{"table11", r.Table11}, {"table12", r.Table12},
		{"fig3", r.Fig3}, {"table15", r.Table15}, {"fig4", r.Fig4},
	}
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, e := range all {
			want = append(want, e.name)
		}
	}
	byName := map[string]exp{}
	for _, e := range all {
		byName[e.name] = e
	}
	// Deliberately absent from "all": the report's wall-ms column varies
	// run to run, and "all" output must stay byte-identical.
	byName["passreport"] = exp{"passreport", func(w io.Writer) error {
		return experiments.WritePassReport(w, pipeline.Profile(*c.prProfile), *c.prLevel)
	}}
	// Also absent from "all": difftest is a correctness gate. A run with
	// findings exits nonzero so CI can gate on it.
	byName["difftest"] = exp{"difftest", func(w io.Writer) error {
		dopts := difftest.Options{Spec: *c.dtConfigs, Interrupt: c.interrupt}
		for seed := int64(1); seed <= int64(*c.dtSeeds); seed++ {
			dopts.Seeds = append(dopts.Seeds, seed)
		}
		if *c.dtSuite {
			dopts.Testsuite = testsuite.Names
		}
		rep, err := difftest.Run(w, dopts)
		if err != nil {
			if options.IsInterrupted(err) {
				return options.ErrInterrupted
			}
			return err
		}
		// Quarantined cells are gaps, not verdicts — they surface through
		// the quarantine report and exit code 3, not as difftest failures.
		if rep.Mismatches+rep.Violations > 0 {
			return fmt.Errorf("%d behavior mismatches, %d invariant violations",
				rep.Mismatches, rep.Violations)
		}
		return nil
	}}
	// Also absent from "all": debugify is the static verification gate.
	// Violations and verify errors make it exit nonzero; quarantined
	// cells surface through the quarantine report and exit code 3.
	byName["debugify"] = exp{"debugify", func(w io.Writer) error {
		dopts := experiments.DefaultDebugifyOptions()
		dopts.Verify = *c.dbgVerify
		dopts.Interrupt = c.interrupt
		if *c.dbgSubjects != "" {
			dopts.Subjects = strings.Split(*c.dbgSubjects, ",")
		}
		if *c.dbgProfile != "" {
			dopts.Profiles = []pipeline.Profile{pipeline.Profile(*c.dbgProfile)}
		}
		if *c.dbgLevel != "" {
			dopts.Levels = []string{*c.dbgLevel}
		}
		rep, err := experiments.WriteDebugify(w, dopts)
		if err != nil {
			if options.IsInterrupted(err) {
				return options.ErrInterrupted
			}
			return err
		}
		if n := len(rep.Findings); n > 0 {
			return fmt.Errorf("%d static debug-info findings", n)
		}
		return nil
	}}
	// Also absent from "all": hunt is the feedback-directed finding
	// campaign. Findings are its product, not a failure — CI gates on
	// report bytes and new-bucket fixtures, so a fruitful campaign still
	// exits 0. Under -work-dir the leased workers run with commits off;
	// only the supervisor's render pass writes fixtures and trend state.
	byName["hunt"] = exp{"hunt", func(w io.Writer) error {
		hopts := hunt.DefaultOptions()
		hopts.Seed = *c.huntSeed
		hopts.Epochs = *c.huntEpochs
		hopts.Candidates = *c.huntCandidates
		hopts.Spec = *c.huntConfigs
		hopts.Denom = metrics.Denom(*c.huntDenom)
		hopts.Plant = *c.huntPlant
		hopts.CorpusDir = *c.huntCorpus
		hopts.StatePath = *c.huntState
		hopts.ReduceProbes = *c.huntReduceProbes
		hopts.Commit = *c.shared.WorkDir == ""
		hopts.Interrupt = c.interrupt
		rep, err := hunt.Run(w, hopts)
		if err != nil {
			return err
		}
		if rep.Interrupted {
			return options.ErrInterrupted
		}
		return nil
	}}
	for _, name := range want {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			return 2
		}
		fmt.Printf("==== %s ====\n", e.name)
		start := time.Now()
		if err := e.run(os.Stdout); err != nil {
			if errors.Is(err, options.ErrInterrupted) {
				// Flush the journal and quarantine report before exiting so
				// the work completed so far is resumable, then exit with the
				// distinct interrupted code.
				fmt.Fprintf(os.Stderr, "%s: interrupted; journal flushed, resume with -resume\n", e.name)
				if _, ferr := rt.Finish(os.Stdout); ferr != nil {
					fmt.Fprintln(os.Stderr, ferr)
					return 1
				}
				return options.ExitInterrupted
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			return 1
		}
		if *c.timings {
			// Timing goes to stderr so stdout stays byte-identical
			// across worker counts.
			fmt.Fprintf(os.Stderr, "[%s: %.2fs]\n", e.name, time.Since(start).Seconds())
		}
		fmt.Println()
	}
	// The quarantine gap report prints after every requested table so the
	// run's losses are explicit; "completed with gaps" gets a distinct
	// exit code (3) CI can tell apart from a hard failure (1).
	exitCode, err := rt.Finish(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return exitCode
}
