// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [table1 table2 table3 table4 table5 table6 table7
//	                     fig2 table8 table9 table10 table11 table12
//	                     fig3 table15 fig4 passreport | all]
//	experiments work -workers N [flags] [experiments...]
//
// Flags scale the evaluation; the defaults finish in minutes. Outputs are
// plain-text tables matching the paper's rows.
//
// passreport (not part of "all": its wall-clock column is
// nondeterministic) prints the per-pass debug-damage ledger for the
// -profile/-level build of the test suite. -trace and -metrics write a
// Chrome trace-event file and a JSON telemetry summary for any run;
// stdout stays byte-identical whether or not telemetry is enabled.
//
// difftest (not part of "all": it is a correctness gate, not a paper
// table) cross-checks -seeds synthetic programs and the whole test suite
// across the -configs matrix and reports behavior mismatches and
// debug-info invariant violations; see internal/difftest.
//
// debugify (not part of "all": it is the static verification gate)
// runs a debugify-style verified build of every (subject, config) cell
// — synthetic metadata injected, ir.Verify plus the staticdbg analyzer
// after every pass and back-end stage — and prints per-config survival
// and the per-pass static preservation scoreboard; violations exit 1.
// Scope with -dbg-subjects/-dbg-profile/-dbg-level; -dbg-verify=false
// builds the same matrix plainly (the bench baseline).
//
// The resilience flags (-retries, -cell-timeout, -chaos, -journal,
// -resume) wrap every evaluation cell in the fault-tolerant layer of
// internal/resilience: cells that panic, stall, or fail transiently are
// retried and, on exhaustion, quarantined rather than fatal. A run that
// completes with quarantined cells prints a QUARANTINED(n) report and
// exits 3; -journal checkpoints completed cells to an append-only JSONL
// file, and -resume replays it, rerunning only incomplete or quarantined
// cells. Without these flags nothing is installed and output is
// byte-identical to the pre-resilience harness.
//
// The work subcommand shards the same run across worker processes: it
// re-execs -workers N copies of this binary against a shared journal
// directory, where workers lease (subject × config) cells, checkpoint
// results to per-worker journals, and re-lease expired cells from
// crashed peers; the supervisor then merges the journals and renders
// stdout — byte-identical to the single-process run — by resuming from
// the merge. See internal/resilience and cmd/experiments/work.go.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"debugtuner/internal/difftest"
	"debugtuner/internal/experiments"
	"debugtuner/internal/options"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/testsuite"
)

// cli is the full experiments flag surface, registered on its own flag
// set so both the plain command and the work supervisor share it.
type cli struct {
	fs   *flag.FlagSet
	opts experiments.Options

	quick      *bool
	timings    *bool
	prProfile  *string
	prLevel    *string
	dbgSubjects *string
	dbgProfile *string
	dbgLevel   *string
	dbgVerify  *bool
	dtSeeds    *int
	dtConfigs  *string
	dtSuite    *bool
	cpuProfile *string
	memProfile *string
	shared     *options.Flags
}

func newCLI(name string) *cli {
	c := &cli{fs: flag.NewFlagSet(name, flag.ExitOnError)}
	c.opts = experiments.DefaultOptions()
	c.fs.IntVar(&c.opts.SynthCount, "synth", c.opts.SynthCount,
		"synthetic programs for Table I (paper: 5000)")
	c.fs.IntVar(&c.opts.CorpusExecs, "execs", c.opts.CorpusExecs,
		"fuzzing executions per harness")
	c.fs.Int64Var(&c.opts.SampleEvery, "sample-every", c.opts.SampleEvery,
		"AutoFDO sampling period in cycles")
	c.quick = c.fs.Bool("quick", false,
		"shrink every knob for a fast smoke run")
	c.timings = c.fs.Bool("timings", false,
		"print per-experiment wall-clock to stderr (stdout stays byte-identical)")
	c.prProfile = c.fs.String("profile", "gcc",
		"compiler profile for the passreport experiment")
	c.prLevel = c.fs.String("level", "O2",
		"optimization level for the passreport experiment")
	c.dbgSubjects = c.fs.String("dbg-subjects", "",
		"debugify: comma list of test-suite subjects (default all)")
	c.dbgProfile = c.fs.String("dbg-profile", "",
		"debugify: restrict to one profile (gcc or clang; default both)")
	c.dbgLevel = c.fs.String("dbg-level", "",
		"debugify: restrict to one optimization level (default all)")
	c.dbgVerify = c.fs.Bool("dbg-verify", true,
		"debugify: run the verify-each analyzer (false = plain builds, the bench baseline)")
	c.dtSeeds = c.fs.Int("seeds", 50,
		"synthetic seeds for the difftest experiment")
	c.dtConfigs = c.fs.String("configs", "full",
		"difftest matrix: full, levels, or a comma list like gcc-O2,clang-O3*")
	c.dtSuite = c.fs.Bool("suite", true,
		"include the test-suite programs as difftest subjects")
	c.cpuProfile = c.fs.String("cpuprofile", "",
		"write a runtime/pprof CPU profile of the whole run to this file")
	c.memProfile = c.fs.String("memprofile", "",
		"write a runtime/pprof heap profile (after all experiments) to this file")
	c.shared = options.Install(c.fs)
	return c
}

// applyQuick shrinks the knobs the way the -quick flag promises.
func (c *cli) applyQuick() {
	if *c.quick {
		c.opts.SynthCount = 20
		c.opts.CorpusExecs = 120
		c.opts.Dy = []int{3, 5}
		c.opts.SpecSubset = []string{"505.mcf", "531.deepsjeng", "557.xz"}
	}
}

// Profiling state flushed by stopProfiles on every exit path.
var (
	cpuProfileFile *os.File
	memProfilePath string
)

// startProfiles begins the -cpuprofile/-memprofile captures.
func startProfiles(c *cli) error {
	if *c.cpuProfile != "" {
		f, err := os.Create(*c.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		cpuProfileFile = f
	}
	memProfilePath = *c.memProfile
	return nil
}

// stopProfiles finalizes the -cpuprofile and -memprofile outputs. It is
// safe to call when profiling was never started.
func stopProfiles() {
	if cpuProfileFile != nil {
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
		cpuProfileFile = nil
	}
	if memProfilePath != "" {
		f, err := os.Create(memProfilePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
		}
		f.Close()
		memProfilePath = ""
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "work" {
		code := workMain(os.Args[2:])
		stopProfiles()
		os.Exit(code)
	}
	code := runMain(os.Args[1:])
	stopProfiles()
	os.Exit(code)
}

// runMain is the plain single-process command.
func runMain(argv []string) int {
	c := newCLI("experiments")
	c.fs.Parse(argv)
	if err := startProfiles(c); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	rt, err := c.shared.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if options.IsUsage(err) {
			return 2
		}
		return 1
	}
	return runExperiments(c, rt, c.fs.Args())
}

// runExperiments executes the requested experiment set and finishes the
// runtime (quarantine report, journal close, telemetry export). Both the
// plain command and the work supervisor's render phase funnel through
// it, which is what keeps their stdout byte-identical.
func runExperiments(c *cli, rt *options.Runtime, want []string) int {
	c.applyQuick()
	r := experiments.NewRunner(c.opts)
	type exp struct {
		name string
		run  func(io.Writer) error
	}
	all := []exp{
		{"table1", r.Table1}, {"table2", r.Table2}, {"table3", r.Table3},
		{"table4", r.Table4}, {"table5", r.Table5}, {"table6", r.Table6},
		{"table7", r.Table7}, {"fig2", r.Fig2}, {"table8", r.Table8},
		{"table9", r.Table9}, {"table10", r.Table10},
		{"table11", r.Table11}, {"table12", r.Table12},
		{"fig3", r.Fig3}, {"table15", r.Table15}, {"fig4", r.Fig4},
	}
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, e := range all {
			want = append(want, e.name)
		}
	}
	byName := map[string]exp{}
	for _, e := range all {
		byName[e.name] = e
	}
	// Deliberately absent from "all": the report's wall-ms column varies
	// run to run, and "all" output must stay byte-identical.
	byName["passreport"] = exp{"passreport", func(w io.Writer) error {
		return experiments.WritePassReport(w, pipeline.Profile(*c.prProfile), *c.prLevel)
	}}
	// Also absent from "all": difftest is a correctness gate. A run with
	// findings exits nonzero so CI can gate on it.
	byName["difftest"] = exp{"difftest", func(w io.Writer) error {
		dopts := difftest.Options{Spec: *c.dtConfigs}
		for seed := int64(1); seed <= int64(*c.dtSeeds); seed++ {
			dopts.Seeds = append(dopts.Seeds, seed)
		}
		if *c.dtSuite {
			dopts.Testsuite = testsuite.Names
		}
		rep, err := difftest.Run(w, dopts)
		if err != nil {
			return err
		}
		// Quarantined cells are gaps, not verdicts — they surface through
		// the quarantine report and exit code 3, not as difftest failures.
		if rep.Mismatches+rep.Violations > 0 {
			return fmt.Errorf("%d behavior mismatches, %d invariant violations",
				rep.Mismatches, rep.Violations)
		}
		return nil
	}}
	// Also absent from "all": debugify is the static verification gate.
	// Violations and verify errors make it exit nonzero; quarantined
	// cells surface through the quarantine report and exit code 3.
	byName["debugify"] = exp{"debugify", func(w io.Writer) error {
		dopts := experiments.DefaultDebugifyOptions()
		dopts.Verify = *c.dbgVerify
		if *c.dbgSubjects != "" {
			dopts.Subjects = strings.Split(*c.dbgSubjects, ",")
		}
		if *c.dbgProfile != "" {
			dopts.Profiles = []pipeline.Profile{pipeline.Profile(*c.dbgProfile)}
		}
		if *c.dbgLevel != "" {
			dopts.Levels = []string{*c.dbgLevel}
		}
		rep, err := experiments.WriteDebugify(w, dopts)
		if err != nil {
			return err
		}
		if n := len(rep.Findings); n > 0 {
			return fmt.Errorf("%d static debug-info findings", n)
		}
		return nil
	}}
	for _, name := range want {
		e, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			return 2
		}
		fmt.Printf("==== %s ====\n", e.name)
		start := time.Now()
		if err := e.run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			return 1
		}
		if *c.timings {
			// Timing goes to stderr so stdout stays byte-identical
			// across worker counts.
			fmt.Fprintf(os.Stderr, "[%s: %.2fs]\n", e.name, time.Since(start).Seconds())
		}
		fmt.Println()
	}
	// The quarantine gap report prints after every requested table so the
	// run's losses are explicit; "completed with gaps" gets a distinct
	// exit code (3) CI can tell apart from a hard failure (1).
	exitCode, err := rt.Finish(os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return exitCode
}
