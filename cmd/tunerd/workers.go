package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"debugtuner/internal/serve"
)

// runFleet is tunerd's -workers N supervisor mode: it re-execs N worker
// tunerds on ephemeral ports (inheriting every flag the user set except
// -workers and -addr), scrapes each child's bound address from its
// "tunerd listening on" line, and fronts the fleet with the admission
// layer — bounded queue, round-robin proxying, typed 503s while
// draining, respawn on worker death. Workers share the persistent disk
// cache (and the -work-dir lease journal when configured), so the fleet
// serves one coherent cache despite being many processes.
func runFleet(n int, addr string, maxQueue int, drainGrace, drainTimeout time.Duration) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tunerd:", err)
		return 1
	}
	var passthrough []string
	flag.Visit(func(fl *flag.Flag) {
		switch fl.Name {
		case "workers", "addr":
			return
		}
		passthrough = append(passthrough, "-"+fl.Name+"="+fl.Value.String())
	})
	spawn := func(i int) (*serve.WorkerHandle, error) {
		return spawnWorker(exe, append([]string{"-addr=127.0.0.1:0"}, passthrough...))
	}
	fleet, err := serve.NewFleet(serve.FleetOptions{
		Addr:       addr,
		Workers:    n,
		MaxQueue:   maxQueue,
		DrainGrace: drainGrace,
		Spawn:      spawn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tunerd:", err)
		return 1
	}
	bound, err := fleet.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tunerd:", err)
		return 1
	}
	fmt.Printf("tunerd listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("tunerd: %s, draining fleet\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := fleet.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tunerd: drain:", err)
	}
	return 0
}

// spawnWorker starts one worker tunerd and waits for its listening line.
func spawnWorker(exe string, args []string) (*serve.WorkerHandle, error) {
	cmd := exec.Command(exe, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		close(done)
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "tunerd listening on "); ok {
				addrCh <- a
				break
			}
		}
		// Keep draining so the worker never blocks on a full pipe.
		io.Copy(io.Discard, stdout)
	}()
	var bound string
	select {
	case bound = <-addrCh:
	case <-done:
		return nil, fmt.Errorf("worker exited before listening")
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("worker did not report an address within 30s")
	}
	u, err := url.Parse("http://" + bound)
	if err != nil {
		cmd.Process.Kill()
		return nil, err
	}
	return &serve.WorkerHandle{
		URL: u,
		Stop: func(ctx context.Context) error {
			cmd.Process.Signal(syscall.SIGTERM)
			select {
			case <-done:
				return nil
			case <-ctx.Done():
				cmd.Process.Kill()
				return ctx.Err()
			}
		},
		Done: done,
	}, nil
}
