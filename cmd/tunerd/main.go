// Command tunerd is the DebugTuner service: a long-lived HTTP/JSON
// server that accepts MiniC compilation units and serves tuned Ox-dy
// configurations (/v1/tune), Pareto fronts (/v1/pareto), and
// difftest + static-verification debuggability reports (/v1/report),
// all in the versioned wire format of internal/api.
//
// Usage:
//
//	tunerd [flags]
//
//	-addr host:port       listen address (default 127.0.0.1:8347;
//	                      port 0 picks an ephemeral port)
//	-max-inflight N       concurrently computing requests (0 = auto)
//	-max-queue N          admission queue bound (0 = 4096)
//	-drain-grace dur      503 window after SIGTERM before closing
//	-budget N             per-run VM step budget
//	-workers N            supervisor mode: re-exec N worker tunerds on
//	                      ephemeral ports and front them with the
//	                      admission layer (round-robin proxy, respawn on
//	                      death, shared disk cache)
//
// plus the shared runtime flags of internal/options (-j, -cachedir,
// -cell-timeout, ...). On startup it prints "tunerd listening on ADDR"
// to stdout. SIGTERM/SIGINT starts a graceful drain: in-flight
// requests finish, new ones get a typed 503 "draining" error for the
// grace window, then the process exits 0.
//
// Responses are cached by canonical request key (memory + the shared
// disk store when -cachedir is enabled), concurrent identical requests
// coalesce onto one computation, and every evaluation cell runs under
// the resilience executor, so a panicking cell quarantines instead of
// killing the server. Telemetry is always on and served at
// /debug/metrics; the quarantine list at /debug/quarantine.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"debugtuner/internal/options"
	"debugtuner/internal/resilience"
	"debugtuner/internal/serve"
	"debugtuner/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (port 0 = ephemeral)")
	maxInflight := flag.Int("max-inflight", 0,
		"concurrently computing requests (0 = max(2, worker-pool size))")
	maxQueue := flag.Int("max-queue", 0,
		"admission queue bound; beyond it requests get a typed 503 (0 = 4096)")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond,
		"window after SIGTERM during which new requests get a typed 503 before the listener closes")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second,
		"hard bound on the graceful drain; in-flight work past it is abandoned")
	budget := flag.Int64("budget", 0, "per-run VM step budget (0 = default)")
	workers := flag.Int("workers", 0,
		"supervisor mode: spawn N worker tunerds and front them with the admission layer (0 = serve in-process)")
	shared := options.Install(flag.CommandLine)
	flag.Parse()
	if *workers > 0 {
		// The supervisor only admits and proxies; the workers own the
		// caches, executors, and telemetry, so it skips Build entirely.
		os.Exit(runFleet(*workers, *addr, *maxQueue, *drainGrace, *drainTimeout))
	}
	rt, err := shared.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tunerd:", err)
		if options.IsUsage(err) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	// A server always runs with telemetry (/debug/metrics must answer)
	// and a resilience executor (a panicking or stalling cell must
	// quarantine, not kill the process), whether or not flags asked.
	if telemetry.Active() == nil {
		telemetry.Enable()
	}
	if resilience.Active() == nil {
		resilience.Install(resilience.NewExecutor(resilience.DefaultPolicy()))
	}

	srv := serve.New(serve.Options{
		Addr:        *addr,
		MaxInflight: *maxInflight,
		MaxQueue:    *maxQueue,
		DrainGrace:  *drainGrace,
		Budget:      *budget,
	})
	bound, err := srv.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tunerd:", err)
		os.Exit(1)
	}
	fmt.Printf("tunerd listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("tunerd: %s, draining\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "tunerd: drain:", err)
	}
	// The shared teardown writes the quarantine report and telemetry
	// exports; a drained server exits 0 even with quarantined cells —
	// they were surfaced per-response and via /debug/quarantine. The
	// always-on executor is only in rt when flags created it, so report
	// it here when it isn't.
	if rt.Executor == nil {
		resilience.Active().WriteReport(os.Stdout)
	}
	if _, err := rt.Finish(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tunerd:", err)
		os.Exit(1)
	}
	os.Exit(0)
}
