// Quickstart: compile a MiniC program at two optimization levels, run it
// on the VM, trace it under the debugger, and measure how much debug
// information the optimizer cost — the core DebugTuner measurement in
// ~60 lines.
package main

import (
	"fmt"
	"log"

	"debugtuner/internal/debugger"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/sema"
	"debugtuner/internal/vm"
)

const src = `
var sum: int = 0;

func digits(n: int): int {
	var count: int = 0;
	while (n > 0) {
		n = n / 10;
		count = count + 1;
	}
	return count;
}
func main() {
	for (var i: int = 1; i <= 1000; i = i * 3) {
		var d: int = digits(i);
		sum = sum + d;
	}
	print(sum);
}
`

func main() {
	// Front-end once; every build clones the unoptimized IR.
	info, err := pipeline.Frontend("quickstart.mc", []byte(src))
	if err != nil {
		log.Fatal(err)
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		log.Fatal(err)
	}

	// The -O0 build is the debuggability baseline.
	baseBin := pipeline.Build(ir0, pipeline.MustConfig(pipeline.GCC, "O0"))
	baseSess, err := debugger.NewSession(baseBin)
	if err != nil {
		log.Fatal(err)
	}
	baseTrace, err := baseSess.TraceMain("main", 1<<24)
	if err != nil {
		log.Fatal(err)
	}
	dr := sema.ComputeDefRanges(info)

	for _, level := range []string{"O0", "O1", "O2"} {
		cfg := pipeline.MustConfig(pipeline.GCC, level)
		bin := pipeline.Build(ir0, cfg)

		// Run it: output and cycle count.
		m := vm.New(bin)
		m.StepBudget = 1 << 24
		if _, err := m.Call("main"); err != nil {
			log.Fatal(err)
		}

		// Debug it: temporary breakpoints on every line.
		sess, err := debugger.NewSession(bin)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := sess.TraceMain("main", 1<<24)
		if err != nil {
			log.Fatal(err)
		}

		// Measure it: the paper's hybrid product metric.
		score := metrics.Hybrid(tr, baseTrace, dr)
		fmt.Printf("%-3s output=%v cycles=%-7d stepped %2d/%2d lines  "+
			"avail=%.3f linecov=%.3f product=%.3f\n",
			level, m.Output(), m.Cycles, len(tr.Stepped), baseTrace.Steppable,
			score.Avail, score.LineCov, score.Product)
	}
}
