// Autofdo: the paper's case study in miniature — profile a benchmark
// binary by sampling, inspect how much of the profile survived the debug
// information, and feed it back into the compiler. Also shows the
// profiling-stage coupling: a debug-friendlier profiling build maps more
// samples.
package main

import (
	"fmt"
	"log"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
)

func main() {
	const bench = "531.deepsjeng"
	ir0, err := specsuite.LoadIR(bench)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1: build the profiling binary at O2 with
	// -fdebug-info-for-profiling, run the ref workload under sampling.
	profCfg := pipeline.MustConfig(pipeline.Clang, "O2", pipeline.WithProfiling())
	profBin := pipeline.Build(ir0, profCfg)
	prof, err := autofdo.Collect(profBin, "main", 997)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile from %s: %d samples, %.1f%% mapped to lines, %d hot lines\n",
		profCfg.Name(), prof.Total, 100*prof.MappedFraction(), len(prof.HotLines(0.5)))

	// Stage 2: recompile with the profile and compare.
	plain, err := specsuite.RunBinary(bench,
		pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2")))
	if err != nil {
		log.Fatal(err)
	}
	fdo, err := specsuite.RunBinary(bench,
		pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2", pipeline.WithFDO(prof))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain O2:   %d cycles\n", plain.Cycles)
	fmt.Printf("O2+AutoFDO: %d cycles (%.2f%% faster)\n",
		fdo.Cycles, 100*(float64(plain.Cycles)-float64(fdo.Cycles))/float64(fdo.Cycles))

	// The coupling: profile from a debug-friendlier O2-dy build.
	dyCfg := pipeline.MustConfig(pipeline.Clang, "O2",
		pipeline.WithProfiling(),
		pipeline.Disable("schedule-insns2", "machine-sink", "jump-threading"))
	dyProf, err := autofdo.Collect(pipeline.Build(ir0, dyCfg), "main", 997)
	if err != nil {
		log.Fatal(err)
	}
	dyFdo, err := specsuite.RunBinary(bench,
		pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2", pipeline.WithFDO(dyProf))))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile from %s: %.1f%% mapped (vs %.1f%%)\n",
		dyCfg.Name(), 100*dyProf.MappedFraction(), 100*prof.MappedFraction())
	fmt.Printf("O2+AutoFDO(d3 profile): %d cycles (%+.2f%% vs O2-profile AutoFDO)\n",
		dyFdo.Cycles, 100*(float64(fdo.Cycles)-float64(dyFdo.Cycles))/float64(dyFdo.Cycles))
}
