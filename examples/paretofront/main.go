// Paretofront: sweep standard levels and tuned Ox-dy configurations over
// debuggability (suite product metric) and performance (benchmark
// speedup), and print the Pareto front — the paper's Figure 2 in
// miniature.
package main

import (
	"fmt"
	"log"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
)

func main() {
	// Debuggability axis: three suite programs. Performance axis: three
	// benchmarks. (cmd/experiments fig2 runs the full sets.)
	var progs []*tuner.Program
	for _, name := range []string{"zlib", "wasm3", "libyaml"} {
		s, err := testsuite.Load(name, testsuite.CorpusOptions{Execs: 200})
		if err != nil {
			log.Fatal(err)
		}
		progs = append(progs, s.Program)
	}
	benches := []string{"505.mcf", "557.xz", "531.deepsjeng"}

	point := func(cfg pipeline.Config) tuner.Point {
		var dbg float64
		for _, p := range progs {
			m, err := p.Product(cfg)
			if err != nil {
				log.Fatal(err)
			}
			dbg += m
		}
		dbg /= float64(len(progs))
		_, spd, err := specsuite.SuiteSpeedup(cfg, benches)
		if err != nil {
			log.Fatal(err)
		}
		return tuner.Point{Label: cfg.Name(), Debug: dbg, Speedup: spd}
	}

	var points []tuner.Point
	for _, level := range pipeline.Levels(pipeline.GCC) {
		points = append(points, point(pipeline.MustConfig(pipeline.GCC, level)))
		la, err := tuner.AnalyzeLevel(progs, pipeline.GCC, level)
		if err != nil {
			log.Fatal(err)
		}
		for _, cfg := range la.Configs([]int{3, 5}) {
			points = append(points, point(cfg))
		}
	}

	fmt.Printf("%-12s %10s %9s  %s\n", "config", "product", "speedup", "front?")
	for _, p := range points {
		mark := ""
		if tuner.OnFront(points, p.Label) {
			mark = "  *on front*"
		}
		fmt.Printf("%-12s %10.4f %8.2fx%s\n", p.Label, p.Debug, p.Speedup, mark)
	}
	front := tuner.ParetoFront(points)
	fmt.Printf("\nPareto front (%d of %d):", len(front), len(points))
	for _, p := range front {
		fmt.Printf(" %s", p.Label)
	}
	fmt.Println()
}
