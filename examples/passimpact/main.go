// Passimpact: the per-pass analysis workflow on real suite programs —
// which optimization passes cost the most debug information at clang-O2,
// and what disabling the top three buys (the heart of DebugTuner, §III).
package main

import (
	"fmt"
	"log"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
)

func main() {
	// Three suite members keep the example fast; cmd/debugtuner runs
	// all thirteen.
	var progs []*tuner.Program
	for _, name := range []string{"zlib", "libpng", "lighttpd"} {
		s, err := testsuite.Load(name, testsuite.CorpusOptions{Execs: 200})
		if err != nil {
			log.Fatal(err)
		}
		progs = append(progs, s.Program)
	}

	la, err := tuner.AnalyzeLevel(progs, pipeline.Clang, "O2")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top debug-harmful passes at clang-O2 (three-program suite):")
	for i, rp := range la.Ranking {
		if i >= 8 {
			break
		}
		mark := ""
		if rp.Backend {
			mark = " *"
		}
		fmt.Printf("%2d. %-28s avg rank %5.2f  Δ %+6.2f%%\n",
			i+1, rp.Display+mark, rp.AvgRank, rp.GeoIncrementPct)
	}

	// Build the O2-d3 configuration and show per-program gains.
	cfg := la.Configs([]int{3})[0]
	fmt.Printf("\n%s disables: %v\n", cfg.Name(), la.TopPasses(3, true))
	for _, p := range progs {
		ref := la.RefProduct[p.Name]
		tuned, err := p.Product(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s O2 product %.4f -> %s %.4f (%+.2f%%)\n",
			p.Name, ref, cfg.Name(), tuned, 100*(tuned-ref)/ref)
	}
}
