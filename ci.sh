#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector on every
# package that participates in the parallel evaluation engine, and
# finally a bounded differential-testing smoke that must be byte-stable
# across worker counts.
set -eux

go vet ./...
go build ./...
go test ./...

# Repo-local lint: raw pipeline.Config literals and map-order-dependent
# output are build failures (see internal/lint).
go run ./cmd/lint -root .
go test -race -count=1 \
    ./internal/telemetry/ \
    ./internal/suite/ \
    ./internal/workerpool/ \
    ./internal/evalcache/ \
    ./internal/resilience/ \
    ./internal/tuner/ \
    ./internal/experiments/ \
    ./internal/specsuite/ \
    ./internal/testsuite/ \
    ./internal/difftest/

# Keep the binary smokes hermetic: the persistent evalcache defaults to
# the user cache dir, which CI must neither read nor pollute.
DEBUGTUNER_CACHE_DIR=/tmp/ci-default-cache
export DEBUGTUNER_CACHE_DIR
rm -rf /tmp/ci-default-cache

# Differential smoke: a small fixed seed set over the plain level matrix
# must report zero findings, and stdout must not depend on parallelism.
go build -o /tmp/ci-experiments ./cmd/experiments
/tmp/ci-experiments -j 1 -seeds 5 -configs levels difftest > /tmp/ci-difftest-j1.txt
/tmp/ci-experiments -j 4 -seeds 5 -configs levels difftest > /tmp/ci-difftest-j4.txt
cmp /tmp/ci-difftest-j1.txt /tmp/ci-difftest-j4.txt
grep -q '^PASS$' /tmp/ci-difftest-j1.txt
rm -f /tmp/ci-experiments /tmp/ci-difftest-j1.txt /tmp/ci-difftest-j4.txt

# Static debug-info verification smoke: one subject under both profiles
# must be debugify-clean, byte-stable across worker counts; and the
# verify-each driver must pass on a known-good fixture.
go build -o /tmp/ci-experiments ./cmd/experiments
/tmp/ci-experiments -j 1 -dbg-subjects libpng debugify > /tmp/ci-debugify-j1.txt
/tmp/ci-experiments -j 4 -dbg-subjects libpng debugify > /tmp/ci-debugify-j4.txt
cmp /tmp/ci-debugify-j1.txt /tmp/ci-debugify-j4.txt
grep -q '^PASS$' /tmp/ci-debugify-j1.txt
rm -f /tmp/ci-experiments /tmp/ci-debugify-j1.txt /tmp/ci-debugify-j4.txt
go run ./cmd/minicc -O 2 -verify-each internal/difftest/testdata/fold_minint_div.mc \
    | grep -q '^PASS$'
go run ./cmd/minicc -profile clang -O 3 -verify-each internal/difftest/testdata/fold_shift_mask.mc \
    | grep -q '^PASS$'

# Chaos smoke: under deterministic fault injection the same bounded
# matrix must (a) complete with quarantined cells and the distinct
# "completed with gaps" exit code 3, (b) produce byte-identical output
# at any worker count, and (c) after checkpointing the faulted run to a
# journal, resume WITHOUT chaos, rerun only the incomplete and
# quarantined cells, and finish clean with exit 0.
go build -o /tmp/ci-experiments ./cmd/experiments
rc=0; /tmp/ci-experiments -j 1 -chaos rate=0.5,seed=21 -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-chaos-j1.txt || rc=$?
test "$rc" -eq 3
rc=0; /tmp/ci-experiments -j 4 -chaos rate=0.5,seed=21 -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-chaos-j4.txt || rc=$?
test "$rc" -eq 3
cmp /tmp/ci-chaos-j1.txt /tmp/ci-chaos-j4.txt
grep -q '^QUARANTINED(' /tmp/ci-chaos-j1.txt
rc=0; /tmp/ci-experiments -j 4 -chaos rate=0.5,seed=21 -seeds 3 -suite=false -configs levels \
    -journal /tmp/ci-chaos.jsonl difftest > /dev/null || rc=$?
test "$rc" -eq 3
/tmp/ci-experiments -j 4 -resume /tmp/ci-chaos.jsonl -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-resume.txt
grep -q '^PASS$' /tmp/ci-resume.txt
rm -f /tmp/ci-experiments /tmp/ci-chaos-j1.txt /tmp/ci-chaos-j4.txt \
    /tmp/ci-chaos.jsonl /tmp/ci-resume.txt

# Persistent-cache smoke: a cold quick-all into a fresh cache directory,
# then a warm rerun from it — the warm run must be byte-identical and
# measurably faster (it skips every fingerprinted build+trace). Then
# corrupt one entry in place: the store must self-heal (recompute the
# cell, delete the bad file) and still produce identical output. Last, a
# -j 4 run with the cache disabled proves stdout depends on neither the
# cache nor the worker count — this is also the determinism gate for the
# direct-threaded/fused interpreter cores, which quick-all exercises on
# every uninstrumented VM run.
go build -o /tmp/ci-experiments ./cmd/experiments
rm -rf /tmp/ci-cache
T0=$(date +%s)
/tmp/ci-experiments -quick -j 1 -cachedir /tmp/ci-cache all > /tmp/ci-cold.txt
T1=$(date +%s)
/tmp/ci-experiments -quick -j 1 -cachedir /tmp/ci-cache all > /tmp/ci-warm.txt
T2=$(date +%s)
cmp /tmp/ci-cold.txt /tmp/ci-warm.txt
COLD=$((T1 - T0)); WARM=$((T2 - T1))
test $((WARM * 2)) -lt "$COLD"
ENTRY=$(find /tmp/ci-cache -name '*.json' | head -n 1)
test -n "$ENTRY"
printf 'garbage' > "$ENTRY"
/tmp/ci-experiments -quick -j 1 -cachedir /tmp/ci-cache all > /tmp/ci-heal.txt
cmp /tmp/ci-cold.txt /tmp/ci-heal.txt
# The corrupt bytes must be gone: self-heal deletes the bad entry and
# the recompute rewrites the slot. (Explicit if: `set -e` skips negated
# commands.)
if grep -qs garbage "$ENTRY"; then echo "corrupt entry survived"; exit 1; fi
/tmp/ci-experiments -quick -j 4 -cachedir off all > /tmp/ci-nocache-j4.txt
cmp /tmp/ci-cold.txt /tmp/ci-nocache-j4.txt
rm -rf /tmp/ci-experiments /tmp/ci-cache /tmp/ci-default-cache \
    /tmp/ci-cold.txt /tmp/ci-warm.txt /tmp/ci-heal.txt /tmp/ci-nocache-j4.txt
