#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector on every
# package that participates in the parallel evaluation engine, and
# finally a bounded differential-testing smoke that must be byte-stable
# across worker counts.
set -eux

go vet ./...
go build ./...
go test ./...

# Repo-local lint: raw pipeline.Config literals and map-order-dependent
# output are build failures (see internal/lint).
go run ./cmd/lint -root .
go test -race -count=1 \
    ./internal/telemetry/ \
    ./internal/suite/ \
    ./internal/workerpool/ \
    ./internal/evalcache/ \
    ./internal/resilience/ \
    ./internal/tuner/ \
    ./internal/experiments/ \
    ./internal/specsuite/ \
    ./internal/testsuite/ \
    ./internal/difftest/

# Keep the binary smokes hermetic: the persistent evalcache defaults to
# the user cache dir, which CI must neither read nor pollute.
DEBUGTUNER_CACHE_DIR=/tmp/ci-default-cache
export DEBUGTUNER_CACHE_DIR
rm -rf /tmp/ci-default-cache

# Differential smoke: a small fixed seed set over the plain level matrix
# must report zero findings, and stdout must not depend on parallelism.
go build -o /tmp/ci-experiments ./cmd/experiments
/tmp/ci-experiments -j 1 -seeds 5 -configs levels difftest > /tmp/ci-difftest-j1.txt
/tmp/ci-experiments -j 4 -seeds 5 -configs levels difftest > /tmp/ci-difftest-j4.txt
cmp /tmp/ci-difftest-j1.txt /tmp/ci-difftest-j4.txt
grep -q '^PASS$' /tmp/ci-difftest-j1.txt
rm -f /tmp/ci-experiments /tmp/ci-difftest-j1.txt /tmp/ci-difftest-j4.txt

# Static debug-info verification smoke: one subject under both profiles
# must be debugify-clean, byte-stable across worker counts; and the
# verify-each driver must pass on a known-good fixture.
go build -o /tmp/ci-experiments ./cmd/experiments
/tmp/ci-experiments -j 1 -dbg-subjects libpng debugify > /tmp/ci-debugify-j1.txt
/tmp/ci-experiments -j 4 -dbg-subjects libpng debugify > /tmp/ci-debugify-j4.txt
cmp /tmp/ci-debugify-j1.txt /tmp/ci-debugify-j4.txt
grep -q '^PASS$' /tmp/ci-debugify-j1.txt
rm -f /tmp/ci-experiments /tmp/ci-debugify-j1.txt /tmp/ci-debugify-j4.txt
go run ./cmd/minicc -O 2 -verify-each internal/difftest/testdata/fold_minint_div.mc \
    | grep -q '^PASS$'
go run ./cmd/minicc -profile clang -O 3 -verify-each internal/difftest/testdata/fold_shift_mask.mc \
    | grep -q '^PASS$'

# Chaos smoke: under deterministic fault injection the same bounded
# matrix must (a) complete with quarantined cells and the distinct
# "completed with gaps" exit code 3, (b) produce byte-identical output
# at any worker count, and (c) after checkpointing the faulted run to a
# journal, resume WITHOUT chaos, rerun only the incomplete and
# quarantined cells, and finish clean with exit 0.
go build -o /tmp/ci-experiments ./cmd/experiments
rc=0; /tmp/ci-experiments -j 1 -chaos rate=0.5,seed=21 -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-chaos-j1.txt || rc=$?
test "$rc" -eq 3
rc=0; /tmp/ci-experiments -j 4 -chaos rate=0.5,seed=21 -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-chaos-j4.txt || rc=$?
test "$rc" -eq 3
cmp /tmp/ci-chaos-j1.txt /tmp/ci-chaos-j4.txt
grep -q '^QUARANTINED(' /tmp/ci-chaos-j1.txt
rc=0; /tmp/ci-experiments -j 4 -chaos rate=0.5,seed=21 -seeds 3 -suite=false -configs levels \
    -journal /tmp/ci-chaos.jsonl difftest > /dev/null || rc=$?
test "$rc" -eq 3
/tmp/ci-experiments -j 4 -resume /tmp/ci-chaos.jsonl -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-resume.txt
grep -q '^PASS$' /tmp/ci-resume.txt
rm -f /tmp/ci-experiments /tmp/ci-chaos-j1.txt /tmp/ci-chaos-j4.txt \
    /tmp/ci-chaos.jsonl /tmp/ci-resume.txt

# Persistent-cache smoke: a cold quick-all into a fresh cache directory,
# then a warm rerun from it — the warm run must be byte-identical and
# measurably faster (it skips every fingerprinted build+trace). Then
# corrupt one entry in place: the store must self-heal (recompute the
# cell, delete the bad file) and still produce identical output. Last, a
# -j 4 run with the cache disabled proves stdout depends on neither the
# cache nor the worker count — this is also the determinism gate for the
# direct-threaded/fused interpreter cores, which quick-all exercises on
# every uninstrumented VM run.
go build -o /tmp/ci-experiments ./cmd/experiments
rm -rf /tmp/ci-cache
T0=$(date +%s)
/tmp/ci-experiments -quick -j 1 -cachedir /tmp/ci-cache all > /tmp/ci-cold.txt
T1=$(date +%s)
/tmp/ci-experiments -quick -j 1 -cachedir /tmp/ci-cache all > /tmp/ci-warm.txt
T2=$(date +%s)
cmp /tmp/ci-cold.txt /tmp/ci-warm.txt
COLD=$((T1 - T0)); WARM=$((T2 - T1))
test $((WARM * 2)) -lt "$COLD"
ENTRY=$(find /tmp/ci-cache -name '*.json' | head -n 1)
test -n "$ENTRY"
printf 'garbage' > "$ENTRY"
/tmp/ci-experiments -quick -j 1 -cachedir /tmp/ci-cache all > /tmp/ci-heal.txt
cmp /tmp/ci-cold.txt /tmp/ci-heal.txt
# The corrupt bytes must be gone: self-heal deletes the bad entry and
# the recompute rewrites the slot. (Explicit if: `set -e` skips negated
# commands.)
if grep -qs garbage "$ENTRY"; then echo "corrupt entry survived"; exit 1; fi
/tmp/ci-experiments -quick -j 4 -cachedir off all > /tmp/ci-nocache-j4.txt
cmp /tmp/ci-cold.txt /tmp/ci-nocache-j4.txt
rm -rf /tmp/ci-experiments /tmp/ci-cache /tmp/ci-default-cache \
    /tmp/ci-cold.txt /tmp/ci-warm.txt /tmp/ci-heal.txt /tmp/ci-nocache-j4.txt

# Multi-worker smoke: `experiments work` distributes one run across N
# worker processes leasing cells from a shared journal directory, then
# merges and renders. The render must be byte-identical to the
# single-process run for N=1 and N=3 — including when a worker is
# killed -9 one second in (its leases expire, peers re-lease the cells)
# — and the killed run must still exit 0.
go build -o /tmp/ci-experiments ./cmd/experiments
/tmp/ci-experiments -cachedir off -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-work-ref.txt
/tmp/ci-experiments work -workers 1 -cachedir off -seeds 3 -suite=false \
    -configs levels difftest > /tmp/ci-work-1.txt
cmp /tmp/ci-work-ref.txt /tmp/ci-work-1.txt
/tmp/ci-experiments work -workers 3 -kill-worker 1:1s -lease-ttl 2s \
    -cachedir off -seeds 3 -suite=false -configs levels \
    difftest > /tmp/ci-work-3.txt
cmp /tmp/ci-work-ref.txt /tmp/ci-work-3.txt
rm -f /tmp/ci-experiments /tmp/ci-work-ref.txt /tmp/ci-work-1.txt \
    /tmp/ci-work-3.txt

# tunerd smoke: boot the service on an ephemeral port, tune + report
# through the real client, and hold the serving contract: (a) two
# identical requests return byte-identical bodies with the second a
# response-cache hit per /debug/metrics, (b) response bytes do not
# depend on -j or cache state (a second, differently-configured server
# must agree byte for byte), (c) SIGTERM drains gracefully — new
# requests get the typed 503 during the grace window and the process
# exits 0.
go build -o /tmp/ci-tunerd ./cmd/tunerd
go build -o /tmp/ci-tunerd-client ./cmd/tunerd-client
rm -rf /tmp/ci-tunerd-cache
/tmp/ci-tunerd -addr 127.0.0.1:0 -j 4 -cachedir /tmp/ci-tunerd-cache \
    -drain-grace 2s > /tmp/ci-tunerd.log 2>&1 &
TUNERD_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^tunerd listening on //p' /tmp/ci-tunerd.log)
    test -n "$ADDR" && break
    sleep 0.1
done
test -n "$ADDR"
cat > /tmp/ci-fib.mc <<'EOF'
func fib(n: int): int {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}

func main() {
    print(fib(12));
}
EOF
/tmp/ci-tunerd-client -addr "$ADDR" tune -level O1 -raw /tmp/ci-fib.mc > /tmp/ci-tune-1.json
/tmp/ci-tunerd-client -addr "$ADDR" tune -level O1 -raw /tmp/ci-fib.mc > /tmp/ci-tune-2.json
cmp /tmp/ci-tune-1.json /tmp/ci-tune-2.json
/tmp/ci-tunerd-client -addr "$ADDR" metrics | grep -q '"tunerd.cache.hit"'
/tmp/ci-tunerd-client -addr "$ADDR" report -configs gcc-O0,gcc-O2 -raw /tmp/ci-fib.mc \
    | grep -q '"kind":"report"'
/tmp/ci-tunerd-client -addr "$ADDR" tune -level O1 /tmp/ci-fib.mc \
    | grep -q 'pass ranking'
# Determinism across servers: a cold instance with different worker
# count and no disk cache must return the exact same bytes.
/tmp/ci-tunerd -addr 127.0.0.1:0 -j 1 -cachedir off \
    > /tmp/ci-tunerd2.log 2>&1 &
TUNERD2_PID=$!
ADDR2=""
for _ in $(seq 1 50); do
    ADDR2=$(sed -n 's/^tunerd listening on //p' /tmp/ci-tunerd2.log)
    test -n "$ADDR2" && break
    sleep 0.1
done
test -n "$ADDR2"
/tmp/ci-tunerd-client -addr "$ADDR2" tune -level O1 -raw /tmp/ci-fib.mc > /tmp/ci-tune-3.json
cmp /tmp/ci-tune-1.json /tmp/ci-tune-3.json
kill -TERM "$TUNERD2_PID"
wait "$TUNERD2_PID"
# Graceful drain: during the grace window a new request must be
# rejected with the typed draining error, and the server must exit 0.
kill -TERM "$TUNERD_PID"
sleep 0.3
rc=0; /tmp/ci-tunerd-client -addr "$ADDR" tune -level O1 /tmp/ci-fib.mc \
    2> /tmp/ci-drain-err.txt || rc=$?
test "$rc" -ne 0
grep -q 'draining' /tmp/ci-drain-err.txt
wait "$TUNERD_PID"
# Fleet smoke: a -workers 2 supervisor (admission + round-robin proxy
# over re-exec'd worker tunerds) must serve the exact same bytes as the
# single-process servers above, and SIGTERM must drain the whole fleet
# with exit 0.
/tmp/ci-tunerd -workers 2 -addr 127.0.0.1:0 -cachedir off \
    > /tmp/ci-tunerd3.log 2>&1 &
TUNERD3_PID=$!
ADDR3=""
for _ in $(seq 1 50); do
    ADDR3=$(sed -n 's/^tunerd listening on //p' /tmp/ci-tunerd3.log)
    test -n "$ADDR3" && break
    sleep 0.1
done
test -n "$ADDR3"
/tmp/ci-tunerd-client -addr "$ADDR3" tune -level O1 -raw /tmp/ci-fib.mc > /tmp/ci-tune-4.json
cmp /tmp/ci-tune-1.json /tmp/ci-tune-4.json
kill -TERM "$TUNERD3_PID"
wait "$TUNERD3_PID"
rm -rf /tmp/ci-tunerd /tmp/ci-tunerd-client /tmp/ci-tunerd-cache \
    /tmp/ci-tunerd.log /tmp/ci-tunerd2.log /tmp/ci-tunerd3.log \
    /tmp/ci-fib.mc /tmp/ci-tune-1.json /tmp/ci-tune-2.json \
    /tmp/ci-tune-3.json /tmp/ci-tune-4.json /tmp/ci-drain-err.txt

# Hunt smoke: a small seeded campaign with a planted bug must (a) find
# and bucket the plant with byte-identical reports across two runs,
# (b) survive SIGTERM mid-campaign — distinct exit code 4, journal
# flushed — and resume to the uninterrupted run's exact bytes, and
# (c) render the same bytes when the candidates are leased across two
# worker processes and merged.
go build -o /tmp/ci-experiments ./cmd/experiments
HUNT='-hunt-epochs 1 -hunt-candidates 4 -hunt-configs gcc-O2 -hunt-plant scope-nesting@dse'
# shellcheck disable=SC2086  # HUNT is a word list by construction
/tmp/ci-experiments $HUNT hunt > /tmp/ci-hunt-ref.txt
grep -q 'HUNT FINDINGS' /tmp/ci-hunt-ref.txt
grep -q 'scope-nesting @ dse' /tmp/ci-hunt-ref.txt
/tmp/ci-experiments $HUNT hunt > /tmp/ci-hunt-2.txt
cmp /tmp/ci-hunt-ref.txt /tmp/ci-hunt-2.txt
rm -f /tmp/ci-hunt.jsonl
/tmp/ci-experiments -journal /tmp/ci-hunt.jsonl $HUNT hunt \
    > /tmp/ci-hunt-int.txt &
HUNT_PID=$!
sleep 1.5
kill -TERM "$HUNT_PID"
rc=0; wait "$HUNT_PID" || rc=$?
test "$rc" -eq 4
grep -q 'HUNT INTERRUPTED' /tmp/ci-hunt-int.txt
test -s /tmp/ci-hunt.jsonl
/tmp/ci-experiments -resume /tmp/ci-hunt.jsonl $HUNT hunt \
    > /tmp/ci-hunt-resume.txt
cmp /tmp/ci-hunt-ref.txt /tmp/ci-hunt-resume.txt
/tmp/ci-experiments work -workers 2 $HUNT hunt > /tmp/ci-hunt-w2.txt
cmp /tmp/ci-hunt-ref.txt /tmp/ci-hunt-w2.txt
rm -f /tmp/ci-experiments /tmp/ci-hunt-ref.txt /tmp/ci-hunt-2.txt \
    /tmp/ci-hunt.jsonl /tmp/ci-hunt-int.txt /tmp/ci-hunt-resume.txt \
    /tmp/ci-hunt-w2.txt

# Dataflow-analyzer smoke: loc-stale is a binary-level violation the IR
# analyzer cannot see — a planted one must be caught through the
# verify-each mid-chain attribution path and bucketed at the planted
# pass, byte-identically at -j 1 and -j 4 and across SIGTERM + -resume.
# Then the full debugify matrix (every subject x both profiles x every
# level) must be clean: zero non-advisory findings, no allowlist.
go build -o /tmp/ci-experiments ./cmd/experiments
DFHUNT='-hunt-epochs 1 -hunt-candidates 4 -hunt-configs gcc-O2 -hunt-plant loc-stale@dse'
# shellcheck disable=SC2086  # DFHUNT is a word list by construction
/tmp/ci-experiments -j 1 $DFHUNT hunt > /tmp/ci-df-j1.txt
grep -q 'HUNT FINDINGS' /tmp/ci-df-j1.txt
grep -q 'loc-stale @ dse' /tmp/ci-df-j1.txt
/tmp/ci-experiments -j 4 $DFHUNT hunt > /tmp/ci-df-j4.txt
cmp /tmp/ci-df-j1.txt /tmp/ci-df-j4.txt
rm -f /tmp/ci-df.jsonl
/tmp/ci-experiments -journal /tmp/ci-df.jsonl $DFHUNT hunt \
    > /tmp/ci-df-int.txt &
DF_PID=$!
sleep 1.5
kill -TERM "$DF_PID"
rc=0; wait "$DF_PID" || rc=$?
test "$rc" -eq 4
grep -q 'HUNT INTERRUPTED' /tmp/ci-df-int.txt
test -s /tmp/ci-df.jsonl
/tmp/ci-experiments -resume /tmp/ci-df.jsonl $DFHUNT hunt \
    > /tmp/ci-df-resume.txt
cmp /tmp/ci-df-j1.txt /tmp/ci-df-resume.txt
/tmp/ci-experiments -j 4 debugify > /tmp/ci-df-matrix.txt
grep -q '^PASS$' /tmp/ci-df-matrix.txt
rm -f /tmp/ci-experiments /tmp/ci-df-j1.txt /tmp/ci-df-j4.txt \
    /tmp/ci-df.jsonl /tmp/ci-df-int.txt /tmp/ci-df-resume.txt \
    /tmp/ci-df-matrix.txt
