#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector on every
# package that participates in the parallel evaluation engine, and
# finally a bounded differential-testing smoke that must be byte-stable
# across worker counts.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -count=1 \
    ./internal/telemetry/ \
    ./internal/suite/ \
    ./internal/workerpool/ \
    ./internal/evalcache/ \
    ./internal/tuner/ \
    ./internal/experiments/ \
    ./internal/specsuite/ \
    ./internal/testsuite/ \
    ./internal/difftest/

# Differential smoke: a small fixed seed set over the plain level matrix
# must report zero findings, and stdout must not depend on parallelism.
go build -o /tmp/ci-experiments ./cmd/experiments
/tmp/ci-experiments -j 1 -seeds 5 -configs levels difftest > /tmp/ci-difftest-j1.txt
/tmp/ci-experiments -j 4 -seeds 5 -configs levels difftest > /tmp/ci-difftest-j4.txt
cmp /tmp/ci-difftest-j1.txt /tmp/ci-difftest-j4.txt
grep -q '^PASS$' /tmp/ci-difftest-j1.txt
rm -f /tmp/ci-experiments /tmp/ci-difftest-j1.txt /tmp/ci-difftest-j4.txt
