#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector on every
# package that participates in the parallel evaluation engine.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race -count=1 \
    ./internal/telemetry/ \
    ./internal/suite/ \
    ./internal/workerpool/ \
    ./internal/evalcache/ \
    ./internal/tuner/ \
    ./internal/experiments/ \
    ./internal/specsuite/ \
    ./internal/testsuite/
