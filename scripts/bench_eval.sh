#!/bin/sh
# Benchmarks the evaluation engine and writes BENCH_eval.json.
#
# Three sections, all against `experiments -quick all`:
#   compute   — wall-clock serial (-j 1) vs parallel (-j N) with the
#               persistent cache disabled, plus telemetry overhead.
#               The parallel-speedup claim is only emitted when the
#               machine actually has more than one CPU; on a 1-CPU
#               container the honest number is "extra workers cannot
#               help" and the field is left out.
#   persist   — cold run into a fresh cache directory, then a warm
#               rerun from it; both must be byte-identical to the
#               no-cache stdout.
#   debugify  — the verify-each matrix vs the same matrix built
#               plainly (-dbg-verify=false).
#
# Usage: scripts/bench_eval.sh [jobs]   (default parallel width: 4)
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-4}"
OUT=BENCH_eval.json
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

# Record the machine as it is: the number of CPUs the runtime sees is
# what bounds any parallel speedup, and pretending otherwise makes the
# numbers unreproducible.
NUM_CPUS=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
GOMAXPROCS="${GOMAXPROCS:-$NUM_CPUS}"
export GOMAXPROCS

time_run() {
    # time_run <stdout-file> <flags...>: seconds, with subsecond
    # precision where the shell provides it.
    out="$1"; shift
    start=$(date +%s.%N 2>/dev/null || date +%s)
    "$TMP/experiments" -quick "$@" all >"$out"
    end=$(date +%s.%N 2>/dev/null || date +%s)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.1f", b - a }'
}

echo "serial run (-j 1, cache off)..." >&2
SERIAL=$(time_run "$TMP/serial.txt" -j 1 -cachedir off)

PARALLEL_FIELDS=""
if [ "$NUM_CPUS" -gt 1 ]; then
    echo "parallel run (-j $JOBS, cache off)..." >&2
    PARALLEL=$(time_run "$TMP/parallel.txt" -j "$JOBS" -cachedir off)
    SPEEDUP=$(awk -v s="$SERIAL" -v p="$PARALLEL" 'BEGIN { printf "%.2f", s / p }')
    PARALLEL_FIELDS=$(printf '\n  "parallel_seconds": %s,\n  "speedup_parallel_vs_serial": %s,' \
        "$PARALLEL" "$SPEEDUP")
else
    echo "single-CPU machine: skipping the parallel-speedup claim" >&2
    # Still verify parallel stdout identity, which is a correctness
    # property, not a performance one.
    "$TMP/experiments" -quick -j "$JOBS" -cachedir off all >"$TMP/parallel.txt"
fi

echo "telemetry run (-j $JOBS -trace, cache off)..." >&2
TELEMETRY=$(time_run "$TMP/telemetry.txt" -j "$JOBS" -cachedir off \
    -trace "$TMP/trace.json" -metrics "$TMP/metrics.json")
OVERHEAD=$(awk -v s="$SERIAL" -v t="$TELEMETRY" \
    'BEGIN { printf "%.1f", 100 * (t - s) / s }')

echo "cold run (fresh cache dir)..." >&2
COLD=$(time_run "$TMP/cold.txt" -j 1 -cachedir "$TMP/cache")
echo "warm run (same cache dir)..." >&2
WARM=$(time_run "$TMP/warm.txt" -j 1 -cachedir "$TMP/cache")
WARM_SPEEDUP=$(awk -v c="$COLD" -v w="$WARM" \
    'BEGIN { if (w == 0) w = 0.1; printf "%.1f", c / w }')

if cmp -s "$TMP/serial.txt" "$TMP/parallel.txt" &&
   cmp -s "$TMP/serial.txt" "$TMP/telemetry.txt" &&
   cmp -s "$TMP/serial.txt" "$TMP/cold.txt" &&
   cmp -s "$TMP/serial.txt" "$TMP/warm.txt"; then
    IDENTICAL=true
else
    IDENTICAL=false
    for f in parallel telemetry cold warm; do
        diff "$TMP/serial.txt" "$TMP/$f.txt" | head -10 >&2 || true
    done
fi

# Verify-each overhead: the debugify matrix with the per-pass analyzer
# on, against the same matrix built plainly (-dbg-verify=false).
echo "debugify run (verify-each on)..." >&2
DSTART=$(date +%s.%N 2>/dev/null || date +%s)
"$TMP/experiments" -j "$JOBS" debugify >"$TMP/debugify.txt"
DEND=$(date +%s.%N 2>/dev/null || date +%s)
VERIFY=$(awk -v a="$DSTART" -v b="$DEND" 'BEGIN { printf "%.1f", b - a }')
echo "debugify baseline (plain builds)..." >&2
DSTART=$(date +%s.%N 2>/dev/null || date +%s)
"$TMP/experiments" -j "$JOBS" -dbg-verify=false debugify >/dev/null
DEND=$(date +%s.%N 2>/dev/null || date +%s)
PLAIN=$(awk -v a="$DSTART" -v b="$DEND" 'BEGIN { printf "%.1f", b - a }')
VERIFY_OVERHEAD=$(awk -v p="$PLAIN" -v v="$VERIFY" \
    'BEGIN { if (p == 0) p = 0.1; printf "%.1f", 100 * (v - p) / p }')
grep -q '^PASS$' "$TMP/debugify.txt"

# SEED_BASELINE_SECONDS (optional): wall-clock of the pre-engine
# `-quick all` on the same machine, for the result-cache comparison.
EXTRA=""
if [ -n "${SEED_BASELINE_SECONDS:-}" ]; then
    CACHE_SPEEDUP=$(awk -v s="$SEED_BASELINE_SECONDS" -v p="$SERIAL" \
        'BEGIN { printf "%.2f", s / p }')
    EXTRA=$(printf '\n  "seed_baseline_seconds": %s,\n  "speedup_vs_seed": %s,' \
        "$SEED_BASELINE_SECONDS" "$CACHE_SPEEDUP")
fi

cat >"$OUT" <<EOF
{
  "benchmark": "cmd/experiments -quick all",
  "jobs": $JOBS,
  "num_cpus": $NUM_CPUS,
  "gomaxprocs": ${GOMAXPROCS},${EXTRA}
  "serial_seconds": $SERIAL,${PARALLEL_FIELDS}
  "telemetry_seconds": $TELEMETRY,
  "telemetry_overhead_pct": $OVERHEAD,
  "cold_cache_seconds": $COLD,
  "warm_cache_seconds": $WARM,
  "warm_speedup": $WARM_SPEEDUP,
  "debugify_verify_seconds": $VERIFY,
  "debugify_plain_seconds": $PLAIN,
  "verify_each_overhead_pct": $VERIFY_OVERHEAD,
  "stdout_byte_identical": $IDENTICAL
}
EOF
cat "$OUT"
