#!/bin/sh
# Benchmarks the evaluation engine: wall-clock of `experiments -quick all`
# serial (-j 1) vs parallel (-j 4), verifies the two stdouts are
# byte-identical — including a run with telemetry enabled (-trace), whose
# overhead is recorded — and writes the numbers to BENCH_eval.json.
#
# Usage: scripts/bench_eval.sh [jobs]   (default parallel width: 4)
set -eu

cd "$(dirname "$0")/.."
JOBS="${1:-4}"
OUT=BENCH_eval.json
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/experiments" ./cmd/experiments

# GOMAXPROCS must be lifted explicitly: on machines whose container
# advertises one CPU the Go runtime would otherwise pin the parallel run
# to a single OS thread regardless of -j.
export GOMAXPROCS="${GOMAXPROCS:-8}"

time_run() {
    # time_run <stdout-file> <flags...>: seconds, with subsecond
    # precision where the shell provides it.
    out="$1"; shift
    start=$(date +%s.%N 2>/dev/null || date +%s)
    "$TMP/experiments" -quick "$@" all >"$out"
    end=$(date +%s.%N 2>/dev/null || date +%s)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.1f", b - a }'
}

# Verify-each overhead: the debugify matrix with the per-pass analyzer
# on, against the same matrix built plainly (-dbg-verify=false).
echo "debugify run (verify-each on)..." >&2
DSTART=$(date +%s.%N 2>/dev/null || date +%s)
"$TMP/experiments" -j "$JOBS" debugify >"$TMP/debugify.txt"
DEND=$(date +%s.%N 2>/dev/null || date +%s)
VERIFY=$(awk -v a="$DSTART" -v b="$DEND" 'BEGIN { printf "%.1f", b - a }')
echo "debugify baseline (plain builds)..." >&2
DSTART=$(date +%s.%N 2>/dev/null || date +%s)
"$TMP/experiments" -j "$JOBS" -dbg-verify=false debugify >/dev/null
DEND=$(date +%s.%N 2>/dev/null || date +%s)
PLAIN=$(awk -v a="$DSTART" -v b="$DEND" 'BEGIN { printf "%.1f", b - a }')
VERIFY_OVERHEAD=$(awk -v p="$PLAIN" -v v="$VERIFY" \
    'BEGIN { if (p == 0) p = 0.1; printf "%.1f", 100 * (v - p) / p }')
grep -q '^PASS$' "$TMP/debugify.txt"

echo "serial run (-j 1)..." >&2
SERIAL=$(time_run "$TMP/serial.txt" -j 1)
echo "parallel run (-j $JOBS)..." >&2
PARALLEL=$(time_run "$TMP/parallel.txt" -j "$JOBS")
echo "telemetry run (-j $JOBS -trace)..." >&2
TELEMETRY=$(time_run "$TMP/telemetry.txt" -j "$JOBS" \
    -trace "$TMP/trace.json" -metrics "$TMP/metrics.json")

if cmp -s "$TMP/serial.txt" "$TMP/parallel.txt" &&
   cmp -s "$TMP/serial.txt" "$TMP/telemetry.txt"; then
    IDENTICAL=true
else
    IDENTICAL=false
    diff "$TMP/serial.txt" "$TMP/parallel.txt" | head -20 >&2 || true
    diff "$TMP/serial.txt" "$TMP/telemetry.txt" | head -20 >&2 || true
fi

SPEEDUP=$(awk -v s="$SERIAL" -v p="$PARALLEL" 'BEGIN { printf "%.2f", s / p }')
OVERHEAD=$(awk -v p="$PARALLEL" -v t="$TELEMETRY" \
    'BEGIN { printf "%.1f", 100 * (t - p) / p }')

# SEED_BASELINE_SECONDS (optional): wall-clock of the pre-engine
# `-quick all` on the same machine, for the result-cache comparison.
EXTRA=""
if [ -n "${SEED_BASELINE_SECONDS:-}" ]; then
    CACHE_SPEEDUP=$(awk -v s="$SEED_BASELINE_SECONDS" -v p="$SERIAL" \
        'BEGIN { printf "%.2f", s / p }')
    EXTRA=$(printf '\n  "seed_baseline_seconds": %s,\n  "speedup_vs_seed": %s,' \
        "$SEED_BASELINE_SECONDS" "$CACHE_SPEEDUP")
fi

cat >"$OUT" <<EOF
{
  "benchmark": "cmd/experiments -quick all",
  "jobs": $JOBS,
  "gomaxprocs": ${GOMAXPROCS},${EXTRA}
  "serial_seconds": $SERIAL,
  "parallel_seconds": $PARALLEL,
  "speedup_parallel_vs_serial": $SPEEDUP,
  "telemetry_seconds": $TELEMETRY,
  "telemetry_overhead_pct": $OVERHEAD,
  "debugify_verify_seconds": $VERIFY,
  "debugify_plain_seconds": $PLAIN,
  "verify_each_overhead_pct": $VERIFY_OVERHEAD,
  "stdout_byte_identical": $IDENTICAL
}
EOF
cat "$OUT"
