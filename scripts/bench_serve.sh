#!/bin/sh
# Benchmarks the tunerd service and writes BENCH_serve.json.
#
# Boots tunerd on an ephemeral port, then fires the synthetic load
# generator at it: N requests over C concurrent workers cycling through
# DISTINCT generated MiniC units. The summary — throughput and
# p50/p95/p99 latency, plus the response-cache hit/coalesce/miss split
# and the quarantine delta — is the wire-format api envelope the load
# subcommand emits, so BENCH_serve.json is itself a v1 payload.
#
# The run fails if any request errors or if the server leaks a
# quarantined cell, which makes this the "sustains concurrent load"
# acceptance gate as well as a benchmark.
#
# Usage: scripts/bench_serve.sh
#   N        total requests      (default 5000)
#   C        concurrent workers  (default 1000)
#   DISTINCT distinct bodies     (default 12)
#   JOBS     tunerd -j           (default: number of CPUs)
set -eu

cd "$(dirname "$0")/.."
N="${N:-5000}"
C="${C:-1000}"
DISTINCT="${DISTINCT:-12}"
NUM_CPUS=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
JOBS="${JOBS:-$NUM_CPUS}"
OUT=BENCH_serve.json
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"; [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true' EXIT

go build -o "$TMP/tunerd" ./cmd/tunerd
go build -o "$TMP/tunerd-client" ./cmd/tunerd-client

"$TMP/tunerd" -addr 127.0.0.1:0 -j "$JOBS" -cachedir "$TMP/cache" \
    > "$TMP/tunerd.log" 2>&1 &
PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^tunerd listening on //p' "$TMP/tunerd.log")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "tunerd did not come up:" >&2
    cat "$TMP/tunerd.log" >&2
    exit 1
fi
echo "tunerd up on $ADDR (-j $JOBS); load: n=$N c=$C distinct=$DISTINCT" >&2

"$TMP/tunerd-client" -addr "$ADDR" load \
    -n "$N" -c "$C" -distinct "$DISTINCT" -o "$OUT"

kill -TERM "$PID"
wait "$PID"
PID=""
cat "$OUT"
