package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the v1 wire format to a tunerd server. It returns both
// the decoded payload and the raw response body, so callers that need
// byte-level comparisons (the ci.sh determinism gate) see exactly what
// the server sent.
type Client struct {
	// Base is the server base URL, e.g. "http://127.0.0.1:8347".
	Base string
	// HTTP is the underlying client; nil uses a default with a 10-minute
	// timeout (tune requests do real compiler work).
	HTTP *http.Client
}

// NewClient returns a client for the given base URL (scheme optional;
// "host:port" is normalized to http).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Minute}
}

// post marshals req, POSTs it, and returns the raw response body.
// Wire-level errors (transport, non-JSON bodies) are returned as plain
// errors; a well-formed envelope is returned to the caller even when it
// carries a typed Error payload.
func (c *Client) post(path string, req any) (*Envelope, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.httpClient().Post(c.Base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes*4))
	if err != nil {
		return nil, nil, err
	}
	env, err := DecodeEnvelope(bytes.NewReader(raw))
	if err != nil {
		return nil, raw, fmt.Errorf("%s: HTTP %d: %w", path, resp.StatusCode, err)
	}
	return env, raw, nil
}

// get fetches a path and returns the raw body.
func (c *Client) get(path string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.Base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, MaxRequestBytes*4))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return raw, fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return raw, nil
}

// Tune runs /v1/tune. A typed server error is returned as *Error.
func (c *Client) Tune(req *TuneRequest) (*TuneResult, []byte, error) {
	req.V = Version
	env, raw, err := c.post("/v1/tune", req)
	if err != nil {
		return nil, raw, err
	}
	if env.Error != nil {
		return nil, raw, env.Error
	}
	if env.Tune == nil {
		return nil, raw, fmt.Errorf("/v1/tune: envelope kind %q has no tune payload", env.Kind)
	}
	return env.Tune, raw, nil
}

// Pareto runs /v1/pareto.
func (c *Client) Pareto(req *TuneRequest) (*ParetoResult, []byte, error) {
	req.V = Version
	env, raw, err := c.post("/v1/pareto", req)
	if err != nil {
		return nil, raw, err
	}
	if env.Error != nil {
		return nil, raw, env.Error
	}
	if env.Pareto == nil {
		return nil, raw, fmt.Errorf("/v1/pareto: envelope kind %q has no pareto payload", env.Kind)
	}
	return env.Pareto, raw, nil
}

// Report runs /v1/report.
func (c *Client) Report(req *ReportRequest) (*DebugReport, []byte, error) {
	req.V = Version
	env, raw, err := c.post("/v1/report", req)
	if err != nil {
		return nil, raw, err
	}
	if env.Error != nil {
		return nil, raw, env.Error
	}
	if env.Report == nil {
		return nil, raw, fmt.Errorf("/v1/report: envelope kind %q has no report payload", env.Kind)
	}
	return env.Report, raw, nil
}

// Metrics fetches the raw /debug/metrics JSON summary.
func (c *Client) Metrics() ([]byte, error) { return c.get("/debug/metrics") }

// Counters fetches /debug/metrics and extracts the counters map.
func (c *Client) Counters() (map[string]int64, error) {
	raw, err := c.Metrics()
	if err != nil {
		return nil, err
	}
	var summary struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(raw, &summary); err != nil {
		return nil, fmt.Errorf("/debug/metrics: %w", err)
	}
	return summary.Counters, nil
}

// Quarantine fetches the server's quarantined-cell list.
func (c *Client) Quarantine() ([]QuarantineRecord, []byte, error) {
	raw, err := c.get("/debug/quarantine")
	if err != nil {
		return nil, raw, err
	}
	env, err := DecodeEnvelope(bytes.NewReader(raw))
	if err != nil {
		return nil, raw, err
	}
	if env.Error != nil {
		return nil, raw, env.Error
	}
	return env.Quarantine, raw, nil
}

// Healthz reports whether the server is accepting work.
func (c *Client) Healthz() error {
	_, err := c.get("/healthz")
	return err
}
