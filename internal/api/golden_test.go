package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden locks one DTO's wire form: the fixture must marshal to the
// committed golden byte for byte (field order, names, omitempty
// behavior), and the golden must unmarshal back to a deep-equal value.
// Any change to these bytes is a wire-format change and must be a
// conscious, versioned decision.
func golden[T any](t *testing.T, name string, fixture T) {
	t.Helper()
	got, err := json.MarshalIndent(fixture, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name+".golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: marshaled form drifted from golden\n got: %s\nwant: %s", name, got, want)
	}
	var back T
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("%s: golden does not unmarshal: %v", name, err)
	}
	if !reflect.DeepEqual(back, fixture) {
		t.Errorf("%s: round-trip mismatch\n got: %+v\nwant: %+v", name, back, fixture)
	}
}

func spd(v float64) *float64 { return &v }

func TestGoldenError(t *testing.T) {
	golden(t, "error", Error{Code: CodeInvalidArgument, Msg: "unknown profile \"tcc\""})
}

func TestGoldenUnit(t *testing.T) {
	golden(t, "unit", Unit{Name: "zlib", Source: "func main() {\n    print(1);\n}\n"})
}

func TestGoldenTuneRequest(t *testing.T) {
	golden(t, "tune_request", TuneRequest{
		V: 1, Profile: "gcc", Level: "O2", Dy: []int{3, 5, 7, 9},
		Units: []Unit{{Name: "a", Source: "func main() { print(1); }"}},
	})
}

func TestGoldenRankedPass(t *testing.T) {
	golden(t, "ranked_pass", RankedPass{
		Rank: 1, Name: "dce", Display: "dead code elimination", Backend: false,
		AvgRank: 1.42, GeoIncrementPct: 12.5,
	})
}

func TestGoldenTunedConfig(t *testing.T) {
	golden(t, "tuned_config", TunedConfig{
		Name: "O2-d3", Disabled: []string{"dce", "licm", "sroa"},
		Product: 0.6412, DeltaPct: 14.02, Speedup: spd(3.17),
	})
}

func TestGoldenTuneResult(t *testing.T) {
	golden(t, "tune_result", TuneResult{
		Profile: "gcc", Level: "O2", Subjects: []string{"a", "b"},
		Positive: 7, Neutral: 3, Negative: 2,
		Ranking: []RankedPass{
			{Rank: 1, Name: "dce", Display: "dead code elimination", AvgRank: 1.0, GeoIncrementPct: 9.1},
			{Rank: 2, Name: "licm", Display: "loop-invariant code motion", Backend: true, AvgRank: -1, GeoIncrementPct: 0},
		},
		Reference: TunedConfig{Name: "O2", Product: 0.5591},
		Configs: []TunedConfig{
			{Name: "O2-d3", Disabled: []string{"dce"}, Product: 0.6001, DeltaPct: 7.33},
		},
		QuarantinedSubjects: []string{"b"},
		QuarantinedCells:    2,
	})
}

func TestGoldenParetoPoint(t *testing.T) {
	golden(t, "pareto_point", ParetoPoint{
		Label: "O2-d5", Debug: 0.7012, Speedup: 2.85, OnFront: true,
	})
}

func TestGoldenParetoResult(t *testing.T) {
	golden(t, "pareto_result", ParetoResult{
		Profile: "clang", Level: "O3",
		Points: []ParetoPoint{
			{Label: "O0", Debug: 1.0, Speedup: 1.0, OnFront: true},
			{Label: "O3", Debug: 0.31, Speedup: 4.4, OnFront: true},
			{Label: "O3-d9", Quarantined: true},
		},
		FrontSize: 2,
	})
}

func TestGoldenReportRequest(t *testing.T) {
	golden(t, "report_request", ReportRequest{
		V: 1, Configs: "gcc-O2,clang-O3*",
		Units: []Unit{{Name: "subj", Source: "func main() { print(0); }"}},
	})
}

func TestGoldenFinding(t *testing.T) {
	golden(t, "finding", Finding{
		Subject: "subj", Config: "gcc-O2", Kind: "behavior",
		Detail: "output diverges from reference at step 12",
	})
}

func TestGoldenStaticStat(t *testing.T) {
	golden(t, "static_stat", StaticStat{
		Subject: "subj", Config: "gcc-O2",
		BaseLines: 120, BaseVars: 34, FinalLines: 96, FinalVars: 28, Violations: 1,
	})
}

func TestGoldenDebugReport(t *testing.T) {
	golden(t, "debug_report", DebugReport{
		Subjects: []string{"subj"}, Configs: []string{"gcc-O0", "gcc-O2"},
		Findings: []Finding{
			{Subject: "subj", Config: "gcc-O2", Kind: "invariant", Detail: "line table hole"},
		},
		Mismatches: 0, Violations: 1,
		Static: []StaticStat{
			{Subject: "subj", Config: "gcc-O0", BaseLines: 10, BaseVars: 2, FinalLines: 10, FinalVars: 2},
		},
		Quarantined: []QuarantineRecord{
			{Key: "subj|gcc-O2", Kind: "quarantine", Attempts: 3, Err: "cell panicked"},
		},
	})
}

func TestGoldenQuarantineRecord(t *testing.T) {
	golden(t, "quarantine_record", QuarantineRecord{
		Key: "measure|zlib|gcc-O2|licm", Kind: "panic", Attempts: 3, Pass: "licm",
		Err: "runtime error: index out of range",
	})
}

func TestGoldenLoadReport(t *testing.T) {
	golden(t, "load_report", LoadReport{
		Requests: 1000, Concurrency: 100, Distinct: 8, Errors: 0,
		DurationSec: 4.21, Throughput: 237.5,
		P50ms: 11.2, P95ms: 61.0, P99ms: 114.9,
		CacheHits: 871, CacheCoalesced: 121, CacheMisses: 8, Quarantined: 0,
	})
}

func TestGoldenEnvelope(t *testing.T) {
	golden(t, "envelope_error", Envelope{
		V: 1, Kind: "error",
		Error: &Error{Code: CodeDraining, Msg: "server is draining"},
	})
}

// TestMarshalEnvelopeDeterministic locks the byte-determinism property
// the response cache depends on: marshaling the same envelope twice
// yields identical bytes, ending in exactly one newline.
func TestMarshalEnvelopeDeterministic(t *testing.T) {
	env := &Envelope{Kind: "tune", Tune: &TuneResult{
		Profile: "gcc", Level: "O2", Subjects: []string{"a"},
		Reference: TunedConfig{Name: "O2", Product: 0.5},
	}}
	a, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two marshalings of one envelope differ")
	}
	if a[len(a)-1] != '\n' || bytes.Count(a, []byte("\n")) != 1 {
		t.Errorf("envelope body %q is not compact-JSON-plus-newline", a)
	}
	if env.V != Version {
		t.Errorf("MarshalEnvelope left V=%d, want %d", env.V, Version)
	}
}

// TestCanonicalKeyNormalizes locks the cache-key property: requests
// that decode to the same normalized value share a key regardless of
// JSON whitespace or field order, and different endpoints never share.
func TestCanonicalKeyNormalizes(t *testing.T) {
	a, aerr := DecodeTuneRequest(bytes.NewReader([]byte(
		`{"v":1,"profile":"gcc","level":"O2","units":[{"name":"a","source":"func main() { print(1); }"}]}`)))
	if aerr != nil {
		t.Fatal(aerr)
	}
	b, berr := DecodeTuneRequest(bytes.NewReader([]byte(
		"{\n  \"units\": [{\"source\": \"func main() { print(1); }\", \"name\": \"a\"}],\n  \"level\": \"O2\", \"profile\": \"gcc\", \"v\": 1\n}")))
	if berr != nil {
		t.Fatal(berr)
	}
	if CanonicalKey("tune", a) != CanonicalKey("tune", b) {
		t.Error("whitespace/field-order variants got different cache keys")
	}
	if CanonicalKey("tune", a) == CanonicalKey("pareto", a) {
		t.Error("different endpoints share a cache key")
	}
}
