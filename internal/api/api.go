// Package api is the versioned wire format of the DebugTuner service:
// typed, JSON-stable DTOs shared by the tunerd server, its client, and
// the text renderers of cmd/debugtuner and cmd/experiments. Everything
// that crosses the HTTP boundary — requests, results, errors — is one
// of these structs inside the explicit `"v":1` envelope, so CLI output
// and server responses are rendered from the same values and can never
// drift.
//
// Wire-format rules (the "v1 contract", locked by golden-file tests):
//
//   - Every request and response carries `"v": 1`. A request with a
//     different (or missing) version is rejected with the typed error
//     code "unsupported_version"; a future breaking change bumps the
//     constant and adds a new decoder, it never mutates these structs.
//   - DTOs contain no maps: field order is fixed by the struct, slices
//     are sorted by their producers, so marshaling is byte-
//     deterministic — the property the server's response cache and the
//     ci.sh determinism gate rely on.
//   - Additive evolution only within v1: new optional fields may be
//     added (old readers ignore them on responses), but existing field
//     names, types, and meanings are frozen. Request decoding rejects
//     unknown fields, making any accidental wire change an explicit
//     test diff.
package api

import "fmt"

// Version is the wire-format version this package speaks.
const Version = 1

// Error is the typed wire error. Code is machine-readable (see the
// Code* constants), Msg is human-readable detail. It implements error
// so the service layer can return it directly.
type Error struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Msg) }

// Wire error codes. The HTTP status is derived from the code (see
// HTTPStatus), not the other way around, so clients can switch on a
// stable vocabulary.
const (
	// CodeBadRequest: the body is not valid JSON for the endpoint's
	// request DTO.
	CodeBadRequest = "bad_request"
	// CodeUnsupportedVersion: the request's "v" is not Version.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeInvalidArgument: well-formed JSON, semantically invalid
	// (unknown profile, empty unit list, oversized source, ...).
	CodeInvalidArgument = "invalid_argument"
	// CodeCompileError: a unit failed the MiniC front end.
	CodeCompileError = "compile_error"
	// CodeOverloaded: admission control rejected the request; retry
	// later.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down gracefully and accepts
	// no new work.
	CodeDraining = "draining"
	// CodeInternal: the computation failed (budget exhaustion, trace
	// failure, quarantine-wrapped panic, ...).
	CodeInternal = "internal"
	// CodeNotFound: unknown endpoint.
	CodeNotFound = "not_found"
)

// HTTPStatus maps a wire error code to its HTTP status.
func HTTPStatus(code string) int {
	switch code {
	case CodeBadRequest, CodeUnsupportedVersion, CodeInvalidArgument, CodeCompileError:
		return 400
	case CodeNotFound:
		return 404
	case CodeOverloaded, CodeDraining:
		return 503
	default:
		return 500
	}
}

// Envelope is the one response wrapper. Exactly one of the payload
// pointers is set, named by Kind ("tune", "pareto", "report",
// "quarantine", "load", "error").
type Envelope struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	Tune       *TuneResult        `json:"tune,omitempty"`
	Pareto     *ParetoResult      `json:"pareto,omitempty"`
	Report     *DebugReport       `json:"report,omitempty"`
	Quarantine []QuarantineRecord `json:"quarantine,omitempty"`
	Load       *LoadReport        `json:"load,omitempty"`
	Error      *Error             `json:"error,omitempty"`
}

// Unit is one MiniC compilation unit submitted for tuning or reporting.
type Unit struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// TuneRequest asks for a DebugTuner analysis of the submitted units:
// the pass ranking at (Profile, Level) and the Ox-dy configuration
// family built from it. The same request shape drives /v1/pareto.
type TuneRequest struct {
	V       int    `json:"v"`
	Profile string `json:"profile"`
	Level   string `json:"level"`
	// Dy lists the Ox-dy sizes to construct; default 3,5,7,9.
	Dy    []int  `json:"dy,omitempty"`
	Units []Unit `json:"units"`
}

// RankedPass is one row of the cross-program pass ranking.
type RankedPass struct {
	Rank    int    `json:"rank"`
	Name    string `json:"name"`
	Display string `json:"display"`
	Backend bool   `json:"backend,omitempty"`
	// AvgRank is the mean per-program rank position; +Inf (fully
	// quarantined, no measurement survived) is encoded as -1 because
	// JSON has no infinities.
	AvgRank         float64 `json:"avg_rank"`
	GeoIncrementPct float64 `json:"geo_increment_pct"`
}

// TunedConfig is one configuration's identity and suite-average scores.
type TunedConfig struct {
	Name string `json:"name"`
	// Disabled lists the disabled pass toggles, sorted.
	Disabled []string `json:"disabled,omitempty"`
	// Product is the suite-average hybrid product metric.
	Product float64 `json:"product"`
	// DeltaPct is the product change versus the reference level, in
	// percent (0 for the reference itself).
	DeltaPct float64 `json:"delta_pct"`
	// Speedup, when present, is the measured speedup (suite geomean
	// over -O0 for server results; SPEC-average for debugtuner -perf).
	Speedup *float64 `json:"speedup,omitempty"`
}

// TuneResult is the /v1/tune response payload.
type TuneResult struct {
	Profile string `json:"profile"`
	Level   string `json:"level"`
	// Subjects are the analyzed unit names, in request order.
	Subjects []string `json:"subjects"`
	// Positive/Neutral/Negative count passes by average effect.
	Positive int `json:"positive"`
	Neutral  int `json:"neutral"`
	Negative int `json:"negative"`
	// Ranking is the full pass ranking, best first.
	Ranking []RankedPass `json:"ranking"`
	// Reference is the unmodified level's scores.
	Reference TunedConfig `json:"reference"`
	// Configs is the Ox-dy family, one per requested dy.
	Configs []TunedConfig `json:"configs"`
	// QuarantinedSubjects/QuarantinedCells surface resilience gaps; the
	// coordinates above exclude them rather than silently absorbing
	// them.
	QuarantinedSubjects []string `json:"quarantined_subjects,omitempty"`
	QuarantinedCells    int      `json:"quarantined_cells,omitempty"`
}

// ParetoPoint is one configuration in the debuggability/performance
// plane.
type ParetoPoint struct {
	Label   string  `json:"label"`
	Debug   float64 `json:"debug"`
	Speedup float64 `json:"speedup"`
	// OnFront marks Pareto-optimal points.
	OnFront bool `json:"on_front"`
	// Quarantined marks configurations whose measurement was lost; the
	// coordinates are meaningless and the point joins no front.
	Quarantined bool `json:"quarantined,omitempty"`
}

// ParetoResult is the /v1/pareto response payload.
type ParetoResult struct {
	Profile string `json:"profile"`
	Level   string `json:"level"`
	// Points holds every evaluated configuration in evaluation order
	// (plain levels first, then the Ox-dy family).
	Points []ParetoPoint `json:"points"`
	// FrontSize is the size of the non-dominated subset (after
	// coincident-duplicate collapse, matching tuner.ParetoFront).
	FrontSize int `json:"front_size"`
}

// ReportRequest asks for a debuggability report over the submitted
// units: the difftest behavior/invariant oracle plus the staticdbg
// verify-each static analysis, per configuration.
type ReportRequest struct {
	V int `json:"v"`
	// Configs is a difftest matrix spec ("full", "levels", or a comma
	// list like "gcc-O2,clang-O3*"); default "levels".
	Configs string `json:"configs,omitempty"`
	Units   []Unit `json:"units"`
}

// Finding is one debuggability defect: a difftest behavior mismatch,
// a debug-info invariant violation, a static verify-each violation, or
// a quarantine gap. Kind carries difftest's vocabulary ("behavior",
// "invariant", "reference", "quarantine") plus "static".
type Finding struct {
	Subject string `json:"subject"`
	Config  string `json:"config"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail"`
}

// StaticStat is one (subject, config) verify-each outcome: metadata
// survival from the front-end baseline to the emitted binary.
type StaticStat struct {
	Subject    string `json:"subject"`
	Config     string `json:"config"`
	BaseLines  int    `json:"base_lines"`
	BaseVars   int    `json:"base_vars"`
	FinalLines int    `json:"final_lines"`
	FinalVars  int    `json:"final_vars"`
	Violations int    `json:"violations"`
}

// DebugReport is the /v1/report response payload.
type DebugReport struct {
	// Subjects are the reported unit names, in request order.
	Subjects []string `json:"subjects"`
	// Configs names the evaluated configuration matrix.
	Configs []string `json:"configs"`
	// Findings lists every defect, in (subject, matrix) order.
	Findings []Finding `json:"findings"`
	// Mismatches counts behavior/reference findings; Violations counts
	// invariant + static findings.
	Mismatches int `json:"mismatches"`
	Violations int `json:"violations"`
	// Static holds the per-cell survival table, in (subject, config)
	// order.
	Static []StaticStat `json:"static"`
	// Quarantined lists cells the resilience layer gave up on.
	Quarantined []QuarantineRecord `json:"quarantined,omitempty"`
}

// QuarantineRecord is the wire form of a quarantined resilience cell
// (resilience.CellError).
type QuarantineRecord struct {
	Key      string `json:"key"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts"`
	Pass     string `json:"pass,omitempty"`
	Err      string `json:"err"`
}

// LoadReport is the synthetic load generator's summary — the payload
// published to BENCH_serve.json.
type LoadReport struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Distinct    int     `json:"distinct_bodies"`
	Errors      int     `json:"errors"`
	DurationSec float64 `json:"duration_sec"`
	Throughput  float64 `json:"throughput_rps"`
	P50ms       float64 `json:"p50_ms"`
	P95ms       float64 `json:"p95_ms"`
	P99ms       float64 `json:"p99_ms"`
	// Server-side counters sampled from /debug/metrics after the run.
	CacheHits      int64 `json:"cache_hits"`
	CacheCoalesced int64 `json:"cache_coalesced"`
	CacheMisses    int64 `json:"cache_misses"`
	Quarantined    int   `json:"quarantined"`
}
