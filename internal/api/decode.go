package api

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"debugtuner/internal/pipeline"
)

// Request-shape limits. Oversized inputs are a typed invalid_argument,
// never an allocation hazard.
const (
	// MaxRequestBytes bounds a request body.
	MaxRequestBytes = 8 << 20
	// MaxUnits bounds the compilation units per request.
	MaxUnits = 64
	// MaxUnitBytes bounds one unit's source.
	MaxUnitBytes = 256 << 10
	// MaxDy bounds one Ox-dy size.
	MaxDy = 64
)

// DefaultDy is the Ox-dy family constructed when a request leaves Dy
// empty — the paper's standard sizes.
var DefaultDy = []int{3, 5, 7, 9}

// decode reads at most MaxRequestBytes of JSON into dst, rejecting
// unknown fields so wire changes surface as explicit errors instead of
// silent drops.
func decode(r io.Reader, dst any) *Error {
	data, err := io.ReadAll(io.LimitReader(r, MaxRequestBytes+1))
	if err != nil {
		return &Error{Code: CodeBadRequest, Msg: fmt.Sprintf("reading body: %v", err)}
	}
	if len(data) > MaxRequestBytes {
		return &Error{Code: CodeInvalidArgument,
			Msg: fmt.Sprintf("request exceeds %d bytes", MaxRequestBytes)}
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return &Error{Code: CodeBadRequest, Msg: fmt.Sprintf("decoding request: %v", err)}
	}
	// Trailing garbage after the JSON value is a malformed body too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return &Error{Code: CodeBadRequest, Msg: "trailing data after JSON body"}
	}
	return nil
}

// checkUnits validates the shared unit-list constraints.
func checkUnits(units []Unit) *Error {
	if len(units) == 0 {
		return &Error{Code: CodeInvalidArgument, Msg: "at least one unit is required"}
	}
	if len(units) > MaxUnits {
		return &Error{Code: CodeInvalidArgument,
			Msg: fmt.Sprintf("%d units exceeds the limit of %d", len(units), MaxUnits)}
	}
	seen := map[string]bool{}
	for i, u := range units {
		if u.Name == "" {
			return &Error{Code: CodeInvalidArgument, Msg: fmt.Sprintf("unit %d: empty name", i)}
		}
		if len(u.Name) > 128 {
			return &Error{Code: CodeInvalidArgument, Msg: fmt.Sprintf("unit %d: name too long", i)}
		}
		for _, c := range u.Name {
			ok := c == '_' || c == '-' || c == '.' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !ok {
				return &Error{Code: CodeInvalidArgument,
					Msg: fmt.Sprintf("unit %q: names are limited to [A-Za-z0-9_.-]", u.Name)}
			}
		}
		if seen[u.Name] {
			return &Error{Code: CodeInvalidArgument, Msg: fmt.Sprintf("duplicate unit name %q", u.Name)}
		}
		seen[u.Name] = true
		if u.Source == "" {
			return &Error{Code: CodeInvalidArgument, Msg: fmt.Sprintf("unit %q: empty source", u.Name)}
		}
		if len(u.Source) > MaxUnitBytes {
			return &Error{Code: CodeInvalidArgument,
				Msg: fmt.Sprintf("unit %q: source exceeds %d bytes", u.Name, MaxUnitBytes)}
		}
	}
	return nil
}

// checkVersion enforces the explicit envelope version.
func checkVersion(v int) *Error {
	if v != Version {
		return &Error{Code: CodeUnsupportedVersion,
			Msg: fmt.Sprintf("request version %d, server speaks %d", v, Version)}
	}
	return nil
}

// validProfile reports whether p names a known compiler personality.
func validProfile(p string) bool {
	return p == string(pipeline.GCC) || p == string(pipeline.Clang)
}

// validLevel reports whether level exists for the profile.
func validLevel(p pipeline.Profile, level string) bool {
	for _, l := range pipeline.Levels(p) {
		if l == level {
			return true
		}
	}
	return false
}

// DecodeTuneRequest reads, validates, and normalizes a TuneRequest.
// On any failure it returns a typed *Error (bad_request for malformed
// JSON, unsupported_version, or invalid_argument) — it never panics on
// hostile input, which the fuzz target locks.
func DecodeTuneRequest(r io.Reader) (*TuneRequest, *Error) {
	var req TuneRequest
	if e := decode(r, &req); e != nil {
		return nil, e
	}
	if e := checkVersion(req.V); e != nil {
		return nil, e
	}
	if !validProfile(req.Profile) {
		return nil, &Error{Code: CodeInvalidArgument,
			Msg: fmt.Sprintf("unknown profile %q (want gcc or clang)", req.Profile)}
	}
	if !validLevel(pipeline.Profile(req.Profile), req.Level) {
		return nil, &Error{Code: CodeInvalidArgument,
			Msg: fmt.Sprintf("unknown level %q for profile %s", req.Level, req.Profile)}
	}
	if len(req.Dy) == 0 {
		req.Dy = append([]int(nil), DefaultDy...)
	}
	if len(req.Dy) > 16 {
		return nil, &Error{Code: CodeInvalidArgument, Msg: "more than 16 dy sizes"}
	}
	for _, y := range req.Dy {
		if y < 1 || y > MaxDy {
			return nil, &Error{Code: CodeInvalidArgument,
				Msg: fmt.Sprintf("dy %d out of range [1,%d]", y, MaxDy)}
		}
	}
	if e := checkUnits(req.Units); e != nil {
		return nil, e
	}
	return &req, nil
}

// DecodeReportRequest reads, validates, and normalizes a ReportRequest.
func DecodeReportRequest(r io.Reader) (*ReportRequest, *Error) {
	var req ReportRequest
	if e := decode(r, &req); e != nil {
		return nil, e
	}
	if e := checkVersion(req.V); e != nil {
		return nil, e
	}
	if req.Configs == "" {
		req.Configs = "levels"
	}
	if len(req.Configs) > 1024 {
		return nil, &Error{Code: CodeInvalidArgument, Msg: "configs spec too long"}
	}
	if e := checkUnits(req.Units); e != nil {
		return nil, e
	}
	return &req, nil
}

// CanonicalKey content-addresses a normalized request for the response
// cache: endpoint × the canonical re-marshaling of the decoded struct.
// Two requests that differ only in JSON whitespace, field order, or
// defaulted fields share one key, so concurrent identical requests
// single-flight onto one computation.
func CanonicalKey(endpoint string, req any) string {
	data, err := json.Marshal(req)
	if err != nil {
		// DTOs are plain data; marshal cannot fail. Guard anyway.
		data = []byte(fmt.Sprintf("%#v", req))
	}
	sum := sha256.Sum256(data)
	return endpoint + "|" + hex.EncodeToString(sum[:])
}

// MarshalEnvelope renders a response envelope to its canonical wire
// bytes: compact JSON plus a trailing newline. Every server response
// body comes from here, so identical payloads are byte-identical.
func MarshalEnvelope(env *Envelope) ([]byte, error) {
	env.V = Version
	data, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeEnvelope parses a response body. A payload whose Error field is
// set decodes successfully — the caller decides how to surface it.
func DecodeEnvelope(r io.Reader) (*Envelope, error) {
	var env Envelope
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes*4))
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("decoding response envelope: %w", err)
	}
	if env.V != Version {
		return nil, fmt.Errorf("response version %d, client speaks %d", env.V, Version)
	}
	return &env, nil
}

// SortedNames returns the keys of a set, sorted — the one way a
// disabled-pass set becomes a wire slice.
func SortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
