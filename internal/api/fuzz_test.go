package api

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeTuneRequest locks the decoder's hostile-input contract:
// whatever bytes arrive, it returns either a valid normalized request
// or a typed error with a known code — it never panics and never
// returns both nil.
func FuzzDecodeTuneRequest(f *testing.F) {
	f.Add([]byte(`{"v":1,"profile":"gcc","level":"O2","units":[{"name":"a","source":"func main() { print(1); }"}]}`))
	f.Add([]byte(`{"v":2,"profile":"gcc","level":"O2","units":[]}`))
	f.Add([]byte(`{"v":1,"profile":"tcc","level":"O9","units":[{"name":"a","source":"x"}]}`))
	f.Add([]byte(`{"v":1,"profile":"gcc","level":"O2","dy":[0],"units":[{"name":"a","source":"x"}]}`))
	f.Add([]byte(`{"v":1,"unknown_field":true}`))
	f.Add([]byte(`{"v":1}{"v":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("{\"v\":1,\"profile\":\"gcc\",\"level\":\"O2\",\"units\":[{\"name\":\"\\u0000\",\"source\":\"x\"}]}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, aerr := DecodeTuneRequest(bytes.NewReader(data))
		checkDecodeOutcome(t, req == nil, aerr)
		if req != nil {
			if req.V != Version {
				t.Errorf("accepted request with v=%d", req.V)
			}
			if len(req.Dy) == 0 || len(req.Units) == 0 {
				t.Errorf("accepted request without dy/units: %+v", req)
			}
		}
	})
}

// FuzzDecodeReportRequest is the same contract for the report decoder.
func FuzzDecodeReportRequest(f *testing.F) {
	f.Add([]byte(`{"v":1,"units":[{"name":"a","source":"func main() { print(1); }"}]}`))
	f.Add([]byte(`{"v":1,"configs":"full","units":[{"name":"a","source":"x"}]}`))
	f.Add([]byte(`{"v":1,"configs":"` + strings.Repeat("x,", 600) + `","units":[{"name":"a","source":"x"}]}`))
	f.Add([]byte(`{"v":0}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, aerr := DecodeReportRequest(bytes.NewReader(data))
		checkDecodeOutcome(t, req == nil, aerr)
		if req != nil && req.Configs == "" {
			t.Error("accepted request without a configs default")
		}
	})
}

var knownCodes = map[string]bool{
	CodeBadRequest: true, CodeUnsupportedVersion: true, CodeInvalidArgument: true,
	CodeCompileError: true, CodeOverloaded: true, CodeDraining: true,
	CodeInternal: true, CodeNotFound: true,
}

func checkDecodeOutcome(t *testing.T, reqNil bool, aerr *Error) {
	t.Helper()
	if reqNil == (aerr == nil) {
		t.Fatalf("decoder returned reqNil=%v, err=%v; want exactly one", reqNil, aerr)
	}
	if aerr != nil {
		if !knownCodes[aerr.Code] {
			t.Errorf("error with unknown code %q", aerr.Code)
		}
		if s := HTTPStatus(aerr.Code); s != 400 {
			t.Errorf("decode error %q maps to HTTP %d, want 400", aerr.Code, s)
		}
	}
}
