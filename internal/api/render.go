package api

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// This file is the one text-rendering path for API payloads. Command
// debugtuner, command tunerd-client, and the experiments Fig2 table all
// call these functions, so what the CLI prints and what the server
// serves are projections of the same structs and cannot drift.

// RenderTuneResult writes the pass-ranking table and the configuration
// scoreboard. top bounds the ranking rows printed (<= 0 means all).
// The format is the historical debugtuner output, byte for byte.
func RenderTuneResult(w io.Writer, res *TuneResult, top int) {
	if top <= 0 {
		top = len(res.Ranking)
	}
	fmt.Fprintf(w, "\npass ranking for %s-%s (%d toggles; %d improve, %d neutral, %d degrade)\n",
		res.Profile, res.Level, len(res.Ranking), res.Positive, res.Neutral, res.Negative)
	fmt.Fprintf(w, "%-3s %-28s %10s %9s\n", "#", "pass", "avg rank", "Δ%")
	for _, rp := range res.Ranking {
		if rp.Rank > top {
			break
		}
		name := rp.Display
		if rp.Backend {
			name += " *"
		}
		avg := rp.AvgRank
		if avg == -1 {
			// Wire encoding of "no surviving measurement" (see
			// RankedPassesFrom); display as the +Inf it stands for.
			avg = math.Inf(1)
		}
		fmt.Fprintf(w, "%-3d %-28s %10.2f %+8.2f\n", rp.Rank, name, avg, rp.GeoIncrementPct)
	}

	fmt.Fprintf(w, "\nconfigurations (suite-average hybrid product metric)\n")
	renderConfigLine(w, res.Reference, false)
	for _, cfg := range res.Configs {
		renderConfigLine(w, cfg, true)
		fmt.Fprintf(w, "           disabled: %s\n", strings.Join(cfg.Disabled, ", "))
	}
	if len(res.QuarantinedSubjects) > 0 || res.QuarantinedCells > 0 {
		fmt.Fprintf(w, "\nQUARANTINED: %d subject(s) [%s], %d matrix cell(s)\n",
			len(res.QuarantinedSubjects), strings.Join(res.QuarantinedSubjects, ", "),
			res.QuarantinedCells)
	}
}

func renderConfigLine(w io.Writer, cfg TunedConfig, delta bool) {
	fmt.Fprintf(w, "%-10s product=%.4f", cfg.Name, cfg.Product)
	if delta {
		fmt.Fprintf(w, " (%+.2f%%)", cfg.DeltaPct)
	}
	if cfg.Speedup != nil {
		fmt.Fprintf(w, "  speedup=%.2fx", *cfg.Speedup)
	}
	fmt.Fprintln(w)
}

// RenderPareto writes the scatter table and front summary under the
// given header line — the historical Fig2 format, byte for byte
// (including the trailing blank line).
func RenderPareto(w io.Writer, header string, res *ParetoResult) {
	fmt.Fprintf(w, "%s\n", header)
	fmt.Fprintf(w, "%-16s | %10s | %8s\n", "configuration", "product", "speedup")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 44))
	for _, pt := range res.Points {
		if pt.Quarantined {
			fmt.Fprintf(w, "%-16s | %10s | %8s\n", pt.Label, "QUAR", "QUAR")
			continue
		}
		mark := " "
		if pt.OnFront {
			mark = "*"
		}
		fmt.Fprintf(w, "%-16s | %10.4f | %7.2fx %s\n", pt.Label, pt.Debug, pt.Speedup, mark)
	}
	fmt.Fprintf(w, "Pareto-optimal: %d of %d configurations\n\n", res.FrontSize, len(res.Points))
}

// RenderDebugReport writes the debuggability report: per-cell static
// survival, findings, and quarantine gaps.
func RenderDebugReport(w io.Writer, rep *DebugReport) {
	fmt.Fprintf(w, "debug report: %d subject(s) x %d config(s)\n",
		len(rep.Subjects), len(rep.Configs))
	fmt.Fprintf(w, "%-16s %-14s %14s %14s %6s\n",
		"subject", "config", "lines", "vars", "viol")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 68))
	for _, st := range rep.Static {
		fmt.Fprintf(w, "%-16s %-14s %6d/%-7d %6d/%-7d %6d\n",
			st.Subject, st.Config, st.FinalLines, st.BaseLines,
			st.FinalVars, st.BaseVars, st.Violations)
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "FAIL %s [%s] %s: %s\n", f.Subject, f.Config, f.Kind, f.Detail)
	}
	for _, q := range rep.Quarantined {
		fmt.Fprintf(w, "QUAR %s: %s after %d attempt(s): %s\n", q.Key, q.Kind, q.Attempts, q.Err)
	}
	if rep.Mismatches+rep.Violations == 0 && len(rep.Quarantined) == 0 {
		fmt.Fprintln(w, "PASS")
	} else {
		fmt.Fprintf(w, "%d behavior mismatch(es), %d violation(s), %d quarantined\n",
			rep.Mismatches, rep.Violations, len(rep.Quarantined))
	}
}

// RenderLoadReport writes the load generator's human summary.
func RenderLoadReport(w io.Writer, lr *LoadReport) {
	fmt.Fprintf(w, "load: %d requests, %d concurrent, %d distinct bodies\n",
		lr.Requests, lr.Concurrency, lr.Distinct)
	fmt.Fprintf(w, "  errors=%d quarantined=%d\n", lr.Errors, lr.Quarantined)
	fmt.Fprintf(w, "  wall=%.2fs throughput=%.1f req/s\n", lr.DurationSec, lr.Throughput)
	fmt.Fprintf(w, "  latency p50=%.2fms p95=%.2fms p99=%.2fms\n", lr.P50ms, lr.P95ms, lr.P99ms)
	fmt.Fprintf(w, "  server cache: hit=%d coalesced=%d miss=%d\n",
		lr.CacheHits, lr.CacheCoalesced, lr.CacheMisses)
}
