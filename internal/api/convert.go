package api

import (
	"math"

	"debugtuner/internal/difftest"
	"debugtuner/internal/resilience"
	"debugtuner/internal/tuner"
)

// RankedPassesFrom converts a level analysis' ranking to wire rows.
// AvgRank +Inf (a fully-quarantined pass with no surviving measurement)
// becomes -1 on the wire: JSON has no infinities, and -1 is impossible
// for a real average of 1-based ranks.
func RankedPassesFrom(ranking []tuner.RankedPass) []RankedPass {
	out := make([]RankedPass, 0, len(ranking))
	for i, rp := range ranking {
		avg := rp.AvgRank
		if math.IsInf(avg, 1) {
			avg = -1
		}
		out = append(out, RankedPass{
			Rank:            i + 1,
			Name:            rp.Name,
			Display:         rp.Display,
			Backend:         rp.Backend,
			AvgRank:         avg,
			GeoIncrementPct: rp.GeoIncrementPct,
		})
	}
	return out
}

// ParetoResultFrom converts measured points to the wire payload,
// computing front membership once so every consumer (server response,
// Fig2 renderer) agrees on it.
func ParetoResultFrom(profile, level string, pts []tuner.Point) *ParetoResult {
	front := tuner.ParetoFront(pts)
	onFront := make(map[string]bool, len(front))
	for _, p := range front {
		onFront[p.Label] = true
	}
	res := &ParetoResult{Profile: profile, Level: level, FrontSize: len(front)}
	for _, p := range pts {
		res.Points = append(res.Points, ParetoPoint{
			Label:       p.Label,
			Debug:       p.Debug,
			Speedup:     p.Speedup,
			OnFront:     !p.Quarantined && onFront[p.Label],
			Quarantined: p.Quarantined,
		})
	}
	return res
}

// FindingsFrom converts difftest findings to wire findings.
func FindingsFrom(fs []difftest.Finding) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		out = append(out, Finding{
			Subject: f.Subject, Config: f.Config, Kind: f.Kind, Detail: f.Detail,
		})
	}
	return out
}

// QuarantineRecordsFrom converts quarantined cell errors to wire
// records, in the executor's (sorted) report order.
func QuarantineRecordsFrom(ces []*resilience.CellError) []QuarantineRecord {
	out := make([]QuarantineRecord, 0, len(ces))
	for _, ce := range ces {
		rec := QuarantineRecord{
			Key: ce.Key, Kind: string(ce.Kind), Attempts: ce.Attempts, Pass: ce.Pass,
		}
		if ce.Err != nil {
			rec.Err = ce.Err.Error()
		}
		out = append(out, rec)
	}
	return out
}
