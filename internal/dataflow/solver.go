package dataflow

// Graph is the CFG shape the solver iterates over: nodes are dense
// indices [0, NumNodes), with node 0 the entry (forward boundary).
// Backward problems treat every node without successors as a boundary
// node.
type Graph interface {
	NumNodes() int
	Succs(n int) []int
	Preds(n int) []int
}

// Direction selects which way facts propagate.
type Direction int

// Solver directions.
const (
	Forward Direction = iota
	Backward
)

// Meet selects the confluence operator: union for may-problems
// (reaching definitions, liveness), intersection for must-problems
// (availability, anticipability).
type Meet int

// Meet operators.
const (
	Union Meet = iota
	Intersect
)

// Problem is one dataflow problem instance over bitsets of width Bits.
//
// Boundary initializes the entry fact (forward: node 0's in-state;
// backward: the out-state of every exit node). Transfer computes a
// node's out-fact from its in-fact (in flow order; for backward
// problems "in" is the fact at the node's exit and "out" the fact at
// its entry); it must fully overwrite out. Transfer must be monotone
// for the solver to terminate.
type Problem struct {
	Bits     int
	Dir      Direction
	Meet     Meet
	Boundary func(s *BitSet)
	Transfer func(n int, in, out *BitSet)
}

// Solution holds the fixed point: In[n] is the fact at node n's entry
// in flow order (for backward problems, the fact at the node's exit),
// Out[n] the fact after n's transfer.
type Solution struct {
	In, Out []*BitSet
}

// Solve runs the round-robin worklist algorithm to the fixed point.
// Interior in-facts start at the meet's identity: empty for union
// (nothing reaches yet), full for intersection (everything available
// until proven otherwise).
func Solve(g Graph, p Problem) *Solution {
	n := g.NumNodes()
	sol := &Solution{In: make([]*BitSet, n), Out: make([]*BitSet, n)}
	for i := 0; i < n; i++ {
		sol.In[i] = NewBitSet(p.Bits)
		sol.Out[i] = NewBitSet(p.Bits)
		if p.Meet == Intersect {
			// Must-problems iterate optimistically down from top, or a
			// back edge's not-yet-computed out would poison its loop
			// header to bottom permanently.
			sol.In[i].Fill(p.Bits)
			sol.Out[i].Fill(p.Bits)
		}
	}

	flowPreds := g.Preds
	boundary := func(i int) bool { return i == 0 }
	order := rpo(g, false)
	if p.Dir == Backward {
		flowPreds = g.Succs
		boundary = func(i int) bool { return len(g.Succs(i)) == 0 }
		order = rpo(g, true)
	}
	// The boundary fact enters through a virtual edge so that boundary
	// nodes with real flow predecessors (e.g. a loop whose back edge
	// targets the function entry) still meet both.
	boundaryFact := NewBitSet(p.Bits)
	if p.Boundary != nil {
		p.Boundary(boundaryFact)
	}
	for i := 0; i < n; i++ {
		if boundary(i) {
			sol.In[i].Copy(boundaryFact)
		}
	}

	tmp := NewBitSet(p.Bits)
	inWork := make([]bool, n)
	var work []int
	for _, i := range order {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		if preds := flowPreds(i); len(preds) > 0 || boundary(i) {
			first := true
			if boundary(i) {
				sol.In[i].Copy(boundaryFact)
				first = false
			}
			for _, pr := range preds {
				if first {
					sol.In[i].Copy(sol.Out[pr])
					first = false
				} else if p.Meet == Union {
					sol.In[i].UnionWith(sol.Out[pr])
				} else {
					sol.In[i].IntersectWith(sol.Out[pr])
				}
			}
		}
		tmp.Reset()
		p.Transfer(i, sol.In[i], tmp)
		if !tmp.Equal(sol.Out[i]) {
			sol.Out[i].Copy(tmp)
			for _, s := range flowSuccs(g, p.Dir, i) {
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return sol
}

func flowSuccs(g Graph, d Direction, i int) []int {
	if d == Backward {
		return g.Preds(i)
	}
	return g.Succs(i)
}

// rpo returns nodes in reverse postorder of the forward CFG (or of the
// reversed CFG when rev is set), with nodes unreachable from the
// traversal roots appended afterwards in index order so every node is
// processed at least once.
func rpo(g Graph, rev bool) []int {
	n := g.NumNodes()
	seen := make([]bool, n)
	var order []int
	var visit func(i int)
	visit = func(i int) {
		seen[i] = true
		succs := g.Succs(i)
		if rev {
			succs = g.Preds(i)
		}
		for _, s := range succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, i)
	}
	if rev {
		for i := 0; i < n; i++ {
			if len(g.Succs(i)) == 0 && !seen[i] {
				visit(i)
			}
		}
	} else if n > 0 {
		visit(0)
	}
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	for i := 0; i < n; i++ {
		if !seen[i] {
			order = append(order, i)
		}
	}
	return order
}

// Reachable returns the nodes reachable from node 0 along Succs edges.
func Reachable(g Graph) []bool {
	n := g.NumNodes()
	seen := make([]bool, n)
	if n == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Succs(i) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
