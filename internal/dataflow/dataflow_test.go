package dataflow

import (
	"testing"

	"debugtuner/internal/vm"
)

func regTag(r int, varID int32, pre bool) vm.OwnerTag {
	return vm.OwnerTag{Reg: int8(r), Slot: -1, Var: varID, Pre: pre}
}

func slotTag(s int, varID int32, pre bool) vm.OwnerTag {
	return vm.OwnerTag{Reg: -1, Slot: int32(s), Var: varID, Pre: pre}
}

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(70)
	s.Set(0)
	s.Set(69)
	if !s.Has(0) || !s.Has(69) || s.Has(33) {
		t.Fatalf("set/has broken: %v", s)
	}
	s.Set(1000) // out of range: ignored
	if s.Has(1000) {
		t.Fatalf("out-of-range Set landed")
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
	o := NewBitSet(70)
	o.Fill(70)
	if o.Count() != 70 {
		t.Fatalf("fill count = %d, want 70", o.Count())
	}
	if !o.IntersectWith(s) || o.Count() != 2 {
		t.Fatalf("intersect: %d bits", o.Count())
	}
	var got []int
	o.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 69 {
		t.Fatalf("foreach = %v", got)
	}
}

// buildBin links the given per-function instruction lists into one
// binary with sequential code ranges.
func buildBin(numSlots int, fns ...[]vm.Instr) *vm.Binary {
	bin := &vm.Binary{}
	for i, code := range fns {
		start := len(bin.Code)
		bin.Code = append(bin.Code, code...)
		bin.Funcs = append(bin.Funcs, vm.FuncInfo{
			Name: string(rune('f' + i)), Start: start, End: len(bin.Code),
			NumSlots: numSlots,
		})
	}
	return bin
}

func TestBinCFGAndReachability(t *testing.T) {
	// 0: Prolog; 1: Const r1; 2: Br r1 -> 5; 3: Const r2; 4: Jmp 6;
	// 5: Const r2; 6: Mov r3 = r2; 7: Ret r3; 8..9: unreachable tail.
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 5},
		{Op: vm.OpBr, A: 1, Imm: 5},
		{Op: vm.OpConst, D: 2, Imm: 1},
		{Op: vm.OpJmp, Imm: 6},
		{Op: vm.OpConst, D: 2, Imm: 2},
		{Op: vm.OpMov, D: 3, A: 2},
		{Op: vm.OpRet, Sub: 1, A: 3},
		{Op: vm.OpConst, D: 4, Imm: 9},
		{Op: vm.OpRet, Sub: 1, A: 4},
	}
	g := NewBinCFG(code, 0, len(code))
	if g.NumNodes() != 5 {
		t.Fatalf("blocks = %d, want 5", g.NumNodes())
	}
	if g.BlockOf(0) != 0 {
		t.Fatalf("entry block = %d", g.BlockOf(0))
	}
	reach := g.ReachableAddrs()
	for a := 0; a <= 7; a++ {
		if !reach[a] {
			t.Errorf("addr %d should be reachable", a)
		}
	}
	for a := 8; a <= 9; a++ {
		if reach[a] {
			t.Errorf("addr %d should be unreachable", a)
		}
	}
}

func TestOwnerFactsJoinsAndMust(t *testing.T) {
	// Variable A has symID 0 (owner value 1), B symID 1 (owner 2),
	// C symID 2 (owner 3, only in unreachable code).
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 5, Own: []vm.OwnerTag{regTag(1, 1, false)}},
		{Op: vm.OpBr, A: 1, Imm: 5},
		{Op: vm.OpConst, D: 2, Imm: 1, Own: []vm.OwnerTag{regTag(2, 2, false)}},
		{Op: vm.OpJmp, Imm: 6},
		{Op: vm.OpConst, D: 2, Imm: 2, Own: []vm.OwnerTag{regTag(2, 1, false)}},
		{Op: vm.OpMov, D: 3, A: 2, Own: []vm.OwnerTag{regTag(5, 9, true)}},
		{Op: vm.OpRet, Sub: 1, A: 3},
		{Op: vm.OpConst, D: 4, Imm: 9, Own: []vm.OwnerTag{regTag(4, 3, false)}},
		{Op: vm.OpRet, Sub: 1, A: 4},
	}
	bin := buildBin(0, code)
	of := NewOwnerFacts(bin, 0)

	if !of.Reachable(7) || of.Reachable(8) {
		t.Fatalf("reachability wrong")
	}
	// Before the branch r1 is owned by A on every path.
	if !of.MustOwn(2, RegStorage(1), 0) {
		t.Errorf("r1 should be must-owned by sym 0 at addr 2")
	}
	// At the join r2 may be owned by A or by B, so neither is a must.
	if !of.MayOwn(6, RegStorage(2), 0) || !of.MayOwn(6, RegStorage(2), 1) {
		t.Errorf("r2 at join should may-own syms 0 and 1: %v",
			of.MayOwners(6, RegStorage(2)))
	}
	if of.MustOwn(6, RegStorage(2), 0) || of.MustOwn(6, RegStorage(2), 1) {
		t.Errorf("r2 at join must own neither")
	}
	// The untagged Mov leaves r3 anonymous.
	if got := of.MayOwners(7, RegStorage(3)); len(got) != 1 || got[0] != 0 {
		t.Errorf("r3 at ret = %v, want [0]", got)
	}
	// The unreachable tag never reaches reachable code.
	if of.MayOwn(7, RegStorage(4), 2) {
		t.Errorf("unreachable tag leaked into reachable state")
	}
	// Prologue: not done entering addr 0, done after.
	if of.MustPrologueDone(0) {
		t.Errorf("prologue done before OpProlog")
	}
	if !of.MustPrologueDone(1) || !of.MustPrologueDone(7) {
		t.Errorf("prologue should be done after addr 0")
	}
	// Pre-tag effect at the carrying instruction.
	if !of.PreTagged(6, RegStorage(5), 8) {
		t.Errorf("pre-tag at addr 6 not seen")
	}
	if of.MayOwn(6, RegStorage(5), 8) {
		t.Errorf("pre-tag must not be part of the observable in-state")
	}
	if !of.MayOwn(7, RegStorage(5), 8) {
		t.Errorf("pre-tag should flow to the next address")
	}
}

func TestCoOwnersOnOneInstruction(t *testing.T) {
	// Two tags on one instruction and register mean two source
	// variables share the value (`x = p0`); both must stay observable,
	// and neither may be promoted to a must-fact.
	code := []vm.Instr{
		{Op: vm.OpLoadParam, D: 0,
			Own: []vm.OwnerTag{regTag(0, 6, false), regTag(0, 7, false)}},
		{Op: vm.OpRet},
	}
	bin := buildBin(0, code)
	of := NewOwnerFacts(bin, 0)
	if !of.MayOwn(1, RegStorage(0), 5) || !of.MayOwn(1, RegStorage(0), 6) {
		t.Fatalf("co-owners lost: %v", of.MayOwners(1, RegStorage(0)))
	}
	if of.MustOwn(1, RegStorage(0), 5) || of.MustOwn(1, RegStorage(0), 6) {
		t.Fatalf("shared cell must not be a must-fact for either owner")
	}
	if of.MayOwn(1, RegStorage(0), 0) {
		t.Fatalf("the tag group should strongly replace the anonymous owner")
	}
}

func TestOwnerFactsBackEdgeIntoEntry(t *testing.T) {
	// The entry block is also a loop header: its in-state must meet the
	// fresh-frame boundary with the back edge.
	code := []vm.Instr{
		{Op: vm.OpNeg, D: 1, A: 1, Own: []vm.OwnerTag{regTag(1, 7, false)}},
		{Op: vm.OpBr, A: 1, Imm: 0},
		{Op: vm.OpRet},
	}
	bin := buildBin(0, code)
	of := NewOwnerFacts(bin, 0)
	if got := of.MayOwners(0, RegStorage(1)); len(got) != 2 || got[0] != 0 || got[1] != 7 {
		t.Fatalf("entry in-state = %v, want [0 7]", got)
	}
	if !of.MustOwn(1, RegStorage(1), 6) {
		t.Fatalf("r1 should be must-owned by sym 6 after addr 0")
	}
}

func TestMustPrologueSurvivesLoop(t *testing.T) {
	// Optimistic must-iteration: the back edge must not strip the
	// prologue fact from its own loop header.
	code := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1},
		{Op: vm.OpBinImm, D: 1, A: 1, Imm: 1},
		{Op: vm.OpBr, A: 1, Imm: 2},
		{Op: vm.OpRet},
	}
	bin := buildBin(1, code)
	of := NewOwnerFacts(bin, 0)
	for a := 1; a <= 4; a++ {
		if !of.MustPrologueDone(a) {
			t.Fatalf("prologue fact lost at addr %d", a)
		}
	}
}

func TestOwnerFactsSlotsAndCalls(t *testing.T) {
	callee := []vm.Instr{
		{Op: vm.OpConst, D: 1, Imm: 1},
		{Op: vm.OpRet, Sub: 1, A: 1, Own: []vm.OwnerTag{regTag(2, 9, false)}},
	}
	caller := []vm.Instr{
		{Op: vm.OpProlog},
		{Op: vm.OpConst, D: 1, Imm: 4},
		{Op: vm.OpStoreSlot, A: 1, Imm: 0, Own: []vm.OwnerTag{slotTag(0, 4, false)}},
		{Op: vm.OpStoreSlot, A: 1, Imm: 0},
		{Op: vm.OpCall, D: 3, Imm: 0, Own: []vm.OwnerTag{regTag(3, 5, false)}},
		{Op: vm.OpRet},
	}
	bin := buildBin(1, callee, caller)
	of := NewOwnerFacts(bin, 1)
	base := bin.Funcs[1].Start // caller addresses are offset by the callee

	if !of.MustOwn(base+3, SlotStorage(0), 3) {
		t.Errorf("slot 0 should be must-owned by sym 3 after the tagged store")
	}
	if got := of.MayOwners(base+4, SlotStorage(0)); len(got) != 1 || got[0] != 0 {
		t.Errorf("untagged store should clear slot ownership: %v", got)
	}
	// The call's own post-tag lands strongly at the call site.
	if !of.MustOwn(base+5, RegStorage(3), 4) {
		t.Errorf("call post-tag should strongly own the return register")
	}
	// Post-tags on the callee's return apply to this frame too — but
	// only weakly, joined over every possible exit.
	if !of.MayOwn(base+5, RegStorage(2), 8) {
		t.Errorf("callee ret-tag should weakly reach the caller")
	}
	if of.MustOwn(base+5, RegStorage(2), 8) {
		t.Errorf("callee ret-tag must not become a must-fact")
	}
}

func TestLivenessBackward(t *testing.T) {
	code := []vm.Instr{
		{Op: vm.OpBr, A: 5, Imm: 3},
		{Op: vm.OpMov, D: 6, A: 1},
		{Op: vm.OpJmp, Imm: 4},
		{Op: vm.OpMov, D: 6, A: 2},
		{Op: vm.OpRet, Sub: 1, A: 6},
	}
	lv := NewLiveness(code, 0, len(code))
	for _, r := range []int{5, 1, 2} {
		if !lv.LiveIn(0, r) {
			t.Errorf("r%d should be live at entry", r)
		}
	}
	if lv.LiveIn(0, 6) {
		t.Errorf("r6 is defined on every path before use; not live at entry")
	}
	if !lv.LiveIn(4, 6) {
		t.Errorf("r6 live at the return")
	}
	if lv.LiveIn(3, 1) {
		t.Errorf("r1 not live on the taken path")
	}
}

func TestEmptyAndCorruptInput(t *testing.T) {
	of := NewOwnerFacts(&vm.Binary{}, 0)
	if of.MayOwn(0, RegStorage(0), 0) || of.Reachable(0) || of.MustPrologueDone(0) {
		t.Fatalf("empty facts should answer false")
	}
	// Function record pointing outside the code must not panic.
	bin := &vm.Binary{
		Code:  []vm.Instr{{Op: vm.OpRet}},
		Funcs: []vm.FuncInfo{{Name: "f", Start: 0, End: 99, NumSlots: 2}},
	}
	of = NewOwnerFacts(bin, 0)
	if !of.Reachable(0) {
		t.Fatalf("clamped range should keep addr 0")
	}
	// Call to an out-of-range function index.
	bin2 := &vm.Binary{
		Code: []vm.Instr{
			{Op: vm.OpCall, D: 1, Imm: 42},
			{Op: vm.OpRet},
		},
		Funcs: []vm.FuncInfo{{Name: "f", Start: 0, End: 2}},
	}
	_ = NewOwnerFacts(bin2, 0)
}
