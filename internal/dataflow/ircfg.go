package dataflow

import "debugtuner/internal/ir"

// IRCFG adapts an SSA IR function to the solver's Graph interface.
// Nodes are positions in f.Blocks; node 0 is the entry block.
type IRCFG struct {
	f     *ir.Func
	succs [][]int
	preds [][]int
}

// NewIRCFG builds the adapter. Block identity is positional, so the
// function's block list must not be mutated while the CFG is in use.
func NewIRCFG(f *ir.Func) *IRCFG {
	idx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b] = i
	}
	g := &IRCFG{
		f:     f,
		succs: make([][]int, len(f.Blocks)),
		preds: make([][]int, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			if si, ok := idx[s]; ok {
				g.succs[i] = append(g.succs[i], si)
			}
		}
		for _, p := range b.Preds {
			if pi, ok := idx[p]; ok {
				g.preds[i] = append(g.preds[i], pi)
			}
		}
	}
	return g
}

// NumNodes implements Graph.
func (g *IRCFG) NumNodes() int { return len(g.succs) }

// Succs implements Graph.
func (g *IRCFG) Succs(n int) []int { return g.succs[n] }

// Preds implements Graph.
func (g *IRCFG) Preds(n int) []int { return g.preds[n] }

// Block returns the ir.Block at node n.
func (g *IRCFG) Block(n int) *ir.Block { return g.f.Blocks[n] }

// ReachableBlocks returns the set of IR blocks reachable from the
// entry, computed on the adapter (the dataflow twin of ir.Reachable).
func ReachableBlocks(f *ir.Func) map[*ir.Block]bool {
	if len(f.Blocks) == 0 {
		return map[*ir.Block]bool{}
	}
	g := NewIRCFG(f)
	reach := Reachable(g)
	out := make(map[*ir.Block]bool, len(reach))
	for i, r := range reach {
		if r {
			out[f.Blocks[i]] = true
		}
	}
	return out
}
