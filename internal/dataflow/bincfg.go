package dataflow

import "debugtuner/internal/vm"

// BinCFG is the control-flow graph of one function's code range
// [Start, End), recovered from the linked instruction stream by the
// classic leader scan: a block starts at the function entry, at every
// branch target, and after every jump, branch, or return. Successor
// edges follow the machine's dispatch: OpJmp goes to Imm, OpBr to Imm
// or fallthrough, OpRet exits, everything else (calls included — they
// return to the next instruction in this frame) falls through.
//
// Node 0 is always the block containing Start, as the solver requires.
// Branch targets outside the function range are treated as having no
// edge rather than rejected: the CFG is also built for corrupt or
// mutated binaries during fuzzing, where containment violations are
// someone else's rule to report.
type BinCFG struct {
	Code       []vm.Instr
	Start, End int

	blocks  [][2]int // [lo, hi) address ranges, in address order
	blockOf []int    // addr-Start -> block index
	succs   [][]int
	preds   [][]int
}

// NewBinCFG recovers the CFG of the code range [start, end), clamped
// to the instruction stream.
func NewBinCFG(code []vm.Instr, start, end int) *BinCFG {
	if start < 0 {
		start = 0
	}
	if end > len(code) {
		end = len(code)
	}
	if end < start {
		end = start
	}
	g := &BinCFG{Code: code, Start: start, End: end}
	n := end - start
	if n == 0 {
		return g
	}

	leader := make([]bool, n)
	leader[0] = true
	inRange := func(a int64) bool { return a >= int64(start) && a < int64(end) }
	for a := start; a < end; a++ {
		in := &code[a]
		switch in.Op {
		case vm.OpJmp, vm.OpBr:
			if inRange(in.Imm) {
				leader[int(in.Imm)-start] = true
			}
			if a+1 < end {
				leader[a+1-start] = true
			}
		case vm.OpRet:
			if a+1 < end {
				leader[a+1-start] = true
			}
		}
	}

	g.blockOf = make([]int, n)
	lo := start
	for a := start + 1; a <= end; a++ {
		if a == end || leader[a-start] {
			bi := len(g.blocks)
			g.blocks = append(g.blocks, [2]int{lo, a})
			for x := lo; x < a; x++ {
				g.blockOf[x-start] = bi
			}
			lo = a
		}
	}

	g.succs = make([][]int, len(g.blocks))
	g.preds = make([][]int, len(g.blocks))
	addEdge := func(from int, to int64) {
		if !inRange(to) {
			return
		}
		ti := g.blockOf[int(to)-start]
		g.succs[from] = append(g.succs[from], ti)
		g.preds[ti] = append(g.preds[ti], from)
	}
	for bi, blk := range g.blocks {
		last := &code[blk[1]-1]
		switch last.Op {
		case vm.OpJmp:
			addEdge(bi, last.Imm)
		case vm.OpBr:
			addEdge(bi, last.Imm)
			addEdge(bi, int64(blk[1]))
		case vm.OpRet:
			// Exit: no successors.
		default:
			addEdge(bi, int64(blk[1]))
		}
	}
	return g
}

// NumNodes implements Graph.
func (g *BinCFG) NumNodes() int { return len(g.blocks) }

// Succs implements Graph.
func (g *BinCFG) Succs(n int) []int { return g.succs[n] }

// Preds implements Graph.
func (g *BinCFG) Preds(n int) []int { return g.preds[n] }

// BlockOf returns the block index containing addr, or -1 when addr is
// outside the function range.
func (g *BinCFG) BlockOf(addr int) int {
	if addr < g.Start || addr >= g.End {
		return -1
	}
	return g.blockOf[addr-g.Start]
}

// BlockRange returns block n's half-open address range.
func (g *BinCFG) BlockRange(n int) (lo, hi int) {
	return g.blocks[n][0], g.blocks[n][1]
}

// ReachableAddrs returns, per address offset from Start, whether the
// address is statically reachable from the function entry.
func (g *BinCFG) ReachableAddrs() []bool {
	blockReach := Reachable(g)
	out := make([]bool, g.End-g.Start)
	for i := range out {
		out[i] = blockReach[g.blockOf[i]]
	}
	return out
}
