package dataflow

import "debugtuner/internal/vm"

// Storage names one ownership cell of a frame: a machine register or
// a frame slot. Exactly one field is >= 0.
type Storage struct {
	Reg  int
	Slot int
}

// RegStorage returns the storage cell of register r.
func RegStorage(r int) Storage { return Storage{Reg: r, Slot: -1} }

// SlotStorage returns the storage cell of frame slot s.
func SlotStorage(s int) Storage { return Storage{Reg: -1, Slot: s} }

// OwnerFacts is the solved owner reaching-definitions analysis for one
// function: for every address a and storage cell s, the set of owners
// (variable identities, plus "anonymous" for a value no tag claimed)
// that the machine's ownership state may hold in s when control sits
// at a — exactly the state a debugger observes, since breakpoints fire
// before the stopped instruction's pre-tags.
//
// The transfer function mirrors internal/vm's reference interpreter:
//
//   - pre-tags apply at instruction start;
//   - every register write clears the destination's owner, and a
//     post-tag on the same instruction reasserts it;
//   - OpStoreSlot clears the slot's owner;
//   - a call's own post-tags travel with the frame and land, with the
//     return value's register clear, when the callee returns — so in
//     this frame's flow they take effect at the call site; post-tags
//     on the callee's returns also apply to this frame, and join in
//     as weak updates over every return of the callee.
//
// Owner tags make this reaching-definitions analysis precise where a
// value-numbering one would have to approximate: the compiler itself
// asserts which variable each write materializes, so the lattice
// tracks variable identity directly instead of reconstructing it from
// value flow.
//
// Must-availability needs no second solve: ownership writes are strong
// updates to singletons, so a cell is must-owned by v exactly when its
// may-set collapsed to {v}.
type OwnerFacts struct {
	cfg      *BinCFG
	numSlots int
	nOwners  int
	ownerIdx map[int32]int // owner value -> dense index; anonymous 0 -> 0
	reach    []bool        // per addr-Start
	inAddr   []*BitSet     // per addr-Start: may-state entering the address
	mustProl []bool        // per addr-Start: prologue done on every path
}

// NewOwnerFacts solves the owner analysis for function fnIdx of the
// binary. It never panics on corrupt input: out-of-range function
// records yield an empty fact set whose queries all return false.
func NewOwnerFacts(bin *vm.Binary, fnIdx int) *OwnerFacts {
	of := &OwnerFacts{ownerIdx: map[int32]int{0: 0}, nOwners: 1}
	if fnIdx < 0 || fnIdx >= len(bin.Funcs) {
		of.cfg = NewBinCFG(nil, 0, 0)
		return of
	}
	fn := &bin.Funcs[fnIdx]
	of.cfg = NewBinCFG(bin.Code, fn.Start, fn.End)
	of.numSlots = fn.NumSlots
	g := of.cfg

	// Owner universe: every variable identity a tag in this function —
	// or a post-tag on a return of a called function — can assert.
	retTags := map[int][]vm.OwnerTag{}
	calleeRetTags := func(idx int64) []vm.OwnerTag {
		if idx < 0 || idx >= int64(len(bin.Funcs)) {
			return nil
		}
		if ts, ok := retTags[int(idx)]; ok {
			return ts
		}
		var ts []vm.OwnerTag
		c := &bin.Funcs[idx]
		lo, hi := c.Start, c.End
		if lo < 0 {
			lo = 0
		}
		if hi > len(bin.Code) {
			hi = len(bin.Code)
		}
		for a := lo; a < hi; a++ {
			if bin.Code[a].Op != vm.OpRet {
				continue
			}
			for _, t := range bin.Code[a].Own {
				if !t.Pre {
					ts = append(ts, t)
				}
			}
		}
		retTags[int(idx)] = ts
		return ts
	}
	intern := func(v int32) {
		if _, ok := of.ownerIdx[v]; !ok {
			of.ownerIdx[v] = of.nOwners
			of.nOwners++
		}
	}
	for a := g.Start; a < g.End; a++ {
		for _, t := range bin.Code[a].Own {
			intern(t.Var)
		}
		if bin.Code[a].Op == vm.OpCall {
			for _, t := range calleeRetTags(bin.Code[a].Imm) {
				intern(t.Var)
			}
		}
	}

	nStor := vm.NumRegs + of.numSlots
	bitsWidth := nStor * of.nOwners
	setOwner := func(s *BitSet, st, oi int) {
		s.ClearRange(st*of.nOwners, (st+1)*of.nOwners)
		s.Set(st*of.nOwners + oi)
	}
	tagWeak0 := func(s *BitSet, t vm.OwnerTag) {
		oi := of.ownerIdx[t.Var]
		if t.Reg >= 0 && int(t.Reg) < vm.NumRegs {
			s.Set(int(t.Reg)*of.nOwners + oi)
		}
		if t.Slot >= 0 && int(t.Slot) < of.numSlots {
			s.Set((vm.NumRegs+int(t.Slot))*of.nOwners + oi)
		}
	}
	// tagGroup applies one instruction's pre- or post-tag group as a
	// strong update per storage cell, with every variable the group tags
	// for a cell kept as a co-owner. The machine itself keeps only the
	// last tag's owner, but multiple tags on one instruction and cell
	// mean several source variables share the value (`x = p0` aliasing),
	// and any of them is a right-value read: collapsing to the last
	// would brand the others' claims wrong when only the single-owner
	// bookkeeping, not the value, disagrees. The set stays a superset of
	// the machine's actual owner, which is the sound direction for both
	// may- and must-queries.
	tagGroup := func(s *BitSet, tags []vm.OwnerTag, pre bool) {
		for i, t := range tags {
			if t.Pre != pre {
				continue
			}
			killed := func(reg bool) bool {
				for _, u := range tags[:i] {
					if u.Pre != pre {
						continue
					}
					if reg && u.Reg == t.Reg || !reg && u.Slot == t.Slot {
						return true
					}
				}
				return false
			}
			if t.Reg >= 0 && int(t.Reg) < vm.NumRegs && !killed(true) {
				s.ClearRange(int(t.Reg)*of.nOwners, (int(t.Reg)+1)*of.nOwners)
			}
			if t.Slot >= 0 && int(t.Slot) < of.numSlots && !killed(false) {
				s.ClearRange((vm.NumRegs+int(t.Slot))*of.nOwners,
					(vm.NumRegs+int(t.Slot)+1)*of.nOwners)
			}
			tagWeak0(s, t)
		}
	}
	applyInstr := func(s *BitSet, a int) {
		in := &bin.Code[a]
		tagGroup(s, in.Own, true)
		switch in.Op {
		case vm.OpConst, vm.OpMov, vm.OpBin, vm.OpBinImm, vm.OpNeg,
			vm.OpNot, vm.OpSelect, vm.OpLoadSlot, vm.OpLoadParam,
			vm.OpGLoad, vm.OpNewArr, vm.OpALoad, vm.OpLen,
			vm.OpVLoad2, vm.OpVBin:
			setOwner(s, int(in.D), 0)
		case vm.OpStoreSlot:
			if in.Imm >= 0 && in.Imm < int64(of.numSlots) {
				setOwner(s, vm.NumRegs+int(in.Imm), 0)
			}
		case vm.OpCall:
			// The frame resumes after the callee returns: the return
			// register was rewritten (owner cleared), then the call's
			// deferred post-tags applied, then any post-tags sitting on
			// the callee's return instruction — the latter joined in
			// weakly since any of the callee's exits may have run.
			setOwner(s, int(in.D), 0)
			tagGroup(s, in.Own, false)
			for _, t := range calleeRetTags(in.Imm) {
				tagWeak0(s, t)
			}
		}
		if in.Op != vm.OpCall {
			tagGroup(s, in.Own, false)
		}
	}

	sol := Solve(g, Problem{
		Bits: bitsWidth,
		Dir:  Forward,
		Meet: Union,
		Boundary: func(s *BitSet) {
			// A fresh frame owns nothing: every cell holds an
			// anonymous value.
			for st := 0; st < nStor; st++ {
				s.Set(st * of.nOwners)
			}
		},
		Transfer: func(n int, in, out *BitSet) {
			out.Copy(in)
			lo, hi := g.BlockRange(n)
			for a := lo; a < hi; a++ {
				applyInstr(out, a)
			}
		},
	})

	prol := Solve(g, Problem{
		Bits: 1,
		Dir:  Forward,
		Meet: Intersect,
		Transfer: func(n int, in, out *BitSet) {
			out.Copy(in)
			lo, hi := g.BlockRange(n)
			for a := lo; a < hi; a++ {
				if bin.Code[a].Op == vm.OpProlog {
					out.Set(0)
				}
			}
		},
	})

	// Per-address snapshots: walk each block from its solved in-state.
	of.reach = g.ReachableAddrs()
	of.inAddr = make([]*BitSet, g.End-g.Start)
	of.mustProl = make([]bool, g.End-g.Start)
	cur := NewBitSet(bitsWidth)
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.BlockRange(n)
		cur.Copy(sol.In[n])
		prolDone := prol.In[n].Has(0)
		for a := lo; a < hi; a++ {
			snap := NewBitSet(bitsWidth)
			snap.Copy(cur)
			of.inAddr[a-g.Start] = snap
			of.mustProl[a-g.Start] = prolDone
			applyInstr(cur, a)
			if bin.Code[a].Op == vm.OpProlog {
				prolDone = true
			}
		}
	}
	return of
}

// CFG returns the function's recovered control-flow graph.
func (of *OwnerFacts) CFG() *BinCFG { return of.cfg }

// Reachable reports whether addr is statically reachable from the
// function entry.
func (of *OwnerFacts) Reachable(addr int) bool {
	if addr < of.cfg.Start || addr >= of.cfg.End {
		return false
	}
	return of.reach[addr-of.cfg.Start]
}

func (of *OwnerFacts) stIndex(st Storage) int {
	switch {
	case st.Reg >= 0 && st.Reg < vm.NumRegs:
		return st.Reg
	case st.Slot >= 0 && st.Slot < of.numSlots:
		return vm.NumRegs + st.Slot
	}
	return -1
}

// MayOwn reports whether the machine's ownership state may bind
// storage st to the variable with symbol ID symID when control enters
// addr — the observable state at a breakpoint there.
func (of *OwnerFacts) MayOwn(addr int, st Storage, symID int32) bool {
	si := of.stIndex(st)
	if si < 0 || addr < of.cfg.Start || addr >= of.cfg.End {
		return false
	}
	oi, ok := of.ownerIdx[symID+1]
	if !ok {
		return false
	}
	return of.inAddr[addr-of.cfg.Start].Has(si*of.nOwners + oi)
}

// MustOwn reports whether every path to addr leaves storage st owned
// by the variable with symbol ID symID: the may-set collapsed to that
// single owner.
func (of *OwnerFacts) MustOwn(addr int, st Storage, symID int32) bool {
	si := of.stIndex(st)
	if si < 0 || addr < of.cfg.Start || addr >= of.cfg.End {
		return false
	}
	oi, ok := of.ownerIdx[symID+1]
	if !ok {
		return false
	}
	set := of.inAddr[addr-of.cfg.Start]
	for o := 0; o < of.nOwners; o++ {
		if set.Has(si*of.nOwners+o) != (o == oi) {
			return false
		}
	}
	return true
}

// PreTagged reports whether addr's instruction carries pre-tags whose
// net effect binds storage st to symID — the emitter's pattern for a
// claim opening exactly at its witnessing instruction.
func (of *OwnerFacts) PreTagged(addr int, st Storage, symID int32) bool {
	if addr < of.cfg.Start || addr >= of.cfg.End {
		return false
	}
	for _, t := range of.cfg.Code[addr].Own {
		if !t.Pre || t.Var != symID+1 {
			continue
		}
		if st.Reg >= 0 && int(t.Reg) == st.Reg {
			return true
		}
		if st.Slot >= 0 && t.Slot >= 0 && int(t.Slot) == st.Slot {
			return true
		}
	}
	return false
}

// MustPrologueDone reports whether every path to addr has executed the
// function prologue — the precondition for slot and spill reads.
func (of *OwnerFacts) MustPrologueDone(addr int) bool {
	if addr < of.cfg.Start || addr >= of.cfg.End {
		return false
	}
	// Unreachable addresses solve to the vacuous "every path" top;
	// report false there rather than a claim about code that never runs.
	return of.reach[addr-of.cfg.Start] && of.mustProl[addr-of.cfg.Start]
}

// MayOwners returns the owner values (symbol ID + 1, or 0 for an
// anonymous write) that may occupy storage st entering addr, in
// ascending order. It is a diagnostic/testing accessor.
func (of *OwnerFacts) MayOwners(addr int, st Storage) []int32 {
	si := of.stIndex(st)
	if si < 0 || addr < of.cfg.Start || addr >= of.cfg.End {
		return nil
	}
	rev := make([]int32, of.nOwners)
	for v, i := range of.ownerIdx {
		rev[i] = v
	}
	var out []int32
	set := of.inAddr[addr-of.cfg.Start]
	for o := 0; o < of.nOwners; o++ {
		if set.Has(si*of.nOwners + o) {
			out = append(out, rev[o])
		}
	}
	sortInt32(out)
	return out
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
