// Package dataflow is a generic iterative dataflow framework over
// bitset lattices: a worklist solver parameterized by direction
// (forward/backward) and meet (union for may-problems, intersection
// for must-problems), with CFG construction over both the SSA IR
// (IRCFG) and the emitted register-machine code (BinCFG).
//
// Three concrete analyses live on top of it:
//
//   - OwnerFacts: register/slot reaching-definitions with owner-tag
//     tracking — for every address and storage location, the set of
//     variable owners the machine's ownership state may hold there.
//     Clobber queries and must-availability (the may-set collapsed to
//     a singleton) derive from the same solution.
//   - must-prologue-done: a one-bit intersection problem deciding
//     whether every path to an address has executed the prologue
//     (slot and spill reads require it).
//   - Liveness: backward may-analysis of registers read before
//     written, the framework's backward instance.
//
// The analyses mirror internal/vm's reference semantics exactly; the
// staticdbg soundness test locks the correspondence dynamically.
package dataflow

import "math/bits"

// BitSet is a fixed-width bit vector. The zero value of a width-w set
// is obtained from NewBitSet; all operands of a binary op must share
// one width.
type BitSet struct {
	words []uint64
}

// NewBitSet returns an empty set able to hold bits [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64)}
}

// Has reports whether bit i is set.
func (s *BitSet) Has(i int) bool {
	w := i >> 6
	if w < 0 || w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i; out-of-range indices are ignored, so analyses over
// corrupt binaries degrade to weaker facts instead of panicking.
func (s *BitSet) Set(i int) {
	w := i >> 6
	if w < 0 || w >= len(s.words) {
		return
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// Clear clears bit i (out-of-range indices are ignored, as in Set).
func (s *BitSet) Clear(i int) {
	w := i >> 6
	if w < 0 || w >= len(s.words) {
		return
	}
	s.words[w] &^= 1 << (uint(i) & 63)
}

// Reset empties the set.
func (s *BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets every bit below n (the set's logical width).
func (s *BitSet) Fill(n int) {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := uint(n) & 63; tail != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] = (1 << tail) - 1
	}
}

// Copy overwrites s with o.
func (s *BitSet) Copy(o *BitSet) { copy(s.words, o.words) }

// Equal reports whether both sets hold exactly the same bits.
func (s *BitSet) Equal(o *BitSet) bool {
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// UnionWith adds o's bits into s and reports whether s changed.
func (s *BitSet) UnionWith(o *BitSet) bool {
	changed := false
	for i, w := range o.words {
		if nw := s.words[i] | w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith keeps only bits present in both and reports change.
func (s *BitSet) IntersectWith(o *BitSet) bool {
	changed := false
	for i, w := range o.words {
		if nw := s.words[i] & w; nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Count returns the number of set bits.
func (s *BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every set bit in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &= w - 1
		}
	}
}

// ClearRange clears bits [lo, hi).
func (s *BitSet) ClearRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.Clear(i)
	}
}
