package dataflow

import "debugtuner/internal/vm"

// Liveness is the framework's backward instance: for every address of
// a function, the set of machine registers that may be read before
// being overwritten on some path from that address — the registers a
// clobbering write at that point would actually damage.
type Liveness struct {
	cfg  *BinCFG
	live []*BitSet // per addr-Start: live-in at the address
}

// NewLiveness solves backward register liveness over the function
// range's recovered CFG.
func NewLiveness(code []vm.Instr, start, end int) *Liveness {
	g := NewBinCFG(code, start, end)
	lv := &Liveness{cfg: g}
	sol := Solve(g, Problem{
		Bits: vm.NumRegs,
		Dir:  Backward,
		Meet: Union,
		Transfer: func(n int, in, out *BitSet) {
			out.Copy(in)
			lo, hi := g.BlockRange(n)
			for a := hi - 1; a >= lo; a-- {
				stepLiveness(out, &code[a])
			}
		},
	})
	lv.live = make([]*BitSet, g.End-g.Start)
	cur := NewBitSet(vm.NumRegs)
	for n := 0; n < g.NumNodes(); n++ {
		lo, hi := g.BlockRange(n)
		cur.Copy(sol.In[n]) // backward: fact at the block's exit
		for a := hi - 1; a >= lo; a-- {
			stepLiveness(cur, &code[a])
			snap := NewBitSet(vm.NumRegs)
			snap.Copy(cur)
			lv.live[a-g.Start] = snap
		}
	}
	return lv
}

// stepLiveness applies one instruction backward: kill its definition,
// then gen its register uses.
func stepLiveness(live *BitSet, in *vm.Instr) {
	switch in.Op {
	case vm.OpConst, vm.OpMov, vm.OpBin, vm.OpBinImm, vm.OpNeg,
		vm.OpNot, vm.OpSelect, vm.OpLoadSlot, vm.OpLoadParam,
		vm.OpGLoad, vm.OpNewArr, vm.OpALoad, vm.OpLen,
		vm.OpVLoad2, vm.OpVBin, vm.OpCall:
		live.Clear(int(in.D))
	}
	switch in.Op {
	case vm.OpMov, vm.OpNeg, vm.OpNot, vm.OpStoreSlot, vm.OpGStore,
		vm.OpNewArr, vm.OpLen, vm.OpArg, vm.OpPrint, vm.OpBr, vm.OpBinImm:
		live.Set(int(in.A))
	case vm.OpBin, vm.OpALoad, vm.OpVLoad2, vm.OpVBin:
		live.Set(int(in.A))
		live.Set(int(in.B))
	case vm.OpSelect, vm.OpAStore, vm.OpVStore2:
		live.Set(int(in.A))
		live.Set(int(in.B))
		live.Set(int(in.C))
	case vm.OpRet:
		if in.Sub != 0 {
			live.Set(int(in.A))
		}
	}
}

// LiveIn reports whether register r is live entering addr.
func (lv *Liveness) LiveIn(addr, r int) bool {
	if addr < lv.cfg.Start || addr >= lv.cfg.End || r < 0 || r >= vm.NumRegs {
		return false
	}
	return lv.live[addr-lv.cfg.Start].Has(r)
}
