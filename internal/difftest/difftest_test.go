package difftest

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/vm"
	"debugtuner/internal/workerpool"
)

func TestMatrixShape(t *testing.T) {
	m := Matrix()
	seen := map[string]int{}
	for _, cfg := range m {
		seen[string(cfg.Profile)+"-"+cfg.Level]++
	}
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		for _, level := range pipeline.Levels(p) {
			want := len(pipeline.EnabledPasses(p, level)) + 1
			if p == pipeline.GCC && level != "Og" {
				want++ // inline-fncs-called-once
			}
			got := seen[string(p)+"-"+level]
			if got != want {
				t.Errorf("%s-%s: %d configs, want %d (level + one per toggle)",
					p, level, got, want)
			}
		}
	}
	// Every config must be unique by fingerprint.
	fps := map[string]bool{}
	for _, cfg := range m {
		fp, ok := cfg.Fingerprint()
		if !ok {
			t.Fatalf("config %s not fingerprintable", cfg.Name())
		}
		if fps[fp] {
			t.Errorf("duplicate config in matrix: %s", fp)
		}
		fps[fp] = true
	}
}

func TestParseMatrix(t *testing.T) {
	levels, err := ParseMatrix("levels")
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 7 { // gcc Og..O3 + clang O1..O3
		t.Fatalf("levels matrix has %d configs, want 7", len(levels))
	}
	one, err := ParseMatrix("gcc-O2")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Profile != pipeline.GCC || one[0].Level != "O2" {
		t.Fatalf("gcc-O2 spec = %v", one)
	}
	star, err := ParseMatrix("clang-O2*")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(pipeline.EnabledPasses(pipeline.Clang, "O2")) + 1; len(star) != want {
		t.Fatalf("clang-O2* has %d configs, want %d", len(star), want)
	}
	full, err := ParseMatrix("")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(Matrix()) {
		t.Fatalf("empty spec != full matrix")
	}
	for _, bad := range []string{"gcc", "gcc-O9", "tcc-O2", "gcc-O9*"} {
		if _, err := ParseMatrix(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

func TestCompareObs(t *testing.T) {
	done := func(out ...int64) Observation { return Observation{Output: out, Rets: []int64{0}} }
	partial := func(out ...int64) Observation { return Observation{Output: out, Budget: true} }
	cases := []struct {
		name     string
		ref, got Observation
		wantDiff bool
	}{
		{"equal", done(1, 2, 3), done(1, 2, 3), false},
		{"value", done(1, 2, 3), done(1, 9, 3), true},
		{"length", done(1, 2, 3), done(1, 2), true},
		{"ret", Observation{Rets: []int64{1}}, Observation{Rets: []int64{2}}, true},
		{"variant hangs, good prefix", done(1, 2, 3), partial(1, 2), true},
		{"variant hangs, bad prefix", done(1, 2, 3), partial(9), true},
		{"ref budget, prefix ok", partial(1, 2), done(1, 2, 3), false},
		{"ref budget, prefix bad", partial(1, 9), done(1, 2, 3), true},
		{"both budget, common prefix", partial(1, 2), partial(1, 2, 3), false},
		{"both budget, diverged", partial(1, 2), partial(1, 9), true},
	}
	for _, c := range cases {
		if d := compareObs(c.ref, c.got); (d != "") != c.wantDiff {
			t.Errorf("%s: compareObs = %q, wantDiff=%v", c.name, d, c.wantDiff)
		}
	}
}

// TestOracleCleanOnSynth is the in-tree slice of the acceptance run:
// a few synth seeds across the full matrix must produce no findings.
func TestOracleCleanOnSynth(t *testing.T) {
	o := NewOracle(Matrix())
	for _, seed := range []int64{1, 2, 3} {
		findings, err := o.CheckSubject(SynthSubject(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range findings {
			t.Errorf("seed %d: %s", seed, f)
		}
	}
}

func TestOracleCleanOnSuiteSubject(t *testing.T) {
	s, err := SuiteSubject("zlib", 0)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(mustParse(t, "gcc-O2*,clang-O2*"))
	findings, err := o.CheckSubject(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func mustParse(t *testing.T, spec string) []pipeline.Config {
	t.Helper()
	cfgs, err := ParseMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	return cfgs
}

// TestRunDeterministicAcrossWorkers locks the -j byte-stability promise.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	opts := Options{
		Seeds:     []int64{11, 12},
		Spec:      "levels",
		Testsuite: []string{"zlib"},
	}
	out := func(jobs int) string {
		old := workerpool.Workers()
		workerpool.SetWorkers(jobs)
		defer workerpool.SetWorkers(old)
		var buf bytes.Buffer
		if _, err := Run(&buf, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial, parallel := out(1), out(4)
	if serial != parallel {
		t.Fatalf("report differs across -j:\n-j1:\n%s\n-j4:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "PASS") {
		t.Fatalf("expected PASS report, got:\n%s", serial)
	}
}

// buildSmall compiles a small fixed program for invariant tests.
func buildSmall(t *testing.T, cfg pipeline.Config) *vm.Binary {
	t.Helper()
	src := []byte(`
var g: int = 7;
func addmul(a: int, b: int): int {
	var s: int = a + b * g;
	var u: int = s / (b + 1);
	g = g + u;
	return s - u;
}
func main() {
	var acc: int = 0;
	for (var i: int = 0; i < 6; i = i + 1) {
		acc = acc + addmul(i, acc);
	}
	print(acc);
	print(g);
}
`)
	bin, _, err := pipeline.CompileSource("small.mc", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// mutateDebug decodes, mutates, and re-encodes a binary's debug section.
func mutateDebug(t *testing.T, bin *vm.Binary, mutate func(*debuginfo.Table)) *vm.Binary {
	t.Helper()
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		t.Fatal(err)
	}
	mutate(table)
	clone := bin.Clone()
	clone.Debug = table.Encode()
	return clone
}

func TestCheckBinaryCleanBuilds(t *testing.T) {
	for _, spec := range []string{"gcc-O0", "gcc-O2", "clang-O3"} {
		profile, level, _ := strings.Cut(spec, "-")
		bin := buildSmall(t, pipeline.MustConfig(pipeline.Profile(profile), level))
		if v := CheckBinary(bin); len(v) > 0 {
			t.Errorf("%s: clean build flagged: %v", spec, v)
		}
	}
}

func TestCheckBinaryFlagsCorruption(t *testing.T) {
	base := buildSmall(t, pipeline.MustConfig(pipeline.GCC, "O2"))
	cases := []struct {
		name   string
		mutate func(*debuginfo.Table)
		want   string
	}{
		{"unsorted line table", func(tb *debuginfo.Table) {
			if len(tb.Lines) < 2 {
				t.Skip("need 2 line rows")
			}
			tb.Lines[0], tb.Lines[1] = tb.Lines[1], tb.Lines[0]
		}, "not strictly increasing"},
		{"negative line", func(tb *debuginfo.Table) {
			tb.Lines[0].Line = -3
		}, "negative line"},
		{"loc outside function", func(tb *debuginfo.Table) {
			v := firstLocal(t, tb)
			v.Entries[0].Start = 0
			v.Entries[0].End = uint32(1 << 20)
		}, "outside function bounds"},
		{"inverted range", func(tb *debuginfo.Table) {
			v := firstLocal(t, tb)
			e := &v.Entries[0]
			e.Start, e.End = e.End+2, e.Start
		}, ""},
		{"register out of machine", func(tb *debuginfo.Table) {
			v := firstLocal(t, tb)
			f := tb.Funcs[v.FuncIdx]
			v.Entries = append(v.Entries, debuginfo.LocEntry{
				Start: f.Start, End: f.Start + 1,
				Kind: debuginfo.LocReg, Operand: 99,
			})
		}, "outside machine"},
		{"unwitnessed register claim", func(tb *debuginfo.Table) {
			// A whole-function register range for a variable the code
			// never tags into that register.
			v := firstLocal(t, tb)
			f := tb.Funcs[v.FuncIdx]
			v.Entries = []debuginfo.LocEntry{{
				Start: f.Start, End: f.End,
				Kind: debuginfo.LocReg, Operand: int64(vm.NumRegs - 1),
			}}
		}, "never tagged"},
		{"overlapping ranges", func(tb *debuginfo.Table) {
			v := firstLocal(t, tb)
			f := tb.Funcs[v.FuncIdx]
			v.Entries = []debuginfo.LocEntry{
				{Start: f.Start, End: f.End, Kind: debuginfo.LocSlot, Operand: 0},
				{Start: f.Start, End: f.Start + 2, Kind: debuginfo.LocConst, Operand: 1},
			}
		}, "overlapping"},
		{"global index out of table", func(tb *debuginfo.Table) {
			g := firstGlobal(t, tb)
			g.Entries[0].Operand = 42
		}, "outside table"},
	}
	for _, c := range cases {
		bin := mutateDebug(t, base, c.mutate)
		violations := CheckBinary(bin)
		if len(violations) == 0 {
			t.Errorf("%s: no violation reported", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(strings.Join(violations, "\n"), c.want) {
			t.Errorf("%s: violations %v do not mention %q", c.name, violations, c.want)
		}
	}
}

func firstLocal(t *testing.T, tb *debuginfo.Table) *debuginfo.Variable {
	t.Helper()
	for i := range tb.Vars {
		if tb.Vars[i].FuncIdx >= 0 && len(tb.Vars[i].Entries) > 0 {
			return &tb.Vars[i]
		}
	}
	t.Skip("no local variable records")
	return nil
}

func firstGlobal(t *testing.T, tb *debuginfo.Table) *debuginfo.Variable {
	t.Helper()
	for i := range tb.Vars {
		if tb.Vars[i].FuncIdx == -1 && len(tb.Vars[i].Entries) > 0 {
			return &tb.Vars[i]
		}
	}
	t.Skip("no global variable records")
	return nil
}

func TestDynamicWithinStatic(t *testing.T) {
	table := &debuginfo.Table{
		Funcs: []debuginfo.FuncDebug{{Name: "f", Start: 0, End: 10}},
		Lines: []debuginfo.LineEntry{{Addr: 0, Line: 1}, {Addr: 4, Line: 2}},
		Vars: []debuginfo.Variable{{
			SymID: 3, Name: "x", FuncIdx: 0,
			Entries: []debuginfo.LocEntry{{Start: 0, End: 2, Kind: debuginfo.LocReg, Operand: 1}},
		}},
	}
	tr := dbgtrace.NewTrace()
	tr.Record(1, []int{3})
	if v := checkDynamicWithinStatic(table, tr); len(v) != 0 {
		t.Fatalf("claimed availability flagged: %v", v)
	}
	// Line 2's break address (4) has no entry for sym 3: a debugger
	// reporting it available there contradicts the static table.
	tr2 := dbgtrace.NewTrace()
	tr2.Record(2, []int{3})
	if v := checkDynamicWithinStatic(table, tr2); len(v) == 0 {
		t.Fatal("statically unclaimed availability not flagged")
	}
}

func TestReduceMinimizes(t *testing.T) {
	src := []byte("a\nb\nc\nd\ne\nf\ng\nh\n")
	fails := func(s []byte) bool {
		str := string(s)
		return strings.Contains(str, "c") && strings.Contains(str, "f")
	}
	got := string(Reduce(src, fails))
	if got != "c\nf\n" {
		t.Fatalf("Reduce = %q, want %q", got, "c\nf\n")
	}
	// A non-failing input comes back unchanged.
	if got := Reduce([]byte("x\ny\n"), fails); string(got) != "x\ny\n" {
		t.Fatalf("non-failing input mutated: %q", got)
	}
}

// TestReduceEndToEnd drives the reducer with a real oracle predicate: a
// program with a print that differs under an (artificial) predicate
// shrinks to the lines that matter. The predicate stands in for a
// compiler bug: it reports failure while the program still prints a
// negative number at gcc-O2.
func TestReduceEndToEnd(t *testing.T) {
	src := []byte(`var g: int = 5;
func helper(a: int): int {
	return a * 2;
}
func main() {
	var x: int = helper(g);
	var y: int = x + 1;
	print(y);
	print(0 - 42);
	print(x);
}
`)
	cfg := pipeline.MustConfig(pipeline.GCC, "O2")
	fails := func(s []byte) bool {
		o := NewOracle(nil)
		obsS := SourceSubject("r", s)
		if _, _, err := obsS.frontend(); err != nil {
			return false
		}
		res, err := o.observe(obsS, cfg)
		if err != nil {
			return false
		}
		for _, v := range res.Obs.Output {
			if v < 0 {
				return true
			}
		}
		return false
	}
	red := Reduce(src, fails)
	if !fails(red) {
		t.Fatal("reduced program no longer fails")
	}
	if lines := strings.Count(string(red), "\n"); lines > 3 {
		t.Fatalf("reduction too weak (%d lines):\n%s", lines, red)
	}
	if !strings.Contains(string(red), "print(0 - 42);") {
		t.Fatalf("culprit line dropped:\n%s", red)
	}
}

// TestRunChaosQuarantine drives a tiny matrix under a chaotic resilience
// executor and checks that quarantined cells surface as explicit QUAR
// findings — deterministically across worker counts — instead of killing
// the run.
func TestRunChaosQuarantine(t *testing.T) {
	opts := Options{Seeds: []int64{21, 22, 23}, Spec: "levels"}
	out := func(jobs int) (string, *Report) {
		p := resilience.DefaultPolicy()
		p.BackoffBase = time.Microsecond
		p.BackoffCap = 10 * time.Microsecond
		ex := resilience.NewExecutor(p)
		ex.Chaos = &resilience.Chaos{Rate: 1, Seed: 6}
		prev := resilience.Install(ex)
		defer resilience.Install(prev)
		old := workerpool.Workers()
		workerpool.SetWorkers(jobs)
		defer workerpool.SetWorkers(old)
		var buf bytes.Buffer
		rep, err := Run(&buf, opts)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), rep
	}
	serial, rep := out(1)
	parallel, _ := out(4)
	if serial != parallel {
		t.Fatalf("chaos report differs across -j:\n-j1:\n%s\n-j4:\n%s", serial, parallel)
	}
	if rep.Quarantined == 0 {
		t.Fatalf("rate-1 chaos quarantined nothing:\n%s", serial)
	}
	if rep.Mismatches+rep.Violations != 0 {
		t.Fatalf("chaos must produce gaps, not mismatches:\n%s", serial)
	}
	if !strings.Contains(serial, "quarantined cells:") || !strings.Contains(serial, "QUAR ") {
		t.Fatalf("quarantine gaps not reported:\n%s", serial)
	}
}

// TestRunNoExecutorByteCompat checks the fault-free fast path: with no
// executor installed the report must not mention quarantine at all.
func TestRunNoExecutorByteCompat(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Run(&buf, Options{Seeds: []int64{21}, Spec: "gcc-O2"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 || strings.Contains(buf.String(), "quarantined") {
		t.Fatalf("fault-free run mentions quarantine:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatalf("expected PASS:\n%s", buf.String())
	}
}
