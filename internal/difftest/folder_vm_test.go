package difftest

import (
	"math"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/vm"
)

// binOpSub mirrors codegen's binSubFor table: the IR opcode to VM
// sub-operation mapping the lowerer commits to. Keeping a copy here means
// a new binary opcode that misses either the folder, the VM, or this
// table fails the completeness check below.
var binOpSub = map[ir.Op]uint8{
	ir.OpAdd: vm.BinAdd, ir.OpSub: vm.BinSub, ir.OpMul: vm.BinMul,
	ir.OpDiv: vm.BinDiv, ir.OpRem: vm.BinRem, ir.OpAnd: vm.BinAnd,
	ir.OpOr: vm.BinOr, ir.OpXor: vm.BinXor, ir.OpShl: vm.BinShl,
	ir.OpShr: vm.BinShr, ir.OpEq: vm.BinEq, ir.OpNe: vm.BinNe,
	ir.OpLt: vm.BinLt, ir.OpLe: vm.BinLe, ir.OpGt: vm.BinGt,
	ir.OpGe: vm.BinGe,
}

// edgeValues covers every boundary MiniC's total semantics carves out:
// both int64 extremes (MinInt64/-1 wraps, MinInt64%-1 is 0), zero
// divisors, and shift counts straddling the 6-bit mask (64 behaves as 0,
// 65 as 1, -1 as 63).
var edgeValues = []int64{
	math.MinInt64, math.MinInt64 + 1, math.MaxInt64 - 1, math.MaxInt64,
	-65, -64, -63, -2, -1, 0, 1, 2, 3, 5, 31, 32, 62, 63, 64, 65, 127, 128,
}

// TestFolderMatchesVM locks the constant folder (ir.EvalBin, used by
// sccp/instcombine to fold at compile time) to the VM's runtime
// semantics (vm.EvalBinOp) over every binary opcode and the full edge
// grid. A divergence here is a miscompile: the folder would bake a value
// into the binary that the unoptimized build computes differently.
func TestFolderMatchesVM(t *testing.T) {
	if len(binOpSub) != int(vm.BinGe)+1 {
		t.Fatalf("mapping covers %d subcodes, VM defines %d", len(binOpSub), int(vm.BinGe)+1)
	}
	seen := map[uint8]bool{}
	for _, sub := range binOpSub {
		if seen[sub] {
			t.Fatalf("duplicate VM subcode %d in mapping", sub)
		}
		seen[sub] = true
	}
	for op, sub := range binOpSub {
		for _, x := range edgeValues {
			for _, y := range edgeValues {
				fold := ir.EvalBin(op, x, y)
				run := vm.EvalBinOp(sub, x, y)
				if fold != run {
					t.Errorf("%v(%d, %d): folder %d, VM %d", op, x, y, fold, run)
				}
			}
		}
	}
}

// TestFolderEdgeCaseAnchors pins the headline identities the language
// definition promises, independent of the cross-check above.
func TestFolderEdgeCaseAnchors(t *testing.T) {
	cases := []struct {
		op   ir.Op
		x, y int64
		want int64
	}{
		{ir.OpDiv, 7, 0, 0},
		{ir.OpRem, 7, 0, 0},
		{ir.OpDiv, math.MinInt64, -1, math.MinInt64},
		{ir.OpRem, math.MinInt64, -1, 0},
		{ir.OpShl, 1, 64, 1},         // count masked to 0
		{ir.OpShl, 1, 65, 2},         // count masked to 1
		{ir.OpShr, -1, 63, -1},       // arithmetic shift
		{ir.OpShl, 3, -1, math.MinInt64}, // -1 masks to 63; low set bit survives
		{ir.OpMul, math.MaxInt64, 2, -2}, // wrapping
	}
	for _, c := range cases {
		if got := ir.EvalBin(c.op, c.x, c.y); got != c.want {
			t.Errorf("EvalBin(%v, %d, %d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
		if got := vm.EvalBinOp(binOpSub[c.op], c.x, c.y); got != c.want {
			t.Errorf("EvalBinOp(%v, %d, %d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}
