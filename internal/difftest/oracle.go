package difftest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"debugtuner/internal/evalcache"
	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/sema"
	"debugtuner/internal/synth"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/vm"
)

// Subject is one program under differential test: a MiniC source plus
// the run protocol (harnesses with input vectors, or a zero-argument
// entry point).
type Subject struct {
	Name string
	Src  []byte
	// Harnesses to drive with Inputs; empty means run Entry once.
	Harnesses []string
	Inputs    map[string][][]int64
	// Entry is the zero-argument entry point ("main" when empty).
	Entry string

	feOnce sync.Once
	feErr  error
	info   *sema.Info
	ir0    *ir.Program
}

// SynthSubject wraps a generated program (deterministic per seed) as a
// subject. Synth programs print their state, so the print stream carries
// the whole observable behavior.
func SynthSubject(seed int64) *Subject {
	return &Subject{
		Name: fmt.Sprintf("synth-%04d", seed),
		Src:  []byte(synth.Generate(seed, synth.DefaultOptions())),
	}
}

// SourceSubject wraps an arbitrary MiniC source (reducer fixtures).
func SourceSubject(name string, src []byte) *Subject {
	return &Subject{Name: name, Src: src}
}

// frontend parses, checks, and lowers the subject once; the O0 IR is
// shared across configurations (pipeline.Build clones before mutating).
func (s *Subject) frontend() (*ir.Program, *sema.Info, error) {
	s.feOnce.Do(func() {
		info, err := pipeline.Frontend(s.Name+".mc", s.Src)
		if err != nil {
			s.feErr = err
			return
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			s.feErr = err
			return
		}
		s.info, s.ir0 = info, ir0
	})
	return s.ir0, s.info, s.feErr
}

func (s *Subject) entry() string {
	if s.Entry != "" {
		return s.Entry
	}
	return "main"
}

// Finding kinds.
const (
	// KindBehavior is an observable-behavior divergence from the O0
	// reference (output stream, return value, or termination).
	KindBehavior = "behavior"
	// KindInvariant is a malformed-debug-info finding.
	KindInvariant = "invariant"
	// KindReference is a divergence between the O0 build and the IR
	// interpreter — the reference itself is not trustworthy.
	KindReference = "reference"
	// KindQuarantine is a cell the resilience layer quarantined after
	// exhausting its retries: the comparison did not run, and the report
	// says so explicitly instead of leaving a silently-passing hole.
	KindQuarantine = "quarantine"
)

// Finding is one oracle result.
type Finding struct {
	Subject string
	Config  string
	Kind    string
	Detail  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", f.Subject, f.Config, f.Kind, f.Detail)
}

// Observation is the observable behavior of a subject under one binary:
// the print stream, per-run return values, and whether any run exhausted
// the step budget (runs stop at the first exhaustion, so Output is the
// observable prefix up to that point).
type Observation struct {
	Output []int64
	Rets   []int64
	Budget bool
}

// caseResult memoizes one (subject, config) evaluation. Fields are
// exported so the resilience journal can round-trip the result through
// JSON: a resumed run restores completed cells from disk instead of
// rebuilding them.
type caseResult struct {
	Obs        Observation
	Violations []string
}

// Oracle drives subjects through a configuration matrix.
type Oracle struct {
	Configs []pipeline.Config
	// Budget is the per-run VM step budget.
	Budget int64
	// TraceBudget is the step budget for the (slower) debug-trace
	// session behind the dynamic invariant check.
	TraceBudget int64
	// CheckDebug enables the debug-info invariant checker (on by
	// default via NewOracle).
	CheckDebug bool

	cache evalcache.Cache[*caseResult]
}

// NewOracle returns an oracle over the configuration set with the
// default budget and the invariant checker enabled.
func NewOracle(configs []pipeline.Config) *Oracle {
	return &Oracle{
		Configs:     configs,
		Budget:      DefaultBudget,
		TraceBudget: DefaultTraceBudget,
		CheckDebug:  true,
	}
}

// CheckSubject evaluates one subject under every configuration and
// returns its findings in matrix order. The error path is reserved for
// harness failures (front-end errors on a subject that must compile).
func (o *Oracle) CheckSubject(s *Subject) ([]Finding, error) {
	span := telemetry.Begin("difftest", "subject/"+s.Name)
	defer span.End()

	ir0, _, err := s.frontend()
	if err != nil {
		return nil, fmt.Errorf("difftest: subject %s: %w", s.Name, err)
	}

	var findings []Finding
	// Reference: the O0 build, itself cross-checked against the IR
	// interpreter so a codegen bug at O0 cannot become the baseline.
	refCfg := pipeline.MustConfig(pipeline.GCC, "O0")
	ref, err := o.observe(s, refCfg)
	if resilience.IsQuarantined(err) {
		// Without a reference every comparison for this subject is
		// meaningless: report one explicit gap covering the whole subject
		// and skip its matrix rather than diffing against garbage.
		return []Finding{{
			Subject: s.Name, Config: refCfg.Name(), Kind: KindQuarantine,
			Detail: "O0 reference quarantined, subject skipped: " + err.Error(),
		}}, nil
	}
	if err != nil {
		return nil, err
	}
	interp := o.interpret(s, ir0)
	if d := compareObs(interp, ref.Obs); d != "" {
		findings = append(findings, Finding{
			Subject: s.Name, Config: refCfg.Name(), Kind: KindReference,
			Detail: "O0 build vs IR interpreter: " + d,
		})
	}
	for _, vio := range ref.Violations {
		findings = append(findings, Finding{
			Subject: s.Name, Config: refCfg.Name(), Kind: KindInvariant, Detail: vio,
		})
	}

	for _, cfg := range o.Configs {
		res, err := o.observe(s, cfg)
		if resilience.IsQuarantined(err) {
			findings = append(findings, Finding{
				Subject: s.Name, Config: configLabel(cfg), Kind: KindQuarantine,
				Detail: "cell quarantined: " + err.Error(),
			})
			continue
		}
		if err != nil {
			return nil, err
		}
		if d := compareObs(ref.Obs, res.Obs); d != "" {
			telemetry.Add("difftest.mismatch", 1)
			findings = append(findings, Finding{
				Subject: s.Name, Config: configLabel(cfg), Kind: KindBehavior, Detail: d,
			})
		}
		for _, vio := range res.Violations {
			telemetry.Add("difftest.violation", 1)
			findings = append(findings, Finding{
				Subject: s.Name, Config: configLabel(cfg), Kind: KindInvariant, Detail: vio,
			})
		}
	}
	return findings, nil
}

// DiffOne evaluates the subject under a single configuration against
// the O0 reference, returning the findings (nil when clean).
func (o *Oracle) DiffOne(s *Subject, cfg pipeline.Config) ([]Finding, error) {
	saved := o.Configs
	o.Configs = []pipeline.Config{cfg}
	findings, err := o.CheckSubject(s)
	o.Configs = saved
	return findings, err
}

// observe builds the subject under the configuration and runs it,
// memoized per (subject, fingerprint) and — when a resilience executor
// is installed — isolated, retried, journaled, and quarantined per cell.
// The resilience wrapper sits inside the cache's singleflight so
// concurrent requests for one cell still coalesce into a single attempt
// chain; a quarantined result is Uncacheable and evicts itself.
func (o *Oracle) observe(s *Subject, cfg pipeline.Config) (*caseResult, error) {
	compute := func() (*caseResult, error) {
		ir0, _, err := s.frontend()
		if err != nil {
			return nil, err
		}
		bin := pipeline.Build(ir0, cfg)
		res := &caseResult{Obs: o.execute(s, bin)}
		if o.CheckDebug {
			res.Violations = CheckBinary(bin)
			res.Violations = append(res.Violations, o.checkDynamic(s, bin)...)
		}
		return res, nil
	}
	fp, cacheable := cfg.Fingerprint()
	if !cacheable {
		// Uncacheable configurations (FDO payloads outside the fingerprint
		// domain) still get isolation under a label-derived key; the
		// difftest matrix itself never produces them.
		return resilience.Run(resilience.Active(), context.Background(),
			cellKey(s, configLabel(cfg)), func(context.Context) (*caseResult, error) {
				return compute()
			})
	}
	return o.cache.Do(s.Name+"\x00"+fp, func() (*caseResult, error) {
		return resilience.Run(resilience.Active(), context.Background(),
			cellKey(s, fp), func(context.Context) (*caseResult, error) {
				return compute()
			})
	})
}

// cellKey is the journal/quarantine key of one (subject, config) cell:
// subject name and source hash × config fingerprint, stable across
// processes so a resumed run addresses the same cells.
func cellKey(s *Subject, fp string) string {
	return fmt.Sprintf("difftest|%s#%016x|%s", s.Name, resilience.HashBytes(s.Src), fp)
}

// execute runs the subject's protocol on a fresh VM per input, matching
// the fuzzer's execution model, and collects the observable behavior.
func (o *Oracle) execute(s *Subject, bin *vm.Binary) Observation {
	var obs Observation
	run := func(name string, args ...int64) bool {
		m := vm.New(bin)
		m.StepBudget = o.Budget
		ret, err := m.Call(name, args...)
		obs.Output = append(obs.Output, m.Output()...)
		if errors.Is(err, vm.ErrBudget) {
			obs.Budget = true
			return false
		}
		// Other errors cannot occur on well-formed binaries; encode
		// defensively as a budget-class stop so the comparison flags it.
		if err != nil {
			obs.Budget = true
			return false
		}
		obs.Rets = append(obs.Rets, ret)
		return true
	}
	if len(s.Harnesses) == 0 {
		run(s.entry())
		return obs
	}
	for _, h := range s.Harnesses {
		for _, in := range s.Inputs[h] {
			m := vm.New(bin)
			m.StepBudget = o.Budget
			hd := m.NewArray(in)
			ret, err := m.Call(h, hd, int64(len(in)))
			obs.Output = append(obs.Output, m.Output()...)
			if err != nil {
				obs.Budget = true
				return obs
			}
			obs.Rets = append(obs.Rets, ret)
		}
	}
	return obs
}

// interpret runs the same protocol on the IR interpreter.
func (o *Oracle) interpret(s *Subject, prog *ir.Program) Observation {
	var obs Observation
	if len(s.Harnesses) == 0 {
		in := ir.NewInterp(prog, o.Budget)
		ret, err := in.Call(s.entry())
		obs.Output = append(obs.Output, in.Output()...)
		if err != nil {
			obs.Budget = true
		} else {
			obs.Rets = append(obs.Rets, ret)
		}
		return obs
	}
	for _, h := range s.Harnesses {
		for _, input := range s.Inputs[h] {
			in := ir.NewInterp(prog, o.Budget)
			hd := in.NewArray(input)
			ret, err := in.Call(h, hd, int64(len(input)))
			obs.Output = append(obs.Output, in.Output()...)
			if err != nil {
				obs.Budget = true
				return obs
			}
			obs.Rets = append(obs.Rets, ret)
		}
	}
	return obs
}

// compareObs cross-checks an observation against the reference. A run
// that exhausted its budget is compared on its observable prefix: the
// partial output must be a prefix of the completed run's output. Two
// completed runs must agree exactly on outputs and return values.
func compareObs(ref, got Observation) string {
	switch {
	case !ref.Budget && !got.Budget:
		if d := diffStream("output", ref.Output, got.Output); d != "" {
			return d
		}
		if d := diffStream("return", ref.Rets, got.Rets); d != "" {
			return d
		}
	case ref.Budget && !got.Budget:
		if d := prefixOf(ref.Output, got.Output); d != "" {
			return "reference budget-bounded; " + d
		}
	case !ref.Budget && got.Budget:
		// The reference terminated: a variant that does not is a
		// termination divergence unless its partial output is still a
		// prefix of the reference's (then report only the hang).
		if d := prefixOf(got.Output, ref.Output); d != "" {
			return "termination: variant exhausted step budget; " + d
		}
		return "termination: variant exhausted step budget (reference terminated)"
	default:
		n := len(ref.Output)
		if len(got.Output) < n {
			n = len(got.Output)
		}
		if d := diffStream("output(prefix)", ref.Output[:n], got.Output[:n]); d != "" {
			return d
		}
	}
	return ""
}

// diffStream reports the first position where two int64 streams differ.
func diffStream(what string, a, b []int64) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("%s[%d]: reference %d, got %d", what, i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("%s length: reference %d, got %d", what, len(a), len(b))
	}
	return ""
}

// prefixOf checks that partial is a prefix of full.
func prefixOf(partial, full []int64) string {
	if len(partial) > len(full) {
		return fmt.Sprintf("partial output longer than completed run (%d > %d)",
			len(partial), len(full))
	}
	for i, v := range partial {
		if full[i] != v {
			return fmt.Sprintf("output[%d]: partial %d, completed %d", i, v, full[i])
		}
	}
	return ""
}

// ConfigLabel renders the unambiguous configuration label findings
// carry in their Config field — exported so campaign drivers can map
// labels back to configurations and parse the disabled-toggle suffix.
func ConfigLabel(cfg pipeline.Config) string { return configLabel(cfg) }

// ParseConfigLabel inverts ConfigLabel: "gcc-O2!licm!dse" becomes the
// gcc O2 configuration with licm and dse disabled.
func ParseConfigLabel(label string) (pipeline.Config, error) {
	parts := strings.Split(label, "!")
	profile, level, ok := strings.Cut(parts[0], "-")
	if !ok {
		var zero pipeline.Config
		return zero, fmt.Errorf("difftest: bad config label %q", label)
	}
	var opts []pipeline.Option
	if len(parts) > 1 {
		opts = append(opts, pipeline.Disable(parts[1:]...))
	}
	return pipeline.NewConfig(pipeline.Profile(profile), level, opts...)
}

// configLabel renders an unambiguous configuration label: unlike
// Config.Name (which collapses every disabled set to "-dN"), the label
// spells out the disabled toggles, so findings are actionable.
func configLabel(cfg pipeline.Config) string {
	s := fmt.Sprintf("%s-%s", cfg.Profile, cfg.Level)
	if len(cfg.Disabled) > 0 {
		var names []string
		for n, off := range cfg.Disabled {
			if off {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		s += "!" + strings.Join(names, "!")
	}
	return s
}

// Matrix builds the full differential configuration matrix: for every
// profile and level, the plain level plus one variant per single
// disabled toggle (including gcc's expensive-opts group toggle and the
// fine-grained called-once inliner knob where the level defines it).
func Matrix() []pipeline.Config {
	var out []pipeline.Config
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		for _, level := range pipeline.Levels(p) {
			out = append(out, levelMatrix(p, level)...)
		}
	}
	return out
}

// levelMatrix is the plain level plus its single-toggle variants.
func levelMatrix(p pipeline.Profile, level string) []pipeline.Config {
	out := []pipeline.Config{pipeline.MustConfig(p, level)}
	toggles := pipeline.EnabledPasses(p, level)
	if p == pipeline.GCC && level != "Og" {
		toggles = append(toggles, "inline-fncs-called-once")
	}
	for _, name := range toggles {
		out = append(out, pipeline.MustConfig(p, level, pipeline.Disable(name)))
	}
	return out
}

// ParseMatrix resolves a -configs spec:
//
//	"" or "full"  the complete matrix (Matrix)
//	"levels"      both profiles x all levels, no toggles
//	otherwise     comma-separated items: "gcc-O2" for one config,
//	              "gcc-O2*" for the level plus its single-toggle variants
func ParseMatrix(spec string) ([]pipeline.Config, error) {
	switch spec {
	case "", "full":
		return Matrix(), nil
	case "levels":
		var out []pipeline.Config
		for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
			for _, level := range pipeline.Levels(p) {
				out = append(out, pipeline.MustConfig(p, level))
			}
		}
		return out, nil
	}
	var out []pipeline.Config
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		expand := strings.HasSuffix(item, "*")
		item = strings.TrimSuffix(item, "*")
		profile, level, ok := strings.Cut(item, "-")
		if !ok {
			return nil, fmt.Errorf("difftest: bad config spec %q (want profile-level)", item)
		}
		if expand {
			if !validLevel(pipeline.Profile(profile), level) {
				return nil, fmt.Errorf("difftest: unknown config %q", item)
			}
			out = append(out, levelMatrix(pipeline.Profile(profile), level)...)
			continue
		}
		cfg, err := pipeline.NewConfig(pipeline.Profile(profile), level)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	return out, nil
}

func validLevel(p pipeline.Profile, level string) bool {
	for _, l := range pipeline.Levels(p) {
		if l == level {
			return true
		}
	}
	return false
}
