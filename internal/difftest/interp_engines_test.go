package difftest

import (
	"fmt"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/testsuite"
)

// interpObs is one interpreter core's complete observable outcome over a
// subject's full run protocol.
type interpObs struct {
	Output []int64
	Rets   []int64
	Errs   []string
}

// observeInterp runs the subject's protocol on the IR interpreter with
// the chosen core. A fresh Interp per run mirrors the oracle's protocol
// (interpret in oracle.go), so globals and heap state reset per input.
func observeInterp(s *Subject, prog *ir.Program, reference bool, budget int64) interpObs {
	var obs interpObs
	run := func(mk func(in *ir.Interp) (int64, error)) {
		in := ir.NewInterp(prog, budget)
		in.Reference = reference
		ret, err := mk(in)
		obs.Output = append(obs.Output, in.Output()...)
		if err != nil {
			obs.Errs = append(obs.Errs, err.Error())
		} else {
			obs.Rets = append(obs.Rets, ret)
		}
	}
	if len(s.Harnesses) == 0 {
		run(func(in *ir.Interp) (int64, error) { return in.Call(s.entry()) })
		return obs
	}
	for _, h := range s.Harnesses {
		for _, input := range s.Inputs[h] {
			input := input
			h := h
			run(func(in *ir.Interp) (int64, error) {
				hd := in.NewArray(input)
				return in.Call(h, hd, int64(len(input)))
			})
		}
	}
	return obs
}

// TestInterpThreadedVsReference is the IR-interpreter differential: the
// direct-threaded core must reproduce the reference switch loop exactly
// — print stream, return values, and error identity (including budget
// traps) — over the test suite and a band of synth seeds, on both the
// O0 IR and the optimized IR the differential oracle interprets.
func TestInterpThreadedVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep")
	}
	var subjects []*Subject
	for _, name := range testsuite.Names {
		s, err := SuiteSubject(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		subjects = append(subjects, s)
	}
	for seed := int64(1); seed <= 8; seed++ {
		subjects = append(subjects, SynthSubject(seed))
	}
	configs := []pipeline.Config{
		pipeline.MustConfig(pipeline.GCC, "O0"),
		pipeline.MustConfig(pipeline.GCC, "O2"),
		pipeline.MustConfig(pipeline.Clang, "O3"),
	}
	for _, s := range subjects {
		ir0, _, err := s.frontend()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, cfg := range configs {
			prog, _ := pipeline.OptimizeIR(ir0, cfg)
			ref := observeInterp(s, prog, true, DefaultBudget)
			got := observeInterp(s, prog, false, DefaultBudget)
			if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
				t.Errorf("%s [%s] threaded interp diverges from reference:\n ref %+v\n got %+v",
					s.Name, cfg.Name(), ref, got)
			}
		}
	}
}

// TestInterpThreadedBudgetExact sweeps step budgets on one subject and
// requires the threaded core to trap at exactly the same budget, with
// the same error and the same partial output, as the reference core.
func TestInterpThreadedBudgetExact(t *testing.T) {
	s := SynthSubject(3)
	ir0, _, err := s.frontend()
	if err != nil {
		t.Fatal(err)
	}
	full := observeInterp(s, ir0, true, DefaultBudget)
	if len(full.Errs) > 0 {
		t.Fatalf("subject traps at full budget: %v", full.Errs)
	}
	for budget := int64(1); budget <= 2000; budget += 7 {
		ref := observeInterp(s, ir0, true, budget)
		got := observeInterp(s, ir0, false, budget)
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
			t.Fatalf("budget %d: threaded %+v, reference %+v", budget, got, ref)
		}
	}
}
