package difftest

import (
	"strings"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/lexer"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/source"
	"debugtuner/internal/synth"
)

// renderTokens turns a token stream back into source text: identifiers
// and literals keep their raw text, everything else re-renders through
// Kind.String() (which is the source spelling for operators and
// keywords). Comments and layout are lost — by design, they are the
// only thing lexing is allowed to discard.
func renderTokens(toks []lexer.Token) string {
	var parts []string
	for _, t := range toks {
		if t.Kind == lexer.EOF {
			break
		}
		if t.Kind == lexer.Ident || t.Kind == lexer.Int {
			parts = append(parts, t.Text)
		} else {
			parts = append(parts, t.Kind.String())
		}
	}
	return strings.Join(parts, " ")
}

// irDump concatenates every function's printed IR, as a determinism
// witness for the front end and lowering.
func irDump(prog *ir.Program) string {
	var sb strings.Builder
	for _, f := range prog.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// FuzzParseRoundTrip feeds arbitrary text through the front end. For any
// input that lexes cleanly, re-rendering the token stream and lexing
// again must reproduce the same tokens (lexing is stable under its own
// output); for any input that compiles, compiling twice must produce
// byte-identical IR (the front end is deterministic), and a short bounded
// interpreter run must not panic.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("var g: int = 1;\nfunc main() { print(g / 0); }\n")
	f.Add("func main() { var x: int = 1 << 65; print(x); }\n")
	f.Add("func f(a: int): int { return a % (0 - 1); }\nfunc main() { print(f(5)); }\n")
	f.Add("var a: int[] = new int[4];\nfunc main() { a[9] = 7; print(a[9]); }\n")
	for seed := int64(1); seed <= 3; seed++ {
		f.Add(synth.Generate(seed, synth.DefaultOptions()))
	}
	f.Fuzz(func(t *testing.T, src string) {
		lx := lexer.New(source.NewFile("fuzz.mc", []byte(src)))
		toks := lx.All()
		if lx.Errors().Err() == nil {
			relex := lexer.New(source.NewFile("fuzz.mc", []byte(renderTokens(toks))))
			toks2 := relex.All()
			if err := relex.Errors().Err(); err != nil {
				t.Fatalf("re-render does not lex: %v", err)
			}
			if len(toks2) != len(toks) {
				t.Fatalf("re-render: %d tokens, want %d", len(toks2), len(toks))
			}
			for i := range toks {
				a, b := toks[i], toks2[i]
				if a.Kind != b.Kind || a.Val != b.Val ||
					((a.Kind == lexer.Ident || a.Kind == lexer.Int) && a.Text != b.Text) {
					t.Fatalf("token %d: %v %q (val %d) became %v %q (val %d)",
						i, a.Kind, a.Text, a.Val, b.Kind, b.Text, b.Val)
				}
			}
		}
		info, err := pipeline.Frontend("fuzz.mc", []byte(src))
		if err != nil {
			return
		}
		prog1, err := pipeline.BuildIR(info)
		if err != nil {
			return
		}
		info2, err := pipeline.Frontend("fuzz.mc", []byte(src))
		if err != nil {
			t.Fatalf("second front end failed: %v", err)
		}
		prog2, err := pipeline.BuildIR(info2)
		if err != nil {
			t.Fatalf("second lowering failed: %v", err)
		}
		if d1, d2 := irDump(prog1), irDump(prog2); d1 != d2 {
			t.Fatalf("front end nondeterministic:\n%s\nvs\n%s", d1, d2)
		}
		in := ir.NewInterp(prog1, 1<<14)
		in.Call("main") // bounded; must not panic, errors are fine
	})
}

// FuzzDiffOneConfig drives the differential oracle itself: any synth
// seed under any matrix configuration must produce zero findings. The
// budgets are small so the seed corpus stays cheap under plain go test.
func FuzzDiffOneConfig(f *testing.F) {
	f.Add(int64(1), int64(0))
	f.Add(int64(7), int64(33))
	f.Add(int64(99), int64(1000))
	matrix := Matrix()
	f.Fuzz(func(t *testing.T, seed, cfgIdx int64) {
		cfg := matrix[int(uint64(cfgIdx)%uint64(len(matrix)))]
		o := NewOracle(nil)
		o.Budget = 1 << 15
		o.TraceBudget = 1 << 13
		findings, err := o.DiffOne(SynthSubject(seed), cfg)
		if err != nil {
			t.Fatalf("seed %d under %s: %v", seed, configLabel(cfg), err)
		}
		for _, fd := range findings {
			t.Errorf("%s", fd)
		}
	})
}
