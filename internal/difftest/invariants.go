package difftest

import (
	"fmt"
	"sort"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/vm"
)

// CheckBinary validates the structural invariants of a binary's debug
// section and returns one message per violation (nil when clean):
//
//  1. the section decodes, and its function records agree with the
//     binary's function table (name, code range, prologue inside it);
//  2. the line table is sorted with strictly increasing addresses, every
//     row lies inside the code, and every attributed row (Line > 0, the
//     is_stmt analog) falls inside a function's range;
//  3. location-list entries are well-formed ranges (Start <= End)
//     contained in their function's bounds, with operands inside the
//     machine (register index < vm.NumRegs, slot index < the frame
//     size, global index < the global table);
//  4. per variable, location ranges do not overlap — the emitter closes
//     an entry before opening the next, so an overlap means two
//     contradictory claims for the same address;
//  5. every register and spill location of nonzero length has an owner
//     tag witness in the covering code: some covered instruction
//     actually asserts "this register/slot now holds this variable".
//     A claim with no witness can never materialize at runtime and is
//     exactly the malformed entry static metrics over-count.
func CheckBinary(bin *vm.Binary) []string {
	var out []string
	bad := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	if bin.Debug == nil {
		return []string{"binary has no debug section"}
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return []string{"debug section does not decode: " + err.Error()}
	}

	// 1. Function records.
	if len(table.Funcs) != len(bin.Funcs) {
		bad("func records: debug has %d, binary has %d", len(table.Funcs), len(bin.Funcs))
	}
	for i := range table.Funcs {
		fd := &table.Funcs[i]
		if fd.Start > fd.End || int(fd.End) > len(bin.Code) {
			bad("func %s: bad range [%d,%d) over %d instructions",
				fd.Name, fd.Start, fd.End, len(bin.Code))
			continue
		}
		if fd.PrologueEnd < fd.Start || fd.PrologueEnd > fd.End {
			bad("func %s: prologue end %d outside [%d,%d]",
				fd.Name, fd.PrologueEnd, fd.Start, fd.End)
		}
		if i < len(bin.Funcs) {
			bf := &bin.Funcs[i]
			if fd.Name != bf.Name || int(fd.Start) != bf.Start || int(fd.End) != bf.End {
				bad("func %s: debug range [%d,%d) disagrees with binary %s [%d,%d)",
					fd.Name, fd.Start, fd.End, bf.Name, bf.Start, bf.End)
			}
		}
	}

	// 2. Line table.
	for i := range table.Lines {
		e := &table.Lines[i]
		if i > 0 && e.Addr <= table.Lines[i-1].Addr {
			bad("line table: row %d addr %d not strictly increasing (prev %d)",
				i, e.Addr, table.Lines[i-1].Addr)
		}
		if int(e.Addr) >= len(bin.Code) && len(bin.Code) > 0 {
			bad("line table: row %d addr %d outside code (%d instructions)",
				i, e.Addr, len(bin.Code))
		}
		if e.Line < 0 {
			bad("line table: row %d has negative line %d", i, e.Line)
		}
		if e.Line > 0 && table.FuncForAddr(e.Addr) == nil {
			bad("line table: row %d (line %d) addr %d inside no function",
				i, e.Line, e.Addr)
		}
	}

	// 3-5. Location lists.
	for vi := range table.Vars {
		v := &table.Vars[vi]
		if v.FuncIdx == -1 {
			for _, e := range v.Entries {
				if e.Kind != debuginfo.LocGlobal {
					bad("global %s: non-global location kind %v", v.Name, e.Kind)
					continue
				}
				if e.Operand < 0 || e.Operand >= int64(len(bin.Globals)) {
					bad("global %s: global index %d outside table of %d",
						v.Name, e.Operand, len(bin.Globals))
				}
			}
			continue
		}
		if int(v.FuncIdx) >= len(table.Funcs) {
			bad("var %s: function index %d outside %d records",
				v.Name, v.FuncIdx, len(table.Funcs))
			continue
		}
		fd := &table.Funcs[v.FuncIdx]
		numSlots := 0
		if int(v.FuncIdx) < len(bin.Funcs) {
			numSlots = bin.Funcs[v.FuncIdx].NumSlots
		}
		for _, e := range v.Entries {
			where := fmt.Sprintf("var %s in %s [%d,%d) %v", v.Name, fd.Name,
				e.Start, e.End, e.Kind)
			if e.Start > e.End {
				bad("%s: inverted range", where)
				continue
			}
			if e.Start < fd.Start || e.End > fd.End {
				bad("%s: outside function bounds [%d,%d)", where, fd.Start, fd.End)
				continue
			}
			switch e.Kind {
			case debuginfo.LocReg:
				if e.Operand < 0 || e.Operand >= vm.NumRegs {
					bad("%s: register %d outside machine", where, e.Operand)
				} else if e.Start < e.End &&
					!tagWitness(bin, fd, e.End, v.SymID, int(e.Operand), -1) {
					bad("%s: register never tagged for the variable by covering code", where)
				}
			case debuginfo.LocSpill:
				if e.Operand < 0 || e.Operand >= int64(numSlots) {
					bad("%s: spill slot %d outside frame of %d", where, e.Operand, numSlots)
				} else if e.Start < e.End &&
					!tagWitness(bin, fd, e.End, v.SymID, -1, int(e.Operand)) {
					bad("%s: spill slot never tagged for the variable by covering code", where)
				}
			case debuginfo.LocSlot:
				if e.Operand < 0 || e.Operand >= int64(numSlots) {
					bad("%s: slot %d outside frame of %d", where, e.Operand, numSlots)
				}
			case debuginfo.LocNone, debuginfo.LocConst:
				// No operand constraints.
			default:
				bad("%s: invalid location kind for a local", where)
			}
		}
		// 4. Non-overlap per variable.
		entries := append([]debuginfo.LocEntry(nil), v.Entries...)
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Start != entries[j].Start {
				return entries[i].Start < entries[j].Start
			}
			return entries[i].End < entries[j].End
		})
		for i := 1; i < len(entries); i++ {
			if entries[i].Start < entries[i-1].End {
				bad("var %s in %s: overlapping ranges [%d,%d) and [%d,%d)",
					v.Name, fd.Name,
					entries[i-1].Start, entries[i-1].End,
					entries[i].Start, entries[i].End)
			}
		}
	}
	return out
}

// tagWitness scans the function's code up to end for an owner tag
// binding the variable to the register (reg >= 0) or spill slot
// (slot >= 0). The emitter attaches the tag to the instruction just
// before the range opens (or as a pre-tag on the first covered one), so
// the scan starts at the function head rather than the range start.
func tagWitness(bin *vm.Binary, fd *debuginfo.FuncDebug, end uint32, symID int32, reg, slot int) bool {
	want := symID + 1
	for a := fd.Start; a < end && int(a) < len(bin.Code); a++ {
		for _, t := range bin.Code[a].Own {
			if t.Var != want {
				continue
			}
			if reg >= 0 && int(t.Reg) == reg {
				return true
			}
			if slot >= 0 && int(t.Slot) == slot {
				return true
			}
		}
	}
	return false
}

// checkDynamic runs a temporary-breakpoint debug session over the
// subject's protocol and verifies the metric-sanity direction of §II:
// dynamic availability is a subset of the static claims — every
// (line, variable) the debugger reports readable must have a non-LocNone
// location entry covering one of that line's breakpoint addresses. A
// violation means the decoded table and the session disagree, which
// would corrupt the hybrid metric's numerator.
func (o *Oracle) checkDynamic(s *Subject, bin *vm.Binary) []string {
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return []string{"debug session: " + err.Error()}
	}
	budget := o.TraceBudget
	if budget <= 0 {
		budget = DefaultTraceBudget
	}
	var tr *dbgtrace.Trace
	if len(s.Harnesses) == 0 {
		tr, err = sess.TraceMain(s.entry(), budget)
	} else {
		tr = dbgtrace.NewTrace()
		for _, h := range s.Harnesses {
			var ht *dbgtrace.Trace
			ht, err = sess.Trace(h, s.Inputs[h], budget)
			if err != nil {
				break
			}
			tr.Merge(ht)
		}
	}
	if err != nil {
		return []string{"debug trace: " + err.Error()}
	}
	return checkDynamicWithinStatic(sess.Table, tr)
}

// checkDynamicWithinStatic is the table-level core of the dynamic <=
// static invariant, split out for direct testing.
func checkDynamicWithinStatic(table *debuginfo.Table, tr *dbgtrace.Trace) []string {
	breakAddrs := table.BreakAddrs()
	var out []string
	for _, line := range tr.Lines() {
		syms := make([]int, 0, len(tr.Avail[line]))
		for sym := range tr.Avail[line] {
			syms = append(syms, sym)
		}
		sort.Ints(syms)
		for _, sym := range syms {
			if !staticClaims(table, sym, breakAddrs[line]) {
				out = append(out, fmt.Sprintf(
					"line %d: variable sym%d dynamically available but statically unclaimed",
					line, sym))
			}
		}
	}
	return out
}

// staticClaims reports whether the table claims a readable location for
// the symbol at any of the addresses.
func staticClaims(table *debuginfo.Table, symID int, addrs []uint32) bool {
	for i := range table.Vars {
		v := &table.Vars[i]
		if int(v.SymID) != symID {
			continue
		}
		for _, a := range addrs {
			if e := v.LocAt(a); e != nil && e.Kind != debuginfo.LocNone {
				return true
			}
		}
	}
	return false
}
