package difftest

import (
	"fmt"
	"sort"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/vm"
)

// CheckBinary validates the structural invariants of a binary's debug
// section and returns one message per violation (nil when clean). The
// rule set and the checker itself live in internal/staticdbg — difftest
// shares the one checker and the one sorted, de-duplicated report
// format with `experiments debugify` and `minicc -verify-each` — and
// covers, with typed rule IDs:
//
//   - section: the section decodes at all;
//   - func-record: function records agree with the binary's function
//     table (name, code range, prologue inside it);
//   - line-monotone / line-containment / line-range: the line table is
//     sorted with strictly increasing addresses, rows lie inside the
//     code and inside some function, lines are non-negative;
//   - loc-shape / loc-containment / loc-overlap: location-list entries
//     are well-formed, contained, machine-valid, and non-overlapping
//     per variable;
//   - loc-witness: register/spill claims have an owner-tag witness in
//     the covering code (the malformed entry static metrics over-count);
//   - loc-stale / line-unreachable: the dataflow-backed rules — claims
//     no reaching owner write can make observable, and attributed line
//     rows on statically unreachable code.
//
// Advisory rules (loc-extendable: a range the must-availability
// analysis proves could be longer) are filtered out: an advisory is an
// improvement opportunity, not a correctness defect, and must not fail
// a differential cell.
func CheckBinary(bin *vm.Binary) []string {
	if vs := staticdbg.NonAdvisory(staticdbg.CheckBinary(bin)); len(vs) > 0 {
		return staticdbg.Strings(vs)
	}
	return nil
}

// checkDynamic runs a temporary-breakpoint debug session over the
// subject's protocol and verifies the metric-sanity direction of §II:
// dynamic availability is a subset of the static claims — every
// (line, variable) the debugger reports readable must have a non-LocNone
// location entry covering one of that line's breakpoint addresses. A
// violation means the decoded table and the session disagree, which
// would corrupt the hybrid metric's numerator.
func (o *Oracle) checkDynamic(s *Subject, bin *vm.Binary) []string {
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return []string{"debug session: " + err.Error()}
	}
	budget := o.TraceBudget
	if budget <= 0 {
		budget = DefaultTraceBudget
	}
	var tr *dbgtrace.Trace
	if len(s.Harnesses) == 0 {
		tr, err = sess.TraceMain(s.entry(), budget)
	} else {
		tr = dbgtrace.NewTrace()
		for _, h := range s.Harnesses {
			var ht *dbgtrace.Trace
			ht, err = sess.Trace(h, s.Inputs[h], budget)
			if err != nil {
				break
			}
			tr.Merge(ht)
		}
	}
	if err != nil {
		return []string{"debug trace: " + err.Error()}
	}
	return checkDynamicWithinStatic(sess.Table, tr)
}

// checkDynamicWithinStatic is the table-level core of the dynamic <=
// static invariant, split out for direct testing.
func checkDynamicWithinStatic(table *debuginfo.Table, tr *dbgtrace.Trace) []string {
	breakAddrs := table.BreakAddrs()
	var out []string
	for _, line := range tr.Lines() {
		syms := make([]int, 0, len(tr.Avail[line]))
		for sym := range tr.Avail[line] {
			syms = append(syms, sym)
		}
		sort.Ints(syms)
		for _, sym := range syms {
			if !staticClaims(table, sym, breakAddrs[line]) {
				out = append(out, fmt.Sprintf(
					"line %d: variable sym%d dynamically available but statically unclaimed",
					line, sym))
			}
		}
	}
	return out
}

// staticClaims reports whether the table claims a readable location for
// the symbol at any of the addresses.
func staticClaims(table *debuginfo.Table, symID int, addrs []uint32) bool {
	for i := range table.Vars {
		v := &table.Vars[i]
		if int(v.SymID) != symID {
			continue
		}
		for _, a := range addrs {
			if e := v.LocAt(a); e != nil && e.Kind != debuginfo.LocNone {
				return true
			}
		}
	}
	return false
}
