package difftest

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
)

// Budget bounds one reduction. The zero value is unbounded, matching
// the historical Reduce behavior; the hunt campaign always sets
// MaxProbes so a pathological witness can never hang a run.
type Budget struct {
	// MaxProbes caps predicate evaluations (0 = unlimited).
	MaxProbes int
	// MaxWall caps wall-clock (0 = unlimited). Wall budgets make the
	// reduction outcome timing-dependent, so deterministic campaigns use
	// MaxProbes and leave this for interactive use.
	MaxWall time.Duration
}

// Reduce shrinks a failing MiniC source with line-granular delta
// debugging (Zeller's ddmin over complements): it repeatedly removes
// chunks of lines while the failure predicate still holds, then retries
// single lines until the result is 1-minimal — removing any one
// remaining line either fixes the failure or breaks compilation (the
// predicate is expected to return false for sources that do not
// front-end). A final pair-elimination pass removes two lines at a time,
// which 1-minimality cannot reach but brace-delimited code needs (an
// empty function body leaves "header {" and "}" lines that only vanish
// together). The input source is returned unchanged when it does not
// satisfy the predicate.
func Reduce(src []byte, fails func(src []byte) bool) []byte {
	return ReduceWith(src, fails, Budget{})
}

// ReduceWith is Reduce under a budget: once the probe or wall limit is
// reached every further probe reports false, so the algorithm unwinds
// and returns the best (smallest) failing source found so far instead
// of hanging on a stalling or slow-diverging mutant.
func ReduceWith(src []byte, fails func(src []byte) bool, budget Budget) []byte {
	p := &prober{fails: fails, left: -1}
	if budget.MaxProbes > 0 {
		p.left = budget.MaxProbes
	}
	if budget.MaxWall > 0 {
		p.deadline = time.Now().Add(budget.MaxWall)
	}
	if !p.probe(src) {
		return src
	}
	lines := strings.Split(strings.TrimRight(string(src), "\n"), "\n")
	join := func(ls []string) []byte {
		return []byte(strings.Join(ls, "\n") + "\n")
	}
	n := 2
	for len(lines) >= 2 && n <= len(lines) {
		chunk := (len(lines) + n - 1) / n
		reduced := false
		for i := 0; i < len(lines); i += chunk {
			end := i + chunk
			if end > len(lines) {
				end = len(lines)
			}
			cand := make([]string, 0, len(lines)-(end-i))
			cand = append(cand, lines[:i]...)
			cand = append(cand, lines[end:]...)
			if len(cand) == 0 {
				continue
			}
			if p.probe(join(cand)) {
				lines = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(lines) {
				break
			}
			n *= 2
			if n > len(lines) {
				n = len(lines)
			}
		}
	}
	// Pair elimination: retry until no two-line removal still fails.
	for {
		reduced := false
	pairs:
		for i := 0; i < len(lines)-1 && len(lines) > 2; i++ {
			for j := i + 1; j < len(lines); j++ {
				cand := make([]string, 0, len(lines)-2)
				cand = append(cand, lines[:i]...)
				cand = append(cand, lines[i+1:j]...)
				cand = append(cand, lines[j+1:]...)
				if p.probe(join(cand)) {
					lines = cand
					reduced = true
					break pairs
				}
			}
		}
		if !reduced {
			break
		}
	}
	return join(lines)
}

// prober wraps the failure predicate with the budget: past the limit it
// answers false without calling the predicate, which the ddmin loops
// read as "no further reduction" and terminate with the best-so-far.
type prober struct {
	fails     func([]byte) bool
	left      int // remaining probes, -1 = unlimited
	deadline  time.Time
	exhausted bool
}

func (p *prober) probe(src []byte) bool {
	if p.exhausted {
		return false
	}
	if p.left == 0 || (!p.deadline.IsZero() && time.Now().After(p.deadline)) {
		p.exhausted = true
		return false
	}
	if p.left > 0 {
		p.left--
	}
	return p.fails(src)
}

// FailsUnder builds a reduction predicate: the source still front-ends
// and the oracle still reports at least one finding for the
// configuration (behavior mismatch, reference divergence, or invariant
// violation). Sources that no longer compile do not "fail" — the
// reducer must not escape into syntax errors.
func FailsUnder(cfg pipeline.Config) func(src []byte) bool {
	return FailsUnderTimeout(cfg, 0)
}

// FailsUnderTimeout is FailsUnder with each probe run as a cell under a
// private resilience executor with the given deadline: a candidate whose
// build or execution stalls is abandoned after timeout and counted as
// not-failing, so ddmin keeps making progress instead of hanging on one
// probe. A timeout of 0 runs the probe directly.
func FailsUnderTimeout(cfg pipeline.Config, timeout time.Duration) func(src []byte) bool {
	var ex *resilience.Executor
	if timeout > 0 {
		pol := resilience.DefaultPolicy()
		pol.Retries = 0
		pol.CellTimeout = timeout
		ex = resilience.NewExecutor(pol)
	}
	return func(src []byte) bool {
		probe := func(context.Context) (bool, error) {
			o := NewOracle(nil)
			findings, err := o.DiffOne(SourceSubject("reduce", src), cfg)
			return err == nil && len(findings) > 0, nil
		}
		if ex == nil {
			v, _ := probe(context.Background())
			return v
		}
		key := fmt.Sprintf("reduce|%016x|%s", resilience.HashBytes(src), configLabel(cfg))
		v, err := resilience.RunEphemeral(ex, context.Background(), key, probe)
		return err == nil && v
	}
}

// WriteFixture stores a reduced reproducer under dir, named after the
// subject and the configuration that exposed it, with a header comment
// recording the finding. Returns the written path.
func WriteFixture(dir string, f Finding, reduced []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, FixtureName(f.Subject, f.Config))
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "// difftest reproducer: %s\n// finding: [%s] %s\n",
		f.Subject, f.Kind, f.Detail)
	buf.Write(reduced)
	return path, os.WriteFile(path, buf.Bytes(), 0o644)
}

// FixtureName derives the fixture filename from the subject and config
// label. Sanitizing is lossy — "gcc-O2!licm" and "gcc-O2@licm" collapse
// to one name — so whenever sanitizing changed either part, a short hash
// of the raw pair is appended; distinct labels can then never silently
// overwrite each other's fixtures, while already-clean names keep their
// historical spelling.
func FixtureName(subject, label string) string {
	ss, sl := sanitizeLabel(subject), sanitizeLabel(label)
	name := ss + "-" + sl
	if ss != subject || sl != label {
		h := resilience.HashBytes([]byte(subject + "\x00" + label))
		name += fmt.Sprintf("-%08x", uint32(h))
	}
	return name + ".mc"
}

// sanitizeLabel maps a config label to a filename-safe form.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, label)
}
