package difftest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"debugtuner/internal/pipeline"
)

// Reduce shrinks a failing MiniC source with line-granular delta
// debugging (Zeller's ddmin over complements): it repeatedly removes
// chunks of lines while the failure predicate still holds, then retries
// single lines until the result is 1-minimal — removing any one
// remaining line either fixes the failure or breaks compilation (the
// predicate is expected to return false for sources that do not
// front-end). A final pair-elimination pass removes two lines at a time,
// which 1-minimality cannot reach but brace-delimited code needs (an
// empty function body leaves "header {" and "}" lines that only vanish
// together). The input source is returned unchanged when it does not
// satisfy the predicate.
func Reduce(src []byte, fails func(src []byte) bool) []byte {
	if !fails(src) {
		return src
	}
	lines := strings.Split(strings.TrimRight(string(src), "\n"), "\n")
	join := func(ls []string) []byte {
		return []byte(strings.Join(ls, "\n") + "\n")
	}
	n := 2
	for len(lines) >= 2 && n <= len(lines) {
		chunk := (len(lines) + n - 1) / n
		reduced := false
		for i := 0; i < len(lines); i += chunk {
			end := i + chunk
			if end > len(lines) {
				end = len(lines)
			}
			cand := make([]string, 0, len(lines)-(end-i))
			cand = append(cand, lines[:i]...)
			cand = append(cand, lines[end:]...)
			if len(cand) == 0 {
				continue
			}
			if fails(join(cand)) {
				lines = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(lines) {
				break
			}
			n *= 2
			if n > len(lines) {
				n = len(lines)
			}
		}
	}
	// Pair elimination: retry until no two-line removal still fails.
	for {
		reduced := false
	pairs:
		for i := 0; i < len(lines)-1 && len(lines) > 2; i++ {
			for j := i + 1; j < len(lines); j++ {
				cand := make([]string, 0, len(lines)-2)
				cand = append(cand, lines[:i]...)
				cand = append(cand, lines[i+1:j]...)
				cand = append(cand, lines[j+1:]...)
				if fails(join(cand)) {
					lines = cand
					reduced = true
					break pairs
				}
			}
		}
		if !reduced {
			break
		}
	}
	return join(lines)
}

// FailsUnder builds a reduction predicate: the source still front-ends
// and the oracle still reports at least one finding for the
// configuration (behavior mismatch, reference divergence, or invariant
// violation). Sources that no longer compile do not "fail" — the
// reducer must not escape into syntax errors.
func FailsUnder(cfg pipeline.Config) func(src []byte) bool {
	return func(src []byte) bool {
		o := NewOracle(nil)
		findings, err := o.DiffOne(SourceSubject("reduce", src), cfg)
		return err == nil && len(findings) > 0
	}
}

// WriteFixture stores a reduced reproducer under dir, named after the
// subject and the configuration that exposed it, with a header comment
// recording the finding. Returns the written path.
func WriteFixture(dir string, f Finding, reduced []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s-%s.mc", f.Subject, sanitizeLabel(f.Config))
	path := filepath.Join(dir, name)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "// difftest reproducer: %s\n// finding: [%s] %s\n",
		f.Subject, f.Kind, f.Detail)
	buf.Write(reduced)
	return path, os.WriteFile(path, buf.Bytes(), 0o644)
}

// sanitizeLabel maps a config label to a filename-safe form.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, label)
}
