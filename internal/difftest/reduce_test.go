package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"debugtuner/internal/pipeline"
)

// tenLines is a minimal multi-line failing input for budget tests.
func tenLines() []byte {
	var sb strings.Builder
	for i := 0; i < 10; i++ {
		sb.WriteString("line\n")
	}
	return []byte(sb.String())
}

// TestReduceWithProbeBudget: the probe cap is honored exactly, and the
// reducer returns the best source found so far rather than the input.
func TestReduceWithProbeBudget(t *testing.T) {
	probes := 0
	fails := func(src []byte) bool {
		probes++
		// Any source containing at least one line "fails": fully
		// reducible, so an unbounded run would reach 1 line.
		return len(src) > 0
	}
	out := ReduceWith(tenLines(), fails, Budget{MaxProbes: 3})
	if probes != 3 {
		t.Fatalf("predicate probed %d times, budget was 3", probes)
	}
	inLines := len(strings.Split(strings.TrimSpace(string(tenLines())), "\n"))
	outLines := len(strings.Split(strings.TrimSpace(string(out)), "\n"))
	if outLines >= inLines {
		t.Fatalf("no progress under budget: %d -> %d lines", inLines, outLines)
	}
}

// TestReduceWithStallingPredicate is the satellite regression: a
// predicate that stalls on every probe must not hang the reduction —
// the wall budget unwinds the ddmin loops with the best-so-far result.
func TestReduceWithStallingPredicate(t *testing.T) {
	fails := func(src []byte) bool {
		time.Sleep(20 * time.Millisecond) // deliberately stalling probe
		return len(src) > 0
	}
	done := make(chan []byte, 1)
	go func() {
		done <- ReduceWith(tenLines(), fails, Budget{MaxWall: 60 * time.Millisecond})
	}()
	select {
	case out := <-done:
		if len(out) == 0 {
			t.Fatal("reduction returned empty source")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reduction did not terminate under a wall budget")
	}
}

// TestReduceZeroBudgetUnbounded: the zero Budget reduces all the way,
// byte-identical to the historical unbounded Reduce.
func TestReduceZeroBudgetUnbounded(t *testing.T) {
	fails := func(src []byte) bool { return len(src) > 0 }
	a := Reduce(tenLines(), fails)
	b := ReduceWith(tenLines(), fails, Budget{})
	if string(a) != string(b) {
		t.Fatalf("Reduce and zero-budget ReduceWith disagree: %q vs %q", a, b)
	}
	if got := strings.TrimSpace(string(a)); got != "line" {
		t.Fatalf("unbounded reduction stopped early: %q", got)
	}
}

// TestFailsUnderTimeoutKillsStalledProbe: with an absurdly small cell
// timeout every probe is abandoned and reports false — the reducer's
// "cannot make progress" direction — instead of blocking forever.
func TestFailsUnderTimeoutKillsStalledProbe(t *testing.T) {
	cfg := pipeline.MustConfig(pipeline.GCC, "O2")
	pred := FailsUnderTimeout(cfg, time.Nanosecond)
	done := make(chan bool, 1)
	go func() { done <- pred([]byte("func main() { print(1); }\n")) }()
	select {
	case v := <-done:
		if v {
			t.Fatal("timed-out probe reported a failure")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("probe did not respect the cell timeout")
	}
}

// TestFixtureNameCollision locks the WriteFixture disambiguation: two
// labels that sanitize to the same filename must produce distinct
// fixture names, and clean labels keep their historical spelling.
func TestFixtureNameCollision(t *testing.T) {
	a := FixtureName("synth-0001", "gcc-O2!licm")
	b := FixtureName("synth-0001", "gcc-O2@licm")
	if a == b {
		t.Fatalf("colliding labels share fixture name %q", a)
	}
	for _, n := range []string{a, b} {
		if !strings.HasPrefix(n, "synth-0001-gcc-O2_licm-") || !strings.HasSuffix(n, ".mc") {
			t.Fatalf("unexpected fixture name shape %q", n)
		}
	}
	if got := FixtureName("synth-0001", "gcc-O2"); got != "synth-0001-gcc-O2.mc" {
		t.Fatalf("clean label renamed: %q", got)
	}
}

// TestWriteFixtureNoSilentOverwrite writes two findings whose labels
// sanitize identically and checks both fixtures exist afterwards.
func TestWriteFixtureNoSilentOverwrite(t *testing.T) {
	dir := t.TempDir()
	f1 := Finding{Subject: "s", Config: "gcc-O2!dce", Kind: KindBehavior, Detail: "d1"}
	f2 := Finding{Subject: "s", Config: "gcc-O2@dce", Kind: KindBehavior, Detail: "d2"}
	p1, err := WriteFixture(dir, f1, []byte("one\n"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := WriteFixture(dir, f2, []byte("two\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatalf("second fixture overwrote the first at %q", p1)
	}
	for _, p := range []string{p1, p2} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("fixture missing: %v", err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		var names []string
		for _, e := range ents {
			names = append(names, filepath.Base(e.Name()))
		}
		t.Fatalf("want 2 fixtures, got %v", names)
	}
}
