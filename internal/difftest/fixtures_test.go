package difftest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixturesCleanAcrossMatrix replays every checked-in fixture under
// testdata/ through the oracle over the full configuration matrix. The
// directory holds the semantic-edge programs (int64-boundary division,
// shift-count masking) plus any reducer-minimized reproducers of fixed
// bugs; all must behave identically in every build and carry clean debug
// info.
func TestFixturesCleanAcrossMatrix(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.mc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least the two semantic-edge fixtures, found %v", paths)
	}
	o := NewOracle(Matrix())
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(p), ".mc")
		findings, err := o.CheckSubject(SourceSubject(name, src))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		for _, f := range findings {
			t.Errorf("%s: %s", p, f)
		}
	}
}
