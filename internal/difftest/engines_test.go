package difftest

import (
	"fmt"
	"testing"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/vm"
)

// engineObs is one engine's complete observable machine state over a
// subject's full run protocol: the print stream and return values the
// behavior oracle compares, plus every cost counter the experiment
// tables are derived from.
type engineObs struct {
	Output []int64
	Rets   []int64
	Cycles int64
	Steps  int64
	Stall  int64
	ICM    int64
	Taken  int64
	Fall   int64
	Jmps   int64
	Slots  int64
	Errs   []string
}

// observeEngine runs the subject's protocol with a forced execution
// engine, accumulating counters across all harness inputs.
func observeEngine(s *Subject, bin *vm.Binary, eng vm.Engine, budget int64) engineObs {
	var obs engineObs
	run := func(name string, args ...int64) {
		m := vm.New(bin)
		m.Engine = eng
		m.StepBudget = budget
		ret, err := m.Call(name, args...)
		obs.Output = append(obs.Output, m.Output()...)
		if err != nil {
			obs.Errs = append(obs.Errs, err.Error())
		} else {
			obs.Rets = append(obs.Rets, ret)
		}
		obs.Cycles += m.Cycles
		obs.Steps += m.Steps
		obs.Stall += m.StallCycles
		obs.ICM += m.ICacheMisses
		obs.Taken += m.TakenBr
		obs.Fall += m.FallBr
		obs.Jmps += m.JmpsRun
		obs.Slots += m.SlotOpsRun
	}
	if len(s.Harnesses) == 0 {
		run(s.entry())
		return obs
	}
	for _, h := range s.Harnesses {
		for _, in := range s.Inputs[h] {
			m := vm.New(bin)
			m.Engine = eng
			m.StepBudget = budget
			hd := m.NewArray(in)
			ret, err := m.Call(h, hd, int64(len(in)))
			obs.Output = append(obs.Output, m.Output()...)
			if err != nil {
				obs.Errs = append(obs.Errs, err.Error())
			} else {
				obs.Rets = append(obs.Rets, ret)
			}
			obs.Cycles += m.Cycles
			obs.Steps += m.Steps
			obs.Stall += m.StallCycles
			obs.ICM += m.ICacheMisses
			obs.Taken += m.TakenBr
			obs.Fall += m.FallBr
			obs.Jmps += m.JmpsRun
			obs.Slots += m.SlotOpsRun
		}
	}
	return obs
}

// TestFusedVsUnfusedOverCorpus is the tentpole differential: every
// test-suite program plus a band of synth seeds, built at both ends of
// the optimization range, must produce bit-identical observable machine
// state — output, return values, and the full cost-counter vector — on
// the reference switch interpreter, the plain direct-threaded core, and
// the superinstruction core. Any fusion bug that perturbs semantics or
// the cycle model (which feeds every experiment table) fails here.
func TestFusedVsUnfusedOverCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is the long differential")
	}
	var subjects []*Subject
	for _, name := range testsuite.Names {
		s, err := SuiteSubject(name, 0)
		if err != nil {
			t.Fatal(err)
		}
		subjects = append(subjects, s)
	}
	for seed := int64(1); seed <= 8; seed++ {
		subjects = append(subjects, SynthSubject(seed))
	}
	configs := []pipeline.Config{
		pipeline.MustConfig(pipeline.GCC, "O0"),
		pipeline.MustConfig(pipeline.GCC, "O2"),
		pipeline.MustConfig(pipeline.Clang, "O3"),
	}
	for _, s := range subjects {
		ir0, _, err := s.frontend()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, cfg := range configs {
			bin := pipeline.Build(ir0, cfg)
			ref := observeEngine(s, bin, vm.EngineReference, DefaultBudget)
			for eng, label := range map[vm.Engine]string{
				vm.EnginePlain: "plain",
				vm.EngineFused: "fused",
			} {
				got := observeEngine(s, bin, eng, DefaultBudget)
				if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ref) {
					t.Errorf("%s [%s] %s engine diverges from reference:\n ref %+v\n got %+v",
						s.Name, cfg.Name(), label, ref, got)
				}
			}
		}
	}
}

// TestPairHistogramCoversFusedPairs validates the superinstruction
// selection empirically: over the real corpus at O0 and O2 (the two
// ends of the experiment matrix), every pair in the fused set must be
// dynamically hot (each at least 1% of executed pairs), so the fusion
// table tracks measured pair frequencies rather than guesses.
func TestPairHistogramCoversFusedPairs(t *testing.T) {
	hist := map[uint16]int64{}
	var total int64
	for _, lvl := range []string{"O0", "O2"} {
		cfg := pipeline.MustConfig(pipeline.GCC, lvl)
		for _, name := range testsuite.Names {
			s, err := SuiteSubject(name, 0)
			if err != nil {
				t.Fatal(err)
			}
			ir0, _, err := s.frontend()
			if err != nil {
				t.Fatal(err)
			}
			bin := pipeline.Build(ir0, cfg)
			for _, h := range s.Harnesses {
				for _, in := range s.Inputs[h] {
					m := vm.New(bin)
					m.EnablePairCounts()
					m.StepBudget = DefaultBudget
					hd := m.NewArray(in)
					if _, err := m.Call(h, hd, int64(len(in))); err != nil {
						t.Fatalf("%s/%s: %v", name, h, err)
					}
					for k, v := range m.PairCounts {
						hist[k] += v
						total += v
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no dynamic pairs observed")
	}
	key := func(a, b vm.Op) uint16 { return uint16(a)<<8 | uint16(b) }
	fused := []uint16{
		key(vm.OpBin, vm.OpBr),
		key(vm.OpBinImm, vm.OpBr),
		key(vm.OpBinImm, vm.OpStoreSlot),
		key(vm.OpBinImm, vm.OpBinImm),
		key(vm.OpLoadSlot, vm.OpBin),
		key(vm.OpLoadSlot, vm.OpBinImm),
		key(vm.OpLoadSlot, vm.OpLoadSlot),
	}
	for _, k := range fused {
		share := float64(hist[k]) / float64(total)
		if share < 0.01 {
			t.Errorf("fused pair %v->%v covers %.2f%% of dynamic pairs, want >= 1%%",
				vm.Op(k>>8), vm.Op(k&0xff), 100*share)
		}
	}
}
