package difftest

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"debugtuner/internal/pipeline"
)

func TestProfileOneSubject(t *testing.T) {
	if os.Getenv("DIFFTEST_PROF") == "" {
		t.Skip("profiling harness")
	}
	seed, _ := strconv.ParseInt(os.Getenv("DIFFTEST_PROF"), 10, 64)
	o := NewOracle(Matrix())
	t0 := time.Now()
	if _, err := o.CheckSubject(SynthSubject(seed)); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("seed %d: %v\n", seed, time.Now().Sub(t0))
}

func TestFrontendAdversarial(t *testing.T) {
	if os.Getenv("DIFFTEST_PROF") == "" {
		t.Skip("profiling harness")
	}
	cases := map[string]string{
		"deep parens":  "func main() { print(" + strings.Repeat("(", 20000) + "1" + strings.Repeat(")", 20000) + "); }",
		"unbalanced":   "func main() { print(" + strings.Repeat("(", 50000),
		"many stmts":   "func main() {\n" + strings.Repeat("\tvar x0: int = 1; x0 = x0 + 1;\n", 1) + strings.Repeat("\tprint(1+2*3);\n", 30000) + "}",
		"many funcs":   strings.Repeat("func f(){}\n", 20000),
		"long chain":   "func main() { print(1" + strings.Repeat("+1", 40000) + "); }",
		"nested loops": "func main() {" + strings.Repeat("for (var i: int = 0; i < 2; i = i + 1) {", 200) + strings.Repeat("}", 200) + "}",
	}
	var order []string
	for name := range cases {
		order = append(order, name)
	}
	sort.Strings(order)
	for _, name := range order {
		src := cases[name]
		t0 := time.Now()
		info, err := pipeline.Frontend("adv.mc", []byte(src))
		d := time.Now().Sub(t0)
		status := "err"
		if err == nil {
			status = "ok"
			t1 := time.Now()
			_, berr := pipeline.BuildIR(info)
			fmt.Printf("%-12s frontend %v buildir %v (%v)\n", name, d, time.Now().Sub(t1), berr)
			continue
		}
		_ = status
		fmt.Printf("%-12s frontend %v (err)\n", name, d)
	}
}
