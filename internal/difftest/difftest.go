// Package difftest is the correctness layer under the evaluation engine:
// a differential-testing subsystem in the style of Di Luna et al.'s
// "Who's Debugging the Debuggers?" applied to the MiniC toolchain.
//
// MiniC's total semantics (wrapping arithmetic, div/rem by zero yielding
// zero, masked shift counts, tolerated out-of-bounds accesses) were
// chosen so that every optimization pipeline is unconstrained and
// therefore differential: any two builds of the same program must agree
// on observable behavior. This package exploits that with three parts:
//
//   - a differential oracle (oracle.go) that compiles each subject under
//     a matrix of pipeline configurations — both profiles × all levels ×
//     single-pass-disabled toggles — and cross-checks the print stream,
//     return values, and termination of every build against the O0
//     reference (and the O0 reference itself against the IR interpreter,
//     so back-end bugs at O0 cannot silently become the baseline);
//
//   - a debug-info invariant checker (invariants.go) over every emitted
//     binary: line-table monotonicity, location-list well-formedness and
//     function-bound containment, owner-tag witnesses for register and
//     spill locations, and the dynamic ⊆ static availability direction
//     the hybrid metric depends on (§II);
//
//   - a delta-debugging reducer (reduce.go) that shrinks a failing MiniC
//     program to a 1-minimal line set, for checking in as a regression
//     fixture under testdata/.
//
// Builds fan out over internal/workerpool and are memoized per
// (subject, config fingerprint) via internal/evalcache; the report is
// byte-identical at any worker count.
package difftest

import (
	"context"
	"fmt"
	"io"
	"sort"

	"debugtuner/internal/telemetry"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/workerpool"
)

// Options bounds one differential run.
type Options struct {
	// Seeds lists the synth program seeds to test.
	Seeds []int64
	// Spec selects the configuration matrix, see ParseMatrix.
	Spec string
	// Testsuite lists test-suite program names to include as subjects
	// (nil = none; testsuite.Names = the full suite).
	Testsuite []string
	// CorpusExecs > 0 grows real fuzzing corpora for the test-suite
	// subjects (testsuite.Load); 0 uses deterministic pseudo-corpus
	// inputs, which keep the smoke run bounded.
	CorpusExecs int
	// Budget is the per-run VM step budget (0 = DefaultBudget).
	Budget int64
	// Interrupt, when non-nil, stops the run between subjects once the
	// context is cancelled (a SIGINT/SIGTERM drain): subjects already in
	// flight finish and checkpoint, no new subject starts, and Run
	// returns the context error so the caller can exit distinctly.
	Interrupt context.Context
}

// DefaultBudget bounds each VM run. Short subjects finish well inside
// it; a seed whose nested loop/call chains multiply past the budget is
// compared on its observable prefix instead — the budget is what keeps
// per-subject cost bounded across a ~100-config matrix, and divergences
// overwhelmingly surface within the first stretch of the output stream.
const DefaultBudget int64 = 1 << 20

// DefaultTraceBudget bounds the debug-trace session behind the dynamic
// invariant check. Single-stepping with per-stop variable materialization
// is an order of magnitude slower than plain execution, so the dynamic
// <= static check runs on a shorter prefix of the same deterministic run.
const DefaultTraceBudget int64 = 1 << 16

// Report is the deterministic outcome of a Run.
type Report struct {
	Subjects   int
	Configs    int
	Builds     int
	Findings   []Finding
	Mismatches int
	Violations int
	// Quarantined counts cells the resilience layer gave up on; their
	// comparisons are explicit gaps (KindQuarantine findings), not
	// silently-passing holes.
	Quarantined int
}

// Run executes the differential matrix and writes a deterministic
// plain-text report: counts first, then one line per finding in sorted
// order. It returns an error only on harness failure (a subject that
// does not front-end, an unknown matrix spec); findings are data.
func Run(w io.Writer, opts Options) (*Report, error) {
	span := telemetry.Begin("difftest", "run")
	defer span.End()

	configs, err := ParseMatrix(opts.Spec)
	if err != nil {
		return nil, err
	}
	var subjects []*Subject
	for _, seed := range opts.Seeds {
		subjects = append(subjects, SynthSubject(seed))
	}
	for _, name := range opts.Testsuite {
		s, err := SuiteSubject(name, opts.CorpusExecs)
		if err != nil {
			return nil, err
		}
		subjects = append(subjects, s)
	}

	o := NewOracle(configs)
	if opts.Budget > 0 {
		o.Budget = opts.Budget
	}
	ctx := opts.Interrupt
	if ctx == nil {
		ctx = context.Background()
	}
	findings, err := o.CheckContext(ctx, subjects)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Subjects: len(subjects),
		Configs:  len(configs),
		Builds:   len(subjects) * len(configs),
		Findings: findings,
	}
	for _, f := range findings {
		switch f.Kind {
		case KindInvariant:
			rep.Violations++
		case KindQuarantine:
			rep.Quarantined++
		default:
			rep.Mismatches++
		}
	}
	telemetry.Add("difftest.subjects", int64(rep.Subjects))
	telemetry.Add("difftest.mismatches", int64(rep.Mismatches))
	telemetry.Add("difftest.violations", int64(rep.Violations))
	telemetry.Add("difftest.quarantined", int64(rep.Quarantined))

	fmt.Fprintf(w, "difftest: %d subjects x %d configs (%s)\n",
		rep.Subjects, rep.Configs, specName(opts.Spec))
	fmt.Fprintf(w, "behavior mismatches:  %d\n", rep.Mismatches)
	fmt.Fprintf(w, "invariant violations: %d\n", rep.Violations)
	if rep.Quarantined > 0 {
		// Printed only when nonzero so fault-free runs stay byte-identical
		// to pre-resilience reports.
		fmt.Fprintf(w, "quarantined cells:    %d\n", rep.Quarantined)
	}
	for _, f := range rep.Findings {
		if f.Kind == KindQuarantine {
			fmt.Fprintf(w, "QUAR %s\n", f)
		} else {
			fmt.Fprintf(w, "FAIL %s\n", f)
		}
	}
	// PASS means the comparisons that ran all agreed; quarantined gaps
	// are reported above and drive the process exit code separately.
	if rep.Mismatches+rep.Violations == 0 {
		fmt.Fprintln(w, "PASS")
	}
	return rep, nil
}

// Check runs every subject against every configuration on the worker
// pool and returns the findings sorted by (subject, config, kind).
func (o *Oracle) Check(subjects []*Subject) ([]Finding, error) {
	return o.CheckContext(context.Background(), subjects)
}

// CheckContext is Check under a cancellation context: once ctx is
// cancelled no new subject starts and the context error is returned.
func (o *Oracle) CheckContext(ctx context.Context, subjects []*Subject) ([]Finding, error) {
	perSubject, err := workerpool.Map(ctx, subjects,
		func(_ context.Context, _ int, s *Subject) ([]Finding, error) {
			return o.CheckSubject(s)
		})
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, fs := range perSubject {
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Detail < b.Detail
	})
	return findings, nil
}

// SuiteSubject wraps a test-suite program as a differential subject.
// With execs > 0 the real corpus pipeline supplies the inputs; otherwise
// each harness gets a small deterministic pseudo-corpus. A subject whose
// source cannot be loaded is an error, not a panic: the lookup races
// with nothing, but an embedded-suite rename (or a caller passing a name
// LoadLite accepted under a different spelling) must surface as a
// harness failure the runner can report, not a crash that kills every
// other subject in the matrix.
func SuiteSubject(name string, execs int) (*Subject, error) {
	src, err := testsuite.Source(name)
	if err != nil {
		return nil, fmt.Errorf("difftest: subject %s: %w", name, err)
	}
	if execs > 0 {
		ts, err := testsuite.Load(name, testsuite.CorpusOptions{Execs: execs})
		if err != nil {
			return nil, err
		}
		return &Subject{
			Name:      name,
			Src:       src,
			Harnesses: ts.Program.Info.Harnesses,
			Inputs:    ts.Program.Inputs,
		}, nil
	}
	ts, err := testsuite.LoadLite(name)
	if err != nil {
		return nil, err
	}
	s := &Subject{
		Name:      name,
		Src:       src,
		Harnesses: ts.Program.Info.Harnesses,
		Inputs:    map[string][][]int64{},
	}
	for hi, h := range s.Harnesses {
		s.Inputs[h] = pseudoCorpus(name, hi)
	}
	return s, nil
}

// pseudoCorpus derives a few byte-valued input vectors from a stable
// per-(program, harness) hash — a stand-in for a grown corpus that keeps
// the default difftest run bounded and deterministic.
func pseudoCorpus(name string, harness int) [][]int64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	for _, c := range name {
		mix(uint64(c))
	}
	mix(uint64(harness) + 7919)
	var out [][]int64
	for i := 0; i < 3; i++ {
		n := 8 + int(h%17)
		in := make([]int64, n)
		for j := range in {
			mix(uint64(i*131 + j))
			in[j] = int64(h % 256)
		}
		out = append(out, in)
	}
	return out
}

func specName(spec string) string {
	if spec == "" {
		return "full"
	}
	return spec
}
