// Package debuginfo defines the MiniC debug-information format — the
// DWARF analog the compiler emits and the debugger consumes.
//
// It has the two sections the paper's metrics depend on:
//
//   - a line table mapping code addresses to source lines, with one row
//     per change point (address runs with line 0 carry no source
//     attribution, like DWARF rows the compiler dropped);
//   - per-variable location lists: address ranges in which the variable
//     can be found in a register, a stack slot, or as a known constant.
//
// The format reproduces DWARF's relevant pathologies deliberately:
// at -O0 variables get whole-scope slot locations that extend beyond
// their live ranges (the baseline inflation corrected by the hybrid
// metric), and under the gcc-like profile register ranges are optimistic
// — present in the section but not guaranteed to materialize at runtime,
// which is what static metrics over-count.
package debuginfo

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// LocKind classifies a location-list entry.
type LocKind uint8

// Location kinds.
const (
	// LocNone marks the variable explicitly optimized out over a range.
	LocNone LocKind = iota
	// LocReg places the variable in a register; it materializes only if
	// the register still holds the variable's value at runtime.
	LocReg
	// LocSlot places the variable in its -O0 frame slot; home slots
	// always read successfully (including before the first assignment —
	// the DWARF whole-scope defect).
	LocSlot
	// LocSpill places the variable in a register-allocator spill slot;
	// shared spill slots may hold another variable's value, checked at
	// runtime like registers.
	LocSpill
	// LocConst records a compile-time-known value.
	LocConst
	// LocGlobal places the variable in static storage, always readable.
	LocGlobal
)

func (k LocKind) String() string {
	switch k {
	case LocNone:
		return "none"
	case LocReg:
		return "reg"
	case LocSlot:
		return "slot"
	case LocSpill:
		return "spill"
	case LocConst:
		return "const"
	case LocGlobal:
		return "global"
	}
	return "?"
}

// LocEntry is one location-list row over the half-open address range
// [Start, End).
type LocEntry struct {
	Start, End uint32
	Kind       LocKind
	Operand    int64 // register, slot, constant, or global index
}

// Variable is one variable's debug record.
type Variable struct {
	SymID   int32
	Name    string
	FuncIdx int32 // index into Funcs, or -1 for globals
	Entries []LocEntry
}

// FuncDebug describes one function's debug extent.
type FuncDebug struct {
	Name      string
	Start     uint32
	End       uint32
	StartLine int32
	// PrologueEnd is the address after frame setup; slot and spill
	// locations are invalid before it (shrink-wrapping moves it).
	PrologueEnd uint32
	// LinkageName is emitted under -fdebug-info-for-profiling and lets
	// sample profiles attribute addresses even when line rows are
	// missing.
	LinkageName string
}

// LineEntry is a line-table row: from Addr (inclusive) until the next
// row's address, the code is attributed to Line (0 = no attribution).
type LineEntry struct {
	Addr uint32
	Line int32
}

// Table is the decoded debug-information section.
type Table struct {
	Funcs []FuncDebug
	Lines []LineEntry
	Vars  []Variable
	// ForProfiling mirrors -fdebug-info-for-profiling: function start
	// lines and linkage names are always present.
	ForProfiling bool
}

// LineForAddr returns the source line attributed to the address, or 0.
func (t *Table) LineForAddr(addr uint32) int32 {
	i := sort.Search(len(t.Lines), func(i int) bool {
		return t.Lines[i].Addr > addr
	}) - 1
	if i < 0 {
		return 0
	}
	return t.Lines[i].Line
}

// FuncForAddr returns the function containing the address, or nil.
func (t *Table) FuncForAddr(addr uint32) *FuncDebug {
	for i := range t.Funcs {
		f := &t.Funcs[i]
		if addr >= f.Start && addr < f.End {
			return f
		}
	}
	return nil
}

// SteppableLines returns the set of distinct source lines present in the
// line table — the lines a debugger can place a breakpoint on.
func (t *Table) SteppableLines() map[int]bool {
	lines := make(map[int]bool)
	for _, e := range t.Lines {
		if e.Line > 0 {
			lines[int(e.Line)] = true
		}
	}
	return lines
}

// BreakAddrs returns, for every steppable line, the addresses where a
// row for that line begins — the is_stmt candidates a debugger uses for
// line breakpoints.
func (t *Table) BreakAddrs() map[int][]uint32 {
	addrs := make(map[int][]uint32)
	for _, e := range t.Lines {
		if e.Line > 0 {
			addrs[int(e.Line)] = append(addrs[int(e.Line)], e.Addr)
		}
	}
	return addrs
}

// VarsInFunc returns the variables scoped to function index fi.
func (t *Table) VarsInFunc(fi int) []*Variable {
	var out []*Variable
	for i := range t.Vars {
		if t.Vars[i].FuncIdx == int32(fi) {
			out = append(out, &t.Vars[i])
		}
	}
	return out
}

// LocAt returns the variable's location entry covering the address, or
// nil. When ranges overlap the last-emitted entry wins, matching how the
// emitter appends refinements.
func (v *Variable) LocAt(addr uint32) *LocEntry {
	var found *LocEntry
	for i := range v.Entries {
		e := &v.Entries[i]
		if addr >= e.Start && addr < e.End {
			found = e
		}
	}
	return found
}

// ---- Serialization ----

const magic = 0xDB61F0

// Encode serializes the table.
func (t *Table) Encode() []byte {
	var buf []byte
	u := func(x uint64) { buf = binary.AppendUvarint(buf, x) }
	i := func(x int64) { buf = binary.AppendVarint(buf, x) }
	s := func(x string) {
		u(uint64(len(x)))
		buf = append(buf, x...)
	}
	u(magic)
	if t.ForProfiling {
		u(1)
	} else {
		u(0)
	}
	u(uint64(len(t.Funcs)))
	for _, f := range t.Funcs {
		s(f.Name)
		u(uint64(f.Start))
		u(uint64(f.End))
		i(int64(f.StartLine))
		u(uint64(f.PrologueEnd))
		s(f.LinkageName)
	}
	u(uint64(len(t.Lines)))
	prev := uint32(0)
	for _, e := range t.Lines {
		u(uint64(e.Addr - prev)) // delta-encoded, rows sorted by address
		prev = e.Addr
		i(int64(e.Line))
	}
	u(uint64(len(t.Vars)))
	for _, v := range t.Vars {
		i(int64(v.SymID))
		s(v.Name)
		i(int64(v.FuncIdx))
		u(uint64(len(v.Entries)))
		for _, e := range v.Entries {
			u(uint64(e.Start))
			u(uint64(e.End))
			u(uint64(e.Kind))
			i(e.Operand)
		}
	}
	return buf
}

// Decode parses a serialized table.
func Decode(data []byte) (*Table, error) {
	pos := 0
	fail := func(what string) error {
		return fmt.Errorf("debuginfo: truncated or corrupt section at %q (offset %d)", what, pos)
	}
	u := func() (uint64, bool) {
		x, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return x, true
	}
	i := func() (int64, bool) {
		x, n := binary.Varint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return x, true
	}
	s := func() (string, bool) {
		n, ok := u()
		if !ok || pos+int(n) > len(data) {
			return "", false
		}
		x := string(data[pos : pos+int(n)])
		pos += int(n)
		return x, true
	}
	m, ok := u()
	if !ok || m != magic {
		return nil, fmt.Errorf("debuginfo: bad magic")
	}
	t := &Table{}
	fp, ok := u()
	if !ok {
		return nil, fail("flags")
	}
	t.ForProfiling = fp != 0
	nf, ok := u()
	if !ok {
		return nil, fail("func count")
	}
	for k := uint64(0); k < nf; k++ {
		var f FuncDebug
		var okName, okLink bool
		var start, end, pe uint64
		var sl int64
		f.Name, okName = s()
		start, _ = u()
		end, _ = u()
		sl, _ = i()
		pe, ok = u()
		f.LinkageName, okLink = s()
		if !okName || !ok || !okLink {
			return nil, fail("func record")
		}
		f.Start, f.End, f.PrologueEnd = uint32(start), uint32(end), uint32(pe)
		f.StartLine = int32(sl)
		t.Funcs = append(t.Funcs, f)
	}
	nl, ok := u()
	if !ok {
		return nil, fail("line count")
	}
	prev := uint64(0)
	for k := uint64(0); k < nl; k++ {
		d, ok1 := u()
		ln, ok2 := i()
		if !ok1 || !ok2 {
			return nil, fail("line row")
		}
		prev += d
		t.Lines = append(t.Lines, LineEntry{Addr: uint32(prev), Line: int32(ln)})
	}
	nv, ok := u()
	if !ok {
		return nil, fail("var count")
	}
	for k := uint64(0); k < nv; k++ {
		var v Variable
		sym, ok1 := i()
		name, ok2 := s()
		fi, ok3 := i()
		ne, ok4 := u()
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, fail("var record")
		}
		v.SymID, v.Name, v.FuncIdx = int32(sym), name, int32(fi)
		for e := uint64(0); e < ne; e++ {
			st, ok1 := u()
			en, ok2 := u()
			kd, ok3 := u()
			op, ok4 := i()
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return nil, fail("loc entry")
			}
			v.Entries = append(v.Entries, LocEntry{
				Start: uint32(st), End: uint32(en),
				Kind: LocKind(kd), Operand: op,
			})
		}
		t.Vars = append(t.Vars, v)
	}
	return t, nil
}
