package debuginfo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTable() *Table {
	return &Table{
		ForProfiling: true,
		Funcs: []FuncDebug{
			{Name: "main", Start: 0, End: 40, StartLine: 10, PrologueEnd: 1, LinkageName: "main"},
			{Name: "helper", Start: 40, End: 60, StartLine: 30, PrologueEnd: 41},
		},
		Lines: []LineEntry{
			{Addr: 0, Line: 0}, {Addr: 1, Line: 11}, {Addr: 5, Line: 12},
			{Addr: 9, Line: 0}, {Addr: 12, Line: 11}, {Addr: 40, Line: 31},
		},
		Vars: []Variable{
			{SymID: 0, Name: "x", FuncIdx: 0, Entries: []LocEntry{
				{Start: 2, End: 8, Kind: LocReg, Operand: 3},
				{Start: 8, End: 40, Kind: LocSpill, Operand: 1},
			}},
			{SymID: 1, Name: "g", FuncIdx: -1, Entries: []LocEntry{
				{Start: 0, End: 60, Kind: LocGlobal, Operand: 0},
			}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tab := sampleTable()
	dec, err := Decode(tab.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab, dec) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", tab, dec)
	}
}

func TestLineForAddr(t *testing.T) {
	tab := sampleTable()
	cases := map[uint32]int32{
		0: 0, 1: 11, 4: 11, 5: 12, 8: 12, 9: 0, 11: 0, 12: 11, 39: 11,
		40: 31, 59: 31,
	}
	for addr, want := range cases {
		if got := tab.LineForAddr(addr); got != want {
			t.Errorf("LineForAddr(%d) = %d, want %d", addr, got, want)
		}
	}
}

func TestFuncForAddr(t *testing.T) {
	tab := sampleTable()
	if f := tab.FuncForAddr(5); f == nil || f.Name != "main" {
		t.Error("addr 5 should be in main")
	}
	if f := tab.FuncForAddr(45); f == nil || f.Name != "helper" {
		t.Error("addr 45 should be in helper")
	}
	if f := tab.FuncForAddr(60); f != nil {
		t.Error("addr 60 is out of range")
	}
}

func TestSteppableAndBreakAddrs(t *testing.T) {
	tab := sampleTable()
	lines := tab.SteppableLines()
	if !lines[11] || !lines[12] || !lines[31] || lines[0] {
		t.Fatalf("steppable lines = %v", lines)
	}
	ba := tab.BreakAddrs()
	if !reflect.DeepEqual(ba[11], []uint32{1, 12}) {
		t.Errorf("line 11 addrs = %v", ba[11])
	}
}

func TestLocAtLastWins(t *testing.T) {
	v := Variable{Entries: []LocEntry{
		{Start: 0, End: 20, Kind: LocSlot, Operand: 1},
		{Start: 5, End: 10, Kind: LocReg, Operand: 2},
	}}
	if e := v.LocAt(7); e == nil || e.Kind != LocReg {
		t.Error("overlapping refinement should win")
	}
	if e := v.LocAt(15); e == nil || e.Kind != LocSlot {
		t.Error("outside the refinement the base entry applies")
	}
	if e := v.LocAt(25); e != nil {
		t.Error("no entry should cover 25")
	}
}

// TestEncodeDecodeProperty (property): arbitrary well-formed tables
// survive the round trip.
func TestEncodeDecodeProperty(t *testing.T) {
	gen := func(seed int64) *Table {
		rng := rand.New(rand.NewSource(seed))
		tab := &Table{ForProfiling: rng.Intn(2) == 0}
		addr := uint32(0)
		nf := 1 + rng.Intn(4)
		for i := 0; i < nf; i++ {
			start := addr
			addr += uint32(1 + rng.Intn(50))
			tab.Funcs = append(tab.Funcs, FuncDebug{
				Name: string(rune('a' + i)), Start: start, End: addr,
				StartLine: int32(rng.Intn(100)), PrologueEnd: start + 1,
			})
		}
		la := uint32(0)
		for i := 0; i < rng.Intn(20); i++ {
			la += uint32(1 + rng.Intn(5))
			tab.Lines = append(tab.Lines, LineEntry{Addr: la, Line: int32(rng.Intn(50))})
		}
		for i := 0; i < rng.Intn(6); i++ {
			v := Variable{SymID: int32(i), Name: "v", FuncIdx: int32(rng.Intn(nf))}
			for j := 0; j < rng.Intn(4); j++ {
				s := uint32(rng.Intn(100))
				v.Entries = append(v.Entries, LocEntry{
					Start: s, End: s + uint32(rng.Intn(20)),
					Kind: LocKind(rng.Intn(6)), Operand: int64(rng.Intn(64) - 16),
				})
			}
			tab.Vars = append(tab.Vars, v)
		}
		return tab
	}
	check := func(seed int64) bool {
		tab := gen(seed)
		dec, err := Decode(tab.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tab, dec)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeRejectsGarbage: corrupt input must error, not panic.
func TestDecodeRejectsGarbage(t *testing.T) {
	blob := sampleTable().Encode()
	if _, err := Decode(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("bad magic accepted")
	}
	for cut := 1; cut < len(blob); cut += 7 {
		if _, err := Decode(blob[:cut]); err == nil {
			// A truncation can still parse if it lands on a boundary
			// with zero trailing counts; just ensure no panic happened.
			continue
		}
	}
}
