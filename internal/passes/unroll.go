package passes

import "debugtuner/internal/ir"

// loop-unroll peels iterations of while-shaped loops off the front. For
// loops whose trip count is a small compile-time constant the loop is
// fully unrolled (the original loop remains as an immediately-exiting
// residue that simplifycfg folds once the peeled condition is constant);
// otherwise one iteration is peeled, as LLVM's peeling heuristics do.
//
// Peeling is unconditionally sound: each peeled copy keeps the loop's
// own exit test, so a wrong trip-count estimate costs code size, never
// correctness. Peeled instructions keep their source lines (they are
// genuine copies of user code), but DbgValues are re-bound per copy,
// multiplying the variable's bindings — later passes then merge or drop
// them, one of the measured loss mechanisms.
var loopUnrollPass = Register(&Pass{
	Name:    "loop-unroll",
	RunFunc: runUnroll,
})

const (
	maxFullUnrollTrips = 16
	maxUnrolledCost    = 256
	maxPeelBlocks      = 6
)

func runUnroll(ctx *Context, f *ir.Func) bool {
	changed := false
	// Peeling rewrites the CFG, invalidating every other Loop struct
	// (an outer loop's block set must include the clones made inside
	// it), so loops are re-discovered after each transformation.
	// FindLoops returns innermost loops first, so inner loops unroll
	// before their parents.
	processed := map[*ir.Block]bool{}
	for iter := 0; iter < 64; iter++ {
		var l *Loop
		for _, cand := range FindLoops(f) {
			if !processed[cand.Header] && cand.Latch != nil &&
				len(cand.Blocks) <= maxPeelBlocks {
				l = cand
				break
			}
		}
		if l == nil {
			break
		}
		h := l.Header
		processed[h] = true
		trips, known := tripCount(l)
		cost := 0
		for _, b := range l.SortedBlocks() {
			cost += len(b.Instrs)
		}
		n := 0
		full := false
		switch {
		case known && trips == 0:
			// Guard already rejects entry; nothing to peel.
		case known && trips <= maxFullUnrollTrips && trips*cost <= maxUnrolledCost:
			n = trips
			full = true
		case ctx.UnrollFactor > 1 && cost <= 24:
			n = 1 // profitable peel of hot small loops
		}
		peeled := 0
		for i := 0; i < n; i++ {
			if !peelOnce(f, l) {
				break
			}
			peeled++
			changed = true
			// The peel invalidated l; re-discover the same loop by its
			// header block.
			l = nil
			for _, cand := range FindLoops(f) {
				if cand.Header == h {
					l = cand
					break
				}
			}
			if l == nil || l.Latch == nil {
				break
			}
		}
		if full && peeled == n && l != nil {
			// Every iteration was peeled: the residual loop can never
			// run again. Rewrite its test to exit unconditionally, as
			// LLVM's unroller does — plain constant folding cannot
			// prove a loop-carried phi condition false.
			if t := h.Term(); t != nil && t.Op == ir.OpBr {
				enterOnTrue := l.Blocks[h.Succs[0]]
				c := f.NewValue(h, ir.OpConst, 0)
				if !enterOnTrue {
					c.AuxInt = 1
				}
				insertBeforeTerm(h, c)
				t.Args[0] = c
				changed = true
			}
		}
	}
	if changed {
		ir.RemoveUnreachable(f)
	}
	return changed
}

// tripCount recognizes the canonical induction shape: header phi i with a
// constant init, latch update i' = i + c, and header branch on
// cmp(i, const). It returns the number of iterations executed, counted by
// direct evaluation, or ok=false.
func tripCount(l *Loop) (int, bool) {
	h := l.Header
	t := h.Term()
	if t == nil || t.Op != ir.OpBr {
		return 0, false
	}
	cmp := t.Args[0]
	if cmp.Block != h {
		return 0, false
	}
	switch cmp.Op {
	case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpNe, ir.OpEq:
	default:
		return 0, false
	}
	iv, bound := cmp.Args[0], cmp.Args[1]
	if iv.Op != ir.OpPhi && bound.Op == ir.OpPhi {
		return 0, false
	}
	if bound.Op != ir.OpConst {
		return 0, false
	}
	if iv.Op != ir.OpPhi || iv.Block != h {
		return 0, false
	}
	// Identify the init and step columns.
	var init, next *ir.Value
	for i, p := range h.Preds {
		if l.Blocks[p] {
			next = iv.Args[i]
		} else {
			init = iv.Args[i]
		}
	}
	if init == nil || next == nil || init.Op != ir.OpConst {
		return 0, false
	}
	if next.Op != ir.OpAdd && next.Op != ir.OpSub {
		return 0, false
	}
	if next.Args[0] != iv || next.Args[1].Op != ir.OpConst {
		return 0, false
	}
	step := next.Args[1].AuxInt
	if next.Op == ir.OpSub {
		step = -step
	}
	if step == 0 {
		return 0, false
	}
	// The taken successor must be the in-loop one for "cmp true" to mean
	// "keep looping".
	enterOnTrue := l.Blocks[h.Succs[0]]
	val := init.AuxInt
	for trips := 0; trips <= maxFullUnrollTrips+1; trips++ {
		holds := ir.EvalBin(cmp.Op, val, bound.AuxInt) != 0
		if holds != enterOnTrue {
			return trips, true
		}
		val += step
	}
	return 0, false
}

// peelOnce clones the loop body once ahead of the loop. The preheader is
// redirected to the peeled copy; the copy's exit test still targets the
// loop exit, and its latch feeds the original header's init phi columns.
func peelOnce(f *ir.Func, l *Loop) bool {
	h := l.Header
	ph := EnsurePreheader(f, l)
	if ph == nil {
		return false
	}
	phIdx := predIndexOf(h, ph)
	if phIdx < 0 {
		return false
	}
	// Clone every loop block in deterministic order.
	blocks := l.SortedBlocks()
	bm := map[*ir.Block]*ir.Block{}
	vm := map[*ir.Value]*ir.Value{}
	for _, b := range blocks {
		nb := f.NewBlock()
		nb.Prob, nb.Freq = b.Prob, b.Freq
		bm[b] = nb
	}
	for _, b := range blocks {
		nb := bm[b]
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi && b == h {
				// Header phis in the peel resolve to the preheader value.
				vm[v] = v.Args[phIdx]
				continue
			}
			nv := f.NewValue(nb, v.Op, v.Line)
			nv.AuxInt, nv.Aux, nv.Var = v.AuxInt, v.Aux, v.Var
			vm[v] = nv
			nb.Instrs = append(nb.Instrs, nv)
		}
	}
	for _, b := range blocks {
		nb := bm[b]
		for _, v := range b.Instrs {
			if v.Op == ir.OpPhi && b == h {
				continue
			}
			nv := vm[v]
			for _, a := range v.Args {
				if r, ok := vm[a]; ok {
					nv.Args = append(nv.Args, r)
				} else {
					nv.Args = append(nv.Args, a)
				}
			}
		}
		// Wire successors: in-loop edges go to clones; the peel's edge
		// back to the header becomes the loop's real entry; exits stay.
		for _, s := range b.Succs {
			switch {
			case s == h:
				// handled below after phi fixes: peel latch -> header
				nb.Succs = append(nb.Succs, h)
				h.Preds = append(h.Preds, nb)
				for _, phi := range h.Instrs {
					if phi.Op != ir.OpPhi {
						break
					}
					// Incoming value from the peeled latch is the
					// cloned next value.
					next := phi.Args[predIndexOf(h, b)]
					if r, ok := vm[next]; ok {
						phi.Args = append(phi.Args, r)
					} else {
						phi.Args = append(phi.Args, next)
					}
				}
			case l.Blocks[s]:
				ir.AddEdge(nb, bm[s])
				// Phi columns of the clone align with cloned preds,
				// which are appended in the same order below.
			default:
				// Exit edge: target keeps its phis; append the column.
				var vals []*ir.Value
				for _, phi := range s.Instrs {
					if phi.Op != ir.OpPhi {
						break
					}
					old := phi.Args[predIndexOf(s, b)]
					if r, ok := vm[old]; ok {
						vals = append(vals, r)
					} else {
						vals = append(vals, old)
					}
				}
				nb.Succs = append(nb.Succs, s)
				s.Preds = append(s.Preds, nb)
				j := 0
				for _, phi := range s.Instrs {
					if phi.Op != ir.OpPhi {
						break
					}
					phi.Args = append(phi.Args, vals[j])
					j++
				}
			}
		}
	}
	// Fix phi columns of cloned in-loop blocks: cloned preds were added
	// via AddEdge in source Succs order; rebuild each cloned block's
	// preds/args to mirror the original's in-loop pred order.
	for _, b := range blocks {
		nb := bm[b]
		if b == h {
			continue
		}
		// Reorder: collect (pred clone, arg) pairs from the original.
		var preds []*ir.Block
		argCols := map[*ir.Value][]*ir.Value{}
		for i, p := range b.Preds {
			if !l.Blocks[p] {
				continue // peeled copy is entered only from inside
			}
			preds = append(preds, bm[p])
			for _, phi := range b.Instrs {
				if phi.Op != ir.OpPhi {
					break
				}
				old := phi.Args[i]
				nv := old
				if r, ok := vm[old]; ok {
					nv = r
				}
				argCols[phi] = append(argCols[phi], nv)
			}
		}
		nb.Preds = preds
		for _, phi := range b.Instrs {
			if phi.Op != ir.OpPhi {
				break
			}
			vm[phi].Args = argCols[phi]
		}
	}
	// Redirect the preheader into the peeled copy; the header keeps its
	// other preds, and the column the preheader used to feed is removed.
	peelEntry := bm[h]
	// Record the preheader values of the header phis before the column
	// disappears with the edge.
	phiInit := map[*ir.Value]*ir.Value{}
	for _, phi := range h.Instrs {
		if phi.Op != ir.OpPhi {
			break
		}
		phiInit[phi] = phi.Args[phIdx]
	}
	ir.ReplaceSucc(ph, h, peelEntry, nil)

	// SSA repair: paths through the peeled copy bypass the original
	// definitions, so any loop-defined value with uses outside the loop
	// needs updater phis. Header phis are "defined" on the ph->peel edge
	// with their init value; other values have their clone as the second
	// definition.
	inside := map[*ir.Block]bool{}
	for _, b := range blocks {
		inside[b] = true
		inside[bm[b]] = true
	}
	var batch []repairItem
	for _, b := range blocks {
		for _, v := range append([]*ir.Value(nil), b.Instrs...) {
			if v.Op == ir.OpDbgValue || v.Op.IsTerminator() || !v.Op.HasResult() {
				continue
			}
			usedOutside := false
		scan:
			for _, ub := range f.Blocks {
				if inside[ub] {
					continue
				}
				for _, u := range ub.Instrs {
					for _, a := range u.Args {
						if a == v {
							usedOutside = true
							break scan
						}
					}
				}
			}
			if !usedOutside {
				continue
			}
			if v.Op == ir.OpPhi && v.Block == h {
				init, ok := phiInit[v]
				if !ok {
					// Inserted by an earlier repairValue call in this
					// very loop: already globally consistent.
					continue
				}
				batch = append(batch, repairItem{Orig: v, Defs: []Def{
					{Block: h, Val: v},
					{Block: ph, Val: init, AtEnd: true},
				}})
			} else {
				clone, ok := vm[v]
				if !ok {
					continue // repair-inserted phi, no clone needed
				}
				batch = append(batch, repairItem{Orig: v, Defs: []Def{
					{Block: v.Block, Val: v},
					{Block: clone.Block, Val: clone},
				}})
			}
		}
	}
	if len(batch) > 0 {
		newRepairer(f).repairValues(batch)
	}
	return true
}
