package passes

import "debugtuner/internal/ir"

// instcombine performs constant folding, algebraic simplification, and
// canonicalization. When an instruction folds away, its uses are rewired
// via RAUW under the debug salvage policy; the folded instruction's line
// survives only if its replacement generates code attributed to it.
var instCombinePass = Register(&Pass{
	Name:    "instcombine",
	RunFunc: runInstCombine,
})

// forwprop is gcc's tree-forwprop: a weaker forward-propagation pass that
// applies a subset of the instcombine patterns (identities and constant
// folds, but no reassociation or strength reduction).
var forwPropPass = Register(&Pass{
	Name: "tree-forwprop",
	RunFunc: func(ctx *Context, f *ir.Func) bool {
		return combine(ctx, f, false)
	},
})

func runInstCombine(ctx *Context, f *ir.Func) bool {
	return combine(ctx, f, true)
}

func combine(ctx *Context, f *ir.Func, full bool) bool {
	changed := false
	for iter := 0; iter < 10; iter++ {
		c := false
		for _, b := range f.Blocks {
			for _, v := range append([]*ir.Value(nil), b.Instrs...) {
				if r := simplify(f, v, full); r != nil && r != v {
					RAUW(ctx, f, v, r)
					ir.RemoveValue(v)
					c = true
				}
			}
		}
		c = canonBranches(ctx, f) || c
		if !c {
			break
		}
		changed = true
	}
	return changed
}

func isConst(v *ir.Value, c int64) bool { return v.Op == ir.OpConst && v.AuxInt == c }

// newConstBefore materializes a constant just before pos, inheriting its
// source line (the fold result is still code attributed to that line).
func newConstBefore(f *ir.Func, pos *ir.Value, c int64) *ir.Value {
	nv := f.NewValue(pos.Block, ir.OpConst, pos.Line)
	nv.AuxInt = c
	ir.InsertBefore(pos, nv)
	return nv
}

// simplify returns a replacement value for v, or nil when no rule fires.
// full enables the stronger instcombine-only rules.
func simplify(f *ir.Func, v *ir.Value, full bool) *ir.Value {
	switch v.Op {
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem, ir.OpAnd,
		ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		x, y := v.Args[0], v.Args[1]
		if x.Op == ir.OpConst && y.Op == ir.OpConst {
			return newConstBefore(f, v, ir.EvalBin(v.Op, x.AuxInt, y.AuxInt))
		}
		// Canonicalize commutative constants to the right.
		if v.Op.IsCommutative() && x.Op == ir.OpConst && y.Op != ir.OpConst {
			v.Args[0], v.Args[1] = y, x
			x, y = v.Args[0], v.Args[1]
		}
		switch v.Op {
		case ir.OpAdd:
			if isConst(y, 0) {
				return x
			}
			if full && y.Op == ir.OpConst && x.Op == ir.OpAdd && x.Args[1].Op == ir.OpConst {
				// (a + c1) + c2 -> a + (c1 + c2)
				nv := f.NewValue(v.Block, ir.OpAdd, v.Line,
					x.Args[0], newConstBefore(f, v, x.Args[1].AuxInt+y.AuxInt))
				ir.InsertBefore(v, nv)
				return nv
			}
		case ir.OpSub:
			if isConst(y, 0) {
				return x
			}
			if x == y {
				return newConstBefore(f, v, 0)
			}
		case ir.OpMul:
			if isConst(y, 1) {
				return x
			}
			if isConst(y, 0) {
				return newConstBefore(f, v, 0)
			}
			if full && y.Op == ir.OpConst && y.AuxInt > 1 && y.AuxInt&(y.AuxInt-1) == 0 {
				// Strength-reduce multiply by a power of two.
				sh := 0
				for c := y.AuxInt; c > 1; c >>= 1 {
					sh++
				}
				nv := f.NewValue(v.Block, ir.OpShl, v.Line, x, newConstBefore(f, v, int64(sh)))
				ir.InsertBefore(v, nv)
				return nv
			}
		case ir.OpDiv:
			if isConst(y, 1) {
				return x
			}
			if isConst(y, 0) {
				return newConstBefore(f, v, 0)
			}
		case ir.OpRem:
			if isConst(y, 1) || isConst(y, 0) {
				return newConstBefore(f, v, 0)
			}
		case ir.OpAnd:
			if isConst(y, 0) {
				return newConstBefore(f, v, 0)
			}
			if isConst(y, -1) || x == y {
				return x
			}
		case ir.OpOr:
			if isConst(y, 0) || x == y {
				return x
			}
			if isConst(y, -1) {
				return newConstBefore(f, v, -1)
			}
		case ir.OpXor:
			if isConst(y, 0) {
				return x
			}
			if x == y {
				return newConstBefore(f, v, 0)
			}
		case ir.OpShl, ir.OpShr:
			if isConst(y, 0) {
				return x
			}
		case ir.OpEq, ir.OpLe, ir.OpGe:
			if x == y {
				return newConstBefore(f, v, 1)
			}
		case ir.OpNe, ir.OpLt, ir.OpGt:
			if x == y {
				return newConstBefore(f, v, 0)
			}
		}
		// ne(x, 0) where x is already boolean-valued folds to x.
		if full && v.Op == ir.OpNe && isConst(y, 0) && isBoolValued(x) {
			return x
		}
		// eq(x, 0) of a comparison inverts it.
		if full && v.Op == ir.OpEq && isConst(y, 0) {
			if inv, ok := invertCmp(x.Op); ok {
				nv := f.NewValue(v.Block, inv, v.Line, x.Args[0], x.Args[1])
				ir.InsertBefore(v, nv)
				return nv
			}
		}
	case ir.OpNeg:
		x := v.Args[0]
		if x.Op == ir.OpConst {
			return newConstBefore(f, v, -x.AuxInt)
		}
		if full && x.Op == ir.OpNeg {
			return x.Args[0]
		}
	case ir.OpNot:
		x := v.Args[0]
		if x.Op == ir.OpConst {
			if x.AuxInt == 0 {
				return newConstBefore(f, v, 1)
			}
			return newConstBefore(f, v, 0)
		}
		if full {
			if inv, ok := invertCmp(x.Op); ok {
				nv := f.NewValue(v.Block, inv, v.Line, x.Args[0], x.Args[1])
				ir.InsertBefore(v, nv)
				return nv
			}
		}
	case ir.OpSelect:
		c, a, b := v.Args[0], v.Args[1], v.Args[2]
		if c.Op == ir.OpConst {
			if c.AuxInt != 0 {
				return a
			}
			return b
		}
		if a == b {
			return a
		}
	case ir.OpLen:
		if v.Args[0].Op == ir.OpNewArray && v.Args[0].Args[0].Op == ir.OpConst {
			n := v.Args[0].Args[0].AuxInt
			if n < 0 {
				n = 0
			}
			return newConstBefore(f, v, n)
		}
	}
	return nil
}

// isBoolValued reports whether v only produces 0 or 1.
func isBoolValued(v *ir.Value) bool {
	switch v.Op {
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpNot:
		return true
	case ir.OpConst:
		return v.AuxInt == 0 || v.AuxInt == 1
	}
	return false
}

// invertCmp returns the negated comparison opcode.
func invertCmp(op ir.Op) (ir.Op, bool) {
	switch op {
	case ir.OpEq:
		return ir.OpNe, true
	case ir.OpNe:
		return ir.OpEq, true
	case ir.OpLt:
		return ir.OpGe, true
	case ir.OpLe:
		return ir.OpGt, true
	case ir.OpGt:
		return ir.OpLe, true
	case ir.OpGe:
		return ir.OpLt, true
	}
	return op, false
}

// canonBranches rewrites br(not(x), a, b) as br(x, b, a) so later passes
// see canonical conditions.
func canonBranches(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		if c := t.Args[0]; c.Op == ir.OpNot {
			t.Args[0] = c.Args[0]
			b.Succs[0], b.Succs[1] = b.Succs[1], b.Succs[0]
			b.Prob = 1 - b.Prob
			changed = true
		}
	}
	return changed
}
