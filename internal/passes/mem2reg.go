package passes

import "debugtuner/internal/ir"

// mem2reg promotes local slots to SSA values with phi nodes (LLVM calls
// the user-visible pass SROA, gcc builds SSA directly). For every
// promoted slot bound to a source variable, a DbgValue is planted at each
// inserted phi so the variable's value remains described across merges —
// the same debug-info updating LLVM's mem2reg performs.
//
// Registered as "sroa" (clang) and "tree-ssa" (gcc alias).
var mem2regPass = Register(&Pass{
	Name:    "sroa",
	RunFunc: runMem2Reg,
})

func init() {
	// gcc builds SSA unconditionally; expose the same implementation
	// under its gcc toggle name so pipelines can share it.
	Register(&Pass{Name: "tree-ssa", RunFunc: runMem2Reg})
}

func runMem2Reg(ctx *Context, f *ir.Func) bool {
	if f.NumSlots == 0 {
		return false
	}
	ir.RemoveUnreachable(f)
	idom := ir.Dominators(f)
	df := dominanceFrontiers(f, idom)

	// Collect definition sites per slot.
	defBlocks := make([][]*ir.Block, f.NumSlots)
	for _, b := range f.Blocks {
		seen := map[int64]bool{}
		for _, v := range b.Instrs {
			if v.Op == ir.OpSlotStore && !seen[v.AuxInt] {
				seen[v.AuxInt] = true
				defBlocks[v.AuxInt] = append(defBlocks[v.AuxInt], b)
			}
		}
	}

	// Insert phis at iterated dominance frontiers.
	phiSlot := map[*ir.Value]int{}
	for slot := 0; slot < f.NumSlots; slot++ {
		work := append([]*ir.Block(nil), defBlocks[slot]...)
		hasPhi := map[*ir.Block]bool{}
		inWork := map[*ir.Block]bool{}
		for _, b := range work {
			inWork[b] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range df[b] {
				if hasPhi[d] {
					continue
				}
				hasPhi[d] = true
				phi := f.NewValue(d, ir.OpPhi, 0)
				phi.Args = make([]*ir.Value, len(d.Preds))
				d.Instrs = append([]*ir.Value{phi}, d.Instrs...)
				phiSlot[phi] = slot
				if !inWork[d] {
					inWork[d] = true
					work = append(work, d)
				}
			}
		}
	}

	// Rename along the dominator tree. Slots are zero-initialized, so
	// a read before any write sees constant zero.
	tree := ir.DomTree(f, idom)
	var zero *ir.Value
	getZero := func() *ir.Value {
		if zero == nil {
			entry := f.Entry()
			zero = f.NewValue(entry, ir.OpConst, 0)
			entry.Instrs = append([]*ir.Value{zero}, entry.Instrs...)
		}
		return zero
	}

	var dead []*ir.Value
	var rename func(b *ir.Block, cur []*ir.Value)
	rename = func(b *ir.Block, cur []*ir.Value) {
		cur = append([]*ir.Value(nil), cur...)
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpPhi:
				if slot, ok := phiSlot[v]; ok {
					cur[slot] = v
				}
			case ir.OpSlotLoad:
				def := cur[v.AuxInt]
				if def == nil {
					def = getZero()
				}
				RAUW(ctx, f, v, def)
				dead = append(dead, v)
			case ir.OpSlotStore:
				cur[v.AuxInt] = v.Args[0]
				dead = append(dead, v)
			}
		}
		for _, s := range b.Succs {
			pi := -1
			for i, p := range s.Preds {
				if p == b {
					pi = i
					break
				}
			}
			for _, v := range s.Instrs {
				if v.Op != ir.OpPhi {
					break
				}
				slot, ok := phiSlot[v]
				if !ok {
					continue
				}
				def := cur[slot]
				if def == nil {
					def = getZero()
				}
				v.Args[pi] = def
			}
		}
		for _, c := range tree[b] {
			rename(c, cur)
		}
	}
	rename(f.Entry(), make([]*ir.Value, f.NumSlots))

	for _, v := range dead {
		ir.RemoveValue(v)
	}

	// Describe promoted variables across merges: a phi for a variable's
	// slot defines the variable at the merge point.
	for phi, slot := range phiSlot {
		sym := f.SlotVars[slot]
		if sym == nil {
			continue
		}
		b := phi.Block
		dv := f.NewValue(b, ir.OpDbgValue, 0, phi)
		dv.Var = sym
		// Insert after the phi prefix.
		i := len(b.Phis())
		b.Instrs = append(b.Instrs, nil)
		copy(b.Instrs[i+1:], b.Instrs[i:])
		b.Instrs[i] = dv
	}

	f.NumSlots = 0
	f.SlotVars = nil
	return true
}

// dominanceFrontiers computes DF(b) for every block (Cooper et al.).
func dominanceFrontiers(f *ir.Func, idom map[*ir.Block]*ir.Block) map[*ir.Block][]*ir.Block {
	df := make(map[*ir.Block][]*ir.Block)
	has := make(map[*ir.Block]map[*ir.Block]bool)
	for _, b := range f.Blocks {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != idom[b] {
				if has[runner] == nil {
					has[runner] = map[*ir.Block]bool{}
				}
				if !has[runner][b] {
					has[runner][b] = true
					df[runner] = append(df[runner], b)
				}
				next := idom[runner]
				if next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}
