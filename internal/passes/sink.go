package passes

import "debugtuner/internal/ir"

// sink moves pure computations into the block containing their only uses,
// so that paths not needing the value skip it. Sunk instructions lose
// their source line (LLVM's sink utility drops debug locations when
// moving across blocks); gcc's equivalent is tree-sink.
var sinkPass = Register(&Pass{
	Name:    "sink",
	RunFunc: runSink,
})

func init() {
	Register(&Pass{Name: "tree-sink", RunFunc: runSink})
}

func runSink(ctx *Context, f *ir.Func) bool {
	ir.RemoveUnreachable(f)
	depth := loopDepths(f)
	changed := false
	for iter := 0; iter < 4; iter++ {
		// useBlock[id] is the single block containing all code uses of
		// the value, blockedVal for phi uses or multiple blocks.
		useBlock := make([]*ir.Block, f.NumValueIDs())
		blocked := make([]bool, f.NumValueIDs())
		for _, ub := range f.Blocks {
			for _, u := range ub.Instrs {
				if u.Op == ir.OpDbgValue {
					continue
				}
				for _, a := range u.Args {
					if u.Op == ir.OpPhi {
						blocked[a.ID] = true
						continue
					}
					if useBlock[a.ID] == nil {
						useBlock[a.ID] = ub
					} else if useBlock[a.ID] != ub {
						blocked[a.ID] = true
					}
				}
			}
		}
		c := false
		for _, b := range f.Blocks {
			for _, v := range append([]*ir.Value(nil), b.Instrs...) {
				if !v.Op.IsPure() || v.Op == ir.OpParam {
					continue
				}
				target := useBlock[v.ID]
				if blocked[v.ID] || target == nil || target == b || depth[target] > depth[b] {
					continue
				}
				// Move v before its first use in target; crossing blocks
				// clears the line.
				ir.RemoveValue(v)
				v.Block = target
				v.Line = 0
				insertBeforeFirstUse(target, v)
				// DbgValues bound to v in other blocks would now read a
				// not-yet-computed value; drop the binding, as LLVM does
				// when it cannot prove the location valid.
				for _, db := range f.Blocks {
					if db == target {
						continue
					}
					for _, w := range db.Instrs {
						if w.Op == ir.OpDbgValue && len(w.Args) == 1 && w.Args[0] == v {
							w.Args = nil
						}
					}
				}
				// v now lives in target; uses of v's args moved too, so
				// recompute on the next iteration rather than chaining.
				blocked[v.ID] = true
				c = true
			}
		}
		if !c {
			break
		}
		changed = true
	}
	return changed
}

func insertBeforeFirstUse(b *ir.Block, v *ir.Value) {
	for i, u := range b.Instrs {
		if u.Op == ir.OpDbgValue {
			continue
		}
		for _, a := range u.Args {
			if a == v {
				b.Instrs = append(b.Instrs, nil)
				copy(b.Instrs[i+1:], b.Instrs[i:])
				b.Instrs[i] = v
				return
			}
		}
	}
	insertBeforeTerm(b, v)
}

// loopDepths returns the nesting depth of every block.
func loopDepths(f *ir.Func) map[*ir.Block]int {
	depth := map[*ir.Block]int{}
	for _, l := range FindLoops(f) {
		for b := range l.Blocks {
			depth[b]++
		}
	}
	return depth
}
