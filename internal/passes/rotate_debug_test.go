package passes

import (
	"reflect"
	"testing"

	"debugtuner/internal/ir"
)

func TestRotateAfterSROA(t *testing.T) {
	src := `
func main() {
	var t: int = 1;
	for (var i: int = 0; i < 5; i = i + 1) {
		t = t * 2;
	}
	print(t);
}`
	base := buildProgram(t, src)
	want := interpOutput(t, base)
	p := base.Clone()
	ctx := newCtx(p, true)
	for _, n := range []string{"sroa", "simplifycfg"} {
		Lookup(n).Run(ctx)
	}
	before := p.Funcs[0].String()
	Lookup("loop-rotate").Run(ctx)
	if err := ir.VerifyProgram(p); err != nil {
		t.Fatalf("verify: %v\nbefore:\n%s\nafter:\n%s", err, before, p.Funcs[0].String())
	}
	got := interpOutput(t, p)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v\nbefore:\n%s\nafter:\n%s", got, want, before, p.Funcs[0].String())
	}
}
