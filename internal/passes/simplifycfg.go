package passes

import "debugtuner/internal/ir"

// simplifycfg canonicalizes the CFG: it folds branches on constants,
// removes unreachable blocks, straightens single-pred/single-succ chains,
// bypasses empty forwarding blocks, and simplifies trivial phis.
//
// Debug-information consequences, as in production compilers: code made
// unreachable loses its line-table entries, a bypassed forwarding block's
// jump line disappears, and single-entry phi simplification rebinds
// DbgValues through RAUW under the context's salvage policy.
var simplifyCFGPass = Register(&Pass{
	Name:    "simplifycfg",
	RunFunc: runSimplifyCFG,
})

func runSimplifyCFG(ctx *Context, f *ir.Func) bool {
	changed := false
	for iter := 0; iter < 20; iter++ {
		c := false
		c = foldConstBranches(ctx, f) || c
		c = ir.RemoveUnreachable(f) || c
		c = simplifyPhis(ctx, f) || c
		c = mergeChains(ctx, f) || c
		c = skipEmptyBlocks(ctx, f) || c
		if !c {
			break
		}
		changed = true
	}
	return changed
}

// foldConstBranches turns br(const) into jmp and merges branches whose
// two successors are identical.
func foldConstBranches(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		if c := t.Args[0]; c.Op == ir.OpConst {
			taken, dead := b.Succs[0], b.Succs[1]
			if c.AuxInt == 0 {
				taken, dead = dead, taken
			}
			if i := predIndexOf(dead, b); i >= 0 {
				ir.RemovePredEdge(dead, i)
			}
			t.Op = ir.OpJmp
			t.Args = nil
			b.Succs = []*ir.Block{taken}
			changed = true
			continue
		}
		if b.Succs[0] == b.Succs[1] {
			s := b.Succs[0]
			// The block appears twice in s.Preds; drop one edge and its
			// phi column (both columns carry the same incoming value
			// only if the phi args agree — otherwise keep the branch).
			i1, i2 := -1, -1
			for i, p := range s.Preds {
				if p == b {
					if i1 < 0 {
						i1 = i
					} else {
						i2 = i
					}
				}
			}
			agree := true
			for _, v := range s.Instrs {
				if v.Op != ir.OpPhi {
					break
				}
				if v.Args[i1] != v.Args[i2] {
					agree = false
					break
				}
			}
			if !agree {
				continue
			}
			ir.RemovePredEdge(s, i2)
			t.Op = ir.OpJmp
			t.Args = nil
			b.Succs = []*ir.Block{s}
			changed = true
		}
	}
	return changed
}

// simplifyPhis replaces phis whose incoming values are all identical (or
// the phi itself) with that value.
func simplifyPhis(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, v := range append([]*ir.Value(nil), b.Phis()...) {
			var only *ir.Value
			trivial := true
			for _, a := range v.Args {
				if a == v {
					continue
				}
				if only == nil {
					only = a
				} else if only != a {
					trivial = false
					break
				}
			}
			if !trivial || only == nil {
				continue
			}
			RAUW(ctx, f, v, only)
			ir.RemoveValue(v)
			changed = true
		}
	}
	return changed
}

// mergeChains merges b -> s when b jumps to s and s has exactly one
// predecessor. Instructions keep their source lines; only the jump
// disappears.
func mergeChains(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for {
			t := b.Term()
			if t == nil || t.Op != ir.OpJmp {
				break
			}
			s := b.Succs[0]
			if s == b || len(s.Preds) != 1 {
				break
			}
			// Phis in s have one arg; replace them first.
			for _, v := range append([]*ir.Value(nil), s.Phis()...) {
				RAUW(ctx, f, v, v.Args[0])
				ir.RemoveValue(v)
			}
			ir.RemoveValue(t)
			for _, v := range s.Instrs {
				v.Block = b
			}
			b.Instrs = append(b.Instrs, s.Instrs...)
			s.Instrs = nil
			b.Succs = s.Succs
			for _, ns := range b.Succs {
				for i, p := range ns.Preds {
					if p == s {
						ns.Preds[i] = b
					}
				}
			}
			s.Succs = nil
			s.Preds = nil
			removeBlock(f, s)
			changed = true
		}
	}
	return changed
}

// skipEmptyBlocks retargets predecessors of a block containing only an
// unconditional jump directly to its successor, when phi columns permit.
func skipEmptyBlocks(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, e := range append([]*ir.Block(nil), f.Blocks...) {
		if e == f.Entry() || len(e.Instrs) != 1 {
			continue
		}
		t := e.Instrs[0]
		if t.Op != ir.OpJmp {
			continue
		}
		s := e.Succs[0]
		if s == e {
			continue
		}
		ei := predIndexOf(s, e)
		if ei < 0 {
			continue
		}
		// The value e contributes to each phi of s.
		var eVals []*ir.Value
		for _, v := range s.Instrs {
			if v.Op != ir.OpPhi {
				break
			}
			eVals = append(eVals, v.Args[ei])
		}
		// Retarget preds one at a time; a pred that is already a pred of
		// s with conflicting phi values must keep going through e.
		moved := 0
		for _, p := range append([]*ir.Block(nil), e.Preds...) {
			if pi := predIndexOf(s, p); pi >= 0 {
				conflict := false
				j := 0
				for _, v := range s.Instrs {
					if v.Op != ir.OpPhi {
						break
					}
					if v.Args[pi] != eVals[j] {
						conflict = true
						break
					}
					j++
				}
				if conflict {
					continue
				}
			}
			ir.ReplaceSucc(p, e, s, eVals)
			moved++
		}
		if moved > 0 {
			changed = true
		}
	}
	if changed {
		ir.RemoveUnreachable(f)
	}
	return changed
}

func predIndexOf(b, p *ir.Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

func removeBlock(f *ir.Func, s *ir.Block) {
	for i, b := range f.Blocks {
		if b == s {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}
