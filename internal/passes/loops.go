package passes

import (
	"sort"

	"debugtuner/internal/ir"
)

// Loop is a natural loop discovered from a back edge.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	// Latch is the unique in-loop predecessor of the header (nil when
	// there are several; most passes then skip the loop).
	Latch *ir.Block
	// Preheader is the unique out-of-loop predecessor of the header.
	Preheader *ir.Block
}

// FindLoops discovers natural loops (header dominated by itself through a
// back edge), innermost first by block count.
func FindLoops(f *ir.Func) []*Loop {
	ir.RemoveUnreachable(f)
	idom := ir.Dominators(f)
	byHeader := map[*ir.Block]*Loop{}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !ir.Dominates(idom, s, b) {
				continue
			}
			// Back edge b -> s: collect the loop body.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
			}
			var stack []*ir.Block
			if !l.Blocks[b] {
				l.Blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !l.Blocks[p] {
						l.Blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	var loops []*Loop
	for _, l := range byHeader {
		var latches []*ir.Block
		var outsides []*ir.Block
		for _, p := range l.Header.Preds {
			if l.Blocks[p] {
				latches = append(latches, p)
			} else {
				outsides = append(outsides, p)
			}
		}
		if len(latches) == 1 {
			l.Latch = latches[0]
		}
		if len(outsides) == 1 {
			l.Preheader = outsides[0]
		}
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool {
		if len(loops[i].Blocks) != len(loops[j].Blocks) {
			return len(loops[i].Blocks) < len(loops[j].Blocks)
		}
		return loops[i].Header.ID < loops[j].Header.ID
	})
	return loops
}

// EnsurePreheader guarantees the loop has a dedicated preheader block
// whose only successor is the header, creating one when needed. Returns
// nil if the CFG shape prevents it.
func EnsurePreheader(f *ir.Func, l *Loop) *ir.Block {
	if l.Preheader != nil && len(l.Preheader.Succs) == 1 {
		return l.Preheader
	}
	var outsides []*ir.Block
	for _, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outsides = append(outsides, p)
		}
	}
	if len(outsides) == 0 {
		return nil
	}
	ph := f.NewBlock()
	jmp := f.NewValue(ph, ir.OpJmp, 0)
	ph.Instrs = append(ph.Instrs, jmp)

	// Phi columns for out-of-loop preds move to a phi in the preheader
	// when there are several outside preds; with one, the value passes
	// straight through.
	outIdx := map[*ir.Block]int{}
	for i, p := range l.Header.Preds {
		if !l.Blocks[p] {
			outIdx[p] = i
		}
	}
	var headerPhis []*ir.Value
	for _, v := range l.Header.Instrs {
		if v.Op != ir.OpPhi {
			break
		}
		headerPhis = append(headerPhis, v)
	}
	// Build the preheader's incoming values per header phi.
	var phVals []*ir.Value
	if len(outsides) == 1 {
		for _, phi := range headerPhis {
			phVals = append(phVals, phi.Args[outIdx[outsides[0]]])
		}
	} else {
		for _, phi := range headerPhis {
			merge := f.NewValue(ph, ir.OpPhi, 0)
			for _, p := range outsides {
				merge.Args = append(merge.Args, phi.Args[outIdx[p]])
			}
			ph.Instrs = append([]*ir.Value{merge}, ph.Instrs...)
			phVals = append(phVals, merge)
		}
	}
	// Retarget outside preds to the preheader; their phi columns in the
	// header disappear as edges are removed.
	for _, p := range outsides {
		ir.ReplaceSucc(p, l.Header, ph, nil)
	}
	// Fix preheader phi pred order: ReplaceSucc appended preds in the
	// outsides order, matching merge.Args construction above.
	ir.AddEdge(ph, l.Header)
	for i, phi := range headerPhis {
		phi.Args = append(phi.Args, phVals[i])
	}
	l.Preheader = ph
	return ph
}

// definedIn reports whether v is defined inside the loop.
func (l *Loop) definedIn(v *ir.Value) bool { return l.Blocks[v.Block] }

// SortedBlocks returns the loop blocks ordered by ID, so passes that
// clone or move code visit them deterministically (binary layout and
// benchmark results must be reproducible run to run).
func (l *Loop) SortedBlocks() []*ir.Block {
	blocks := make([]*ir.Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	return blocks
}

// hasClobber reports whether the loop contains stores, prints, or calls
// that could invalidate load hoisting.
func (l *Loop) hasClobber(prog *ir.Program) bool {
	for b := range l.Blocks {
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpGStore, ir.OpAStore, ir.OpVStore2, ir.OpSlotStore,
				ir.OpPrint, ir.OpNewArray:
				return true
			case ir.OpCall:
				callee := prog.Func(v.Aux)
				if callee == nil || !callee.Pure {
					return true
				}
			}
		}
	}
	return false
}
