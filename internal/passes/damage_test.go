package passes

import (
	"testing"

	"debugtuner/internal/ast"
	"debugtuner/internal/ir"
	"debugtuner/internal/telemetry"
)

// collect installs a private sink around fn and returns its ledger.
func collect(t *testing.T, fn func()) map[telemetry.DamageKey]telemetry.Damage {
	t.Helper()
	snk := telemetry.NewSink()
	prev := telemetry.Install(snk)
	defer telemetry.Install(prev)
	fn()
	return snk.Ledger()
}

// handFunc starts an empty hand-built function.
func handFunc(name string) (*ir.Program, *ir.Func) {
	p := &ir.Program{}
	f := &ir.Func{Name: name, Prog: p}
	p.Funcs = []*ir.Func{f}
	return p, f
}

func emit(b *ir.Block, op ir.Op, line int, args ...*ir.Value) *ir.Value {
	v := b.Func.NewValue(b, op, line, args...)
	b.Instrs = append(b.Instrs, v)
	return v
}

// TestDamageLedgerDCE hand-builds a function with one dead multiply
// whose value a DbgValue is bound to: DCE must delete the instruction,
// and the ledger must attribute one dropped binding and a negative
// instruction delta to "dce".
func TestDamageLedgerDCE(t *testing.T) {
	p, f := handFunc("f")
	b := f.NewBlock()
	c1 := emit(b, ir.OpConst, 1)
	c1.AuxInt = 7
	c2 := emit(b, ir.OpConst, 1)
	c2.AuxInt = 8
	dead := emit(b, ir.OpMul, 2, c1, c2)
	dbg := emit(b, ir.OpDbgValue, 2, dead)
	dbg.Var = &ast.Symbol{Name: "x"}
	use := emit(b, ir.OpAdd, 3, c1, c2)
	emit(b, ir.OpPrint, 3, use)
	emit(b, ir.OpRet, 4)

	ledger := collect(t, func() {
		ctx := &Context{Prog: p}
		Lookup("dce").Run(ctx)
	})
	d := ledger[telemetry.DamageKey{Pass: "dce", Func: "f"}]
	if d.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", d.Runs)
	}
	if d.InstrDelta != -1 {
		t.Errorf("InstrDelta = %d, want -1 (the dead multiply)", d.InstrDelta)
	}
	if d.DbgDropped != 1 {
		t.Errorf("DbgDropped = %d, want 1 (x's binding)", d.DbgDropped)
	}
	if len(dbg.Args) != 0 {
		t.Error("DbgValue still bound after DCE")
	}
}

// TestDamageLedgerGVN builds a redundant multiply in a dominated block
// with a DbgValue bound to it. Under the gcc policy the cross-block
// RAUW drops the binding and ends its location range; the same-block
// variant salvages instead.
func TestDamageLedgerGVN(t *testing.T) {
	build := func(sameBlock bool) (*ir.Program, *ir.Value) {
		p, f := handFunc("f")
		entry := f.NewBlock()
		c1 := emit(entry, ir.OpConst, 1)
		c1.AuxInt = 3
		c2 := emit(entry, ir.OpConst, 1)
		c2.AuxInt = 4
		m1 := emit(entry, ir.OpMul, 2, c1, c2)
		emit(entry, ir.OpPrint, 2, m1)
		home := entry
		if !sameBlock {
			b2 := f.NewBlock()
			emit(entry, ir.OpJmp, 2)
			entry.Succs = []*ir.Block{b2}
			b2.Preds = []*ir.Block{entry}
			home = b2
		}
		m2 := emit(home, ir.OpMul, 3, c1, c2)
		dbg := emit(home, ir.OpDbgValue, 3, m2)
		dbg.Var = &ast.Symbol{Name: "y"}
		emit(home, ir.OpPrint, 3, m2)
		emit(home, ir.OpRet, 4)
		return p, dbg
	}

	t.Run("cross-block-gcc-drops", func(t *testing.T) {
		p, dbg := build(false)
		ledger := collect(t, func() {
			Lookup("gvn").Run(&Context{Prog: p, Salvage: false})
		})
		d := ledger[telemetry.DamageKey{Pass: "gvn", Func: "f"}]
		if d.InstrDelta != -1 {
			t.Errorf("InstrDelta = %d, want -1 (redundant multiply)", d.InstrDelta)
		}
		if d.DbgDropped != 1 || d.RangesEnded != 1 {
			t.Errorf("DbgDropped = %d, RangesEnded = %d, want 1 and 1", d.DbgDropped, d.RangesEnded)
		}
		if d.DbgSalvaged != 0 {
			t.Errorf("DbgSalvaged = %d, want 0 under the gcc policy", d.DbgSalvaged)
		}
		if len(dbg.Args) != 0 {
			t.Error("binding survived a cross-block gcc-policy RAUW")
		}
	})
	t.Run("same-block-salvages", func(t *testing.T) {
		p, dbg := build(true)
		ledger := collect(t, func() {
			Lookup("gvn").Run(&Context{Prog: p, Salvage: false})
		})
		d := ledger[telemetry.DamageKey{Pass: "gvn", Func: "f"}]
		if d.DbgSalvaged != 1 || d.DbgDropped != 0 {
			t.Errorf("DbgSalvaged = %d, DbgDropped = %d, want 1 and 0", d.DbgSalvaged, d.DbgDropped)
		}
		if len(dbg.Args) != 1 {
			t.Error("binding not rewritten to the surviving value")
		}
	})
}

// TestDamageLedgerInline checks the module-pass path: inlining a tiny
// callee twice must charge positive instruction churn to the caller's
// cell under "inline".
func TestDamageLedgerInline(t *testing.T) {
	src := `
func tiny(x: int): int { return x + 1; }
func main() { print(tiny(5)); print(tiny(6)); }`
	p := buildProgram(t, src)
	ledger := collect(t, func() {
		Lookup("inline").Run(newCtx(p, true))
	})
	d := ledger[telemetry.DamageKey{Pass: "inline", Func: "main"}]
	if d.Runs != 1 {
		t.Fatalf("Runs = %d, want 1", d.Runs)
	}
	if d.InstrDelta <= 0 {
		t.Errorf("InstrDelta = %d, want > 0 (two inlined bodies)", d.InstrDelta)
	}
}

// TestRunLabelOverridesAttribution covers the pipeline's cleanup-run
// labeling: a nonempty Context.RunLabel must redirect the ledger cell.
func TestRunLabelOverridesAttribution(t *testing.T) {
	src := `func main() { var a: int = 1; print(a + 2); }`
	p := buildProgram(t, src)
	ledger := collect(t, func() {
		ctx := newCtx(p, true)
		ctx.RunLabel = "cleanup/dce"
		Lookup("dce").Run(ctx)
	})
	for k := range ledger {
		if k.Pass != "cleanup/dce" {
			t.Errorf("ledger cell %+v, want pass cleanup/dce", k)
		}
	}
	if len(ledger) == 0 {
		t.Fatal("no ledger cells recorded")
	}
}
