package passes

import "debugtuner/internal/ir"

// jump-threading forwards control flow through blocks whose branch
// outcome is already determined on some incoming edge. Two classic cases
// are handled:
//
//  1. a block that only tests a phi of constants: predecessors feeding a
//     constant jump straight to the resolved successor;
//  2. a branch on a condition that a uniquely-dominating branch already
//     decided (redundant-test elimination along single-pred chains).
//
// Threaded-away branch instructions take their source lines with them;
// the paper finds this family among the most debug-harmful in both
// compilers ("thread-jumps" in gcc, "JumpThreading" in clang).
var jumpThreadingPass = Register(&Pass{
	Name:    "jump-threading",
	RunFunc: runJumpThreading,
})

func runJumpThreading(ctx *Context, f *ir.Func) bool {
	changed := false
	for iter := 0; iter < 8; iter++ {
		c := threadPhiOfConsts(ctx, f)
		c = threadDominatedTests(ctx, f) || c
		if !c {
			break
		}
		changed = true
	}
	if changed {
		ir.RemoveUnreachable(f)
	}
	return changed
}

// threadPhiOfConsts retargets predecessors that feed a constant into a
// block consisting only of phis, debug markers, and a branch on one of
// those phis.
func threadPhiOfConsts(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		if b == f.Entry() {
			continue
		}
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		cond := t.Args[0]
		if cond.Op != ir.OpPhi || cond.Block != b || b.Succs[0] == b.Succs[1] {
			continue
		}
		// Only phis and debug markers may precede the branch: anything
		// else would be skipped by the threaded edge.
		simple := true
		for _, v := range b.Instrs {
			if v.Op != ir.OpPhi && v.Op != ir.OpDbgValue && v != t {
				simple = false
				break
			}
		}
		if !simple {
			continue
		}
		for pi := len(b.Preds) - 1; pi >= 0; pi-- {
			if len(b.Preds) <= 1 {
				break // leave the last edge for simplifycfg to fold
			}
			p := b.Preds[pi]
			cv := cond.Args[pi]
			if cv.Op != ir.OpConst {
				continue
			}
			target := b.Succs[1]
			if cv.AuxInt != 0 {
				target = b.Succs[0]
			}
			// The values b contributes to target's phis, as seen from
			// this incoming edge (phis map to their pi-th argument).
			var vals []*ir.Value
			resolvable := true
			for _, v := range target.Instrs {
				if v.Op != ir.OpPhi {
					break
				}
				ti := predIndexOf(target, b)
				arg := v.Args[ti]
				if arg.Block == b {
					if arg.Op != ir.OpPhi {
						resolvable = false
						break
					}
					arg = arg.Args[pi]
				}
				vals = append(vals, arg)
			}
			if !resolvable {
				continue
			}
			// Capture each of b's phis and the value it would have taken
			// on the threaded edge: the new p->target path bypasses b,
			// so uses of those phis beyond b need SSA repair.
			type phiCol struct {
				phi *ir.Value
				val *ir.Value
			}
			var cols []phiCol
			for _, v := range b.Instrs {
				if v.Op != ir.OpPhi {
					break
				}
				if usedBeyond(f, b, v) {
					cols = append(cols, phiCol{v, v.Args[pi]})
				}
			}
			ir.ReplaceSucc(p, b, target, vals)
			for _, c := range cols {
				repairValue(f, c.phi, []Def{
					{Block: b, Val: c.phi},
					{Block: p, Val: c.val, AtEnd: true, OnlyEdgeTo: target},
				})
			}
			changed = true
		}
	}
	return changed
}

// usedBeyond reports whether v has any use outside block b (including
// phi arguments of other blocks, whose target-phi remapping does not
// cover non-target successors).
func usedBeyond(f *ir.Func, b *ir.Block, v *ir.Value) bool {
	for _, ub := range f.Blocks {
		if ub == b {
			continue
		}
		for _, u := range ub.Instrs {
			for _, a := range u.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}

// threadDominatedTests folds branches whose condition was decided by the
// terminator of the unique predecessor chain leading here.
func threadDominatedTests(ctx *Context, f *ir.Func) bool {
	changed := false
	// known maps a condition value to its decided truth for the current
	// chain; rebuilt per chain start.
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		cond := t.Args[0]
		// Walk up unique-pred edges looking for an earlier test of cond.
		cur := b
		val, found := 0, false
		for hops := 0; hops < 8 && len(cur.Preds) == 1; hops++ {
			p := cur.Preds[0]
			pt := p.Term()
			if pt != nil && pt.Op == ir.OpBr && pt.Args[0] == cond {
				if p.Succs[0] == cur && p.Succs[1] != cur {
					val, found = 1, true
				} else if p.Succs[1] == cur && p.Succs[0] != cur {
					val, found = 0, true
				}
				break
			}
			cur = p
		}
		if !found {
			continue
		}
		// Replace the branch with a jump to the decided successor.
		taken, dead := b.Succs[0], b.Succs[1]
		if val == 0 {
			taken, dead = dead, taken
		}
		if i := predIndexOf(dead, b); i >= 0 {
			ir.RemovePredEdge(dead, i)
		}
		t.Op = ir.OpJmp
		t.Args = nil
		b.Succs = []*ir.Block{taken}
		changed = true
	}
	return changed
}
