package passes

import "debugtuner/internal/ir"

// loop-strength-reduce replaces in-loop multiplications of an induction
// variable by a loop constant with a second induction variable that is
// advanced by addition: j = i*c becomes j0 = i0*c in the preheader and
// j += step*c at the latch. The multiply's users are rewired through
// RAUW; the replacement phi is artificial (line 0), so when the multiply
// was the only code for its source line, the line-table entry vanishes —
// LSR's measured debug cost in the paper.
//
// Registered as "loop-strength-reduce" (clang); gcc runs it inside
// tree-loop-optimize.
var lsrPass = Register(&Pass{
	Name:    "loop-strength-reduce",
	RunFunc: runLSR,
})

func runLSR(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, l := range FindLoops(f) {
		if l.Latch == nil {
			continue
		}
		h := l.Header
		ph := EnsurePreheader(f, l)
		if ph == nil {
			continue
		}
		phIdx := predIndexOf(h, ph)
		latchIdx := predIndexOf(h, l.Latch)
		if phIdx < 0 || latchIdx < 0 || len(h.Preds) != 2 {
			continue
		}
		// Find simple induction phis: i = phi(init, i + step) with a
		// constant step and the update in the loop.
		type indvar struct {
			phi  *ir.Value
			init *ir.Value
			step int64
		}
		var ivs []indvar
		for _, v := range h.Instrs {
			if v.Op != ir.OpPhi {
				break
			}
			if len(v.Args) != len(h.Preds) {
				continue
			}
			next := v.Args[latchIdx]
			if next.Op != ir.OpAdd || !l.Blocks[next.Block] {
				continue
			}
			if next.Args[0] == v && next.Args[1].Op == ir.OpConst {
				ivs = append(ivs, indvar{v, v.Args[phIdx], next.Args[1].AuxInt})
			}
		}
		for _, iv := range ivs {
			for _, b := range l.SortedBlocks() {
				for _, v := range append([]*ir.Value(nil), b.Instrs...) {
					if v.Op != ir.OpMul {
						continue
					}
					var c *ir.Value
					switch {
					case v.Args[0] == iv.phi && v.Args[1].Op == ir.OpConst:
						c = v.Args[1]
					case v.Args[1] == iv.phi && v.Args[0].Op == ir.OpConst:
						c = v.Args[0]
					default:
						continue
					}
					// j0 = init * c in the preheader.
					j0 := f.NewValue(ph, ir.OpMul, 0, iv.init, c)
					insertBeforeTerm(ph, j0)
					// j = phi(j0, j + step*c) in the header.
					j := f.NewValue(h, ir.OpPhi, 0)
					j.Args = make([]*ir.Value, len(h.Preds))
					stepC := f.NewValue(l.Latch, ir.OpConst, 0)
					stepC.AuxInt = iv.step * c.AuxInt
					insertBeforeTerm(l.Latch, stepC)
					jnext := f.NewValue(l.Latch, ir.OpAdd, 0, j, stepC)
					insertBeforeTerm(l.Latch, jnext)
					j.Args[phIdx] = j0
					j.Args[latchIdx] = jnext
					h.Instrs = append([]*ir.Value{j}, h.Instrs...)
					RAUW(ctx, f, v, j)
					ir.RemoveValue(v)
					changed = true
				}
			}
		}
	}
	return changed
}

// insertBeforeTerm appends v just before the block terminator.
func insertBeforeTerm(b *ir.Block, v *ir.Value) {
	v.Block = b
	n := len(b.Instrs)
	if n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		b.Instrs = append(b.Instrs, nil)
		copy(b.Instrs[n:], b.Instrs[n-1:])
		b.Instrs[n-1] = v
	} else {
		b.Instrs = append(b.Instrs, v)
	}
}
