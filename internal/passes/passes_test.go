package passes

import (
	"fmt"
	"reflect"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/irbuild"
	"debugtuner/internal/parser"
	"debugtuner/internal/sema"
)

// testPrograms is a corpus of MiniC programs exercising the IR shapes
// each pass targets. Every program prints enough state that a semantic
// break is observable.
var testPrograms = []struct {
	name string
	src  string
}{
	{"arith", `
func main() {
	var a: int = 3;
	var b: int = 4;
	var c: int = a * b + a - b;
	print(c);
	print(c * 8);
	print(c / 0 + c % 0);
}`},
	{"branches", `
func classify(x: int): int {
	if (x < 0) { return 0 - 1; }
	if (x == 0) { return 0; }
	if (x > 100) { return 100; }
	return x;
}
func main() {
	var i: int = 0 - 5;
	while (i < 120) {
		print(classify(i));
		i = i + 17;
	}
}`},
	{"loops", `
func main() {
	var sum: int = 0;
	for (var i: int = 0; i < 10; i = i + 1) {
		sum = sum + i * 3;
	}
	print(sum);
	var j: int = 20;
	while (j > 0) {
		if (j % 4 == 0) { sum = sum + j; }
		j = j - 3;
	}
	print(sum);
}`},
	{"nestedloops", `
func main() {
	var acc: int = 0;
	for (var i: int = 0; i < 6; i = i + 1) {
		for (var j: int = 0; j < 6; j = j + 1) {
			if (j > i) { break; }
			if ((i + j) % 2 == 0) { continue; }
			acc = acc + i * 10 + j;
		}
	}
	print(acc);
}`},
	{"calls", `
var hits: int = 0;
func square(x: int): int { return x * x; }
func bump(): int { hits = hits + 1; return hits; }
func main() {
	print(square(7));
	print(square(7));
	print(bump() + bump());
	print(hits);
}`},
	{"recursion", `
func gcd(a: int, b: int): int {
	if (b == 0) { return a; }
	return gcd(b, a % b);
}
func main() {
	print(gcd(1071, 462));
	print(gcd(13, 7));
}`},
	{"arrays", `
var buf: int[] = new int[16];
func main() {
	for (var i: int = 0; i < 16; i = i + 1) {
		buf[i] = i * i - 3;
	}
	var sum: int = 0;
	for (var i: int = 0; i < 16; i = i + 1) {
		sum = sum + buf[i];
	}
	print(sum);
	var local: int[] = new int[4];
	local[0] = 9; local[1] = 8; local[2] = 7; local[3] = 6;
	print(local[0] * 1000 + local[1] * 100 + local[2] * 10 + local[3]);
}`},
	{"slpshape", `
func main() {
	var a: int[] = new int[8];
	var b: int[] = new int[8];
	var c: int[] = new int[8];
	for (var i: int = 0; i < 8; i = i + 1) {
		b[i] = i * 5; c[i] = i + 2;
	}
	a[0] = b[0] + c[0];
	a[1] = b[1] + c[1];
	a[2] = b[2] * c[2];
	a[3] = b[3] * c[3];
	var s: int = 0;
	for (var i: int = 0; i < 4; i = i + 1) { s = s + a[i]; }
	print(s);
}`},
	{"shortcircuit", `
var n: int = 0;
func tick(v: int): int { n = n + 1; return v; }
func main() {
	if (tick(1) && tick(0) && tick(1)) { print(100); }
	print(n);
	if (tick(0) || tick(2)) { print(200); }
	print(n);
}`},
	{"diamond", `
func pick(x: int, y: int): int {
	var r: int = 0;
	if (x < y) { r = x * 2; } else { r = y * 3; }
	return r;
}
func main() {
	print(pick(3, 9));
	print(pick(9, 3));
	print(pick(4, 4));
}`},
	{"constloop", `
func main() {
	var t: int = 1;
	for (var i: int = 0; i < 5; i = i + 1) {
		t = t * 2;
	}
	print(t);
}`},
	{"invariant", `
func main() {
	var x: int = 12;
	var y: int = 5;
	var s: int = 0;
	for (var i: int = 0; i < 9; i = i + 1) {
		s = s + x * y + i;
	}
	print(s);
}`},
	{"earlyreturns", `
func find(a: int[], n: int, key: int): int {
	for (var i: int = 0; i < n; i = i + 1) {
		if (a[i] == key) { return i; }
	}
	return 0 - 1;
}
func main() {
	var a: int[] = new int[5];
	a[0] = 4; a[1] = 9; a[2] = 16; a[3] = 25; a[4] = 36;
	print(find(a, 5, 16));
	print(find(a, 5, 17));
}`},
}

// buildProgram compiles MiniC source to O0 IR.
func buildProgram(t testing.TB, src string) *ir.Program {
	t.Helper()
	prog, err := parser.ParseString("t.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p, err := irbuild.Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func interpOutput(t testing.TB, p *ir.Program) []int64 {
	t.Helper()
	in := ir.NewInterp(p, 1<<24)
	if _, err := in.Call("main"); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return in.Output()
}

func newCtx(p *ir.Program, salvage bool) *Context {
	return &Context{
		Prog: p, Salvage: salvage,
		InlineBudget: 60, InlineSmall: true, InlineOnce: true,
		InlineGrowth: true, UnrollFactor: 2,
	}
}

// allPassNames lists every registered pass that has a real body.
func allRunnableNames() []string {
	names := []string{
		"sroa", "simplifycfg", "instcombine", "tree-forwprop", "early-cse",
		"gvn", "tree-fre", "dce", "dse", "inline", "jump-threading",
		"thread-jumps", "tree-dominator-opts", "sccp", "licm",
		"tree-loop-optimize", "loop-rotate", "tree-ch", "loop-unroll",
		"loop-strength-reduce", "sink", "tree-sink", "if-conversion",
		"ipa-pure-const", "toplevel-reorder", "guess-branch-probability",
		"tree-slp-vectorize",
	}
	return names
}

// TestEachPassPreservesSemantics runs every pass alone on every program
// and checks both IR integrity and behavioral equivalence.
func TestEachPassPreservesSemantics(t *testing.T) {
	for _, tp := range testPrograms {
		base := buildProgram(t, tp.src)
		want := interpOutput(t, base)
		for _, name := range allRunnableNames() {
			for _, salvage := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/salvage=%v", tp.name, name, salvage), func(t *testing.T) {
					p := base.Clone()
					ctx := newCtx(p, salvage)
					pass := Lookup(name)
					if pass == nil {
						t.Fatalf("pass %q not registered", name)
					}
					pass.Run(ctx)
					if err := ir.VerifyProgram(p); err != nil {
						t.Fatalf("IR broken after %s: %v", name, err)
					}
					got := interpOutput(t, p)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("output after %s = %v, want %v", name, got, want)
					}
				})
			}
		}
	}
}

// TestPassSequences runs realistic multi-pass sequences, including the
// canonical sroa-first ordering, and re-checks equivalence.
func TestPassSequences(t *testing.T) {
	sequences := [][]string{
		{"sroa", "simplifycfg", "instcombine", "dce"},
		{"sroa", "instcombine", "simplifycfg", "early-cse", "dce"},
		{"toplevel-reorder", "ipa-pure-const", "inline", "sroa", "simplifycfg",
			"instcombine", "gvn", "dce"},
		{"sroa", "simplifycfg", "loop-rotate", "licm", "loop-strength-reduce",
			"instcombine", "dce", "simplifycfg"},
		{"sroa", "simplifycfg", "loop-unroll", "instcombine", "simplifycfg",
			"tree-slp-vectorize", "dce"},
		{"sroa", "jump-threading", "simplifycfg", "if-conversion", "dce"},
		{"inline", "sroa", "simplifycfg", "instcombine", "gvn", "jump-threading",
			"simplifycfg", "licm", "sink", "dse", "dce", "simplifycfg",
			"guess-branch-probability"},
	}
	for _, tp := range testPrograms {
		base := buildProgram(t, tp.src)
		want := interpOutput(t, base)
		for si, seq := range sequences {
			for _, salvage := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/seq%d/salvage=%v", tp.name, si, salvage), func(t *testing.T) {
					p := base.Clone()
					ctx := newCtx(p, salvage)
					for _, name := range seq {
						Lookup(name).Run(ctx)
						if err := ir.VerifyProgram(p); err != nil {
							t.Fatalf("IR broken after %s: %v", name, err)
						}
					}
					got := interpOutput(t, p)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("output after seq %v = %v, want %v", seq, got, want)
					}
				})
			}
		}
	}
}

// TestPassesReduceWork checks that the optimizer actually optimizes: the
// full sequence should reduce instruction count on programs with
// redundancy.
func TestPassesReduceWork(t *testing.T) {
	base := buildProgram(t, testPrograms[0].src) // "arith": fully constant
	before := ir.CollectStats(base).Instrs
	p := base.Clone()
	ctx := newCtx(p, true)
	for _, name := range []string{"sroa", "instcombine", "simplifycfg", "dce"} {
		Lookup(name).Run(ctx)
	}
	after := ir.CollectStats(p).Instrs
	if after >= before {
		t.Fatalf("optimizer did not shrink constant program: %d -> %d", before, after)
	}
}

// TestMem2RegEliminatesSlots verifies full promotion.
func TestMem2RegEliminatesSlots(t *testing.T) {
	for _, tp := range testPrograms {
		p := buildProgram(t, tp.src)
		ctx := newCtx(p, true)
		Lookup("sroa").Run(ctx)
		for _, f := range p.Funcs {
			if f.NumSlots != 0 {
				t.Fatalf("%s: %s still has %d slots", tp.name, f.Name, f.NumSlots)
			}
			for _, b := range f.Blocks {
				for _, v := range b.Instrs {
					if v.Op == ir.OpSlotLoad || v.Op == ir.OpSlotStore {
						t.Fatalf("%s: %s still has slot ops", tp.name, f.Name)
					}
				}
			}
		}
	}
}

// TestSalvagePolicyDiffers demonstrates the gcc/clang debug divergence:
// with salvage off, RAUW across blocks drops DbgValue bindings.
func TestSalvagePolicyDiffers(t *testing.T) {
	src := `
func main() {
	var a: int = 0;
	var i: int = 0;
	while (i < 4) {
		a = i * 3;
		i = i + 1;
	}
	var b: int = i * 3;
	print(a + b);
}`
	count := func(salvage bool) int {
		p := buildProgram(t, src)
		ctx := newCtx(p, salvage)
		for _, n := range []string{"sroa", "instcombine", "gvn", "dce", "simplifycfg"} {
			Lookup(n).Run(ctx)
		}
		bound := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				for _, v := range b.Instrs {
					if v.Op == ir.OpDbgValue && len(v.Args) == 1 {
						bound++
					}
				}
			}
		}
		return bound
	}
	if count(true) < count(false) {
		t.Fatalf("salvage=true kept fewer bindings (%d) than salvage=false (%d)",
			count(true), count(false))
	}
}
