package passes

import (
	"reflect"
	"testing"

	"debugtuner/internal/ir"
)

func TestRotateGVNUnrollInteraction(t *testing.T) {
	src := `
var table: int[] = new int[32];
func main() {
	for (var i: int = 0; i < 32; i = i + 1) {
		table[i] = i * 3;
	}
	var j: int = 0;
	while (j < 4) {
		print(table[j * 7]);
		j = j + 1;
	}
}`
	base := buildProgram(t, src)
	want := interpOutput(t, base)
	seqs := [][]string{
		{"sroa", "simplifycfg", "loop-rotate", "gvn", "loop-unroll"},
		{"sroa", "simplifycfg", "loop-rotate", "loop-unroll"},
		{"sroa", "simplifycfg", "gvn", "loop-unroll"},
		{"sroa", "simplifycfg", "loop-rotate", "licm", "loop-strength-reduce",
			"dce", "simplifycfg", "gvn", "jump-threading", "simplifycfg",
			"dse", "if-conversion", "simplifycfg", "loop-unroll", "simplifycfg"},
	}
	for si, seq := range seqs {
		p := base.Clone()
		ctx := newCtx(p, true)
		for _, n := range seq {
			Lookup(n).Run(ctx)
			if err := ir.VerifyProgram(p); err != nil {
				t.Fatalf("seq%d: IR broken after %s: %v", si, n, err)
			}
		}
		got := interpOutput(t, p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seq%d (%v): got %v want %v\n%s", si, seq, got, want, p.Funcs[0].String())
		}
	}
}
