package passes

import (
	"testing"

	"debugtuner/internal/ir"
)

// countOp tallies an opcode across the program.
func countOp(p *ir.Program, op ir.Op) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op == op {
					n++
				}
			}
		}
	}
	return n
}

// distinctLines collects the set of nonzero lines on instructions.
func distinctLines(p *ir.Program) map[int]bool {
	out := map[int]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Line > 0 && v.Op != ir.OpDbgValue {
					out[v.Line] = true
				}
			}
		}
	}
	return out
}

func prep(t *testing.T, src string, names ...string) (*ir.Program, *Context) {
	t.Helper()
	p := buildProgram(t, src)
	ctx := newCtx(p, true)
	for _, n := range names {
		Lookup(n).Run(ctx)
	}
	return p, ctx
}

func TestInlineRemovesCalls(t *testing.T) {
	src := `
func tiny(x: int): int { return x + 1; }
func main() { print(tiny(tiny(5))); }`
	p, _ := prep(t, src, "inline")
	if n := countOp(p, ir.OpCall); n != 0 {
		t.Fatalf("%d calls remain after inlining", n)
	}
}

func TestLICMHoistsWithLineZero(t *testing.T) {
	src := `
func main() {
	var a: int = 6;
	var b: int = 7;
	var s: int = 0;
	for (var i: int = 0; i < 5; i = i + 1) {
		s = s + a * b;
	}
	print(s);
}`
	p, _ := prep(t, src, "sroa", "simplifycfg", "licm")
	// The invariant multiply must have left the loop; LICM clears the
	// line of whatever it moves.
	f := p.Func("main")
	loops := FindLoops(f)
	if len(loops) == 0 {
		t.Fatal("loop lost")
	}
	for b := range loops[0].Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpMul {
				t.Fatal("multiply still inside the loop")
			}
		}
	}
	movedArtificial := false
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpMul && v.Line == 0 {
				movedArtificial = true
			}
		}
	}
	if !movedArtificial {
		t.Fatal("hoisted multiply kept its source line")
	}
}

func TestGVNMergesRedundancy(t *testing.T) {
	src := `
func main() {
	var a: int = 12;
	var b: int = 30;
	var x: int = a * b + 1;
	var y: int = a * b + 2;
	print(x + y);
}`
	before, _ := prep(t, src, "sroa")
	after, _ := prep(t, src, "sroa", "gvn")
	if countOp(after, ir.OpMul) >= countOp(before, ir.OpMul) {
		t.Fatalf("gvn left %d multiplies (was %d)",
			countOp(after, ir.OpMul), countOp(before, ir.OpMul))
	}
}

func TestUnrollEliminatesBackEdge(t *testing.T) {
	src := `
func main() {
	var s: int = 0;
	for (var i: int = 0; i < 4; i = i + 1) {
		s = s + i * i;
	}
	print(s);
}`
	p, _ := prep(t, src, "sroa", "simplifycfg", "loop-unroll",
		"instcombine", "simplifycfg", "dce", "simplifycfg")
	if n := len(FindLoops(p.Func("main"))); n != 0 {
		t.Fatalf("%d loops remain after full unroll", n)
	}
	// Differential safety is covered by the shared harness; here we
	// also confirm the constant result folded through the peels.
	out := interpOutput(t, p)
	if len(out) != 1 || out[0] != 14 {
		t.Fatalf("output = %v", out)
	}
}

func TestIfConversionIntroducesSelect(t *testing.T) {
	src := `
func pick(a: int, b: int): int {
	var r: int = 0;
	if (a < b) { r = a; } else { r = b; }
	return r;
}
func main() { print(pick(3, 9)); print(pick(9, 3)); }`
	p, _ := prep(t, src, "sroa", "simplifycfg", "if-conversion")
	if countOp(p, ir.OpSelect) == 0 {
		t.Fatal("no select produced")
	}
	if countOp(p, ir.OpBr) != 0 {
		t.Fatal("diamond branch survived if-conversion")
	}
}

func TestDbgValueLossUnderOptimization(t *testing.T) {
	src := `
func main() {
	var tmp: int = 21 * 2;
	var unused: int = tmp + 100;
	print(tmp);
}`
	p, _ := prep(t, src, "sroa", "instcombine", "dce")
	// The dead 'unused' computation is gone; its DbgValue must survive
	// as an explicit "optimized out" marker or point at a constant —
	// never dangle.
	foundUnused := false
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op == ir.OpDbgValue && v.Var.Name == "unused" {
					foundUnused = true
					if len(v.Args) == 1 && !v.Args[0].Op.HasResult() {
						t.Fatal("dangling DbgValue")
					}
				}
			}
		}
	}
	if !foundUnused {
		t.Fatal("DbgValue for eliminated variable disappeared entirely")
	}
}

func TestSLPFusesAdjacentStores(t *testing.T) {
	src := `
func main() {
	var a: int[] = new int[4];
	var b: int[] = new int[4];
	var c: int[] = new int[4];
	b[0] = 1; b[1] = 2; c[0] = 3; c[1] = 4;
	a[0] = b[0] + c[0];
	a[1] = b[1] + c[1];
	print(a[0] * 10 + a[1]);
}`
	p, _ := prep(t, src, "sroa", "tree-slp-vectorize")
	if countOp(p, ir.OpVStore2) == 0 {
		t.Fatal("slp did not vectorize the adjacent stores")
	}
	out := interpOutput(t, p)
	if len(out) != 1 || out[0] != 46 {
		t.Fatalf("output = %v", out)
	}
}

func TestRotationGuardsLoop(t *testing.T) {
	src := `
func main() {
	var n: int = 0;
	while (n < 3) { n = n + 1; }
	print(n);
}`
	p, _ := prep(t, src, "sroa", "simplifycfg", "loop-rotate")
	f := p.Func("main")
	loops := FindLoops(f)
	if len(loops) != 1 {
		t.Fatalf("%d loops", len(loops))
	}
	// Rotated form: the header ends in an unconditional jump and the
	// latch carries the branch.
	h := loops[0].Header
	if h.Term().Op != ir.OpJmp {
		t.Fatalf("header still branches: %v", h.Term().Op)
	}
	if loops[0].Latch.Term().Op != ir.OpBr {
		t.Fatal("latch does not carry the rotated test")
	}
}

// TestLineTableShrinksWithOptimization measures the mechanism behind
// line-coverage loss: the set of distinct source lines attached to IR
// shrinks through a realistic pipeline.
func TestLineTableShrinksWithOptimization(t *testing.T) {
	src := testPrograms[2].src // "loops"
	before, _ := prep(t, src)
	after, _ := prep(t, src, "sroa", "simplifycfg", "instcombine", "gvn",
		"tree-sink", "dce", "simplifycfg")
	nb, na := len(distinctLines(before)), len(distinctLines(after))
	if na > nb {
		t.Fatalf("lines grew: %d -> %d", nb, na)
	}
	if na == nb {
		t.Logf("no line was lost on this program (allowed but unusual)")
	}
}
