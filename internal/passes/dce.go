package passes

import "debugtuner/internal/ir"

// dce removes instructions whose results are never used by effectful
// code, using mark-and-sweep from the effect roots (stores, prints,
// impure calls, terminators) so that dead phi cycles die too. DbgValue
// references do not keep values alive — matching LLVM — so a variable
// whose value was only computed for its own sake becomes "optimized out".
var dcePass = Register(&Pass{
	Name:    "dce",
	RunFunc: runDCE,
})

func runDCE(ctx *Context, f *ir.Func) bool {
	live := make([]bool, f.NumValueIDs())
	var work []*ir.Value
	mark := func(v *ir.Value) {
		if !live[v.ID] {
			live[v.ID] = true
			work = append(work, v)
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpDbgValue {
				continue
			}
			if v.Op.IsTerminator() || (!IsRemovable(f.Prog, v) && !v.Op.HasResult()) ||
				(v.Op == ir.OpCall && !IsRemovable(f.Prog, v)) ||
				v.Op == ir.OpAStore || v.Op == ir.OpVStore2 || v.Op == ir.OpGStore ||
				v.Op == ir.OpSlotStore || v.Op == ir.OpPrint {
				mark(v)
			}
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range v.Args {
			mark(a)
		}
	}
	changed := false
	for _, b := range f.Blocks {
		for _, v := range append([]*ir.Value(nil), b.Instrs...) {
			if v.Op == ir.OpDbgValue || live[v.ID] {
				continue
			}
			DropDefDebug(f, v)
			// Clear args so dangling references cannot survive.
			v.Args = nil
			ir.RemoveValue(v)
			changed = true
		}
	}
	return changed
}

// dse removes stores that are overwritten before being observed. For
// global scalars it is intraprocedural and block-local: a store to global
// g is dead if the same block stores g again with no intervening load of
// g, call, or print. The deleted store's line-table entry disappears with
// it.
var dsePass = Register(&Pass{
	Name:    "dse",
	RunFunc: runDSE,
})

func runDSE(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		// lastStore[g] is a pending store to global g not yet observed.
		lastStore := map[int64]*ir.Value{}
		var dead []*ir.Value
		for _, v := range b.Instrs {
			switch v.Op {
			case ir.OpGStore:
				if prev, ok := lastStore[v.AuxInt]; ok {
					dead = append(dead, prev)
				}
				lastStore[v.AuxInt] = v
			case ir.OpGLoad:
				delete(lastStore, v.AuxInt)
			case ir.OpCall, ir.OpPrint, ir.OpRet:
				// Calls and returns may observe any global.
				lastStore = map[int64]*ir.Value{}
			}
		}
		for _, v := range dead {
			v.Args = nil
			ir.RemoveValue(v)
			changed = true
		}
	}
	return changed
}
