package passes

import "debugtuner/internal/ir"

// tree-slp-vectorize performs basic-block SLP vectorization for the
// canonical pattern produced by unrolled array loops:
//
//	a[i]   = b[i]   OP c[i]
//	a[i+1] = b[i+1] OP c[i+1]
//
// becoming a two-lane VLoad2/VBin/VStore2 group. The fused instructions
// take the first lane's source line; the second lane's instructions (and
// their line-table entries) disappear, and any DbgValue bound to an
// eliminated scalar is dropped — the vectorizer's measured debug cost.
var slpPass = Register(&Pass{
	Name:    "tree-slp-vectorize",
	RunFunc: runSLP,
})

type slpStore struct {
	store    *ir.Value // astore(arr, idx, bin)
	bin      *ir.Value
	lhs, rhs *ir.Value // aloads
	pos      int       // index of store within block
}

func runSLP(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		// Gather candidate stores of binop(load, load) in this block.
		var cands []slpStore
		uses := CodeUseCounts(f)
		for pos, v := range b.Instrs {
			if v.Op != ir.OpAStore {
				continue
			}
			bin := v.Args[2]
			if bin.Block != b || uses[bin.ID] != 1 {
				continue
			}
			switch bin.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor:
			default:
				continue
			}
			l, r := bin.Args[0], bin.Args[1]
			if l.Op != ir.OpALoad || r.Op != ir.OpALoad ||
				l.Block != b || r.Block != b ||
				uses[l.ID] != 1 || uses[r.ID] != 1 {
				continue
			}
			cands = append(cands, slpStore{v, bin, l, r, pos})
		}
		// Pair stores with consecutive indices, same arrays, same op.
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				s0, s1 := cands[i], cands[j]
				if s0.store == nil || s1.store == nil {
					continue
				}
				if s0.bin.Op != s1.bin.Op {
					continue
				}
				if s0.store.Args[0] != s1.store.Args[0] ||
					s0.lhs.Args[0] != s1.lhs.Args[0] ||
					s0.rhs.Args[0] != s1.rhs.Args[0] {
					continue
				}
				if !consecutive(s0.store.Args[1], s1.store.Args[1]) ||
					!consecutive(s0.lhs.Args[1], s1.lhs.Args[1]) ||
					!consecutive(s0.rhs.Args[1], s1.rhs.Args[1]) {
					continue
				}
				// No foreign clobbers may sit between the group's first
				// involved instruction and the second store: the fused
				// loads all execute at the first store's position.
				if groupClobbered(b, s0, s1) {
					continue
				}
				fuse(f, b, s0, s1)
				cands[i].store = nil
				cands[j].store = nil
				changed = true
				break
			}
		}
	}
	return changed
}

// consecutive reports whether idx1 == idx0 + 1 syntactically: both
// constants, or idx1 = add(idx0, 1).
func consecutive(i0, i1 *ir.Value) bool {
	if i0.Op == ir.OpConst && i1.Op == ir.OpConst {
		return i1.AuxInt == i0.AuxInt+1
	}
	return i1.Op == ir.OpAdd && i1.Args[0] == i0 &&
		i1.Args[1].Op == ir.OpConst && i1.Args[1].AuxInt == 1
}

// groupClobbered reports whether any instruction outside the candidate
// group writes memory (or calls/prints) between the group's first
// involved instruction and the second store. The fused loads all execute
// at the first store's position, so the whole span must be clobber-free.
func groupClobbered(b *ir.Block, s0, s1 slpStore) bool {
	involved := map[*ir.Value]bool{
		s0.store: true, s0.bin: true, s0.lhs: true, s0.rhs: true,
		s1.store: true, s1.bin: true, s1.lhs: true, s1.rhs: true,
	}
	first := -1
	for k, v := range b.Instrs {
		if involved[v] {
			first = k
			break
		}
	}
	if first < 0 {
		return true
	}
	for k := first; k < len(b.Instrs); k++ {
		v := b.Instrs[k]
		if v == s1.store {
			return false
		}
		if involved[v] {
			continue
		}
		switch v.Op {
		case ir.OpAStore, ir.OpGStore, ir.OpVStore2, ir.OpSlotStore,
			ir.OpCall, ir.OpPrint:
			return true
		}
	}
	return true
}

// fuse rewrites the pair into vector ops at the first store's position.
func fuse(f *ir.Func, b *ir.Block, s0, s1 slpStore) {
	vl := f.NewValue(b, ir.OpVLoad2, s0.lhs.Line, s0.lhs.Args[0], s0.lhs.Args[1])
	vr := f.NewValue(b, ir.OpVLoad2, s0.rhs.Line, s0.rhs.Args[0], s0.rhs.Args[1])
	vb := f.NewValue(b, ir.OpVBin, s0.bin.Line, vl, vr)
	vb.AuxInt = int64(s0.bin.Op)
	vs := f.NewValue(b, ir.OpVStore2, s0.store.Line, s0.store.Args[0], s0.store.Args[1], vb)
	ir.InsertBefore(s0.store, vl)
	ir.InsertBefore(s0.store, vr)
	ir.InsertBefore(s0.store, vb)
	ir.InsertBefore(s0.store, vs)
	for _, dead := range []*ir.Value{
		s1.store, s1.bin, s1.lhs, s1.rhs,
		s0.store, s0.bin, s0.lhs, s0.rhs,
	} {
		DropDefDebug(f, dead)
		dead.Args = nil
		ir.RemoveValue(dead)
	}
}
