package passes

import "debugtuner/internal/ir"

// This file registers the remaining pass names the two pipeline profiles
// reference.
//
//   - gcc spellings that alias an existing implementation
//     (thread-jumps, tree-dominator-opts);
//   - sccp, a constant-propagation subset of instcombine kept as its own
//     pipeline entry for fidelity with clang's pass list;
//   - the back-end pass names. Their transformations live in the codegen
//     package, which receives the set of enabled names through
//     pipeline.Config; the registry entries exist so DebugTuner can
//     toggle them like any other pass. They are annotated Backend, the
//     paper's '*'.
func init() {
	// gcc's RTL jump threading shares the implementation with the
	// mid-end pass; gcc annotates it as a back-end pass.
	Register(&Pass{Name: "thread-jumps", Backend: true, RunFunc: runJumpThreading})

	// gcc's tree-dominator-opts combines dominator-based CSE with jump
	// threading over the dominator tree.
	Register(&Pass{
		Name: "tree-dominator-opts",
		RunFunc: func(ctx *Context, f *ir.Func) bool {
			c := runCSE(ctx, f, false)
			c = runJumpThreading(ctx, f) || c
			return c
		},
	})

	// Sparse conditional constant propagation: the constant-folding
	// subset (plus branch folding) of instcombine.
	Register(&Pass{
		Name: "sccp",
		RunFunc: func(ctx *Context, f *ir.Func) bool {
			c := combine(ctx, f, false)
			c = foldConstBranches(ctx, f) || c
			if c {
				ir.RemoveUnreachable(f)
			}
			return c
		},
	})

	// Back-end pass toggles, implemented in internal/codegen.
	for _, name := range []string{
		"schedule-insns2", // post-RA list scheduling
		"reorder-blocks",  // gcc block placement
		"block-placement", // clang "Branch Prob BB Placement"
		"crossjumping",    // gcc tail merging
		"machine-cfg-opt", // clang "Control Flow Optimizer"
		"machine-sink",    // clang "Machine code sinking"
		"shrink-wrap",     // late prologue placement
		"ira-share-spill-slots",
		"tree-ter",           // forward substitution at expansion
		"tree-coalesce-vars", // SSA name coalescing at expansion
	} {
		Register(&Pass{
			Name:      name,
			Backend:   true,
			RunModule: func(ctx *Context) bool { return false },
		})
	}

	// gcc's expensive-optimizations group toggle: pipeline entries
	// marked as members are skipped when this name is disabled. The
	// registry entry only reserves the name.
	Register(&Pass{
		Name:      "expensive-opts",
		RunModule: func(ctx *Context) bool { return false },
	})
}
