package passes

import "debugtuner/internal/ir"

// licm hoists loop-invariant pure computations (and loads, when the loop
// contains no clobbers) into the preheader. Hoisted instructions lose
// their source line — LLVM's hoist utility does the same to avoid jumpy
// stepping — which removes the corresponding line-table entries from the
// loop body.
//
// Registered as "licm" (clang) and under gcc's umbrella toggle
// "tree-loop-optimize", which also runs rotation and strength reduction.
var licmPass = Register(&Pass{
	Name:    "licm",
	RunFunc: runLICM,
})

func init() {
	Register(&Pass{
		Name: "tree-loop-optimize",
		RunFunc: func(ctx *Context, f *ir.Func) bool {
			c := runRotate(ctx, f)
			c = runLICM(ctx, f) || c
			c = runLSR(ctx, f) || c
			return c
		},
	})
}

func runLICM(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, l := range FindLoops(f) {
		ph := EnsurePreheader(f, l)
		if ph == nil {
			continue
		}
		clobbered := l.hasClobber(f.Prog)
		// Iterate: hoisting one instruction can make another invariant.
		for pass := 0; pass < 4; pass++ {
			moved := false
			for _, b := range l.SortedBlocks() {
				for _, v := range append([]*ir.Value(nil), b.Instrs...) {
					if !hoistable(v, l, clobbered, f.Prog) {
						continue
					}
					invariant := true
					for _, a := range v.Args {
						if l.definedIn(a) {
							invariant = false
							break
						}
					}
					if !invariant {
						continue
					}
					MoveToBlockEnd(v, ph)
					moved = true
					changed = true
				}
			}
			if !moved {
				break
			}
		}
	}
	return changed
}

func hoistable(v *ir.Value, l *Loop, clobbered bool, prog *ir.Program) bool {
	switch {
	case v.Op == ir.OpPhi, v.Op == ir.OpDbgValue, v.Op.IsTerminator():
		return false
	case v.Op.IsPure(), v.Op == ir.OpConst:
		return true
	case v.Op == ir.OpGLoad, v.Op == ir.OpALoad:
		return !clobbered
	case v.Op == ir.OpCall:
		callee := prog.Func(v.Aux)
		return callee != nil && callee.Pure
	}
	return false
}
