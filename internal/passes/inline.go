package passes

import "debugtuner/internal/ir"

// The inliner. Pass name "inline" is the master switch (gcc -fno-inline /
// clang's Inliner); the finer-grained gcc policies are separate toggles
// consumed through Context flags:
//
//   - inline-fncs-called-once: inline any non-recursive callee with a
//     single call site in the program;
//   - inline-small-functions: inline callees below the small threshold;
//   - inline-functions: inline callees below the growth threshold
//     (enabled at O2/O3).
//
// Inlined instructions keep their callee source lines, and callee
// DbgValues are cloned per call site — so a function inlined at several
// sites binds the same source variable to several value sets, which is
// precisely the situation in which downstream passes disrupt debug
// information (the paper's explanation for the inliner's indirect but
// top-ranked impact).
var inlinePass = Register(&Pass{
	Name:      "inline",
	RunModule: runInline,
})

func init() {
	// The fine-grained gcc inlining toggles are consumed via Context
	// flags by runInline; registering them gives DebugTuner their
	// switch names.
	Register(&Pass{Name: "inline-small-functions", RunModule: func(ctx *Context) bool { return false }})
	Register(&Pass{Name: "inline-fncs-called-once", RunModule: func(ctx *Context) bool { return false }})
	Register(&Pass{Name: "inline-functions", RunModule: func(ctx *Context) bool { return false }})
}

const (
	smallFuncThreshold = 16
	callerGrowthCap    = 4096
	maxInlineRounds    = 4
)

// funcCost counts code-generating instructions.
func funcCost(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op != ir.OpDbgValue {
				n++
			}
		}
	}
	return n
}

// callCounts tallies static call sites per callee name.
func callCounts(prog *ir.Program) map[string]int {
	counts := map[string]int{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op == ir.OpCall {
					counts[v.Aux]++
				}
			}
		}
	}
	return counts
}

// isRecursive reports whether f can reach itself through calls.
func isRecursive(prog *ir.Program, f *ir.Func) bool {
	seen := map[string]bool{}
	var visit func(g *ir.Func) bool
	visit = func(g *ir.Func) bool {
		if seen[g.Name] {
			return false
		}
		seen[g.Name] = true
		for _, b := range g.Blocks {
			for _, v := range b.Instrs {
				if v.Op != ir.OpCall {
					continue
				}
				if v.Aux == f.Name {
					return true
				}
				if callee := prog.Func(v.Aux); callee != nil && visit(callee) {
					return true
				}
			}
		}
		return false
	}
	return visit(f)
}

func runInline(ctx *Context) bool {
	prog := ctx.Prog
	order := map[string]int{}
	for i, f := range prog.Funcs {
		order[f.Name] = i
	}
	changed := false
	for round := 0; round < maxInlineRounds; round++ {
		counts := callCounts(prog)
		any := false
		for _, caller := range prog.Funcs {
			budget := callerGrowthCap - funcCost(caller)
			var sites []*ir.Value
			for _, b := range caller.Blocks {
				for _, v := range b.Instrs {
					if v.Op == ir.OpCall {
						sites = append(sites, v)
					}
				}
			}
			for _, call := range sites {
				callee := prog.Func(call.Aux)
				if callee == nil || callee == caller {
					continue
				}
				if !ctx.UnitAtATime && order[callee.Name] > order[caller.Name] {
					// Without toplevel reordering the compiler behaves
					// like a single-pass unit: only earlier definitions
					// are visible as inline candidates.
					continue
				}
				cost := funcCost(callee)
				if cost > budget {
					continue
				}
				// AutoFDO: a hot call site quadruples the size budget;
				// a provably-cold one shrinks it (sample-guided
				// inlining, the profile's second consumer).
				growth := ctx.InlineBudget
				single := ctx.InlineBudget
				switch ctx.CallHeat(call.Line) {
				case 1:
					growth *= 4
					single *= 4
				case -1:
					growth /= 4
					single /= 4
				}
				ok := false
				switch {
				case ctx.InlineOnce && counts[callee.Name] == 1 && !isRecursive(prog, callee):
					ok = true
				case ctx.InlineSmall && cost <= smallFuncThreshold:
					ok = true
				case ctx.InlineGrowth && cost <= growth:
					ok = true
				case !ctx.InlineSmall && !ctx.InlineGrowth && !ctx.InlineOnce &&
					single > 0 && cost <= single:
					// clang-style single-knob inliner.
					ok = true
				}
				if !ok {
					continue
				}
				if isRecursive(prog, callee) && counts[callee.Name] != 1 {
					// Avoid runaway expansion of recursive cycles; the
					// called-once case above is safe by construction.
					if callee.Name == caller.Name {
						continue
					}
					// Allow one level of inlining a recursive callee
					// only if it does not call the caller back.
					if reaches(prog, callee, caller.Name) {
						continue
					}
				}
				inlineCall(caller, call, callee)
				budget -= cost
				any = true
				changed = true
			}
		}
		if !any {
			break
		}
	}
	return changed
}

// reaches reports whether from can reach target through calls.
func reaches(prog *ir.Program, from *ir.Func, target string) bool {
	seen := map[string]bool{}
	var visit func(g *ir.Func) bool
	visit = func(g *ir.Func) bool {
		if seen[g.Name] {
			return false
		}
		seen[g.Name] = true
		for _, b := range g.Blocks {
			for _, v := range b.Instrs {
				if v.Op != ir.OpCall {
					continue
				}
				if v.Aux == target {
					return true
				}
				if callee := prog.Func(v.Aux); callee != nil && visit(callee) {
					return true
				}
			}
		}
		return false
	}
	return visit(from)
}

// inlineCall splices a clone of callee into caller at the call site.
func inlineCall(caller *ir.Func, call *ir.Value, callee *ir.Func) {
	pre := call.Block
	// Split pre at the call: post gets everything after the call plus
	// pre's successors.
	post := caller.NewBlock()
	callIdx := -1
	for i, v := range pre.Instrs {
		if v == call {
			callIdx = i
			break
		}
	}
	post.Instrs = append(post.Instrs, pre.Instrs[callIdx+1:]...)
	for _, v := range post.Instrs {
		v.Block = post
	}
	pre.Instrs = pre.Instrs[:callIdx]
	post.Succs = pre.Succs
	pre.Succs = nil
	for _, s := range post.Succs {
		for i, p := range s.Preds {
			if p == pre {
				s.Preds[i] = post
			}
		}
	}

	// Remap callee slots into fresh caller slots.
	slotBase := caller.NumSlots
	caller.NumSlots += callee.NumSlots
	caller.SlotVars = append(caller.SlotVars, callee.SlotVars...)

	// Clone callee blocks.
	blockMap := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	valueMap := make(map[*ir.Value]*ir.Value)
	for _, b := range callee.Blocks {
		nb := caller.NewBlock()
		nb.Prob, nb.Freq = b.Prob, b.Freq
		blockMap[b] = nb
	}
	type retSite struct {
		block *ir.Block
		val   *ir.Value // nil for void returns
	}
	var rets []retSite
	for _, b := range callee.Blocks {
		nb := blockMap[b]
		for _, v := range b.Instrs {
			if v.Op == ir.OpParam {
				valueMap[v] = call.Args[v.AuxInt]
				continue
			}
			nv := caller.NewValue(nb, v.Op, v.Line)
			nv.AuxInt = v.AuxInt
			nv.Aux = v.Aux
			nv.Var = v.Var
			if v.Op == ir.OpSlotLoad || v.Op == ir.OpSlotStore {
				nv.AuxInt += int64(slotBase)
			}
			valueMap[v] = nv
			nb.Instrs = append(nb.Instrs, nv)
		}
	}
	for _, b := range callee.Blocks {
		nb := blockMap[b]
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, blockMap[p])
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, blockMap[s])
		}
		for bi, v := range b.Instrs {
			if v.Op == ir.OpParam {
				continue
			}
			nv := valueMap[v]
			for _, a := range v.Args {
				nv.Args = append(nv.Args, valueMap[a])
			}
			_ = bi
		}
	}
	// Rewrite cloned returns as jumps to post.
	for _, b := range callee.Blocks {
		nb := blockMap[b]
		t := nb.Term()
		if t == nil || t.Op != ir.OpRet {
			continue
		}
		var rv *ir.Value
		if len(t.Args) == 1 {
			rv = t.Args[0]
		}
		t.Op = ir.OpJmp
		t.Args = nil
		ir.AddEdge(nb, post)
		rets = append(rets, retSite{nb, rv})
	}
	// Connect pre to the cloned entry.
	jmp := caller.NewValue(pre, ir.OpJmp, call.Line)
	pre.Instrs = append(pre.Instrs, jmp)
	ir.AddEdge(pre, blockMap[callee.Entry()])

	// Replace the call result with the merged return value.
	var result *ir.Value
	switch len(rets) {
	case 0:
		// Callee never returns (infinite loop): post is unreachable and
		// will be pruned by the next simplifycfg.
	case 1:
		result = rets[0].val
	default:
		phi := caller.NewValue(post, ir.OpPhi, 0)
		for _, r := range rets {
			arg := r.val
			if arg == nil {
				arg = zeroIn(caller, pre)
			}
			phi.Args = append(phi.Args, arg)
		}
		post.Instrs = append([]*ir.Value{phi}, post.Instrs...)
		result = phi
	}
	if result == nil {
		result = zeroIn(caller, pre)
	}
	for _, b := range caller.Blocks {
		for _, v := range b.Instrs {
			for i, a := range v.Args {
				if a == call {
					v.Args[i] = result
				}
			}
		}
	}
}

// zeroIn materializes a constant zero at the end of the (already open)
// pre block, before its terminator.
func zeroIn(f *ir.Func, pre *ir.Block) *ir.Value {
	z := f.NewValue(pre, ir.OpConst, 0)
	n := len(pre.Instrs)
	if n > 0 && pre.Instrs[n-1].Op.IsTerminator() {
		pre.Instrs = append(pre.Instrs, nil)
		copy(pre.Instrs[n:], pre.Instrs[n-1:])
		pre.Instrs[n-1] = z
	} else {
		pre.Instrs = append(pre.Instrs, z)
	}
	return z
}
