package passes

import (
	"sort"

	"debugtuner/internal/ir"
)

// ipa-pure-const discovers functions that are const in gcc's sense: they
// read and write no memory, produce no output, and call only const
// functions. Such calls may be value-numbered by GVN and deleted by DCE
// when their result is unused — optimizations that in turn erase the
// calls' line-table entries and any variable bound to their results.
var ipaPureConstPass = Register(&Pass{
	Name:      "ipa-pure-const",
	RunModule: runPureConst,
})

func runPureConst(ctx *Context) bool {
	prog := ctx.Prog
	// Optimistic fixpoint: assume const, retract on evidence.
	pure := map[string]bool{}
	for _, f := range prog.Funcs {
		pure[f.Name] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			if !pure[f.Name] {
				continue
			}
			ok := true
		scan:
			for _, b := range f.Blocks {
				for _, v := range b.Instrs {
					switch v.Op {
					case ir.OpGStore, ir.OpAStore, ir.OpVStore2, ir.OpPrint,
						ir.OpGLoad, ir.OpALoad, ir.OpVLoad2, ir.OpGArr,
						ir.OpNewArray, ir.OpLen:
						ok = false
						break scan
					case ir.OpCall:
						if !pure[v.Aux] {
							ok = false
							break scan
						}
					}
				}
			}
			if !ok {
				pure[f.Name] = false
				changed = true
			}
		}
	}
	any := false
	for _, f := range prog.Funcs {
		if f.Pure != pure[f.Name] {
			f.Pure = pure[f.Name]
			any = true
		}
	}
	return any
}

// toplevel-reorder models gcc's unit-at-a-time top-level reordering: the
// compiler is free to process and lay out functions in an order of its
// choosing rather than source order. Concretely it (a) lets the inliner
// see callees defined later in the file (Context.UnitAtATime) and
// (b) reorders function emission callee-first, which tightens call
// locality in the instruction cache. Its large measured debug impact in
// the paper is therefore indirect, like the inliner's: disabling it
// suppresses a swath of inlining.
var toplevelReorderPass = Register(&Pass{
	Name:      "toplevel-reorder",
	Backend:   true,
	RunModule: runToplevelReorder,
})

func runToplevelReorder(ctx *Context) bool {
	ctx.UnitAtATime = true
	prog := ctx.Prog
	// Callee-first topological order; cycles keep their relative source
	// order. Deterministic: visit in source order.
	index := map[string]int{}
	for i, f := range prog.Funcs {
		index[f.Name] = i
	}
	visited := map[string]bool{}
	var order []*ir.Func
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		if visited[f.Name] {
			return
		}
		visited[f.Name] = true
		var callees []*ir.Func
		seen := map[string]bool{}
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op != ir.OpCall || seen[v.Aux] {
					continue
				}
				seen[v.Aux] = true
				if callee := prog.Func(v.Aux); callee != nil {
					callees = append(callees, callee)
				}
			}
		}
		sort.Slice(callees, func(i, j int) bool {
			return index[callees[i].Name] < index[callees[j].Name]
		})
		for _, c := range callees {
			visit(c)
		}
		order = append(order, f)
	}
	for _, f := range prog.Funcs {
		visit(f)
	}
	changed := false
	for i := range order {
		if prog.Funcs[i] != order[i] {
			changed = true
		}
	}
	prog.Funcs = order
	return changed
}

// guess-branch-probability assigns static branch probabilities with the
// classic Ball–Larus style heuristics: loop back edges are strongly
// taken, equality tests usually fail, branches leading straight to a
// return are unlikely. Downstream consumers are block placement and
// shrink-wrapping; with the pass disabled every branch stays at 0.5 and
// layout quality drops.
var branchProbPass = Register(&Pass{
	Name:    "guess-branch-probability",
	RunFunc: runBranchProb,
})

func runBranchProb(ctx *Context, f *ir.Func) bool {
	ir.RemoveUnreachable(f)
	idom := ir.Dominators(f)
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		prob := 0.5
		s0, s1 := b.Succs[0], b.Succs[1]
		// Loop heuristic: an edge back to a dominator is a loop latch.
		back0 := ir.Dominates(idom, s0, b)
		back1 := ir.Dominates(idom, s1, b)
		switch {
		case back0 && !back1:
			prob = 0.9
		case back1 && !back0:
			prob = 0.1
		default:
			// Return heuristic: falling straight into a return is cold.
			r0 := isReturnish(s0)
			r1 := isReturnish(s1)
			switch {
			case r0 && !r1:
				prob = 0.3
			case r1 && !r0:
				prob = 0.7
			default:
				// Opcode heuristic: equality rarely holds.
				switch t.Args[0].Op {
				case ir.OpEq:
					prob = 0.3
				case ir.OpNe:
					prob = 0.7
				}
			}
		}
		if b.Prob != prob {
			b.Prob = prob
			changed = true
		}
	}
	ir.EstimateFrequencies(f)
	return changed
}

func isReturnish(b *ir.Block) bool {
	t := b.Term()
	return t != nil && t.Op == ir.OpRet && len(b.Instrs) <= 3
}
