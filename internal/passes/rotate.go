package passes

import "debugtuner/internal/ir"

// Loop rotation turns a while-shaped loop (test in the header) into a
// guarded do-while: the test is duplicated into the preheader (the
// guard) and into the latch, and the header's own branch becomes an
// unconditional jump into the body. The duplicated test instructions are
// clones and carry line 0 — the rotated copies are artificial, as in
// LLVM — while the originals usually die, so the condition's line often
// survives only in the guard.
//
// Registered as "loop-rotate" (clang) and "tree-ch" (gcc's loop header
// copying).
var loopRotatePass = Register(&Pass{
	Name:    "loop-rotate",
	RunFunc: runRotate,
})

func init() {
	Register(&Pass{Name: "tree-ch", RunFunc: runRotate})
}

func runRotate(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, l := range FindLoops(f) {
		if rotateLoop(ctx, f, l) {
			changed = true
		}
	}
	if changed {
		ir.RemoveUnreachable(f)
	}
	return changed
}

// rotateLoop rotates one loop if it has the canonical while shape.
func rotateLoop(ctx *Context, f *ir.Func, l *Loop) bool {
	h := l.Header
	if l.Latch == nil {
		return false
	}
	lt := l.Latch.Term()
	if lt == nil || lt.Op != ir.OpJmp {
		return false
	}
	t := h.Term()
	if t == nil || t.Op != ir.OpBr {
		return false
	}
	var body, exit *ir.Block
	switch {
	case l.Blocks[h.Succs[0]] && !l.Blocks[h.Succs[1]]:
		body, exit = h.Succs[0], h.Succs[1]
	case l.Blocks[h.Succs[1]] && !l.Blocks[h.Succs[0]]:
		body, exit = h.Succs[1], h.Succs[0]
	default:
		return false
	}
	if exit == h || body == h {
		return false
	}
	// All non-phi header instructions must be pure so both clones are
	// safe to evaluate speculatively; cloning loads would also raise the
	// loop's register pressure for marginal gain.
	var headerPhis, headerBody []*ir.Value
	for _, v := range h.Instrs {
		switch {
		case v.Op == ir.OpPhi:
			headerPhis = append(headerPhis, v)
		case v == t:
		case v.Op == ir.OpDbgValue:
		case v.Op.IsPure() || v.Op == ir.OpConst:
			headerBody = append(headerBody, v)
		default:
			return false
		}
	}
	if len(headerBody) > 12 {
		return false // duplication cost guard
	}
	ph := EnsurePreheader(f, l)
	if ph == nil || ph == h {
		return false
	}
	phIdx, latchIdx := -1, -1
	for i, p := range h.Preds {
		switch p {
		case ph:
			phIdx = i
		case l.Latch:
			latchIdx = i
		}
	}
	if phIdx < 0 || latchIdx < 0 || len(h.Preds) != 2 {
		return false
	}
	exitHIdx := predIndexOf(exit, h)
	if exitHIdx < 0 {
		return false
	}

	// cloneInto duplicates the header computation into dst (before its
	// terminator), substituting each header phi with its incoming value
	// on the given edge, and returns the value map.
	cloneInto := func(dst *ir.Block, predIdx int) map[*ir.Value]*ir.Value {
		m := map[*ir.Value]*ir.Value{}
		for _, phi := range headerPhis {
			m[phi] = phi.Args[predIdx]
		}
		for _, v := range headerBody {
			nv := f.NewValue(dst, v.Op, 0)
			nv.AuxInt, nv.Aux = v.AuxInt, v.Aux
			for _, a := range v.Args {
				if r, ok := m[a]; ok {
					nv.Args = append(nv.Args, r)
				} else {
					nv.Args = append(nv.Args, a)
				}
			}
			m[v] = nv
			// Insert before dst's terminator.
			n := len(dst.Instrs)
			dst.Instrs = append(dst.Instrs, nil)
			copy(dst.Instrs[n:], dst.Instrs[n-1:])
			dst.Instrs[n-1] = nv
		}
		return m
	}
	mapped := func(m map[*ir.Value]*ir.Value, v *ir.Value) *ir.Value {
		if r, ok := m[v]; ok {
			return r
		}
		return v
	}

	cond := t.Args[0]
	condInvertedExit := h.Succs[0] == exit // branch taken -> exit

	// Guard in the preheader: replaces its jump with a branch.
	gm := cloneInto(ph, phIdx)
	gjmp := ph.Term()
	gjmp.Op = ir.OpBr
	gjmp.Args = []*ir.Value{mapped(gm, cond)}
	if condInvertedExit {
		ph.Succs = []*ir.Block{exit, h}
		exit.Preds = append(exit.Preds, ph)
		// ph already preds h; fix ordering below via columns.
	} else {
		ph.Succs = []*ir.Block{h, exit}
		exit.Preds = append(exit.Preds, ph)
	}

	// Latch test: the latch's jump becomes the loop's bottom test.
	lm := cloneInto(l.Latch, latchIdx)
	lt.Op = ir.OpBr
	lt.Args = []*ir.Value{mapped(lm, cond)}
	if condInvertedExit {
		l.Latch.Succs = []*ir.Block{exit, h}
		exit.Preds = append(exit.Preds, l.Latch)
	} else {
		l.Latch.Succs = []*ir.Block{h, exit}
		exit.Preds = append(exit.Preds, l.Latch)
	}

	// The header now falls through into the body unconditionally.
	t.Op = ir.OpJmp
	t.Args = nil
	h.Succs = []*ir.Block{body}

	// Exit phi columns: the old column for pred h is replaced by two new
	// columns for ph and latch with edge-mapped values.
	for _, v := range exit.Instrs {
		if v.Op != ir.OpPhi {
			break
		}
		old := v.Args[exitHIdx]
		v.Args = append(v.Args, mapped(gm, old), mapped(lm, old))
	}
	ir.RemovePredEdge(exit, exitHIdx)

	// The guard edge ph->exit and the latch edge bypass the header, so
	// header-defined values used beyond the loop are no longer dominated
	// by their definitions; repair each through SSA-updater phis. The
	// guard edge carries init-mapped values, the latch edge next-mapped
	// values.
	var batch []repairItem
	for _, v := range append(append([]*ir.Value(nil), headerPhis...), headerBody...) {
		batch = append(batch, repairItem{Orig: v, Defs: []Def{
			{Block: h, Val: v},
			{Block: ph, Val: mapped(gm, v), AtEnd: true, OnlyEdgeTo: exit},
			{Block: l.Latch, Val: mapped(lm, v), AtEnd: true, OnlyEdgeTo: exit},
		}})
	}
	newRepairer(f).repairValues(batch)
	return true
}
