package passes

import "debugtuner/internal/ir"

// if-conversion turns small branch diamonds and triangles into straight-
// line code with OpSelect, removing the branch (and its mispredict and
// taken-branch costs). The speculated arm instructions keep their lines —
// they still execute — but DbgValues inside the arms are dropped to
// "optimized out": after speculation both arms' bindings would execute
// unconditionally, and the compiler cannot express "bound only if the
// branch would have been taken" in a location list.
var ifConvPass = Register(&Pass{
	Name:    "if-conversion",
	RunFunc: runIfConv,
})

const maxSpeculated = 4

func runIfConv(ctx *Context, f *ir.Func) bool {
	changed := false
	for _, b := range append([]*ir.Block(nil), f.Blocks...) {
		t := b.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		s0, s1 := b.Succs[0], b.Succs[1]
		if s0 == s1 {
			continue
		}
		// Triangle: b -> {side, join}, side -> join.
		// Diamond:  b -> {side0, side1}, both -> join.
		var side0, side1, join *ir.Block
		switch {
		case oneWay(s0) && s0.Succs[0] == s1 && len(s0.Preds) == 1:
			side0, join = s0, s1
		case oneWay(s1) && s1.Succs[0] == s0 && len(s1.Preds) == 1:
			side1, join = s1, s0
		case oneWay(s0) && oneWay(s1) && s0.Succs[0] == s1.Succs[0] &&
			len(s0.Preds) == 1 && len(s1.Preds) == 1:
			side0, side1, join = s0, s1, s0.Succs[0]
		default:
			continue
		}
		if join == b || !speculatable(side0) || !speculatable(side1) {
			continue
		}
		// Move arm instructions into b (before the terminator), dropping
		// their variable bindings.
		hoistArm := func(s *ir.Block) {
			if s == nil {
				return
			}
			for _, v := range append([]*ir.Value(nil), s.Instrs...) {
				if v.Op.IsTerminator() {
					continue
				}
				if v.Op == ir.OpDbgValue {
					ir.RemoveValue(v)
					continue
				}
				ir.RemoveValue(v)
				v.Block = b
				insertBeforeTerm(b, v)
			}
		}
		hoistArm(side0)
		hoistArm(side1)

		// Join phis select between the two incoming columns.
		idxOf := func(p *ir.Block) int { return predIndexOf(join, p) }
		var i0, i1 int
		if side0 != nil {
			i0 = idxOf(side0)
		} else {
			i0 = idxOf(b)
		}
		if side1 != nil {
			i1 = idxOf(side1)
		} else {
			i1 = idxOf(b)
		}
		if i0 < 0 || i1 < 0 {
			continue
		}
		cond := t.Args[0]
		for _, phi := range append([]*ir.Value(nil), join.Phis()...) {
			sel := f.NewValue(b, ir.OpSelect, 0, cond, phi.Args[i0], phi.Args[i1])
			insertBeforeTerm(b, sel)
			// Temporarily rewrite the phi columns to the select; the
			// edge collapse below merges them.
			phi.Args[i0] = sel
			phi.Args[i1] = sel
		}
		// Collapse control flow: b jumps straight to join.
		for _, s := range []*ir.Block{side0, side1} {
			if s == nil {
				continue
			}
			if i := predIndexOf(s, b); i >= 0 {
				ir.RemovePredEdge(s, i)
			}
		}
		// Remove b's own direct edge to join if present (triangle).
		t.Op = ir.OpJmp
		t.Args = nil
		b.Succs = nil
		// Rebuild: join keeps one edge from b; phi columns for the two
		// old edges merge into one.
		mergeJoinEdges(join, b, side0, side1)
		ir.AddEdge(b, join)
		changed = true
	}
	if changed {
		ir.RemoveUnreachable(f)
	}
	return changed
}

// mergeJoinEdges removes join's pred columns that came from b, side0, and
// side1, then the caller re-adds a single b edge. Each phi's merged value
// was already rewritten to the select, so one surviving column suffices.
func mergeJoinEdges(join, b, side0, side1 *ir.Block) {
	drop := func(p *ir.Block) {
		if p == nil {
			return
		}
		for {
			i := predIndexOf(join, p)
			if i < 0 {
				return
			}
			ir.RemovePredEdge(join, i)
		}
	}
	// Record the select values before columns vanish.
	var sels []*ir.Value
	for _, phi := range join.Phis() {
		var sel *ir.Value
		for _, p := range []*ir.Block{side0, side1, b} {
			if p == nil {
				continue
			}
			if i := predIndexOf(join, p); i >= 0 {
				sel = phi.Args[i]
				break
			}
		}
		sels = append(sels, sel)
	}
	drop(side0)
	drop(side1)
	drop(b)
	// The caller adds the b edge back; append the recorded values.
	for i, phi := range join.Phis() {
		if sels[i] != nil {
			phi.Args = append(phi.Args, sels[i])
		}
	}
}

// oneWay reports whether s ends in an unconditional jump.
func oneWay(s *ir.Block) bool {
	t := s.Term()
	return t != nil && t.Op == ir.OpJmp
}

// speculatable reports whether every instruction in the arm may execute
// unconditionally: pure and cheap, plus debug markers.
func speculatable(s *ir.Block) bool {
	if s == nil {
		return true
	}
	n := 0
	for _, v := range s.Instrs {
		switch {
		case v.Op.IsTerminator(), v.Op == ir.OpDbgValue:
		case v.Op.IsPure(), v.Op == ir.OpConst:
			n++
		default:
			return false
		}
	}
	return n <= maxSpeculated
}
