package passes

import "debugtuner/internal/ir"

// SSA repair for passes that duplicate definitions along new paths
// (rotation's guard/latch tests, unrolling's peeled copies). After such a
// transform, an original value v may have several "definitions" of the
// same source-level quantity, and uses no longer dominated by v must be
// rewired through fresh phis at the iterated dominance frontier — the
// classic SSA-updater job.

// Def is one definition of the repaired quantity.
type Def struct {
	Block *ir.Block
	Val   *ir.Value
	// AtEnd marks edge-style definitions: the value takes effect at the
	// end of Block (e.g. "the induction variable equals its next value
	// on the latch exit edge") rather than at Val's own position.
	AtEnd bool
	// OnlyEdgeTo restricts an AtEnd definition to the single outgoing
	// edge leading to this block. A rotated latch redefines the quantity
	// only on its exit edge: re-entering the header must still observe
	// the previous iteration's value.
	OnlyEdgeTo *ir.Block
}

// repairItem is one value to repair together with its definitions, which
// must include the value itself (as an at-instruction def).
type repairItem struct {
	Orig *ir.Value
	Defs []Def
}

// repairer caches the dominance structures shared by a batch of repairs.
// A repair inserts phis and constants but never adds or removes CFG
// edges, so one dominator computation serves every value repaired after
// the same transform — recomputing per value made loop rotation
// quadratic on functions with many header-defined values.
type repairer struct {
	f    *ir.Func
	tree map[*ir.Block][]*ir.Block
	df   map[*ir.Block][]*ir.Block
}

// newRepairer computes the dominance structures once for a batch of
// repairs over f. It must be created after the transform's CFG edits are
// complete.
func newRepairer(f *ir.Func) *repairer {
	idom := ir.Dominators(f)
	return &repairer{
		f:    f,
		tree: ir.DomTree(f, idom),
		df:   dominanceFrontiers(f, idom),
	}
}

// repairValue is the single-shot form for passes repairing one value.
func repairValue(f *ir.Func, orig *ir.Value, defs []Def) {
	newRepairer(f).repairValues([]repairItem{{orig, defs}})
}

// repairValues rewires all uses of each item's Orig so that each use
// observes the correct reaching definition among the item's Defs, in a
// single dominator-tree walk for the whole batch. Items must be disjoint:
// no value may be an instruction-style definition for two items. New phis
// carry no source line and no variable binding; DbgValue uses are rewired
// like ordinary uses so the binding stays accurate where a definition
// reaches.
func (r *repairer) repairValues(items []repairItem) {
	f, tree, df := r.f, r.tree, r.df
	n := len(items)

	// Phi placement at the iterated dominance frontier of each item's def
	// blocks. phiOf identifies a placed phi's item during the walk.
	phiAt := make([]map[*ir.Block]*ir.Value, n)
	phiOf := map[*ir.Value]int{}
	for k, item := range items {
		phiAt[k] = map[*ir.Block]*ir.Value{}
		var work []*ir.Block
		inWork := map[*ir.Block]bool{}
		for _, d := range item.Defs {
			if !inWork[d.Block] {
				inWork[d.Block] = true
				work = append(work, d.Block)
			}
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, j := range df[b] {
				if phiAt[k][j] != nil {
					continue
				}
				phi := f.NewValue(j, ir.OpPhi, 0)
				phi.Args = make([]*ir.Value, len(j.Preds))
				j.Instrs = append([]*ir.Value{phi}, j.Instrs...)
				phiAt[k][j] = phi
				phiOf[phi] = k
				if !inWork[j] {
					inWork[j] = true
					work = append(work, j)
				}
			}
		}
	}

	// Definition lookup tables across the batch.
	type edgeDef struct {
		item int
		val  *ir.Value
		only *ir.Block
	}
	origIdx := map[*ir.Value]int{}
	instrDef := map[*ir.Value]int{}
	endDefs := map[*ir.Block][]edgeDef{}
	for k, item := range items {
		origIdx[item.Orig] = k
		for _, d := range item.Defs {
			if d.AtEnd {
				endDefs[d.Block] = append(endDefs[d.Block], edgeDef{k, d.Val, d.OnlyEdgeTo})
			} else {
				instrDef[d.Val] = k
			}
		}
	}

	var zero *ir.Value
	getZero := func() *ir.Value {
		if zero == nil {
			entry := f.Entry()
			zero = f.NewValue(entry, ir.OpConst, 0)
			entry.Instrs = append([]*ir.Value{zero}, entry.Instrs...)
		}
		return zero
	}

	// rename walks the dominator tree once, tracking every item's current
	// reaching definition.
	var rename func(b *ir.Block, cur []*ir.Value)
	rename = func(b *ir.Block, incoming []*ir.Value) {
		cur := append([]*ir.Value(nil), incoming...)
		for k := range items {
			if phi := phiAt[k][b]; phi != nil {
				cur[k] = phi
			}
		}
		for _, v := range b.Instrs {
			if v.Op != ir.OpPhi {
				for i, a := range v.Args {
					if k, ok := origIdx[a]; ok &&
						v != items[k].Orig && cur[k] != nil && cur[k] != items[k].Orig {
						v.Args[i] = cur[k]
					}
				}
			}
			if k, ok := instrDef[v]; ok {
				cur[k] = v
			}
		}
		var onlyEdges []edgeDef
		for _, ed := range endDefs[b] {
			if ed.only == nil {
				cur[ed.item] = ed.val
			} else {
				onlyEdges = append(onlyEdges, ed)
			}
		}
		seenSucc := map[*ir.Block]bool{}
		for _, s := range b.Succs {
			if seenSucc[s] {
				continue
			}
			seenSucc[s] = true
			edgeCur := cur
			for _, ed := range onlyEdges {
				if ed.only == s {
					if &edgeCur[0] == &cur[0] {
						edgeCur = append([]*ir.Value(nil), cur...)
					}
					edgeCur[ed.item] = ed.val
				}
			}
			for pi, p := range s.Preds {
				if p != b {
					continue
				}
				for _, v := range s.Instrs {
					if v.Op != ir.OpPhi {
						break
					}
					if k, ok := phiOf[v]; ok {
						if phiAt[k][s] == v {
							if edgeCur[k] != nil {
								v.Args[pi] = edgeCur[k]
							} else {
								v.Args[pi] = getZero()
							}
						}
						continue
					}
					if k, ok := origIdx[v.Args[pi]]; ok &&
						edgeCur[k] != nil && edgeCur[k] != items[k].Orig {
						v.Args[pi] = edgeCur[k]
					}
				}
			}
		}
		for _, c := range tree[b] {
			rename(c, cur)
		}
	}
	rename(f.Entry(), make([]*ir.Value, n))

	// Any inserted phi argument still nil sits on a path with no
	// reaching definition (the value is unused there); zero keeps the
	// IR well formed.
	for k := range items {
		for _, phi := range phiAt[k] {
			for i, a := range phi.Args {
				if a == nil {
					phi.Args[i] = getZero()
				}
			}
		}
	}
}
