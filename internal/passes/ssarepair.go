package passes

import "debugtuner/internal/ir"

// SSA repair for passes that duplicate definitions along new paths
// (rotation's guard/latch tests, unrolling's peeled copies). After such a
// transform, an original value v may have several "definitions" of the
// same source-level quantity, and uses no longer dominated by v must be
// rewired through fresh phis at the iterated dominance frontier — the
// classic SSA-updater job.

// Def is one definition of the repaired quantity.
type Def struct {
	Block *ir.Block
	Val   *ir.Value
	// AtEnd marks edge-style definitions: the value takes effect at the
	// end of Block (e.g. "the induction variable equals its next value
	// on the latch exit edge") rather than at Val's own position.
	AtEnd bool
	// OnlyEdgeTo restricts an AtEnd definition to the single outgoing
	// edge leading to this block. A rotated latch redefines the quantity
	// only on its exit edge: re-entering the header must still observe
	// the previous iteration's value.
	OnlyEdgeTo *ir.Block
}

// repairValue rewires all uses of orig so that each observes the correct
// reaching definition among defs. defs must include orig itself (as an
// at-instruction def). New phis carry no source line and no variable
// binding; DbgValue uses are rewired like ordinary uses so the binding
// stays accurate where a definition reaches.
func repairValue(f *ir.Func, orig *ir.Value, defs []Def) {
	idom := ir.Dominators(f)
	tree := ir.DomTree(f, idom)
	df := dominanceFrontiers(f, idom)

	// Phi placement at the iterated dominance frontier of def blocks.
	phiAt := map[*ir.Block]*ir.Value{}
	var work []*ir.Block
	inWork := map[*ir.Block]bool{}
	for _, d := range defs {
		if !inWork[d.Block] {
			inWork[d.Block] = true
			work = append(work, d.Block)
		}
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, j := range df[b] {
			if phiAt[j] != nil {
				continue
			}
			phi := f.NewValue(j, ir.OpPhi, 0)
			phi.Args = make([]*ir.Value, len(j.Preds))
			j.Instrs = append([]*ir.Value{phi}, j.Instrs...)
			phiAt[j] = phi
			if !inWork[j] {
				inWork[j] = true
				work = append(work, j)
			}
		}
	}

	type edgeDef struct {
		val  *ir.Value
		only *ir.Block
	}
	instrDef := map[*ir.Value]bool{}
	endDef := map[*ir.Block]edgeDef{}
	for _, d := range defs {
		if d.AtEnd {
			endDef[d.Block] = edgeDef{d.Val, d.OnlyEdgeTo}
		} else {
			instrDef[d.Val] = true
		}
	}

	var zero *ir.Value
	getZero := func() *ir.Value {
		if zero == nil {
			entry := f.Entry()
			zero = f.NewValue(entry, ir.OpConst, 0)
			entry.Instrs = append([]*ir.Value{zero}, entry.Instrs...)
		}
		return zero
	}

	var rename func(b *ir.Block, cur *ir.Value)
	rename = func(b *ir.Block, cur *ir.Value) {
		if phi := phiAt[b]; phi != nil {
			cur = phi
		}
		for _, v := range b.Instrs {
			if v.Op != ir.OpPhi && v != orig {
				for i, a := range v.Args {
					if a == orig && cur != nil && cur != orig {
						v.Args[i] = cur
					}
				}
			}
			if instrDef[v] {
				cur = v
			}
		}
		ed, hasEd := endDef[b]
		if hasEd && ed.only == nil {
			cur = ed.val
		}
		seenSucc := map[*ir.Block]bool{}
		for _, s := range b.Succs {
			if seenSucc[s] {
				continue
			}
			seenSucc[s] = true
			edgeCur := cur
			if hasEd && ed.only == s {
				edgeCur = ed.val
			}
			for pi, p := range s.Preds {
				if p != b {
					continue
				}
				for _, v := range s.Instrs {
					if v.Op != ir.OpPhi {
						break
					}
					if v == phiAt[s] {
						if edgeCur != nil {
							v.Args[pi] = edgeCur
						} else {
							v.Args[pi] = getZero()
						}
						continue
					}
					if v.Args[pi] == orig && edgeCur != nil && edgeCur != orig {
						v.Args[pi] = edgeCur
					}
				}
			}
		}
		for _, c := range tree[b] {
			rename(c, cur)
		}
	}
	rename(f.Entry(), nil)

	// Any inserted phi argument still nil sits on a path with no
	// reaching definition (the value is unused there); zero keeps the
	// IR well formed.
	for _, phi := range phiAt {
		for i, a := range phi.Args {
			if a == nil {
				phi.Args[i] = getZero()
			}
		}
	}
}
