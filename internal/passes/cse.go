package passes

import (
	"fmt"

	"debugtuner/internal/ir"
)

// The CSE family. early-cse is a dominator-scoped common-subexpression
// eliminator over pure operations and global loads. gvn additionally
// value-numbers pure calls and array loads (with conservative
// invalidation). gcc's tree-fre is registered onto the gvn
// implementation. In every case, the redundant instruction is replaced
// through RAUW — so under the gcc-like policy a variable bound to a
// cross-block redundancy loses its binding, one of the measured loss
// mechanisms.
var (
	earlyCSEPass = Register(&Pass{
		Name: "early-cse",
		RunFunc: func(ctx *Context, f *ir.Func) bool {
			return runCSE(ctx, f, false)
		},
	})
	gvnPass = Register(&Pass{
		Name: "gvn",
		RunFunc: func(ctx *Context, f *ir.Func) bool {
			return runCSE(ctx, f, true)
		},
	})
	treeFREPass = Register(&Pass{
		Name: "tree-fre",
		RunFunc: func(ctx *Context, f *ir.Func) bool {
			return runCSE(ctx, f, true)
		},
	})
)

// cseKey identifies a value-numbering equivalence class.
type cseKey struct {
	op   ir.Op
	aux  string
	auxi int64
	a, b int // argument value numbers (b = -1 when unary)
	c    int
	gen  int // memory generation for loads/calls
}

func runCSE(ctx *Context, f *ir.Func, strong bool) bool {
	ir.RemoveUnreachable(f)
	idom := ir.Dominators(f)
	tree := ir.DomTree(f, idom)
	changed := false

	// available maps a key to the dominating value providing it. Scoping
	// is handled by recording insertions and undoing on exit.
	//
	// Memory-dependent entries (loads) are only valid between clobbers
	// within a single block: a sibling path between dominator-tree nodes
	// may clobber memory, so cross-block load reuse would be unsound.
	// Each block entry therefore starts a fresh memory generation that is
	// never restored, and loads carry the generation in their key.
	available := map[cseKey]*ir.Value{}
	memGen := 0

	var walk func(b *ir.Block)
	walk = func(b *ir.Block) {
		type undo struct {
			key  cseKey
			prev *ir.Value
			had  bool
		}
		var undos []undo
		memGen++ // new block: invalidate all load CSE from other blocks

		for _, v := range append([]*ir.Value(nil), b.Instrs...) {
			key, ok := keyFor(v, strong, memGen, f.Prog)
			if !ok {
				// Invalidate memory state on writes and unknown calls.
				if clobbers(v, f.Prog) {
					memGen++
				}
				continue
			}
			if prev, hit := available[key]; hit {
				RAUW(ctx, f, v, prev)
				ir.RemoveValue(v)
				changed = true
				continue
			}
			old, had := available[key]
			undos = append(undos, undo{key, old, had})
			available[key] = v
		}
		for _, c := range tree[b] {
			walk(c)
		}
		for i := len(undos) - 1; i >= 0; i-- {
			u := undos[i]
			if u.had {
				available[u.key] = u.prev
			} else {
				delete(available, u.key)
			}
		}
	}
	walk(f.Entry())
	return changed
}

// keyFor builds the value-numbering key for v, or reports that v is not
// CSE-able.
func keyFor(v *ir.Value, strong bool, memGen int, prog *ir.Program) (cseKey, bool) {
	key := cseKey{op: v.Op, auxi: v.AuxInt, aux: v.Aux, a: -1, b: -1, c: -1}
	argID := func(i int) int { return v.Args[i].ID }
	switch {
	case v.Op == ir.OpConst:
		return key, true
	case v.Op.IsPure() && v.Op != ir.OpParam:
		switch len(v.Args) {
		case 1:
			key.a = argID(0)
		case 2:
			key.a, key.b = argID(0), argID(1)
			if v.Op.IsCommutative() && key.a > key.b {
				key.a, key.b = key.b, key.a
			}
		case 3:
			key.a, key.b, key.c = argID(0), argID(1), argID(2)
		}
		return key, true
	case v.Op == ir.OpGLoad:
		key.gen = memGen
		return key, true
	case strong && v.Op == ir.OpALoad:
		key.a, key.b = argID(0), argID(1)
		key.gen = memGen
		return key, true
	case strong && v.Op == ir.OpCall:
		callee := prog.Func(v.Aux)
		if callee == nil || !callee.Pure {
			return key, false
		}
		switch len(v.Args) {
		case 0:
		case 1:
			key.a = argID(0)
		case 2:
			key.a, key.b = argID(0), argID(1)
		case 3:
			key.a, key.b, key.c = argID(0), argID(1), argID(2)
		default:
			// Hash a digest of the remaining arguments into aux.
			key.a, key.b, key.c = argID(0), argID(1), argID(2)
			rest := ""
			for _, a := range v.Args[3:] {
				rest += fmt.Sprintf(",%d", a.ID)
			}
			key.aux += rest
		}
		return key, true
	}
	return key, false
}

// clobbers reports whether v invalidates memory-dependent CSE entries.
func clobbers(v *ir.Value, prog *ir.Program) bool {
	switch v.Op {
	case ir.OpGStore, ir.OpAStore, ir.OpVStore2, ir.OpSlotStore:
		return true
	case ir.OpCall:
		callee := prog.Func(v.Aux)
		return callee == nil || !callee.Pure
	}
	return false
}
