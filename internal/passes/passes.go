// Package passes implements the MiniC middle-end optimization passes.
//
// Each pass transforms SSA IR and carries the same debug-metadata
// obligations a production compiler pass has:
//
//   - replacing a value must rewrite or drop the OpDbgValue markers bound
//     to it (the salvage policy differs between the gcc-like and
//     clang-like profiles, which is one source of the paper's
//     cross-compiler differences in Table IV);
//   - deleting a value turns its DbgValues into "optimized out";
//   - moving code across blocks clears the instruction's source line,
//     exactly as LLVM's hoist/sink utilities do, which removes entries
//     from the line table.
//
// DebugTuner measures the aggregate effect of these obligations being
// imperfectly dischargeable.
package passes

import (
	"fmt"
	"time"

	"debugtuner/internal/ir"
	"debugtuner/internal/telemetry"
)

// Context carries compilation-wide settings into passes.
type Context struct {
	Prog *ir.Program

	// PassName is the name of the pass currently executing under
	// (*Pass).Run, set only while telemetry is enabled; the debug
	// helpers use it to attribute damage events to the responsible
	// toggle.
	PassName string

	// RunLabel, when nonempty, overrides the ledger attribution name
	// for the next pass execution. The pipeline labels its always-on
	// cleanup entries "cleanup/<name>" so the damage report can rank
	// user-visible toggles separately from mandatory bookkeeping runs
	// that no configuration can disable.
	RunLabel string

	// Salvage selects the clang-like debug policy: on replace-all-uses,
	// DbgValues follow the replacement value unconditionally. The
	// gcc-like policy (false) only follows replacements within the same
	// block and drops the binding otherwise.
	Salvage bool

	// InlineBudget is the cost threshold for the general inliner.
	InlineBudget int
	// InlineSmall enables inlining of very small callees
	// (inline-small-functions).
	InlineSmall bool
	// InlineOnce enables inlining of functions called exactly once
	// (inline-fncs-called-once).
	InlineOnce bool
	// InlineGrowth enables the aggressive growth inliner
	// (inline-functions at O2/O3).
	InlineGrowth bool
	// UnitAtATime is set by toplevel-reorder: the inliner may inline
	// callees defined later in the file.
	UnitAtATime bool

	// UnrollFactor is the partial unroll factor (0 disables partial
	// unrolling); full unrolling of tiny constant-trip loops is always
	// considered when loop-unroll runs.
	UnrollFactor int

	// SampleLines is an AutoFDO line profile: the inliner boosts hot
	// call sites and shrinks cold ones. Nil without a profile.
	SampleLines map[int]int64
	// SampleMax is the hottest line's sample count.
	SampleMax int64
}

// CallHeat classifies a call site's line under the sample profile:
// +1 hot, -1 cold, 0 unknown/no profile.
func (ctx *Context) CallHeat(line int) int {
	if ctx.SampleLines == nil || ctx.SampleMax == 0 {
		return 0
	}
	c := ctx.SampleLines[line]
	switch {
	case float64(c) >= float64(ctx.SampleMax)/8:
		return 1
	case c == 0:
		return -1
	}
	return 0
}

// Pass is a registered optimization pass.
type Pass struct {
	// Name is the toggle name used by optimization levels and by
	// DebugTuner's pass-disabling machinery.
	Name string
	// Backend marks passes that run on the lower-level representation
	// (annotated '*' in the paper's tables). Backend passes live in the
	// codegen package; they are registered here for naming only.
	Backend bool
	// RunFunc runs the pass on one function and reports whether it
	// changed anything. Nil for module passes.
	RunFunc func(ctx *Context, f *ir.Func) bool
	// RunModule runs the pass once per program.
	RunModule func(ctx *Context) bool
}

var registry = map[string]*Pass{}

// Register adds a pass to the registry; duplicate names panic at init.
func Register(p *Pass) *Pass {
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("passes: duplicate pass %q", p.Name))
	}
	registry[p.Name] = p
	return p
}

// Lookup finds a pass by name, or nil.
func Lookup(name string) *Pass { return registry[name] }

// Run executes the pass over the whole program. With telemetry enabled
// it additionally records, per function, the pass's wall time,
// instruction delta, and debug-damage events (see damage.go); the
// disabled path pays one atomic pointer load.
func (p *Pass) Run(ctx *Context) bool {
	snk := telemetry.Active()
	if snk == nil {
		return p.run(ctx)
	}
	return p.runInstrumented(ctx, snk)
}

// run is the uninstrumented execution path.
func (p *Pass) run(ctx *Context) bool {
	if p.RunModule != nil {
		return p.RunModule(ctx)
	}
	changed := false
	for _, f := range ctx.Prog.Funcs {
		if p.RunFunc(ctx, f) {
			changed = true
		}
	}
	return changed
}

// runInstrumented wraps each function's transformation in a
// before/after debug-metadata snapshot and folds the diff into the
// sink's ledger under this pass's name.
func (p *Pass) runInstrumented(ctx *Context, snk *telemetry.Sink) bool {
	name := p.Name
	if ctx.RunLabel != "" {
		name = ctx.RunLabel
	}
	prev := ctx.PassName
	ctx.PassName = name
	defer func() { ctx.PassName = prev }()

	if p.RunModule != nil {
		before := make(map[string]*funcSnap, len(ctx.Prog.Funcs))
		for _, f := range ctx.Prog.Funcs {
			before[f.Name] = snapshotFunc(f)
		}
		t0 := time.Now()
		changed := p.RunModule(ctx)
		wall := time.Since(t0).Nanoseconds()
		// Module passes (the inliner, toplevel-reorder) transform the
		// whole program at once; their wall time is split evenly over
		// the surviving functions.
		if n := int64(len(ctx.Prog.Funcs)); n > 0 {
			wall /= n
		}
		for _, f := range ctx.Prog.Funcs {
			d := diffFunc(before[f.Name], f)
			d.Runs, d.WallNS = 1, wall
			snk.AddDamage(name, f.Name, d)
		}
		return changed
	}

	changed := false
	for _, f := range ctx.Prog.Funcs {
		before := snapshotFunc(f)
		t0 := time.Now()
		if p.RunFunc(ctx, f) {
			changed = true
		}
		d := diffFunc(before, f)
		d.Runs, d.WallNS = 1, time.Since(t0).Nanoseconds()
		snk.AddDamage(name, f.Name, d)
	}
	return changed
}

// ---- Debug metadata helpers ----

// RAUW replaces every use of old with new_, applying the context's debug
// salvage policy to DbgValue uses: under the clang-like policy the
// binding follows the replacement; under the gcc-like policy it follows
// only when the replacement lives in the same block as the old value,
// and is dropped ("optimized out") otherwise.
func RAUW(ctx *Context, f *ir.Func, old, new_ *ir.Value) {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			for i, a := range v.Args {
				if a != old {
					continue
				}
				if v.Op == ir.OpDbgValue {
					if ctx.Salvage || new_.Block == old.Block {
						v.Args[i] = new_
						if ctx.PassName != "" {
							telemetry.AddDamage(ctx.PassName, f.Name,
								telemetry.Damage{DbgSalvaged: 1})
						}
					} else {
						v.Args = nil
						// A gcc-policy cross-block drop ends the
						// variable's location range at the
						// replacement point. The binding loss itself
						// is counted by the pass-level snapshot diff.
						if ctx.PassName != "" {
							telemetry.AddDamage(ctx.PassName, f.Name,
								telemetry.Damage{RangesEnded: 1})
						}
					}
					continue
				}
				v.Args[i] = new_
			}
		}
	}
}

// DropDefDebug marks every DbgValue bound to v as optimized out. Called
// when v is deleted without a replacement.
func DropDefDebug(f *ir.Func, v *ir.Value) {
	for _, b := range f.Blocks {
		for _, w := range b.Instrs {
			if w.Op == ir.OpDbgValue && len(w.Args) == 1 && w.Args[0] == v {
				w.Args = nil
			}
		}
	}
}

// CodeUseCounts counts uses excluding DbgValue references: debug markers
// never keep a value alive, mirroring LLVM.
func CodeUseCounts(f *ir.Func) []int {
	uses := make([]int, f.NumValueIDs())
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpDbgValue {
				continue
			}
			for _, a := range v.Args {
				uses[a.ID]++
			}
		}
	}
	return uses
}

// MoveToBlockEnd moves v before the terminator of dst, clearing its
// source line when it crosses blocks (the hoist/sink line-drop rule).
func MoveToBlockEnd(v *ir.Value, dst *ir.Block) {
	if v.Block == dst {
		return
	}
	ir.RemoveValue(v)
	v.Block = dst
	v.Line = 0
	n := len(dst.Instrs)
	if n > 0 && dst.Instrs[n-1].Op.IsTerminator() {
		dst.Instrs = append(dst.Instrs, nil)
		copy(dst.Instrs[n:], dst.Instrs[n-1:])
		dst.Instrs[n-1] = v
	} else {
		dst.Instrs = append(dst.Instrs, v)
	}
}

// IsRemovable reports whether v can be deleted when it has no code uses.
// Fresh allocations are removable despite being "writes": an unused
// handle is unobservable under MiniC semantics. Calls are removable only
// when the callee is known pure.
func IsRemovable(prog *ir.Program, v *ir.Value) bool {
	switch {
	case v.Op.IsPure(), v.Op.IsMemRead(), v.Op == ir.OpNewArray:
		return true
	case v.Op == ir.OpCall:
		callee := prog.Func(v.Aux)
		return callee != nil && callee.Pure
	}
	return false
}
