package passes

import (
	"debugtuner/internal/ir"
	"debugtuner/internal/telemetry"
)

// The debug-damage ledger compares a function's debug metadata before
// and after each pass execution. Two event classes come from hooks
// inside the helpers (RAUW records salvages and gcc-policy range ends,
// which the diff cannot infer); everything else — bindings turned
// "optimized out" or deleted, line attributions zeroed or rewritten,
// instruction churn — falls out of the snapshot diff below. Values are
// identified by pointer: passes mutate and move *ir.Value nodes but
// clone them only across functions (inlining), so a value present in
// both snapshots is the same instruction.

// funcSnap is the per-function debug-metadata snapshot.
type funcSnap struct {
	// instrs counts non-debug instructions.
	instrs int
	// lines maps each non-debug instruction to its source line.
	lines map[*ir.Value]int
	// bound maps each DbgValue marker to whether it carries a binding.
	bound map[*ir.Value]bool
}

// snapshotFunc captures f's current debug metadata.
func snapshotFunc(f *ir.Func) *funcSnap {
	s := &funcSnap{
		lines: map[*ir.Value]int{},
		bound: map[*ir.Value]bool{},
	}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpDbgValue {
				s.bound[v] = len(v.Args) > 0
				continue
			}
			s.instrs++
			s.lines[v] = v.Line
		}
	}
	return s
}

// diffFunc compares f against its snapshot and returns the damage
// delta. A nil snapshot (a function the pass created) contributes
// nothing.
func diffFunc(before *funcSnap, f *ir.Func) telemetry.Damage {
	var d telemetry.Damage
	if before == nil {
		return d
	}
	instrs := 0
	present := map[*ir.Value]bool{}
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			if v.Op == ir.OpDbgValue {
				present[v] = true
				if before.bound[v] && len(v.Args) == 0 {
					d.DbgDropped++
				}
				continue
			}
			instrs++
			if old, ok := before.lines[v]; ok && old != v.Line {
				if v.Line == 0 {
					d.LinesZeroed++
				} else {
					d.LinesChanged++
				}
			}
		}
	}
	// Markers deleted outright (if-conversion removes arm bindings,
	// DCE sweeps already-dropped ones) count as dropped only if they
	// still carried a binding.
	for v, wasBound := range before.bound {
		if wasBound && !present[v] {
			d.DbgDropped++
		}
	}
	d.InstrDelta = int64(instrs - before.instrs)
	return d
}
