package experiments

import (
	"bytes"
	"io"
	"testing"

	"debugtuner/internal/telemetry"
	"debugtuner/internal/workerpool"
)

// TestStdoutUnaffectedByTelemetry is the determinism contract behind
// the -trace/-metrics flags: experiment output must stay byte-identical
// whether telemetry is collecting or not, at any worker count. Each
// variant gets a fresh runner so nothing is served from a warm cache.
func TestStdoutUnaffectedByTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := Options{
		SynthCount:  8,
		CorpusExecs: 120,
		SampleEvery: 997,
		Dy:          []int{3},
		SpecSubset:  []string{"531.deepsjeng"},
	}
	render := func(telemetryOn bool, jobs int) []byte {
		t.Helper()
		if telemetryOn {
			prev := telemetry.Install(telemetry.NewSink())
			defer telemetry.Install(prev)
		}
		workerpool.SetWorkers(jobs)
		defer workerpool.SetWorkers(0)
		r := NewRunner(opts)
		var buf bytes.Buffer
		for _, run := range []func(io.Writer) error{r.Table1, r.Table4} {
			if err := run(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	ref := render(false, 1)
	for _, v := range []struct {
		name string
		on   bool
		jobs int
	}{
		{"telemetry-j1", true, 1},
		{"plain-j8", false, 8},
		{"telemetry-j8", true, 8},
	} {
		if got := render(v.on, v.jobs); !bytes.Equal(got, ref) {
			t.Errorf("%s output differs from plain-j1 reference (%d vs %d bytes)",
				v.name, len(got), len(ref))
		}
	}
}
