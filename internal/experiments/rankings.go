package experiments

import (
	"context"
	"fmt"
	"io"

	"debugtuner/internal/api"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/suite"
	"debugtuner/internal/tuner"
	"debugtuner/internal/workerpool"
)

// Table5 prints the top-10 critical passes per gcc level (paper Table V);
// Table6 the clang equivalent (paper Table VI). Back-end passes carry the
// paper's '*' annotation.
func (r *Runner) Table5(w io.Writer) error { return r.topPasses(w, pipeline.GCC, "Table V") }

// Table6 prints the clang ranking.
func (r *Runner) Table6(w io.Writer) error { return r.topPasses(w, pipeline.Clang, "Table VI") }

func (r *Runner) topPasses(w io.Writer, p pipeline.Profile, title string) error {
	fmt.Fprintf(w, "%s — top 10 critical optimization passes in %s (%% improvement)\n", title, p)
	var columns [][]tuner.RankedPass
	levels := pipeline.Levels(p)
	headers := make([]string, len(levels))
	for li, l := range levels {
		la, err := r.Analysis(p, l)
		if err != nil {
			return err
		}
		headers[li] = l
		if q := la.Quarantined(); q > 0 {
			// The gap is explicit: rank aggregation already excluded these
			// cells, the header says how many are missing.
			headers[li] = fmt.Sprintf("%s [QUARANTINED(%d)]", l, q)
		}
		top := la.Ranking
		if len(top) > 10 {
			top = top[:10]
		}
		columns = append(columns, top)
	}
	fmt.Fprintf(w, "%-3s", "#")
	for _, h := range headers {
		fmt.Fprintf(w, " | %-32s", h)
	}
	fmt.Fprintln(w)
	hr(w, 4+36*len(levels))
	for i := 0; i < 10; i++ {
		fmt.Fprintf(w, "%-3d", i+1)
		for _, col := range columns {
			if i < len(col) {
				name := col[i].Display
				if col[i].Backend {
					name += " *"
				}
				fmt.Fprintf(w, " | %-25s %6.2f", name, col[i].GeoIncrementPct)
			} else {
				fmt.Fprintf(w, " | %-32s", "")
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// configPoint measures one configuration on both axes. A quarantined
// measurement on either axis — or any quarantined subject inside the
// product mean, whose loss would silently shift the denominator — marks
// the whole point as a gap rather than plotting misleading coordinates.
func (r *Runner) configPoint(cfg pipeline.Config) (tuner.Point, error) {
	st, err := r.suiteProductStat(cfg)
	if resilience.IsQuarantined(err) {
		return tuner.Point{Label: cfg.Name(), Quarantined: true}, nil
	}
	if err != nil {
		return tuner.Point{}, err
	}
	speed, err := r.SuiteSpeedup(cfg)
	if resilience.IsQuarantined(err) {
		return tuner.Point{Label: cfg.Name(), Quarantined: true}, nil
	}
	if err != nil {
		return tuner.Point{}, err
	}
	return tuner.Point{
		Label: cfg.Name(), Debug: st.Mean, Speedup: speed,
		Quarantined: st.Quarantined > 0,
	}, nil
}

// allConfigPoints enumerates standard levels plus every Ox-dy config for
// a profile.
func (r *Runner) allConfigPoints(p pipeline.Profile) ([]tuner.Point, error) {
	var pts []tuner.Point
	for _, l := range pipeline.Levels(p) {
		pt, err := r.configPoint(pipeline.MustConfig(p, l))
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
		la, err := r.Analysis(p, l)
		if err != nil {
			return nil, err
		}
		for _, cfg := range la.Configs(r.Opts.Dy) {
			pt, err := r.configPoint(cfg)
			if err != nil {
				return nil, err
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// Fig2 prints the debuggability/speedup scatter and its Pareto front for
// both profiles (paper Figure 2, with Tables XIII/XIV values). The table
// is rendered from the same api.ParetoResult struct the tunerd server
// serves, so figure and service response cannot drift.
func (r *Runner) Fig2(w io.Writer) error {
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		pts, err := r.allConfigPoints(p)
		if err != nil {
			return err
		}
		res := api.ParetoResultFrom(string(p), "", pts)
		api.RenderPareto(w, fmt.Sprintf(
			"Figure 2 (%s) — product metric vs speedup over O0; * = Pareto-optimal", p), res)
	}
	return nil
}

// Table8 prints the relative debuggability improvement and speedup
// reduction of every Ox-dy configuration over its reference level
// (paper Table VIII).
func (r *Runner) Table8(w io.Writer) error {
	fmt.Fprintln(w, "Table VIII — Ox-dy vs Ox: Δ debug availability (%) and Δ speedup (%)")
	fmt.Fprintf(w, "%-6s %-6s", "comp", "config")
	for _, p := range []pipeline.Profile{pipeline.GCC} {
		_ = p
	}
	fmt.Fprintf(w, " | %22s | %22s\n", "Δ debug per level", "Δ speedup per level")
	hr(w, 100)
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		levels := pipeline.Levels(p)
		for _, y := range r.Opts.Dy {
			fmt.Fprintf(w, "%-6s Ox-d%-2d |", p, y)
			var dbgCells, spdCells string
			for _, l := range levels {
				ref, err := r.configPoint(pipeline.MustConfig(p, l))
				if err != nil {
					return err
				}
				la, err := r.Analysis(p, l)
				if err != nil {
					return err
				}
				cfg := la.Configs([]int{y})[0]
				pt, err := r.configPoint(cfg)
				if err != nil {
					return err
				}
				if ref.Quarantined || pt.Quarantined {
					dbgCells += fmt.Sprintf(" %s:%6s", l, "QUAR")
					spdCells += fmt.Sprintf(" %s:%6s", l, "QUAR")
					continue
				}
				dbgCells += fmt.Sprintf(" %s:%+6.2f", l, 100*(pt.Debug-ref.Debug)/ref.Debug)
				spdCells += fmt.Sprintf(" %s:%+6.2f", l, 100*(pt.Speedup-ref.Speedup)/ref.Speedup)
			}
			fmt.Fprintf(w, " debug:%s | speedup:%s\n", dbgCells, spdCells)
		}
	}
	return nil
}

// Table9 prints per-program products for gcc Ox-dy (paper Table IX);
// Table10 the clang version (paper Table X).
func (r *Runner) Table9(w io.Writer) error { return r.perProgramDy(w, pipeline.GCC, "Table IX") }

// Table10 is the clang per-program table.
func (r *Runner) Table10(w io.Writer) error { return r.perProgramDy(w, pipeline.Clang, "Table X") }

func (r *Runner) perProgramDy(w io.Writer, p pipeline.Profile, title string) error {
	subjects, err := r.Suite()
	if err != nil {
		return err
	}
	levels := pipeline.Levels(p)
	fmt.Fprintf(w, "%s — per-program product metric for %s Ox-dy configurations\n", title, p)
	// The Ox-dy configurations per level are fixed once the analyses
	// exist, so resolve them up front and fan the per-subject
	// measurements out; rows print in suite order.
	for _, y := range r.Opts.Dy {
		fmt.Fprintf(w, "-- Ox-d%d --\n%-10s |", y, "program")
		for _, l := range levels {
			fmt.Fprintf(w, " %6s", l)
		}
		fmt.Fprintln(w)
		cfgs := make([]pipeline.Config, len(levels))
		for li, l := range levels {
			la, err := r.Analysis(p, l)
			if err != nil {
				return err
			}
			cfgs[li] = la.Configs([]int{y})[0]
		}
		type dyCell struct {
			val  float64
			quar bool
		}
		rows, err := workerpool.Map(context.Background(), subjects,
			func(_ context.Context, _ int, s suite.Subject) ([]dyCell, error) {
				vals := make([]dyCell, len(cfgs))
				for li, cfg := range cfgs {
					m, err := debuggable(s).Product(cfg)
					if resilience.IsQuarantined(err) {
						vals[li] = dyCell{quar: true}
						continue
					}
					if err != nil {
						return nil, err
					}
					vals[li] = dyCell{val: m}
				}
				return vals, nil
			})
		if err != nil {
			return err
		}
		sums := make([]float64, len(levels))
		counts := make([]int, len(levels))
		for si, s := range subjects {
			fmt.Fprintf(w, "%-10s |", s.Name())
			for li := range levels {
				c := rows[si][li]
				if c.quar {
					fmt.Fprintf(w, " %6s", "QUAR")
					continue
				}
				sums[li] += c.val
				counts[li]++
				fmt.Fprintf(w, " %6.4f", c.val)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-10s |", "average")
		for li := range levels {
			if counts[li] == 0 {
				fmt.Fprintf(w, " %6s", "QUAR")
				continue
			}
			fmt.Fprintf(w, " %6.4f", sums[li]/float64(counts[li]))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table11 prints per-benchmark speedups over O0 for the standard and
// Ox-dy configurations (paper Table XI); Table12 derives the percentage
// change against the reference level (paper Table XII).
func (r *Runner) Table11(w io.Writer) error {
	fmt.Fprintln(w, "Table XI — SPEC speedups over O0 (standard and Ox-dy)")
	return r.specTable(w, false)
}

// Table12 prints the relative variant.
func (r *Runner) Table12(w io.Writer) error {
	fmt.Fprintln(w, "Table XII — Ox-dy percentage change vs reference level")
	return r.specTable(w, true)
}

func (r *Runner) specTable(w io.Writer, relative bool) error {
	for _, bench := range r.specNames() {
		fmt.Fprintf(w, "%s:\n", bench)
		for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
			for _, l := range pipeline.Levels(p) {
				base, err := specSpeedup(bench, pipeline.MustConfig(p, l))
				baseQuar := resilience.IsQuarantined(err)
				if err != nil && !baseQuar {
					return err
				}
				if baseQuar {
					fmt.Fprintf(w, "  %-5s %-3s std=%5sx", p, l, "QUAR")
				} else {
					fmt.Fprintf(w, "  %-5s %-3s std=%5.2fx", p, l, base)
				}
				la, err := r.Analysis(p, l)
				if err != nil {
					return err
				}
				for _, y := range r.Opts.Dy {
					cfg := la.Configs([]int{y})[0]
					s, err := specSpeedup(bench, cfg)
					quar := resilience.IsQuarantined(err)
					if err != nil && !quar {
						return err
					}
					switch {
					case quar || (relative && baseQuar):
						// A relative cell needs both measurements.
						fmt.Fprintf(w, "  d%d=%6s", y, "QUAR")
					case relative:
						fmt.Fprintf(w, "  d%d=%+6.2f%%", y, 100*(s-base)/base)
					default:
						fmt.Fprintf(w, "  d%d=%5.2fx", y, s)
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}

// specSpeedup measures one benchmark through the suite interface; the
// adapter's per-benchmark cycle counts are content-addressed-cached.
// (An earlier per-table memo here was a plain map keyed by the
// non-unique Config.Name — both unsafe under the worker pool and wrong
// for same-size disabled sets.)
func specSpeedup(bench string, cfg pipeline.Config) (float64, error) {
	b, err := specsuite.Bench(bench)
	if err != nil {
		return 0, err
	}
	compute := func(context.Context) (float64, error) {
		return suite.Speedup(b, cfg)
	}
	if fp, ok := cfg.Fingerprint(); ok {
		return resilience.Run(resilience.Active(), context.Background(),
			"spec|"+bench+"|"+fp, compute)
	}
	return resilience.RunEphemeral(resilience.Active(), context.Background(),
		"spec|"+bench+"|"+cfg.Name(), compute)
}
