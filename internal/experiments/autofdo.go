package experiments

import (
	"fmt"
	"io"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/debugger"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
)

// specsuiteSpeedup is a thin indirection kept for memoization in
// rankings.go.
func specsuiteSpeedup(bench string, cfg pipeline.Config) (float64, error) {
	return specsuite.Speedup(bench, cfg)
}

// fdoCycles builds the final binary at cfg with the given profile and
// runs the benchmark.
func fdoCycles(bench string, cfg pipeline.Config, p *autofdo.Profile) (int64, error) {
	ir0, err := specsuite.LoadIR(bench)
	if err != nil {
		return 0, err
	}
	cfg.FDO = p
	res, err := specsuite.RunBinary(bench, pipeline.Build(ir0, cfg))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// collectProfile builds the profiling binary at cfg (+ the
// -fdebug-info-for-profiling analog, as the paper does) and samples the
// ref workload.
func (r *Runner) collectProfile(bench string, cfg pipeline.Config) (*autofdo.Profile, int, error) {
	ir0, err := specsuite.LoadIR(bench)
	if err != nil {
		return nil, 0, err
	}
	cfg.ForProfiling = true
	bin := pipeline.Build(ir0, cfg)
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return nil, 0, err
	}
	steppable := sess.SteppableLines()
	p, err := autofdo.Collect(bin, "main", r.Opts.SampleEvery)
	if err != nil {
		return nil, 0, err
	}
	return p, steppable, nil
}

// Fig3 reproduces the AutoFDO SPEC study (paper Figure 3): for each
// benchmark, AutoFDO with the best O2-dy profile vs AutoFDO with the O2
// profile, with plain O2 for context. Table15 extends it with all
// configurations and the steppable-lines proxy (paper Table XV).
func (r *Runner) Fig3(w io.Writer) error { return r.autoFDOStudy(w, false) }

// Table15 prints the complete AutoFDO data.
func (r *Runner) Table15(w io.Writer) error { return r.autoFDOStudy(w, true) }

func (r *Runner) autoFDOStudy(w io.Writer, full bool) error {
	const profile = pipeline.Clang // "most recent AutoFDO developments target clang"
	la, err := r.Analysis(profile, "O2")
	if err != nil {
		return err
	}
	if full {
		fmt.Fprintln(w, "Table XV — AutoFDO with O2 and O2-dy profiling binaries (speedup over plain O2)")
	} else {
		fmt.Fprintln(w, "Figure 3 — AutoFDO: plain O2 and best O2-dy profile vs O2-profile AutoFDO")
	}
	o2 := pipeline.Config{Profile: profile, Level: "O2"}
	var avgBase, avgBest float64
	n := 0
	for _, bench := range r.specNames() {
		plainRes, err := specsuite.Run(bench, o2)
		if err != nil {
			return err
		}
		plain := plainRes.Cycles
		baseProf, baseStep, err := r.collectProfile(bench, o2)
		if err != nil {
			return err
		}
		fdoBase, err := fdoCycles(bench, o2, baseProf)
		if err != nil {
			return err
		}
		type dyRes struct {
			y         int
			cycles    int64
			stepPct   float64
			mappedPct float64
		}
		var results []dyRes
		best := fdoBase
		for _, y := range r.Opts.Dy {
			cfg := la.Configs([]int{y})[0]
			prof, step, err := r.collectProfile(bench, cfg)
			if err != nil {
				return err
			}
			// The final binary is always plain O2; only the profiling
			// stage changes (§V.C).
			c, err := fdoCycles(bench, o2, prof)
			if err != nil {
				return err
			}
			results = append(results, dyRes{
				y: y, cycles: c,
				stepPct:   100 * (float64(step) - float64(baseStep)) / float64(baseStep),
				mappedPct: 100 * prof.MappedFraction(),
			})
			if c < best {
				best = c
			}
		}
		speedup := func(c int64) float64 { return float64(plain) / float64(c) }
		if full {
			fmt.Fprintf(w, "%-14s O2-AutoFDO=%6.4f", bench, speedup(fdoBase))
			for _, dr := range results {
				fmt.Fprintf(w, "  d%d: spd=%6.4f Δspd=%+5.2f%% Δsteppable=%+5.2f%% mapped=%.1f%%",
					dr.y, speedup(dr.cycles),
					100*(float64(fdoBase)-float64(dr.cycles))/float64(dr.cycles),
					dr.stepPct, dr.mappedPct)
			}
			fmt.Fprintln(w)
		} else {
			fmt.Fprintf(w, "%-14s plain-O2=%6.4f  best-O2dy-AutoFDO=%6.4f (%+.2f%% vs O2-AutoFDO)\n",
				bench, 1/speedup(fdoBase),
				speedup(best)/speedup(fdoBase),
				100*(float64(fdoBase)-float64(best))/float64(best))
		}
		avgBase += speedup(fdoBase)
		avgBest += speedup(best)
		n++
	}
	fmt.Fprintf(w, "average: O2-AutoFDO %.4f, best O2-dy-AutoFDO %.4f (vs plain O2 = 1.0)\n",
		avgBase/float64(n), avgBest/float64(n))
	return nil
}

// Fig4 reproduces the large-workload study (paper Figure 4): the
// "self-compilation" stand-in selfcomp, O3 profiles vs O3-dy profiles.
func (r *Runner) Fig4(w io.Writer) error {
	const profile = pipeline.Clang
	const bench = "selfcomp"
	o3 := pipeline.Config{Profile: profile, Level: "O3"}
	plainRes, err := specsuite.Run(bench, o3)
	if err != nil {
		return err
	}
	baseProf, _, err := r.collectProfile(bench, o3)
	if err != nil {
		return err
	}
	fdoBase, err := fdoCycles(bench, o3, baseProf)
	if err != nil {
		return err
	}
	la, err := r.Analysis(profile, "O3")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 4 — selfcomp (large workload): O3-dy-AutoFDO vs O3-AutoFDO")
	fmt.Fprintf(w, "plain O3: %d cycles; O3-AutoFDO: %d cycles (%+.2f%%)\n",
		plainRes.Cycles, fdoBase,
		100*(float64(plainRes.Cycles)-float64(fdoBase))/float64(fdoBase))
	for _, y := range r.Opts.Dy {
		cfg := la.Configs([]int{y})[0]
		prof, _, err := r.collectProfile(bench, cfg)
		if err != nil {
			return err
		}
		c, err := fdoCycles(bench, o3, prof)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "O3-d%d profile: %d cycles (%+.2f%% vs O3-AutoFDO, mapped %.1f%%)\n",
			y, c, 100*(float64(fdoBase)-float64(c))/float64(c),
			100*prof.MappedFraction())
	}
	return nil
}
