package experiments

import (
	"context"
	"fmt"
	"io"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/debugger"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/workerpool"
)

// fdoCycles builds the final binary at cfg with the given profile and
// runs the benchmark.
func fdoCycles(bench string, cfg pipeline.Config, p *autofdo.Profile) (int64, error) {
	b, err := specsuite.Bench(bench)
	if err != nil {
		return 0, err
	}
	cfg.FDO = p
	res, err := b.Run(cfg)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// collectProfile builds the profiling binary at cfg (+ the
// -fdebug-info-for-profiling analog, as the paper does) and samples the
// ref workload.
func (r *Runner) collectProfile(bench string, cfg pipeline.Config) (*autofdo.Profile, int, error) {
	b, err := specsuite.Bench(bench)
	if err != nil {
		return nil, 0, err
	}
	ir0, err := b.BuildIR()
	if err != nil {
		return nil, 0, err
	}
	cfg.ForProfiling = true
	bin := pipeline.Build(ir0, cfg)
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return nil, 0, err
	}
	steppable := sess.SteppableLines()
	p, err := autofdo.Collect(bin, "main", r.Opts.SampleEvery)
	if err != nil {
		return nil, 0, err
	}
	return p, steppable, nil
}

// fdoResult is one memoized AutoFDO measurement: collect a profile at
// the profiling config, rebuild the final config with it, run it.
// Fields are exported so the result round-trips through the persistent
// store's JSON envelope.
type fdoResult struct {
	Cycles    int64
	Steppable int
	Mapped    float64
}

// fdoMeasure caches the profile-collect + FDO-rebuild + run pipeline per
// (benchmark, final config, profiling config). Fig3 and Table15 print
// the same measurements at different verbosity; the cache makes the
// second of the two free.
func (r *Runner) fdoMeasure(bench string, final, profiling pipeline.Config) (fdoResult, error) {
	key := bench + "|" + memoKey(final) + "|" + memoKey(profiling)
	return r.fdo.Do(key, func() (fdoResult, error) {
		prof, step, err := r.collectProfile(bench, profiling)
		if err != nil {
			return fdoResult{}, err
		}
		c, err := fdoCycles(bench, final, prof)
		if err != nil {
			return fdoResult{}, err
		}
		return fdoResult{Cycles: c, Steppable: step, Mapped: prof.MappedFraction()}, nil
	})
}

// Fig3 reproduces the AutoFDO SPEC study (paper Figure 3): for each
// benchmark, AutoFDO with the best O2-dy profile vs AutoFDO with the O2
// profile, with plain O2 for context. Table15 extends it with all
// configurations and the steppable-lines proxy (paper Table XV).
func (r *Runner) Fig3(w io.Writer) error { return r.autoFDOStudy(w, false) }

// Table15 prints the complete AutoFDO data.
func (r *Runner) Table15(w io.Writer) error { return r.autoFDOStudy(w, true) }

func (r *Runner) autoFDOStudy(w io.Writer, full bool) error {
	const profile = pipeline.Clang // "most recent AutoFDO developments target clang"
	la, err := r.Analysis(profile, "O2")
	if err != nil {
		return err
	}
	if full {
		fmt.Fprintln(w, "Table XV — AutoFDO with O2 and O2-dy profiling binaries (speedup over plain O2)")
	} else {
		fmt.Fprintln(w, "Figure 3 — AutoFDO: plain O2 and best O2-dy profile vs O2-profile AutoFDO")
	}
	o2 := pipeline.MustConfig(profile, "O2")
	// Benchmarks are independent (each collects its own profiles and
	// rebuilds its own binaries), so the study fans out per benchmark;
	// rows print and averages accumulate in suite order.
	type dyRes struct {
		y         int
		cycles    int64
		stepPct   float64
		mappedPct float64
	}
	type benchRes struct {
		plain, fdoBase, best int64
		results              []dyRes
	}
	benches, err := workerpool.Map(context.Background(), r.specNames(),
		func(_ context.Context, _ int, bench string) (benchRes, error) {
			var br benchRes
			b, err := specsuite.Bench(bench)
			if err != nil {
				return br, err
			}
			plain, err := b.Cycles(o2)
			if err != nil {
				return br, err
			}
			br.plain = plain
			base, err := r.fdoMeasure(bench, o2, o2)
			if err != nil {
				return br, err
			}
			br.fdoBase = base.Cycles
			br.best = br.fdoBase
			for _, y := range r.Opts.Dy {
				cfg := la.Configs([]int{y})[0]
				// The final binary is always plain O2; only the profiling
				// stage changes (§V.C).
				m, err := r.fdoMeasure(bench, o2, cfg)
				if err != nil {
					return br, err
				}
				br.results = append(br.results, dyRes{
					y: y, cycles: m.Cycles,
					stepPct:   100 * (float64(m.Steppable) - float64(base.Steppable)) / float64(base.Steppable),
					mappedPct: 100 * m.Mapped,
				})
				if m.Cycles < br.best {
					br.best = m.Cycles
				}
			}
			return br, nil
		})
	if err != nil {
		return err
	}
	var avgBase, avgBest float64
	n := 0
	for bi, bench := range r.specNames() {
		br := benches[bi]
		speedup := func(c int64) float64 { return float64(br.plain) / float64(c) }
		if full {
			fmt.Fprintf(w, "%-14s O2-AutoFDO=%6.4f", bench, speedup(br.fdoBase))
			for _, dr := range br.results {
				fmt.Fprintf(w, "  d%d: spd=%6.4f Δspd=%+5.2f%% Δsteppable=%+5.2f%% mapped=%.1f%%",
					dr.y, speedup(dr.cycles),
					100*(float64(br.fdoBase)-float64(dr.cycles))/float64(dr.cycles),
					dr.stepPct, dr.mappedPct)
			}
			fmt.Fprintln(w)
		} else {
			fmt.Fprintf(w, "%-14s plain-O2=%6.4f  best-O2dy-AutoFDO=%6.4f (%+.2f%% vs O2-AutoFDO)\n",
				bench, 1/speedup(br.fdoBase),
				speedup(br.best)/speedup(br.fdoBase),
				100*(float64(br.fdoBase)-float64(br.best))/float64(br.best))
		}
		avgBase += speedup(br.fdoBase)
		avgBest += speedup(br.best)
		n++
	}
	fmt.Fprintf(w, "average: O2-AutoFDO %.4f, best O2-dy-AutoFDO %.4f (vs plain O2 = 1.0)\n",
		avgBase/float64(n), avgBest/float64(n))
	return nil
}

// Fig4 reproduces the large-workload study (paper Figure 4): the
// "self-compilation" stand-in selfcomp, O3 profiles vs O3-dy profiles.
func (r *Runner) Fig4(w io.Writer) error {
	const profile = pipeline.Clang
	const bench = "selfcomp"
	o3 := pipeline.MustConfig(profile, "O3")
	b, err := specsuite.Bench(bench)
	if err != nil {
		return err
	}
	plain, err := b.Cycles(o3)
	if err != nil {
		return err
	}
	base, err := r.fdoMeasure(bench, o3, o3)
	if err != nil {
		return err
	}
	la, err := r.Analysis(profile, "O3")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 4 — selfcomp (large workload): O3-dy-AutoFDO vs O3-AutoFDO")
	fmt.Fprintf(w, "plain O3: %d cycles; O3-AutoFDO: %d cycles (%+.2f%%)\n",
		plain, base.Cycles,
		100*(float64(plain)-float64(base.Cycles))/float64(base.Cycles))
	// The per-dy profile collections are independent; fan them out and
	// print in dy order.
	rows, err := workerpool.Map(context.Background(), r.Opts.Dy,
		func(_ context.Context, _ int, y int) (fdoResult, error) {
			return r.fdoMeasure(bench, o3, la.Configs([]int{y})[0])
		})
	if err != nil {
		return err
	}
	for yi, y := range r.Opts.Dy {
		m := rows[yi]
		fmt.Fprintf(w, "O3-d%d profile: %d cycles (%+.2f%% vs O3-AutoFDO, mapped %.1f%%)\n",
			y, m.Cycles, 100*(float64(base.Cycles)-float64(m.Cycles))/float64(m.Cycles),
			100*m.Mapped)
	}
	return nil
}
