package experiments

import (
	"context"
	"fmt"
	"io"

	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/suite"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/workerpool"
)

// Table1 compares the four measurement methods on synthetic programs
// (paper Table I): availability of variables, line coverage, and the
// product, per compiler profile and level, aggregated by geometric mean.
func (r *Runner) Table1(w io.Writer) error {
	progs := loadSynth(r.Opts.SynthCount)
	fmt.Fprintf(w, "Table I — methods on %d synthetic programs (geomean)\n", len(progs))
	fmt.Fprintf(w, "%-6s %-4s | %8s %10s %8s %8s | %8s %10s %8s | %8s %10s %8s %8s\n",
		"comp", "opt", "av.stat", "av.statdbg", "av.dyn", "av.hyb",
		"lc.stat", "lc.statdbg", "lc.dyn", "pr.stat", "pr.statdbg", "pr.dyn", "pr.hyb")
	hr(w, 132)

	// Per configuration, fan the per-program measurements out over the
	// worker pool; the geomean aggregation consumes them in program
	// order, identical to the serial loop.
	measureAll := func(cfg pipeline.Config) ([]methodScores, error) {
		return workerpool.Map(context.Background(), progs,
			func(_ context.Context, _ int, sp *synthProgram) (methodScores, error) {
				base, err := sp.baseline()
				if err != nil {
					return methodScores{}, err
				}
				return sp.measure(cfg, base)
			})
	}

	type agg struct {
		avS, avSD, avD, avH, lcS, lcSD, lcD, prS, prSD, prD, prH []float64
		avP, prP                                                 []float64
	}
	var provenRows []string
	for _, cfg := range levelsUnderTest() {
		var a agg
		all, err := measureAll(cfg)
		if err != nil {
			return err
		}
		for _, ms := range all {
			a.avS = append(a.avS, ms.static.Avail)
			a.avSD = append(a.avSD, ms.staticDbg.Avail)
			a.avD = append(a.avD, ms.dynamic.Avail)
			a.avH = append(a.avH, ms.hybrid.Avail)
			a.lcS = append(a.lcS, ms.static.LineCov)
			a.lcSD = append(a.lcSD, ms.staticDbg.LineCov)
			a.lcD = append(a.lcD, ms.dynamic.LineCov)
			a.prS = append(a.prS, ms.static.Product)
			a.prSD = append(a.prSD, ms.staticDbg.Product)
			a.prD = append(a.prD, ms.dynamic.Product)
			a.prH = append(a.prH, ms.hybrid.Product)
			a.avP = append(a.avP, ms.staticProven.Avail)
			a.prP = append(a.prP, ms.staticProven.Product)
		}
		fmt.Fprintf(w, "%-6s %-4s | %8.4f %10.4f %8.4f %8.4f | %8.4f %10.4f %8.4f | %8.4f %10.4f %8.4f %8.4f\n",
			cfg.Profile, cfg.Level,
			geo(a.avS), geo(a.avSD), geo(a.avD), geo(a.avH),
			geo(a.lcS), geo(a.lcSD), geo(a.lcD),
			geo(a.prS), geo(a.prSD), geo(a.prD), geo(a.prH))
		provenRows = append(provenRows, fmt.Sprintf(
			"%-6s %-4s | %8.4f %9.4f | %8.4f %9.4f",
			cfg.Profile, cfg.Level,
			geo(a.avS), geo(a.avP), geo(a.prS), geo(a.prP)))
	}
	// Dataflow-proven static claims: the numerator keeps only locations
	// the owner analysis guarantees materialize, so plain-static minus
	// proven bounds the wrong-value over-count without running anything.
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Static vs dataflow-proven static (numerator restricted to must-materialize claims)")
	fmt.Fprintf(w, "%-6s %-4s | %8s %9s | %8s %9s\n",
		"comp", "opt", "av.stat", "av.proven", "pr.stat", "pr.proven")
	hr(w, 54)
	for _, row := range provenRows {
		fmt.Fprintln(w, row)
	}
	// Geometric standard deviation of the hybrid product at gcc O1, the
	// paper's per-program variability check.
	all, err := measureAll(pipeline.MustConfig(pipeline.GCC, "O1"))
	if err != nil {
		return err
	}
	var prods []float64
	for _, ms := range all {
		prods = append(prods, ms.hybrid.Product)
	}
	fmt.Fprintf(w, "geometric std dev of hybrid product at gcc-O1: %.3f\n",
		metrics.GeoStdDev(prods))
	return nil
}

// Table2 reports the hybrid metrics on libpng (paper Table II).
func (r *Runner) Table2(w io.Writer) error {
	s, err := LoadSubject(r, "libpng")
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table II — debug information quality metrics on libpng")
	fmt.Fprintf(w, "%-6s %-4s | %14s %13s %18s\n",
		"comp", "opt", "avail. of vars", "line coverage", "product of metrics")
	hr(w, 64)
	for _, cfg := range levelsUnderTest() {
		sc, err := debuggable(s).Scores(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6s %-4s | %14.4f %13.4f %18.4f\n",
			cfg.Profile, cfg.Level, sc.Avail, sc.LineCov, sc.Product)
	}
	return nil
}

// LoadSubject fetches one loaded suite member from the runner's cache.
func LoadSubject(r *Runner, name string) (suite.Subject, error) {
	subjects, err := r.Suite()
	if err != nil {
		return nil, err
	}
	for _, s := range subjects {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown subject %q", name)
}

// Table3 reports the test-suite statistics (paper Table III).
func (r *Runner) Table3(w io.Writer) error {
	subjects, err := r.Suite()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table III — statistics on programs and inputs for the test suite")
	fmt.Fprintf(w, "%-10s | %10s %9s | %9s %8s %8s\n",
		"program", "avg inputs", "% reduc", "steppable", "stepped", "% debug")
	hr(w, 66)
	var sumIn, sumRed, sumStep, sumStepped, sumCov float64
	for _, s := range subjects {
		// Corpus statistics are a testsuite capability with no
		// cross-suite analog, so Table III names the concrete type.
		st, err := s.(*testsuite.Subject).ComputeStats()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s | %10.0f %9.2f | %9d %8d %8.2f\n",
			st.Name, st.AvgInputs, st.ReductionPct,
			st.SteppableLines, st.SteppedLines, st.DebugCoveragePct)
		sumIn += st.AvgInputs
		sumRed += st.ReductionPct
		sumStep += float64(st.SteppableLines)
		sumStepped += float64(st.SteppedLines)
		sumCov += st.DebugCoveragePct
	}
	n := float64(len(subjects))
	hr(w, 66)
	fmt.Fprintf(w, "%-10s | %10.0f %9.2f | %9.0f %8.0f %8.2f\n",
		"average", sumIn/n, sumRed/n, sumStep/n, sumStepped/n, sumCov/n)
	return nil
}

// Table4 reports the product metric per program and level with the
// gcc-vs-clang deltas (paper Table IV).
func (r *Runner) Table4(w io.Writer) error {
	subjects, err := r.Suite()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table IV — debug information availability on the test suite")
	fmt.Fprintf(w, "%-10s | %5s %5s %5s %5s | %5s %5s %5s | %7s %7s %7s\n",
		"program", "g.Og", "g.O1", "g.O2", "g.O3", "c.O1", "c.O2", "c.O3",
		"Δ%O1", "Δ%O2", "Δ%O3")
	hr(w, 92)
	sums := make([]float64, 7)
	rows, err := workerpool.Map(context.Background(), subjects,
		func(_ context.Context, _ int, s suite.Subject) ([]float64, error) {
			var vals []float64
			for _, cfg := range levelsUnderTest() {
				m, err := debuggable(s).Product(cfg)
				if err != nil {
					return nil, err
				}
				vals = append(vals, m)
			}
			return vals, nil
		})
	if err != nil {
		return err
	}
	for si, s := range subjects {
		vals := rows[si]
		for i, v := range vals {
			sums[i] += v
		}
		delta := func(g, c float64) float64 { return 100 * (g - c) / c }
		fmt.Fprintf(w, "%-10s | %5.2f %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f | %7.2f %7.2f %7.2f\n",
			s.Name(), vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6],
			delta(vals[1], vals[4]), delta(vals[2], vals[5]), delta(vals[3], vals[6]))
	}
	hr(w, 92)
	n := float64(len(subjects))
	fmt.Fprintf(w, "%-10s | %5.2f %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f |\n",
		"average", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n,
		sums[4]/n, sums[5]/n, sums[6]/n)
	return nil
}

// Table7 reports per-level counts of passes with positive, neutral, and
// negative impact (paper Table VII).
func (r *Runner) Table7(w io.Writer) error {
	fmt.Fprintln(w, "Table VII — tested passes per level (positive, neutral, negative)")
	fmt.Fprintf(w, "%-6s | %-22s\n", "comp", "levels")
	hr(w, 60)
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		fmt.Fprintf(w, "%-6s |", p)
		for _, l := range pipeline.Levels(p) {
			la, err := r.Analysis(p, l)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "  %s: %d (%d,%d,%d)", l, len(la.Ranking),
				la.Positive, la.Neutral, la.Negative)
		}
		fmt.Fprintln(w)
	}
	return nil
}
