package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"debugtuner/internal/pipeline"
)

// quickRunner shares a tiny-scale runner across the tests.
var quickRunner = NewRunner(Options{
	SynthCount:  8,
	CorpusExecs: 120,
	SampleEvery: 997,
	Dy:          []int{3},
	SpecSubset:  []string{"531.deepsjeng"},
})

// TestEveryExperimentRuns smoke-tests all sixteen harnesses at minimum
// scale: each must complete and produce its header row.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cases := map[string]struct {
		run  func(io.Writer) error
		want string
	}{
		"table1":  {quickRunner.Table1, "Table I"},
		"table2":  {quickRunner.Table2, "libpng"},
		"table3":  {quickRunner.Table3, "Table III"},
		"table4":  {quickRunner.Table4, "Table IV"},
		"table5":  {quickRunner.Table5, "Table V"},
		"table6":  {quickRunner.Table6, "Table VI"},
		"table7":  {quickRunner.Table7, "Table VII"},
		"fig2":    {quickRunner.Fig2, "Pareto"},
		"table8":  {quickRunner.Table8, "Table VIII"},
		"table9":  {quickRunner.Table9, "Table IX"},
		"table10": {quickRunner.Table10, "Table X"},
		"table11": {quickRunner.Table11, "Table XI"},
		"table12": {quickRunner.Table12, "Table XII"},
		"fig3":    {quickRunner.Fig3, "AutoFDO"},
		"table15": {quickRunner.Table15, "Table XV"},
		"fig4":    {quickRunner.Fig4, "Figure 4"},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.run(&buf); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !strings.Contains(buf.String(), c.want) {
				t.Fatalf("%s output lacks %q:\n%s", name, c.want, buf.String())
			}
		})
	}
}

// TestRunnerCaching: a second analysis request must return the identical
// cached object.
func TestRunnerCaching(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a, err := quickRunner.Analysis(pipeline.GCC, "Og")
	if err != nil {
		t.Fatal(err)
	}
	b, err := quickRunner.Analysis(pipeline.GCC, "Og")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("analysis not cached")
	}
}

// TestSuiteProductMemoized: SuiteProduct must follow the same memo
// discipline as SuiteSpeedup — one computation per configuration
// fingerprint, even when the config is spelled differently (disabled
// sets in different orders fingerprint identically).
func TestSuiteProductMemoized(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	cfgA := pipeline.MustConfig(pipeline.GCC, "O1",
		pipeline.Disable("dce", "inline"))
	cfgB := pipeline.MustConfig(pipeline.GCC, "O1",
		pipeline.Disable("inline", "dce"))
	a, err := quickRunner.SuiteProduct(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	before := quickRunner.products.Len()
	b, err := quickRunner.SuiteProduct(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("products differ: %v vs %v", a, b)
	}
	if after := quickRunner.products.Len(); after != before {
		t.Fatalf("equivalent config spelled differently missed the memo: %d -> %d entries", before, after)
	}
}

// TestLoadSynthDeterministic: the same options select the same corpus.
func TestLoadSynthDeterministic(t *testing.T) {
	a := loadSynth(5)
	b := loadSynth(5)
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("loaded %d and %d programs", len(a), len(b))
	}
	for i := range a {
		if a[i].info.Program.File.Name != b[i].info.Program.File.Name {
			t.Fatal("different programs selected")
		}
	}
}
