package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/suite"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/testsuite"
)

// PassReportRow is one pass's aggregate damage over the suite build.
type PassReportRow struct {
	Pass    string
	Backend bool
	// Cleanup marks the pipeline's always-on bookkeeping runs
	// ("cleanup/<name>" in the ledger); no configuration can disable
	// them, so they sort after every user-visible toggle.
	Cleanup bool
	telemetry.Damage
	// Score ranks rows: discrete damage events plus instruction churn.
	// Churn matters because the inliner's debug cost is code it
	// duplicates into callers (every copied line and binding is a new
	// liability downstream), which the event classes alone undercount.
	Score int64
}

// PassReport builds the thirteen test-suite programs under the
// profile/level with the damage ledger enabled and returns one row per
// responsible pass, ranked by damage. The subjects are loaded without
// corpora (building needs no inputs), and the ledger is collected on a
// private sink swapped in around the builds, so a concurrently
// installed -trace sink neither pollutes nor is polluted by the report.
func PassReport(p pipeline.Profile, level string) ([]PassReportRow, error) {
	cfg, err := pipeline.NewConfig(p, level)
	if err != nil {
		return nil, err
	}
	var subjects []suite.Subject
	for _, name := range testsuite.Names {
		s, err := testsuite.LoadLite(name)
		if err != nil {
			return nil, err
		}
		subjects = append(subjects, s)
	}
	snk := telemetry.NewSink()
	prev := telemetry.Install(snk)
	for _, s := range subjects {
		ir0, err := s.BuildIR()
		if err != nil {
			telemetry.Install(prev)
			return nil, err
		}
		pipeline.Build(ir0, cfg)
	}
	telemetry.Install(prev)

	byPass := snk.DamageByPass()
	rows := make([]PassReportRow, 0, len(byPass))
	for pass, d := range byPass {
		churn := d.InstrDelta
		if churn < 0 {
			churn = -churn
		}
		rows = append(rows, PassReportRow{
			Pass: pass, Backend: pipeline.IsBackend(pass),
			Cleanup: strings.HasPrefix(pass, "cleanup/"),
			Damage:  d, Score: d.Events() + churn,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Cleanup != rows[j].Cleanup {
			return !rows[i].Cleanup
		}
		if rows[i].Score != rows[j].Score {
			return rows[i].Score > rows[j].Score
		}
		return rows[i].Pass < rows[j].Pass
	})
	return rows, nil
}

// WritePassReport prints the ranked damage table. Back-end passes carry
// the paper's '*' annotation.
func WritePassReport(w io.Writer, p pipeline.Profile, level string) error {
	rows, err := PassReport(p, level)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Debug-damage report — test suite built at %s-%s\n", p, level)
	fmt.Fprintf(w, "%-3s %-22s | %5s %8s | %8s %7s %7s %7s %7s %7s | %8s\n",
		"#", "pass", "runs", "wall ms", "Δinstr",
		"dropped", "salvage", "zeroed", "changed", "ranges", "score")
	hr(w, 116)
	rank := 0
	cleanupHeader := false
	for _, r := range rows {
		name := r.Pass
		if r.Backend {
			name += " *"
		}
		pos := "-"
		if r.Cleanup {
			if !cleanupHeader {
				fmt.Fprintln(w, "-- always-on cleanup runs (not user toggles) --")
				cleanupHeader = true
			}
		} else {
			rank++
			pos = fmt.Sprint(rank)
		}
		fmt.Fprintf(w, "%-3s %-22s | %5d %8.1f | %+8d %7d %7d %7d %7d %7d | %8d\n",
			pos, name, r.Runs, float64(r.WallNS)/1e6, r.InstrDelta,
			r.DbgDropped, r.DbgSalvaged, r.LinesZeroed, r.LinesChanged,
			r.RangesEnded, r.Score)
	}
	return nil
}
