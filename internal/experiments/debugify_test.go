package experiments

import (
	"bytes"
	"testing"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/workerpool"
)

// TestDebugifyScoreboardOverlapsLedger locks the cross-check between
// the two attribution systems: the static preservation scoreboard
// (synthetic metadata destroyed, measured per pass) and the telemetry
// damage ledger (real metadata damage events, recorded per pass) must
// largely agree on which gcc-O2 passes are the top offenders. They
// measure different proxies — the ledger sees dynamic events like
// binding drops, the scoreboard sees surviving distinct lines — so
// exact agreement is not expected, but fewer than 6 shared entries in
// the top 10 would mean one of them is attributing damage to the wrong
// passes.
func TestDebugifyScoreboardOverlapsLedger(t *testing.T) {
	rep, err := Debugify(DebugifyOptions{
		Profiles: []pipeline.Profile{pipeline.GCC},
		Levels:   []string{"O2"},
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("gcc-O2 matrix not clean: %v", rep.Findings)
	}
	static := map[string]bool{}
	for _, r := range rep.Rows {
		if r.AlwaysOn {
			continue
		}
		static[r.Pass] = true
		if len(static) == 10 {
			break
		}
	}
	rows, err := PassReport(pipeline.GCC, "O2")
	if err != nil {
		t.Fatal(err)
	}
	var ledger []string
	for _, r := range rows {
		if r.Cleanup {
			continue
		}
		ledger = append(ledger, r.Pass)
		if len(ledger) == 10 {
			break
		}
	}
	overlap := 0
	for _, p := range ledger {
		if static[p] {
			overlap++
		}
	}
	if overlap < 6 {
		t.Errorf("static top-10 %v overlaps ledger top-10 %v by only %d, want >= 6",
			keys(static), ledger, overlap)
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestDebugifySuiteClean is the suite-wide gate: every subject of the
// test suite, built under both profiles at every level, preserves 100%
// of the injectable invariants — zero findings, no allowlist.
func TestDebugifySuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full 91-cell matrix in -short mode")
	}
	rep, err := Debugify(DefaultDebugifyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("%d cells quarantined", rep.Quarantined)
	}
	for _, f := range rep.Findings {
		t.Errorf("FAIL %s", f)
	}
}

// TestWriteDebugifyDeterministic pins the report to be byte-identical
// at any worker-pool size.
func TestWriteDebugifyDeterministic(t *testing.T) {
	opts := DebugifyOptions{
		Subjects: []string{"libpng", "zlib"},
		Verify:   true,
	}
	render := func(workers int) string {
		workerpool.SetWorkers(workers)
		defer workerpool.SetWorkers(0)
		var buf bytes.Buffer
		if _, err := WriteDebugify(&buf, opts); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Fatalf("report differs between -j1 and -j4:\n--- j1 ---\n%s--- j4 ---\n%s",
			serial, parallel)
	}
}
