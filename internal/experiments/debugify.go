package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/workerpool"
)

// DebugifyOptions scopes the debugify experiment.
type DebugifyOptions struct {
	// Subjects are test-suite member names; nil means the whole suite.
	Subjects []string
	// Profiles restricts the matrix; nil means both profiles.
	Profiles []pipeline.Profile
	// Levels restricts the matrix (e.g. just "O2"); nil means every
	// level of each profile.
	Levels []string
	// Verify runs the verify-each analyzer (the experiment's point).
	// With it false the same matrix is built plainly — the baseline
	// bench_eval.sh measures verify-each overhead against.
	Verify bool
	// Interrupt, when non-nil and cancelled, stops the matrix before the
	// next cell: completed cells are already journaled, so a -resume run
	// replays them and only the remainder is rebuilt.
	Interrupt context.Context
}

// DefaultDebugifyOptions is the full matrix with verification on.
func DefaultDebugifyOptions() DebugifyOptions {
	return DebugifyOptions{Verify: true}
}

// DebugifyRow is one pass's aggregate synthetic-metadata damage over
// the matrix — the static preservation scoreboard the telemetry damage
// ledger is cross-checked against.
type DebugifyRow struct {
	Pass    string
	Backend bool
	// AlwaysOn marks steps no configuration can disable (cleanup runs
	// and the base codegen step); they sort after every user toggle.
	AlwaysOn bool
	Runs     int64
	// LinesLost / VarsLost sum each step's destroyed baseline metadata
	// (recoveries by later duplication do not offset earlier losses).
	LinesLost  int64
	VarsLost   int64
	Violations int64
	// InstrDelta is the net code growth across runs; its magnitude is
	// the churn term, mirroring the ledger's score.
	InstrDelta int64
	Score      int64
}

// DebugifyConfigStat is one configuration's aggregate survival.
type DebugifyConfigStat struct {
	Config     string
	Lines      int64
	TotalLines int64
	Vars       int64
	TotalVars  int64
}

// DebugifyReport is the experiment outcome.
type DebugifyReport struct {
	Rows     []DebugifyRow
	Configs  []DebugifyConfigStat
	Findings []string // violations + verify errors, sorted, stable
	Cells    int
	// Quarantined counts cells lost to the resilience layer — gaps, not
	// verdicts; they surface through the quarantine report and exit 3.
	Quarantined int
}

type debugifyCell struct {
	subject string
	srcHash uint64
	ir0     *ir.Program
	cfg     pipeline.Config
}

type debugifyCellResult struct {
	rep        *pipeline.VerifyReport
	quarantine string // non-empty when the cell was lost
}

// Debugify runs a debugified verified build of every (subject, config)
// cell of the matrix and aggregates per-pass losses. Cells are fanned
// over the worker pool in deterministic order and wrapped in the
// resilience layer: one pass panicking on one subject quarantines that
// cell instead of killing the matrix.
func Debugify(opts DebugifyOptions) (*DebugifyReport, error) {
	span := telemetry.Begin("experiments", "debugify")
	defer span.End()

	subjects := opts.Subjects
	if len(subjects) == 0 {
		subjects = testsuite.Names
	}
	profiles := opts.Profiles
	if len(profiles) == 0 {
		profiles = []pipeline.Profile{pipeline.GCC, pipeline.Clang}
	}
	levelOK := map[string]bool{}
	for _, l := range opts.Levels {
		levelOK[l] = true
	}

	var cells []debugifyCell
	for _, name := range subjects {
		s, err := testsuite.LoadLite(name)
		if err != nil {
			return nil, err
		}
		src, err := s.Source()
		if err != nil {
			return nil, err
		}
		ir0, err := s.BuildIR()
		if err != nil {
			return nil, err
		}
		h := resilience.HashBytes(src)
		for _, p := range profiles {
			for _, level := range pipeline.Levels(p) {
				if len(levelOK) > 0 && !levelOK[level] {
					continue
				}
				cfg, err := pipeline.NewConfig(p, level)
				if err != nil {
					return nil, err
				}
				cells = append(cells, debugifyCell{
					subject: name, srcHash: h, ir0: ir0, cfg: cfg,
				})
			}
		}
	}

	mctx := context.Background()
	if opts.Interrupt != nil {
		mctx = opts.Interrupt
	}
	results, err := workerpool.Map(mctx, cells,
		func(_ context.Context, _ int, c debugifyCell) (*debugifyCellResult, error) {
			fp, _ := c.cfg.Fingerprint()
			key := fmt.Sprintf("debugify|%s#%016x|%s", c.subject, c.srcHash, fp)
			rep, err := resilience.Run(resilience.Active(), context.Background(), key,
				func(context.Context) (*pipeline.VerifyReport, error) {
					if !opts.Verify {
						pipeline.Build(c.ir0, c.cfg)
						return &pipeline.VerifyReport{}, nil
					}
					return pipeline.BuildVerified(c.ir0, c.cfg, true), nil
				})
			if resilience.IsQuarantined(err) {
				return &debugifyCellResult{quarantine: err.Error()}, nil
			}
			if err != nil {
				return nil, err
			}
			return &debugifyCellResult{rep: rep}, nil
		})
	if err != nil {
		return nil, err
	}

	rep := &DebugifyReport{Cells: len(cells)}
	byPass := map[string]*DebugifyRow{}
	byConfig := map[string]*DebugifyConfigStat{}
	var configOrder []string
	addFinding := func(cell debugifyCell, where, msg string) {
		rep.Findings = append(rep.Findings,
			fmt.Sprintf("%s %s %s: %s", cell.subject, cell.cfg.Name(), where, msg))
	}
	for i, res := range results {
		if res.quarantine != "" {
			rep.Quarantined++
			continue
		}
		if !opts.Verify {
			continue
		}
		cell := cells[i]
		r := res.rep
		cs := byConfig[cell.cfg.Name()]
		if cs == nil {
			cs = &DebugifyConfigStat{Config: cell.cfg.Name()}
			byConfig[cell.cfg.Name()] = cs
			configOrder = append(configOrder, cell.cfg.Name())
		}
		cs.Lines += int64(r.Final.Lines)
		cs.Vars += int64(r.Final.Vars)
		cs.TotalLines += int64(r.Total.Lines)
		cs.TotalVars += int64(r.Total.Vars)
		// Advisory findings (loc-extendable) are improvement hints, not
		// defects: they neither fail the run nor count in the scoreboard.
		for _, v := range r.InitialViolations {
			if v.Rule.Advisory() {
				continue
			}
			addFinding(cell, "input", v.String())
		}
		for _, st := range r.Steps {
			row := byPass[st.Label]
			if row == nil {
				row = &DebugifyRow{
					Pass:    st.Label,
					Backend: st.Backend || pipeline.IsBackend(st.Label),
					AlwaysOn: strings.HasPrefix(st.Label, "cleanup/") ||
						st.Label == "codegen",
				}
				byPass[st.Label] = row
			}
			row.Runs++
			if st.LinesLost > 0 {
				row.LinesLost += int64(st.LinesLost)
			}
			if st.VarsLost > 0 {
				row.VarsLost += int64(st.VarsLost)
			}
			row.InstrDelta += int64(st.InstrDelta)
			for _, v := range st.NewViolations {
				if v.Rule.Advisory() {
					continue
				}
				row.Violations++
				addFinding(cell, st.Label, v.String())
			}
			if st.VerifyErr != "" {
				addFinding(cell, st.Label, "ir.Verify: "+st.VerifyErr)
			}
		}
	}
	for _, row := range byPass {
		churn := row.InstrDelta
		if churn < 0 {
			churn = -churn
		}
		row.Score = row.LinesLost + row.VarsLost + row.Violations + churn
		rep.Rows = append(rep.Rows, *row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].AlwaysOn != rep.Rows[j].AlwaysOn {
			return !rep.Rows[i].AlwaysOn
		}
		if rep.Rows[i].Score != rep.Rows[j].Score {
			return rep.Rows[i].Score > rep.Rows[j].Score
		}
		return rep.Rows[i].Pass < rep.Rows[j].Pass
	})
	for _, name := range configOrder {
		rep.Configs = append(rep.Configs, *byConfig[name])
	}
	sort.Strings(rep.Findings)
	telemetry.Add("debugify.cells", int64(rep.Cells))
	telemetry.Add("debugify.findings", int64(len(rep.Findings)))
	telemetry.Add("debugify.quarantined", int64(rep.Quarantined))
	return rep, nil
}

// WriteDebugify prints the static preservation scoreboard. Output is
// byte-identical at any worker count; a run with findings is reported
// line by line through the shared violation renderer's order.
func WriteDebugify(w io.Writer, opts DebugifyOptions) (*DebugifyReport, error) {
	rep, err := Debugify(opts)
	if err != nil {
		return nil, err
	}
	if !opts.Verify {
		fmt.Fprintf(w, "debugify: %d cells (verify-each off, plain builds)\n", rep.Cells)
		return rep, nil
	}
	fmt.Fprintf(w, "debugify: %d cells, synthetic metadata survival after full builds\n",
		rep.Cells)
	fmt.Fprintf(w, "%-10s | %8s %8s | %7s %7s\n",
		"config", "lines", "vars", "lines%", "vars%")
	hr(w, 50)
	for _, cs := range rep.Configs {
		fmt.Fprintf(w, "%-10s | %8d %8d | %6.1f%% %6.1f%%\n",
			cs.Config, cs.Lines, cs.Vars,
			pct(cs.Lines, cs.TotalLines), pct(cs.Vars, cs.TotalVars))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Per-pass static preservation scoreboard (losses against the injected baseline)")
	fmt.Fprintf(w, "%-3s %-24s | %5s | %7s %7s %7s | %8s | %8s\n",
		"#", "pass", "runs", "lines-", "vars-", "viol", "Δinstr", "score")
	hr(w, 86)
	rank := 0
	alwaysOnHeader := false
	for _, r := range rep.Rows {
		name := r.Pass
		if r.Backend {
			name += " *"
		}
		pos := "-"
		if r.AlwaysOn {
			if !alwaysOnHeader {
				fmt.Fprintln(w, "-- always-on stages (not user toggles) --")
				alwaysOnHeader = true
			}
		} else {
			rank++
			pos = fmt.Sprint(rank)
		}
		fmt.Fprintf(w, "%-3s %-24s | %5d | %7d %7d %7d | %+8d | %8d\n",
			pos, name, r.Runs, r.LinesLost, r.VarsLost, r.Violations,
			r.InstrDelta, r.Score)
	}
	if rep.Quarantined > 0 {
		fmt.Fprintf(w, "quarantined cells: %d\n", rep.Quarantined)
	}
	for _, f := range rep.Findings {
		fmt.Fprintf(w, "FAIL %s\n", f)
	}
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "PASS")
	}
	return rep, nil
}

func pct(n, total int64) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(n) / float64(total)
}
