package experiments

import (
	"bytes"
	"strings"
	"testing"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/telemetry"
)

// TestPassReportTableVOverlap checks the report against the paper's
// ground truth: of Table V's gcc-O2 top-10 critical passes, the ones
// the damage ledger can see (expensive-opts is a group toggle and
// inline-functions a no-op at this suite's sizes, so neither leaves
// ledger entries) must rank among the top damage contributors.
func TestPassReportTableVOverlap(t *testing.T) {
	rows, err := PassReport(pipeline.GCC, "O2")
	if err != nil {
		t.Fatal(err)
	}

	// Table V, gcc-O2 column, minus the two names with no ledger
	// footprint.
	tableV := []string{
		"inline", "if-conversion", "reorder-blocks", "schedule-insns2",
		"tree-loop-optimize", "tree-fre", "crossjumping", "tree-sink",
	}

	top := map[string]bool{}
	for _, r := range rows {
		if r.Cleanup || len(top) == 10 {
			break
		}
		top[r.Pass] = true
	}
	var hits, missed = 0, []string{}
	for _, name := range tableV {
		if top[name] {
			hits++
		} else {
			missed = append(missed, name)
		}
	}
	if hits < 7 {
		t.Errorf("only %d of Table V's gcc-O2 passes rank in the report's top 10 (want >= 7); missing: %v",
			hits, missed)
	}

	// Every row must reflect real pass executions over the 13-program
	// suite, and cleanup rows must sort strictly after toggles.
	seenCleanup := false
	for _, r := range rows {
		if r.Runs <= 0 {
			t.Errorf("row %q has Runs = %d", r.Pass, r.Runs)
		}
		if r.Cleanup {
			seenCleanup = true
			if !strings.HasPrefix(r.Pass, "cleanup/") {
				t.Errorf("cleanup row %q lacks the cleanup/ prefix", r.Pass)
			}
		} else if seenCleanup {
			t.Errorf("toggle row %q sorted after a cleanup row", r.Pass)
		}
	}
}

// TestPassReportRestoresSink ensures the report's private-sink swap
// leaves the caller's telemetry installation untouched.
func TestPassReportRestoresSink(t *testing.T) {
	mine := telemetry.NewSink()
	prev := telemetry.Install(mine)
	defer telemetry.Install(prev)

	if _, err := PassReport(pipeline.GCC, "O1"); err != nil {
		t.Fatal(err)
	}
	if telemetry.Active() != mine {
		t.Fatal("PassReport did not restore the caller's sink")
	}
	if len(mine.Ledger()) != 0 {
		t.Errorf("PassReport leaked %d ledger cells into the caller's sink", len(mine.Ledger()))
	}
}

// TestWritePassReportRejectsBadConfig propagates constructor validation.
func TestWritePassReportRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePassReport(&buf, pipeline.GCC, "O7"); err == nil {
		t.Fatal("want error for unknown level O7")
	}
	if err := WritePassReport(&buf, pipeline.Profile("icc"), "O2"); err == nil {
		t.Fatal("want error for unknown profile")
	}
}
