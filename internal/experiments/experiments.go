// Package experiments regenerates every table and figure of the paper's
// evaluation on the MiniC substrate. Each Table*/Fig* method prints the
// same rows or series the paper reports; EXPERIMENTS.md records the
// shape comparison against the original numbers.
//
// The Runner caches the expensive intermediates (the loaded test suite,
// per-level pass analyses, SPEC baselines) so one process can regenerate
// the whole evaluation.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/ir"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/sema"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/synth"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
)

// Options scales the evaluation. The defaults regenerate every shape in
// minutes; the paper-scale knobs are documented per field.
type Options struct {
	// SynthCount is the number of synthetic programs for Table I
	// (paper: 5000). Programs whose reference run exceeds the interpreter
	// budget are skipped deterministically.
	SynthCount int
	// CorpusExecs is the fuzzing budget per harness (§IV).
	CorpusExecs int
	// SampleEvery is the AutoFDO sampling period in cycles.
	SampleEvery int64
	// Dy lists the Ox-dy sizes to evaluate (paper: 3, 5, 7, 9).
	Dy []int
	// SpecSubset restricts performance runs to these benchmarks
	// (nil = all eight).
	SpecSubset []string
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		SynthCount:  120,
		CorpusExecs: 400,
		SampleEvery: 997,
		Dy:          []int{3, 5, 7, 9},
	}
}

// Runner executes and caches the evaluation.
type Runner struct {
	Opts Options

	mu       sync.Mutex
	subjects []*testsuite.Subject
	analyses map[string]*tuner.LevelAnalysis
	speedups map[string]float64 // config name -> SPEC average speedup
	o0cycles map[string]int64   // benchmark -> O0 cycles (per profile key)
}

// NewRunner creates a runner.
func NewRunner(opts Options) *Runner {
	return &Runner{
		Opts:     opts,
		analyses: map[string]*tuner.LevelAnalysis{},
		speedups: map[string]float64{},
		o0cycles: map[string]int64{},
	}
}

// Suite loads (once) the 13-program test suite with fuzzed corpora.
func (r *Runner) Suite() ([]*testsuite.Subject, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.subjects != nil {
		return r.subjects, nil
	}
	subjects, err := testsuite.LoadAll(testsuite.CorpusOptions{Execs: r.Opts.CorpusExecs})
	if err != nil {
		return nil, err
	}
	r.subjects = subjects
	return subjects, nil
}

// Analysis runs (once) the per-pass analysis for a profile/level.
func (r *Runner) Analysis(p pipeline.Profile, level string) (*tuner.LevelAnalysis, error) {
	key := string(p) + "/" + level
	r.mu.Lock()
	if la := r.analyses[key]; la != nil {
		r.mu.Unlock()
		return la, nil
	}
	r.mu.Unlock()
	subjects, err := r.Suite()
	if err != nil {
		return nil, err
	}
	la, err := tuner.AnalyzeLevel(testsuite.Programs(subjects), p, level)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.analyses[key] = la
	r.mu.Unlock()
	return la, nil
}

// specNames returns the benchmarks under test.
func (r *Runner) specNames() []string {
	if r.Opts.SpecSubset != nil {
		return r.Opts.SpecSubset
	}
	return specsuite.Names
}

// SuiteSpeedup measures (once) the SPEC-average speedup of a config over
// its profile's O0.
func (r *Runner) SuiteSpeedup(cfg pipeline.Config) (float64, error) {
	key := cfg.Name()
	r.mu.Lock()
	if s, ok := r.speedups[key]; ok {
		r.mu.Unlock()
		return s, nil
	}
	r.mu.Unlock()
	_, avg, err := specsuite.SuiteSpeedup(cfg, r.specNames())
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	r.speedups[key] = avg
	r.mu.Unlock()
	return avg, nil
}

// SuiteProduct averages the hybrid product metric of a configuration
// over the 13-program suite.
func (r *Runner) SuiteProduct(cfg pipeline.Config) (float64, error) {
	subjects, err := r.Suite()
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, s := range subjects {
		m, err := s.Product(cfg)
		if err != nil {
			return 0, err
		}
		sum += m
	}
	return sum / float64(len(subjects)), nil
}

// ---- Synthetic corpus (Table I) ----

// synthProgram is one loaded synthetic subject.
type synthProgram struct {
	info *sema.Info
	dr   *sema.DefRanges
	ir0  *ir.Program
	stmt map[int]bool
	base *dbgtrace.Trace
}

// synthOptions keeps synthetic programs small enough to trace quickly.
var synthOptions = synth.Options{
	Funcs: 3, MaxDepth: 2, MaxStmts: 4, MaxVars: 5,
	MaxExpr: 4, Arrays: 2, Globals: 3,
}

// loadSynth deterministically selects the first n runnable synthetic
// programs.
func loadSynth(n int) []*synthProgram {
	var out []*synthProgram
	for seed := int64(0); len(out) < n && seed < int64(n)*30; seed++ {
		src := synth.Generate(seed, synthOptions)
		info, err := pipeline.Frontend(fmt.Sprintf("synth%d", seed), []byte(src))
		if err != nil {
			continue
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			continue
		}
		it := ir.NewInterp(ir0, 1<<21)
		if _, err := it.Call("main"); err != nil {
			continue
		}
		out = append(out, &synthProgram{
			info: info, dr: sema.ComputeDefRanges(info), ir0: ir0,
			stmt: sema.StatementLines(info),
		})
	}
	return out
}

// methodScores computes the four methods of §II for one build.
type methodScores struct {
	static, staticDbg, dynamic, hybrid metrics.Scores
}

func (sp *synthProgram) measure(cfg pipeline.Config, base *dbgtrace.Trace) (methodScores, error) {
	var ms methodScores
	bin := pipeline.Build(sp.ir0, cfg)
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return ms, err
	}
	tr, err := sess.TraceMain("main", 1<<22)
	if err != nil {
		return ms, err
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return ms, err
	}
	ms.dynamic = metrics.Dynamic(tr, base)
	ms.hybrid = metrics.Hybrid(tr, base, sp.dr)
	ms.static = metrics.Static(table, sp.stmt, sp.dr)
	ms.staticDbg = metrics.StaticDbg(table, base, sp.dr)
	return ms, nil
}

func (sp *synthProgram) baseline() (*dbgtrace.Trace, error) {
	if sp.base != nil {
		return sp.base, nil
	}
	bin := pipeline.Build(sp.ir0, pipeline.Config{Profile: pipeline.GCC, Level: "O0"})
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return nil, err
	}
	tr, err := sess.TraceMain("main", 1<<22)
	if err != nil {
		return nil, err
	}
	sp.base = tr
	return tr, nil
}

// levelsUnderTest enumerates the (profile, level) pairs the paper
// reports.
func levelsUnderTest() []pipeline.Config {
	var out []pipeline.Config
	for _, l := range pipeline.Levels(pipeline.GCC) {
		out = append(out, pipeline.Config{Profile: pipeline.GCC, Level: l})
	}
	for _, l := range pipeline.Levels(pipeline.Clang) {
		out = append(out, pipeline.Config{Profile: pipeline.Clang, Level: l})
	}
	return out
}

// geo folds per-program scores into the geometric mean the paper uses.
func geo(vals []float64) float64 { return metrics.GeoMean(vals) }

// sortedKeys returns map keys sorted for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// hr prints a horizontal rule.
func hr(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
