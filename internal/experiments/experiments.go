// Package experiments regenerates every table and figure of the paper's
// evaluation on the MiniC substrate. Each Table*/Fig* method prints the
// same rows or series the paper reports; EXPERIMENTS.md records the
// shape comparison against the original numbers.
//
// The Runner caches the expensive intermediates (the loaded test suite,
// per-level pass analyses, SPEC baselines) so one process can regenerate
// the whole evaluation.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/evalcache"
	"debugtuner/internal/ir"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/sema"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/suite"
	"debugtuner/internal/synth"
	"debugtuner/internal/testsuite"
	"debugtuner/internal/tuner"
	"debugtuner/internal/workerpool"
)

// Options scales the evaluation. The defaults regenerate every shape in
// minutes; the paper-scale knobs are documented per field.
type Options struct {
	// SynthCount is the number of synthetic programs for Table I
	// (paper: 5000). Programs whose reference run exceeds the interpreter
	// budget are skipped deterministically.
	SynthCount int
	// CorpusExecs is the fuzzing budget per harness (§IV).
	CorpusExecs int
	// SampleEvery is the AutoFDO sampling period in cycles.
	SampleEvery int64
	// Dy lists the Ox-dy sizes to evaluate (paper: 3, 5, 7, 9).
	Dy []int
	// SpecSubset restricts performance runs to these benchmarks
	// (nil = all eight).
	SpecSubset []string
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		SynthCount:  120,
		CorpusExecs: 400,
		SampleEvery: 997,
		Dy:          []int{3, 5, 7, 9},
	}
}

// Runner executes and caches the evaluation. Every memo is an
// evalcache.Cache, so concurrent table generators asking for the same
// intermediate (the loaded suite, a level analysis, a config's suite
// product or SPEC speedup) block on one computation instead of
// duplicating it.
type Runner struct {
	Opts Options

	subjects evalcache.Cache[[]suite.Subject]
	analyses evalcache.Cache[*tuner.LevelAnalysis]
	speedups evalcache.Cache[float64]   // config fingerprint -> SPEC average speedup
	products evalcache.Cache[suiteStat] // config fingerprint -> suite product stats
	fdo      evalcache.Cache[fdoResult] // bench|final|profiling -> AutoFDO measurement
}

// suiteStat is the suite-averaged product metric of one configuration
// plus the number of subjects whose measurements were quarantined (and
// therefore excluded from the mean).
type suiteStat struct {
	Mean        float64
	Quarantined int
}

// NewRunner creates a runner. AutoFDO measurements are bound to the
// process-wide persistent store when one is installed: their cache key
// (benchmark × final fingerprint × profiling fingerprint) plus the
// sampling period in the namespace fully determines the result, since
// benchmark sources are embedded in the executable and therefore covered
// by the store's tool hash.
func NewRunner(opts Options) *Runner {
	r := &Runner{Opts: opts}
	r.fdo.SetDisk(evalcache.DefaultDisk(),
		fmt.Sprintf("experiments.fdo|sample%d", opts.SampleEvery))
	return r
}

// Suite loads (once) the 13-program test suite with fuzzed corpora,
// exposed through the cross-suite interface. testsuite is the provider;
// every consumer downstream sees suite.Subject.
func (r *Runner) Suite() ([]suite.Subject, error) {
	return r.subjects.Do("suite", func() ([]suite.Subject, error) {
		loaded, err := testsuite.LoadAll(testsuite.CorpusOptions{Execs: r.Opts.CorpusExecs})
		if err != nil {
			return nil, err
		}
		out := make([]suite.Subject, len(loaded))
		for i, s := range loaded {
			out[i] = s
		}
		return out, nil
	})
}

// debuggable unwraps a suite subject to its tuner program for metric
// evaluation. Every subject the Runner loads is testsuite-backed, so
// the assertion cannot fail.
func debuggable(s suite.Subject) *tuner.Program {
	return s.(suite.Debuggable).Tuner()
}

// Analysis runs (once) the per-pass analysis for a profile/level.
func (r *Runner) Analysis(p pipeline.Profile, level string) (*tuner.LevelAnalysis, error) {
	return r.analyses.Do(string(p)+"/"+level, func() (*tuner.LevelAnalysis, error) {
		subjects, err := r.Suite()
		if err != nil {
			return nil, err
		}
		return tuner.AnalyzeLevel(suite.Programs(subjects), p, level)
	})
}

// specNames returns the benchmarks under test.
func (r *Runner) specNames() []string {
	if r.Opts.SpecSubset != nil {
		return r.Opts.SpecSubset
	}
	return specsuite.Names
}

// memoKey renders the memoization key of a config: the content
// fingerprint when it has one, else the display name (never reached by
// the table generators, which pass no FDO configs here).
func memoKey(cfg pipeline.Config) string {
	if fp, ok := cfg.Fingerprint(); ok {
		return fp
	}
	return cfg.Name()
}

// SuiteSpeedup measures (once) the SPEC-average speedup of a config over
// its profile's O0. The whole SPEC sweep is one resilience cell: a
// panicking or runaway benchmark run quarantines the configuration's
// speedup instead of killing the table generator.
func (r *Runner) SuiteSpeedup(cfg pipeline.Config) (float64, error) {
	return r.speedups.Do(memoKey(cfg), func() (float64, error) {
		benches, err := specsuite.Subjects(r.specNames())
		if err != nil {
			return 0, err
		}
		compute := func(context.Context) (float64, error) {
			_, avg, err := suite.SuiteSpeedup(benches, cfg)
			return avg, err
		}
		if fp, ok := cfg.Fingerprint(); ok {
			return resilience.Run(resilience.Active(), context.Background(),
				"speedup|"+fp, compute)
		}
		return resilience.RunEphemeral(resilience.Active(), context.Background(),
			"speedup|"+cfg.Name(), compute)
	})
}

// SuiteProduct averages (once per config — same memo discipline as
// SuiteSpeedup) the hybrid product metric of a configuration over the
// 13-program suite. Quarantined subjects are excluded from the mean;
// callers that must render the gap use suiteProductStat.
func (r *Runner) SuiteProduct(cfg pipeline.Config) (float64, error) {
	st, err := r.suiteProductStat(cfg)
	return st.Mean, err
}

// suiteProductStat fans the per-subject measurements out over the worker
// pool and averages in suite order. Subjects whose cell was quarantined
// are excluded from the mean and counted in the stat; if every subject
// is lost the configuration's own result is the (quarantined, and
// therefore uncacheable) cell error.
func (r *Runner) suiteProductStat(cfg pipeline.Config) (suiteStat, error) {
	return r.products.Do(memoKey(cfg), func() (suiteStat, error) {
		subjects, err := r.Suite()
		if err != nil {
			return suiteStat{}, err
		}
		type cell struct {
			val  float64
			quar error
		}
		ms, err := workerpool.Map(context.Background(), subjects,
			func(_ context.Context, _ int, s suite.Subject) (cell, error) {
				v, err := debuggable(s).Product(cfg)
				if resilience.IsQuarantined(err) {
					return cell{quar: err}, nil
				}
				return cell{val: v}, err
			})
		if err != nil {
			return suiteStat{}, err
		}
		var st suiteStat
		sum, n := 0.0, 0
		var lastQuar error
		for _, c := range ms {
			if c.quar != nil {
				st.Quarantined++
				lastQuar = c.quar
				continue
			}
			sum += c.val
			n++
		}
		if n == 0 {
			return suiteStat{}, lastQuar
		}
		st.Mean = sum / float64(n)
		return st, nil
	})
}

// ---- Synthetic corpus (Table I) ----

// synthProgram is one loaded synthetic subject.
type synthProgram struct {
	info *sema.Info
	dr   *sema.DefRanges
	ir0  *ir.Program
	stmt map[int]bool

	baseOnce sync.Once
	base     *dbgtrace.Trace
	baseErr  error
}

// synthOptions keeps synthetic programs small enough to trace quickly.
var synthOptions = synth.Options{
	Funcs: 3, MaxDepth: 2, MaxStmts: 4, MaxVars: 5,
	MaxExpr: 4, Arrays: 2, Globals: 3,
}

// trySynth generates, front-ends, and smoke-runs one seed, returning
// nil when the program is not runnable.
func trySynth(seed int64) *synthProgram {
	src := synth.Generate(seed, synthOptions)
	info, err := pipeline.Frontend(fmt.Sprintf("synth%d", seed), []byte(src))
	if err != nil {
		return nil
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		return nil
	}
	it := ir.NewInterp(ir0, 1<<21)
	if _, err := it.Call("main"); err != nil {
		return nil
	}
	return &synthProgram{
		info: info, dr: sema.ComputeDefRanges(info), ir0: ir0,
		stmt: sema.StatementLines(info),
	}
}

// loadSynth deterministically selects the first n runnable synthetic
// programs. Candidate seeds are evaluated in parallel chunks; the
// selection — the first n runnable seeds in seed order — is identical
// to the serial scan's at any worker count.
func loadSynth(n int) []*synthProgram {
	limit := int64(n) * 30
	chunk := int64(workerpool.Workers()) * 8
	if chunk < 8 {
		chunk = 8
	}
	var out []*synthProgram
	for lo := int64(0); int64(len(out)) < int64(n) && lo < limit; lo += chunk {
		hi := lo + chunk
		if hi > limit {
			hi = limit
		}
		seeds := make([]int64, 0, hi-lo)
		for s := lo; s < hi; s++ {
			seeds = append(seeds, s)
		}
		batch, _ := workerpool.Map(context.Background(), seeds,
			func(_ context.Context, _ int, seed int64) (*synthProgram, error) {
				return trySynth(seed), nil
			})
		for _, sp := range batch {
			if sp != nil && len(out) < n {
				out = append(out, sp)
			}
		}
	}
	return out
}

// methodScores computes the four methods of §II for one build, plus
// the dataflow-proven variant of the static method (its numerator
// restricted to claims the owner analysis guarantees materialize).
type methodScores struct {
	static, staticDbg, dynamic, hybrid metrics.Scores
	staticProven                       metrics.Scores
}

func (sp *synthProgram) measure(cfg pipeline.Config, base *dbgtrace.Trace) (methodScores, error) {
	var ms methodScores
	bin := pipeline.Build(sp.ir0, cfg)
	sess, err := debugger.NewSession(bin)
	if err != nil {
		return ms, err
	}
	tr, err := sess.TraceMain("main", 1<<22)
	if err != nil {
		return ms, err
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return ms, err
	}
	ms.dynamic = metrics.Dynamic(tr, base)
	ms.hybrid = metrics.Hybrid(tr, base, sp.dr)
	ms.static = metrics.Static(table, sp.stmt, sp.dr)
	ms.staticDbg = metrics.StaticDbg(table, base, sp.dr)
	ms.staticProven = metrics.StaticProven(bin, table, sp.stmt, sp.dr)
	return ms, nil
}

func (sp *synthProgram) baseline() (*dbgtrace.Trace, error) {
	sp.baseOnce.Do(func() {
		bin := pipeline.Build(sp.ir0, pipeline.MustConfig(pipeline.GCC, "O0"))
		sess, err := debugger.NewSession(bin)
		if err != nil {
			sp.baseErr = err
			return
		}
		sp.base, sp.baseErr = sess.TraceMain("main", 1<<22)
	})
	return sp.base, sp.baseErr
}

// levelsUnderTest enumerates the (profile, level) pairs the paper
// reports.
func levelsUnderTest() []pipeline.Config {
	var out []pipeline.Config
	for _, l := range pipeline.Levels(pipeline.GCC) {
		out = append(out, pipeline.MustConfig(pipeline.GCC, l))
	}
	for _, l := range pipeline.Levels(pipeline.Clang) {
		out = append(out, pipeline.MustConfig(pipeline.Clang, l))
	}
	return out
}

// geo folds per-program scores into the geometric mean the paper uses.
func geo(vals []float64) float64 { return metrics.GeoMean(vals) }

// sortedKeys returns map keys sorted for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// hr prints a horizontal rule.
func hr(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}
