package ast

import (
	"testing"

	"debugtuner/internal/source"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TypeInt: "int", TypeArray: "int[]", TypeVoid: "void",
		TypeInvalid: "invalid",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestProgramFuncLookup(t *testing.T) {
	p := &Program{Funcs: []*FuncDecl{
		{Name: "a"}, {Name: "b"},
	}}
	if p.Func("b") != p.Funcs[1] {
		t.Error("lookup failed")
	}
	if p.Func("missing") != nil {
		t.Error("missing function should be nil")
	}
}

func TestNodePositions(t *testing.T) {
	pos := source.Pos{Line: 7, Col: 3}
	nodes := []Node{
		&IntLit{PosVal: pos}, &Name{PosVal: pos}, &Unary{PosVal: pos},
		&Binary{PosVal: pos}, &Index{PosVal: pos}, &Call{PosVal: pos},
		&NewArray{PosVal: pos}, &LenExpr{PosVal: pos},
		&VarDecl{PosVal: pos}, &Assign{PosVal: pos}, &ExprStmt{PosVal: pos},
		&PrintStmt{PosVal: pos}, &If{PosVal: pos}, &While{PosVal: pos},
		&For{PosVal: pos}, &Break{PosVal: pos}, &Continue{PosVal: pos},
		&Return{PosVal: pos}, &Block{PosVal: pos}, &FuncDecl{PosVal: pos},
	}
	for i, n := range nodes {
		if n.Pos() != pos {
			t.Errorf("node %d (%T) lost its position", i, n)
		}
	}
	g := &GlobalDecl{Decl: &VarDecl{PosVal: pos}}
	if g.Pos() != pos {
		t.Error("global position wrong")
	}
}
