// Package ast defines the MiniC abstract syntax tree.
//
// The tree is deliberately small: MiniC has two types (int and int[]),
// functions, and structured control flow. Every node carries a source
// position so the semantic analyzer can compute per-line definition
// ranges — the ingredient the hybrid debug-information metric needs.
package ast

import "debugtuner/internal/source"

// Type is a MiniC type.
type Type int

// MiniC types. TypeVoid is only valid as a function result.
const (
	TypeInvalid Type = iota
	TypeInt
	TypeArray // int[]
	TypeVoid
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeArray:
		return "int[]"
	case TypeVoid:
		return "void"
	}
	return "invalid"
}

// Node is implemented by every AST node.
type Node interface {
	Pos() source.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---- Expressions ----

// IntLit is an integer literal.
type IntLit struct {
	Val    int64
	PosVal source.Pos
}

// Name is an identifier reference. Sym is filled in by the semantic
// analyzer.
type Name struct {
	Ident  string
	PosVal source.Pos
	Sym    *Symbol
}

// Unary is -x or !x.
type Unary struct {
	Op     string // "-" or "!"
	X      Expr
	PosVal source.Pos
}

// Binary is a binary operation. For "&&" and "||" evaluation
// short-circuits.
type Binary struct {
	Op     string
	X, Y   Expr
	PosVal source.Pos
}

// Index is a[i].
type Index struct {
	Arr    Expr
	Idx    Expr
	PosVal source.Pos
}

// Call is f(args...).
type Call struct {
	Fun    string
	Args   []Expr
	PosVal source.Pos
	Target *FuncDecl // resolved callee
}

// NewArray is new int[n].
type NewArray struct {
	Size   Expr
	PosVal source.Pos
}

// LenExpr is len(a).
type LenExpr struct {
	Arr    Expr
	PosVal source.Pos
}

func (e *IntLit) Pos() source.Pos   { return e.PosVal }
func (e *Name) Pos() source.Pos     { return e.PosVal }
func (e *Unary) Pos() source.Pos    { return e.PosVal }
func (e *Binary) Pos() source.Pos   { return e.PosVal }
func (e *Index) Pos() source.Pos    { return e.PosVal }
func (e *Call) Pos() source.Pos     { return e.PosVal }
func (e *NewArray) Pos() source.Pos { return e.PosVal }
func (e *LenExpr) Pos() source.Pos  { return e.PosVal }

func (*IntLit) exprNode()   {}
func (*Name) exprNode()     {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}
func (*NewArray) exprNode() {}
func (*LenExpr) exprNode()  {}

// ---- Statements ----

// VarDecl declares a variable, optionally with an initializer.
type VarDecl struct {
	Name   string
	Type   Type
	Init   Expr // may be nil for globals with implicit zero
	PosVal source.Pos
	Sym    *Symbol
}

// Assign assigns to a variable or array element.
type Assign struct {
	// Exactly one of Target (a *Name) or (Arr, Idx) is set.
	Target *Name
	Arr    Expr
	Idx    Expr
	Value  Expr
	PosVal source.Pos
}

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	X      Expr
	PosVal source.Pos
}

// PrintStmt is print(x).
type PrintStmt struct {
	X      Expr
	PosVal source.Pos
}

// If is a conditional with an optional else branch.
type If struct {
	Cond   Expr
	Then   *Block
	Else   Stmt // *Block or *If or nil
	PosVal source.Pos
}

// While is a pre-tested loop.
type While struct {
	Cond   Expr
	Body   *Block
	PosVal source.Pos
}

// For is for(init; cond; post) body. Init may be a VarDecl or Assign,
// cond/post may be nil.
type For struct {
	Init   Stmt
	Cond   Expr
	Post   Stmt
	Body   *Block
	PosVal source.Pos
}

// Break exits the innermost loop.
type Break struct{ PosVal source.Pos }

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ PosVal source.Pos }

// Return exits the function, with a value for int-returning functions.
type Return struct {
	Value  Expr // nil for void
	PosVal source.Pos
}

// Block is { stmts... }. EndPos is the closing brace, used to bound
// definition ranges of block-scoped variables.
type Block struct {
	Stmts  []Stmt
	PosVal source.Pos
	EndPos source.Pos
}

func (s *VarDecl) Pos() source.Pos   { return s.PosVal }
func (s *Assign) Pos() source.Pos    { return s.PosVal }
func (s *ExprStmt) Pos() source.Pos  { return s.PosVal }
func (s *PrintStmt) Pos() source.Pos { return s.PosVal }
func (s *If) Pos() source.Pos        { return s.PosVal }
func (s *While) Pos() source.Pos     { return s.PosVal }
func (s *For) Pos() source.Pos       { return s.PosVal }
func (s *Break) Pos() source.Pos     { return s.PosVal }
func (s *Continue) Pos() source.Pos  { return s.PosVal }
func (s *Return) Pos() source.Pos    { return s.PosVal }
func (s *Block) Pos() source.Pos     { return s.PosVal }

func (*VarDecl) stmtNode()   {}
func (*Assign) stmtNode()    {}
func (*ExprStmt) stmtNode()  {}
func (*PrintStmt) stmtNode() {}
func (*If) stmtNode()        {}
func (*While) stmtNode()     {}
func (*For) stmtNode()       {}
func (*Break) stmtNode()     {}
func (*Continue) stmtNode()  {}
func (*Return) stmtNode()    {}
func (*Block) stmtNode()     {}

// ---- Declarations ----

// Param is a function parameter.
type Param struct {
	Name   string
	Type   Type
	PosVal source.Pos
	Sym    *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []*Param
	Result Type // TypeInt or TypeVoid
	Body   *Block
	PosVal source.Pos
	EndPos source.Pos
}

func (d *FuncDecl) Pos() source.Pos { return d.PosVal }

// GlobalDecl is a top-level variable.
type GlobalDecl struct {
	Decl *VarDecl
}

func (d *GlobalDecl) Pos() source.Pos { return d.Decl.PosVal }

// Program is a parsed compilation unit.
type Program struct {
	File    *source.File
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// SymbolKind distinguishes the storage class of a symbol.
type SymbolKind int

// Symbol storage classes.
const (
	SymLocal SymbolKind = iota
	SymParam
	SymGlobal
)

// Symbol is a resolved variable. The semantic analyzer allocates one per
// declaration and records its definition range (declaration to end of
// enclosing scope), which the hybrid metric uses to clip DWARF's inflated
// whole-scope locations.
type Symbol struct {
	Name  string
	Type  Type
	Kind  SymbolKind
	Decl  source.Pos   // declaration position
	Scope source.Range // definition range in the source
	Func  string       // owning function, "" for globals
	ID    int          // unique within the program
}
