package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newLinter(t *testing.T) *Linter {
	t.Helper()
	l, err := New("../..")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// scratch writes one Go file into a temp dir and analyzes it with a
// linter whose import resolution is still rooted at the repo.
func scratch(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := newLinter(t).CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestRepoIsClean(t *testing.T) {
	fs, err := newLinter(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

func TestFlagsRawConfigLiteral(t *testing.T) {
	fs := scratch(t, `package scratch

import "debugtuner/internal/pipeline"

var cfg = pipeline.Config{Level: "O2"}
`)
	if len(fs) != 1 || fs[0].Code != "config-literal" {
		t.Fatalf("got %v, want one config-literal finding", fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding at line %d, want 5", fs[0].Pos.Line)
	}
	if !strings.Contains(fs[0].Msg, "pipeline.NewConfig") {
		t.Errorf("message %q does not point at NewConfig", fs[0].Msg)
	}
}

func TestAllowsNewConfigAndValueCopies(t *testing.T) {
	fs := scratch(t, `package scratch

import "debugtuner/internal/pipeline"

func ok() (pipeline.Config, error) {
	cfg, err := pipeline.NewConfig(pipeline.GCC, "O2")
	if err != nil {
		return cfg, err
	}
	copied := cfg // value copies are fine, only literals are flagged
	return copied, nil
}
`)
	if len(fs) != 0 {
		t.Fatalf("clean use flagged: %v", fs)
	}
}

func TestFlagsPrintInsideMapRange(t *testing.T) {
	fs := scratch(t, `package scratch

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	if len(fs) != 1 || fs[0].Code != "map-range-print" {
		t.Fatalf("got %v, want one map-range-print finding", fs)
	}
	if fs[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want 7", fs[0].Pos.Line)
	}
}

func TestFlagsFprintfIntoWriterInsideMapRange(t *testing.T) {
	fs := scratch(t, `package scratch

import (
	"fmt"
	"io"
)

func dump(w io.Writer, m map[int]int) {
	for k := range m {
		fmt.Fprintf(w, "%d\n", k)
	}
}
`)
	if len(fs) != 1 || fs[0].Code != "map-range-print" {
		t.Fatalf("got %v, want one map-range-print finding", fs)
	}
}

func TestAllowsSortedKeyIteration(t *testing.T) {
	fs := scratch(t, `package scratch

import (
	"fmt"
	"sort"
)

func dump(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("sorted iteration flagged: %v", fs)
	}
}

func TestAllowsSliceRangePrinting(t *testing.T) {
	fs := scratch(t, `package scratch

import "fmt"

func dump(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice iteration flagged: %v", fs)
	}
}
