package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newLinter(t *testing.T) *Linter {
	t.Helper()
	l, err := New("../..")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// scratch writes one Go file into a temp dir and analyzes it with a
// linter whose import resolution is still rooted at the repo.
func scratch(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := newLinter(t).CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestRepoIsClean(t *testing.T) {
	fs, err := newLinter(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

func TestFlagsRawConfigLiteral(t *testing.T) {
	fs := scratch(t, `package scratch

import "debugtuner/internal/pipeline"

var cfg = pipeline.Config{Level: "O2"}
`)
	if len(fs) != 1 || fs[0].Code != "config-literal" {
		t.Fatalf("got %v, want one config-literal finding", fs)
	}
	if fs[0].Pos.Line != 5 {
		t.Errorf("finding at line %d, want 5", fs[0].Pos.Line)
	}
	if !strings.Contains(fs[0].Msg, "pipeline.NewConfig") {
		t.Errorf("message %q does not point at NewConfig", fs[0].Msg)
	}
}

func TestAllowsNewConfigAndValueCopies(t *testing.T) {
	fs := scratch(t, `package scratch

import "debugtuner/internal/pipeline"

func ok() (pipeline.Config, error) {
	cfg, err := pipeline.NewConfig(pipeline.GCC, "O2")
	if err != nil {
		return cfg, err
	}
	copied := cfg // value copies are fine, only literals are flagged
	return copied, nil
}
`)
	if len(fs) != 0 {
		t.Fatalf("clean use flagged: %v", fs)
	}
}

func TestFlagsPrintInsideMapRange(t *testing.T) {
	fs := scratch(t, `package scratch

import "fmt"

func dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	if len(fs) != 1 || fs[0].Code != "map-range-print" {
		t.Fatalf("got %v, want one map-range-print finding", fs)
	}
	if fs[0].Pos.Line != 7 {
		t.Errorf("finding at line %d, want 7", fs[0].Pos.Line)
	}
}

func TestFlagsFprintfIntoWriterInsideMapRange(t *testing.T) {
	fs := scratch(t, `package scratch

import (
	"fmt"
	"io"
)

func dump(w io.Writer, m map[int]int) {
	for k := range m {
		fmt.Fprintf(w, "%d\n", k)
	}
}
`)
	if len(fs) != 1 || fs[0].Code != "map-range-print" {
		t.Fatalf("got %v, want one map-range-print finding", fs)
	}
}

func TestAllowsSortedKeyIteration(t *testing.T) {
	fs := scratch(t, `package scratch

import (
	"fmt"
	"sort"
)

func dump(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("sorted iteration flagged: %v", fs)
	}
}

// cmdScratch writes one Go file into a temp dir with a "cmd" path
// element, which opts the package into the api-marshal rule.
func cmdScratch(t *testing.T, src string) []Finding {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "cmd", "x")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "s.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := newLinter(t).CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFlagsMarshalOfNonAPIStructInCmd(t *testing.T) {
	fs := cmdScratch(t, `package main

import "encoding/json"

type report struct {
	Count int
}

func dump() ([]byte, error) {
	return json.Marshal(report{Count: 1})
}
`)
	if len(fs) != 1 || fs[0].Code != "api-marshal" {
		t.Fatalf("got %v, want one api-marshal finding", fs)
	}
	if !strings.Contains(fs[0].Msg, "main.report") {
		t.Errorf("message %q does not name the payload type", fs[0].Msg)
	}
}

func TestFlagsEncoderEncodeOfMapInCmd(t *testing.T) {
	fs := cmdScratch(t, `package main

import (
	"encoding/json"
	"os"
)

func dump(m map[string]int) error {
	return json.NewEncoder(os.Stdout).Encode(m)
}
`)
	if len(fs) != 1 || fs[0].Code != "api-marshal" {
		t.Fatalf("got %v, want one api-marshal finding", fs)
	}
}

func TestAllowsMarshalOfAPIStructInCmd(t *testing.T) {
	fs := cmdScratch(t, `package main

import (
	"encoding/json"

	"debugtuner/internal/api"
)

func dump(req *api.TuneRequest) ([]byte, error) {
	return json.Marshal(req)
}
`)
	if len(fs) != 0 {
		t.Fatalf("api DTO marshal flagged: %v", fs)
	}
}

func TestAllowsNonAPIMarshalOutsideCmd(t *testing.T) {
	fs := scratch(t, `package scratch

import "encoding/json"

type blob struct {
	N int
}

func dump() ([]byte, error) {
	return json.Marshal(blob{N: 1})
}
`)
	if len(fs) != 0 {
		t.Fatalf("internal-package marshal flagged: %v", fs)
	}
}

func TestAllowsUnmarshalAndBasicMarshalInCmd(t *testing.T) {
	fs := cmdScratch(t, `package main

import "encoding/json"

func roundtrip(data []byte) ([]byte, error) {
	var n int
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, err
	}
	return json.Marshal(n)
}
`)
	if len(fs) != 0 {
		t.Fatalf("basic-type marshal flagged: %v", fs)
	}
}

func TestFlagsExitInInternalPackage(t *testing.T) {
	fs := scratch(t, `package scratch

import "os"

func die() {
	os.Exit(1)
}
`)
	if len(fs) != 1 || fs[0].Code != "exit-owner" {
		t.Fatalf("got %v, want one exit-owner finding", fs)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("finding at line %d, want 6", fs[0].Pos.Line)
	}
}

func TestFlagsExitInCmdHelper(t *testing.T) {
	fs := cmdScratch(t, `package main

import "os"

func main() {
	fail()
}

func fail() {
	os.Exit(1)
}
`)
	if len(fs) != 1 || fs[0].Code != "exit-owner" {
		t.Fatalf("got %v, want one exit-owner finding", fs)
	}
}

func TestAllowsExitInCmdMainAndClosures(t *testing.T) {
	fs := cmdScratch(t, `package main

import "os"

func main() {
	exit := func(code int) {
		os.Exit(code)
	}
	if len(os.Args) > 9 {
		os.Exit(2)
	}
	exit(0)
}
`)
	if len(fs) != 0 {
		t.Fatalf("main-owned exits flagged: %v", fs)
	}
}

func TestAllowsExitInOptionsPackage(t *testing.T) {
	// The real package: its interrupt machinery owns exit code 4.
	fs, err := newLinter(t).CheckDir("../options")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Code == "exit-owner" {
			t.Errorf("internal/options not exempt: %s", f)
		}
	}
}

func TestAllowsSliceRangePrinting(t *testing.T) {
	fs := scratch(t, `package scratch

import "fmt"

func dump(xs []int) {
	for _, x := range xs {
		fmt.Println(x)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("slice iteration flagged: %v", fs)
	}
}
