// Package lint is a repo-local, stdlib-only static analyzer in the
// go-vet mold for this codebase's own invariants. It type-checks the
// tree with go/parser + go/types (no golang.org/x/tools dependency) and
// reports two determinism-critical mistakes:
//
//   - config-literal: a raw pipeline.Config composite literal outside
//     internal/pipeline. Configurations must come from
//     pipeline.NewConfig, which validates the profile/level pair and
//     keeps fingerprints (and therefore the binary cache) canonical; a
//     hand-rolled literal silently bypasses both.
//
//   - map-range-print: an fmt print call inside a `range` over a map.
//     Map iteration order is randomized, so output written from such a
//     loop differs run to run — exactly the nondeterminism the
//     byte-identical-output contract of the experiment harness forbids.
//     Collect the keys, sort them, and range over the slice.
//
//   - api-marshal: a direct json.Marshal (or MarshalIndent, or
//     json.Encoder.Encode) of a struct or map that is not an
//     internal/api DTO, inside a cmd/ package. Everything a command
//     puts on the wire or into a JSON artifact must be a versioned
//     api struct rendered through api.MarshalEnvelope; ad-hoc structs
//     recreate exactly the format drift the typed API removed. (Maps
//     additionally marshal in sorted-key order only by convention —
//     DTOs are map-free by contract.)
//
//   - exit-owner: an os.Exit call outside a command's main function
//     (internal/options, which implements the shared exit-code
//     machinery, is exempt). The process exit-code contract
//     (0 ok, 1 failure, 2 usage, 3 findings, 4 interrupted) must have
//     a single owner per binary; an exit buried in a helper silently
//     skips the shared runtime's Finish path (telemetry export,
//     quarantine report) and makes library code untestable. Return an
//     error and let main map it to a code.
//
// Stdlib imports are resolved from source ($GOROOT/src); any package
// that cannot be loaded degrades to an empty stub and its type errors
// are tolerated, so the analyzer never needs network access or
// compiled export data.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Pos  token.Position
	Code string // "config-literal", "map-range-print", "api-marshal", or "exit-owner"
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Code, f.Msg)
}

// Linter analyzes packages of the module rooted at root.
type Linter struct {
	root    string
	modpath string
	fset    *token.FileSet
	std     types.Importer
	memo    map[string]*types.Package
	loading map[string]bool
}

// New returns a linter for the module at root. The module path is read
// from go.mod; repo-internal imports resolve from source under root.
func New(root string) (*Linter, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modpath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Linter{
		root:    root,
		modpath: modpath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		memo:    map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// Import resolves a dependency for the type checker: module-internal
// packages from source under the linter's root, everything else through
// the stdlib source importer, degrading to an empty stub on failure.
func (l *Linter) Import(path string) (*types.Package, error) {
	if pkg, ok := l.memo[path]; ok {
		return pkg, nil
	}
	if rel, ok := strings.CutPrefix(path, l.modpath+"/"); ok {
		if l.loading[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		l.loading[path] = true
		defer delete(l.loading, path)
		files, name, err := l.parseDir(filepath.Join(l.root, filepath.FromSlash(rel)), false)
		if err != nil {
			return nil, err
		}
		pkg := l.typecheck(path, name, files, nil)
		l.memo[path] = pkg
		return pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		// Offline fallback: an empty, complete package. Member lookups
		// fail with type errors, which the tolerant checker swallows.
		pkg = types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
		pkg.MarkComplete()
	}
	l.memo[path] = pkg
	return pkg, nil
}

// parseDir parses the directory's Go files into one or two units. With
// tests false only non-test files of the primary package are returned;
// with tests true the map may also hold an external "_test" package.
func (l *Linter) parseDir(dir string, tests bool) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	name := ""
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !tests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, "", err
		}
		files = append(files, f)
		if !strings.HasSuffix(f.Name.Name, "_test") {
			name = f.Name.Name
		}
	}
	return files, name, nil
}

// typecheck runs the tolerant checker and returns the package; when
// info is non-nil it is filled for the caller's analysis passes.
func (l *Linter) typecheck(path, name string, files []*ast.File, info *types.Info) *types.Package {
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // stubs and test-only refs may not resolve
	}
	pkg, _ := conf.Check(path, l.fset, files, info)
	if pkg == nil {
		pkg = types.NewPackage(path, name)
	}
	return pkg
}

// CheckDir analyzes one package directory (including its test files)
// and returns the findings, sorted by position.
func (l *Linter) CheckDir(dir string) ([]Finding, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	all, _, err := l.parseDir(abs, true)
	if err != nil {
		return nil, err
	}
	if len(all) == 0 {
		return nil, nil
	}
	// Split into the package unit (with in-package tests) and the
	// external test unit; each type-checks as its own compilation unit.
	units := map[string][]*ast.File{}
	for _, f := range all {
		units[f.Name.Name] = append(units[f.Name.Name], f)
	}
	path := l.pkgPath(abs)
	var out []Finding
	for name, files := range units {
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		upath := path
		if strings.HasSuffix(name, "_test") {
			upath = path + "_test"
		}
		l.typecheck(upath, name, files, info)
		for _, f := range files {
			out = append(out, l.checkFile(f, info, abs)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// pkgPath maps an absolute directory to its import path.
func (l *Linter) pkgPath(abs string) string {
	rootAbs, err := filepath.Abs(l.root)
	if err == nil {
		if rel, err := filepath.Rel(rootAbs, abs); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.modpath
			}
			return l.modpath + "/" + filepath.ToSlash(rel)
		}
	}
	return "scratch/" + filepath.Base(abs)
}

var printSinks = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func (l *Linter) checkFile(f *ast.File, info *types.Info, dir string) []Finding {
	var out []Finding
	add := func(pos token.Pos, code, msg string) {
		out = append(out, Finding{Pos: l.fset.Position(pos), Code: code, Msg: msg})
	}
	configExempt := l.pkgPath(dir) == l.modpath+"/internal/pipeline"
	exitExempt := l.pkgPath(dir) == l.modpath+"/internal/options"
	// The api-marshal rule applies to command packages. Detection is by
	// a "cmd" path element of the directory (not the import path) so the
	// tests' out-of-root scratch dirs can opt in by layout.
	inCmd := false
	for _, el := range strings.Split(filepath.ToSlash(dir), "/") {
		if el == "cmd" {
			inCmd = true
			break
		}
	}
	// exit-owner walks per top-level declaration so the one allowed
	// context — a command's main function, closures included — can be
	// skipped wholesale.
	if !exitExempt {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && inCmd && f.Name.Name == "main" &&
				fd.Recv == nil && fd.Name.Name == "main" {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Exit" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "os" {
					return true
				}
				add(call.Pos(), "exit-owner",
					"os.Exit outside a command's main function: the exit-code "+
						"contract has a single owner per binary; return an error "+
						"and let main map it to a code")
				return true
			})
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !inCmd {
				return true
			}
			if arg, ok := l.jsonMarshalArg(n, info); ok {
				if t, bad := l.nonAPIPayload(info, arg); bad {
					add(n.Pos(), "api-marshal",
						fmt.Sprintf("direct JSON marshaling of %s in a command: wire payloads "+
							"must be internal/api DTOs rendered via api.MarshalEnvelope", t))
				}
			}
		case *ast.CompositeLit:
			if configExempt {
				return true
			}
			tv, ok := info.Types[ast.Expr(n)]
			if !ok || tv.Type == nil {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Name() == "Config" && obj.Pkg() != nil &&
				obj.Pkg().Path() == l.modpath+"/internal/pipeline" {
				add(n.Pos(), "config-literal",
					"raw pipeline.Config composite literal: construct configurations with "+
						"pipeline.NewConfig so validation and fingerprinting apply")
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(n.Body, func(c ast.Node) bool {
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !printSinks[sel.Sel.Name] {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "fmt" {
					return true
				}
				add(call.Pos(), "map-range-print",
					"output written while ranging over a map: iteration order is "+
						"nondeterministic; collect and sort the keys first")
				return true
			})
		}
		return true
	})
	return out
}

// jsonMarshalArg returns the payload expression when call is
// json.Marshal(x), json.MarshalIndent(x, ...), or enc.Encode(x) on an
// *encoding/json.Encoder.
func (l *Linter) jsonMarshalArg(call *ast.CallExpr, info *types.Info) (ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	switch sel.Sel.Name {
	case "Marshal", "MarshalIndent":
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return nil, false
		}
		pn, ok := info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "encoding/json" {
			return nil, false
		}
		return call.Args[0], true
	case "Encode":
		tv, ok := info.Types[sel.X]
		if !ok || tv.Type == nil {
			return nil, false
		}
		t := tv.Type
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return nil, false
		}
		obj := named.Obj()
		if obj.Name() != "Encoder" || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/json" {
			return nil, false
		}
		return call.Args[0], true
	}
	return nil, false
}

// nonAPIPayload reports whether the expression's core type — pointers
// dereferenced, slices and arrays unwrapped — is a struct or map that
// is not an internal/api DTO, and names it for the diagnostic.
func (l *Linter) nonAPIPayload(info *types.Info, arg ast.Expr) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == l.modpath+"/internal/api" {
			return "", false
		}
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			name := obj.Name()
			if obj.Pkg() != nil {
				name = obj.Pkg().Name() + "." + name
			}
			return name, true
		}
		t = named.Underlying()
	}
	switch t.(type) {
	case *types.Struct:
		return "an anonymous struct", true
	case *types.Map:
		return "a map", true
	}
	return "", false
}

// Run analyzes every package directory under the linter's root
// (skipping testdata and hidden directories) and returns the combined
// findings, sorted by position.
func (l *Linter) Run() ([]Finding, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []Finding
	for _, dir := range dirs {
		fs, err := l.CheckDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return out, nil
}
