// Package metrics implements the four debug-information quality
// measurement methods compared in the paper's Table I:
//
//   - dynamic (Assaiante et al.): optimized debugger trace vs.
//     unoptimized-trace baseline. Underestimates availability because the
//     -O0 baseline includes DWARF's whole-scope variable locations,
//     visible before the variable is even assigned.
//   - static (Stinnett & Kell): debug-section contents vs. source-level
//     definition ranges, no execution. Overestimates availability by
//     counting locations that never materialize at runtime, and its line
//     baseline includes dead code.
//   - static-dbg: the static method with its baseline restricted to
//     lines actually stepped at -O0, for fair comparison.
//   - hybrid (this paper): the dynamic method with the -O0 baseline
//     clipped by the source definition-range analysis, removing the
//     DWARF inflation while keeping the end-user (runtime) perspective.
//
// All methods report availability of variables, line coverage, and their
// product — the paper's headline quality score.
package metrics

import (
	"math"
	"sort"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/sema"
)

// Scores holds one method's three metrics, each in [0, 1].
type Scores struct {
	Avail   float64
	LineCov float64
	Product float64
}

func mkScores(avail, cov float64) Scores {
	return Scores{Avail: avail, LineCov: cov, Product: avail * cov}
}

// ratio returns num/den with the convention that an empty baseline means
// nothing was lost.
func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Dynamic computes Assaiante et al.'s metrics from an optimized trace
// and the unoptimized baseline trace.
func Dynamic(opt, base *dbgtrace.Trace) Scores {
	return dynamicScores(opt, base, nil)
}

// Hybrid computes this paper's metrics: like Dynamic, but every per-line
// variable set is intersected with the source definition ranges, so a
// variable the -O0 debugger shows outside its source-level definition
// range no longer inflates the baseline.
func Hybrid(opt, base *dbgtrace.Trace, dr *sema.DefRanges) Scores {
	return dynamicScores(opt, base, dr)
}

func dynamicScores(opt, base *dbgtrace.Trace, dr *sema.DefRanges) Scores {
	common := 0
	availSum, availN := 0.0, 0
	// Iterate in sorted line order: float accumulation in Go map order
	// would make scores differ between runs at ULP level, which is enough
	// to flip tie-breaks in the pass ranking. The evaluation engine
	// promises bit-identical results at any worker count.
	for _, line := range sortedLines(base.Stepped) {
		if !opt.Stepped[line] {
			continue
		}
		common++
		baseVars := clip(base.Avail[line], dr, line)
		if len(baseVars) == 0 {
			continue
		}
		optVars := clip(opt.Avail[line], dr, line)
		hit := 0
		for v := range optVars {
			if baseVars[v] {
				hit++
			}
		}
		availSum += float64(hit) / float64(len(baseVars))
		availN++
	}
	avail := 1.0
	if availN > 0 {
		avail = availSum / float64(availN)
	}
	return mkScores(avail, ratio(common, len(base.Stepped)))
}

// clip intersects an availability set with the variables expected in
// scope and assigned at the line (no-op when dr is nil).
func clip(vars map[int]bool, dr *sema.DefRanges, line int) map[int]bool {
	if dr == nil {
		return vars
	}
	out := map[int]bool{}
	for v := range vars {
		if dr.InRange(v, line) {
			out[v] = true
		}
	}
	return out
}

// Static computes Stinnett & Kell-style metrics purely from the
// optimized binary's debug section and the source analysis.
//
// Per line of the baseline (every source statement line), availability is
// the fraction of expected variables that have a location of any
// materializable kind covering an address attributed to the line.
// Line coverage is the fraction of baseline lines present in the line
// table.
func Static(table *debuginfo.Table, stmtLines map[int]bool, dr *sema.DefRanges) Scores {
	return staticScores(table, stmtLines, dr)
}

// StaticDbg is the static method with the baseline restricted to lines
// stepped in the unoptimized binary, removing dead and unreachable code
// from the denominator.
func StaticDbg(table *debuginfo.Table, baseO0 *dbgtrace.Trace, dr *sema.DefRanges) Scores {
	lines, _ := BaselineLines(DenomSteppedO0, nil, baseO0, dr)
	return staticScores(table, lines, dr)
}

func staticScores(table *debuginfo.Table, baseLines map[int]bool, dr *sema.DefRanges) Scores {
	return staticScoresVis(table, baseLines, dr,
		func(symID int, addrs []uint32) bool {
			return staticVisible(table, symID, addrs)
		})
}

// staticScoresVis is the static measurement loop with the per-line
// claim test abstracted: the plain method accepts any covering claim
// (staticVisible), the proven variant only claims the dataflow
// analysis guarantees materialize (see StaticProven).
func staticScoresVis(table *debuginfo.Table, baseLines map[int]bool,
	dr *sema.DefRanges, visible func(symID int, addrs []uint32) bool) Scores {
	// Addresses attributed to each line.
	lineAddrs := table.BreakAddrs()
	// Precompute addr extents per line run: a variable covers the line
	// if any of the line's row-start addresses falls inside one of its
	// entries. (Row starts are where a debugger would set breakpoints.)
	steppable := table.SteppableLines()

	covered := 0
	availSum, availN := 0.0, 0
	for _, line := range sortedLines(baseLines) {
		if steppable[line] {
			covered++
		} else {
			// Lines the optimizer eliminated are charged to the line
			// coverage metric only; availability is a per-covered-line
			// question (counting them here would fold the coverage loss
			// into availability twice and invert the paper's
			// static-overestimation relation).
			continue
		}
		expected := dr.ExpectedAt(line)
		if len(expected) == 0 {
			continue
		}
		hit := 0
		for _, symID := range expected {
			if visible(symID, lineAddrs[line]) {
				hit++
			}
		}
		availSum += float64(hit) / float64(len(expected))
		availN++
	}
	avail := 1.0
	if availN > 0 {
		avail = availSum / float64(availN)
	}
	return mkScores(avail, ratio(covered, len(baseLines)))
}

// staticVisible reports whether the debug section claims a location for
// the symbol at any of the line's addresses. This is where the static
// method over-counts: the claim is not checked against runtime state.
func staticVisible(table *debuginfo.Table, symID int, addrs []uint32) bool {
	if len(addrs) == 0 {
		return false
	}
	for i := range table.Vars {
		v := &table.Vars[i]
		if int(v.SymID) != symID {
			continue
		}
		for _, a := range addrs {
			if e := v.LocAt(a); e != nil && e.Kind != debuginfo.LocNone {
				return true
			}
		}
	}
	return false
}

// sortedLines returns a set's members in ascending order, for
// deterministic float accumulation.
func sortedLines(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// GeoMean returns the geometric mean of strictly meaningful values;
// zeros are clamped to eps, matching the paper's aggregation of
// per-program scores.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	const eps = 1e-6
	sum := 0.0
	for _, v := range vals {
		if v < eps {
			v = eps
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// GeoStdDev returns the geometric standard deviation (the paper reports
// it to argue per-program variability is low on synthetic corpora).
func GeoStdDev(vals []float64) float64 {
	if len(vals) < 2 {
		return 1
	}
	const eps = 1e-6
	mu := math.Log(GeoMean(vals))
	sum := 0.0
	for _, v := range vals {
		if v < eps {
			v = eps
		}
		d := math.Log(v) - mu
		sum += d * d
	}
	return math.Exp(math.Sqrt(sum / float64(len(vals)-1)))
}

// Mean is the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
