package metrics

import (
	"fmt"
	"testing"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/sema"
	"debugtuner/internal/synth"
)

const measureSrc = `
var table: int[] = new int[64];

func mix(x: int, salt: int): int {
	var a: int = x * 31 + salt;
	var b: int = a ^ (a >> 5);
	var c: int = b * 3;
	if (c < 0) {
		c = 0 - c;
	}
	return c % 1024;
}
func fill(n: int) {
	for (var i: int = 0; i < n; i = i + 1) {
		var h: int = mix(i, 17);
		table[i % 64] = h;
	}
}
func total(n: int): int {
	var sum: int = 0;
	var odd: int = 0;
	for (var i: int = 0; i < n; i = i + 1) {
		var v: int = table[i % 64];
		if (v % 2 == 1) {
			odd = odd + 1;
		}
		sum = sum + v;
	}
	print(odd);
	return sum;
}
func main() {
	fill(100);
	print(total(100));
	var guard: int = table[3];
	if (guard > 100000) {
		print(777777); // unreachable in practice: dead for the dynamic baseline
	}
}
`

type measured struct {
	info *sema.Info
	dr   *sema.DefRanges
	base *dbgtrace.Trace // O0 trace
}

func measureSetup(t *testing.T) *measured {
	t.Helper()
	info, err := pipeline.Frontend("m.mc", []byte(measureSrc))
	if err != nil {
		t.Fatal(err)
	}
	dr := sema.ComputeDefRanges(info)
	base := traceFor(t, pipeline.MustConfig(pipeline.GCC, "O0"))
	return &measured{info: info, dr: dr, base: base}
}

func traceFor(t *testing.T, cfg pipeline.Config) *dbgtrace.Trace {
	t.Helper()
	bin, _, err := pipeline.CompileSource("m.mc", []byte(measureSrc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := debugger.NewSession(bin)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.TraceMain("main", 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func tableFor(t *testing.T, cfg pipeline.Config) *debuginfo.Table {
	t.Helper()
	bin, _, err := pipeline.CompileSource("m.mc", []byte(measureSrc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

// TestBaselineIsPerfect: measuring O0 against itself must give exactly 1
// on every dynamic metric.
func TestBaselineIsPerfect(t *testing.T) {
	m := measureSetup(t)
	s := Dynamic(m.base, m.base)
	if s.Avail != 1 || s.LineCov != 1 || s.Product != 1 {
		t.Fatalf("O0 vs O0 = %+v, want all 1", s)
	}
	h := Hybrid(m.base, m.base, m.dr)
	if h.Avail != 1 || h.LineCov != 1 {
		t.Fatalf("hybrid O0 vs O0 = %+v, want 1", h)
	}
}

// TestMetricBounds: every method stays within [0,1] at every level.
func TestMetricBounds(t *testing.T) {
	m := measureSetup(t)
	stmt := sema.StatementLines(m.info)
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		for _, l := range pipeline.Levels(p) {
			cfg := pipeline.MustConfig(p, l)
			tr := traceFor(t, cfg)
			dt := tableFor(t, cfg)
			for name, s := range map[string]Scores{
				"dynamic":    Dynamic(tr, m.base),
				"hybrid":     Hybrid(tr, m.base, m.dr),
				"static":     Static(dt, stmt, m.dr),
				"static-dbg": StaticDbg(dt, m.base, m.dr),
			} {
				for what, v := range map[string]float64{
					"avail": s.Avail, "linecov": s.LineCov, "product": s.Product,
				} {
					if v < 0 || v > 1 {
						t.Errorf("%s/%s/%s %s = %v out of [0,1]", p, l, name, what, v)
					}
				}
			}
		}
	}
}

// TestMethodOrderings checks the structural relations §II establishes:
// hybrid availability >= dynamic availability (the clipped baseline can
// only shrink denominators), hybrid and dynamic line coverage are equal,
// and optimization does not improve the product over O0.
func TestMethodOrderings(t *testing.T) {
	m := measureSetup(t)
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		for _, l := range pipeline.Levels(p) {
			cfg := pipeline.MustConfig(p, l)
			tr := traceFor(t, cfg)
			dyn := Dynamic(tr, m.base)
			hyb := Hybrid(tr, m.base, m.dr)
			if hyb.Avail < dyn.Avail-1e-9 {
				t.Errorf("%s/%s: hybrid avail %.4f < dynamic %.4f", p, l, hyb.Avail, dyn.Avail)
			}
			if hyb.LineCov != dyn.LineCov {
				t.Errorf("%s/%s: hybrid linecov %.4f != dynamic %.4f", p, l, hyb.LineCov, dyn.LineCov)
			}
			if hyb.Product > 1 {
				t.Errorf("%s/%s: product %v > 1", p, l, hyb.Product)
			}
		}
	}
}

// TestDegradationWithLevel: the product metric at O3 must not exceed O1
// (real-world programs degrade monotonically, §II).
func TestDegradationWithLevel(t *testing.T) {
	m := measureSetup(t)
	for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
		prods := map[string]float64{}
		for _, l := range pipeline.Levels(p) {
			tr := traceFor(t, pipeline.MustConfig(p, l))
			prods[l] = Hybrid(tr, m.base, m.dr).Product
		}
		if prods["O3"] > prods["O1"]+1e-9 {
			t.Errorf("%s: product O3 %.4f > O1 %.4f", p, prods["O3"], prods["O1"])
		}
		if prods["O1"] >= 1 {
			t.Errorf("%s: O1 lost no debug information at all (%.4f)", p, prods["O1"])
		}
	}
}

// TestStaticOverestimatesOnGCC: at O2/O3 under the gcc profile's
// optimistic ranges, the static-dbg availability must exceed the hybrid
// one — the overestimation the hybrid method corrects (Table I).
func TestStaticOverestimatesOnGCC(t *testing.T) {
	m := measureSetup(t)
	for _, l := range []string{"O2", "O3"} {
		cfg := pipeline.MustConfig(pipeline.GCC, l)
		tr := traceFor(t, cfg)
		dt := tableFor(t, cfg)
		hyb := Hybrid(tr, m.base, m.dr)
		st := StaticDbg(dt, m.base, m.dr)
		if st.Avail < hyb.Avail {
			t.Errorf("gcc/%s: static-dbg avail %.4f < hybrid %.4f (expected overestimation)",
				l, st.Avail, hyb.Avail)
		}
	}
}

// TestAggregates sanity-checks the geometric helpers.
func TestAggregates(t *testing.T) {
	if g := GeoMean([]float64{0.25, 1}); g < 0.49 || g > 0.51 {
		t.Fatalf("GeoMean = %v, want 0.5", g)
	}
	if s := GeoStdDev([]float64{0.5, 0.5, 0.5}); s != 1 {
		t.Fatalf("GeoStdDev of constants = %v, want 1", s)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
}

// TestStaticProvenLowerBoundsStatic: the proven variant restricts the
// static numerator to claims the owner dataflow analysis proves must
// materialize, so under the same line denominator it can never exceed
// Static — on the measurement program and on generated ones, at every
// profile and level. At gcc O2/O3 the gap must be real: some surviving
// claim is not provable, otherwise the proven column of Table 1 would
// be vacuous.
func TestStaticProvenLowerBoundsStatic(t *testing.T) {
	type subject struct {
		name string
		src  []byte
	}
	subjects := []subject{{"m.mc", []byte(measureSrc)}}
	for seed := int64(1); seed <= 4; seed++ {
		name := fmt.Sprintf("synth-%d.mc", seed)
		subjects = append(subjects, subject{name, []byte(synth.Generate(seed, synth.DefaultOptions()))})
	}
	for _, sub := range subjects {
		info, err := pipeline.Frontend(sub.name, sub.src)
		if err != nil {
			t.Fatalf("%s: %v", sub.name, err)
		}
		dr := sema.ComputeDefRanges(info)
		stmt := sema.StatementLines(info)
		for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
			for _, l := range pipeline.Levels(p) {
				cfg := pipeline.MustConfig(p, l)
				bin, _, err := pipeline.CompileSource(sub.name, sub.src, cfg)
				if err != nil {
					t.Fatalf("%s %s/%s: %v", sub.name, p, l, err)
				}
				dt, err := debuginfo.Decode(bin.Debug)
				if err != nil {
					t.Fatalf("%s %s/%s: %v", sub.name, p, l, err)
				}
				st := Static(dt, stmt, dr)
				pr := StaticProven(bin, dt, stmt, dr)
				if pr.Avail > st.Avail+1e-9 || pr.Product > st.Product+1e-9 {
					t.Errorf("%s %s/%s: proven %+v exceeds static %+v", sub.name, p, l, pr, st)
				}
				if pr.Avail < 0 || pr.Avail > 1 || pr.Product < 0 || pr.Product > 1 {
					t.Errorf("%s %s/%s: proven %+v out of [0,1]", sub.name, p, l, pr)
				}
			}
		}
	}
	// The gap: on the measurement program at gcc O2 some claim must be
	// unprovable, or the proven column never says anything new.
	m := measureSetup(t)
	stmt := sema.StatementLines(m.info)
	cfg := pipeline.MustConfig(pipeline.GCC, "O2")
	bin, _, err := pipeline.CompileSource("m.mc", []byte(measureSrc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dt, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		t.Fatal(err)
	}
	st := Static(dt, stmt, m.dr)
	pr := StaticProven(bin, dt, stmt, m.dr)
	if pr.Avail >= st.Avail {
		t.Errorf("gcc/O2: proven avail %.4f not below static %.4f", pr.Avail, st.Avail)
	}
}
