package metrics

import (
	"fmt"
	"sort"
	"strings"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/sema"
)

// Denom selects the line-coverage denominator — the set of source lines
// a debugger is charged with being able to stop on. Stinnett & Kell's
// "Accurate Coverage Metrics" observation is that this choice, not the
// numerator, separates the published methods: each denominator below
// turns the same static measurement into a different member of the
// metric family, so campaigns can score under any of them.
type Denom string

const (
	// DenomStmtLines: every source statement line — the plain static
	// method's baseline, dead code included (overestimates loss).
	DenomStmtLines Denom = "stmt-lines"
	// DenomSteppedO0: lines actually stepped at -O0 — the static-dbg
	// correction, which needs a baseline trace.
	DenomSteppedO0 Denom = "stepped-o0"
	// DenomDefRanges: statement lines inside at least one variable's
	// source-level definition range — the coverage-metrics refinement
	// that charges the compiler only for lines where debug state exists
	// to show.
	DenomDefRanges Denom = "def-ranges"
)

// Denoms lists the denominator family in report order.
func Denoms() []Denom {
	return []Denom{DenomStmtLines, DenomSteppedO0, DenomDefRanges}
}

// ParseDenom resolves a flag value to a family member.
func ParseDenom(s string) (Denom, error) {
	for _, d := range Denoms() {
		if string(d) == s {
			return d, nil
		}
	}
	var names []string
	for _, d := range Denoms() {
		names = append(names, string(d))
	}
	return "", fmt.Errorf("metrics: unknown denominator %q (want %s)",
		s, strings.Join(names, ", "))
}

// BaselineLines materializes the chosen denominator as a line set.
// stmtLines is required for stmt-lines and def-ranges; baseO0 for
// stepped-o0; dr for def-ranges.
func BaselineLines(d Denom, stmtLines map[int]bool, baseO0 *dbgtrace.Trace, dr *sema.DefRanges) (map[int]bool, error) {
	switch d {
	case DenomStmtLines:
		if stmtLines == nil {
			return nil, fmt.Errorf("metrics: %s needs statement lines", d)
		}
		return stmtLines, nil
	case DenomSteppedO0:
		if baseO0 == nil {
			return nil, fmt.Errorf("metrics: %s needs an O0 baseline trace", d)
		}
		lines := make(map[int]bool, len(baseO0.Stepped))
		for l := range baseO0.Stepped {
			lines[l] = true
		}
		return lines, nil
	case DenomDefRanges:
		if stmtLines == nil || dr == nil {
			return nil, fmt.Errorf("metrics: %s needs statement lines and definition ranges", d)
		}
		lines := map[int]bool{}
		for _, l := range sortedLines(stmtLines) {
			if len(dr.ExpectedAt(l)) > 0 {
				lines[l] = true
			}
		}
		return lines, nil
	}
	return nil, fmt.Errorf("metrics: unknown denominator %q", d)
}

// StaticWith is the static measurement under an explicit denominator:
// Static == StaticWith(DenomStmtLines), StaticDbg == StaticWith
// (DenomSteppedO0). This is the campaign-facing entry point — the
// denominator is a run parameter, not a method choice.
func StaticWith(table *debuginfo.Table, d Denom, stmtLines map[int]bool,
	baseO0 *dbgtrace.Trace, dr *sema.DefRanges) (Scores, error) {
	lines, err := BaselineLines(d, stmtLines, baseO0, dr)
	if err != nil {
		return Scores{}, err
	}
	return staticScores(table, lines, dr), nil
}

// DenomSizes reports each materializable denominator's line count for
// one subject — the campaign trend report shows them side by side so a
// score shift can be told apart from a baseline shift.
func DenomSizes(stmtLines map[int]bool, baseO0 *dbgtrace.Trace, dr *sema.DefRanges) map[Denom]int {
	out := map[Denom]int{}
	for _, d := range Denoms() {
		lines, err := BaselineLines(d, stmtLines, baseO0, dr)
		if err != nil {
			continue
		}
		out[d] = len(lines)
	}
	return out
}

// sortKeys is a tiny helper for deterministic map iteration in tests.
func sortKeys(m map[Denom]int) []Denom {
	out := make([]Denom, 0, len(m))
	for d := range m {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
