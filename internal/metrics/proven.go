package metrics

import (
	"debugtuner/internal/dataflow"
	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/sema"
	"debugtuner/internal/vm"
)

// StaticProven is the static measurement with its numerator restricted
// to claims the owner dataflow analysis proves must materialize: where
// Static counts any location entry covering a line address — including
// entries whose register was long since clobbered — StaticProven counts
// a (line, variable) pair only when some covered address carries a
// proven claim:
//
//   - LocConst / LocGlobal: unconditional, the debugger never consults
//     frame state for these;
//   - LocReg: the register is must-owned by the variable entering the
//     address (every path's last ownership write was for it);
//   - LocSlot: the prologue has provably run on every path (the home
//     slot exists and was initialized);
//   - LocSpill: both — the slot is must-owned and the prologue done.
//
// The result is a lower bound on dynamic availability in the same way
// Static is an upper bound: StaticProven <= dynamic-at-those-lines <=
// Static per claim, so the gap between the two static scores bounds the
// wrong-value over-count without running the program.
func StaticProven(bin *vm.Binary, table *debuginfo.Table, stmtLines map[int]bool,
	dr *sema.DefRanges) Scores {
	pc := &provenChecker{bin: bin, table: table}
	return staticScoresVis(table, stmtLines, dr, pc.visible)
}

// StaticProvenWith is StaticProven under an explicit line-coverage
// denominator, mirroring StaticWith.
func StaticProvenWith(bin *vm.Binary, table *debuginfo.Table, d Denom,
	stmtLines map[int]bool, baseO0 *dbgtrace.Trace, dr *sema.DefRanges) (Scores, error) {
	lines, err := BaselineLines(d, stmtLines, baseO0, dr)
	if err != nil {
		return Scores{}, err
	}
	pc := &provenChecker{bin: bin, table: table}
	return staticScoresVis(table, lines, dr, pc.visible), nil
}

// provenChecker memoizes one solved OwnerFacts per function across the
// per-line visibility queries of a measurement.
type provenChecker struct {
	bin   *vm.Binary
	table *debuginfo.Table
	facts map[int32]*dataflow.OwnerFacts
}

func (pc *provenChecker) factsFor(fi int32) *dataflow.OwnerFacts {
	if pc.facts == nil {
		pc.facts = map[int32]*dataflow.OwnerFacts{}
	}
	if of, ok := pc.facts[fi]; ok {
		return of
	}
	of := dataflow.NewOwnerFacts(pc.bin, int(fi))
	pc.facts[fi] = of
	return of
}

// visible reports whether some address of the line carries a claim for
// the symbol that provably materializes there.
func (pc *provenChecker) visible(symID int, addrs []uint32) bool {
	if len(addrs) == 0 {
		return false
	}
	for i := range pc.table.Vars {
		v := &pc.table.Vars[i]
		if int(v.SymID) != symID {
			continue
		}
		for _, a := range addrs {
			e := v.LocAt(a)
			if e == nil {
				continue
			}
			switch e.Kind {
			case debuginfo.LocConst, debuginfo.LocGlobal:
				return true
			case debuginfo.LocReg:
				if pc.factsFor(v.FuncIdx).MustOwn(int(a),
					dataflow.RegStorage(int(e.Operand)), v.SymID) {
					return true
				}
			case debuginfo.LocSlot:
				if pc.factsFor(v.FuncIdx).MustPrologueDone(int(a)) {
					return true
				}
			case debuginfo.LocSpill:
				of := pc.factsFor(v.FuncIdx)
				if of.MustOwn(int(a), dataflow.SlotStorage(int(e.Operand)), v.SymID) &&
					of.MustPrologueDone(int(a)) {
					return true
				}
			}
		}
	}
	return false
}
