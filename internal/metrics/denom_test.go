package metrics

import (
	"testing"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/sema"
)

// TestParseDenom round-trips every family member and rejects strangers.
func TestParseDenom(t *testing.T) {
	for _, d := range Denoms() {
		got, err := ParseDenom(string(d))
		if err != nil || got != d {
			t.Fatalf("ParseDenom(%q) = %v, %v", d, got, err)
		}
	}
	if _, err := ParseDenom("line-table"); err == nil {
		t.Fatal("unknown denominator accepted")
	}
}

// TestStaticWithMatchesNamedMethods: the family generalizes the two
// published methods exactly — stmt-lines is Static, stepped-o0 is
// StaticDbg.
func TestStaticWithMatchesNamedMethods(t *testing.T) {
	m := measureSetup(t)
	stmt := sema.StatementLines(m.info)
	cfg := pipeline.MustConfig(pipeline.GCC, "O2")
	dt := tableFor(t, cfg)

	sw, err := StaticWith(dt, DenomStmtLines, stmt, nil, m.dr)
	if err != nil {
		t.Fatal(err)
	}
	if want := Static(dt, stmt, m.dr); sw != want {
		t.Fatalf("StaticWith(stmt-lines) = %+v, Static = %+v", sw, want)
	}
	sd, err := StaticWith(dt, DenomSteppedO0, nil, m.base, m.dr)
	if err != nil {
		t.Fatal(err)
	}
	if want := StaticDbg(dt, m.base, m.dr); sd != want {
		t.Fatalf("StaticWith(stepped-o0) = %+v, StaticDbg = %+v", sd, want)
	}
}

// TestDenomOrdering: def-ranges is a subset of stmt-lines by
// construction, and every denominator is nonempty on a real subject.
func TestDenomOrdering(t *testing.T) {
	m := measureSetup(t)
	stmt := sema.StatementLines(m.info)
	sizes := DenomSizes(stmt, m.base, m.dr)
	for _, d := range sortKeys(sizes) {
		if sizes[d] == 0 {
			t.Errorf("denominator %s empty on the measurement subject", d)
		}
	}
	if sizes[DenomDefRanges] > sizes[DenomStmtLines] {
		t.Fatalf("def-ranges (%d lines) exceeds stmt-lines (%d)",
			sizes[DenomDefRanges], sizes[DenomStmtLines])
	}
	dd, err := BaselineLines(DenomDefRanges, stmt, nil, m.dr)
	if err != nil {
		t.Fatal(err)
	}
	for l := range dd {
		if !stmt[l] {
			t.Fatalf("def-ranges line %d not a statement line", l)
		}
	}
}

// TestBaselineLinesMissingInputs: each member reports what it needs
// instead of silently scoring against an empty baseline.
func TestBaselineLinesMissingInputs(t *testing.T) {
	if _, err := BaselineLines(DenomStmtLines, nil, nil, nil); err == nil {
		t.Error("stmt-lines accepted nil statement lines")
	}
	if _, err := BaselineLines(DenomSteppedO0, nil, nil, nil); err == nil {
		t.Error("stepped-o0 accepted nil baseline trace")
	}
	if _, err := BaselineLines(DenomDefRanges, map[int]bool{1: true}, nil, nil); err == nil {
		t.Error("def-ranges accepted nil definition ranges")
	}
}
