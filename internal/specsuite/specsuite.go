// Package specsuite provides the performance benchmarks standing in for
// the paper's SPEC CPU 2017 C/C++ integer set (the eight benchmarks left
// after excluding 520.omnetpp), plus the "selfcomp" large workload used
// for the Figure 4 study. Each benchmark is a deterministic CPU-bound
// MiniC program with a distinctive execution profile.
package specsuite

import (
	"context"
	"embed"
	"fmt"
	"sync"

	"debugtuner/internal/evalcache"
	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/vm"
	"debugtuner/internal/workerpool"
)

//go:embed benchmarks/*.mc
var benchFS embed.FS

// Names lists the SPEC stand-ins in the paper's order.
var Names = []string{
	"500.perlbench", "502.gcc", "505.mcf", "523.xalancbmk",
	"525.x264", "531.deepsjeng", "541.leela", "557.xz",
}

// files maps benchmark names to their sources.
var files = map[string]string{
	"500.perlbench": "perlbench.mc",
	"502.gcc":       "gcc_bench.mc",
	"505.mcf":       "mcf.mc",
	"523.xalancbmk": "xalancbmk.mc",
	"525.x264":      "x264.mc",
	"531.deepsjeng": "deepsjeng.mc",
	"541.leela":     "leela.mc",
	"557.xz":        "xz.mc",
	"selfcomp":      "selfcomp.mc",
}

// Source returns a benchmark's MiniC source.
func Source(name string) ([]byte, error) {
	f, ok := files[name]
	if !ok {
		return nil, fmt.Errorf("specsuite: unknown benchmark %q", name)
	}
	return benchFS.ReadFile("benchmarks/" + f)
}

var (
	irMu   sync.Mutex
	irMemo = map[string]*ir.Program{}
)

// LoadIR front-ends a benchmark once and caches the O0 IR.
func LoadIR(name string) (*ir.Program, error) {
	irMu.Lock()
	defer irMu.Unlock()
	if p := irMemo[name]; p != nil {
		return p, nil
	}
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	info, err := pipeline.Frontend(name, src)
	if err != nil {
		return nil, err
	}
	p, err := pipeline.BuildIR(info)
	if err != nil {
		return nil, err
	}
	irMemo[name] = p
	return p, nil
}

// Result is one benchmark execution's outcome.
type Result struct {
	Name   string
	Cycles int64
	Steps  int64
	Output []int64
}

// Run builds the benchmark under the configuration and executes its ref
// workload, returning cycle counts.
func Run(name string, cfg pipeline.Config) (*Result, error) {
	ir0, err := LoadIR(name)
	if err != nil {
		return nil, err
	}
	bin := pipeline.Build(ir0, cfg)
	return RunBinary(name, bin)
}

// RunBinary executes an already-built benchmark binary.
func RunBinary(name string, bin *vm.Binary) (*Result, error) {
	m := vm.New(bin)
	m.StepBudget = 1 << 33
	if _, err := m.Call("main"); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Result{Name: name, Cycles: m.Cycles, Steps: m.Steps, Output: m.Output()}, nil
}

// cycleCache content-addresses ref-workload cycle counts by
// (benchmark, config fingerprint). The VM is cycle-exact and builds are
// deterministic, so a configuration's cycle count is a pure function of
// the key; every table that revisits an Ox-dy config (Fig2, Tables
// VIII/XI/XII) reuses one execution.
var cycleCache evalcache.Cache[int64]

// Cycles returns the benchmark's ref-workload cycle count under the
// configuration, cached by content. FDO-carrying configs (no stable
// fingerprint) are measured uncached.
func Cycles(name string, cfg pipeline.Config) (int64, error) {
	run := func() (int64, error) {
		r, err := Run(name, cfg)
		if err != nil {
			return 0, err
		}
		return r.Cycles, nil
	}
	fp, ok := cfg.Fingerprint()
	if !ok {
		return run()
	}
	return cycleCache.Do(name+"|"+fp, run)
}

// Speedup measures cycles(cfg) relative to the O0 build of the same
// profile: the paper's "speedup over O0".
func Speedup(name string, cfg pipeline.Config) (float64, error) {
	base, err := Cycles(name, pipeline.Config{Profile: cfg.Profile, Level: "O0"})
	if err != nil {
		return 0, err
	}
	opt, err := Cycles(name, cfg)
	if err != nil {
		return 0, err
	}
	return float64(base) / float64(opt), nil
}

// SuiteSpeedup returns the per-benchmark and average speedups of a
// configuration over the whole suite. Benchmarks run concurrently on
// the worker pool; the average is summed in suite order, so the result
// is identical at any worker count.
func SuiteSpeedup(cfg pipeline.Config, names []string) (map[string]float64, float64, error) {
	if names == nil {
		names = Names
	}
	speeds, err := workerpool.Map(context.Background(), names,
		func(_ context.Context, _ int, n string) (float64, error) {
			return Speedup(n, cfg)
		})
	if err != nil {
		return nil, 0, err
	}
	out := map[string]float64{}
	sum := 0.0
	for i, n := range names {
		out[n] = speeds[i]
		sum += speeds[i]
	}
	return out, sum / float64(len(names)), nil
}
