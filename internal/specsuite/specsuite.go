// Package specsuite provides the performance benchmarks standing in for
// the paper's SPEC CPU 2017 C/C++ integer set (the eight benchmarks left
// after excluding 520.omnetpp), plus the "selfcomp" large workload used
// for the Figure 4 study. Each benchmark is a deterministic CPU-bound
// MiniC program with a distinctive execution profile.
package specsuite

import (
	"embed"
	"fmt"
	"sync"

	"debugtuner/internal/evalcache"
	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/suite"
	"debugtuner/internal/vm"
)

//go:embed benchmarks/*.mc
var benchFS embed.FS

// Names lists the SPEC stand-ins in the paper's order.
var Names = []string{
	"500.perlbench", "502.gcc", "505.mcf", "523.xalancbmk",
	"525.x264", "531.deepsjeng", "541.leela", "557.xz",
}

// files maps benchmark names to their sources.
var files = map[string]string{
	"500.perlbench": "perlbench.mc",
	"502.gcc":       "gcc_bench.mc",
	"505.mcf":       "mcf.mc",
	"523.xalancbmk": "xalancbmk.mc",
	"525.x264":      "x264.mc",
	"531.deepsjeng": "deepsjeng.mc",
	"541.leela":     "leela.mc",
	"557.xz":        "xz.mc",
	"selfcomp":      "selfcomp.mc",
}

// Source returns a benchmark's MiniC source.
func Source(name string) ([]byte, error) {
	f, ok := files[name]
	if !ok {
		return nil, fmt.Errorf("specsuite: unknown benchmark %q", name)
	}
	return benchFS.ReadFile("benchmarks/" + f)
}

// irCache memoizes the front-ended O0 IR per benchmark. Routing through
// evalcache gives singleflight semantics: concurrent loaders of the same
// benchmark block on one front-end run instead of serializing every
// benchmark behind a single package mutex.
var irCache evalcache.Cache[*ir.Program]

// LoadIR front-ends a benchmark once and caches the O0 IR.
func LoadIR(name string) (*ir.Program, error) {
	return irCache.Do(name, func() (*ir.Program, error) {
		src, err := Source(name)
		if err != nil {
			return nil, err
		}
		info, err := pipeline.Frontend(name, src)
		if err != nil {
			return nil, err
		}
		return pipeline.BuildIR(info)
	})
}

// Result is one benchmark execution's outcome, shared with
// internal/suite so both suites speak one result type.
type Result = suite.Result

// Run builds the benchmark under the configuration and executes its ref
// workload, returning cycle counts.
func Run(name string, cfg pipeline.Config) (*Result, error) {
	ir0, err := LoadIR(name)
	if err != nil {
		return nil, err
	}
	bin := pipeline.Build(ir0, cfg)
	return RunBinary(name, bin)
}

// RunBinary executes an already-built benchmark binary.
func RunBinary(name string, bin *vm.Binary) (*Result, error) {
	m := vm.New(bin)
	m.StepBudget = 1 << 33
	if _, err := m.Call("main"); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Result{Name: name, Cycles: m.Cycles, Steps: m.Steps, Output: m.Output()}, nil
}

// cycleCache content-addresses ref-workload cycle counts by
// (benchmark, source hash, config fingerprint). The VM is cycle-exact
// and builds are deterministic, so a configuration's cycle count is a
// pure function of the key; every table that revisits an Ox-dy config
// (Fig2, Tables VIII/XI/XII) reuses one execution. When a persistent
// store is bound (SetDefaultDisk, normally via -cachedir), counts also
// survive across processes — the source hash in the key is what keeps a
// shared cache directory honest about benchmark edits.
var cycleCache evalcache.Cache[int64]

var bindDiskOnce sync.Once

// srcHashCache memoizes per-benchmark source hashes for cache keys.
var srcHashCache evalcache.Cache[uint64]

func srcHash(name string) uint64 {
	h, _ := srcHashCache.Do(name, func() (uint64, error) {
		src, err := Source(name)
		if err != nil {
			return 0, nil // unknown names fail later, in Run
		}
		return resilience.HashBytes(src), nil
	})
	return h
}

// Cycles returns the benchmark's ref-workload cycle count under the
// configuration, cached by content. FDO-carrying configs (no stable
// fingerprint) are measured uncached and never touch the disk store.
func Cycles(name string, cfg pipeline.Config) (int64, error) {
	run := func() (int64, error) {
		r, err := Run(name, cfg)
		if err != nil {
			return 0, err
		}
		return r.Cycles, nil
	}
	fp, ok := cfg.Fingerprint()
	if !ok {
		return run()
	}
	bindDiskOnce.Do(func() { cycleCache.SetDisk(evalcache.DefaultDisk(), "specsuite") })
	return cycleCache.Do(fmt.Sprintf("%s#%016x|%s", name, srcHash(name), fp), run)
}

// Speedup measures cycles(cfg) relative to the O0 build of the same
// profile: the paper's "speedup over O0".
func Speedup(name string, cfg pipeline.Config) (float64, error) {
	b, err := Bench(name)
	if err != nil {
		return 0, err
	}
	return suite.Speedup(b, cfg)
}

// SuiteSpeedup returns the per-benchmark and average speedups of a
// configuration over the whole suite (names nil = all), delegating to
// the shared suite helper: benchmarks run concurrently on the worker
// pool and the average is summed in suite order, so the result is
// identical at any worker count.
func SuiteSpeedup(cfg pipeline.Config, names []string) (map[string]float64, float64, error) {
	benches, err := Subjects(names)
	if err != nil {
		return nil, 0, err
	}
	return suite.SuiteSpeedup(benches, cfg)
}

// Benchmark adapts one named benchmark to the suite interfaces. Its
// measurements share the package-level memo caches, so mixing the
// adapter with the package functions never duplicates work.
type Benchmark struct{ name string }

var _ suite.Bench = (*Benchmark)(nil)

// Bench returns the named benchmark as a suite subject.
func Bench(name string) (*Benchmark, error) {
	if _, ok := files[name]; !ok {
		return nil, fmt.Errorf("specsuite: unknown benchmark %q", name)
	}
	return &Benchmark{name: name}, nil
}

// Subjects returns the named benchmarks (nil = the full suite) in order.
func Subjects(names []string) ([]suite.Bench, error) {
	if names == nil {
		names = Names
	}
	out := make([]suite.Bench, 0, len(names))
	for _, n := range names {
		b, err := Bench(n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Name returns the benchmark's suite name.
func (b *Benchmark) Name() string { return b.name }

// Source returns the benchmark's MiniC source.
func (b *Benchmark) Source() ([]byte, error) { return Source(b.name) }

// BuildIR returns the memoized O0 IR.
func (b *Benchmark) BuildIR() (*ir.Program, error) { return LoadIR(b.name) }

// Run executes the ref workload under the configuration.
func (b *Benchmark) Run(cfg pipeline.Config) (*Result, error) { return Run(b.name, cfg) }

// Cycles returns the content-addressed ref-workload cycle count.
func (b *Benchmark) Cycles(cfg pipeline.Config) (int64, error) { return Cycles(b.name, cfg) }
