package specsuite

import (
	"reflect"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
)

// TestBenchmarksCorrectAcrossLevels checks each benchmark's output is
// identical at every optimization level (against the IR interpreter).
func TestBenchmarksCorrectAcrossLevels(t *testing.T) {
	names := append(append([]string{}, Names...), "selfcomp")
	for _, name := range names {
		ir0, err := LoadIR(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		it := ir.NewInterp(ir0, 1<<33)
		if _, err := it.Call("main"); err != nil {
			t.Fatalf("%s: interp: %v", name, err)
		}
		want := it.Output()
		if len(want) == 0 {
			t.Fatalf("%s: no output", name)
		}
		for _, p := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
			for _, l := range append([]string{"O0"}, pipeline.Levels(p)...) {
				r, err := Run(name, pipeline.MustConfig(p, l))
				if err != nil {
					t.Fatalf("%s %s-%s: %v", name, p, l, err)
				}
				if !reflect.DeepEqual(r.Output, want) {
					t.Fatalf("%s %s-%s: output %v, want %v", name, p, l, r.Output, want)
				}
			}
		}
	}
}

// TestOptimizationLevelsOrdering checks the performance shape: every
// benchmark speeds up at O2 (memory-bound subjects like mcf and the tree
// chaser xalancbmk only modestly, as in real SPEC), and the suite
// average lands in a realistic band.
func TestOptimizationLevelsOrdering(t *testing.T) {
	sum := 0.0
	for _, name := range Names {
		var cyc []int64
		for _, l := range []string{"O0", "O1", "O2"} {
			r, err := Run(name, pipeline.MustConfig(pipeline.GCC, l))
			if err != nil {
				t.Fatal(err)
			}
			cyc = append(cyc, r.Cycles)
		}
		if cyc[1] > cyc[0] {
			t.Errorf("%s: O1 (%d) slower than O0 (%d)", name, cyc[1], cyc[0])
		}
		s := float64(cyc[0]) / float64(cyc[2])
		sum += s
		if s < 1.1 {
			t.Errorf("%s: O2 speedup %.2f < 1.1", name, s)
		}
	}
	if avg := sum / float64(len(Names)); avg < 1.4 {
		t.Errorf("suite-average O2 speedup %.2f < 1.4", avg)
	}
}

// TestDeterministicCycles: identical builds must produce identical cycle
// counts — benchmarking depends on it.
func TestDeterministicCycles(t *testing.T) {
	cfg := pipeline.MustConfig(pipeline.Clang, "O2")
	r1, err := Run("505.mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run("505.mcf", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Fatalf("cycle counts differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
}
