// Package telemetry is the evaluation stack's observability layer:
// wall-clock spans, monotonic counters, and the per-pass debug-damage
// ledger that attributes metadata loss (dropped DbgValues, zeroed or
// rewritten line attributions, early-ended location ranges) to the
// transformation responsible for it.
//
// The package has no dependencies inside the repository, so every layer
// — passes, pipeline, codegen, vm, evalcache, workerpool — can import it
// without cycles.
//
// Collection is off by default and costs exactly one atomic pointer
// load on the hot paths: the process-global sink is an atomic pointer,
// and every entry point (Begin, Add, Max, AddDamage) returns
// immediately when it is nil. Instrumented code therefore never guards
// its telemetry calls; the nil-sink fast path is the guard.
//
// Enabling telemetry (the -trace / -metrics flags) installs a Sink;
// spans and counters accumulate under a mutex, which is uncontended in
// practice because instrumentation points record aggregates (per pass,
// per build, per VM run), not per-instruction events.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span.
type SpanRecord struct {
	// Name is the span's display name, Cat its category (the Chrome
	// trace-event "cat" field): "pass", "pipeline", "codegen",
	// "experiment", "workerpool".
	Name, Cat string
	// TID groups spans onto virtual threads in the trace view; 0 is the
	// main timeline, worker pools use 1..n.
	TID int
	// Start is the offset from the sink's epoch.
	Start time.Duration
	Dur   time.Duration
}

// DamageKey addresses one ledger cell: the responsible pass toggle and
// the function it transformed. Functions from different programs that
// share a name aggregate into one cell; the report is per-pass, so the
// merge is harmless.
type DamageKey struct {
	Pass string
	Func string
}

// Damage accumulates the debug-metadata cost of running a pass over a
// function, in units of discrete damage events.
type Damage struct {
	// Runs counts pass executions folded into this cell.
	Runs int64
	// WallNS is the total wall-clock spent in those executions.
	WallNS int64
	// InstrDelta is the net change in non-debug IR instruction count
	// (positive for code growth — the inliner's churn — negative for
	// deletion).
	InstrDelta int64
	// DbgDropped counts DbgValue bindings turned into "optimized out"
	// or removed outright.
	DbgDropped int64
	// DbgSalvaged counts DbgValue bindings rewritten to follow a
	// replacement value (the clang salvage policy, or a same-block
	// replacement under the gcc policy).
	DbgSalvaged int64
	// LinesZeroed counts instructions whose source-line attribution was
	// cleared (the cross-block hoist/sink rule, backend scheduling).
	LinesZeroed int64
	// LinesChanged counts instructions whose line attribution was
	// rewritten to a different nonzero line (merges, tail duplication).
	LinesChanged int64
	// RangesEnded counts variable location ranges ended earlier than
	// the variable's source-level scope (gcc-policy cross-block RAUW
	// drops, shrink-wrapped prologues).
	RangesEnded int64
}

// Events is the discrete damage-event total — the score passreport
// ranks by, together with instruction churn.
func (d Damage) Events() int64 {
	return d.DbgDropped + d.LinesZeroed + d.LinesChanged + d.RangesEnded
}

// add folds e into d.
func (d *Damage) add(e Damage) {
	d.Runs += e.Runs
	d.WallNS += e.WallNS
	d.InstrDelta += e.InstrDelta
	d.DbgDropped += e.DbgDropped
	d.DbgSalvaged += e.DbgSalvaged
	d.LinesZeroed += e.LinesZeroed
	d.LinesChanged += e.LinesChanged
	d.RangesEnded += e.RangesEnded
}

// Sink collects telemetry. One sink is installed process-wide; all
// methods are safe for concurrent use.
type Sink struct {
	epoch time.Time

	mu       sync.Mutex
	spans    []SpanRecord
	counters map[string]int64
	maxima   map[string]int64
	damage   map[DamageKey]*Damage
}

// active is the process-global sink; nil means telemetry is disabled
// and every entry point is a single pointer-load no-op.
var active atomic.Pointer[Sink]

// NewSink creates a detached sink (for tests that must not touch the
// process-global state).
func NewSink() *Sink {
	return &Sink{
		epoch:    time.Now(),
		counters: map[string]int64{},
		maxima:   map[string]int64{},
		damage:   map[DamageKey]*Damage{},
	}
}

// Enable installs a fresh process-global sink and returns it.
func Enable() *Sink {
	s := NewSink()
	active.Store(s)
	return s
}

// Disable uninstalls the global sink, restoring the nil-sink fast path.
func Disable() { active.Store(nil) }

// Install makes s the process-global sink (nil disables) and returns
// the previously installed sink, so a scoped collector — the passreport
// table wants a ledger covering exactly its own builds — can swap its
// sink in and restore the caller's afterwards.
func Install(s *Sink) *Sink { return active.Swap(s) }

// Active returns the installed sink, or nil when telemetry is off.
func Active() *Sink { return active.Load() }

// Enabled reports whether a sink is installed.
func Enabled() bool { return active.Load() != nil }

// ---- Spans ----

// Span is an open interval; End records it. A nil *Span (telemetry
// disabled) is valid and every method on it is a no-op.
type Span struct {
	sink      *Sink
	name, cat string
	tid       int
	start     time.Time
}

// Begin opens a span against the active sink; it returns nil when
// telemetry is disabled, and nil spans absorb End calls for free.
func Begin(cat, name string) *Span {
	s := active.Load()
	if s == nil {
		return nil
	}
	return s.Begin(cat, name)
}

// Begin opens a span against this sink.
func (s *Sink) Begin(cat, name string) *Span {
	return &Span{sink: s, name: name, cat: cat, start: time.Now()}
}

// TID assigns the span to a virtual thread lane and returns it.
func (sp *Span) TID(tid int) *Span {
	if sp != nil {
		sp.tid = tid
	}
	return sp
}

// End closes and records the span.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		Name: sp.name, Cat: sp.cat, TID: sp.tid,
		Start: sp.start.Sub(sp.sink.epoch),
		Dur:   now.Sub(sp.start),
	}
	sp.sink.mu.Lock()
	sp.sink.spans = append(sp.sink.spans, rec)
	sp.sink.mu.Unlock()
}

// ---- Counters ----

// Add increments a named counter on the active sink; no-op when
// telemetry is disabled.
func Add(name string, delta int64) {
	if s := active.Load(); s != nil {
		s.Add(name, delta)
	}
}

// Add increments a named counter.
func (s *Sink) Add(name string, delta int64) {
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// Max records the maximum observed value of a named gauge (queue
// depths, high-water marks) on the active sink.
func Max(name string, v int64) {
	if s := active.Load(); s != nil {
		s.Max(name, v)
	}
}

// Max records the maximum observed value of a named gauge.
func (s *Sink) Max(name string, v int64) {
	s.mu.Lock()
	if v > s.maxima[name] {
		s.maxima[name] = v
	}
	s.mu.Unlock()
}

// ---- Damage ledger ----

// AddDamage folds a damage delta into the (pass, function) cell of the
// active sink; no-op when telemetry is disabled.
func AddDamage(pass, fn string, d Damage) {
	if s := active.Load(); s != nil {
		s.AddDamage(pass, fn, d)
	}
}

// AddDamage folds a damage delta into the (pass, function) cell.
func (s *Sink) AddDamage(pass, fn string, d Damage) {
	key := DamageKey{Pass: pass, Func: fn}
	s.mu.Lock()
	cell := s.damage[key]
	if cell == nil {
		cell = &Damage{}
		s.damage[key] = cell
	}
	cell.add(d)
	s.mu.Unlock()
}

// ---- Snapshots ----

// Counter returns one counter's current value.
func (s *Sink) Counter(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Counters returns a copy of all counters.
func (s *Sink) Counters() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// Maxima returns a copy of all recorded maxima.
func (s *Sink) Maxima() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.maxima))
	for k, v := range s.maxima {
		out[k] = v
	}
	return out
}

// Spans returns a copy of the recorded spans.
func (s *Sink) Spans() []SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanRecord(nil), s.spans...)
}

// Ledger returns a copy of the damage ledger.
func (s *Sink) Ledger() map[DamageKey]Damage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[DamageKey]Damage, len(s.damage))
	for k, v := range s.damage {
		out[k] = *v
	}
	return out
}

// DamageByPass aggregates the ledger over functions.
func (s *Sink) DamageByPass() map[string]Damage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]Damage{}
	for k, v := range s.damage {
		cell := out[k.Pass]
		cell.add(*v)
		out[k.Pass] = cell
	}
	return out
}
