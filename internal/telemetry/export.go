package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"time"
)

// traceEvent is one Chrome trace-event ("Trace Event Format"). Spans
// are "X" complete events; counters are a final "C" counter sample, so
// chrome://tracing and Perfetto render both without preprocessing.
type traceEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"` // microseconds
	Dur  float64          `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the trace format.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteTrace writes the sink's spans and counters as Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto.
func (s *Sink) WriteTrace(w io.Writer) error {
	spans := s.Spans()
	counters := s.Counters()
	end := time.Since(s.epoch)

	events := make([]traceEvent, 0, len(spans)+len(counters))
	for _, sp := range spans {
		events = append(events, traceEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS: usec(sp.Start), Dur: usec(sp.Dur),
			PID: 1, TID: sp.TID,
		})
	}
	for _, name := range sortedNames(counters) {
		events = append(events, traceEvent{
			Name: name, Ph: "C", TS: usec(end), PID: 1, TID: 0,
			Args: map[string]int64{"value": counters[name]},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// DamageRow is one serialized ledger cell.
type DamageRow struct {
	Pass         string `json:"pass"`
	Func         string `json:"func"`
	Runs         int64  `json:"runs"`
	WallNS       int64  `json:"wall_ns"`
	InstrDelta   int64  `json:"instr_delta"`
	DbgDropped   int64  `json:"dbg_dropped"`
	DbgSalvaged  int64  `json:"dbg_salvaged"`
	LinesZeroed  int64  `json:"lines_zeroed"`
	LinesChanged int64  `json:"lines_changed"`
	RangesEnded  int64  `json:"ranges_ended"`
}

// metricsFile is the -metrics JSON summary.
type metricsFile struct {
	WallSeconds float64          `json:"wall_seconds"`
	SpanCount   int              `json:"span_count"`
	Counters    map[string]int64 `json:"counters"`
	Maxima      map[string]int64 `json:"maxima,omitempty"`
	Damage      []DamageRow      `json:"damage"`
}

// WriteMetrics writes the JSON summary: counters, maxima, and the full
// damage ledger sorted by pass then function.
func (s *Sink) WriteMetrics(w io.Writer) error {
	ledger := s.Ledger()
	rows := make([]DamageRow, 0, len(ledger))
	for k, d := range ledger {
		rows = append(rows, DamageRow{
			Pass: k.Pass, Func: k.Func,
			Runs: d.Runs, WallNS: d.WallNS, InstrDelta: d.InstrDelta,
			DbgDropped: d.DbgDropped, DbgSalvaged: d.DbgSalvaged,
			LinesZeroed: d.LinesZeroed, LinesChanged: d.LinesChanged,
			RangesEnded: d.RangesEnded,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Pass != rows[j].Pass {
			return rows[i].Pass < rows[j].Pass
		}
		return rows[i].Func < rows[j].Func
	})
	out := metricsFile{
		WallSeconds: time.Since(s.epoch).Seconds(),
		SpanCount:   len(s.Spans()),
		Counters:    s.Counters(),
		Maxima:      s.Maxima(),
		Damage:      rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ExportFiles writes the sink's trace and/or metrics to the given
// paths; an empty path skips that export. Backs the commands' -trace
// and -metrics flags.
func ExportFiles(s *Sink, tracePath, metricsPath string) error {
	write := func(path string, fn func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(tracePath, s.WriteTrace); err != nil {
		return err
	}
	return write(metricsPath, s.WriteMetrics)
}

func sortedNames(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
