package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestDisabledFastPath: with no sink installed, every entry point is a
// no-op and Begin returns a nil span whose End is safe.
func TestDisabledFastPath(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() = true with no sink")
	}
	sp := Begin("cat", "name")
	if sp != nil {
		t.Fatal("Begin returned non-nil span while disabled")
	}
	sp.TID(3).End() // must not panic
	Add("counter", 1)
	Max("gauge", 9)
	AddDamage("inline", "main", Damage{DbgDropped: 1})
}

func TestCountersAndDamage(t *testing.T) {
	s := Enable()
	defer Disable()
	Add("vm.steps", 10)
	Add("vm.steps", 5)
	Max("queue", 3)
	Max("queue", 2)
	AddDamage("gvn", "f", Damage{Runs: 1, DbgDropped: 2, LinesZeroed: 1})
	AddDamage("gvn", "f", Damage{Runs: 1, RangesEnded: 4})
	AddDamage("gvn", "g", Damage{Runs: 1, DbgDropped: 1})

	if got := s.Counter("vm.steps"); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
	if got := s.Maxima()["queue"]; got != 3 {
		t.Fatalf("max = %d, want 3", got)
	}
	cell := s.Ledger()[DamageKey{Pass: "gvn", Func: "f"}]
	if cell.Runs != 2 || cell.DbgDropped != 2 || cell.RangesEnded != 4 {
		t.Fatalf("ledger cell = %+v", cell)
	}
	agg := s.DamageByPass()["gvn"]
	if agg.DbgDropped != 3 || agg.Runs != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.Events() != 3+1+4 {
		t.Fatalf("Events() = %d", agg.Events())
	}
}

// TestConcurrentEmission exercises concurrent span/counter/damage
// emission; run under -race via ci.sh.
func TestConcurrentEmission(t *testing.T) {
	s := Enable()
	defer Disable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := Begin("pass", "work").TID(g)
				Add("events", 1)
				Max("depth", int64(i))
				AddDamage("dce", "f", Damage{Runs: 1, DbgDropped: 1})
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := s.Counter("events"); got != 8*200 {
		t.Fatalf("events = %d, want %d", got, 8*200)
	}
	if got := len(s.Spans()); got != 8*200 {
		t.Fatalf("spans = %d, want %d", got, 8*200)
	}
	if got := s.DamageByPass()["dce"].DbgDropped; got != 8*200 {
		t.Fatalf("damage = %d, want %d", got, 8*200)
	}
}

// TestWriteTrace validates the Chrome trace-event shape: a JSON object
// with a traceEvents array of "X"/"C" events carrying ts/pid/tid.
func TestWriteTrace(t *testing.T) {
	s := NewSink()
	sp := s.Begin("pipeline", "build")
	sp.End()
	s.Add("evalcache.hit", 7)

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(f.TraceEvents))
	}
	for _, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "C" {
			t.Fatalf("unexpected phase %q", ph)
		}
		for _, k := range []string{"name", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
	}
}

func TestWriteMetrics(t *testing.T) {
	s := NewSink()
	s.Add("vm.cycles", 42)
	s.AddDamage("tree-sink", "main", Damage{Runs: 1, LinesZeroed: 3})
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		Counters map[string]int64 `json:"counters"`
		Damage   []DamageRow      `json:"damage"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if f.Counters["vm.cycles"] != 42 {
		t.Fatalf("counters = %v", f.Counters)
	}
	if len(f.Damage) != 1 || f.Damage[0].Pass != "tree-sink" || f.Damage[0].LinesZeroed != 3 {
		t.Fatalf("damage = %+v", f.Damage)
	}
}
