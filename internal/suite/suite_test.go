package suite

import (
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/tuner"
)

// fakeBench implements Bench with canned cycle counts keyed by level.
type fakeBench struct {
	name   string
	cycles map[string]int64
}

func (f *fakeBench) Name() string                  { return f.name }
func (f *fakeBench) Source() ([]byte, error)       { return nil, nil }
func (f *fakeBench) BuildIR() (*ir.Program, error) { return nil, nil }
func (f *fakeBench) Run(cfg pipeline.Config) (*Result, error) {
	c, _ := f.Cycles(cfg)
	return &Result{Name: f.name, Cycles: c}, nil
}
func (f *fakeBench) Cycles(cfg pipeline.Config) (int64, error) {
	return f.cycles[cfg.Level], nil
}

type fakeDebuggable struct {
	fakeBench
	prog *tuner.Program
}

func (f *fakeDebuggable) Tuner() *tuner.Program { return f.prog }

func TestSpeedup(t *testing.T) {
	b := &fakeBench{name: "x", cycles: map[string]int64{"O0": 1000, "O2": 250}}
	s, err := Speedup(b, pipeline.MustConfig(pipeline.GCC, "O2"))
	if err != nil {
		t.Fatal(err)
	}
	if s != 4.0 {
		t.Errorf("speedup = %v, want 4.0", s)
	}
}

func TestSuiteSpeedupOrderIndependent(t *testing.T) {
	benches := []Bench{
		&fakeBench{name: "a", cycles: map[string]int64{"O0": 100, "O2": 50}},
		&fakeBench{name: "b", cycles: map[string]int64{"O0": 300, "O2": 100}},
	}
	per, avg, err := SuiteSpeedup(benches, pipeline.MustConfig(pipeline.GCC, "O2"))
	if err != nil {
		t.Fatal(err)
	}
	if per["a"] != 2.0 || per["b"] != 3.0 || avg != 2.5 {
		t.Errorf("got per=%v avg=%v", per, avg)
	}
}

func TestProgramsSkipsNonDebuggable(t *testing.T) {
	p := &tuner.Program{Name: "d"}
	subjects := []Subject{
		&fakeBench{name: "plain"},
		&fakeDebuggable{fakeBench: fakeBench{name: "d"}, prog: p},
	}
	progs := Programs(subjects)
	if len(progs) != 1 || progs[0] != p {
		t.Errorf("Programs = %v, want just the debuggable's program", progs)
	}
}
