// Package suite is the common face of the two experiment suites: the
// thirteen debug-information subjects of internal/testsuite (§IV) and
// the eight SPEC stand-in benchmarks of internal/specsuite. Consumers
// that only need "a named program that can be built and run under a
// configuration" — the experiment tables, the passreport command —
// program against Subject and stay indifferent to which suite a member
// came from; the capability interfaces (Debuggable, Bench) expose what
// only one suite can do.
//
// The package is interfaces plus suite-order helpers: both suites
// implement it structurally and it imports neither, so there is no
// dependency cycle and a new suite joins by implementing Subject.
package suite

import (
	"context"

	"debugtuner/internal/ir"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/tuner"
	"debugtuner/internal/workerpool"
)

// Result is one subject execution's outcome under a configuration.
type Result struct {
	Name   string
	Cycles int64
	Steps  int64
	Output []int64
}

// Subject is one suite member.
type Subject interface {
	// Name is the member's suite name ("libpng", "505.mcf").
	Name() string
	// Source returns the member's MiniC source.
	Source() ([]byte, error)
	// BuildIR returns the member's O0 IR. The result may be shared and
	// memoized; callers must not mutate it (pipeline.Build clones).
	BuildIR() (*ir.Program, error)
	// Run builds the member under the configuration and executes its
	// workload — the ref workload for benchmarks, the final corpus
	// inputs for debug subjects.
	Run(cfg pipeline.Config) (*Result, error)
}

// Debuggable is a Subject backed by a tuner.Program: it can be traced,
// scored with the hybrid metrics, and fed to the pass-ranking engine.
type Debuggable interface {
	Subject
	Tuner() *tuner.Program
}

// Bench is a Subject with a cached cycle-count measurement, the basis
// of the paper's speedup-over-O0 columns.
type Bench interface {
	Subject
	Cycles(cfg pipeline.Config) (int64, error)
}

// Programs extracts the tuner programs from debuggable subjects,
// preserving order. Non-Debuggable subjects are skipped.
func Programs(subjects []Subject) []*tuner.Program {
	out := make([]*tuner.Program, 0, len(subjects))
	for _, s := range subjects {
		if d, ok := s.(Debuggable); ok {
			out = append(out, d.Tuner())
		}
	}
	return out
}

// Speedup measures a benchmark's cycles under cfg relative to the O0
// build of the same profile.
func Speedup(b Bench, cfg pipeline.Config) (float64, error) {
	base, err := b.Cycles(pipeline.MustConfig(cfg.Profile, "O0"))
	if err != nil {
		return 0, err
	}
	opt, err := b.Cycles(cfg)
	if err != nil {
		return 0, err
	}
	return float64(base) / float64(opt), nil
}

// SuiteSpeedup returns per-subject and average speedups of a
// configuration across benchmarks. Members run concurrently on the
// worker pool; the average is summed in input order, so the result is
// identical at any worker count.
func SuiteSpeedup(benches []Bench, cfg pipeline.Config) (map[string]float64, float64, error) {
	speeds, err := workerpool.Map(context.Background(), benches,
		func(_ context.Context, _ int, b Bench) (float64, error) {
			return Speedup(b, cfg)
		})
	if err != nil {
		return nil, 0, err
	}
	out := make(map[string]float64, len(benches))
	sum := 0.0
	for i, b := range benches {
		out[b.Name()] = speeds[i]
		sum += speeds[i]
	}
	return out, sum / float64(len(benches)), nil
}
