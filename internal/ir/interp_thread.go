package ir

import "fmt"

// This file is the interpreter's direct-threaded execution core, the IR
// analog of the VM's predecoded dispatch (internal/vm/decode.go). Each
// function is decoded once per Interp into a flat stream of iinstr cells
// whose first field is the handler to run, so the hot loop is an
// indirect call per instruction instead of a switch re-deriving operands
// from the *Value graph every step. Control-flow edges are resolved at
// decode time: a branch cell carries the target instruction index and
// the phi-move list of that edge, which removes both the per-edge
// indexOfPred scan and the per-block phi rescan of the reference loop.
//
// The reference switch loop (interp_ref.go) remains the executable
// specification; Interp.Reference selects it, and the differential
// tests in internal/difftest run both cores over the corpus.

// phiMove is one edge-resolved phi assignment, applied in phi order —
// sequential, exactly like the reference loop's phi scan.
type phiMove struct{ dst, src int32 }

// iframe is one activation: SSA values, stack slots, and arguments.
type iframe struct {
	vals  []int64
	slots []int64
	args  []int64
}

// iinstr is one decoded instruction cell.
type iinstr struct {
	// fn executes the instruction and returns the next instruction
	// index, or -1 to stop (return or error, distinguished by in.ferr).
	fn func(in *Interp, fr *iframe, d *iinstr) int32

	dst        int32 // value ID written, -1 if none
	a0, a1, a2 int32 // argument value IDs
	next       int32 // fallthrough target (this cell's index + 1)
	tgt, tgt2  int32 // branch targets (taken / fallthrough for OpBr)
	aux        int64 // AuxInt payload (const, slot/global index)
	op         Op    // binary sub-op for hBin/hVBin; original op for errors

	moves, moves2 []phiMove // phi moves of the tgt / tgt2 edges
	callee        *Func     // resolved OpCall target (nil: unknown)
	name          string    // OpCall callee name, for the unknown-callee error
	argIDs        []int32   // OpCall argument value IDs

	// v and va keep value identity for the vector-lane bookkeeping,
	// which the reference core keys by *Value.
	v  *Value
	va [3]*Value
}

// dfunc is one decoded function.
type dfunc struct {
	code       []iinstr
	entryMoves []phiMove
	nvals      int
	nslots     int
}

// decode returns the function's decoded stream, building and caching it
// on first use. The cache lives on the Interp, whose lifetime is one
// program snapshot, so pass pipelines mutating IR between runs can never
// observe a stale stream.
func (in *Interp) decode(f *Func) *dfunc {
	if in.dcache == nil {
		in.dcache = map[*Func]*dfunc{}
	}
	if df := in.dcache[f]; df != nil {
		return df
	}
	df := decodeFunc(in.prog, f)
	in.dcache[f] = df
	return df
}

// leadingPhis returns the block's phi prefix — the only phis the
// reference loop evaluates on edge entry (later phis are inert there and
// stay inert here).
func leadingPhis(b *Block) []*Value {
	for i, v := range b.Instrs {
		if v.Op != OpPhi {
			return b.Instrs[:i]
		}
	}
	return b.Instrs
}

// emittable returns the instructions the reference loop actually
// executes: non-phis up to and including the first terminator.
func emittable(b *Block) []*Value {
	var out []*Value
	for _, v := range b.Instrs {
		if v.Op == OpPhi {
			continue
		}
		out = append(out, v)
		if v.Op.IsTerminator() {
			break
		}
	}
	return out
}

// edgeMoves resolves the phi moves for entering next from pred.
func edgeMoves(next, pred *Block) []phiMove {
	phis := leadingPhis(next)
	if len(phis) == 0 {
		return nil
	}
	pi := indexOfPred(next, pred)
	moves := make([]phiMove, len(phis))
	for i, p := range phis {
		moves[i] = phiMove{dst: int32(p.ID), src: int32(p.Args[pi].ID)}
	}
	return moves
}

func decodeFunc(prog *Program, f *Func) *dfunc {
	df := &dfunc{nvals: f.NumValueIDs(), nslots: f.NumSlots}

	// Pass 1: lay out block starts.
	start := map[*Block]int32{}
	n := int32(0)
	for _, b := range f.Blocks {
		start[b] = n
		n += int32(len(emittable(b)))
	}
	df.code = make([]iinstr, 0, n)

	// The entry block's phis, if any, read edge index 0 — the reference
	// loop's initial prevPredIdx.
	if phis := leadingPhis(f.Entry()); len(phis) > 0 {
		df.entryMoves = make([]phiMove, len(phis))
		for i, p := range phis {
			df.entryMoves[i] = phiMove{dst: int32(p.ID), src: int32(p.Args[0].ID)}
		}
	}

	// Pass 2: emit.
	for _, b := range f.Blocks {
		for _, v := range emittable(b) {
			d := iinstr{
				fn: hIUnhandled, op: v.Op,
				dst: int32(v.ID), a0: -1, a1: -1, a2: -1,
				next: int32(len(df.code)) + 1,
				aux:  v.AuxInt, v: v,
			}
			for i, a := range v.Args {
				switch i {
				case 0:
					d.a0 = int32(a.ID)
				case 1:
					d.a1 = int32(a.ID)
				case 2:
					d.a2 = int32(a.ID)
				}
				if i < len(d.va) {
					d.va[i] = a
				}
			}
			switch v.Op {
			case OpConst:
				d.fn = hIConst
			case OpParam:
				d.fn = hIParam
			case OpAdd:
				d.fn = hIAdd
			case OpSub:
				d.fn = hISub
			case OpMul:
				d.fn = hIMul
			case OpEq:
				d.fn = hIEq
			case OpNe:
				d.fn = hINe
			case OpLt:
				d.fn = hILt
			case OpLe:
				d.fn = hILe
			case OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpGt, OpGe:
				d.fn = hIBin
			case OpNeg:
				d.fn = hINeg
			case OpNot:
				d.fn = hINot
			case OpSelect:
				d.fn = hISelect
			case OpSlotLoad:
				d.fn = hISlotLoad
			case OpSlotStore:
				d.fn = hISlotStore
			case OpGLoad, OpGArr:
				d.fn = hIGLoad
			case OpGStore:
				d.fn = hIGStore
			case OpNewArray:
				d.fn = hINewArray
			case OpALoad:
				d.fn = hIALoad
			case OpAStore:
				d.fn = hIAStore
			case OpLen:
				d.fn = hILen
			case OpVLoad2:
				d.fn = hIVLoad2
			case OpVBin:
				d.fn = hIVBin
				d.op = Op(v.AuxInt)
			case OpVStore2:
				d.fn = hIVStore2
			case OpCall:
				d.fn = hICall
				d.name = v.Aux
				d.callee = prog.Func(v.Aux)
				d.argIDs = make([]int32, len(v.Args))
				for i, a := range v.Args {
					d.argIDs[i] = int32(a.ID)
				}
			case OpPrint:
				d.fn = hIPrint
			case OpDbgValue:
				d.fn = hINop
			case OpRet:
				d.fn = hIRet
				if len(v.Args) == 0 {
					d.a0 = -1
				}
			case OpJmp:
				d.fn = hIJmp
				d.tgt = start[b.Succs[0]]
				d.moves = edgeMoves(b.Succs[0], b)
			case OpBr:
				d.fn = hIBr
				d.tgt = start[b.Succs[0]]
				d.moves = edgeMoves(b.Succs[0], b)
				d.tgt2 = start[b.Succs[1]]
				d.moves2 = edgeMoves(b.Succs[1], b)
			}
			df.code = append(df.code, d)
		}
	}
	return df
}

// runThreaded is the direct-threaded dispatch loop. Step accounting and
// the budget check sit in the loop, before each handler, exactly where
// the reference loop increments and checks.
func (in *Interp) runThreaded(df *dfunc, args []int64) (int64, error) {
	fr := iframe{
		vals:  make([]int64, df.nvals),
		slots: make([]int64, df.nslots),
		args:  args,
	}
	for _, mv := range df.entryMoves {
		fr.vals[mv.dst] = fr.vals[mv.src]
	}
	code := df.code
	pc := int32(0)
	for {
		in.steps++
		if in.steps > in.limit {
			return 0, ErrStepLimit
		}
		d := &code[pc]
		if pc = d.fn(in, &fr, d); pc < 0 {
			return in.fret, in.ferr
		}
	}
}

func hIConst(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = d.aux
	return d.next
}

func hIParam(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = fr.args[d.aux]
	return d.next
}

func hIAdd(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = fr.vals[d.a0] + fr.vals[d.a1]
	return d.next
}

func hISub(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = fr.vals[d.a0] - fr.vals[d.a1]
	return d.next
}

func hIMul(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = fr.vals[d.a0] * fr.vals[d.a1]
	return d.next
}

func hIEq(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = b2i(fr.vals[d.a0] == fr.vals[d.a1])
	return d.next
}

func hINe(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = b2i(fr.vals[d.a0] != fr.vals[d.a1])
	return d.next
}

func hILt(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = b2i(fr.vals[d.a0] < fr.vals[d.a1])
	return d.next
}

func hILe(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = b2i(fr.vals[d.a0] <= fr.vals[d.a1])
	return d.next
}

func hIBin(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = EvalBin(d.op, fr.vals[d.a0], fr.vals[d.a1])
	return d.next
}

func hINeg(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = -fr.vals[d.a0]
	return d.next
}

func hINot(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = b2i(fr.vals[d.a0] == 0)
	return d.next
}

func hISelect(_ *Interp, fr *iframe, d *iinstr) int32 {
	if fr.vals[d.a0] != 0 {
		fr.vals[d.dst] = fr.vals[d.a1]
	} else {
		fr.vals[d.dst] = fr.vals[d.a2]
	}
	return d.next
}

func hISlotLoad(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = fr.slots[d.aux]
	return d.next
}

func hISlotStore(_ *Interp, fr *iframe, d *iinstr) int32 {
	fr.slots[d.aux] = fr.vals[d.a0]
	return d.next
}

func hIGLoad(in *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = in.gvals[d.aux]
	return d.next
}

func hIGStore(in *Interp, fr *iframe, d *iinstr) int32 {
	in.gvals[d.aux] = fr.vals[d.a0]
	return d.next
}

func hINewArray(in *Interp, fr *iframe, d *iinstr) int32 {
	size := fr.vals[d.a0]
	if size < 0 {
		size = 0
	}
	if in.HeapBudget > 0 && in.heapWords+size > in.HeapBudget {
		in.fret, in.ferr = 0, ErrHeapBudget
		return -1
	}
	fr.vals[d.dst] = in.alloc(fr.vals[d.a0])
	return d.next
}

func hIALoad(in *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = in.aload(fr.vals[d.a0], fr.vals[d.a1])
	return d.next
}

func hIAStore(in *Interp, fr *iframe, d *iinstr) int32 {
	in.astore(fr.vals[d.a0], fr.vals[d.a1], fr.vals[d.a2])
	return d.next
}

func hILen(in *Interp, fr *iframe, d *iinstr) int32 {
	fr.vals[d.dst] = int64(len(in.arr(fr.vals[d.a0])))
	return d.next
}

func hIVLoad2(in *Interp, fr *iframe, d *iinstr) int32 {
	h, idx := fr.vals[d.a0], fr.vals[d.a1]
	lane0 := in.aload(h, idx)
	lane1 := in.aload(h, idx+1)
	fr.vals[d.dst] = lane0
	in.setLane(nil, d.v, lane1)
	return d.next
}

func hIVBin(in *Interp, fr *iframe, d *iinstr) int32 {
	a0, a1 := fr.vals[d.a0], in.lane(d.va[0])
	b0, b1 := fr.vals[d.a1], in.lane(d.va[1])
	fr.vals[d.dst] = EvalBin(d.op, a0, b0)
	in.setLane(nil, d.v, EvalBin(d.op, a1, b1))
	return d.next
}

func hIVStore2(in *Interp, fr *iframe, d *iinstr) int32 {
	h, idx := fr.vals[d.a0], fr.vals[d.a1]
	in.astore(h, idx, fr.vals[d.a2])
	in.astore(h, idx+1, in.lane(d.va[2]))
	return d.next
}

func hICall(in *Interp, fr *iframe, d *iinstr) int32 {
	if d.callee == nil {
		in.fret, in.ferr = 0, fmt.Errorf("ir interp: call to unknown %q", d.name)
		return -1
	}
	cargs := make([]int64, len(d.argIDs))
	for i, id := range d.argIDs {
		cargs[i] = fr.vals[id]
	}
	r, err := in.run(d.callee, cargs)
	if err != nil {
		in.fret, in.ferr = 0, err
		return -1
	}
	fr.vals[d.dst] = r
	return d.next
}

func hIPrint(in *Interp, fr *iframe, d *iinstr) int32 {
	in.out = append(in.out, fr.vals[d.a0])
	return d.next
}

func hINop(_ *Interp, _ *iframe, d *iinstr) int32 { return d.next }

func hIRet(in *Interp, fr *iframe, d *iinstr) int32 {
	if d.a0 >= 0 {
		in.fret = fr.vals[d.a0]
	} else {
		in.fret = 0
	}
	in.ferr = nil
	return -1
}

func hIJmp(_ *Interp, fr *iframe, d *iinstr) int32 {
	for _, mv := range d.moves {
		fr.vals[mv.dst] = fr.vals[mv.src]
	}
	return d.tgt
}

func hIBr(_ *Interp, fr *iframe, d *iinstr) int32 {
	if fr.vals[d.a0] != 0 {
		for _, mv := range d.moves {
			fr.vals[mv.dst] = fr.vals[mv.src]
		}
		return d.tgt
	}
	for _, mv := range d.moves2 {
		fr.vals[mv.dst] = fr.vals[mv.src]
	}
	return d.tgt2
}

func hIUnhandled(in *Interp, _ *iframe, d *iinstr) int32 {
	in.fret, in.ferr = 0, fmt.Errorf("ir interp: unhandled op %v", d.op)
	return -1
}
