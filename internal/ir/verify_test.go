package ir

import (
	"strings"
	"testing"
)

// TestVerifyRejectsStaleLines checks the debug-location validity rules:
// a line is a real source line or the 0 sentinel — never negative, and
// never beyond the module's recorded source extent (stale garbage left
// by a pass that copied attribution from the wrong instruction).
func TestVerifyRejectsStaleLines(t *testing.T) {
	prog, f := buildDiamond()
	prog.MaxLine = 2 // the diamond attributes lines up to 4
	err := Verify(f)
	if err == nil || !strings.Contains(err.Error(), "beyond source extent 2") {
		t.Fatalf("out-of-extent line not rejected, got %v", err)
	}

	_, f = buildDiamond()
	f.Blocks[0].Instrs[0].Line = -5
	err = Verify(f)
	if err == nil || !strings.Contains(err.Error(), "negative line -5") {
		t.Fatalf("negative line not rejected, got %v", err)
	}

	// Without a recorded extent any non-negative line is acceptable (a
	// module not built by irbuild, e.g. hand-constructed in tests).
	prog, f = buildDiamond()
	prog.MaxLine = 0
	f.Blocks[0].Instrs[0].Line = 9999
	if err := Verify(f); err != nil {
		t.Fatalf("unbounded module rejected: %v", err)
	}

	// The 0 sentinel is always valid, extent or not.
	prog, f = buildDiamond()
	prog.MaxLine = 4
	f.Blocks[0].Instrs[0].Line = 0
	if err := Verify(f); err != nil {
		t.Fatalf("artificial line rejected: %v", err)
	}
}
