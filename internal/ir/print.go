package ir

import (
	"fmt"
	"strings"
)

// String renders the function as readable SSA text, used by tests and the
// -emit-ir mode of the compiler driver.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d slots=%d", f.Name, f.NParams, f.NumSlots)
	if f.Pure {
		sb.WriteString(" pure")
	}
	sb.WriteString(")\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%v:", b)
		if len(b.Preds) > 0 {
			sb.WriteString(" <-")
			for _, p := range b.Preds {
				fmt.Fprintf(&sb, " %v", p)
			}
		}
		sb.WriteString("\n")
		for _, v := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatValue(v))
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func formatValue(v *Value) string {
	var sb strings.Builder
	if v.Op.HasResult() {
		fmt.Fprintf(&sb, "%v = ", v)
	}
	sb.WriteString(v.Op.String())
	switch v.Op {
	case OpConst, OpParam, OpSlotLoad, OpSlotStore, OpGLoad, OpGStore, OpGArr:
		fmt.Fprintf(&sb, " [%d]", v.AuxInt)
	case OpVBin:
		fmt.Fprintf(&sb, " [%s]", Op(v.AuxInt))
	case OpCall:
		fmt.Fprintf(&sb, " %s", v.Aux)
	case OpDbgValue:
		fmt.Fprintf(&sb, " %s", v.Var.Name)
	}
	for _, a := range v.Args {
		fmt.Fprintf(&sb, " %v", a)
	}
	if v.Op == OpDbgValue && len(v.Args) == 0 {
		sb.WriteString(" <optimized out>")
	}
	switch v.Op {
	case OpBr:
		fmt.Fprintf(&sb, " -> %v %v", v.Block.Succs[0], v.Block.Succs[1])
	case OpJmp:
		fmt.Fprintf(&sb, " -> %v", v.Block.Succs[0])
	}
	if v.Line > 0 {
		fmt.Fprintf(&sb, "  ; line %d", v.Line)
	}
	return sb.String()
}

// Stats summarizes a program for quick test assertions.
type Stats struct {
	Funcs, Blocks, Instrs, DbgValues, Phis int
}

// CollectStats tallies program-wide IR statistics.
func CollectStats(p *Program) Stats {
	var s Stats
	s.Funcs = len(p.Funcs)
	for _, f := range p.Funcs {
		s.Blocks += len(f.Blocks)
		for _, b := range f.Blocks {
			s.Instrs += len(b.Instrs)
			for _, v := range b.Instrs {
				switch v.Op {
				case OpDbgValue:
					s.DbgValues++
				case OpPhi:
					s.Phis++
				}
			}
		}
	}
	return s
}
