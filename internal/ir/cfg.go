package ir

// CFG edge and dominator utilities shared by the optimization passes.
// Phi operands are positional: Phi.Args[i] corresponds to Block.Preds[i],
// so every edge edit below keeps the two aligned.

// AddEdge appends an edge from b to s, extending s's phis with the given
// incoming value chooser (nil keeps phis unchanged — caller must fix up).
func AddEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// predIndex returns the index of p in b.Preds, or -1.
func predIndex(b, p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	return -1
}

// RemovePredEdge removes the i-th predecessor edge of b, dropping the
// corresponding phi operands.
func RemovePredEdge(b *Block, i int) {
	b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
	for _, v := range b.Instrs {
		if v.Op != OpPhi {
			break
		}
		v.Args = append(v.Args[:i], v.Args[i+1:]...)
	}
}

// ReplaceSucc redirects b's edge from old to new, updating pred lists on
// both ends. Phi operands of old are removed; new gains the edge with the
// supplied phi values appended (phiVals may be nil when new has no phis).
func ReplaceSucc(b, old, new_ *Block, phiVals []*Value) {
	for i, s := range b.Succs {
		if s == old {
			b.Succs[i] = new_
			break
		}
	}
	if i := predIndex(old, b); i >= 0 {
		RemovePredEdge(old, i)
	}
	new_.Preds = append(new_.Preds, b)
	j := 0
	for _, v := range new_.Instrs {
		if v.Op != OpPhi {
			break
		}
		if j < len(phiVals) {
			v.Args = append(v.Args, phiVals[j])
		}
		j++
	}
}

// RemoveValue deletes v from its block. It is the caller's responsibility
// that v has no remaining uses.
func RemoveValue(v *Value) {
	b := v.Block
	for i, w := range b.Instrs {
		if w == v {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			return
		}
	}
}

// InsertBefore places v immediately before pos in pos's block.
func InsertBefore(pos, v *Value) {
	b := pos.Block
	v.Block = b
	for i, w := range b.Instrs {
		if w == pos {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = v
			return
		}
	}
	b.Instrs = append(b.Instrs, v)
}

// ReplaceAllUses rewrites every use of old in the function to new.
func ReplaceAllUses(f *Func, old, new_ *Value) {
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			for i, a := range v.Args {
				if a == old {
					v.Args[i] = new_
				}
			}
		}
	}
}

// UseCounts returns the number of uses of each value, indexed by ID.
func UseCounts(f *Func) []int {
	uses := make([]int, f.NumValueIDs())
	for _, b := range f.Blocks {
		for _, v := range b.Instrs {
			for _, a := range v.Args {
				uses[a.ID]++
			}
		}
	}
	return uses
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(f *Func) map[*Block]bool {
	seen := map[*Block]bool{}
	var stack []*Block
	stack = append(stack, f.Entry())
	seen[f.Entry()] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RemoveUnreachable deletes blocks not reachable from entry, fixing up
// pred lists and phis of surviving blocks. It reports whether anything
// changed.
func RemoveUnreachable(f *Func) bool {
	seen := Reachable(f)
	if len(seen) == len(f.Blocks) {
		return false
	}
	for _, b := range f.Blocks {
		if !seen[b] {
			continue
		}
		for i := len(b.Preds) - 1; i >= 0; i-- {
			if !seen[b.Preds[i]] {
				RemovePredEdge(b, i)
			}
		}
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if seen[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	return true
}

// RPO returns the blocks in reverse postorder.
func RPO(f *Func) []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var order []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(f.Entry())
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// Dominators computes the immediate dominator of every reachable block
// using the Cooper–Harvey–Kennedy iterative algorithm. The entry block's
// idom is itself.
func Dominators(f *Func) map[*Block]*Block {
	order := RPO(f)
	index := make(map[*Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}
	idom := make(map[*Block]*Block, len(order))
	entry := f.Entry()
	idom[entry] = entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return a == b
		}
		b = next
	}
}

// DomTree builds children lists from an idom map.
func DomTree(f *Func, idom map[*Block]*Block) map[*Block][]*Block {
	tree := make(map[*Block][]*Block)
	for _, b := range f.Blocks {
		if p := idom[b]; p != nil && p != b {
			tree[p] = append(tree[p], b)
		}
	}
	return tree
}

// EstimateFrequencies assigns Block.Freq from branch probabilities:
// probabilities propagate along forward edges in reverse postorder, and
// each block's result is scaled by 8^loop-depth (back-edge natural
// loops), the classic static frequency estimate that
// guess-branch-probability feeds to layout and the register allocator.
func EstimateFrequencies(f *Func) {
	order := RPO(f)
	index := make(map[*Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}
	idom := Dominators(f)
	// Loop depth from natural loops (back edge b->h with h dominating b).
	depth := map[*Block]int{}
	for _, b := range order {
		for _, s := range b.Succs {
			if !Dominates(idom, s, b) {
				continue
			}
			// Collect the natural loop of edge b -> s.
			inLoop := map[*Block]bool{s: true}
			stack := []*Block{}
			if !inLoop[b] {
				inLoop[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range x.Preds {
					if !inLoop[p] {
						inLoop[p] = true
						stack = append(stack, p)
					}
				}
			}
			for blk := range inLoop {
				depth[blk]++
			}
		}
	}
	// Acyclic probability propagation.
	prob := map[*Block]float64{}
	prob[f.Entry()] = 1
	for _, b := range order {
		if prob[b] == 0 && b != f.Entry() {
			prob[b] = 0.0001
		}
		t := b.Term()
		if t == nil {
			continue
		}
		push := func(s *Block, p float64) {
			if index[s] <= index[b] {
				return // back edge: handled by the depth multiplier
			}
			prob[s] += prob[b] * p
		}
		switch t.Op {
		case OpJmp:
			push(b.Succs[0], 1)
		case OpBr:
			push(b.Succs[0], b.Prob)
			push(b.Succs[1], 1-b.Prob)
		}
	}
	for _, b := range f.Blocks {
		m := 1.0
		for d := 0; d < depth[b] && d < 6; d++ {
			m *= 8
		}
		b.Freq = prob[b] * m
	}
}
