package ir

import (
	"errors"
	"fmt"
)

// Interp executes IR directly. It exists for differential testing: every
// optimization pipeline must leave a program's observable output (the
// print stream) unchanged, and the interpreter provides the reference
// semantics independent of the back end and VM.
type Interp struct {
	prog      *Program
	heap      [][]int64
	heapWords int64
	gvals     []int64
	out       []int64
	steps     int64
	limit     int64
	lanes     map[*Value]int64

	// dcache holds the direct-threaded streams, decoded per function on
	// first execution (see interp_thread.go). Scoped to the Interp so IR
	// mutated between interpreter instances can never serve stale code.
	dcache map[*Func]*dfunc
	// fret/ferr carry a threaded frame's outcome from its terminating
	// handler back to the dispatch loop.
	fret int64
	ferr error

	// HeapBudget, when > 0, turns allocations that would push the total
	// heap past it into ErrHeapBudget instead of the silent maxHeapWords
	// clamp. 0 (the default) preserves the clamping semantics.
	HeapBudget int64

	// Reference selects the original switch-loop core — the executable
	// specification the threaded core is differentially tested against.
	Reference bool
}

// maxHeapWords caps the interpreter's total array heap, mirroring
// vm.MaxHeapWords exactly: allocations past the cap clamp to the
// remaining capacity, and out-of-bounds semantics keep the run total.
// The two constants must stay equal or differential tests diverge on
// alloc-heavy programs.
const maxHeapWords int64 = 1 << 24

// ErrBudget is the base sentinel for execution-budget exhaustion:
// errors.Is(err, ErrBudget) matches both step- and heap-budget errors.
// Budget exhaustion is deterministic for a given program and input, so
// retry layers must classify it as permanent, never transient.
var ErrBudget = errors.New("ir interp: execution budget exceeded")

// ErrStepLimit is returned when execution exceeds the step budget,
// protecting differential tests from accidental non-termination.
var ErrStepLimit = fmt.Errorf("%w: step limit", ErrBudget)

// ErrHeapBudget is returned when an allocation would push the heap past
// an explicitly configured Interp.HeapBudget. The hard maxHeapWords cap
// still clamps silently, mirroring the VM.
var ErrHeapBudget = fmt.Errorf("%w: heap limit", ErrBudget)

// NewInterp prepares an interpreter with initialized globals.
func NewInterp(prog *Program, limit int64) *Interp {
	in := &Interp{prog: prog, limit: limit}
	in.gvals = make([]int64, len(prog.Globals))
	for _, g := range prog.Globals {
		if g.IsArray {
			in.gvals[g.Index] = in.alloc(g.Init)
		} else {
			in.gvals[g.Index] = g.Init
		}
	}
	return in
}

func (in *Interp) alloc(size int64) int64 {
	if size < 0 {
		size = 0
	}
	if rem := maxHeapWords - in.heapWords; size > rem {
		size = rem
	}
	in.heapWords += size
	in.heap = append(in.heap, make([]int64, size))
	return int64(len(in.heap) - 1)
}

// NewArray allocates an array and returns its handle, used to pass
// harness inputs.
func (in *Interp) NewArray(data []int64) int64 {
	h := in.alloc(int64(len(data)))
	copy(in.heap[h], data)
	return h
}

// Output returns the accumulated print stream.
func (in *Interp) Output() []int64 { return in.out }

// Call invokes the named function with the given arguments.
func (in *Interp) Call(name string, args ...int64) (int64, error) {
	f := in.prog.Func(name)
	if f == nil {
		return 0, fmt.Errorf("ir interp: no function %q", name)
	}
	return in.run(f, args)
}

// run dispatches one activation to the selected core.
func (in *Interp) run(f *Func, args []int64) (int64, error) {
	if in.Reference {
		return in.runRef(f, args)
	}
	return in.runThreaded(in.decode(f), args)
}

// runRef is the reference core: the direct switch over the *Value graph,
// kept verbatim as the semantics the threaded core must reproduce —
// output, return values, step accounting, budget traps, and error
// identity included.
func (in *Interp) runRef(f *Func, args []int64) (int64, error) {
	vals := make([]int64, f.NumValueIDs())
	slots := make([]int64, f.NumSlots)
	b := f.Entry()
	var prevPredIdx int
	for {
		// Evaluate phis atomically against the incoming edge.
		for _, v := range b.Instrs {
			if v.Op != OpPhi {
				break
			}
			vals[v.ID] = vals[v.Args[prevPredIdx].ID]
		}
		for _, v := range b.Instrs {
			if v.Op == OpPhi {
				continue
			}
			in.steps++
			if in.steps > in.limit {
				return 0, ErrStepLimit
			}
			switch v.Op {
			case OpConst:
				vals[v.ID] = v.AuxInt
			case OpParam:
				vals[v.ID] = args[v.AuxInt]
			case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
				OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
				vals[v.ID] = EvalBin(v.Op, vals[v.Args[0].ID], vals[v.Args[1].ID])
			case OpNeg:
				vals[v.ID] = -vals[v.Args[0].ID]
			case OpNot:
				if vals[v.Args[0].ID] == 0 {
					vals[v.ID] = 1
				} else {
					vals[v.ID] = 0
				}
			case OpSelect:
				if vals[v.Args[0].ID] != 0 {
					vals[v.ID] = vals[v.Args[1].ID]
				} else {
					vals[v.ID] = vals[v.Args[2].ID]
				}
			case OpSlotLoad:
				vals[v.ID] = slots[v.AuxInt]
			case OpSlotStore:
				slots[v.AuxInt] = vals[v.Args[0].ID]
			case OpGLoad, OpGArr:
				vals[v.ID] = in.gvals[v.AuxInt]
			case OpGStore:
				in.gvals[v.AuxInt] = vals[v.Args[0].ID]
			case OpNewArray:
				size := vals[v.Args[0].ID]
				if size < 0 {
					size = 0
				}
				if in.HeapBudget > 0 && in.heapWords+size > in.HeapBudget {
					return 0, ErrHeapBudget
				}
				vals[v.ID] = in.alloc(vals[v.Args[0].ID])
			case OpALoad:
				vals[v.ID] = in.aload(vals[v.Args[0].ID], vals[v.Args[1].ID])
			case OpAStore:
				in.astore(vals[v.Args[0].ID], vals[v.Args[1].ID], vals[v.Args[2].ID])
			case OpLen:
				vals[v.ID] = int64(len(in.arr(vals[v.Args[0].ID])))
			case OpVLoad2:
				h, idx := vals[v.Args[0].ID], vals[v.Args[1].ID]
				lane0 := in.aload(h, idx)
				lane1 := in.aload(h, idx+1)
				vals[v.ID] = lane0
				in.setLane(f, v, lane1)
			case OpVBin:
				a0, a1 := vals[v.Args[0].ID], in.lane(v.Args[0])
				b0, b1 := vals[v.Args[1].ID], in.lane(v.Args[1])
				vals[v.ID] = EvalBin(Op(v.AuxInt), a0, b0)
				in.setLane(f, v, EvalBin(Op(v.AuxInt), a1, b1))
			case OpVStore2:
				h, idx := vals[v.Args[0].ID], vals[v.Args[1].ID]
				in.astore(h, idx, vals[v.Args[2].ID])
				in.astore(h, idx+1, in.lane(v.Args[2]))
			case OpCall:
				callee := in.prog.Func(v.Aux)
				if callee == nil {
					return 0, fmt.Errorf("ir interp: call to unknown %q", v.Aux)
				}
				cargs := make([]int64, len(v.Args))
				for i, a := range v.Args {
					cargs[i] = vals[a.ID]
				}
				r, err := in.run(callee, cargs)
				if err != nil {
					return 0, err
				}
				vals[v.ID] = r
			case OpPrint:
				in.out = append(in.out, vals[v.Args[0].ID])
			case OpDbgValue:
				// no runtime effect
			case OpRet:
				if len(v.Args) == 1 {
					return vals[v.Args[0].ID], nil
				}
				return 0, nil
			case OpJmp:
				next := b.Succs[0]
				prevPredIdx = indexOfPred(next, b)
				b = next
			case OpBr:
				var next *Block
				if vals[v.Args[0].ID] != 0 {
					next = b.Succs[0]
				} else {
					next = b.Succs[1]
				}
				prevPredIdx = indexOfPred(next, b)
				b = next
			default:
				return 0, fmt.Errorf("ir interp: unhandled op %v", v.Op)
			}
			if v.Op.IsTerminator() {
				break
			}
		}
	}
}

// lanes stores the second lane of vector values, keyed by value pointer.
// A per-call map would be cleaner but this suffices because vector values
// never live across calls of the same function recursively in practice;
// to stay safe the interpreter keys by value identity and the caller's
// frame never observes the callee's lanes.
func (in *Interp) lane(v *Value) int64 {
	if in.lanes == nil {
		return 0
	}
	return in.lanes[v]
}

func (in *Interp) setLane(_ *Func, v *Value, x int64) {
	if in.lanes == nil {
		in.lanes = make(map[*Value]int64)
	}
	in.lanes[v] = x
}

func (in *Interp) arr(h int64) []int64 {
	if h < 0 || h >= int64(len(in.heap)) {
		return nil
	}
	return in.heap[h]
}

func (in *Interp) aload(h, idx int64) int64 {
	a := in.arr(h)
	if idx < 0 || idx >= int64(len(a)) {
		return 0 // MiniC total semantics: OOB reads yield zero
	}
	return a[idx]
}

func (in *Interp) astore(h, idx, val int64) {
	a := in.arr(h)
	if idx < 0 || idx >= int64(len(a)) {
		return // OOB writes are no-ops
	}
	a[idx] = val
}

func indexOfPred(b, p *Block) int {
	for i, q := range b.Preds {
		if q == p {
			return i
		}
	}
	panic(fmt.Sprintf("interp: %v not a pred of %v", p, b))
}

// EvalBin evaluates a binary opcode under MiniC's total semantics:
// wrapping arithmetic, zero results for division by zero, and shift
// amounts masked to 6 bits.
func EvalBin(op Op, x, y int64) int64 {
	switch op {
	case OpAdd:
		return x + y
	case OpSub:
		return x - y
	case OpMul:
		return x * y
	case OpDiv:
		if y == 0 {
			return 0
		}
		if x == -1<<63 && y == -1 {
			return x // wraps: -MinInt overflows back to MinInt
		}
		return x / y
	case OpRem:
		if y == 0 {
			return 0
		}
		if x == -1<<63 && y == -1 {
			return 0
		}
		return x % y
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		return x << uint(y&63)
	case OpShr:
		return x >> uint(y&63)
	case OpEq:
		return b2i(x == y)
	case OpNe:
		return b2i(x != y)
	case OpLt:
		return b2i(x < y)
	case OpLe:
		return b2i(x <= y)
	case OpGt:
		return b2i(x > y)
	case OpGe:
		return b2i(x >= y)
	}
	panic(fmt.Sprintf("EvalBin: not a binary op: %v", op))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
