package ir

import "fmt"

// Verify checks structural invariants of the function's IR and returns
// the first violation found, or nil. Passes run it after themselves in
// tests, catching metadata and CFG corruption early.
func Verify(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	inFunc := map[*Value]bool{}
	blockSet := map[*Block]bool{}
	for _, b := range f.Blocks {
		blockSet[b] = true
		for _, v := range b.Instrs {
			if v.Block != b {
				return fmt.Errorf("%s: %v claims block %v but lives in %v", f.Name, v, v.Block, b)
			}
			inFunc[v] = true
		}
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			return fmt.Errorf("%s: %v has no terminator", f.Name, b)
		}
		for i, v := range b.Instrs {
			if v.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("%s: %v: terminator %v not last", f.Name, b, v)
			}
			if v.Op == OpPhi {
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					return fmt.Errorf("%s: %v: phi %v not in phi prefix", f.Name, b, v)
				}
				if len(v.Args) != len(b.Preds) {
					return fmt.Errorf("%s: %v: phi %v has %d args for %d preds",
						f.Name, b, v, len(v.Args), len(b.Preds))
				}
			}
			if v.Op == OpDbgValue && v.Var == nil {
				return fmt.Errorf("%s: %v: dbg.value without variable", f.Name, b)
			}
			// Debug-location validity: a line is either a real source line
			// or the explicit 0 ("artificial") sentinel — never negative,
			// never beyond the source extent recorded on the module.
			if v.Line < 0 {
				return fmt.Errorf("%s: %v: %v has negative line %d", f.Name, b, v, v.Line)
			}
			if f.Prog != nil && f.Prog.MaxLine > 0 && v.Line > f.Prog.MaxLine {
				return fmt.Errorf("%s: %v: %v line %d beyond source extent %d",
					f.Name, b, v, v.Line, f.Prog.MaxLine)
			}
			for _, a := range v.Args {
				if a == nil {
					return fmt.Errorf("%s: %v: %v has nil arg", f.Name, b, v)
				}
				if !inFunc[a] {
					return fmt.Errorf("%s: %v: %v uses foreign value %v", f.Name, b, v, a)
				}
				if !a.Op.HasResult() {
					return fmt.Errorf("%s: %v: %v uses resultless %v (%v)", f.Name, b, v, a, a.Op)
				}
			}
		}
		wantSuccs := 0
		switch t.Op {
		case OpJmp:
			wantSuccs = 1
		case OpBr:
			wantSuccs = 2
			if len(t.Args) != 1 {
				return fmt.Errorf("%s: %v: br with %d args", f.Name, b, len(t.Args))
			}
		case OpRet:
			wantSuccs = 0
		}
		if len(b.Succs) != wantSuccs {
			return fmt.Errorf("%s: %v: %v terminator with %d succs", f.Name, b, t.Op, len(b.Succs))
		}
		for _, s := range b.Succs {
			if !blockSet[s] {
				return fmt.Errorf("%s: %v: succ %v not in function", f.Name, b, s)
			}
			if predIndex(s, b) < 0 {
				return fmt.Errorf("%s: %v: succ %v missing back-pointer", f.Name, b, s)
			}
		}
		for _, p := range b.Preds {
			if !blockSet[p] {
				return fmt.Errorf("%s: %v: pred %v not in function", f.Name, b, p)
			}
			found := false
			for _, s := range p.Succs {
				if s == b {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("%s: %v: pred %v does not list it as succ", f.Name, b, p)
			}
		}
	}
	return nil
}

// VerifyProgram verifies all functions.
func VerifyProgram(p *Program) error {
	for _, f := range p.Funcs {
		if err := Verify(f); err != nil {
			return err
		}
	}
	return nil
}
