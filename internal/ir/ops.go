// Package ir defines the MiniC SSA intermediate representation.
//
// The design follows cmd/compile's generic SSA: one Value struct carries
// an opcode, operands, an auxiliary integer, and — crucially for this
// project — a source line and optional variable binding. Optimization
// passes transform Values and are obliged to maintain the debug metadata
// the same way production compilers are; how faithfully they do so is
// exactly what DebugTuner measures.
package ir

// Op is an IR opcode.
type Op int

// Opcodes. Terminators come last, after opTermStart.
const (
	OpInvalid Op = iota

	// Pure values.
	OpConst // AuxInt = constant
	OpParam // AuxInt = parameter index
	OpPhi   // one arg per predecessor, in Preds order

	// Integer arithmetic. All wrap; Div/Rem by zero yield zero.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl // shift amount masked to 6 bits
	OpShr // arithmetic shift right, amount masked
	OpNeg
	OpNot // logical not: 1 if arg == 0 else 0

	// Comparisons produce 0 or 1.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Select: Args[0] != 0 ? Args[1] : Args[2]. Produced by if-conversion.
	OpSelect

	// Local slots (pre-mem2reg storage for scalars). AuxInt = slot index.
	OpSlotLoad
	OpSlotStore // Args[0] = value

	// Globals. AuxInt = global index.
	OpGLoad
	OpGStore // Args[0] = value
	OpGArr   // handle of a global array

	// Arrays. Out-of-bounds loads yield 0; stores are no-ops.
	OpNewArray // Args[0] = size
	OpALoad    // Args[0] = arr, Args[1] = idx
	OpAStore   // Args[0] = arr, Args[1] = idx, Args[2] = value
	OpLen      // Args[0] = arr

	// Two-lane vector ops, produced by slp-vectorize. A vector value
	// holds lanes (v, v2) in one Value.
	OpVLoad2 // Args[0]=arr, Args[1]=idx: lanes a[idx], a[idx+1]
	OpVBin   // AuxInt = scalar Op; Args[0], Args[1] vectors
	OpVStore2

	// Calls and effects.
	OpCall  // Aux = callee name; Args = arguments
	OpPrint // Args[0] = value; ordered observable output

	// DbgValue is a debug pseudo-instruction binding Var to Args[0]
	// from this program point on. Args empty means the variable's
	// value is unrecoverable here ("optimized out"). It generates no
	// code; the back end turns chains of these into location lists.
	OpDbgValue

	opTermStart
	// Terminators.
	OpRet // optional Args[0]
	OpBr  // Args[0] = cond; Succs[0] = taken when != 0, Succs[1] otherwise
	OpJmp // Succs[0]
)

var opNames = [...]string{
	OpInvalid: "invalid", OpConst: "const", OpParam: "param", OpPhi: "phi",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpNeg: "neg", OpNot: "not",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpSelect:   "select",
	OpSlotLoad: "slotload", OpSlotStore: "slotstore",
	OpGLoad: "gload", OpGStore: "gstore", OpGArr: "garr",
	OpNewArray: "newarray", OpALoad: "aload", OpAStore: "astore", OpLen: "len",
	OpVLoad2: "vload2", OpVBin: "vbin", OpVStore2: "vstore2",
	OpCall: "call", OpPrint: "print", OpDbgValue: "dbg.value",
	opTermStart: "?", OpRet: "ret", OpBr: "br", OpJmp: "jmp",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o > opTermStart }

// IsPure reports whether the op has no side effects and no dependence on
// memory, so it can be freely duplicated, reordered, CSE'd, or removed.
func (o Op) IsPure() bool {
	switch o {
	case OpConst, OpParam, OpAdd, OpSub, OpMul, OpDiv, OpRem,
		OpAnd, OpOr, OpXor, OpShl, OpShr, OpNeg, OpNot,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpSelect, OpGArr, OpLen:
		return true
	}
	return false
}

// HasResult reports whether the op produces a value that other
// instructions may use.
func (o Op) HasResult() bool {
	switch o {
	case OpSlotStore, OpGStore, OpAStore, OpVStore2, OpPrint, OpDbgValue,
		OpRet, OpBr, OpJmp, OpInvalid:
		return false
	}
	return true
}

// IsMemRead reports whether the op observes mutable memory.
func (o Op) IsMemRead() bool {
	switch o {
	case OpSlotLoad, OpGLoad, OpALoad, OpVLoad2:
		return true
	}
	return false
}

// IsMemWrite reports whether the op mutates memory or emits output.
func (o Op) IsMemWrite() bool {
	switch o {
	case OpSlotStore, OpGStore, OpAStore, OpVStore2, OpPrint, OpNewArray:
		return true
	}
	return false
}

// IsCommutative reports whether operand order is irrelevant.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}
