package ir

import (
	"fmt"

	"debugtuner/internal/ast"
)

// Value is one SSA value / instruction. Constants and parameters are
// Values too (materialized in the entry block by the builder).
type Value struct {
	Op     Op
	ID     int
	Block  *Block
	Args   []*Value
	AuxInt int64  // constant value, param/slot/global index, or vector sub-op
	Aux    string // callee name for OpCall

	// Line is the 1-based source line this instruction is attributed to.
	// Zero means artificial: passes that move code across blocks drop the
	// line, exactly as LLVM's hoist/sink utilities do, and the line table
	// loses the entry.
	Line int

	// Var binds an OpDbgValue to its source variable.
	Var *ast.Symbol
}

// NumArgs returns len(v.Args).
func (v *Value) NumArgs() int { return len(v.Args) }

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("v%d", v.ID)
}

// Block is a basic block: a phi prefix, a body, and one terminator.
type Block struct {
	ID     int
	Func   *Func
	Instrs []*Value
	Preds  []*Block
	Succs  []*Block

	// Prob is the estimated probability that an OpBr terminator takes
	// Succs[0]; it is 0.5 until the branch-probability pass runs.
	Prob float64
	// Freq is the estimated execution frequency relative to entry = 1.
	Freq float64
}

// Term returns the block terminator, or nil when the block is still being
// built.
func (b *Block) Term() *Value {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Phis returns the block's phi prefix.
func (b *Block) Phis() []*Value {
	for i, v := range b.Instrs {
		if v.Op != OpPhi {
			return b.Instrs[:i]
		}
	}
	return b.Instrs
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Func is one IR function.
type Func struct {
	Name    string
	NParams int
	Blocks  []*Block // Blocks[0] is the entry
	Prog    *Program

	// NumSlots counts pre-mem2reg local slots.
	NumSlots int
	// SlotVars maps slot index -> source variable (nil for temporaries).
	SlotVars []*ast.Symbol
	// ParamVars maps param index -> source variable.
	ParamVars []*ast.Symbol

	// Pure is set by the ipa-pure-const pass: no memory writes, no
	// prints, and only pure callees — calls to it may be CSE'd or
	// removed when unused.
	Pure bool

	// StartLine is the source line of the function header.
	StartLine int

	nextValueID int
	nextBlockID int
}

// NewValue allocates a value in block b.
func (f *Func) NewValue(b *Block, op Op, line int, args ...*Value) *Value {
	v := &Value{Op: op, ID: f.nextValueID, Block: b, Args: args, Line: line}
	f.nextValueID++
	return v
}

// NumValueIDs returns an upper bound for value IDs, for dense maps.
func (f *Func) NumValueIDs() int { return f.nextValueID }

// NewBlock allocates a block and appends it to the function.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlockID, Func: f, Prob: 0.5, Freq: 1}
	f.nextBlockID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumBlockIDs returns an upper bound for block IDs, for dense maps.
func (f *Func) NumBlockIDs() int { return f.nextBlockID }

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Global is a module-level variable.
type Global struct {
	Name    string
	Index   int
	IsArray bool
	Init    int64 // scalar initial value, or array length
	Sym     *ast.Symbol
}

// Program is a whole IR module.
type Program struct {
	Funcs   []*Func
	Globals []*Global
	// Symbols is the semantic symbol table, shared with sema.Info.
	Symbols []*ast.Symbol
	// MaxLine is the last line of the source the module was built from
	// (or the synthetic line count after debugify injection). When
	// nonzero, Verify rejects any instruction line outside [0, MaxLine]:
	// a line beyond the source extent is stale garbage, not attribution.
	MaxLine int
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Clone deep-copies the program so that destructive pass pipelines can
// run on a private copy. Debug metadata (lines, variable bindings) is
// preserved; symbol pointers are shared (they are immutable after sema).
func (p *Program) Clone() *Program {
	np := &Program{Symbols: p.Symbols, MaxLine: p.MaxLine}
	np.Globals = append(np.Globals, make([]*Global, 0, len(p.Globals))...)
	for _, g := range p.Globals {
		cg := *g
		np.Globals = append(np.Globals, &cg)
	}
	for _, f := range p.Funcs {
		np.Funcs = append(np.Funcs, f.clone(np))
	}
	return np
}

func (f *Func) clone(prog *Program) *Func {
	nf := &Func{
		Name: f.Name, NParams: f.NParams, Prog: prog,
		NumSlots: f.NumSlots, Pure: f.Pure, StartLine: f.StartLine,
		nextValueID: f.nextValueID, nextBlockID: f.nextBlockID,
	}
	nf.SlotVars = append(nf.SlotVars, f.SlotVars...)
	nf.ParamVars = append(nf.ParamVars, f.ParamVars...)
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	valueMap := make(map[*Value]*Value)
	for _, b := range f.Blocks {
		nb := &Block{ID: b.ID, Func: nf, Prob: b.Prob, Freq: b.Freq}
		blockMap[b] = nb
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, v := range b.Instrs {
			nv := &Value{
				Op: v.Op, ID: v.ID, Block: nb, AuxInt: v.AuxInt,
				Aux: v.Aux, Line: v.Line, Var: v.Var,
			}
			valueMap[v] = nv
			nb.Instrs = append(nb.Instrs, nv)
		}
	}
	for _, b := range f.Blocks {
		nb := blockMap[b]
		for _, p := range b.Preds {
			nb.Preds = append(nb.Preds, blockMap[p])
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, blockMap[s])
		}
		for _, v := range b.Instrs {
			nv := valueMap[v]
			for _, a := range v.Args {
				na := valueMap[a]
				if na == nil {
					if v.Op == OpDbgValue {
						// A binding whose referent is placed in no block is
						// exactly what a DCE that forgets its dbg.value users
						// leaves behind (staticdbg's dbg-orphan rule). Clone
						// the referent detached so the corruption survives
						// for the analyzer to report — crashing a copy
						// utility on already-corrupt debug metadata would
						// turn a diagnosable finding into a dead pipeline.
						na = &Value{
							Op: a.Op, ID: a.ID, AuxInt: a.AuxInt,
							Aux: a.Aux, Line: a.Line, Var: a.Var,
						}
						valueMap[a] = na
					} else {
						// Real dataflow with a dangling arg is a verifier
						// error; keep the panic loud during development.
						panic(fmt.Sprintf("clone: unmapped arg %v of %v in %s", a, v, f.Name))
					}
				}
				nv.Args = append(nv.Args, na)
			}
		}
	}
	return nf
}
