package ir

import (
	"errors"
	"testing"
	"testing/quick"
)

// buildDiamond constructs entry -> {left, right} -> join with a phi.
func buildDiamond() (*Program, *Func) {
	prog := &Program{}
	f := &Func{Name: "f", Prog: prog}
	prog.Funcs = append(prog.Funcs, f)
	entry := f.NewBlock()
	left := f.NewBlock()
	right := f.NewBlock()
	join := f.NewBlock()

	c := f.NewValue(entry, OpParam, 1)
	br := f.NewValue(entry, OpBr, 1, c)
	entry.Instrs = append(entry.Instrs, c, br)
	AddEdge(entry, left)
	AddEdge(entry, right)

	l1 := f.NewValue(left, OpConst, 2)
	l1.AuxInt = 10
	lj := f.NewValue(left, OpJmp, 2)
	left.Instrs = append(left.Instrs, l1, lj)
	AddEdge(left, join)

	r1 := f.NewValue(right, OpConst, 3)
	r1.AuxInt = 20
	rj := f.NewValue(right, OpJmp, 3)
	right.Instrs = append(right.Instrs, r1, rj)
	AddEdge(right, join)

	phi := f.NewValue(join, OpPhi, 0, l1, r1)
	ret := f.NewValue(join, OpRet, 4, phi)
	join.Instrs = append(join.Instrs, phi, ret)
	return prog, f
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	_, f := buildDiamond()
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	corruptions := []func(f *Func){
		func(f *Func) { // phi arity mismatch
			join := f.Blocks[3]
			join.Instrs[0].Args = join.Instrs[0].Args[:1]
		},
		func(f *Func) { // missing terminator
			join := f.Blocks[3]
			join.Instrs = join.Instrs[:1]
		},
		func(f *Func) { // dangling succ back-pointer
			f.Blocks[0].Succs[0].Preds = nil
		},
		func(f *Func) { // foreign value use
			other := &Func{Name: "g"}
			v := other.NewValue(nil, OpConst, 0)
			f.Blocks[3].Instrs[1].Args[0] = v
		},
		func(f *Func) { // resultless value used
			left := f.Blocks[1]
			jmp := left.Instrs[1]
			f.Blocks[3].Instrs[0].Args[0] = jmp
		},
	}
	for i, corrupt := range corruptions {
		_, f := buildDiamond()
		corrupt(f)
		if err := Verify(f); err == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	prog, f := buildDiamond()
	clone := prog.Clone()
	cf := clone.Funcs[0]
	if err := Verify(cf); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	cf.Blocks[1].Instrs[0].AuxInt = 999
	if f.Blocks[1].Instrs[0].AuxInt == 999 {
		t.Fatal("clone shares values with the original")
	}
	if len(cf.Blocks) != len(f.Blocks) {
		t.Fatal("clone changed block count")
	}
}

func TestDominators(t *testing.T) {
	_, f := buildDiamond()
	idom := Dominators(f)
	entry, left, right, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if idom[left] != entry || idom[right] != entry || idom[join] != entry {
		t.Fatalf("idoms wrong: %v", idom)
	}
	if !Dominates(idom, entry, join) || Dominates(idom, left, join) {
		t.Fatal("dominance queries wrong")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	_, f := buildDiamond()
	// Orphan block with an edge into join.
	orphan := f.NewBlock()
	j := f.NewValue(orphan, OpJmp, 0)
	orphan.Instrs = append(orphan.Instrs, j)
	AddEdge(orphan, f.Blocks[3])
	// join's phi gains a column for the new pred.
	phi := f.Blocks[3].Instrs[0]
	phi.Args = append(phi.Args, phi.Args[0])
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	if !RemoveUnreachable(f) {
		t.Fatal("unreachable block not removed")
	}
	if err := Verify(f); err != nil {
		t.Fatalf("verify after removal: %v", err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("%d blocks remain, want 4", len(f.Blocks))
	}
}

// TestEvalBinTotality (property): EvalBin never panics and division is
// total.
func TestEvalBinTotality(t *testing.T) {
	ops := []Op{OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	check := func(x, y int64, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		v := EvalBin(op, x, y)
		switch op {
		case OpDiv, OpRem:
			if y == 0 && v != 0 {
				return false
			}
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			if v != 0 && v != 1 {
				return false
			}
		case OpShl, OpShr:
			// Masked shifts agree with the explicit mask.
			if op == OpShl && v != x<<uint(y&63) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBinMinIntEdges pins the wrap-around division cases.
func TestEvalBinMinIntEdges(t *testing.T) {
	min := int64(-1) << 63
	if got := EvalBin(OpDiv, min, -1); got != min {
		t.Errorf("MinInt / -1 = %d, want %d", got, min)
	}
	if got := EvalBin(OpRem, min, -1); got != 0 {
		t.Errorf("MinInt %% -1 = %d, want 0", got)
	}
}

func TestEstimateFrequenciesLoopWeighting(t *testing.T) {
	prog := &Program{}
	f := &Func{Name: "loop", Prog: prog}
	prog.Funcs = append(prog.Funcs, f)
	entry := f.NewBlock()
	head := f.NewBlock()
	body := f.NewBlock()
	exit := f.NewBlock()

	ej := f.NewValue(entry, OpJmp, 0)
	entry.Instrs = append(entry.Instrs, ej)
	AddEdge(entry, head)
	c := f.NewValue(head, OpParam, 0)
	hb := f.NewValue(head, OpBr, 0, c)
	head.Instrs = append(head.Instrs, c, hb)
	AddEdge(head, body)
	AddEdge(head, exit)
	bj := f.NewValue(body, OpJmp, 0)
	body.Instrs = append(body.Instrs, bj)
	AddEdge(body, head)
	r := f.NewValue(exit, OpRet, 0)
	exit.Instrs = append(exit.Instrs, r)

	head.Prob = 0.9
	EstimateFrequencies(f)
	if body.Freq <= entry.Freq {
		t.Errorf("loop body freq %.2f not above entry %.2f", body.Freq, entry.Freq)
	}
	if exit.Freq > head.Freq {
		t.Errorf("exit freq %.2f above header %.2f", exit.Freq, head.Freq)
	}
}

// buildAllocator constructs a single-block function: newarray(1000); ret 0.
func buildAllocator() *Program {
	prog := &Program{}
	f := &Func{Name: "alloc", Prog: prog}
	prog.Funcs = append(prog.Funcs, f)
	b := f.NewBlock()
	c := f.NewValue(b, OpConst, 1)
	c.AuxInt = 1000
	arr := f.NewValue(b, OpNewArray, 2, c)
	ret := f.NewValue(b, OpRet, 3)
	b.Instrs = append(b.Instrs, c, arr, ret)
	return prog
}

func TestInterpHeapBudget(t *testing.T) {
	in := NewInterp(buildAllocator(), 1000)
	in.HeapBudget = 100
	_, err := in.Call("alloc")
	if !errors.Is(err, ErrHeapBudget) {
		t.Fatalf("err = %v, want ErrHeapBudget", err)
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatal("ErrHeapBudget must match the base ErrBudget sentinel")
	}
	// Unset (the default), the allocation succeeds under clamp semantics.
	if _, err := NewInterp(buildAllocator(), 1000).Call("alloc"); err != nil {
		t.Fatalf("default interp rejected allocation: %v", err)
	}
	// ErrStepLimit keeps wrapping the base sentinel for old call sites.
	if !errors.Is(ErrStepLimit, ErrBudget) {
		t.Fatal("ErrStepLimit must match ErrBudget")
	}
}
