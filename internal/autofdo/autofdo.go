// Package autofdo implements sample-based feedback-directed optimization
// (Chen et al., CGO'16) on the MiniC toolchain, the paper's case study
// (§V.C): a binary built with debug information is profiled by sampling
// the program counter on a cycle interval, the samples are mapped back
// to source lines through the binary's line table, and the resulting
// source-level profile steers the next compilation — branch
// probabilities, block placement, spill weights, and inlining.
//
// The coupling under study is direct: samples landing on addresses with
// no line attribution are dropped, so a profiling binary built with a
// debug-friendlier configuration (O2-dy) yields a more complete profile
// and, downstream, a better-optimized final binary.
package autofdo

import (
	"fmt"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/vm"
)

// Profile is a source-level sample profile.
type Profile struct {
	// LineSamples maps source lines to sample counts (one compilation
	// unit, so lines are global, as in AutoFDO's per-file offsets).
	LineSamples map[int]int64
	// FuncSamples aggregates per function via the table's linkage
	// names.
	FuncSamples map[string]int64
	// Total counts all samples; Mapped those attributed to a line.
	Total, Mapped, Dropped int64
}

// MaxLine returns the hottest line's count, for normalization.
func (p *Profile) MaxLine() int64 {
	var m int64
	for _, c := range p.LineSamples {
		if c > m {
			m = c
		}
	}
	return m
}

// HotLines returns lines with at least frac of the hottest line's count.
func (p *Profile) HotLines(frac float64) map[int]bool {
	out := map[int]bool{}
	m := float64(p.MaxLine())
	for l, c := range p.LineSamples {
		if float64(c) >= frac*m {
			out[l] = true
		}
	}
	return out
}

// Collect runs the binary's entry function with PC sampling and maps the
// samples through its debug information.
func Collect(bin *vm.Binary, entry string, sampleEvery int64) (*Profile, error) {
	if bin.Debug == nil {
		return nil, fmt.Errorf("autofdo: profiling binary has no debug information")
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return nil, err
	}
	m := vm.New(bin)
	m.StepBudget = 1 << 33
	m.SampleEvery = sampleEvery
	if _, err := m.Call(entry); err != nil {
		return nil, err
	}
	p := &Profile{
		LineSamples: map[int]int64{},
		FuncSamples: map[string]int64{},
	}
	for _, pc := range m.Samples {
		p.Total++
		line := int(table.LineForAddr(uint32(pc)))
		fd := table.FuncForAddr(uint32(pc))
		if fd != nil && fd.LinkageName != "" {
			p.FuncSamples[fd.LinkageName]++
		}
		if line <= 0 {
			// Unattributed address: the sample is lost — the exact cost
			// of missing line-table rows that the case study measures.
			p.Dropped++
			continue
		}
		p.Mapped++
		p.LineSamples[line]++
	}
	return p, nil
}

// MappedFraction reports the profile completeness.
func (p *Profile) MappedFraction() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Mapped) / float64(p.Total)
}
