package autofdo_test

import (
	"reflect"
	"testing"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/specsuite"
	"debugtuner/internal/tuner"
	"debugtuner/internal/vm"
)

const sampleEvery = 997 // prime, so sampling does not alias loop periods

func profileOf(t *testing.T, bench string, cfg pipeline.Config) *autofdo.Profile {
	t.Helper()
	cfg.ForProfiling = true
	ir0, err := specsuite.LoadIR(bench)
	if err != nil {
		t.Fatal(err)
	}
	bin := pipeline.Build(ir0, cfg)
	p, err := autofdo.Collect(bin, "main", sampleEvery)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCollectMapsSamples: profiles exist, and most samples map to lines.
func TestCollectMapsSamples(t *testing.T) {
	p := profileOf(t, "505.mcf", pipeline.MustConfig(pipeline.Clang, "O2"))
	if p.Total < 100 {
		t.Fatalf("too few samples: %d", p.Total)
	}
	if p.MappedFraction() < 0.3 {
		t.Fatalf("mapped fraction %.2f too low", p.MappedFraction())
	}
	if len(p.FuncSamples) == 0 {
		t.Fatal("no function attribution despite -fdebug-info-for-profiling")
	}
}

// TestDebugFriendlyProfilingMapsMore: an O2-dy profiling build must map
// at least as many samples as plain O2 — the mechanism behind Figure 3.
func TestDebugFriendlyProfilingMapsMore(t *testing.T) {
	base := profileOf(t, "505.mcf", pipeline.MustConfig(pipeline.Clang, "O2"))
	// Disable the three top debug-harmful clang passes (the O2-d3
	// analog without running the full ranking here).
	dy := profileOf(t, "505.mcf", pipeline.MustConfig(pipeline.Clang, "O2",
		pipeline.Disable("schedule-insns2", "machine-sink", "jump-threading")))
	// A small tolerance absorbs sampling-alignment noise: the claim is
	// about the trend, not every address.
	if dy.MappedFraction()+0.02 < base.MappedFraction() {
		t.Errorf("O2-d3 profile maps notably less (%.4f) than O2 (%.4f)",
			dy.MappedFraction(), base.MappedFraction())
	}
}

// TestFDOPreservesSemantics: an FDO-optimized binary must produce the
// same output.
func TestFDOPreservesSemantics(t *testing.T) {
	prof := profileOf(t, "531.deepsjeng", pipeline.MustConfig(pipeline.Clang, "O2"))
	ir0, err := specsuite.LoadIR("531.deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	plain := pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2"))
	fdo := pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2", pipeline.WithFDO(prof)))
	run := func(bin *vm.Binary) []int64 {
		m := vm.New(bin)
		m.StepBudget = 1 << 33
		if _, err := m.Call("main"); err != nil {
			t.Fatal(err)
		}
		return m.Output()
	}
	if !reflect.DeepEqual(run(plain), run(fdo)) {
		t.Fatal("FDO build changed program output")
	}
}

// TestFDOHelpsOnAverage: across the suite, AutoFDO with O2 profiles must
// beat plain O2 on average (individual regressions are allowed — the
// paper observes them too).
func TestFDOHelpsOnAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	better, total := 0, 0
	var sumRatio float64
	for _, bench := range []string{"505.mcf", "531.deepsjeng", "557.xz", "500.perlbench"} {
		prof := profileOf(t, bench, pipeline.MustConfig(pipeline.Clang, "O2"))
		ir0, err := specsuite.LoadIR(bench)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := specsuite.RunBinary(bench,
			pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2")))
		if err != nil {
			t.Fatal(err)
		}
		fdo, err := specsuite.RunBinary(bench,
			pipeline.Build(ir0, pipeline.MustConfig(pipeline.Clang, "O2", pipeline.WithFDO(prof))))
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(plain.Cycles) / float64(fdo.Cycles)
		t.Logf("%s: plain=%d fdo=%d (%.3fx)", bench, plain.Cycles, fdo.Cycles, ratio)
		sumRatio += ratio
		total++
		if fdo.Cycles <= plain.Cycles {
			better++
		}
	}
	if sumRatio/float64(total) < 0.99 {
		t.Errorf("AutoFDO average ratio %.3f hurts overall", sumRatio/float64(total))
	}
}

// TestProfileSteersTuning glues AutoFDO to DebugTuner: profiles gathered
// from a debug-friendlier profiling binary must not map fewer samples,
// using the actual tuner ranking to pick the disabled passes.
func TestProfileSteersTuning(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	src, err := specsuite.Source("505.mcf")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := tuner.LoadProgram("mcf", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	la, err := tuner.AnalyzeLevel([]*tuner.Program{prog}, pipeline.Clang, "O2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := la.Configs([]int{3})[0]
	base := profileOf(t, "505.mcf", pipeline.MustConfig(pipeline.Clang, "O2"))
	dy := profileOf(t, "505.mcf", cfg)
	// Per-benchmark mapped fractions are noisy (samples are weighted by
	// time, so one hot artificial-line loop can dominate); the paper's
	// claim is the aggregate trend, checked end to end by the Figure 3
	// harness. Here we only guard against a collapse.
	if dy.MappedFraction() < base.MappedFraction()-0.10 {
		t.Errorf("ranked O2-d3 profile mapping collapsed (%.4f vs %.4f)",
			dy.MappedFraction(), base.MappedFraction())
	}
}
