package autofdo

import "debugtuner/internal/ir"

// ApplyToIR installs profile-derived block frequencies and branch
// probabilities on an optimized IR program, replacing the static
// guess-branch-probability estimates. The back end's block placement,
// spill weighting, and shrink-wrapping then work from measured behavior
// — as accurate as the profile's line coverage allows.
func ApplyToIR(prog *ir.Program, p *Profile) {
	if p == nil || len(p.LineSamples) == 0 {
		return
	}
	maxLine := float64(p.MaxLine())
	for _, f := range prog.Funcs {
		weight := func(b *ir.Block) float64 {
			var w int64
			for _, v := range b.Instrs {
				if v.Line > 0 {
					if c := p.LineSamples[v.Line]; c > w {
						w = c
					}
				}
			}
			return float64(w)
		}
		for _, b := range f.Blocks {
			w := weight(b)
			// Scale into the same range the static estimator uses so
			// downstream consumers need no special casing.
			b.Freq = 1 + 63*w/maxLine
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			w0, w1 := weight(b.Succs[0]), weight(b.Succs[1])
			b.Prob = (w0 + 1) / (w0 + w1 + 2)
		}
	}
}
