// Package pipeline defines the two compiler profiles' optimization
// levels and drives a complete build: MiniC source → optimized IR →
// binary with debug information.
//
// The gcc-like and clang-like profiles differ exactly where the paper's
// cross-compiler observations need them to:
//
//   - pass composition and ordering per level (gcc's Og is a weakened O1;
//     clang's levels are strictly incremental);
//   - debug salvage policy (the clang profile rewires variable bindings
//     across blocks on RAUW; the gcc profile drops them), which drives
//     the sharper metric decline of gcc at O2/O3 in Table IV;
//   - location-range policy (the gcc profile emits optimistic register
//     ranges, reproducing the static-method overestimation growth on gcc
//     in Table I).
//
// Every entry is a DebugTuner toggle; disabling a name removes all of
// its pipeline occurrences, like the paper's -fno-<pass> /
// OptPassGate machinery (§III.C).
package pipeline

import (
	"fmt"
	"sort"
	"strings"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/codegen"
	"debugtuner/internal/ir"
	"debugtuner/internal/irbuild"
	"debugtuner/internal/parser"
	"debugtuner/internal/passes"
	"debugtuner/internal/sema"
	"debugtuner/internal/source"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/vm"
)

// Profile identifies the compiler personality.
type Profile string

// The two compiler profiles.
const (
	GCC   Profile = "gcc"
	Clang Profile = "clang"
)

// Levels lists the optimization levels of a profile.
func Levels(p Profile) []string {
	if p == GCC {
		return []string{"Og", "O1", "O2", "O3"}
	}
	return []string{"O1", "O2", "O3"}
}

// entry is one pipeline element.
type entry struct {
	name string
	// internal entries are always-on cleanups (CFG canonicalization),
	// not user-visible toggles.
	internal bool
	// expensive entries belong to gcc's expensive-optimizations group:
	// disabling "expensive-opts" skips them all.
	expensive bool
	// backend entries are consumed by codegen.Options rather than run
	// as IR passes.
	backend bool
}

func mid(name string) entry      { return entry{name: name} }
func internal(name string) entry { return entry{name: name, internal: true} }
func expensive(name string) entry {
	return entry{name: name, expensive: true}
}
func backend(name string) entry { return entry{name: name, backend: true} }

// pipelines returns the ordered pass list for a profile and level.
func pipelines(p Profile, level string) []entry {
	clean := internal("simplifycfg")
	if p == GCC {
		switch level {
		case "Og":
			return []entry{
				internal("tree-ssa"), clean,
				mid("guess-branch-probability"),
				mid("ipa-pure-const"),
				mid("inline"), // weakened: called-once bodies only
				mid("tree-forwprop"), clean,
				mid("tree-fre"),
				mid("dce"), clean,
				mid("thread-jumps"), clean,
				mid("dce"),
				// Late clean-up DCE, not user-disableable: gcc's RTL
				// dead-code elimination still runs under -fno-tree-dce.
				internal("dce"),
				backend("tree-coalesce-vars"),
				backend("reorder-blocks"),
				backend("shrink-wrap"),
				backend("ira-share-spill-slots"),
			}
		case "O1":
			return []entry{
				mid("toplevel-reorder"),
				mid("ipa-pure-const"),
				mid("inline"),
				internal("tree-ssa"), clean,
				mid("tree-forwprop"), clean,
				mid("tree-fre"),
				mid("tree-dominator-opts"), clean,
				mid("tree-ch"),
				mid("tree-sink"),
				mid("tree-loop-optimize"), clean,
				mid("tree-forwprop"),
				mid("dse"),
				mid("dce"), clean,
				mid("thread-jumps"), clean,
				mid("guess-branch-probability"),
				mid("dce"),
				internal("dce"),
				backend("tree-ter"),
				backend("tree-coalesce-vars"),
				backend("reorder-blocks"),
				backend("shrink-wrap"),
				backend("ira-share-spill-slots"),
			}
		case "O2":
			return []entry{
				mid("toplevel-reorder"),
				mid("ipa-pure-const"),
				mid("inline"),
				mid("inline-small-functions"),
				mid("inline-functions"),
				internal("tree-ssa"), clean,
				mid("tree-forwprop"), clean,
				mid("tree-fre"),
				mid("tree-dominator-opts"), clean,
				mid("tree-ch"),
				expensive("gvn"),
				mid("tree-sink"),
				mid("tree-loop-optimize"), clean,
				expensive("tree-forwprop"),
				mid("if-conversion"), clean,
				mid("dse"),
				mid("dce"), clean,
				mid("thread-jumps"), clean,
				expensive("tree-fre"),
				mid("dce"),
				mid("guess-branch-probability"),
				internal("dce"),
				backend("tree-ter"),
				backend("tree-coalesce-vars"),
				backend("schedule-insns2"),
				backend("reorder-blocks"),
				backend("crossjumping"),
				backend("shrink-wrap"),
				backend("ira-share-spill-slots"),
			}
		case "O3":
			return []entry{
				mid("toplevel-reorder"),
				mid("ipa-pure-const"),
				mid("inline"),
				mid("inline-small-functions"),
				mid("inline-functions"),
				internal("tree-ssa"), clean,
				mid("tree-forwprop"), clean,
				mid("tree-fre"),
				mid("tree-dominator-opts"), clean,
				mid("tree-ch"),
				expensive("gvn"),
				mid("tree-sink"),
				mid("tree-loop-optimize"), clean,
				mid("loop-unroll"), clean,
				mid("tree-slp-vectorize"),
				expensive("tree-forwprop"),
				mid("if-conversion"), clean,
				mid("dse"),
				mid("dce"), clean,
				mid("thread-jumps"), clean,
				expensive("tree-fre"),
				mid("dce"),
				mid("guess-branch-probability"),
				internal("dce"),
				backend("tree-ter"),
				backend("tree-coalesce-vars"),
				backend("schedule-insns2"),
				backend("reorder-blocks"),
				backend("crossjumping"),
				backend("shrink-wrap"),
				backend("ira-share-spill-slots"),
			}
		}
		return nil
	}
	// clang: levels are strictly incremental.
	base := []entry{
		mid("ipa-pure-const"),
		internal("sroa"), clean,
		mid("early-cse"),
		mid("inline"),
		internal("sroa"), clean,
		mid("instcombine"), clean,
		mid("sccp"),
		mid("loop-rotate"),
		mid("licm"),
		mid("loop-strength-reduce"),
		mid("instcombine"), clean,
		mid("dce"), clean,
		mid("guess-branch-probability"),
		internal("dce"),
		backend("machine-sink"),
		backend("machine-cfg-opt"),
		backend("block-placement"),
	}
	o2extra := []entry{
		mid("gvn"),
		mid("jump-threading"), clean,
		mid("dse"),
		mid("if-conversion"), clean,
		mid("loop-unroll"), clean,
		mid("tree-slp-vectorize"),
		mid("instcombine"),
		mid("dce"), clean,
		backend("schedule-insns2"),
	}
	switch level {
	case "O1":
		return base
	case "O2", "O3":
		out := append([]entry{}, base[:len(base)-3]...) // mid-end prefix
		out = append(out, o2extra...)
		out = append(out,
			mid("guess-branch-probability"),
			internal("dce"),
			backend("machine-sink"),
			backend("schedule-insns2"),
			backend("machine-cfg-opt"),
			backend("block-placement"),
		)
		return out
	}
	return nil
}

// Config is one concrete build configuration.
type Config struct {
	Profile Profile
	Level   string // O0, Og (gcc only), O1, O2, O3
	// Disabled lists pass toggles to skip, the Ox-dy mechanism.
	Disabled map[string]bool
	// ForProfiling mirrors -fdebug-info-for-profiling.
	ForProfiling bool
	// FDO, when set, enables AutoFDO: the sample profile steers the
	// inliner and replaces static branch probabilities before code
	// generation.
	FDO *autofdo.Profile
	// SalvageOverride forces the debug salvage policy independent of
	// the profile, for ablation studies of the gcc/clang divergence.
	SalvageOverride *bool
	// OptimisticOverride forces the location-range policy likewise.
	OptimisticOverride *bool
}

// Name renders "gcc-O2" or "clang-O1-d3"-style labels.
func (c Config) Name() string {
	s := fmt.Sprintf("%s-%s", c.Profile, c.Level)
	if len(c.Disabled) > 0 {
		s += fmt.Sprintf("-d%d", len(c.Disabled))
	}
	return s
}

// Fingerprint returns a content-addressed cache key covering everything
// that influences the build: profile, level, the sorted disabled set,
// and the flag/override fields. Unlike Name (which collapses every
// same-size disabled set to "-dN"), two configs share a fingerprint only
// if they produce identical binaries from identical IR. ok is false when
// the config carries an FDO profile, whose sample data has no stable
// identity — such builds must not be cached.
func (c Config) Fingerprint() (key string, ok bool) {
	if c.FDO != nil {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString(string(c.Profile))
	sb.WriteByte('/')
	sb.WriteString(c.Level)
	if len(c.Disabled) > 0 {
		names := make([]string, 0, len(c.Disabled))
		for n, off := range c.Disabled {
			if off {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			sb.WriteString("/-")
			sb.WriteString(n)
		}
	}
	if c.ForProfiling {
		sb.WriteString("/prof")
	}
	if c.SalvageOverride != nil {
		fmt.Fprintf(&sb, "/salvage=%t", *c.SalvageOverride)
	}
	if c.OptimisticOverride != nil {
		fmt.Fprintf(&sb, "/optimistic=%t", *c.OptimisticOverride)
	}
	return sb.String(), true
}

// EnabledPasses returns the distinct user-visible toggle names of a
// profile/level pipeline, in first-occurrence order, including gcc's
// group toggle.
func EnabledPasses(p Profile, level string) []string {
	var names []string
	seen := map[string]bool{}
	hasExpensive := false
	for _, e := range pipelines(p, level) {
		if e.internal || seen[e.name] {
			if e.expensive {
				hasExpensive = true
			}
			continue
		}
		if e.expensive {
			hasExpensive = true
		}
		seen[e.name] = true
		names = append(names, e.name)
	}
	if hasExpensive && p == GCC {
		names = append(names, "expensive-opts")
	}
	return names
}

// Frontend parses and checks a source file, returning the semantic info.
func Frontend(name string, src []byte) (*sema.Info, error) {
	prog, err := parser.Parse(source.NewFile(name, src))
	if err != nil {
		return nil, err
	}
	return sema.Check(prog)
}

// BuildIR lowers checked source to the O0 IR.
func BuildIR(info *sema.Info) (*ir.Program, error) {
	return irbuild.Build(info)
}

// Build compiles O0 IR under the configuration. The input program is not
// modified: optimization runs on a private clone.
func Build(ir0 *ir.Program, cfg Config) *vm.Binary {
	var span *telemetry.Span
	if telemetry.Enabled() {
		span = telemetry.Begin("pipeline", "build/"+cfg.Name())
	}
	prog, opts := OptimizeIR(ir0, cfg)
	bin := codegen.Compile(prog, opts)
	span.End()
	return bin
}

// OptimizeIR runs the configuration's middle-end pipeline on a private
// clone and returns the optimized IR together with the back-end options
// the configuration implies. Exposed for tools that inspect IR
// (minicc -emit-ir).
func OptimizeIR(ir0 *ir.Program, cfg Config) (*ir.Program, codegen.Options) {
	return optimizeIR(ir0, cfg, nil)
}

// optimizeIR is OptimizeIR with an optional observation hook, called
// after every executed middle-end pass with the ledger-style label
// ("cleanup/<name>" for always-on runs) and the program in its
// post-pass state. The verify-each mode hangs the static analyzer here;
// a nil hook is the ordinary build path, unchanged.
func optimizeIR(ir0 *ir.Program, cfg Config, hook func(label string, prog *ir.Program)) (*ir.Program, codegen.Options) {
	prog := ir0.Clone()
	ctx := &passes.Context{
		Prog:    prog,
		Salvage: cfg.Profile == Clang,
	}
	if cfg.SalvageOverride != nil {
		ctx.Salvage = *cfg.SalvageOverride
	}
	if cfg.FDO != nil {
		ctx.SampleLines = cfg.FDO.LineSamples
		ctx.SampleMax = cfg.FDO.MaxLine()
	}
	opts := codegen.Options{
		OptimisticRanges: cfg.Profile == GCC,
		ForProfiling:     cfg.ForProfiling,
	}
	if cfg.OptimisticOverride != nil {
		opts.OptimisticRanges = *cfg.OptimisticOverride
	}
	if cfg.Level != "O0" {
		configureInliner(ctx, cfg)
		disabled := func(name string) bool { return cfg.Disabled[name] }
		expensiveOff := disabled("expensive-opts")
		for _, e := range pipelines(cfg.Profile, cfg.Level) {
			if !e.internal && disabled(e.name) {
				continue
			}
			if e.expensive && expensiveOff {
				continue
			}
			if e.backend {
				enableBackend(&opts, e.name)
				continue
			}
			p := passes.Lookup(e.name)
			if p == nil {
				panic(fmt.Sprintf("pipeline: unknown pass %q", e.name))
			}
			label := e.name
			if e.internal && telemetry.Enabled() {
				// Ledger attribution for always-on cleanup runs is kept
				// apart from the user-visible toggle of the same name.
				label = "cleanup/" + e.name
				ctx.RunLabel = label
			}
			ps := telemetry.Begin("pass", label)
			p.Run(ctx)
			ps.End()
			ctx.RunLabel = ""
			if hook != nil {
				hl := e.name
				if e.internal {
					hl = "cleanup/" + e.name
				}
				hook(hl, prog)
			}
		}
	}
	if cfg.FDO != nil {
		autofdo.ApplyToIR(prog, cfg.FDO)
	}
	return prog, opts
}

// configureInliner sets the Context inlining knobs for the level,
// honoring the fine-grained gcc toggles.
func configureInliner(ctx *passes.Context, cfg Config) {
	d := cfg.Disabled
	if cfg.Profile == Clang {
		switch cfg.Level {
		case "O1":
			ctx.InlineBudget = 40
		case "O2":
			ctx.InlineBudget = 80
			ctx.UnrollFactor = 2
		case "O3":
			ctx.InlineBudget = 140
			ctx.UnrollFactor = 4
		}
		ctx.UnitAtATime = true // clang is always unit-at-a-time
		return
	}
	switch cfg.Level {
	case "Og":
		ctx.InlineOnce = true
	case "O1":
		ctx.InlineOnce = !d["inline-fncs-called-once"]
	case "O2":
		ctx.InlineOnce = !d["inline-fncs-called-once"]
		ctx.InlineSmall = !d["inline-small-functions"]
		ctx.InlineGrowth = !d["inline-functions"]
		ctx.InlineBudget = 80
		ctx.UnrollFactor = 0
	case "O3":
		ctx.InlineOnce = !d["inline-fncs-called-once"]
		ctx.InlineSmall = !d["inline-small-functions"]
		ctx.InlineGrowth = !d["inline-functions"]
		ctx.InlineBudget = 140
		ctx.UnrollFactor = 2
	}
}

func enableBackend(opts *codegen.Options, name string) {
	// note records which toggle enabled a backend stage so telemetry
	// attributes the stage's damage to the profile's name for it
	// ("reorder-blocks" vs "block-placement"). Only allocated when a
	// sink is installed: the disabled path must stay allocation-free.
	note := func(stage string) {
		if !telemetry.Enabled() {
			return
		}
		if opts.PassNames == nil {
			opts.PassNames = map[string]string{}
		}
		opts.PassNames[stage] = name
	}
	switch name {
	case "tree-ter":
		opts.TER = true
	case "tree-coalesce-vars":
		opts.CoalesceVars = true
	case "schedule-insns2":
		opts.Schedule = true
		note("schedule")
	case "reorder-blocks", "block-placement":
		opts.Layout = true
		note("layout")
	case "crossjumping", "machine-cfg-opt":
		opts.CrossJump = true
		note("crossjump")
	case "shrink-wrap":
		opts.ShrinkWrap = true
		note("shrink-wrap")
	case "ira-share-spill-slots":
		opts.ShareSpillSlots = true
	case "machine-sink":
		opts.MachineSink = true
		note("machine-sink")
	default:
		panic(fmt.Sprintf("pipeline: unknown backend toggle %q", name))
	}
}

// DisplayName maps a registry toggle name to the name the paper's tables
// use for the profile.
func DisplayName(p Profile, name string) string {
	if p == Clang {
		switch name {
		case "inline":
			return "Inliner"
		case "sroa":
			return "SROA"
		case "simplifycfg":
			return "SimplifyCFG"
		case "instcombine":
			return "InstCombine"
		case "early-cse":
			return "EarlyCSE"
		case "gvn":
			return "GVN"
		case "jump-threading":
			return "JumpThreading"
		case "loop-rotate":
			return "LoopRotate"
		case "licm":
			return "LICM"
		case "loop-strength-reduce":
			return "LoopStrengthReduce"
		case "loop-unroll":
			return "LoopUnroll"
		case "dse":
			return "DSE"
		case "sccp":
			return "SCCP"
		case "machine-sink":
			return "Machine code sinking"
		case "machine-cfg-opt":
			return "Control Flow Optimizer"
		case "block-placement":
			return "Branch Prob BB Placement"
		case "tree-slp-vectorize":
			return "SLPVectorizer"
		}
	}
	return name
}

// IsBackend reports whether the toggle is annotated as a back-end pass
// ('*' in the paper's tables).
func IsBackend(name string) bool {
	if p := passes.Lookup(name); p != nil {
		return p.Backend
	}
	switch name {
	case "schedule-insns2", "reorder-blocks", "block-placement",
		"crossjumping", "machine-cfg-opt", "machine-sink", "shrink-wrap",
		"ira-share-spill-slots", "tree-ter", "tree-coalesce-vars":
		return true
	}
	return false
}

// CompileSource is the one-call convenience: source to binary.
func CompileSource(name string, src []byte, cfg Config) (*vm.Binary, *sema.Info, error) {
	info, err := Frontend(name, src)
	if err != nil {
		return nil, nil, err
	}
	ir0, err := BuildIR(info)
	if err != nil {
		return nil, nil, err
	}
	return Build(ir0, cfg), info, nil
}
