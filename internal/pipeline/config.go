package pipeline

import (
	"fmt"
	"sort"

	"debugtuner/internal/autofdo"
)

// Option mutates a Config under construction. Options are applied in
// order by NewConfig after the profile/level are set and before
// validation, so every option's effect is checked.
type Option func(*Config)

// Disable marks pass toggles to skip — the Ox-dy mechanism. Repeated
// calls accumulate. NewConfig rejects names that are not enabled at the
// configuration's profile and level.
func Disable(names ...string) Option {
	return func(c *Config) {
		if c.Disabled == nil {
			c.Disabled = make(map[string]bool, len(names))
		}
		for _, n := range names {
			c.Disabled[n] = true
		}
	}
}

// DisableSet copies an existing disabled set (e.g. a tuner candidate's
// pass subset) into the configuration. False entries are dropped so the
// resulting Config fingerprints identically however the set was built.
func DisableSet(set map[string]bool) Option {
	return func(c *Config) {
		for n, off := range set {
			if !off {
				continue
			}
			if c.Disabled == nil {
				c.Disabled = map[string]bool{}
			}
			c.Disabled[n] = true
		}
	}
}

// WithFDO attaches an AutoFDO sample profile.
func WithFDO(p *autofdo.Profile) Option {
	return func(c *Config) { c.FDO = p }
}

// WithProfiling sets -fdebug-info-for-profiling behavior.
func WithProfiling() Option {
	return func(c *Config) { c.ForProfiling = true }
}

// WithSalvage overrides the profile's debug salvage policy.
func WithSalvage(on bool) Option {
	return func(c *Config) { v := on; c.SalvageOverride = &v }
}

// WithOptimistic overrides the profile's location-range policy.
func WithOptimistic(on bool) Option {
	return func(c *Config) { v := on; c.OptimisticOverride = &v }
}

// NewConfig is the validating constructor for Config and the only
// supported way to build one outside this package. It rejects unknown
// profiles, levels the profile does not define, and disabled-pass names
// that are not toggles of the profile/level pipeline — the mistakes a
// raw struct literal lets through silently (a misspelled pass name
// "disables" nothing and corrupts every fingerprint-keyed comparison
// against the config it aliases).
func NewConfig(p Profile, level string, opts ...Option) (Config, error) {
	cfg := Config{Profile: p, Level: level}
	switch p {
	case GCC, Clang:
	default:
		return Config{}, fmt.Errorf("pipeline: unknown profile %q", p)
	}
	if !validLevel(p, level) {
		return Config{}, fmt.Errorf("pipeline: profile %s has no level %q (have O0, %v)",
			p, level, Levels(p))
	}
	for _, o := range opts {
		o(&cfg)
	}
	if len(cfg.Disabled) > 0 {
		valid := map[string]bool{}
		for _, n := range EnabledPasses(p, level) {
			valid[n] = true
		}
		// The called-once inliner is a fine-grained gcc knob consulted
		// by configureInliner but absent from the pipeline tables.
		if p == GCC && level != "O0" && level != "Og" {
			valid["inline-fncs-called-once"] = true
		}
		var bad []string
		for n := range cfg.Disabled {
			if !valid[n] {
				bad = append(bad, n)
			}
		}
		if len(bad) > 0 {
			sort.Strings(bad)
			return Config{}, fmt.Errorf("pipeline: %s-%s has no pass toggle %v",
				p, level, bad)
		}
	}
	return cfg, nil
}

// MustConfig is NewConfig that panics on error, for static
// configurations whose validity is part of the program text.
func MustConfig(p Profile, level string, opts ...Option) Config {
	cfg, err := NewConfig(p, level, opts...)
	if err != nil {
		panic(err)
	}
	return cfg
}

func validLevel(p Profile, level string) bool {
	if level == "O0" {
		return true
	}
	for _, l := range Levels(p) {
		if l == level {
			return true
		}
	}
	return false
}
