package pipeline

import (
	"reflect"
	"testing"
)

// Regression tests for miscompiles found during development; each traces
// to a specific back-end defect.

// TestRegressSpilledMoveStore: a spilled-to-spilled move must keep its
// spill store even though the scratch-register move itself is an elidable
// identity (found via gcc-O1 with guess-branch-probability disabled,
// which raised register pressure past the spill threshold).
func TestRegressSpilledMoveStore(t *testing.T) {
	src := corpus[0].src
	want := wantOutput(t, src)
	cfg := Config{Profile: GCC, Level: "O1",
		Disabled: map[string]bool{"guess-branch-probability": true}}
	bin, _, err := CompileSource("t.mc", []byte(src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := runBinary(t, bin); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// TestRegressMachineSinkUseTracking: machine sinking used nil both as
// "no use block yet" and "multiple use blocks", so a value used in three
// blocks could be sunk into the third; and it ignored anti-dependencies
// on phi moves. Reproduced by clang-O2 with instcombine disabled.
func TestRegressMachineSinkUseTracking(t *testing.T) {
	src := corpus[0].src
	want := wantOutput(t, src)
	for _, level := range []string{"O2", "O3"} {
		cfg := Config{Profile: Clang, Level: level,
			Disabled: map[string]bool{"instcombine": true}}
		bin, _, err := CompileSource("t.mc", []byte(src), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := runBinary(t, bin); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: got %v want %v", level, got, want)
		}
	}
}
