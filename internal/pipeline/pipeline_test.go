package pipeline

import (
	"fmt"
	"reflect"
	"testing"

	"debugtuner/internal/debuginfo"
	"debugtuner/internal/ir"
	"debugtuner/internal/vm"
)

// corpus exercises every IR shape the pipelines transform.
var corpus = []struct {
	name string
	src  string
}{
	{"mixed", `
var table: int[] = new int[32];
var checksum: int = 0;

func hash(x: int): int {
	x = x ^ (x >> 7);
	x = x * 31;
	return x ^ (x >> 11);
}
func fill(n: int) {
	for (var i: int = 0; i < n; i = i + 1) {
		table[i] = hash(i * 3 + 1);
	}
}
func reduce(n: int): int {
	var acc: int = 0;
	for (var i: int = 0; i < n; i = i + 1) {
		if (table[i] % 2 == 0) {
			acc = acc + table[i];
		} else {
			acc = acc - table[i] / 3;
		}
	}
	return acc;
}
func main() {
	fill(32);
	checksum = reduce(32);
	print(checksum);
	var j: int = 0;
	while (j < 4) {
		print(table[j * 7]);
		j = j + 1;
	}
}`},
	{"recursive", `
func ack(m: int, n: int): int {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
func main() {
	print(ack(2, 3));
	print(ack(1, 5));
}`},
	{"spillheavy", `
func mixer(a: int, b: int): int {
	var v0: int = a + b;
	var v1: int = a - b;
	var v2: int = a * 3;
	var v3: int = b * 5;
	var v4: int = v0 ^ v1;
	var v5: int = v2 ^ v3;
	var v6: int = v0 + v2;
	var v7: int = v1 + v3;
	var v8: int = v4 * v5;
	var v9: int = v6 * v7;
	var va: int = v8 - v9;
	var vb: int = v8 + v9;
	var vc: int = va ^ vb;
	var vd: int = va * 7 + vb * 11;
	return v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + va + vb + vc + vd;
}
func main() {
	print(mixer(1234, 567));
	print(mixer(0 - 9, 88));
}`},
	{"breaks", `
func scan(a: int[], n: int): int {
	var last: int = 0 - 1;
	for (var i: int = 0; i < n; i = i + 1) {
		if (a[i] == 0) { break; }
		if (a[i] < 0) { continue; }
		last = i;
	}
	return last;
}
func main() {
	var a: int[] = new int[6];
	a[0] = 3; a[1] = 0 - 2; a[2] = 7; a[3] = 5; a[4] = 0; a[5] = 9;
	print(scan(a, 6));
}`},
	{"shortcalls", `
var n: int = 0;
func tick(v: int): int { n = n + 1; return v; }
func main() {
	if (tick(3) > 2 && tick(0) == 0 || tick(7) < 5) { print(1); } else { print(2); }
	print(n);
}`},
	{"unrollable", `
func main() {
	var a: int[] = new int[8];
	var b: int[] = new int[8];
	var c: int[] = new int[8];
	for (var i: int = 0; i < 8; i = i + 1) {
		b[i] = i * i; c[i] = 7 - i;
	}
	for (var i: int = 0; i < 8; i = i + 1) {
		a[i] = b[i] + c[i];
	}
	var s: int = 0;
	for (var i: int = 0; i < 8; i = i + 1) { s = s + a[i] * (i + 1); }
	print(s);
}`},
}

// allConfigs enumerates every profile/level.
func allConfigs() []Config {
	var out []Config
	for _, p := range []Profile{GCC, Clang} {
		out = append(out, Config{Profile: p, Level: "O0"})
		for _, l := range Levels(p) {
			out = append(out, Config{Profile: p, Level: l})
		}
	}
	return out
}

func wantOutput(t *testing.T, src string) []int64 {
	t.Helper()
	info, err := Frontend("t.mc", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	ir0, err := BuildIR(info)
	if err != nil {
		t.Fatal(err)
	}
	in := ir.NewInterp(ir0, 1<<26)
	if _, err := in.Call("main"); err != nil {
		t.Fatal(err)
	}
	return in.Output()
}

func runBinary(t *testing.T, bin *vm.Binary) []int64 {
	t.Helper()
	m := vm.New(bin)
	m.StepBudget = 1 << 26
	if _, err := m.Call("main"); err != nil {
		t.Fatalf("vm: %v", err)
	}
	return m.Output()
}

// TestAllLevelsPreserveSemantics is the end-to-end differential test:
// the VM output of every profile/level build must match the reference
// interpreter on unoptimized IR.
func TestAllLevelsPreserveSemantics(t *testing.T) {
	for _, tp := range corpus {
		want := wantOutput(t, tp.src)
		for _, cfg := range allConfigs() {
			t.Run(tp.name+"/"+cfg.Name(), func(t *testing.T) {
				bin, _, err := CompileSource("t.mc", []byte(tp.src), cfg)
				if err != nil {
					t.Fatal(err)
				}
				got := runBinary(t, bin)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("output = %v, want %v", got, want)
				}
			})
		}
	}
}

// TestSinglePassDisableSemantics disables each toggle alone at every
// level and re-checks equivalence — DebugTuner's build matrix must be
// semantics-preserving by construction.
func TestSinglePassDisableSemantics(t *testing.T) {
	for _, tp := range corpus[:3] {
		want := wantOutput(t, tp.src)
		for _, p := range []Profile{GCC, Clang} {
			for _, level := range Levels(p) {
				for _, pass := range EnabledPasses(p, level) {
					cfg := Config{
						Profile: p, Level: level,
						Disabled: map[string]bool{pass: true},
					}
					t.Run(fmt.Sprintf("%s/%s/no-%s", tp.name, cfg.Name(), pass), func(t *testing.T) {
						bin, _, err := CompileSource("t.mc", []byte(tp.src), cfg)
						if err != nil {
							t.Fatal(err)
						}
						got := runBinary(t, bin)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("output = %v, want %v", got, want)
						}
					})
				}
			}
		}
	}
}

// TestOptimizationImprovesPerformance checks the cost model rewards the
// optimizer: cycles at O2 must beat O0 substantially on every program.
func TestOptimizationImprovesPerformance(t *testing.T) {
	for _, tp := range corpus {
		cycles := map[string]int64{}
		for _, cfg := range []Config{
			{Profile: GCC, Level: "O0"},
			{Profile: GCC, Level: "O2"},
			{Profile: Clang, Level: "O0"},
			{Profile: Clang, Level: "O2"},
		} {
			bin, _, err := CompileSource("t.mc", []byte(tp.src), cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := vm.New(bin)
			m.StepBudget = 1 << 26
			if _, err := m.Call("main"); err != nil {
				t.Fatal(err)
			}
			cycles[cfg.Name()] = m.Cycles
		}
		for _, p := range []string{"gcc", "clang"} {
			o0, o2 := cycles[p+"-O0"], cycles[p+"-O2"]
			if o2 >= o0 {
				t.Errorf("%s/%s: O2 (%d cycles) not faster than O0 (%d)", tp.name, p, o2, o0)
			}
		}
	}
}

// TestDebugInfoWellFormed validates the emitted debug sections: ranges
// within function bounds, sorted line rows, decodable round trip.
func TestDebugInfoWellFormed(t *testing.T) {
	for _, tp := range corpus {
		for _, cfg := range allConfigs() {
			bin, _, err := CompileSource("t.mc", []byte(tp.src), cfg)
			if err != nil {
				t.Fatal(err)
			}
			dt, err := debuginfo.Decode(bin.Debug)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", tp.name, cfg.Name(), err)
			}
			for i := 1; i < len(dt.Lines); i++ {
				if dt.Lines[i].Addr <= dt.Lines[i-1].Addr {
					t.Fatalf("%s/%s: line rows out of order", tp.name, cfg.Name())
				}
			}
			for _, v := range dt.Vars {
				for _, e := range v.Entries {
					if e.End < e.Start {
						t.Fatalf("%s/%s: var %s inverted range [%d,%d)",
							tp.name, cfg.Name(), v.Name, e.Start, e.End)
					}
					if v.FuncIdx >= 0 {
						f := dt.Funcs[v.FuncIdx]
						if e.Start < f.Start || e.End > f.End {
							t.Fatalf("%s/%s: var %s range [%d,%d) outside func [%d,%d)",
								tp.name, cfg.Name(), v.Name, e.Start, e.End, f.Start, f.End)
						}
					}
				}
			}
			// Round trip.
			dt2, err := debuginfo.Decode(dt.Encode())
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if len(dt2.Vars) != len(dt.Vars) || len(dt2.Lines) != len(dt.Lines) {
				t.Fatalf("round trip changed table sizes")
			}
		}
	}
}

// TestTextHashStability: identical configs produce identical hashes;
// debug-only differences (ForProfiling) leave .text identical.
func TestTextHashStability(t *testing.T) {
	src := corpus[0].src
	cfg := Config{Profile: GCC, Level: "O2"}
	b1, _, _ := CompileSource("t.mc", []byte(src), cfg)
	b2, _, _ := CompileSource("t.mc", []byte(src), cfg)
	if b1.TextHash() != b2.TextHash() {
		t.Fatal("non-deterministic build")
	}
	cfg.ForProfiling = true
	b3, _, _ := CompileSource("t.mc", []byte(src), cfg)
	if b1.TextHash() != b3.TextHash() {
		t.Fatal("-fdebug-info-for-profiling changed .text")
	}
}
