package pipeline

import (
	"debugtuner/internal/codegen"
	"debugtuner/internal/ir"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/vm"
)

// VerifyStep is one verified pipeline step: a middle-end pass run (with
// its ledger-style label) or a back-end stage. Losses are deltas against
// the previous step's survival, so each step is charged only for what it
// destroyed; a negative loss means the step re-materialized baseline
// metadata (e.g. unrolling duplicating attributed code).
type VerifyStep struct {
	Label   string
	Backend bool
	// VerifyErr is the ir.Verify structural failure after the pass, "".
	VerifyErr string
	// NewViolations are analyzer findings absent before this step.
	NewViolations []staticdbg.Violation
	LinesLost     int
	VarsLost      int
	// InstrDelta is the step's code growth (IR instructions for
	// middle-end steps, machine instructions for back-end ones),
	// dbg.values excluded — the churn term of the damage score.
	InstrDelta int
}

// VerifyReport is the outcome of one verified build.
type VerifyReport struct {
	// Total is the baseline size (the 100% mark).
	Total staticdbg.Survival
	// InitialViolations are analyzer findings on the input module —
	// front-end debt, not attributable to any pass.
	InitialViolations []staticdbg.Violation
	Steps             []VerifyStep
	// FinalIR is survival after the last middle-end pass; Final is
	// survival in the emitted debug section.
	FinalIR staticdbg.Survival
	Final   staticdbg.Survival
	Bin     *vm.Binary
}

// Violations returns every violation the build introduced, in step
// order (initial front-end findings first).
func (r *VerifyReport) Violations() []staticdbg.Violation {
	out := append([]staticdbg.Violation{}, r.InitialViolations...)
	for _, st := range r.Steps {
		out = append(out, st.NewViolations...)
	}
	return out
}

// VerifyErrs returns the structural ir.Verify failures with their step
// labels, in step order.
func (r *VerifyReport) VerifyErrs() []string {
	var out []string
	for _, st := range r.Steps {
		if st.VerifyErr != "" {
			out = append(out, st.Label+": "+st.VerifyErr)
		}
	}
	return out
}

// BuildVerified compiles like Build but runs ir.Verify plus the
// staticdbg analyzer after every middle-end pass and back-end stage,
// attributing each new violation and each metadata loss to the step
// that introduced it. With debugify set the build runs on a debugified
// clone (synthetic 100% baseline, see staticdbg.Inject); otherwise the
// module's real front-end metadata is the baseline.
//
// Back-end stages cannot be observed mid-flight (codegen consumes its
// input), so they are attributed by prefix compilation: the final IR is
// compiled once per enabled backend toggle, each compile enabling one
// more toggle in pipeline order, and successive debug sections are
// diffed. The always-on remainder (lowering, register allocation,
// emission) is the "codegen" step. The extra compiles are the price of
// attribution and scale with the handful of backend toggles, not with
// program size; Build's output is bit-identical to the last prefix.
//
// Verify-each is deliberately a separate entry point rather than a
// Config field: Config fingerprints cache binaries, and a verification
// mode must never alias or split cache entries.
func BuildVerified(ir0 *ir.Program, cfg Config, debugify bool) *VerifyReport {
	return BuildVerifiedTamper(ir0, cfg, debugify, nil)
}

// BuildVerifiedTamper is BuildVerified with a tamper hook invoked after
// each middle-end pass runs and before the analyzer measures that step,
// receiving the pass label and the live module. It exists for the hunt
// campaign's planted-bug drills: a tamper that corrupts metadata after
// pass P is caught by the very next analyzer run and attributed to P,
// exactly as a real bug in P would be — an end-to-end self-test of the
// attribution machinery. A nil tamper is BuildVerified.
func BuildVerifiedTamper(ir0 *ir.Program, cfg Config, debugify bool,
	tamper func(label string, prog *ir.Program)) *VerifyReport {
	work := ir0
	var bl *staticdbg.Baseline
	if debugify {
		work, bl = staticdbg.Inject(ir0)
	} else {
		bl = staticdbg.Capture(ir0)
	}
	rep := &VerifyReport{Total: bl.Total()}
	rep.InitialViolations = staticdbg.CheckModule(work)
	prevSet := violSet(rep.InitialViolations)
	prevSurv := bl.MeasureIR(work)
	prevInstrs := countInstrs(work)

	hook := func(label string, prog *ir.Program) {
		if tamper != nil {
			tamper(label, prog)
		}
		st := VerifyStep{Label: label}
		if err := ir.VerifyProgram(prog); err != nil {
			st.VerifyErr = err.Error()
		}
		vs := staticdbg.CheckModule(prog)
		for _, v := range vs {
			if !prevSet[v.String()] {
				st.NewViolations = append(st.NewViolations, v)
			}
		}
		prevSet = violSet(vs)
		surv := bl.MeasureIR(prog)
		st.LinesLost = prevSurv.Lines - surv.Lines
		st.VarsLost = prevSurv.Vars - surv.Vars
		prevSurv = surv
		n := countInstrs(prog)
		st.InstrDelta = n - prevInstrs
		prevInstrs = n
		rep.Steps = append(rep.Steps, st)
	}
	prog, _ := optimizeIR(work, cfg, hook)
	rep.FinalIR = prevSurv

	// Back-end attribution by prefix compilation. Binary-level findings
	// start from an empty set: the "codegen" base step owns everything
	// the always-on stages introduce.
	toggles := backendToggles(cfg)
	mkOpts := func(n int) codegen.Options {
		o := codegen.Options{
			OptimisticRanges: cfg.Profile == GCC,
			ForProfiling:     cfg.ForProfiling,
		}
		if cfg.OptimisticOverride != nil {
			o.OptimisticRanges = *cfg.OptimisticOverride
		}
		for _, name := range toggles[:n] {
			enableBackend(&o, name)
		}
		return o
	}
	binPrevSet := map[string]bool{}
	binPrevSurv := prevSurv
	binPrevCode := 0
	bin := codegen.Compile(prog.Clone(), mkOpts(0))
	step := backendStep("codegen", bl, bin, &binPrevSet, &binPrevSurv, &binPrevCode)
	step.InstrDelta = 0 // lowering expansion is not churn
	rep.Steps = append(rep.Steps, step)
	for i := range toggles {
		bin = codegen.Compile(prog.Clone(), mkOpts(i+1))
		rep.Steps = append(rep.Steps,
			backendStep(toggles[i], bl, bin, &binPrevSet, &binPrevSurv, &binPrevCode))
	}
	rep.Final = bl.MeasureBinary(bin)
	rep.Bin = bin
	return rep
}

// backendStep diffs one prefix compile against the previous one.
func backendStep(label string, bl *staticdbg.Baseline, bin *vm.Binary,
	prevSet *map[string]bool, prevSurv *staticdbg.Survival, prevCode *int) VerifyStep {
	st := VerifyStep{Label: label, Backend: true}
	vs := staticdbg.CheckBinary(bin)
	for _, v := range vs {
		if !(*prevSet)[v.String()] {
			st.NewViolations = append(st.NewViolations, v)
		}
	}
	*prevSet = violSet(vs)
	surv := bl.MeasureBinary(bin)
	st.LinesLost = prevSurv.Lines - surv.Lines
	st.VarsLost = prevSurv.Vars - surv.Vars
	*prevSurv = surv
	st.InstrDelta = len(bin.Code) - *prevCode
	*prevCode = len(bin.Code)
	return st
}

// backendToggles returns the enabled backend toggle names of the
// configuration, in pipeline order.
func backendToggles(cfg Config) []string {
	if cfg.Level == "O0" {
		return nil
	}
	expensiveOff := cfg.Disabled["expensive-opts"]
	var names []string
	for _, e := range pipelines(cfg.Profile, cfg.Level) {
		if !e.backend {
			continue
		}
		if !e.internal && cfg.Disabled[e.name] {
			continue
		}
		if e.expensive && expensiveOff {
			continue
		}
		names = append(names, e.name)
	}
	return names
}

func violSet(vs []staticdbg.Violation) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v.String()] = true
	}
	return m
}

func countInstrs(prog *ir.Program) int {
	n := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op != ir.OpDbgValue {
					n++
				}
			}
		}
	}
	return n
}
