package pipeline

import (
	"debugtuner/internal/codegen"
	"debugtuner/internal/ir"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/vm"
)

// VerifyStep is one verified pipeline step: a middle-end pass run (with
// its ledger-style label) or a back-end stage. Losses are deltas against
// the previous step's survival, so each step is charged only for what it
// destroyed; a negative loss means the step re-materialized baseline
// metadata (e.g. unrolling duplicating attributed code).
type VerifyStep struct {
	Label   string
	Backend bool
	// VerifyErr is the ir.Verify structural failure after the pass, "".
	VerifyErr string
	// NewViolations are analyzer findings absent before this step.
	NewViolations []staticdbg.Violation
	LinesLost     int
	VarsLost      int
	// InstrDelta is the step's code growth (IR instructions for
	// middle-end steps, machine instructions for back-end ones),
	// dbg.values excluded — the churn term of the damage score.
	InstrDelta int
}

// VerifyReport is the outcome of one verified build.
type VerifyReport struct {
	// Total is the baseline size (the 100% mark).
	Total staticdbg.Survival
	// InitialViolations are analyzer findings on the input module —
	// front-end debt, not attributable to any pass.
	InitialViolations []staticdbg.Violation
	Steps             []VerifyStep
	// FinalIR is survival after the last middle-end pass; Final is
	// survival in the emitted debug section.
	FinalIR staticdbg.Survival
	Final   staticdbg.Survival
	Bin     *vm.Binary
}

// Violations returns every violation the build introduced, in step
// order (initial front-end findings first).
func (r *VerifyReport) Violations() []staticdbg.Violation {
	out := append([]staticdbg.Violation{}, r.InitialViolations...)
	for _, st := range r.Steps {
		out = append(out, st.NewViolations...)
	}
	return out
}

// VerifyErrs returns the structural ir.Verify failures with their step
// labels, in step order.
func (r *VerifyReport) VerifyErrs() []string {
	var out []string
	for _, st := range r.Steps {
		if st.VerifyErr != "" {
			out = append(out, st.Label+": "+st.VerifyErr)
		}
	}
	return out
}

// BuildVerified compiles like Build but runs ir.Verify plus the
// staticdbg analyzer after every middle-end pass and back-end stage,
// attributing each new violation and each metadata loss to the step
// that introduced it. With debugify set the build runs on a debugified
// clone (synthetic 100% baseline, see staticdbg.Inject); otherwise the
// module's real front-end metadata is the baseline.
//
// Back-end stages cannot be observed mid-flight (codegen consumes its
// input), so they are attributed by prefix compilation: the final IR is
// compiled once per enabled backend toggle, each compile enabling one
// more toggle in pipeline order, and successive debug sections are
// diffed. The always-on remainder (lowering, register allocation,
// emission) is the "codegen" step. The extra compiles are the price of
// attribution and scale with the handful of backend toggles, not with
// program size; Build's output is bit-identical to the last prefix.
//
// Verify-each is deliberately a separate entry point rather than a
// Config field: Config fingerprints cache binaries, and a verification
// mode must never alias or split cache entries.
func BuildVerified(ir0 *ir.Program, cfg Config, debugify bool) *VerifyReport {
	return BuildVerifiedTamper(ir0, cfg, debugify, nil)
}

// BuildVerifiedTamper is BuildVerified with a tamper hook invoked after
// each middle-end pass runs and before the analyzer measures that step,
// receiving the pass label and the live module. It exists for the hunt
// campaign's planted-bug drills: a tamper that corrupts metadata after
// pass P is caught by the very next analyzer run and attributed to P,
// exactly as a real bug in P would be — an end-to-end self-test of the
// attribution machinery. A nil tamper is BuildVerified.
func BuildVerifiedTamper(ir0 *ir.Program, cfg Config, debugify bool,
	tamper func(label string, prog *ir.Program)) *VerifyReport {
	work := ir0
	var bl *staticdbg.Baseline
	if debugify {
		work, bl = staticdbg.Inject(ir0)
	} else {
		bl = staticdbg.Capture(ir0)
	}
	rep := &VerifyReport{Total: bl.Total()}
	rep.InitialViolations = staticdbg.CheckModule(work)
	prevSet := violSet(rep.InitialViolations)
	prevSurv := bl.MeasureIR(work)
	prevInstrs := countInstrs(work)

	// Mid-chain binary attribution: the flow-sensitive rules (loc-stale,
	// line-unreachable) only exist at the binary level, so a middle-end
	// pass that corrupts metadata in a way only those rules catch would
	// otherwise be invisible until the backend prefix compiles — and the
	// "codegen" base step would take the blame. After each pass that
	// actually changed the module (gated by a cheap structural
	// fingerprint: an unchanged module compiles to the same binary), the
	// live IR is compiled once at base options and the dataflow-rule
	// findings diffed against the previous compile's. The input module's
	// own compile seeds the set, so pre-existing debt charges to the
	// front-end bucket, and the backend chain below starts from the
	// mid-chain's final set rather than empty.
	baseOpts := codegen.Options{
		OptimisticRanges: cfg.Profile == GCC,
		ForProfiling:     cfg.ForProfiling,
	}
	if cfg.OptimisticOverride != nil {
		baseOpts.OptimisticRanges = *cfg.OptimisticOverride
	}
	lastFP := irFingerprint(work)
	midSet := map[string]bool{}
	for _, v := range dataflowRules(staticdbg.CheckBinary(codegen.Compile(work.Clone(), baseOpts))) {
		midSet[v.String()] = true
		rep.InitialViolations = append(rep.InitialViolations, v)
	}

	hook := func(label string, prog *ir.Program) {
		if tamper != nil {
			tamper(label, prog)
		}
		st := VerifyStep{Label: label}
		if err := ir.VerifyProgram(prog); err != nil {
			st.VerifyErr = err.Error()
		}
		vs := staticdbg.CheckModule(prog)
		for _, v := range vs {
			if !prevSet[v.String()] {
				st.NewViolations = append(st.NewViolations, v)
			}
		}
		prevSet = violSet(vs)
		if fp := irFingerprint(prog); fp != lastFP {
			lastFP = fp
			dfv := dataflowRules(staticdbg.CheckBinary(codegen.Compile(prog.Clone(), baseOpts)))
			for _, v := range dfv {
				if !midSet[v.String()] {
					st.NewViolations = append(st.NewViolations, v)
				}
			}
			midSet = violSet(dfv)
		}
		surv := bl.MeasureIR(prog)
		st.LinesLost = prevSurv.Lines - surv.Lines
		st.VarsLost = prevSurv.Vars - surv.Vars
		prevSurv = surv
		n := countInstrs(prog)
		st.InstrDelta = n - prevInstrs
		prevInstrs = n
		rep.Steps = append(rep.Steps, st)
	}
	prog, _ := optimizeIR(work, cfg, hook)
	rep.FinalIR = prevSurv

	// Back-end attribution by prefix compilation. Binary-level findings
	// start from an empty set: the "codegen" base step owns everything
	// the always-on stages introduce.
	toggles := backendToggles(cfg)
	mkOpts := func(n int) codegen.Options {
		o := codegen.Options{
			OptimisticRanges: cfg.Profile == GCC,
			ForProfiling:     cfg.ForProfiling,
		}
		if cfg.OptimisticOverride != nil {
			o.OptimisticRanges = *cfg.OptimisticOverride
		}
		for _, name := range toggles[:n] {
			enableBackend(&o, name)
		}
		return o
	}
	binPrevSet := make(map[string]bool, len(midSet))
	for s := range midSet {
		binPrevSet[s] = true
	}
	binPrevSurv := prevSurv
	binPrevCode := 0
	bin := codegen.Compile(prog.Clone(), mkOpts(0))
	step := backendStep("codegen", bl, bin, &binPrevSet, &binPrevSurv, &binPrevCode)
	step.InstrDelta = 0 // lowering expansion is not churn
	rep.Steps = append(rep.Steps, step)
	for i := range toggles {
		bin = codegen.Compile(prog.Clone(), mkOpts(i+1))
		rep.Steps = append(rep.Steps,
			backendStep(toggles[i], bl, bin, &binPrevSet, &binPrevSurv, &binPrevCode))
	}
	rep.Final = bl.MeasureBinary(bin)
	rep.Bin = bin
	return rep
}

// backendStep diffs one prefix compile against the previous one.
func backendStep(label string, bl *staticdbg.Baseline, bin *vm.Binary,
	prevSet *map[string]bool, prevSurv *staticdbg.Survival, prevCode *int) VerifyStep {
	st := VerifyStep{Label: label, Backend: true}
	vs := staticdbg.CheckBinary(bin)
	for _, v := range vs {
		// Advisories (loc-extendable) are range-improvement hints; a
		// prefix compile's shorter-than-provable range is not damage to
		// charge a stage with.
		if !v.Rule.Advisory() && !(*prevSet)[v.String()] {
			st.NewViolations = append(st.NewViolations, v)
		}
	}
	*prevSet = violSet(vs)
	surv := bl.MeasureBinary(bin)
	st.LinesLost = prevSurv.Lines - surv.Lines
	st.VarsLost = prevSurv.Vars - surv.Vars
	*prevSurv = surv
	st.InstrDelta = len(bin.Code) - *prevCode
	*prevCode = len(bin.Code)
	return st
}

// backendToggles returns the enabled backend toggle names of the
// configuration, in pipeline order.
func backendToggles(cfg Config) []string {
	if cfg.Level == "O0" {
		return nil
	}
	expensiveOff := cfg.Disabled["expensive-opts"]
	var names []string
	for _, e := range pipelines(cfg.Profile, cfg.Level) {
		if !e.backend {
			continue
		}
		if !e.internal && cfg.Disabled[e.name] {
			continue
		}
		if e.expensive && expensiveOff {
			continue
		}
		names = append(names, e.name)
	}
	return names
}

// dataflowRules keeps only the flow-sensitive non-advisory binary
// rules — the ones mid-chain attribution compiles for. Structural rules
// are left to the backend prefix diff, where they originate.
func dataflowRules(vs []staticdbg.Violation) []staticdbg.Violation {
	var out []staticdbg.Violation
	for _, v := range vs {
		if v.Rule == staticdbg.RuleLocStale || v.Rule == staticdbg.RuleLineUnreachable {
			out = append(out, v)
		}
	}
	return out
}

// irFingerprint hashes the module structure that codegen consumes —
// function shapes, block order and edges, each value's op, operands,
// line, and bound variable. Two modules with equal fingerprints compile
// to the same base-options binary, so the mid-chain attribution loop
// skips recompiling after passes that changed nothing (analysis-only
// passes, no-op cleanups). Branch probabilities are deliberately
// excluded: base options enable no frequency-driven backend stage.
func irFingerprint(prog *ir.Program) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mixInt := func(x int64) { mix(uint64(x)) }
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
		mix(0xff)
	}
	for _, g := range prog.Globals {
		mixStr(g.Name)
		mixInt(g.Init)
		if g.IsArray {
			mix(1)
		}
	}
	for _, f := range prog.Funcs {
		mixStr(f.Name)
		mixInt(int64(f.NParams))
		mixInt(int64(f.NumSlots))
		for _, b := range f.Blocks {
			mixInt(int64(b.ID))
			for _, s := range b.Succs {
				mixInt(int64(s.ID))
			}
			for _, v := range b.Instrs {
				mixInt(int64(v.Op))
				mixInt(int64(v.ID))
				mixInt(v.AuxInt)
				mixInt(int64(v.Line))
				mixStr(v.Aux)
				if v.Var != nil {
					mixInt(int64(v.Var.ID))
				}
				for _, a := range v.Args {
					if a != nil {
						mixInt(int64(a.ID))
					} else {
						mix(0xfe)
					}
				}
			}
		}
	}
	return h
}

func violSet(vs []staticdbg.Violation) map[string]bool {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v.String()] = true
	}
	return m
}

func countInstrs(prog *ir.Program) int {
	n := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, v := range b.Instrs {
				if v.Op != ir.OpDbgValue {
					n++
				}
			}
		}
	}
	return n
}
