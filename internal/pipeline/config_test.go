package pipeline

import (
	"strings"
	"testing"
)

func TestNewConfigValidates(t *testing.T) {
	if _, err := NewConfig("icc", "O2"); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := NewConfig(Clang, "Og"); err == nil {
		t.Error("clang has no Og but it was accepted")
	}
	if _, err := NewConfig(GCC, "O4"); err == nil {
		t.Error("unknown level accepted")
	}
	if _, err := NewConfig(GCC, "O2", Disable("tree-frre")); err == nil {
		t.Error("typoed pass name accepted")
	}
	if _, err := NewConfig(GCC, "O2", Disable("machine-sink")); err == nil {
		t.Error("clang-only toggle accepted at gcc-O2")
	}
	if _, err := NewConfig(GCC, "O0", Disable("dce")); err == nil {
		t.Error("disable at O0 accepted (O0 runs no passes)")
	}
	for _, p := range []Profile{GCC, Clang} {
		for _, l := range append([]string{"O0"}, Levels(p)...) {
			if _, err := NewConfig(p, l); err != nil {
				t.Errorf("NewConfig(%s, %s): %v", p, l, err)
			}
			for _, name := range EnabledPasses(p, l) {
				if _, err := NewConfig(p, l, Disable(name)); err != nil {
					t.Errorf("NewConfig(%s, %s, -%s): %v", p, l, name, err)
				}
			}
		}
	}
	// The fine-grained gcc inliner knob is valid at O1–O3 only.
	for _, l := range []string{"O1", "O2", "O3"} {
		if _, err := NewConfig(GCC, l, Disable("inline-fncs-called-once")); err != nil {
			t.Errorf("inline-fncs-called-once rejected at gcc-%s: %v", l, err)
		}
	}
	if _, err := NewConfig(Clang, "O2", Disable("inline-fncs-called-once")); err == nil {
		t.Error("gcc-only inliner knob accepted on clang")
	}
}

func TestNewConfigFingerprintCoherence(t *testing.T) {
	a := MustConfig(GCC, "O2", Disable("dce", "gvn"))
	b := MustConfig(GCC, "O2", Disable("gvn"), Disable("dce"))
	c := MustConfig(GCC, "O2", DisableSet(map[string]bool{
		"dce": true, "gvn": true, "dse": false, // false entries must not leak
	}))
	fa, _ := a.Fingerprint()
	fb, _ := b.Fingerprint()
	fc, _ := c.Fingerprint()
	if fa != fb || fa != fc {
		t.Errorf("equivalent configs fingerprint differently: %q %q %q", fa, fb, fc)
	}
	if len(c.Disabled) != 2 {
		t.Errorf("DisableSet kept a false entry: %v", c.Disabled)
	}
}

func TestNewConfigOptions(t *testing.T) {
	cfg := MustConfig(Clang, "O2", WithProfiling(), WithSalvage(false), WithOptimistic(true))
	if !cfg.ForProfiling || cfg.SalvageOverride == nil || *cfg.SalvageOverride ||
		cfg.OptimisticOverride == nil || !*cfg.OptimisticOverride {
		t.Errorf("options not applied: %+v", cfg)
	}
	key, ok := cfg.Fingerprint()
	if !ok || !strings.Contains(key, "/prof") ||
		!strings.Contains(key, "salvage=false") || !strings.Contains(key, "optimistic=true") {
		t.Errorf("fingerprint misses option state: %q ok=%t", key, ok)
	}
}

func TestMustConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustConfig did not panic on invalid config")
		}
	}()
	MustConfig(GCC, "O2", Disable("no-such-pass"))
}
