package pipeline

import (
	"reflect"
	"testing"
	"testing/quick"

	"debugtuner/internal/ir"
	"debugtuner/internal/synth"
	"debugtuner/internal/vm"
)

// TestRandomProgramsEquivalence is the standing randomized differential
// campaign, formalized with testing/quick: for random seeds, every
// profile/level build must produce exactly the reference interpreter's
// output. The same harness (at 1000 seeds, plus single-pass-disable
// sweeps) found five real miscompiles during development: a lost spill
// store on coalesced moves, a machine-sink use-block aliasing bug, a
// scratch-register collision on three-operand spills, a scheduler
// missing anti-dependencies, and stale loop structures in the unroller.
func TestRandomProgramsEquivalence(t *testing.T) {
	opts := synth.DefaultOptions()
	check := func(seedRaw uint16) bool {
		seed := int64(seedRaw)
		src := synth.Generate(seed, opts)
		info, err := Frontend("q", []byte(src))
		if err != nil {
			t.Logf("seed %d: frontend: %v", seed, err)
			return false
		}
		ir0, err := BuildIR(info)
		if err != nil {
			t.Logf("seed %d: ir: %v", seed, err)
			return false
		}
		it := ir.NewInterp(ir0, 1<<21)
		if _, err := it.Call("main"); err != nil {
			return true // over-budget programs are skipped, not failures
		}
		want := it.Output()
		for _, p := range []Profile{GCC, Clang} {
			for _, l := range append([]string{"O0"}, Levels(p)...) {
				bin := Build(ir0, Config{Profile: p, Level: l})
				m := vm.New(bin)
				m.StepBudget = 1 << 23
				if _, err := m.Call("main"); err != nil {
					t.Logf("seed %d %s-%s: %v", seed, p, l, err)
					return false
				}
				if !reflect.DeepEqual(m.Output(), want) {
					t.Logf("seed %d %s-%s: output %v want %v",
						seed, p, l, m.Output(), want)
					return false
				}
			}
		}
		return true
	}
	n := 12
	if !testing.Short() {
		n = 40
	}
	if err := quick.Check(check, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
