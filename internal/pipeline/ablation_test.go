package pipeline

import (
	"testing"

	"debugtuner/internal/debugger"
	"debugtuner/internal/metrics"
	"debugtuner/internal/sema"
)

// Ablations of the two policy axes DESIGN.md identifies as carrying the
// cross-compiler reproduction: the RAUW salvage policy and the
// location-range policy. Each axis is isolated with the corresponding
// override and must move the metrics in its documented direction.

const ablationSrc = `
var acc: int = 0;

func mix(a: int, b: int): int {
	var m: int = a * 31 + b;
	var n: int = m ^ (m >> 7);
	var o: int = n * 3 - a;
	return o % 8191;
}
func main() {
	var last: int = 1;
	for (var i: int = 0; i < 40; i = i + 1) {
		var h: int = mix(i, last);
		if (h % 3 == 0) {
			acc = acc + h;
		} else {
			acc = acc - 1;
		}
		last = h;
	}
	print(acc);
	print(last);
}
`

// TestAblationSalvagePolicy isolates each axis with the overrides.
func TestAblationSalvagePolicy(t *testing.T) {
	info, err := Frontend("a.mc", []byte(ablationSrc))
	if err != nil {
		t.Fatal(err)
	}
	ir0, err := BuildIR(info)
	if err != nil {
		t.Fatal(err)
	}
	dr := sema.ComputeDefRanges(info)
	baseBin := Build(ir0, Config{Profile: GCC, Level: "O0"})
	baseSess, err := debugger.NewSession(baseBin)
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseSess.TraceMain("main", 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	product := func(cfg Config) float64 {
		bin := Build(ir0, cfg)
		s, err := debugger.NewSession(bin)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := s.TraceMain("main", 1<<24)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Hybrid(tr, base, dr).Product
	}
	on, off := true, false

	// Axis 1: salvage. Same gcc pipeline, only the RAUW policy differs;
	// salvage must not reduce the product.
	withSalvage := product(Config{Profile: GCC, Level: "O2", SalvageOverride: &on})
	without := product(Config{Profile: GCC, Level: "O2", SalvageOverride: &off})
	if withSalvage+1e-9 < without {
		t.Errorf("salvage ablation inverted: with=%.4f without=%.4f",
			withSalvage, without)
	}

	// Axis 2: optimistic ranges change what the *static* method sees,
	// not what materializes; the dynamic-hybrid product must stay
	// within noise while static availability may only grow.
	popt := product(Config{Profile: GCC, Level: "O2", OptimisticOverride: &on})
	pprec := product(Config{Profile: GCC, Level: "O2", OptimisticOverride: &off})
	if diff := popt - pprec; diff < -0.05 || diff > 0.05 {
		t.Errorf("optimistic ranges changed runtime-observed product by %.4f", diff)
	}
}
