package pipeline

import (
	"reflect"
	"strings"
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/passes"
)

const verifySrc = `
var seed: int = 7;

func mix(x: int): int {
	var h: int = x * 31;
	h = h ^ (h >> 5);
	return h + seed;
}
func main(): int {
	var acc: int = 0;
	for (var i: int = 0; i < 20; i = i + 1) {
		if (i % 3 == 0) {
			acc = acc + mix(i);
		} else {
			acc = acc - i;
		}
	}
	print(acc);
	return acc;
}
`

func verifyIR(t *testing.T) *ir.Program {
	t.Helper()
	info, err := Frontend("t.mc", []byte(verifySrc))
	if err != nil {
		t.Fatal(err)
	}
	ir0, err := BuildIR(info)
	if err != nil {
		t.Fatal(err)
	}
	return ir0
}

func verifyCfg(t *testing.T, p Profile, level string) Config {
	t.Helper()
	cfg, err := NewConfig(p, level)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestBuildVerifiedCleanAndMatchesBuild(t *testing.T) {
	ir0 := verifyIR(t)
	for _, tc := range []struct {
		p     Profile
		level string
	}{{GCC, "O2"}, {Clang, "O3"}, {GCC, "Og"}} {
		cfg := verifyCfg(t, tc.p, tc.level)
		rep := BuildVerified(ir0, cfg, false)
		if vs := rep.Violations(); len(vs) != 0 {
			t.Errorf("%s: violations on a clean build: %v", cfg.Name(), vs)
		}
		if errs := rep.VerifyErrs(); len(errs) != 0 {
			t.Errorf("%s: ir.Verify failures: %v", cfg.Name(), errs)
		}
		// The last prefix compile is the real configuration: its output
		// must be bit-identical to what Build produces.
		want := Build(ir0, cfg)
		if rep.Bin.TextHash() != want.TextHash() {
			t.Errorf("%s: verified build text differs from Build", cfg.Name())
		}
		if rep.Total.Lines == 0 || rep.Final.Lines > rep.Total.Lines {
			t.Errorf("%s: survival %+v out of range of baseline %+v",
				cfg.Name(), rep.Final, rep.Total)
		}
	}
}

func TestBuildVerifiedDebugifyClean(t *testing.T) {
	ir0 := verifyIR(t)
	cfg := verifyCfg(t, GCC, "O2")
	rep := BuildVerified(ir0, cfg, true)
	if vs := rep.Violations(); len(vs) != 0 {
		t.Fatalf("debugified build produced violations: %v", vs)
	}
	if errs := rep.VerifyErrs(); len(errs) != 0 {
		t.Fatalf("debugified build fails ir.Verify: %v", errs)
	}
	if rep.Total.Lines == 0 || rep.Total.Vars == 0 {
		t.Fatalf("empty synthetic baseline: %+v", rep.Total)
	}
	if rep.Final.Lines > rep.Total.Lines || rep.Final.Vars > rep.Total.Vars {
		t.Fatalf("survival %+v exceeds baseline %+v", rep.Final, rep.Total)
	}
}

func TestBuildVerifiedDeterministic(t *testing.T) {
	ir0 := verifyIR(t)
	cfg := verifyCfg(t, GCC, "O2")
	a := BuildVerified(ir0, cfg, true)
	b := BuildVerified(ir0, cfg, true)
	if !reflect.DeepEqual(a.Steps, b.Steps) {
		t.Fatal("two verified builds report different steps")
	}
	if a.Total != b.Total || a.Final != b.Final || a.FinalIR != b.FinalIR {
		t.Fatal("two verified builds report different survival")
	}
}

func TestBuildVerifiedStepLabelsMatchLedger(t *testing.T) {
	ir0 := verifyIR(t)
	cfg := verifyCfg(t, GCC, "O2")
	rep := BuildVerified(ir0, cfg, false)
	sawCodegen := false
	for _, st := range rep.Steps {
		switch {
		case st.Label == "codegen":
			sawCodegen = true
			if !st.Backend {
				t.Error("codegen step not marked backend")
			}
		case st.Backend:
			if !IsBackend(st.Label) {
				t.Errorf("backend step %q is not a known backend toggle", st.Label)
			}
		default:
			name := strings.TrimPrefix(st.Label, "cleanup/")
			if passes.Lookup(name) == nil {
				t.Errorf("step %q names no registered pass", st.Label)
			}
		}
	}
	if !sawCodegen {
		t.Error("no codegen base step reported")
	}
}

func TestBackendTogglesRespectDisabled(t *testing.T) {
	ir0 := verifyIR(t)
	cfg, err := NewConfig(GCC, "O2", DisableSet(map[string]bool{"schedule-insns2": true}))
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildVerified(ir0, cfg, false)
	for _, st := range rep.Steps {
		if st.Label == "schedule-insns2" {
			t.Fatal("disabled backend toggle still attributed a step")
		}
	}
	// O0 has no backend toggles at all — just the codegen base step.
	rep0 := BuildVerified(ir0, verifyCfg(t, GCC, "O0"), false)
	for _, st := range rep0.Steps {
		if st.Backend && st.Label != "codegen" {
			t.Fatalf("O0 attributed backend toggle %q", st.Label)
		}
	}
}
