package corpus

import (
	"reflect"
	"testing"

	"debugtuner/internal/pipeline"
)

// target is a branchy harness whose coverage depends on input content.
const targetSrc = `
func fuzz_t(input: int[], n: int) {
	var magic: int = 0;
	if (n > 0 && input[0] == 'A') {
		magic = magic + 1;
		if (n > 1 && input[1] == 'B') {
			magic = magic + 1;
			if (n > 2 && input[2] == 'C') {
				magic = magic + 1;
			}
		}
	}
	var loops: int = 0;
	for (var i: int = 0; i < n && i < 32; i = i + 1) {
		if (input[i] % 2 == 0) {
			loops = loops + 1;
		}
	}
	print(magic);
	print(loops);
}
`

func buildTarget(t *testing.T) *Fuzzer {
	t.Helper()
	bin, _, err := pipeline.CompileSource("t.mc", []byte(targetSrc),
		pipeline.MustConfig(pipeline.GCC, "O0"))
	if err != nil {
		t.Fatal(err)
	}
	return &Fuzzer{Bin: bin, Harness: "fuzz_t", Seed: 1, Execs: 800, StepBudget: 1 << 18}
}

func TestFuzzerFindsCoverage(t *testing.T) {
	fz := buildTarget(t)
	c := fz.Run()
	if len(c.Entries) < 3 {
		t.Fatalf("queue has only %d entries", len(c.Entries))
	}
	if len(c.TotalEdges) < 8 {
		t.Fatalf("only %d edges covered", len(c.TotalEdges))
	}
	// Every entry carries a coverage signature.
	for i, e := range c.Entries {
		if len(e.Edges) == 0 && len(e.Input) > 0 {
			t.Errorf("entry %d has no edges", i)
		}
	}
}

func TestFuzzerDeterministic(t *testing.T) {
	c1 := buildTarget(t).Run()
	c2 := buildTarget(t).Run()
	if len(c1.Entries) != len(c2.Entries) {
		t.Fatalf("queue sizes differ: %d vs %d", len(c1.Entries), len(c2.Entries))
	}
	for i := range c1.Entries {
		if !reflect.DeepEqual(c1.Entries[i].Input, c2.Entries[i].Input) {
			t.Fatalf("entry %d differs between runs", i)
		}
	}
}

func TestCMinPreservesCoverage(t *testing.T) {
	c := buildTarget(t).Run()
	kept := CMin(c)
	if len(kept) == 0 || len(kept) > len(c.Entries) {
		t.Fatalf("cmin kept %d of %d", len(kept), len(c.Entries))
	}
	covered := map[uint64]bool{}
	for _, i := range kept {
		for e := range c.Entries[i].Edges {
			covered[e] = true
		}
	}
	for e := range c.TotalEdges {
		if !covered[e] {
			t.Fatal("cmin lost an edge")
		}
	}
}

// TestCMinDeterministicAcrossRuns: minimization over an independently
// regrown corpus must keep the same entries — CMin's greedy order may
// not leak map iteration order, or every downstream Table III number
// (and the hunt corpus built on it) goes nondeterministic.
func TestCMinDeterministicAcrossRuns(t *testing.T) {
	kept1 := CMin(buildTarget(t).Run())
	for round := 0; round < 3; round++ {
		kept2 := CMin(buildTarget(t).Run())
		if !reflect.DeepEqual(kept1, kept2) {
			t.Fatalf("cmin kept %v on one run, %v on another", kept1, kept2)
		}
	}
}

func TestBuckets(t *testing.T) {
	cases := map[int64]uint64{
		0: 0, 1: 0, 2: 1, 3: 2, 4: 3, 7: 3, 8: 4, 15: 4, 16: 5, 31: 5,
		32: 6, 127: 6, 128: 7, 100000: 7,
	}
	for n, want := range cases {
		if got := bucket(n); got != want {
			t.Errorf("bucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(200, 40, 6, 123)
	if s.ReductionPct < 96.9 || s.ReductionPct > 97.1 {
		t.Errorf("reduction = %.2f, want 97", s.ReductionPct)
	}
	if ComputeStats(0, 0, 0, 0).ReductionPct != 0 {
		t.Error("zero queue should yield zero reduction")
	}
}

func TestMutateBounded(t *testing.T) {
	fz := buildTarget(t)
	c := fz.Run()
	for _, e := range c.Entries {
		if len(e.Input) > 128 {
			t.Fatalf("input of length %d exceeds MaxLen", len(e.Input))
		}
		for _, b := range e.Input {
			if b < 0 || b > 255 {
				t.Fatalf("non-byte input value %d", b)
			}
		}
	}
}
