// Package corpus grows and minimizes fuzzing corpora, standing in for
// OSS-Fuzz (§IV): a coverage-guided mutational fuzzer over the VM's edge
// coverage produces the "queue" of inputs, an afl-cmin-style pass
// shrinks it to a coverage-equivalent subset, and statistics mirror the
// paper's Table III columns.
//
// Everything is deterministic: the fuzzer's PRNG is seeded per harness,
// so corpora — and therefore every downstream metric — are reproducible.
package corpus

import (
	"math/rand"
	"sort"

	"debugtuner/internal/vm"
)

// Fuzzer grows a corpus for one harness of one binary.
type Fuzzer struct {
	Bin     *vm.Binary
	Harness string
	Seed    int64
	// Execs bounds the number of executions.
	Execs int
	// MaxLen bounds input length.
	MaxLen int
	// StepBudget bounds a single execution.
	StepBudget int64
}

// Entry is one corpus member with its coverage signature.
type Entry struct {
	Input []int64
	// Edges is the set of control-flow edges the input exercises.
	Edges map[uint64]bool
	// Sig is the afl-style (edge, hit-count bucket) signature; inputs
	// that differ only in edge frequencies still enter the queue — the
	// redundancy the paper's minimization pipeline removes (§IV).
	Sig map[uint64]bool
}

// Corpus is the grown queue.
type Corpus struct {
	Entries []Entry
	// TotalEdges is the union edge coverage of the queue.
	TotalEdges map[uint64]bool
	// seenSig is the union of (edge, bucket) signatures.
	seenSig map[uint64]bool
}

// bucket classifies a hit count the way AFL does.
func bucket(n int64) uint64 {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n == 3:
		return 2
	case n <= 7:
		return 3
	case n <= 15:
		return 4
	case n <= 31:
		return 5
	case n <= 127:
		return 6
	}
	return 7
}

// Inputs extracts the raw input vectors.
func (c *Corpus) Inputs() [][]int64 {
	out := make([][]int64, len(c.Entries))
	for i, e := range c.Entries {
		out[i] = e.Input
	}
	return out
}

// run executes one input and returns its edge set and bucketed
// signature.
func (f *Fuzzer) run(input []int64) (map[uint64]bool, map[uint64]bool) {
	m := vm.New(f.Bin)
	m.StepBudget = f.StepBudget
	m.EnableCoverage()
	h := m.NewArray(input)
	// Execution errors (budget) still yield partial coverage.
	_, _ = m.Call(f.Harness, h, int64(len(input)))
	edges := make(map[uint64]bool, len(m.CovEdges))
	sig := make(map[uint64]bool, len(m.CovEdges))
	for e, n := range m.CovEdges {
		edges[e] = true
		sig[e*8+bucket(n)] = true
	}
	return edges, sig
}

// Run grows the corpus: random seeds plus mutation of coverage-adding
// inputs, keeping any input that reaches a new edge.
func (f *Fuzzer) Run() *Corpus {
	if f.Execs == 0 {
		f.Execs = 2000
	}
	if f.MaxLen == 0 {
		f.MaxLen = 128
	}
	if f.StepBudget == 0 {
		f.StepBudget = 1 << 20
	}
	rng := rand.New(rand.NewSource(f.Seed))
	c := &Corpus{TotalEdges: map[uint64]bool{}, seenSig: map[uint64]bool{}}
	add := func(in []int64, edges, sig map[uint64]bool) bool {
		fresh := false
		for s := range sig {
			if !c.seenSig[s] {
				fresh = true
				break
			}
		}
		if !fresh && len(c.Entries) > 0 {
			return false
		}
		for s := range sig {
			c.seenSig[s] = true
		}
		for e := range edges {
			c.TotalEdges[e] = true
		}
		c.Entries = append(c.Entries, Entry{Input: in, Edges: edges, Sig: sig})
		return true
	}

	// Seed phase: empty, tiny, and a few random inputs.
	seeds := [][]int64{{}, {0}, {255}, randBytes(rng, 16), randBytes(rng, 64)}
	execs := 0
	for _, s := range seeds {
		e, g := f.run(s)
		add(s, e, g)
		execs++
	}
	// Mutation phase.
	for execs < f.Execs {
		var base []int64
		if len(c.Entries) > 0 {
			base = c.Entries[rng.Intn(len(c.Entries))].Input
		}
		in := mutate(rng, base, f.MaxLen)
		e, g := f.run(in)
		add(in, e, g)
		execs++
	}
	return c
}

func randBytes(rng *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Intn(256))
	}
	return out
}

// mutate derives a new input with afl-style mutations: bit flips, byte
// sets, interesting values, block duplication, truncation, extension.
func mutate(rng *rand.Rand, base []int64, maxLen int) []int64 {
	in := append([]int64(nil), base...)
	n := 1 + rng.Intn(4)
	for k := 0; k < n; k++ {
		switch rng.Intn(7) {
		case 0: // bit flip
			if len(in) > 0 {
				i := rng.Intn(len(in))
				in[i] = (in[i] ^ (1 << uint(rng.Intn(8)))) & 255
			}
		case 1: // random byte
			if len(in) > 0 {
				in[rng.Intn(len(in))] = int64(rng.Intn(256))
			}
		case 2: // interesting values
			if len(in) > 0 {
				vals := []int64{0, 1, 2, 4, 8, 16, 32, 64, 127, 128, 255}
				in[rng.Intn(len(in))] = vals[rng.Intn(len(vals))]
			}
		case 3: // extend
			if len(in) < maxLen {
				add := 1 + rng.Intn(16)
				for i := 0; i < add && len(in) < maxLen; i++ {
					in = append(in, int64(rng.Intn(256)))
				}
			}
		case 4: // truncate
			if len(in) > 1 {
				in = in[:1+rng.Intn(len(in)-1)]
			}
		case 5: // duplicate block
			if len(in) > 0 && len(in) < maxLen {
				s := rng.Intn(len(in))
				e := s + 1 + rng.Intn(len(in)-s)
				in = append(in, in[s:e]...)
				if len(in) > maxLen {
					in = in[:maxLen]
				}
			}
		case 6: // arithmetic nudge
			if len(in) > 0 {
				i := rng.Intn(len(in))
				in[i] = (in[i] + int64(rng.Intn(9)-4) + 256) & 255
			}
		}
	}
	return in
}

// CMin is the afl-cmin analog: a greedy coverage-preserving minimization
// that returns the indices of a subset of entries whose union coverage
// equals the full queue's.
func CMin(c *Corpus) []int {
	type cand struct {
		idx  int
		size int
	}
	cands := make([]cand, len(c.Entries))
	for i, e := range c.Entries {
		cands[i] = cand{i, len(e.Edges)}
	}
	// Largest coverage first, like afl-cmin's first approximation.
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].size > cands[b].size
	})
	covered := map[uint64]bool{}
	var kept []int
	for _, cd := range cands {
		fresh := false
		for e := range c.Entries[cd.idx].Edges {
			if !covered[e] {
				fresh = true
				break
			}
		}
		if !fresh {
			continue
		}
		for e := range c.Entries[cd.idx].Edges {
			covered[e] = true
		}
		kept = append(kept, cd.idx)
	}
	sort.Ints(kept)
	return kept
}

// Stats summarizes a harness's corpus pipeline for Table III.
type Stats struct {
	QueueSize    int     // inputs in the full grown queue
	AfterCMin    int     // after coverage-preserving minimization
	AfterCover   int     // after debug-trace set-cover pruning
	ReductionPct float64 // 100 * (1 - AfterCover/QueueSize)
	UniqueEdges  int
}

// ComputeStats fills the reduction columns.
func ComputeStats(queue, afterCMin, afterCover, edges int) Stats {
	s := Stats{QueueSize: queue, AfterCMin: afterCMin, AfterCover: afterCover, UniqueEdges: edges}
	if queue > 0 {
		s.ReductionPct = 100 * (1 - float64(afterCover)/float64(queue))
	}
	return s
}
