package tuner

import (
	"testing"

	"debugtuner/internal/pipeline"
)

// TestGreedySelectImprovesOnRankPrefix: the greedy subset must beat the
// reference level and never accept a useless pass.
func TestGreedySelectImprovesOnRankPrefix(t *testing.T) {
	progs := loadTunerProgs(t)
	la, err := AnalyzeLevel(progs, pipeline.GCC, "O2")
	if err != nil {
		t.Fatal(err)
	}
	steps, cfg, err := la.GreedySelect(progs, 5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("greedy search accepted nothing")
	}
	// Scores along the accepted path are strictly increasing.
	ref := 0.0
	for _, p := range progs {
		m, err := p.Product(pipeline.MustConfig(pipeline.GCC, "O2"))
		if err != nil {
			t.Fatal(err)
		}
		ref += m
	}
	ref /= float64(len(progs))
	prev := ref
	for _, s := range steps {
		if s.Product <= prev {
			t.Fatalf("step %q did not improve (%.4f -> %.4f)", s.Pass, prev, s.Product)
		}
		prev = s.Product
	}
	if cfg.Disabled["inline"] {
		t.Fatal("greedy search disabled the master inline switch")
	}
	// The greedy result must be at least as good as the rank-prefix
	// configuration of the same size.
	prefixCfg := la.Configs([]int{len(steps)})[0]
	prefixScore := 0.0
	for _, p := range progs {
		m, err := p.Product(prefixCfg)
		if err != nil {
			t.Fatal(err)
		}
		prefixScore += m
	}
	prefixScore /= float64(len(progs))
	if prev+1e-9 < prefixScore {
		t.Fatalf("greedy (%.4f) lost to rank prefix (%.4f)", prev, prefixScore)
	}
}
