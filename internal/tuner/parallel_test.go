package tuner

import (
	"reflect"
	"sync"
	"testing"

	"debugtuner/internal/autofdo"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/workerpool"
)

// TestAnalyzeLevelDeterministicAcrossWorkerCounts is the engine's core
// contract: the ranking, reference products, and Table VII counts must
// be identical whether the (program × pass) matrix runs on one worker
// or eight.
func TestAnalyzeLevelDeterministicAcrossWorkerCounts(t *testing.T) {
	defer workerpool.SetWorkers(0)

	run := func(j int) *LevelAnalysis {
		t.Helper()
		workerpool.SetWorkers(j)
		// Fresh programs per run: the per-program measurement cache must
		// not let one run feed the other.
		progs := loadTunerProgs(t)
		la, err := AnalyzeLevel(progs, pipeline.GCC, "O2")
		if err != nil {
			t.Fatal(err)
		}
		return la
	}
	serial := run(1)
	parallel := run(8)

	if !reflect.DeepEqual(serial.RefProduct, parallel.RefProduct) {
		t.Errorf("RefProduct differs:\n j1: %v\n j8: %v", serial.RefProduct, parallel.RefProduct)
	}
	if !reflect.DeepEqual(serial.Ranking, parallel.Ranking) {
		t.Errorf("Ranking differs:\n j1: %+v\n j8: %+v", serial.Ranking, parallel.Ranking)
	}
	if serial.Positive != parallel.Positive || serial.Neutral != parallel.Neutral ||
		serial.Negative != parallel.Negative {
		t.Errorf("counts differ: j1 (%d,%d,%d) vs j8 (%d,%d,%d)",
			serial.Positive, serial.Neutral, serial.Negative,
			parallel.Positive, parallel.Neutral, parallel.Negative)
	}
}

// TestAnalyzeLevelRace exercises the pool on a small suite; run with
// -race this is the engine's data-race check (ci.sh does).
func TestAnalyzeLevelRace(t *testing.T) {
	workerpool.SetWorkers(8)
	defer workerpool.SetWorkers(0)
	progs := loadTunerProgs(t)
	for _, lvl := range []string{"O1", "O2"} {
		if _, err := AnalyzeLevel(progs, pipeline.GCC, lvl); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := AnalyzeLevel(progs, pipeline.Clang, "O2"); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDoesNotMutateSharedIR pins down the "builds are cloned from
// its IR" claim: concurrent builds under every profile/level must leave
// the program's O0 IR byte-identical, with no data race on shared
// symbol state.
func TestBuildDoesNotMutateSharedIR(t *testing.T) {
	progs := loadTunerProgs(t)
	for _, p := range progs {
		before := make([]string, len(p.IR0.Funcs))
		for i, f := range p.IR0.Funcs {
			before[i] = f.String()
		}

		var cfgs []pipeline.Config
		for _, prof := range []pipeline.Profile{pipeline.GCC, pipeline.Clang} {
			for _, l := range pipeline.Levels(prof) {
				cfgs = append(cfgs, pipeline.MustConfig(prof, l))
				cfgs = append(cfgs, pipeline.MustConfig(prof, l,
					pipeline.Disable("dce", "inline")))
			}
		}
		var wg sync.WaitGroup
		for _, cfg := range cfgs {
			wg.Add(1)
			go func(cfg pipeline.Config) {
				defer wg.Done()
				p.Build(cfg)
			}(cfg)
		}
		wg.Wait()

		for i, f := range p.IR0.Funcs {
			if got := f.String(); got != before[i] {
				t.Fatalf("%s: concurrent builds mutated IR0 func %s:\nbefore:\n%s\nafter:\n%s",
					p.Name, f.Name, before[i], got)
			}
		}
	}
}

// TestMeasureCachesByFingerprint checks the content-addressed cache:
// equal configurations written differently (map insertion order, same
// set) must share one entry, distinct sets must not collide even though
// Config.Name renders both as "-d2".
func TestMeasureCachesByFingerprint(t *testing.T) {
	progs := loadTunerProgs(t)
	p := progs[0]
	a := pipeline.MustConfig(pipeline.GCC, "O2", pipeline.Disable("dce", "dse"))
	b := pipeline.MustConfig(pipeline.GCC, "O2", pipeline.Disable("dse", "dce"))
	c := pipeline.MustConfig(pipeline.GCC, "O2", pipeline.Disable("gvn", "tree-ch"))

	ma, err := p.Measure(a)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.scores.Len(); n != 1 {
		t.Fatalf("cache has %d entries after one measurement, want 1", n)
	}
	mb, err := p.Measure(b)
	if err != nil {
		t.Fatal(err)
	}
	if n := p.scores.Len(); n != 1 {
		t.Fatalf("equivalent config missed the cache: %d entries", n)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("equivalent configs measured differently: %+v vs %+v", ma, mb)
	}
	if _, err := p.Measure(c); err != nil {
		t.Fatal(err)
	}
	if n := p.scores.Len(); n != 2 {
		t.Fatalf("distinct disabled sets collided: %d entries, want 2", n)
	}
}

// TestFingerprintRejectsFDO: FDO-carrying configs have no stable
// content identity and must bypass the cache.
func TestFingerprintRejectsFDO(t *testing.T) {
	cfg := pipeline.MustConfig(pipeline.Clang, "O2")
	if _, ok := cfg.Fingerprint(); !ok {
		t.Fatal("plain config must be fingerprintable")
	}
	cfg.FDO = &autofdo.Profile{}
	if _, ok := cfg.Fingerprint(); ok {
		t.Fatal("FDO config must not be fingerprintable")
	}
}
