// Package tuner is the DebugTuner core (§III): it evaluates the debug-
// information impact of disabling each optimization pass across a test
// suite, ranks passes by average per-program rank, constructs Ox-dy
// debug-friendly configurations from the top of the ranking, and computes
// the debuggability/performance Pareto front.
package tuner

import (
	"context"
	"fmt"
	"sync"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/evalcache"
	"debugtuner/internal/ir"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/sema"
	"debugtuner/internal/vm"
)

// Program is one test-suite subject: source, semantic info, harness
// inputs, and a cached -O0 baseline trace.
type Program struct {
	Name string
	Src  []byte
	Info *sema.Info
	DR   *sema.DefRanges
	IR0  *ir.Program
	// Inputs per harness. Empty map (or empty Entry harnesses) means a
	// main-style program traced via its entry function.
	Inputs map[string][][]int64
	Entry  string // used when no harnesses exist; default "main"
	Budget int64  // VM step budget per trace

	mu       sync.Mutex
	baseline *dbgtrace.Trace
	stmt     map[int]bool
	// scores content-addresses full measurements by config fingerprint,
	// so table generators revisiting the same Ox-dy configuration reuse
	// one build+trace. Safe because builds are deterministic and the VM
	// is cycle-exact.
	scores evalcache.Cache[Measurement]
}

// Measurement is one cached build+trace outcome.
type Measurement struct {
	// TextHash identifies the built binary's semantic instruction
	// stream; AnalyzeLevel uses it to prune no-effect pass toggles.
	TextHash uint64
	Scores   metrics.Scores
}

// LoadProgram front-ends a subject once; builds are cloned from its IR.
func LoadProgram(name string, src []byte, inputs map[string][][]int64) (*Program, error) {
	info, err := pipeline.Frontend(name+".mc", src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	p := &Program{
		Name: name, Src: src, Info: info,
		DR: sema.ComputeDefRanges(info), IR0: ir0,
		Inputs: inputs, Entry: "main", Budget: 1 << 26,
	}
	// Persist measurements across processes when a disk store is bound.
	// The namespace carries the subject identity and source hash; with
	// the config fingerprint as the in-memory key, a disk entry is valid
	// exactly when a recompute would reproduce it.
	p.scores.SetDisk(evalcache.DefaultDisk(),
		fmt.Sprintf("tuner|%s#%016x", name, resilience.HashBytes(src)))
	return p, nil
}

// Build compiles the program under the configuration.
func (p *Program) Build(cfg pipeline.Config) *vm.Binary {
	return pipeline.Build(p.IR0, cfg)
}

// Trace runs a full debug session over all harnesses and inputs.
func (p *Program) Trace(bin *vm.Binary) (*dbgtrace.Trace, error) {
	s, err := debugger.NewSession(bin)
	if err != nil {
		return nil, err
	}
	merged := dbgtrace.NewTrace()
	merged.Steppable = s.SteppableLines()
	ran := false
	for _, h := range p.Info.Harnesses {
		ins := p.Inputs[h]
		if len(ins) == 0 {
			continue
		}
		tr, err := s.Trace(h, ins, p.Budget)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", p.Name, h, err)
		}
		merged.Merge(tr)
		ran = true
	}
	if !ran {
		tr, err := s.TraceMain(p.Entry, p.Budget)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", p.Name, p.Entry, err)
		}
		merged.Merge(tr)
	}
	return merged, nil
}

// Baseline returns the cached -O0 trace (profile-independent: no passes
// run and only home-slot locations are emitted at -O0).
func (p *Program) Baseline() (*dbgtrace.Trace, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.baseline == nil {
		bin := p.Build(pipeline.MustConfig(pipeline.GCC, "O0"))
		tr, err := p.Trace(bin)
		if err != nil {
			return nil, err
		}
		p.baseline = tr
	}
	return p.baseline, nil
}

// StatementLines caches the static-baseline statement lines.
func (p *Program) StatementLines() map[int]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stmt == nil {
		p.stmt = sema.StatementLines(p.Info)
	}
	return p.stmt
}

// Product computes the hybrid product metric of a build against the -O0
// baseline — the paper's headline quality score.
func (p *Program) Product(cfg pipeline.Config) (float64, error) {
	s, err := p.Scores(cfg)
	if err != nil {
		return 0, err
	}
	return s.Product, nil
}

// Scores computes the full hybrid metrics of a configuration.
func (p *Program) Scores(cfg pipeline.Config) (metrics.Scores, error) {
	m, err := p.Measure(cfg)
	return m.Scores, err
}

// Measure builds, traces, and scores the configuration. Results are
// content-addressed by the config fingerprint; un-fingerprintable
// configurations (FDO) are measured uncached. When a resilience executor
// is installed, each measurement runs as an isolated, retried, journaled
// cell; the wrapper sits inside the cache's singleflight so concurrent
// requests coalesce, and a quarantined result (Uncacheable) evicts
// itself instead of pinning the failure.
func (p *Program) Measure(cfg pipeline.Config) (Measurement, error) {
	fp, ok := cfg.Fingerprint()
	if !ok {
		// FDO payloads fall outside the fingerprint domain, so their
		// results cannot be journaled safely — isolate without journal.
		return resilience.RunEphemeral(resilience.Active(), context.Background(),
			p.CellKey(cfg.Name()), func(context.Context) (Measurement, error) {
				return p.measure(cfg)
			})
	}
	return p.scores.Do(fp, func() (Measurement, error) {
		return resilience.Run(resilience.Active(), context.Background(),
			p.CellKey(fp), func(context.Context) (Measurement, error) {
				return p.measure(cfg)
			})
	})
}

// CellKey is the resilience journal/quarantine key of one
// (program, config) measurement: program name and source hash × config
// fingerprint, stable across processes so a resumed run addresses the
// same cells.
func (p *Program) CellKey(fp string) string {
	return fmt.Sprintf("tuner|%s#%016x|%s", p.Name, resilience.HashBytes(p.Src), fp)
}

func (p *Program) measure(cfg pipeline.Config) (Measurement, error) {
	base, err := p.Baseline()
	if err != nil {
		return Measurement{}, err
	}
	bin := p.Build(cfg)
	tr, err := p.Trace(bin)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		TextHash: bin.TextHash(),
		Scores:   metrics.Hybrid(tr, base, p.DR),
	}, nil
}
