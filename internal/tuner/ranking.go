package tuner

import (
	"context"
	"math"
	"sort"
	"sync"

	"debugtuner/internal/evalcache"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/workerpool"
)

// PassEffect is one (pass, program) measurement from the build matrix.
type PassEffect struct {
	// Increment is the relative product-metric change from disabling
	// the pass: (M_disabled - M_ref) / M_ref (§III.B).
	Increment float64
	// NoEffect marks builds whose .text was identical to the reference
	// level (the pass changed nothing; the trace stage was skipped).
	NoEffect bool
	// Quarantined marks cells the resilience layer gave up on. They are
	// excluded from rank aggregation entirely (see rank), not treated as
	// zero-effect.
	Quarantined bool
}

// RankedPass is a row of the final cross-program ranking.
type RankedPass struct {
	Name    string
	Display string
	Backend bool
	// AvgRank averages the pass's per-program rank positions; the final
	// ranking sorts by it ascending to avoid outlier bias.
	AvgRank float64
	// GeoIncrementPct is the geometric mean across programs of
	// (1 + increment), minus one, in percent — the paper's "% improvement"
	// column.
	GeoIncrementPct float64
	// Effects keeps the raw per-program data for the appendix tables.
	Effects map[string]PassEffect
}

// LevelAnalysis is the per-level output of DebugTuner's first component.
type LevelAnalysis struct {
	Profile pipeline.Profile
	Level   string
	// RefProduct is each program's product metric at the unmodified
	// level.
	RefProduct map[string]float64
	// Ranking is the cross-program pass ranking, best first.
	Ranking []RankedPass
	// Positive/Neutral/Negative count passes by average effect
	// (Table VII).
	Positive, Neutral, Negative int
	// QuarantinedPrograms lists programs whose reference measurement was
	// quarantined; they contribute to no ranking cell at this level.
	QuarantinedPrograms []string
	// QuarantinedCells counts quarantined (program, pass) matrix cells
	// among the surviving programs.
	QuarantinedCells int
}

// Quarantined reports whether any cell of this level's matrix (reference
// or toggle) was quarantined — the table renderers annotate the level
// header when so.
func (la *LevelAnalysis) Quarantined() int {
	return len(la.QuarantinedPrograms) + la.QuarantinedCells
}

// effectCache persists the (program, pass-toggle) ranking-matrix cells.
// A cell is a pure function of its key — subject source hash × config
// fingerprint (which carries profile, level, and the disabled pass) ×
// tool identity (added by the disk layer) — because builds are
// deterministic, the VM is cycle-exact, and the reference measurement
// the increment is computed against is itself a function of the same
// source and level. The matrix dominates cold-run time, so persisting
// cells is what makes warm reruns fast. Quarantined cells surface as
// errors and are never persisted.
var effectCache evalcache.Cache[PassEffect]

var effectDiskOnce sync.Once

// AnalyzeLevel runs DebugTuner stage 1+2 for one profile/level: build the
// reference, rebuild once per disabled pass (pruning .text-identical
// builds), measure, and rank.
//
// The (program × pass) build+trace matrix is embarrassingly parallel and
// fans out over the workerpool in two waves — per-program references
// first (their hashes gate the pruning), then the full matrix. Results
// are aggregated in input order, so the ranking is identical to the
// serial loop's regardless of worker count.
func AnalyzeLevel(progs []*Program, profile pipeline.Profile, level string) (*LevelAnalysis, error) {
	la := &LevelAnalysis{
		Profile: profile, Level: level,
		RefProduct: map[string]float64{},
	}
	passNames := pipeline.EnabledPasses(profile, level)
	ctx := context.Background()

	// Wave 1: reference build+trace per program. Measure routes through
	// the content-addressed cache, so the plain-level configurations the
	// table generators also visit are built only once per process. A
	// quarantined reference removes the whole program from this level —
	// without M_ref none of its increments are computable — rather than
	// failing the analysis.
	refCfg := pipeline.MustConfig(profile, level)
	type refCell struct {
		M           Measurement
		Quarantined bool
	}
	refs, err := workerpool.Map(ctx, progs, func(_ context.Context, _ int, p *Program) (refCell, error) {
		m, err := p.Measure(refCfg)
		if resilience.IsQuarantined(err) {
			return refCell{Quarantined: true}, nil
		}
		return refCell{M: m}, err
	})
	if err != nil {
		return nil, err
	}
	var live []*Program
	var liveRefs []Measurement
	for i, p := range progs {
		if refs[i].Quarantined {
			la.QuarantinedPrograms = append(la.QuarantinedPrograms, p.Name)
			continue
		}
		la.RefProduct[p.Name] = refs[i].M.Scores.Product
		live = append(live, p)
		liveRefs = append(liveRefs, refs[i].M)
	}

	// Wave 2: the (program × pass) matrix over the surviving programs.
	// Each cell is a resilience cell of its own; a quarantined one is an
	// explicit gap the rank aggregation excludes.
	type matrixJob struct{ pi, xi int }
	jobs := make([]matrixJob, 0, len(live)*len(passNames))
	for pi := range live {
		for xi := range passNames {
			jobs = append(jobs, matrixJob{pi, xi})
		}
	}
	effectDiskOnce.Do(func() {
		effectCache.SetDisk(evalcache.DefaultDisk(), "tuner.effect")
	})
	cells, err := workerpool.Map(ctx, jobs, func(ctx context.Context, _ int, j matrixJob) (PassEffect, error) {
		p := live[j.pi]
		cfg := pipeline.MustConfig(profile, level,
			pipeline.Disable(passNames[j.xi]))
		fp, _ := cfg.Fingerprint()
		eff, err := effectCache.Do(p.CellKey(fp), func() (PassEffect, error) {
			return resilience.Run(resilience.Active(), ctx, p.CellKey(fp),
				func(context.Context) (PassEffect, error) {
					bin := p.Build(cfg)
					// Stage-1 optimization: identical .text means the pass had
					// no effect on this program; skip trace extraction (§III.A).
					if bin.TextHash() == liveRefs[j.pi].TextHash {
						return PassEffect{NoEffect: true}, nil
					}
					base, err := p.Baseline()
					if err != nil {
						return PassEffect{}, err
					}
					tr, err := p.Trace(bin)
					if err != nil {
						return PassEffect{}, err
					}
					m := metrics.Hybrid(tr, base, p.DR).Product
					refM := liveRefs[j.pi].Scores.Product
					inc := 0.0
					if refM > 0 {
						inc = (m - refM) / refM
					}
					return PassEffect{Increment: inc}, nil
				})
		})
		if resilience.IsQuarantined(err) {
			return PassEffect{Quarantined: true}, nil
		}
		return eff, err
	})
	if err != nil {
		return nil, err
	}
	effects := map[string]map[string]PassEffect{}
	for _, n := range passNames {
		effects[n] = map[string]PassEffect{}
	}
	for k, j := range jobs {
		effects[passNames[j.xi]][live[j.pi].Name] = cells[k]
		if cells[k].Quarantined {
			la.QuarantinedCells++
		}
	}

	la.Ranking = rank(passNames, live, effects, profile)
	for _, rp := range la.Ranking {
		if math.IsInf(rp.AvgRank, 1) {
			continue // fully quarantined: no measured effect to classify
		}
		g := rp.GeoIncrementPct
		switch {
		case g > 1e-9:
			la.Positive++
		case g < -1e-9:
			la.Negative++
		default:
			la.Neutral++
		}
	}
	return la, nil
}

// rank computes per-program rankings and aggregates by average rank.
//
// Per program (§III.B): passes with positive increment are ranked by
// increment, descending; passes with no measurable effect share the next
// rank; passes with negative impact rank below them.
//
// Quarantined cells are excluded, not defaulted: a missing measurement
// contributes neither a rank position in its program's ordering nor a
// factor to the geometric mean, and each pass's average divides by the
// number of programs that actually measured it. A pass with no surviving
// measurement gets AvgRank +Inf and sorts last (alphabetically among
// such passes), so the gap is visible instead of silently flattering or
// penalizing the pass.
func rank(passNames []string, progs []*Program, effects map[string]map[string]PassEffect, profile pipeline.Profile) []RankedPass {
	rankSum := map[string]float64{}
	rankN := map[string]int{}
	for _, p := range progs {
		type pe struct {
			name string
			eff  PassEffect
		}
		var pos, neg []pe
		var zero []string
		for _, n := range passNames {
			e := effects[n][p.Name]
			switch {
			case e.Quarantined:
				// Excluded: no rank position for this (pass, program).
			case !e.NoEffect && e.Increment > 1e-12:
				pos = append(pos, pe{n, e})
			case !e.NoEffect && e.Increment < -1e-12:
				neg = append(neg, pe{n, e})
			default:
				zero = append(zero, n)
			}
		}
		sort.SliceStable(pos, func(i, j int) bool {
			if pos[i].eff.Increment != pos[j].eff.Increment {
				return pos[i].eff.Increment > pos[j].eff.Increment
			}
			return pos[i].name < pos[j].name
		})
		sort.SliceStable(neg, func(i, j int) bool {
			if neg[i].eff.Increment != neg[j].eff.Increment {
				return neg[i].eff.Increment > neg[j].eff.Increment
			}
			return neg[i].name < neg[j].name
		})
		r := 1
		for _, x := range pos {
			rankSum[x.name] += float64(r)
			rankN[x.name]++
			r++
		}
		for _, n := range zero {
			rankSum[n] += float64(r) // identical low rank for all
			rankN[n]++
		}
		if len(zero) > 0 {
			r++
		}
		for _, x := range neg {
			rankSum[x.name] += float64(r)
			rankN[x.name]++
			r++
		}
	}

	out := make([]RankedPass, 0, len(passNames))
	for _, n := range passNames {
		rp := RankedPass{
			Name:    n,
			Display: pipeline.DisplayName(profile, n),
			Backend: pipeline.IsBackend(n),
			AvgRank: math.Inf(1),
			Effects: effects[n],
		}
		if rankN[n] > 0 {
			rp.AvgRank = rankSum[n] / float64(rankN[n])
		}
		var factors []float64
		for _, p := range progs {
			if e := effects[n][p.Name]; !e.Quarantined {
				factors = append(factors, 1+e.Increment)
			}
		}
		if len(factors) > 0 {
			rp.GeoIncrementPct = (metrics.GeoMean(factors) - 1) * 100
		}
		out = append(out, rp)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AvgRank != out[j].AvgRank {
			// math.Inf compares normally here, so fully-quarantined
			// passes (AvgRank +Inf) sort after every measured pass; the
			// stable sort keeps passNames order among them.
			return out[i].AvgRank < out[j].AvgRank
		}
		return out[i].GeoIncrementPct > out[j].GeoIncrementPct
	})
	return out
}

// TopPasses returns the top-k toggle names of the ranking, excluding the
// general inliner when excludeInline is set — the paper's special
// treatment: the master inline switch is too costly to disable outright,
// so configurations use the finer-grained inlining toggles instead
// (§V.B).
func (la *LevelAnalysis) TopPasses(k int, excludeInline bool) []string {
	var out []string
	for _, rp := range la.Ranking {
		if excludeInline && rp.Name == "inline" {
			continue
		}
		out = append(out, rp.Name)
		if len(out) == k {
			break
		}
	}
	return out
}

// Configs builds the Ox-dy configuration family from the ranking:
// for each y, the top y ranked passes (with the inliner excluded per the
// paper) are disabled.
func (la *LevelAnalysis) Configs(ys []int) []pipeline.Config {
	var out []pipeline.Config
	for _, y := range ys {
		out = append(out, pipeline.MustConfig(la.Profile, la.Level,
			pipeline.Disable(la.TopPasses(y, true)...)))
	}
	return out
}
