package tuner

import (
	"testing"

	"debugtuner/internal/pipeline"
)

var tunerProgs = []struct {
	name string
	src  string
}{
	{"alpha", `
func weigh(x: int): int {
	var w: int = 0;
	while (x > 0) {
		w = w + (x & 1);
		x = x >> 1;
	}
	return w;
}
func main() {
	var total: int = 0;
	for (var i: int = 0; i < 50; i = i + 1) {
		var b: int = weigh(i * 2654435761);
		if (b > 16) {
			total = total + b;
		} else {
			total = total + 1;
		}
	}
	print(total);
}`},
	{"beta", `
var grid: int[] = new int[100];
func stepcell(i: int): int {
	var up: int = grid[i - 10];
	var dn: int = grid[i + 10];
	var lf: int = grid[i - 1];
	var rt: int = grid[i + 1];
	return (up + dn + lf + rt) / 4;
}
func main() {
	for (var i: int = 0; i < 100; i = i + 1) {
		grid[i] = i * i % 97;
	}
	for (var gen: int = 0; gen < 5; gen = gen + 1) {
		for (var i: int = 11; i < 89; i = i + 1) {
			grid[i] = stepcell(i) + 1;
		}
	}
	var sum: int = 0;
	for (var i: int = 0; i < 100; i = i + 1) { sum = sum + grid[i]; }
	print(sum);
}`},
	{"gamma", `
func collatz(n: int): int {
	var steps: int = 0;
	while (n != 1 && steps < 500) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}
func main() {
	var longest: int = 0;
	var which: int = 0;
	for (var i: int = 1; i < 60; i = i + 1) {
		var s: int = collatz(i);
		if (s > longest) { longest = s; which = i; }
	}
	print(which);
	print(longest);
}`},
}

func loadTunerProgs(t *testing.T) []*Program {
	t.Helper()
	var out []*Program
	for _, tp := range tunerProgs {
		p, err := LoadProgram(tp.name, []byte(tp.src), nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestAnalyzeLevel exercises the full DebugTuner loop at gcc-O2: a
// ranking must exist, disabling top passes must improve the suite
// product, and the reference products must be sane.
func TestAnalyzeLevel(t *testing.T) {
	progs := loadTunerProgs(t)
	la, err := AnalyzeLevel(progs, pipeline.GCC, "O2")
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Ranking) == 0 {
		t.Fatal("empty ranking")
	}
	for name, m := range la.RefProduct {
		if m <= 0 || m >= 1 {
			t.Errorf("%s: reference product %v outside (0,1)", name, m)
		}
	}
	if la.Positive == 0 {
		t.Error("no pass improves debug information when disabled")
	}
	// Disabling the top 3 (inliner excluded) must improve the average
	// product over the reference level.
	cfg := la.Configs([]int{3})[0]
	var ref, tuned float64
	for _, p := range progs {
		m, err := p.Product(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tuned += m
		ref += la.RefProduct[p.Name]
	}
	if tuned <= ref {
		t.Errorf("O2-d3 product %.4f did not beat O2 %.4f", tuned/3, ref/3)
	}
	// The ranking's top entry should carry a positive geometric
	// increment.
	if la.Ranking[0].GeoIncrementPct <= 0 {
		t.Errorf("top-ranked pass %s has non-positive increment %.2f%%",
			la.Ranking[0].Name, la.Ranking[0].GeoIncrementPct)
	}
}

// TestInlinerExcludedFromConfigs checks the paper's special treatment of
// the master inline switch.
func TestInlinerExcludedFromConfigs(t *testing.T) {
	progs := loadTunerProgs(t)
	la, err := AnalyzeLevel(progs, pipeline.Clang, "O2")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range la.Configs([]int{3, 5, 7, 9}) {
		if cfg.Disabled["inline"] {
			t.Fatalf("config %s disables the master inline switch", cfg.Name())
		}
	}
}

// TestParetoFront validates non-domination and extremes.
func TestParetoFront(t *testing.T) {
	pts := []Point{
		{"a", 0.9, 1.0},
		{"b", 0.8, 2.0},
		{"c", 0.7, 1.5}, // dominated by b
		{"d", 0.5, 3.0},
		{"e", 0.5, 2.5}, // dominated by d
		{"f", 0.9, 0.5}, // dominated by a
	}
	front := ParetoFront(pts)
	want := map[string]bool{"a": true, "b": true, "d": true}
	if len(front) != len(want) {
		t.Fatalf("front = %v", front)
	}
	for _, p := range front {
		if !want[p.Label] {
			t.Fatalf("unexpected front member %s", p.Label)
		}
	}
	if front[0].Label != "d" {
		t.Fatalf("front not sorted by speedup: %v", front)
	}
	if !OnFront(pts, "a") || OnFront(pts, "c") {
		t.Fatal("OnFront misclassifies")
	}
}
