package tuner

import (
	"math"
	"testing"

	"debugtuner/internal/pipeline"
)

var tunerProgs = []struct {
	name string
	src  string
}{
	{"alpha", `
func weigh(x: int): int {
	var w: int = 0;
	while (x > 0) {
		w = w + (x & 1);
		x = x >> 1;
	}
	return w;
}
func main() {
	var total: int = 0;
	for (var i: int = 0; i < 50; i = i + 1) {
		var b: int = weigh(i * 2654435761);
		if (b > 16) {
			total = total + b;
		} else {
			total = total + 1;
		}
	}
	print(total);
}`},
	{"beta", `
var grid: int[] = new int[100];
func stepcell(i: int): int {
	var up: int = grid[i - 10];
	var dn: int = grid[i + 10];
	var lf: int = grid[i - 1];
	var rt: int = grid[i + 1];
	return (up + dn + lf + rt) / 4;
}
func main() {
	for (var i: int = 0; i < 100; i = i + 1) {
		grid[i] = i * i % 97;
	}
	for (var gen: int = 0; gen < 5; gen = gen + 1) {
		for (var i: int = 11; i < 89; i = i + 1) {
			grid[i] = stepcell(i) + 1;
		}
	}
	var sum: int = 0;
	for (var i: int = 0; i < 100; i = i + 1) { sum = sum + grid[i]; }
	print(sum);
}`},
	{"gamma", `
func collatz(n: int): int {
	var steps: int = 0;
	while (n != 1 && steps < 500) {
		if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
		steps = steps + 1;
	}
	return steps;
}
func main() {
	var longest: int = 0;
	var which: int = 0;
	for (var i: int = 1; i < 60; i = i + 1) {
		var s: int = collatz(i);
		if (s > longest) { longest = s; which = i; }
	}
	print(which);
	print(longest);
}`},
}

func loadTunerProgs(t *testing.T) []*Program {
	t.Helper()
	var out []*Program
	for _, tp := range tunerProgs {
		p, err := LoadProgram(tp.name, []byte(tp.src), nil)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// TestAnalyzeLevel exercises the full DebugTuner loop at gcc-O2: a
// ranking must exist, disabling top passes must improve the suite
// product, and the reference products must be sane.
func TestAnalyzeLevel(t *testing.T) {
	progs := loadTunerProgs(t)
	la, err := AnalyzeLevel(progs, pipeline.GCC, "O2")
	if err != nil {
		t.Fatal(err)
	}
	if len(la.Ranking) == 0 {
		t.Fatal("empty ranking")
	}
	for name, m := range la.RefProduct {
		if m <= 0 || m >= 1 {
			t.Errorf("%s: reference product %v outside (0,1)", name, m)
		}
	}
	if la.Positive == 0 {
		t.Error("no pass improves debug information when disabled")
	}
	// Disabling the top 3 (inliner excluded) must improve the average
	// product over the reference level.
	cfg := la.Configs([]int{3})[0]
	var ref, tuned float64
	for _, p := range progs {
		m, err := p.Product(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tuned += m
		ref += la.RefProduct[p.Name]
	}
	if tuned <= ref {
		t.Errorf("O2-d3 product %.4f did not beat O2 %.4f", tuned/3, ref/3)
	}
	// The ranking's top entry should carry a positive geometric
	// increment.
	if la.Ranking[0].GeoIncrementPct <= 0 {
		t.Errorf("top-ranked pass %s has non-positive increment %.2f%%",
			la.Ranking[0].Name, la.Ranking[0].GeoIncrementPct)
	}
}

// TestInlinerExcludedFromConfigs checks the paper's special treatment of
// the master inline switch.
func TestInlinerExcludedFromConfigs(t *testing.T) {
	progs := loadTunerProgs(t)
	la, err := AnalyzeLevel(progs, pipeline.Clang, "O2")
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range la.Configs([]int{3, 5, 7, 9}) {
		if cfg.Disabled["inline"] {
			t.Fatalf("config %s disables the master inline switch", cfg.Name())
		}
	}
}

// TestParetoFront validates non-domination and extremes.
func TestParetoFront(t *testing.T) {
	pts := []Point{
		{Label: "a", Debug: 0.9, Speedup: 1.0},
		{Label: "b", Debug: 0.8, Speedup: 2.0},
		{Label: "c", Debug: 0.7, Speedup: 1.5}, // dominated by b
		{Label: "d", Debug: 0.5, Speedup: 3.0},
		{Label: "e", Debug: 0.5, Speedup: 2.5}, // dominated by d
		{Label: "f", Debug: 0.9, Speedup: 0.5}, // dominated by a
	}
	front := ParetoFront(pts)
	want := map[string]bool{"a": true, "b": true, "d": true}
	if len(front) != len(want) {
		t.Fatalf("front = %v", front)
	}
	for _, p := range front {
		if !want[p.Label] {
			t.Fatalf("unexpected front member %s", p.Label)
		}
	}
	if front[0].Label != "d" {
		t.Fatalf("front not sorted by speedup: %v", front)
	}
	if !OnFront(pts, "a") || OnFront(pts, "c") {
		t.Fatal("OnFront misclassifies")
	}
}

// TestRankExcludesQuarantinedCells locks the aggregation rule the docs
// promise: a quarantined (pass, program) cell contributes neither a rank
// position nor a geomean factor, and the pass's average divides by the
// number of programs that measured it.
func TestRankExcludesQuarantinedCells(t *testing.T) {
	progs := []*Program{{Name: "p1"}, {Name: "p2"}}
	effects := map[string]map[string]PassEffect{
		"passA": {
			"p1": {Increment: 0.2},
			"p2": {Increment: 0.1},
		},
		"passB": {
			"p1": {Quarantined: true},
			"p2": {Increment: 0.3},
		},
		"passC": {
			"p1": {Quarantined: true},
			"p2": {Quarantined: true},
		},
	}
	ranking := rank([]string{"passA", "passB", "passC"}, progs, effects, pipeline.GCC)
	byName := map[string]RankedPass{}
	for _, rp := range ranking {
		byName[rp.Name] = rp
	}
	// p1: only passA measured -> rank 1. p2: passB (0.3) rank 1,
	// passA (0.1) rank 2. So A averages (1+2)/2, B averages 1/1.
	if got := byName["passA"].AvgRank; got != 1.5 {
		t.Fatalf("passA AvgRank = %v, want 1.5", got)
	}
	if got := byName["passB"].AvgRank; got != 1.0 {
		t.Fatalf("passB AvgRank = %v, want 1.0 (quarantined cell excluded)", got)
	}
	if !math.IsInf(byName["passC"].AvgRank, 1) {
		t.Fatalf("fully-quarantined passC AvgRank = %v, want +Inf", byName["passC"].AvgRank)
	}
	if ranking[len(ranking)-1].Name != "passC" {
		t.Fatalf("fully-quarantined pass must sort last: %v", ranking)
	}
	if g := byName["passC"].GeoIncrementPct; g != 0 {
		t.Fatalf("passC GeoIncrementPct = %v, want 0 (no factors)", g)
	}
	// passB's geomean uses only p2's factor: (1.3 - 1) * 100.
	if g := byName["passB"].GeoIncrementPct; math.Abs(g-30) > 1e-9 {
		t.Fatalf("passB GeoIncrementPct = %v, want 30", g)
	}
}

// TestParetoFrontSkipsQuarantined: a quarantined point neither joins nor
// prunes the front, however good its (stale) coordinates look.
func TestParetoFrontSkipsQuarantined(t *testing.T) {
	pts := []Point{
		{Label: "good", Debug: 0.5, Speedup: 1.5},
		{Label: "lost", Debug: 0.9, Speedup: 3.0, Quarantined: true},
	}
	front := ParetoFront(pts)
	if len(front) != 1 || front[0].Label != "good" {
		t.Fatalf("front = %v, want only the measured point", front)
	}
	if OnFront(pts, "lost") {
		t.Fatal("quarantined point reported on front")
	}
}
