package tuner

import (
	"context"

	"debugtuner/internal/pipeline"
	"debugtuner/internal/workerpool"
)

// Greedy subset search — the paper's future-work direction (§VI):
// instead of disabling the top-y ranked passes wholesale, grow the
// disabled set one pass at a time, keeping a candidate only if it
// improves the suite-average product metric. This explores interactions
// the rank-prefix configurations cannot see (a pass may only help once
// another is already disabled) while staying linear in the number of
// toggles.

// GreedyResult records one accepted step of the search.
type GreedyResult struct {
	Pass    string
	Product float64
}

// GreedySelect starts from the reference level and greedily disables
// passes from the ranking (inliner excluded, as in the paper's
// configuration construction) while the suite-average product improves
// by at least minGain. It returns the accepted steps and the final
// configuration.
func (la *LevelAnalysis) GreedySelect(progs []*Program, maxPasses int, minGain float64) ([]GreedyResult, pipeline.Config, error) {
	avg := func(cfg pipeline.Config) (float64, error) {
		ms, err := workerpool.Map(context.Background(), progs,
			func(_ context.Context, _ int, p *Program) (float64, error) {
				return p.Product(cfg)
			})
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for _, m := range ms {
			sum += m
		}
		return sum / float64(len(progs)), nil
	}

	chosen := map[string]bool{}
	mkCfg := func(extra string) pipeline.Config {
		opts := []pipeline.Option{pipeline.DisableSet(chosen)}
		if extra != "" {
			opts = append(opts, pipeline.Disable(extra))
		}
		return pipeline.MustConfig(la.Profile, la.Level, opts...)
	}
	cfg := mkCfg("")
	best, err := avg(cfg)
	if err != nil {
		return nil, cfg, err
	}
	var steps []GreedyResult
	for len(steps) < maxPasses {
		var bestPass string
		bestScore := best
		for _, rp := range la.Ranking {
			if rp.Name == "inline" || chosen[rp.Name] {
				continue
			}
			score, err := avg(mkCfg(rp.Name))
			if err != nil {
				return nil, cfg, err
			}
			if score > bestScore+minGain {
				bestScore = score
				bestPass = rp.Name
			}
		}
		if bestPass == "" {
			break
		}
		chosen[bestPass] = true
		cfg = mkCfg("")
		best = bestScore
		steps = append(steps, GreedyResult{Pass: bestPass, Product: best})
	}
	return steps, cfg, nil
}
