package tuner

import (
	"reflect"
	"testing"
)

func TestParetoFrontBasic(t *testing.T) {
	pts := []Point{
		{Label: "O0", Debug: 1.0, Speedup: 1.0},
		{Label: "O2", Debug: 0.5, Speedup: 2.0},
		{Label: "bad", Debug: 0.4, Speedup: 1.5}, // dominated by O2
	}
	front := ParetoFront(pts)
	want := []Point{
		{Label: "O2", Debug: 0.5, Speedup: 2.0},
		{Label: "O0", Debug: 1.0, Speedup: 1.0},
	}
	if !reflect.DeepEqual(front, want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
}

// TestParetoFrontCoincidentPoints: two configs can land on the same
// (Debug, Speedup) coordinates. Neither dominates the other, so both
// stay on the front, ordered by label; exact duplicates (same label too)
// collapse to one.
func TestParetoFrontCoincidentPoints(t *testing.T) {
	pts := []Point{
		{Label: "gcc-Og", Debug: 0.8, Speedup: 1.5},
		{Label: "clang-O1", Debug: 0.8, Speedup: 1.5},
		{Label: "gcc-Og", Debug: 0.8, Speedup: 1.5}, // exact duplicate
		{Label: "slow", Debug: 0.2, Speedup: 0.9},   // dominated
	}
	front := ParetoFront(pts)
	want := []Point{
		{Label: "clang-O1", Debug: 0.8, Speedup: 1.5},
		{Label: "gcc-Og", Debug: 0.8, Speedup: 1.5},
	}
	if !reflect.DeepEqual(front, want) {
		t.Fatalf("front = %v, want %v", front, want)
	}
	for _, label := range []string{"gcc-Og", "clang-O1"} {
		if !OnFront(pts, label) {
			t.Errorf("%s not reported on front", label)
		}
	}
}

// TestParetoFrontDeterministicOrder: the front must not depend on input
// permutation, including ties on one axis broken by the other and full
// coordinate ties broken by label.
func TestParetoFrontDeterministicOrder(t *testing.T) {
	base := []Point{
		{Label: "a", Debug: 0.9, Speedup: 1.2},
		{Label: "b", Debug: 0.7, Speedup: 1.8},
		{Label: "c", Debug: 0.7, Speedup: 1.8},
		{Label: "d", Debug: 0.3, Speedup: 2.5},
	}
	perms := [][]int{
		{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}, {1, 3, 0, 2},
	}
	var first []Point
	for _, perm := range perms {
		pts := make([]Point, len(base))
		for i, j := range perm {
			pts[i] = base[j]
		}
		front := ParetoFront(pts)
		if first == nil {
			first = front
			continue
		}
		if !reflect.DeepEqual(front, first) {
			t.Fatalf("permutation %v changed front: %v vs %v", perm, front, first)
		}
	}
	if len(first) != 4 {
		t.Fatalf("front = %v, want all four points (b and c coincident)", first)
	}
}
