package tuner

import "sort"

// Point is one configuration's position in the debuggability/performance
// plane (Figure 2): Debug is the suite-average hybrid product metric,
// Speedup the SPEC-average speedup over -O0.
type Point struct {
	Label   string
	Debug   float64
	Speedup float64
	// Quarantined marks configurations whose measurements were lost to
	// quarantine: their coordinates are meaningless, so they neither
	// join the front nor dominate anything — the renderers show them as
	// explicit gaps instead.
	Quarantined bool
}

// dominates reports whether a is at least as good as b on both axes and
// strictly better on one.
func dominates(a, b Point) bool {
	if a.Debug < b.Debug || a.Speedup < b.Speedup {
		return false
	}
	return a.Debug > b.Debug || a.Speedup > b.Speedup
}

// ParetoFront returns the non-dominated subset, sorted by descending
// speedup (top-left to bottom-right in the paper's Figure 2).
//
// Coincident points — identical (Debug, Speedup) — do not dominate each
// other, so all of them survive; the sort breaks the tie by ascending
// Label so the front is a deterministic total order, and exact
// duplicates (same label and coordinates) collapse to one point.
func ParetoFront(points []Point) []Point {
	var front []Point
	for i, p := range points {
		if p.Quarantined {
			continue
		}
		dominated := false
		for j, q := range points {
			if i != j && !q.Quarantined && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Speedup != front[j].Speedup {
			return front[i].Speedup > front[j].Speedup
		}
		if front[i].Debug != front[j].Debug {
			return front[i].Debug > front[j].Debug
		}
		return front[i].Label < front[j].Label
	})
	out := front[:0]
	for i, p := range front {
		if i > 0 && p == front[i-1] {
			continue
		}
		out = append(out, p)
	}
	return out
}

// OnFront reports whether the labeled point is Pareto-optimal.
func OnFront(points []Point, label string) bool {
	for _, p := range ParetoFront(points) {
		if p.Label == label {
			return true
		}
	}
	return false
}
