package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"debugtuner/internal/api"
	"debugtuner/internal/evalcache"
	"debugtuner/internal/resilience"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/workerpool"
)

// Options configures the HTTP server.
type Options struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// MaxInflight bounds concurrently *computing* requests (cache hits
	// and coalesced requests do not consume a slot). 0 means
	// max(2, workerpool.Workers()).
	MaxInflight int
	// MaxQueue bounds admitted-but-waiting plus computing requests;
	// beyond it new computations are rejected with the typed
	// "overloaded" error instead of queueing unboundedly. 0 means 4096.
	MaxQueue int
	// DrainGrace is the minimum window after Drain begins during which
	// the listener keeps answering new requests with the typed 503
	// "draining" error (so clients observe the drain instead of a
	// connection refused). 0 means 500ms.
	DrainGrace time.Duration
	// Budget is the per-run VM step budget (0 = DefaultBudget).
	Budget int64
}

func (o Options) maxInflight() int {
	if o.MaxInflight > 0 {
		return o.MaxInflight
	}
	n := workerpool.Workers()
	if n < 2 {
		n = 2
	}
	return n
}

func (o Options) maxQueue() int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	return 4096
}

func (o Options) drainGrace() time.Duration {
	if o.DrainGrace > 0 {
		return o.DrainGrace
	}
	return 500 * time.Millisecond
}

// cachedResp is one memoized response: the HTTP status plus the exact
// body bytes. Caching bytes (not structs) is what makes the
// byte-identical-responses guarantee trivially true for repeated
// requests, and it round-trips through the disk store like any other
// evalcache value.
type cachedResp struct {
	Status int    `json:"status"`
	Body   []byte `json:"body"`
}

// overloadedErr is admission control's rejection. It is Uncacheable so
// a transient overload is never pinned as the permanent answer for a
// request body.
type overloadedErr struct{}

func (overloadedErr) Error() string     { return "admission queue full" }
func (overloadedErr) Uncacheable() bool { return true }

// computePanic is a panic captured at the compute boundary. It is
// Uncacheable for the same reason, and capturing it ourselves matters
// doubly: sync.Once marks its entry done even when the function
// panics, so an unrecovered panic would leave a permanently-empty
// cache entry behind.
type computePanic struct {
	val   any
	stack []byte
}

func (p *computePanic) Error() string     { return fmt.Sprintf("request panicked: %v", p.val) }
func (p *computePanic) Uncacheable() bool { return true }

// Server is the tunerd HTTP server: admission control and response
// caching around a Service.
type Server struct {
	Svc  *Service
	opts Options

	// slots is the compute-concurrency semaphore; admitted counts
	// waiting + computing requests against MaxQueue.
	slots    chan struct{}
	admitted atomic.Int64

	draining atomic.Bool
	inflight sync.WaitGroup

	// resp memoizes full responses by canonical request key, with
	// single-flight coalescing across concurrent identical requests.
	// computing tracks keys whose compute closure is live, so the
	// hit/coalesced telemetry split is observable at the response level.
	resp      evalcache.Cache[cachedResp]
	computing sync.Map

	httpSrv *http.Server
	ln      net.Listener
}

// New returns a server over a fresh Service. When a default disk store
// is bound (evalcache.SetDefaultDisk), responses persist across
// restarts under a version-scoped namespace.
func New(opts Options) *Server {
	s := &Server{
		Svc:   &Service{Budget: opts.Budget},
		opts:  opts,
		slots: make(chan struct{}, opts.maxInflight()),
	}
	s.resp.SetDisk(evalcache.DefaultDisk(), fmt.Sprintf("tunerd.resp.v%d", api.Version))
	return s
}

// Handler returns the server's routing handler (also used directly by
// httptest-based tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tune", func(w http.ResponseWriter, r *http.Request) {
		s.servePost(w, r, "tune", func(body io.Reader) (cachedResp, *api.Error) {
			req, aerr := api.DecodeTuneRequest(body)
			if aerr != nil {
				return cachedResp{}, aerr
			}
			return s.cached("tune", req, func() (*api.Envelope, error) {
				res, err := s.Svc.Tune(req)
				if err != nil {
					return nil, err
				}
				return &api.Envelope{Kind: "tune", Tune: res}, nil
			})
		})
	})
	mux.HandleFunc("/v1/pareto", func(w http.ResponseWriter, r *http.Request) {
		s.servePost(w, r, "pareto", func(body io.Reader) (cachedResp, *api.Error) {
			req, aerr := api.DecodeTuneRequest(body)
			if aerr != nil {
				return cachedResp{}, aerr
			}
			return s.cached("pareto", req, func() (*api.Envelope, error) {
				res, err := s.Svc.Pareto(req)
				if err != nil {
					return nil, err
				}
				return &api.Envelope{Kind: "pareto", Pareto: res}, nil
			})
		})
	})
	mux.HandleFunc("/v1/report", func(w http.ResponseWriter, r *http.Request) {
		s.servePost(w, r, "report", func(body io.Reader) (cachedResp, *api.Error) {
			req, aerr := api.DecodeReportRequest(body)
			if aerr != nil {
				return cachedResp{}, aerr
			}
			return s.cached("report", req, func() (*api.Envelope, error) {
				res, err := s.Svc.Report(req)
				if err != nil {
					return nil, err
				}
				return &api.Envelope{Kind: "report", Report: res}, nil
			})
		})
	})
	mux.HandleFunc("/debug/metrics", s.serveMetrics)
	mux.HandleFunc("/debug/quarantine", s.serveQuarantine)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, &api.Error{Code: api.CodeNotFound,
			Msg: fmt.Sprintf("no endpoint %s", r.URL.Path)})
	})
	return mux
}

// cached returns the memoized response for (endpoint, normalized
// request), computing and caching it on a miss. Identical concurrent
// requests coalesce onto one computation (evalcache single-flight);
// typed compute errors are deterministic verdicts on the body and cache
// like results; overload and panics are Uncacheable and retriable.
func (s *Server) cached(endpoint string, req any, compute func() (*api.Envelope, error)) (cachedResp, *api.Error) {
	key := api.CanonicalKey(endpoint, req)
	_, wasComputing := s.computing.Load(key)
	computed := false
	cr, err := s.resp.Do(key, func() (cr cachedResp, err error) {
		computed = true
		s.computing.Store(key, struct{}{})
		defer s.computing.Delete(key)
		if aerr := s.admit(); aerr != nil {
			return cachedResp{}, aerr
		}
		defer s.release()
		defer func() {
			if p := recover(); p != nil {
				telemetry.Add("tunerd.panics", 1)
				err = &computePanic{val: p, stack: debug.Stack()}
			}
		}()
		env, err := compute()
		if err != nil {
			// A typed api error is a deterministic verdict on this body:
			// marshal it once and let it cache like a result. Everything
			// else propagates (quarantine errors are Uncacheable and
			// evict themselves).
			if aerr, ok := err.(*api.Error); ok {
				body, merr := api.MarshalEnvelope(&api.Envelope{Kind: "error", Error: aerr})
				if merr != nil {
					return cachedResp{}, merr
				}
				return cachedResp{Status: api.HTTPStatus(aerr.Code), Body: body}, nil
			}
			return cachedResp{}, err
		}
		body, merr := api.MarshalEnvelope(env)
		if merr != nil {
			return cachedResp{}, merr
		}
		return cachedResp{Status: http.StatusOK, Body: body}, nil
	})
	switch {
	case computed:
		telemetry.Add("tunerd.cache.miss", 1)
	case wasComputing:
		telemetry.Add("tunerd.cache.coalesced", 1)
	default:
		telemetry.Add("tunerd.cache.hit", 1)
	}
	if err != nil {
		switch e := err.(type) {
		case overloadedErr:
			return cachedResp{}, &api.Error{Code: api.CodeOverloaded, Msg: e.Error()}
		case *computePanic:
			return cachedResp{}, &api.Error{Code: api.CodeInternal, Msg: e.Error()}
		case *api.Error:
			return cachedResp{}, e
		default:
			if resilience.IsQuarantined(err) {
				return cachedResp{}, &api.Error{Code: api.CodeInternal,
					Msg: fmt.Sprintf("computation quarantined: %v", err)}
			}
			return cachedResp{}, &api.Error{Code: api.CodeInternal, Msg: err.Error()}
		}
	}
	return cr, nil
}

// admit acquires a compute slot, rejecting when the admission queue is
// full. While the queue has room, requests wait their turn on the
// semaphore rather than stampeding the worker pool.
func (s *Server) admit() error {
	if n := s.admitted.Add(1); n > int64(s.opts.maxQueue()) {
		s.admitted.Add(-1)
		telemetry.Add("tunerd.rejected", 1)
		return overloadedErr{}
	}
	s.slots <- struct{}{}
	return nil
}

func (s *Server) release() {
	<-s.slots
	s.admitted.Add(-1)
}

// servePost is the shared POST wrapper: drain gate, in-flight
// accounting, and envelope writing.
func (s *Server) servePost(w http.ResponseWriter, r *http.Request, name string,
	handle func(body io.Reader) (cachedResp, *api.Error)) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	telemetry.Add("tunerd.requests", 1)
	telemetry.Add("tunerd.requests."+name, 1)
	if s.draining.Load() {
		telemetry.Add("tunerd.drained503", 1)
		writeError(w, &api.Error{Code: api.CodeDraining, Msg: "server is draining"})
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, &api.Error{Code: api.CodeBadRequest,
			Msg: fmt.Sprintf("%s requires POST", r.URL.Path)})
		return
	}
	cr, aerr := handle(http.MaxBytesReader(w, r.Body, api.MaxRequestBytes+1))
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(cr.Status)
	w.Write(cr.Body)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	snk := telemetry.Active()
	if snk == nil {
		writeError(w, &api.Error{Code: api.CodeInternal, Msg: "telemetry sink not installed"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snk.WriteMetrics(w)
}

func (s *Server) serveQuarantine(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Done()
	var recs []api.QuarantineRecord
	if ex := resilience.Active(); ex != nil {
		recs = api.QuarantineRecordsFrom(ex.Quarantined())
	}
	writeEnvelope(w, http.StatusOK, &api.Envelope{Kind: "quarantine", Quarantine: recs})
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func writeEnvelope(w http.ResponseWriter, status int, env *api.Envelope) {
	body, err := api.MarshalEnvelope(env)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, aerr *api.Error) {
	writeEnvelope(w, api.HTTPStatus(aerr.Code), &api.Envelope{Kind: "error", Error: aerr})
}

// Start listens and serves in the background, returning the bound
// address (resolving :0 ephemeral ports).
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 30 * time.Second}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Drain shuts down gracefully: new requests get the typed 503
// "draining" error, in-flight requests run to completion, and the
// listener stays up for at least the DrainGrace window (so clients see
// the 503 instead of a connection refused) before closing. The context
// bounds the total wait; on expiry the server closes anyway.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	if rem := s.opts.drainGrace() - time.Since(start); rem > 0 {
		t := time.NewTimer(rem)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}
