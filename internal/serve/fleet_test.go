package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeFleetWorker is an in-process stand-in for a worker tunerd: an
// httptest server whose handler reports which worker answered.
type fakeFleetWorker struct {
	id      int
	srv     *httptest.Server
	hits    atomic.Int64
	done    chan struct{}
	stopped atomic.Bool
}

func (w *fakeFleetWorker) handle(rw http.ResponseWriter, r *http.Request) {
	w.hits.Add(1)
	fmt.Fprintf(rw, "worker-%d", w.id)
}

// die simulates the worker process exiting (crash or stop).
func (w *fakeFleetWorker) die() {
	if w.stopped.CompareAndSwap(false, true) {
		w.srv.Close()
		close(w.done)
	}
}

func (w *fakeFleetWorker) handle2() *WorkerHandle {
	u, _ := url.Parse(w.srv.URL)
	return &WorkerHandle{
		URL: u,
		Stop: func(context.Context) error {
			w.die()
			return nil
		},
		Done: w.done,
	}
}

// fleetHarness spawns fake workers and records every spawn call.
type fleetHarness struct {
	mu      sync.Mutex
	spawned []*fakeFleetWorker
}

func (h *fleetHarness) spawn(i int) (*WorkerHandle, error) {
	w := &fakeFleetWorker{id: i, done: make(chan struct{})}
	w.srv = httptest.NewServer(http.HandlerFunc(w.handle))
	h.mu.Lock()
	h.spawned = append(h.spawned, w)
	h.mu.Unlock()
	return w.handle2(), nil
}

func (h *fleetHarness) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.spawned)
}

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestFleetRoundRobinAndRespawn(t *testing.T) {
	h := &fleetHarness{}
	f, err := NewFleet(FleetOptions{
		Addr: "127.0.0.1:0", Workers: 2, DrainGrace: time.Millisecond, Spawn: h.spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	defer f.Drain(context.Background())

	// Both workers must see traffic (round-robin).
	for i := 0; i < 6; i++ {
		if st, _ := get(t, base, "/v1/anything"); st != 200 {
			t.Fatalf("request %d: status %d", i, st)
		}
	}
	if h.spawned[0].hits.Load() == 0 || h.spawned[1].hits.Load() == 0 {
		t.Fatalf("round-robin skipped a worker: hits=%d,%d",
			h.spawned[0].hits.Load(), h.spawned[1].hits.Load())
	}

	// /healthz is answered by the supervisor itself.
	if st, body := get(t, base, "/healthz"); st != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", st, body)
	}

	// Kill worker 0: the fleet keeps serving from worker 1 and respawns
	// a replacement.
	h.spawned[0].die()
	deadline := time.Now().Add(5 * time.Second)
	for h.count() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if h.count() < 3 {
		t.Fatal("dead worker was not respawned")
	}
	for i := 0; i < 4; i++ {
		if st, _ := get(t, base, "/v1/anything"); st != 200 {
			t.Fatalf("post-respawn request %d: status %d", i, st)
		}
	}
	if h.spawned[2].hits.Load() == 0 {
		t.Fatal("respawned worker got no traffic")
	}
}

func TestFleetDrainRejectsTyped(t *testing.T) {
	h := &fleetHarness{}
	f, err := NewFleet(FleetOptions{
		Addr: "127.0.0.1:0", Workers: 1, DrainGrace: 300 * time.Millisecond, Spawn: h.spawn,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	drained := make(chan error, 1)
	go func() { drained <- f.Drain(context.Background()) }()
	// During the grace window requests get the typed draining error.
	var sawDraining bool
	for i := 0; i < 20 && !sawDraining; i++ {
		st, body := get(t, base, "/v1/anything")
		var env struct {
			Error *struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if st == 503 && json.Unmarshal([]byte(body), &env) == nil &&
			env.Error != nil && env.Error.Code == "draining" {
			sawDraining = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("no typed draining rejection observed during the grace window")
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The worker must have been stopped, not respawned.
	if !h.spawned[0].stopped.Load() {
		t.Fatal("worker not stopped on drain")
	}
	if h.count() != 1 {
		t.Fatalf("drain respawned workers: %d spawns", h.count())
	}
}
