package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"debugtuner/internal/api"
	"debugtuner/internal/telemetry"
)

const testSource = `func fib(n: int): int {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}

func main() {
	print(fib(12));
}
`

func tuneBody(name string) string {
	return fmt.Sprintf(
		`{"v":1,"profile":"gcc","level":"O1","units":[{"name":%q,"source":%q}]}`,
		name, testSource)
}

func post(t *testing.T, h http.Handler, path, body string) (*http.Response, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	resp := rr.Result()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func decodeErr(t *testing.T, raw []byte) *api.Error {
	t.Helper()
	env, err := api.DecodeEnvelope(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("response is not an envelope: %v (%s)", err, raw)
	}
	if env.Error == nil {
		t.Fatalf("expected an error envelope, got kind %q", env.Kind)
	}
	return env.Error
}

// TestTuneEndToEnd drives a real tune computation through the handler
// and checks the core serving contract: a valid response envelope, and
// byte-identical bodies for repeated identical requests with the second
// served from the response cache.
func TestTuneEndToEnd(t *testing.T) {
	if telemetry.Active() == nil {
		telemetry.Enable()
	}
	h := New(Options{}).Handler()
	resp1, raw1 := post(t, h, "/v1/tune", tuneBody("fib"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: HTTP %d: %s", resp1.StatusCode, raw1)
	}
	env, err := api.DecodeEnvelope(bytes.NewReader(raw1))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != "tune" || env.Tune == nil {
		t.Fatalf("envelope kind %q, want tune payload", env.Kind)
	}
	if got := env.Tune.Subjects; len(got) != 1 || got[0] != "fib" {
		t.Errorf("subjects %v, want [fib]", got)
	}
	if len(env.Tune.Ranking) == 0 || len(env.Tune.Configs) == 0 {
		t.Errorf("tune result missing ranking/configs: %+v", env.Tune)
	}

	hit0 := telemetry.Active().Counter("tunerd.cache.hit")
	resp2, raw2 := post(t, h, "/v1/tune", tuneBody("fib"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: HTTP %d", resp2.StatusCode)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Error("identical requests returned different bytes")
	}
	if got := telemetry.Active().Counter("tunerd.cache.hit"); got != hit0+1 {
		t.Errorf("cache hits %d, want %d (second identical request must hit)", got, hit0+1)
	}

	// Whitespace and field-order variants normalize onto the same cache
	// entry and therefore the same bytes.
	variant := `{
  "units": [{"source": ` + fmt.Sprintf("%q", testSource) + `, "name": "fib"}],
  "level": "O1",
  "profile": "gcc",
  "v": 1
}`
	_, raw3 := post(t, h, "/v1/tune", variant)
	if !bytes.Equal(raw1, raw3) {
		t.Error("reordered-field request returned different bytes")
	}
}

// TestSingleFlight fires identical concurrent requests and checks they
// coalesce onto one computation.
func TestSingleFlight(t *testing.T) {
	if telemetry.Active() == nil {
		telemetry.Enable()
	}
	h := New(Options{}).Handler()
	miss0 := telemetry.Active().Counter("tunerd.cache.miss")
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/tune",
				strings.NewReader(tuneBody("flight")))
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			bodies[i] = rr.Body.Bytes()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("concurrent identical requests diverged at %d", i)
		}
	}
	if got := telemetry.Active().Counter("tunerd.cache.miss") - miss0; got != 1 {
		t.Errorf("%d computations for %d identical concurrent requests, want 1", got, n)
	}
}

// TestDeterministicAcrossServers locks the acceptance property that
// response bytes do not depend on server instance or cache state: a
// fresh server (cold cache) and a warmed one agree byte for byte.
func TestDeterministicAcrossServers(t *testing.T) {
	_, a := post(t, New(Options{}).Handler(), "/v1/tune", tuneBody("det"))
	_, b := post(t, New(Options{}).Handler(), "/v1/tune", tuneBody("det"))
	if !bytes.Equal(a, b) {
		t.Error("two fresh servers returned different bytes for one request")
	}
}

func TestTypedErrors(t *testing.T) {
	h := New(Options{}).Handler()
	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed", "/v1/tune", `{not json`, 400, api.CodeBadRequest},
		{"unknown field", "/v1/tune", `{"v":1,"bogus":1}`, 400, api.CodeBadRequest},
		{"wrong version", "/v1/tune", `{"v":9,"profile":"gcc","level":"O1","units":[{"name":"a","source":"x"}]}`, 400, api.CodeUnsupportedVersion},
		{"bad profile", "/v1/tune", `{"v":1,"profile":"tcc","level":"O1","units":[{"name":"a","source":"x"}]}`, 400, api.CodeInvalidArgument},
		{"no units", "/v1/report", `{"v":1,"units":[]}`, 400, api.CodeInvalidArgument},
		{"compile error", "/v1/tune", `{"v":1,"profile":"gcc","level":"O1","units":[{"name":"a","source":"not minic"}]}`, 400, api.CodeCompileError},
		{"bad matrix", "/v1/report", fmt.Sprintf(`{"v":1,"configs":"nope-O9","units":[{"name":"a","source":%q}]}`, testSource), 400, api.CodeInvalidArgument},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := post(t, h, tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d (%s)", resp.StatusCode, tc.status, raw)
			}
			if aerr := decodeErr(t, raw); aerr.Code != tc.code {
				t.Errorf("code %q, want %q", aerr.Code, tc.code)
			}
		})
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/tune", nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 400 {
		t.Errorf("GET on POST endpoint: HTTP %d, want 400", rr.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/nope", nil)
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != 404 {
		t.Errorf("unknown endpoint: HTTP %d, want 404", rr.Code)
	}
}

// TestAdmissionControl exercises the slot/queue accounting directly:
// the queue bound rejects, the semaphore serializes, and release
// restores capacity.
func TestAdmissionControl(t *testing.T) {
	s := New(Options{MaxInflight: 1, MaxQueue: 1})
	if err := s.admit(); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := s.admit(); err == nil {
		t.Fatal("second admit beyond the queue bound succeeded")
	} else if _, ok := err.(overloadedErr); !ok {
		t.Fatalf("rejection is %T, want overloadedErr", err)
	}
	s.release()
	if err := s.admit(); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	s.release()
}

// TestOverloadNotCached locks the hazard the Uncacheable marker exists
// for: an admission rejection must not become the pinned forever-answer
// for that request body.
func TestOverloadNotCached(t *testing.T) {
	s := New(Options{MaxInflight: 1, MaxQueue: 1})
	// Occupy the only queue slot so the request is rejected.
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	resp, raw := post(t, h, "/v1/tune", tuneBody("ovl"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded request: HTTP %d (%s)", resp.StatusCode, raw)
	}
	if aerr := decodeErr(t, raw); aerr.Code != api.CodeOverloaded {
		t.Fatalf("code %q, want %q", aerr.Code, api.CodeOverloaded)
	}
	s.release()
	resp2, raw2 := post(t, h, "/v1/tune", tuneBody("ovl"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("retry after overload: HTTP %d (%s) — overload was cached", resp2.StatusCode, raw2)
	}
}

// TestPanicQuarantine: a compute panic becomes a typed 500, does not
// kill the process, and is not pinned in the response cache.
func TestPanicQuarantine(t *testing.T) {
	s := New(Options{})
	calls := 0
	boom := func() (*api.Envelope, error) {
		calls++
		if calls == 1 {
			panic("synthetic cell failure")
		}
		return &api.Envelope{Kind: "tune", Tune: &api.TuneResult{Profile: "gcc"}}, nil
	}
	_, aerr := s.cached("tune", map[string]string{"k": "panic-test"}, boom)
	if aerr == nil || aerr.Code != api.CodeInternal {
		t.Fatalf("panic surfaced as %+v, want internal error", aerr)
	}
	cr, aerr := s.cached("tune", map[string]string{"k": "panic-test"}, boom)
	if aerr != nil {
		t.Fatalf("retry after panic: %v — panic was cached", aerr)
	}
	if cr.Status != http.StatusOK {
		t.Fatalf("retry status %d", cr.Status)
	}
}

// TestDrain locks the graceful-shutdown contract: after Drain begins,
// new requests get the typed 503 "draining" error while the listener
// stays up for the grace window, and Drain returns cleanly.
func TestDrain(t *testing.T) {
	s := New(Options{DrainGrace: 200 * time.Millisecond})
	addr, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	c := api.NewClient(addr)
	if err := c.Healthz(); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Within the grace window the listener must answer with the typed
	// draining error rather than refusing connections.
	deadline := time.Now().Add(150 * time.Millisecond)
	saw503 := false
	for time.Now().Before(deadline) {
		_, _, err := c.Tune(&api.TuneRequest{
			Profile: "gcc", Level: "O1",
			Units: []api.Unit{{Name: "d", Source: testSource}},
		})
		if aerr, ok := err.(*api.Error); ok && aerr.Code == api.CodeDraining {
			saw503 = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !saw503 {
		t.Error("no typed draining rejection observed during the grace window")
	}
	if err := <-drained; err != nil {
		t.Errorf("drain: %v", err)
	}
}
