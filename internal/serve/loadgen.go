package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"debugtuner/internal/api"
)

// LoadOptions configures a synthetic load run against a live tunerd.
type LoadOptions struct {
	// Addr is the server base URL or host:port.
	Addr string
	// Requests is the total request count.
	Requests int
	// Concurrency is the number of in-flight client workers.
	Concurrency int
	// Distinct is how many distinct request bodies the run cycles
	// through; Requests/Distinct is the expected duplication factor the
	// server's cache and single-flight should absorb.
	Distinct int
	// Profile and Level parameterize the generated tune requests.
	Profile string
	Level   string
}

// synthSource renders the i-th synthetic MiniC unit. The programs
// differ in real constants (loop trip counts, seeds) so distinct bodies
// produce distinct measurement matrices, but stay small enough that a
// load run measures the serving layer, not the compiler.
func synthSource(i int) string {
	trips := 40 + (i%7)*11
	seed := 1 + i%13
	return fmt.Sprintf(`var acc: int = 0;

func mix(x: int): int {
    var h: int = x * 2654435761;
    h = h ^ (h / 1024);
    return h;
}

func work(n: int, seed: int): int {
    var s: int = seed;
    var i: int = 0;
    while (i < n) {
        s = mix(s + i);
        if (s < 0) {
            s = 0 - s;
        }
        i = i + 1;
    }
    return s;
}

func main() {
    acc = work(%d, %d);
    print(acc);
}
`, trips, seed)
}

// loadUnit builds the i-th distinct request body.
func loadUnit(opts LoadOptions, i int) *api.TuneRequest {
	return &api.TuneRequest{
		V:       api.Version,
		Profile: opts.Profile,
		Level:   opts.Level,
		Units: []api.Unit{
			{Name: fmt.Sprintf("synth%03d", i), Source: synthSource(i)},
		},
	}
}

// RunLoad fires opts.Requests tune requests at the server from
// opts.Concurrency workers, cycling over opts.Distinct request bodies,
// and reports throughput, latency percentiles, server cache behavior,
// and quarantine leakage.
func RunLoad(opts LoadOptions) (*api.LoadReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 1000
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 100
	}
	if opts.Distinct <= 0 {
		opts.Distinct = 8
	}
	if opts.Profile == "" {
		opts.Profile = "gcc"
	}
	if opts.Level == "" {
		opts.Level = "O2"
	}

	c := api.NewClient(opts.Addr)
	c.HTTP = &http.Client{
		Timeout: 10 * time.Minute,
		Transport: &http.Transport{
			MaxIdleConns:        opts.Concurrency,
			MaxIdleConnsPerHost: opts.Concurrency,
		},
	}
	if err := c.Healthz(); err != nil {
		return nil, fmt.Errorf("server not healthy: %w", err)
	}
	before, err := c.Counters()
	if err != nil {
		return nil, err
	}
	quarBefore, _, err := c.Quarantine()
	if err != nil {
		return nil, err
	}

	bodies := make([]*api.TuneRequest, opts.Distinct)
	for i := range bodies {
		bodies[i] = loadUnit(opts, i)
	}

	var (
		next      atomic.Int64
		errCount  atomic.Int64
		latencies = make([]time.Duration, opts.Requests)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= opts.Requests {
					return
				}
				t0 := time.Now()
				_, _, err := c.Tune(bodies[i%opts.Distinct])
				latencies[i] = time.Since(t0)
				if err != nil {
					errCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := c.Counters()
	if err != nil {
		return nil, err
	}
	quarAfter, _, err := c.Quarantine()
	if err != nil {
		return nil, err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(latencies)-1))
		return float64(latencies[idx]) / float64(time.Millisecond)
	}
	delta := func(name string) int64 { return after[name] - before[name] }

	return &api.LoadReport{
		Requests:       opts.Requests,
		Concurrency:    opts.Concurrency,
		Distinct:       opts.Distinct,
		Errors:         int(errCount.Load()),
		DurationSec:    wall.Seconds(),
		Throughput:     float64(opts.Requests) / wall.Seconds(),
		P50ms:          pct(0.50),
		P95ms:          pct(0.95),
		P99ms:          pct(0.99),
		CacheHits:      delta("tunerd.cache.hit"),
		CacheCoalesced: delta("tunerd.cache.coalesced"),
		CacheMisses:    delta("tunerd.cache.miss"),
		Quarantined:    len(quarAfter) - len(quarBefore),
	}, nil
}
