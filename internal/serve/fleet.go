package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"debugtuner/internal/api"
	"debugtuner/internal/telemetry"
)

// Fleet is the multi-process tunerd supervisor: it owns the listen
// address and fronts N worker processes with the admission layer, so a
// panicking or OOM-killed worker costs in-flight requests on that
// worker only — the supervisor respawns it and keeps serving. Requests
// are admitted (bounded queue, typed 503 beyond it) and then proxied
// round-robin to a live worker; worker responses are byte-identical
// across workers (the serving contract), so routing never changes
// response bytes. Workers share the persistent disk cache (and the
// lease-journal work directory when one is configured), which is what
// makes a fleet of processes behave like one warm server.
type Fleet struct {
	opts FleetOptions

	mu      sync.Mutex
	workers []*WorkerHandle // index-stable slots; nil while respawning

	rr       atomic.Uint64
	draining atomic.Bool
	inflight sync.WaitGroup
	admitted atomic.Int64

	proxy   *httputil.ReverseProxy
	httpSrv *http.Server
	ln      net.Listener
}

// WorkerHandle is one live worker process the fleet proxies to.
type WorkerHandle struct {
	// URL is the worker's base URL.
	URL *url.URL
	// Stop asks the worker to exit gracefully (bounded by ctx).
	Stop func(ctx context.Context) error
	// Done is closed when the worker process exits, however it exits.
	Done <-chan struct{}
}

// FleetOptions configures the supervisor.
type FleetOptions struct {
	// Addr is the supervisor's listen address ("127.0.0.1:0" = ephemeral).
	Addr string
	// Workers is the fleet size.
	Workers int
	// MaxQueue bounds concurrently proxied requests; beyond it new
	// requests get the typed "overloaded" 503. 0 means 4096. (Per-worker
	// compute concurrency is bounded by each worker's own admission.)
	MaxQueue int
	// DrainGrace is the 503 window after Drain begins (0 = 500ms).
	DrainGrace time.Duration
	// Spawn starts (or restarts) worker i. The fleet calls it for
	// 0..Workers-1 at Start and again whenever a worker dies while not
	// draining.
	Spawn func(i int) (*WorkerHandle, error)
}

func (o FleetOptions) maxQueue() int {
	if o.MaxQueue > 0 {
		return o.MaxQueue
	}
	return 4096
}

func (o FleetOptions) drainGrace() time.Duration {
	if o.DrainGrace > 0 {
		return o.DrainGrace
	}
	return 500 * time.Millisecond
}

type fleetTargetKey struct{}

// NewFleet returns an unstarted fleet.
func NewFleet(opts FleetOptions) (*Fleet, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("serve: fleet needs at least 1 worker")
	}
	if opts.Spawn == nil {
		return nil, fmt.Errorf("serve: fleet needs a Spawn function")
	}
	f := &Fleet{opts: opts, workers: make([]*WorkerHandle, opts.Workers)}
	f.proxy = &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(pr.In.Context().Value(fleetTargetKey{}).(*url.URL))
		},
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			telemetry.Add("fleet.proxy_errors", 1)
			writeError(w, &api.Error{Code: api.CodeInternal,
				Msg: fmt.Sprintf("worker unavailable: %v", err)})
		},
	}
	return f, nil
}

// Start spawns the workers and begins serving.
func (f *Fleet) Start() (string, error) {
	for i := 0; i < f.opts.Workers; i++ {
		w, err := f.opts.Spawn(i)
		if err != nil {
			f.stopAll(context.Background())
			return "", fmt.Errorf("serve: spawn worker %d: %w", i, err)
		}
		f.adopt(i, w)
	}
	ln, err := net.Listen("tcp", f.opts.Addr)
	if err != nil {
		f.stopAll(context.Background())
		return "", err
	}
	f.ln = ln
	f.httpSrv = &http.Server{Handler: f.Handler(), ReadHeaderTimeout: 30 * time.Second}
	go f.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// adopt installs worker w in slot i and watches for its death: a worker
// that exits while the fleet is not draining is respawned (with a small
// pause so a crash-looping worker cannot spin the supervisor).
func (f *Fleet) adopt(i int, w *WorkerHandle) {
	f.mu.Lock()
	f.workers[i] = w
	f.mu.Unlock()
	go func() {
		<-w.Done
		f.mu.Lock()
		if f.workers[i] == w {
			f.workers[i] = nil
		}
		f.mu.Unlock()
		if f.draining.Load() {
			return
		}
		telemetry.Add("fleet.worker_deaths", 1)
		time.Sleep(100 * time.Millisecond)
		if f.draining.Load() {
			return
		}
		nw, err := f.opts.Spawn(i)
		if err != nil {
			telemetry.Add("fleet.respawn_failures", 1)
			return
		}
		telemetry.Add("fleet.respawns", 1)
		f.adopt(i, nw)
	}()
}

// pick returns the next live worker round-robin, or nil when none is up.
func (f *Fleet) pick() *WorkerHandle {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.workers)
	for t := 0; t < n; t++ {
		w := f.workers[int(f.rr.Add(1))%n]
		if w != nil {
			return w
		}
	}
	return nil
}

// Handler returns the supervisor's routing handler: /healthz is
// answered locally, everything else is admitted and proxied.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		f.inflight.Add(1)
		defer f.inflight.Done()
		telemetry.Add("fleet.requests", 1)
		if f.draining.Load() {
			telemetry.Add("fleet.drained503", 1)
			writeError(w, &api.Error{Code: api.CodeDraining, Msg: "server is draining"})
			return
		}
		if n := f.admitted.Add(1); n > int64(f.opts.maxQueue()) {
			f.admitted.Add(-1)
			telemetry.Add("fleet.rejected", 1)
			writeError(w, &api.Error{Code: api.CodeOverloaded, Msg: "admission queue full"})
			return
		}
		defer f.admitted.Add(-1)
		target := f.pick()
		if target == nil {
			telemetry.Add("fleet.no_worker", 1)
			writeError(w, &api.Error{Code: api.CodeOverloaded, Msg: "no live worker"})
			return
		}
		r = r.WithContext(context.WithValue(r.Context(), fleetTargetKey{}, target.URL))
		f.proxy.ServeHTTP(w, r)
	})
	return mux
}

// stopAll stops every live worker in parallel.
func (f *Fleet) stopAll(ctx context.Context) {
	f.mu.Lock()
	ws := append([]*WorkerHandle(nil), f.workers...)
	f.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range ws {
		if w == nil {
			continue
		}
		wg.Add(1)
		go func(w *WorkerHandle) {
			defer wg.Done()
			w.Stop(ctx)
		}(w)
	}
	wg.Wait()
}

// Drain shuts the fleet down gracefully: new requests get the typed 503
// "draining" error, in-flight proxied requests finish, the workers are
// stopped, and the listener stays up for the grace window before
// closing. The context bounds the total wait.
func (f *Fleet) Drain(ctx context.Context) error {
	if !f.draining.CompareAndSwap(false, true) {
		return nil
	}
	start := time.Now()
	done := make(chan struct{})
	go func() {
		f.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	f.stopAll(ctx)
	if rem := f.opts.drainGrace() - time.Since(start); rem > 0 {
		t := time.NewTimer(rem)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	if f.httpSrv != nil {
		return f.httpSrv.Close()
	}
	return nil
}
