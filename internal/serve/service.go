// Package serve is the DebugTuner service: the compute layer that turns
// api requests into api results using the tuner/difftest/staticdbg
// engines, and the HTTP layer (server.go) that runs it as a long-lived
// sharded daemon — cmd/tunerd.
//
// The design inverts the batch harness: instead of one process running
// one matrix and exiting, the evalcache (memory + disk), the worker
// pool, and the resilience executor become shared serving
// infrastructure. Each request's (program × pass) matrix fans out over
// the process-wide worker pool; every measurement cell is content-
// addressed, so requests overlapping in (source, config) space reuse
// each other's work; and each cell runs under the installed resilience
// executor, so a panicking or stalling cell quarantines instead of
// killing the server.
package serve

import (
	"context"
	"fmt"
	"sort"

	"debugtuner/internal/api"
	"debugtuner/internal/difftest"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/tuner"
	"debugtuner/internal/vm"
)

// DefaultBudget is the per-run VM step budget of service measurements.
const DefaultBudget = 1 << 26

// Service computes API results. It is stateless apart from the global
// caches the underlying engines already share; one Service serves all
// requests concurrently.
type Service struct {
	// Budget is the per-run VM step budget (0 = DefaultBudget).
	Budget int64
}

func (sv *Service) budget() int64 {
	if sv.Budget > 0 {
		return sv.Budget
	}
	return DefaultBudget
}

// loadPrograms front-ends every unit. A front-end failure is a typed
// compile_error naming the unit.
func loadPrograms(units []api.Unit) ([]*tuner.Program, *api.Error) {
	progs := make([]*tuner.Program, 0, len(units))
	for _, u := range units {
		p, err := tuner.LoadProgram(u.Name, []byte(u.Source), nil)
		if err != nil {
			return nil, &api.Error{Code: api.CodeCompileError, Msg: err.Error()}
		}
		progs = append(progs, p)
	}
	return progs, nil
}

// liveSubset filters programs whose reference measurement the analysis
// quarantined; their products are not computable at this level.
func liveSubset(progs []*tuner.Program, quarantined []string) []*tuner.Program {
	if len(quarantined) == 0 {
		return progs
	}
	dead := make(map[string]bool, len(quarantined))
	for _, n := range quarantined {
		dead[n] = true
	}
	var live []*tuner.Program
	for _, p := range progs {
		if !dead[p.Name] {
			live = append(live, p)
		}
	}
	return live
}

// meanProduct averages the hybrid product metric over the programs.
// A quarantined measurement inside the mean returns a quarantine error
// (the caller decides whether that voids the whole point).
func meanProduct(progs []*tuner.Program, cfg pipeline.Config) (float64, error) {
	if len(progs) == 0 {
		return 0, fmt.Errorf("no live programs to measure")
	}
	sum := 0.0
	for _, p := range progs {
		m, err := p.Product(cfg)
		if err != nil {
			return 0, err
		}
		sum += m
	}
	return sum / float64(len(progs)), nil
}

// Tune runs the DebugTuner analysis for the request: pass ranking at
// (profile, level) across the submitted units, plus the Ox-dy
// configuration family scored by suite-average product metric.
func (sv *Service) Tune(req *api.TuneRequest) (*api.TuneResult, error) {
	progs, aerr := loadPrograms(req.Units)
	if aerr != nil {
		return nil, aerr
	}
	for _, p := range progs {
		p.Budget = sv.budget()
	}
	profile := pipeline.Profile(req.Profile)
	la, err := tuner.AnalyzeLevel(progs, profile, req.Level)
	if err != nil {
		return nil, err
	}
	live := liveSubset(progs, la.QuarantinedPrograms)

	res := &api.TuneResult{
		Profile:             req.Profile,
		Level:               req.Level,
		Positive:            la.Positive,
		Neutral:             la.Neutral,
		Negative:            la.Negative,
		Ranking:             api.RankedPassesFrom(la.Ranking),
		QuarantinedSubjects: append([]string(nil), la.QuarantinedPrograms...),
		QuarantinedCells:    la.QuarantinedCells,
	}
	for _, u := range req.Units {
		res.Subjects = append(res.Subjects, u.Name)
	}

	refCfg := pipeline.MustConfig(profile, req.Level)
	ref, err := meanProduct(live, refCfg)
	if err != nil {
		return nil, err
	}
	res.Reference = api.TunedConfig{Name: req.Level, Product: ref}
	for _, cfg := range la.Configs(req.Dy) {
		avg, err := meanProduct(live, cfg)
		if err != nil {
			return nil, err
		}
		delta := 0.0
		if ref > 0 {
			delta = 100 * (avg - ref) / ref
		}
		res.Configs = append(res.Configs, api.TunedConfig{
			Name:     cfg.Name(),
			Disabled: api.SortedNames(cfg.Disabled),
			Product:  avg,
			DeltaPct: delta,
		})
	}
	return res, nil
}

// entryOf picks the function a timing run calls: main when present,
// else the first function of the program (deterministic: IR function
// order is source order).
func entryOf(p *tuner.Program) string {
	for _, f := range p.IR0.Funcs {
		if f.Name == "main" {
			return "main"
		}
	}
	if len(p.IR0.Funcs) > 0 {
		return p.IR0.Funcs[0].Name
	}
	return "main"
}

// cycles measures one (program, config) timing run on the cycle-exact
// VM, as an ephemeral resilience cell so a panicking build quarantines
// instead of unwinding through the server.
func (sv *Service) cycles(p *tuner.Program, cfg pipeline.Config) (int64, error) {
	key := fmt.Sprintf("serve.cycles|%s|%s", p.CellKey(cfg.Name()), cfg.Name())
	return resilience.RunEphemeral(resilience.Active(), context.Background(), key,
		func(context.Context) (int64, error) {
			bin := pipeline.Build(p.IR0, cfg)
			m := vm.New(bin)
			m.StepBudget = sv.budget()
			if _, err := m.Call(entryOf(p)); err != nil {
				return 0, err
			}
			return m.Cycles, nil
		})
}

// Pareto evaluates every plain level of the profile plus the request's
// Ox-dy family on both axes — suite-mean product metric against
// suite-geomean speedup over O0 — and returns the scatter with front
// membership marked.
func (sv *Service) Pareto(req *api.TuneRequest) (*api.ParetoResult, error) {
	progs, aerr := loadPrograms(req.Units)
	if aerr != nil {
		return nil, aerr
	}
	for _, p := range progs {
		p.Budget = sv.budget()
	}
	profile := pipeline.Profile(req.Profile)
	la, err := tuner.AnalyzeLevel(progs, profile, req.Level)
	if err != nil {
		return nil, err
	}
	live := liveSubset(progs, la.QuarantinedPrograms)

	base := make([]int64, len(live))
	baseCfg := pipeline.MustConfig(profile, "O0")
	for i, p := range live {
		c, err := sv.cycles(p, baseCfg)
		if err != nil {
			return nil, err
		}
		if c <= 0 {
			c = 1
		}
		base[i] = c
	}

	var cfgs []pipeline.Config
	for _, l := range pipeline.Levels(profile) {
		cfgs = append(cfgs, pipeline.MustConfig(profile, l))
	}
	cfgs = append(cfgs, la.Configs(req.Dy)...)

	var pts []tuner.Point
	for _, cfg := range cfgs {
		pt, err := sv.paretoPoint(live, base, cfg)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return api.ParetoResultFrom(req.Profile, req.Level, pts), nil
}

// paretoPoint measures one configuration on both axes. A quarantined
// measurement anywhere marks the whole point as a gap rather than
// plotting coordinates with a silently-shifted denominator.
func (sv *Service) paretoPoint(live []*tuner.Program, base []int64, cfg pipeline.Config) (tuner.Point, error) {
	label := cfg.Name()
	debug, err := meanProduct(live, cfg)
	if resilience.IsQuarantined(err) {
		return tuner.Point{Label: label, Quarantined: true}, nil
	}
	if err != nil {
		return tuner.Point{}, err
	}
	var ratios []float64
	for i, p := range live {
		c, err := sv.cycles(p, cfg)
		if resilience.IsQuarantined(err) {
			return tuner.Point{Label: label, Quarantined: true}, nil
		}
		if err != nil {
			return tuner.Point{}, err
		}
		if c <= 0 {
			c = 1
		}
		ratios = append(ratios, float64(base[i])/float64(c))
	}
	return tuner.Point{Label: label, Debug: debug, Speedup: metrics.GeoMean(ratios)}, nil
}

// Report runs the debuggability report: the difftest behavior/invariant
// oracle over the requested configuration matrix, plus the staticdbg
// verify-each analysis of every (unit, config) cell.
func (sv *Service) Report(req *api.ReportRequest) (*api.DebugReport, error) {
	cfgs, err := difftest.ParseMatrix(req.Configs)
	if err != nil {
		return nil, &api.Error{Code: api.CodeInvalidArgument,
			Msg: fmt.Sprintf("configs: %v", err)}
	}
	rep := &api.DebugReport{}
	for _, cfg := range cfgs {
		rep.Configs = append(rep.Configs, cfg.Name())
	}
	oracle := difftest.NewOracle(cfgs)
	oracle.Budget = sv.budget()

	for _, u := range req.Units {
		rep.Subjects = append(rep.Subjects, u.Name)
		subj := difftest.SourceSubject(u.Name, []byte(u.Source))
		findings, err := oracle.CheckSubject(subj)
		if err != nil {
			return nil, &api.Error{Code: api.CodeCompileError,
				Msg: fmt.Sprintf("%s: %v", u.Name, err)}
		}
		for _, f := range api.FindingsFrom(findings) {
			rep.Findings = append(rep.Findings, f)
			switch f.Kind {
			case difftest.KindBehavior, difftest.KindReference:
				rep.Mismatches++
			case difftest.KindInvariant:
				rep.Violations++
			case difftest.KindQuarantine:
				rep.Quarantined = append(rep.Quarantined, api.QuarantineRecord{
					Key:  f.Subject + "|" + f.Config,
					Kind: difftest.KindQuarantine, Attempts: 1, Err: f.Detail,
				})
			}
		}

		info, err := pipeline.Frontend(u.Name+".mc", []byte(u.Source))
		if err != nil {
			return nil, &api.Error{Code: api.CodeCompileError,
				Msg: fmt.Sprintf("%s: %v", u.Name, err)}
		}
		ir0, err := pipeline.BuildIR(info)
		if err != nil {
			return nil, &api.Error{Code: api.CodeCompileError,
				Msg: fmt.Sprintf("%s: %v", u.Name, err)}
		}
		for _, cfg := range cfgs {
			vrep := pipeline.BuildVerified(ir0, cfg, false)
			viols := staticdbg.Strings(vrep.Violations())
			verrs := vrep.VerifyErrs()
			rep.Static = append(rep.Static, api.StaticStat{
				Subject:    u.Name,
				Config:     cfg.Name(),
				BaseLines:  vrep.Total.Lines,
				BaseVars:   vrep.Total.Vars,
				FinalLines: vrep.Final.Lines,
				FinalVars:  vrep.Final.Vars,
				Violations: len(viols) + len(verrs),
			})
			for _, v := range viols {
				rep.Findings = append(rep.Findings, api.Finding{
					Subject: u.Name, Config: cfg.Name(), Kind: "static", Detail: v,
				})
				rep.Violations++
			}
			for _, e := range verrs {
				rep.Findings = append(rep.Findings, api.Finding{
					Subject: u.Name, Config: cfg.Name(), Kind: "static",
					Detail: "ir.Verify: " + e,
				})
				rep.Violations++
			}
		}
	}
	sort.SliceStable(rep.Quarantined, func(i, j int) bool {
		return rep.Quarantined[i].Key < rep.Quarantined[j].Key
	})
	return rep, nil
}
