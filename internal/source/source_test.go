package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPosForBasics(t *testing.T) {
	f := NewFile("t", []byte("ab\ncd\n\nxyz"))
	cases := []struct {
		off       int
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 1, 3}, // '\n' belongs to line 1
		{3, 2, 1}, {5, 2, 3},
		{6, 3, 1},
		{7, 4, 1}, {9, 4, 3},
	}
	for _, c := range cases {
		p := f.PosFor(c.off)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("PosFor(%d) = %v, want %d:%d", c.off, p, c.line, c.col)
		}
	}
	if n := f.NumLines(); n != 4 {
		t.Errorf("NumLines = %d, want 4", n)
	}
}

func TestLineText(t *testing.T) {
	f := NewFile("t", []byte("first\nsecond\nthird"))
	for i, want := range []string{"first", "second", "third"} {
		if got := f.LineText(i + 1); got != want {
			t.Errorf("LineText(%d) = %q, want %q", i+1, got, want)
		}
	}
	if f.LineText(0) != "" || f.LineText(99) != "" {
		t.Error("out-of-range lines should be empty")
	}
}

// TestPosForRoundTrip (property): the position of every offset lands on
// a line whose text actually contains that offset's byte.
func TestPosForRoundTrip(t *testing.T) {
	check := func(raw []byte) bool {
		// Normalize to printable + newlines so LineText comparison holds.
		content := make([]byte, len(raw))
		for i, b := range raw {
			if b%7 == 0 {
				content[i] = '\n'
			} else {
				content[i] = 'a' + b%26
			}
		}
		f := NewFile("q", content)
		for off := 0; off < len(content); off++ {
			p := f.PosFor(off)
			if !p.IsValid() {
				return false
			}
			if content[off] == '\n' {
				continue // the newline terminates its line
			}
			line := f.LineText(p.Line)
			if p.Col-1 >= len(line)+1 {
				return false
			}
			if p.Col-1 < len(line) && line[p.Col-1] != content[off] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Start: Pos{Line: 2, Col: 3}, End: Pos{Line: 4, Col: 1}}
	if !r.Contains(Pos{Line: 2, Col: 3}) || !r.Contains(Pos{Line: 3, Col: 99}) {
		t.Error("range should contain start and interior")
	}
	if r.Contains(Pos{Line: 4, Col: 1}) || r.Contains(Pos{Line: 2, Col: 2}) {
		t.Error("range should exclude end and points before start")
	}
}

func TestErrorList(t *testing.T) {
	var l ErrorList
	if l.Err() != nil {
		t.Error("empty list should be nil error")
	}
	l = append(l, &Error{File: "f", Pos: Pos{Line: 1, Col: 2}, Msg: "boom"})
	if !strings.Contains(l.Error(), "f:1:2: boom") {
		t.Errorf("unexpected message %q", l.Error())
	}
	l = append(l, &Error{File: "f", Pos: Pos{Line: 3, Col: 1}, Msg: "x"})
	if !strings.Contains(l.Error(), "1 more error") {
		t.Errorf("expected summary, got %q", l.Error())
	}
}
