// Package source provides source-file bookkeeping shared by the MiniC
// front end: file contents, byte-offset to line/column mapping, and
// position/range types that the lexer, parser, semantic analyzer, and
// debug-information machinery all agree on.
//
// Lines and columns are 1-based, as in every compiler diagnostic and in
// DWARF line tables. A zero line means "no source position" (an artificial
// instruction), mirroring how LLVM drops debug locations when moving code.
package source

import (
	"fmt"
	"sort"
)

// Pos identifies a point in a source file.
type Pos struct {
	Line int // 1-based; 0 means unknown/artificial
	Col  int // 1-based; 0 means unknown
}

// IsValid reports whether the position refers to a real source point.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Before reports whether p is strictly before q in source order.
func (p Pos) Before(q Pos) bool {
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Range is a half-open source region [Start, End).
type Range struct {
	Start Pos
	End   Pos
}

// Contains reports whether position p falls within the range.
func (r Range) Contains(p Pos) bool {
	return !p.Before(r.Start) && p.Before(r.End)
}

// File holds one MiniC source file and its line index.
type File struct {
	Name    string
	Content []byte
	// lineStart[i] is the byte offset of the first byte of line i+1.
	lineStart []int
}

// NewFile builds a File and its line-offset index.
func NewFile(name string, content []byte) *File {
	f := &File{Name: name, Content: content}
	f.lineStart = append(f.lineStart, 0)
	for i, b := range content {
		if b == '\n' {
			f.lineStart = append(f.lineStart, i+1)
		}
	}
	return f
}

// NumLines returns the number of lines in the file. A trailing newline does
// not create an extra empty line.
func (f *File) NumLines() int {
	n := len(f.lineStart)
	if n > 1 && f.lineStart[n-1] == len(f.Content) {
		return n - 1
	}
	return n
}

// PosFor converts a byte offset into a line/column position.
func (f *File) PosFor(offset int) Pos {
	if offset < 0 {
		return Pos{}
	}
	if offset > len(f.Content) {
		offset = len(f.Content)
	}
	// Find the last lineStart <= offset.
	i := sort.Search(len(f.lineStart), func(i int) bool {
		return f.lineStart[i] > offset
	}) - 1
	return Pos{Line: i + 1, Col: offset - f.lineStart[i] + 1}
}

// LineText returns the text of the 1-based line, without the newline.
func (f *File) LineText(line int) string {
	if line < 1 || line > len(f.lineStart) {
		return ""
	}
	start := f.lineStart[line-1]
	end := len(f.Content)
	if line < len(f.lineStart) {
		end = f.lineStart[line] - 1
	}
	if end < start {
		end = start
	}
	return string(f.Content[start:end])
}

// Error is a front-end diagnostic attached to a position.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}

// ErrorList collects diagnostics; it implements error.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l[0].Error(), len(l)-1)
}

// Err returns nil when the list is empty, otherwise the list itself.
func (l ErrorList) Err() error {
	if len(l) == 0 {
		return nil
	}
	return l
}
