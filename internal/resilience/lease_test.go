package resilience

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func openWork(t *testing.T, dir, owner string, ttl time.Duration) *WorkJournal {
	t.Helper()
	w, err := OpenWork(dir, owner, ttl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func okRecord(key, val string) Record {
	return Record{Key: key, Status: StatusOK, Value: json.RawMessage(strconv.Quote(val))}
}

// TestWorkJournalClaimAndSkip is the protocol's happy path: the first
// worker to ask for a cell claims it, a peer asking afterwards waits and
// then skips with the completed record.
func TestWorkJournalClaimAndSkip(t *testing.T) {
	dir := t.TempDir()
	w1 := openWork(t, dir, "a", time.Minute)
	w2 := openWork(t, dir, "b", time.Minute)

	if _, done := w1.Lookup("cell"); done {
		t.Fatal("first lookup of a fresh cell must claim, not skip")
	}
	// w2 would block on the live lease; complete the cell first.
	if err := w1.Append(okRecord("cell", "v")); err != nil {
		t.Fatal(err)
	}
	rec, done := w2.Lookup("cell")
	if !done {
		t.Fatal("peer lookup of a completed cell must skip")
	}
	if rec.Owner != "a" || string(rec.Value) != `"v"` {
		t.Fatalf("peer saw %+v", rec)
	}
	// Same-worker re-lookup also skips.
	if _, done := w1.Lookup("cell"); !done {
		t.Fatal("own completed cell not skipped")
	}
}

// TestWorkJournalLeaseExpiry kills the owner (logically: it just never
// completes) and checks a peer re-leases after the deadline, with a
// bumped epoch.
func TestWorkJournalLeaseExpiry(t *testing.T) {
	dir := t.TempDir()
	w1 := openWork(t, dir, "dead", 80*time.Millisecond)
	w2 := openWork(t, dir, "live", time.Minute)

	if _, done := w1.Lookup("cell"); done {
		t.Fatal("fresh cell must claim")
	}
	// w1 never completes; w2 must wait out the deadline then claim.
	start := time.Now()
	if _, done := w2.Lookup("cell"); done {
		t.Fatal("expired lease must be re-claimed, not skipped")
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("peer claimed after %v, before the lease deadline", waited)
	}
	if err := w2.Append(okRecord("cell", "rescued")); err != nil {
		t.Fatal(err)
	}
	recs, err := MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Owner != "live" || recs[0].Epoch != 2 {
		t.Fatalf("merge = %+v, want one epoch-2 record owned by live", recs)
	}
}

// TestWorkJournalDuplicateOwnerRefused: two live processes with the same
// worker id would append to the same journal file; the second must fail
// fast with the typed error instead.
func TestWorkJournalDuplicateOwnerRefused(t *testing.T) {
	dir := t.TempDir()
	openWork(t, dir, "w0", time.Minute)
	if _, err := OpenWork(dir, "w0", time.Minute); !errors.Is(err, ErrJournalLive) {
		t.Fatalf("duplicate live owner: err = %v, want ErrJournalLive", err)
	}
}

// TestMergeDirPrefersOKAndTolerableCorruption: quarantine never shadows
// a completed value, and a torn tail or corrupt line in one worker's
// file must not poison the merge.
func TestMergeDirPrefersOKAndTolerableCorruption(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("worker-a.jsonl",
		`{"key":"k1","status":"quarantined","error":"boom"}`+"\n"+
			`{"key":"k2","status":"ok","value":"a2","epoch":1}`+"\n"+
			`{"key":"k3","status":"ok"`) // torn tail: kill -9 mid-append
	write("worker-b.jsonl",
		`{"key":"k1","status":"ok","value":"b1"}`+"\n"+
			"not json at all\n"+
			`{"key":"k2","status":"ok","value":"b2","epoch":2}`+"\n")
	write("lease.jsonl", `{"key":"k1","status":"leased","owner":"a","epoch":1}`+"\n")

	recs, err := MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("merge has %d records, want 2 (torn k3 dropped, leases excluded): %+v", len(recs), recs)
	}
	if recs[0].Key != "k1" || recs[0].Status != StatusOK || string(recs[0].Value) != `"b1"` {
		t.Fatalf("k1 = %+v, want OK to beat quarantined", recs[0])
	}
	if recs[1].Key != "k2" || string(recs[1].Value) != `"b2"` {
		t.Fatalf("k2 = %+v, want the higher epoch", recs[1])
	}
}

// workHelper* drive the two-process tests' re-exec, following the
// evalcache disk_test pattern.
var (
	workHelperMode = flag.String("work-helper", "", "internal: run as work journal helper (worker id)")
	workHelperDir  = flag.String("work-helper-dir", "", "internal: helper work dir")
	workHelperKeys = flag.Int("work-helper-keys", 0, "internal: key-space size")
	workHelperTTL  = flag.Duration("work-helper-ttl", time.Minute, "internal: lease ttl")
	workHelperHang = flag.Bool("work-helper-hang", false, "internal: claim all, complete 2, then hang for kill -9")
)

// TestWorkHelperProcess is re-executed as a separate OS process by the
// multi-process tests below.
func TestWorkHelperProcess(t *testing.T) {
	if *workHelperMode == "" {
		t.Skip("not in helper mode")
	}
	w, err := OpenWork(*workHelperDir, *workHelperMode, *workHelperTTL)
	if err != nil {
		t.Fatal(err)
	}
	if *workHelperHang {
		// Crash shape: lease every cell, complete only the first two, then
		// announce readiness and hang until the parent kills -9 us. The
		// remaining leases must expire and be rescued by a peer.
		for k := 0; k < *workHelperKeys; k++ {
			key := fmt.Sprintf("cell-%d", k)
			if _, done := w.Lookup(key); done {
				t.Fatalf("fresh cell %s already done", key)
			}
			if k < 2 {
				if err := w.Append(okRecord(key, "crasher:"+key)); err != nil {
					t.Fatal(err)
				}
			}
		}
		fmt.Println("CRASH_READY")
		os.Stdout.Sync()
		time.Sleep(time.Minute) // killed long before this returns
		return
	}
	computed := 0
	for k := 0; k < *workHelperKeys; k++ {
		key := fmt.Sprintf("cell-%d", k)
		rec, done := w.Lookup(key)
		if done {
			if rec.Status != StatusOK {
				t.Fatalf("peer record for %s has status %s", key, rec.Status)
			}
			continue
		}
		if err := w.Append(okRecord(key, "value-of-"+key)); err != nil {
			t.Fatal(err)
		}
		computed++
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Println("WORK_OK", *workHelperMode, "computed", computed)
}

// TestWorkJournalTwoProcesses hammers one work directory from two real
// OS processes. Every cell must be computed exactly once in total (the
// generous TTL means no lease expires, so a duplicate would be a
// protocol bug) and the merge must contain every cell exactly once.
func TestWorkJournalTwoProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	const keys = 12
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe,
				"-test.run", "TestWorkHelperProcess", "-test.v",
				"-work-helper", fmt.Sprintf("p%d", i),
				"-work-helper-dir", dir,
				"-work-helper-keys", strconv.Itoa(keys))
			out, err := cmd.CombinedOutput()
			outs[i], errs[i] = string(out), err
		}(i)
	}
	wg.Wait()
	total := 0
	for i := 0; i < 2; i++ {
		if errs[i] != nil || !strings.Contains(outs[i], "WORK_OK") {
			t.Fatalf("helper %d failed: err=%v\n%s", i, errs[i], outs[i])
		}
		_, after, _ := strings.Cut(outs[i], "computed ")
		n, err := strconv.Atoi(strings.Fields(after)[0])
		if err != nil {
			t.Fatalf("helper %d output unparseable: %s", i, outs[i])
		}
		total += n
	}
	if total != keys {
		t.Fatalf("workers computed %d cells for %d keys: lost or duplicated work", total, keys)
	}
	recs, err := MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != keys {
		t.Fatalf("merge has %d records, want %d", len(recs), keys)
	}
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("cell-%d", k)
		if recs[k].Key != key && !hasKey(recs, key) {
			t.Fatalf("cell %s missing from merge", key)
		}
	}
}

func hasKey(recs []Record, key string) bool {
	for _, r := range recs {
		if r.Key == key {
			return true
		}
	}
	return false
}

// TestWorkJournalKillNineRescue is the crash drill: a worker process
// leases five cells, completes two, and is killed -9 mid-run; its
// journal additionally gets a torn final record. A rescue worker must
// wait out the expired leases, recompute the three unfinished cells, and
// the merge must hold exactly five correct records.
func TestWorkJournalKillNineRescue(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	const keys = 5
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe,
		"-test.run", "TestWorkHelperProcess", "-test.v",
		"-work-helper", "crasher",
		"-work-helper-dir", dir,
		"-work-helper-keys", strconv.Itoa(keys),
		"-work-helper-ttl", "500ms",
		"-work-helper-hang")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	ready := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "CRASH_READY") {
			ready = true
			break
		}
	}
	if !ready {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("crasher never reached CRASH_READY")
	}
	cmd.Process.Kill() // SIGKILL: no deferred cleanup, flocks drop with the process
	cmd.Wait()

	// Simulate the torn record a kill mid-append leaves.
	f, err := os.OpenFile(filepath.Join(dir, "worker-crasher.jsonl"),
		os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"cell-4","status":"ok","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rescue := openWork(t, dir, "rescue", 200*time.Millisecond)
	recomputed := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("cell-%d", k)
		rec, done := rescue.Lookup(key) // waits out the crasher's 500ms leases
		if done {
			if rec.Owner != "crasher" || rec.Status != StatusOK {
				t.Fatalf("completed cell %s = %+v", key, rec)
			}
			continue
		}
		if err := rescue.Append(okRecord(key, "rescue:"+key)); err != nil {
			t.Fatal(err)
		}
		recomputed++
	}
	if recomputed != 3 {
		t.Fatalf("rescue recomputed %d cells, want 3 (two were completed pre-kill)", recomputed)
	}
	recs, err := MergeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != keys {
		t.Fatalf("merge has %d records, want %d: %+v", len(recs), keys, recs)
	}
	owners := map[string]int{}
	for _, r := range recs {
		owners[r.Owner]++
		if r.Status != StatusOK {
			t.Fatalf("record %+v not ok", r)
		}
	}
	if owners["crasher"] != 2 || owners["rescue"] != 3 {
		t.Fatalf("owner split = %v, want crasher:2 rescue:3", owners)
	}
}
