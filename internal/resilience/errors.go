package resilience

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"debugtuner/internal/ir"
	"debugtuner/internal/vm"
)

// Kind labels the terminal failure mode of a quarantined cell.
type Kind string

const (
	// KindPanic: the cell's goroutine panicked (captured, not fatal).
	KindPanic Kind = "panic"
	// KindDeadline: the cell overran its per-cell deadline.
	KindDeadline Kind = "deadline"
	// KindTransient: the cell kept failing with transiently-classified
	// errors until its retries ran out.
	KindTransient Kind = "transient"
	// KindPermanent: the cell failed with a deterministic error (budget
	// exhaustion, build/trace failure) that retrying cannot fix.
	KindPermanent Kind = "permanent"
)

// CellError is the typed terminal error of a quarantined cell. It
// implements Uncacheable so content-addressed caches (evalcache) evict
// it instead of memoizing the failure, letting a resumed run retry.
type CellError struct {
	// Key is the cell's journal key (config fingerprint × subject hash).
	Key string
	// Kind is the failure mode of the final attempt.
	Kind Kind
	// Attempts is how many attempts were made before quarantining.
	Attempts int
	// Pass is the optimization pass attributed from the panicking
	// goroutine's stack, when the failure originated inside one.
	Pass string
	// Err is the final attempt's underlying error.
	Err error
}

func (e *CellError) Error() string {
	s := fmt.Sprintf("cell %s quarantined after %d attempt(s): %s: %v",
		e.Key, e.Attempts, e.Kind, e.Err)
	if e.Pass != "" {
		s += fmt.Sprintf(" [pass %s]", e.Pass)
	}
	return s
}

func (e *CellError) Unwrap() error { return e.Err }

// Uncacheable marks quarantined results as not-memoizable: a cache that
// stored them would pin the failure for the life of the process, while
// the whole point of quarantine is that a later resume may succeed.
func (e *CellError) Uncacheable() bool { return true }

// IsQuarantined reports whether err is (or wraps) a CellError.
func IsQuarantined(err error) bool {
	var ce *CellError
	return errors.As(err, &ce)
}

// AsCellError unwraps err to its CellError, or nil.
func AsCellError(err error) *CellError {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce
	}
	return nil
}

// Class is the retry classifier's verdict on one attempt's error.
type Class int

const (
	// ClassPermanent errors are deterministic: retrying reruns the same
	// computation to the same failure, so the cell quarantines at once.
	ClassPermanent Class = iota
	// ClassTransient errors may be environmental (a stalled machine, an
	// injected fault, a crashed worker); the cell retries with backoff.
	ClassTransient
)

// Classify sorts an attempt error into the retry taxonomy:
//
//   - VM and interpreter budget exhaustion (vm.ErrBudget, ir.ErrBudget
//     via errors.Is) is permanent — the budget is a property of the
//     (program, config) cell, not of the environment.
//   - Errors carrying Transient() bool (the Transient wrapper, chaos
//     faults) are transient.
//   - Deadline overruns and captured panics are transient: a genuine
//     environmental stall or crash deserves another attempt, and a
//     deterministic one simply exhausts its retries into quarantine.
//   - Everything else (front-end errors, malformed binaries) is
//     permanent.
func Classify(err error) Class {
	if errors.Is(err, vm.ErrBudget) || errors.Is(err, ir.ErrBudget) {
		return ClassPermanent
	}
	var tr interface{ Transient() bool }
	if errors.As(err, &tr) && tr.Transient() {
		return ClassTransient
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTransient
	}
	var pe *panicError
	if errors.As(err, &pe) {
		return ClassTransient
	}
	return ClassPermanent
}

// kindOf maps a terminal attempt error to its quarantine Kind.
func kindOf(err error) Kind {
	var pe *panicError
	if errors.As(err, &pe) {
		return KindPanic
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return KindDeadline
	}
	if Classify(err) == ClassTransient {
		return KindTransient
	}
	return KindPermanent
}

// Transient wraps an error so the classifier retries it. The resilience
// layer itself never invents transient errors outside chaos injection;
// the wrapper exists for callers whose cells touch genuinely flaky
// resources.
func Transient(err error) error { return &transientError{err} }

type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Transient() bool { return true }

// panicError is a captured cell panic.
type panicError struct {
	val   any
	pass  string
	stack []byte
}

func (p *panicError) Error() string {
	if p.pass != "" {
		return fmt.Sprintf("panic in pass %s: %v", p.pass, p.val)
	}
	return fmt.Sprintf("panic: %v", p.val)
}

// attributePass scans a panic stack for the innermost frame inside
// internal/passes and returns its function name — the pass-name
// attribution quarantine reports carry. The telemetry damage ledger
// attributes metadata loss the same way (per pass); this is the crash
// counterpart.
func attributePass(stack []byte) string {
	const marker = "debugtuner/internal/passes."
	rest := stack
	for {
		i := bytes.Index(rest, []byte(marker))
		if i < 0 {
			return ""
		}
		rest = rest[i+len(marker):]
		j := bytes.IndexAny(rest, "(\n")
		if j < 0 {
			return ""
		}
		name := string(rest[:j])
		// Skip closures' type prefixes like "glob..func1".
		if name != "" {
			return name
		}
	}
}

// HashBytes returns the FNV-1a hash of b — the subject-hash half of a
// journal key. Callers combine it with Config.Fingerprint to address a
// cell stably across processes.
func HashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// HashString mixes the parts into one FNV-1a hash with NUL separators,
// so ("ab","c") and ("a","bc") differ. Campaign drivers use it to
// fingerprint their parameter set into stable journal-key suffixes.
func HashString(parts ...string) uint64 {
	return hashParts(0, parts...)
}

// hashParts mixes a seed and strings into one FNV-1a hash, the basis of
// every deterministic decision (chaos schedule, backoff jitter).
func hashParts(seed uint64, parts ...string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return h.Sum64()
}
