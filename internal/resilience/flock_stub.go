//go:build !unix

package resilience

import "os"

// Non-unix platforms get no advisory locking: single-process journal use
// keeps working, and the multi-process protocols degrade to their
// lock-free behaviour (duplicate compute is safe, the merge dedupes).
func flockExclusive(f *os.File, block bool) (bool, error) { return true, nil }

func funlock(f *os.File) error { return nil }
