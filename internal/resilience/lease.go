package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"debugtuner/internal/telemetry"
)

// Multi-process work distribution over one journal directory.
//
// N worker processes share a directory:
//
//	<dir>/lease.jsonl        append-only lease ledger, every append under
//	                         an exclusive flock on the file
//	<dir>/worker-<id>.jsonl  one result journal per worker, flocked for
//	                         the worker's lifetime, appended lock-free
//
// The claim-or-skip protocol runs entirely inside Lookup: under the
// ledger lock a worker scans every file for new records, and for the
// requested cell either (a) finds a completed record — skip, use it;
// (b) finds a live foreign lease — wait and poll; or (c) finds the cell
// free, expired, or stale — append a lease with a bumped epoch and
// compute it. A worker that dies holding leases simply stops renewing
// its promises: after the deadline passes any peer re-leases the cell.
// Leases are never renewed, so a cell whose compute outlives the TTL may
// be computed twice; results are deterministic and the merge dedupes, so
// duplicate compute is safe where a lost cell would not be.

// DefaultLeaseTTL is the lease deadline used when none is configured.
const DefaultLeaseTTL = 15 * time.Second

const (
	leaseFileName = "lease.jsonl"
	workerPrefix  = "worker-"
	workerSuffix  = ".jsonl"
)

// WorkJournal is one worker's view of a shared journal directory. It
// implements Checkpointer: Lookup blocks until the cell is completed by
// a peer (returned) or leased to this worker (the caller computes it),
// and Append checkpoints results to this worker's own journal file.
type WorkJournal struct {
	dir   string
	owner string
	ttl   time.Duration
	poll  time.Duration
	now   func() time.Time // test hook

	own    *Journal // worker-<owner>.jsonl, flocked for our lifetime
	leasef *os.File // lease.jsonl, flocked per operation

	mu      sync.Mutex
	seen    map[string]Record // completed cells, all workers
	leases  map[string]Record // latest lease per key
	mine    map[string]bool   // leased by this process, not yet completed
	tails   map[string]*tail  // incremental per-file readers
	skipped int               // corrupt terminated lines skipped in peers' files
}

// OpenWork joins (creating if needed) the shared work directory dir as
// worker owner. An empty owner derives one from the pid; owners must be
// unique among live workers — a second process with the same id fails
// with ErrJournalLive. ttl <= 0 means DefaultLeaseTTL.
func OpenWork(dir, owner string, ttl time.Duration) (*WorkJournal, error) {
	if owner == "" {
		owner = fmt.Sprintf("w%d", os.Getpid())
	}
	if strings.ContainsAny(owner, "/\\ ") {
		return nil, fmt.Errorf("resilience: work journal: invalid worker id %q", owner)
	}
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resilience: work journal: %w", err)
	}
	// Resume (never truncate) our own journal: a restarted worker keeps
	// the cells its previous incarnation completed. Non-blocking, so a
	// duplicate live worker id fails fast instead of deadlocking.
	own, err := resumeJournal(filepath.Join(dir, workerPrefix+owner+workerSuffix), false)
	if err != nil {
		return nil, err
	}
	leasef, err := os.OpenFile(filepath.Join(dir, leaseFileName),
		os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		own.Close()
		return nil, fmt.Errorf("resilience: work journal: %w", err)
	}
	return &WorkJournal{
		dir: dir, owner: owner, ttl: ttl,
		poll: 25 * time.Millisecond, now: time.Now,
		own: own, leasef: leasef,
		seen:   map[string]Record{},
		leases: map[string]Record{},
		mine:   map[string]bool{},
		tails:  map[string]*tail{},
	}, nil
}

// Owner returns this worker's id.
func (w *WorkJournal) Owner() string { return w.owner }

// Lookup implements the claim-or-skip protocol for one cell. It returns
// (record, true) when a completed record exists — Run then uses the
// value (or, for a quarantined record, reruns per resume semantics) —
// and (zero, false) once this worker holds the cell's lease and must
// compute it. It blocks, polling, while a live peer holds the lease.
func (w *WorkJournal) Lookup(key string) (Record, bool) {
	for {
		rec, done, wait := w.step(key)
		if !wait {
			return rec, done
		}
		time.Sleep(w.poll)
	}
}

// step is one protocol round under the ledger lock; wait=true means the
// cell is being computed elsewhere and the caller should poll again.
func (w *WorkJournal) step(key string) (rec Record, done, wait bool) {
	if _, err := flockExclusive(w.leasef, true); err != nil {
		// Cannot coordinate: claim anyway. Duplicate compute is safe
		// (deterministic results, merge dedupes); a lost cell is not.
		return Record{}, false, false
	}
	defer funlock(w.leasef)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.scanLocked()
	if rec, ok := w.seen[key]; ok {
		telemetry.Add("resilience.lease.skips", 1)
		return rec, true, false
	}
	l, leased := w.leases[key]
	if leased {
		if l.Owner == w.owner {
			if w.mine[key] {
				// Another goroutine of this process is computing it.
				return Record{}, false, true
			}
			// A stale lease from a previous incarnation of our id:
			// reclaim below.
		} else if w.now().UnixMilli() < l.Deadline {
			return Record{}, false, true
		}
		// Foreign lease past its deadline: the owner is presumed dead;
		// reclaim below.
	}
	lease := Record{
		Key: key, Status: StatusLeased, Owner: w.owner,
		Epoch: l.Epoch + 1, Deadline: w.now().Add(w.ttl).UnixMilli(),
	}
	if err := w.appendLeaseLocked(lease); err != nil {
		// The claim is not durable, but computing is still the safe
		// direction (see above).
		return Record{}, false, false
	}
	w.leases[key] = lease
	w.mine[key] = true
	telemetry.Add("resilience.lease.claims", 1)
	if leased && l.Owner != w.owner {
		telemetry.Add("resilience.lease.reclaims", 1)
	}
	return Record{}, false, false
}

// appendLeaseLocked writes one lease record to the ledger; the caller
// holds the ledger flock. The descriptor is O_APPEND, so the write
// lands at the end even though peers appended since we opened it.
func (w *WorkJournal) appendLeaseLocked(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.leasef.Write(append(line, '\n')); err != nil {
		return err
	}
	return w.leasef.Sync()
}

// Append checkpoints one completed cell to this worker's own journal.
func (w *WorkJournal) Append(rec Record) error {
	if rec.Owner == "" {
		rec.Owner = w.owner
	}
	w.mu.Lock()
	if l, ok := w.leases[rec.Key]; ok && l.Owner == w.owner {
		rec.Epoch = l.Epoch
	}
	w.mu.Unlock()
	err := w.own.Append(rec)
	w.mu.Lock()
	w.applyLocked(rec)
	delete(w.mine, rec.Key)
	w.mu.Unlock()
	return err
}

// scanLocked drains new records from every journal file in the
// directory. Caller holds w.mu and the ledger flock (so the lease file
// is quiescent; worker files are append-only and torn tails are simply
// retried next scan).
func (w *WorkJournal) scanLocked() {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name != leaseFileName &&
			!(strings.HasPrefix(name, workerPrefix) && strings.HasSuffix(name, workerSuffix)) {
			continue
		}
		t := w.tails[name]
		if t == nil {
			t = &tail{}
			w.tails[name] = t
		}
		t.drain(filepath.Join(w.dir, name), w.applyLocked, &w.skipped)
	}
}

// applyLocked folds one record into the in-memory state.
func (w *WorkJournal) applyLocked(rec Record) {
	switch rec.Status {
	case StatusLeased:
		if cur, ok := w.leases[rec.Key]; !ok || rec.Epoch >= cur.Epoch {
			w.leases[rec.Key] = rec
		}
	case StatusOK:
		w.seen[rec.Key] = rec
	case StatusQuarantined:
		// Never let a quarantine verdict shadow a completed value.
		if cur, ok := w.seen[rec.Key]; !ok || cur.Status != StatusOK {
			w.seen[rec.Key] = rec
		}
	}
}

// Len returns the number of completed cells visible to this worker.
func (w *WorkJournal) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.seen)
}

// Close releases this worker's journal and the lease ledger.
func (w *WorkJournal) Close() error {
	err := w.own.Close()
	if cerr := w.leasef.Close(); err == nil {
		err = cerr
	}
	return err
}

// tail incrementally reads complete JSONL lines from a growing file.
// An unterminated final line (a peer mid-write, or a kill -9 torn
// record) is left pending: the offset does not advance past it, so a
// later completion is picked up and a permanently torn tail is ignored.
type tail struct{ off int64 }

func (t *tail) drain(path string, apply func(Record), skipped *int) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	if _, err := f.Seek(t.off, 0); err != nil {
		return
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return
	}
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return
		}
		line := data[:nl]
		data = data[nl+1:]
		t.off += int64(nl) + 1
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A peer's corrupt-but-terminated line. Unlike a private
			// journal resume this must not be fatal — one worker's bad
			// sector would kill the whole fleet — so skip and count; the
			// cell reruns if its record was the casualty.
			*skipped++
			telemetry.Add("resilience.lease.skipped_corrupt", 1)
			continue
		}
		apply(rec)
	}
}

// MergeDir reads every worker journal under dir — tolerating torn tails
// and skipping corrupt terminated lines — and returns the completed
// records deduplicated by key (StatusOK preferred over quarantined,
// higher epoch breaking ties) sorted by key. Lease records are ledger
// state, not results, and never appear in the merge.
func MergeDir(dir string) ([]Record, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("resilience: merge journals: %w", err)
	}
	byKey := map[string]Record{}
	skipped := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, workerPrefix) || !strings.HasSuffix(name, workerSuffix) {
			continue
		}
		t := &tail{}
		t.drain(filepath.Join(dir, name), func(rec Record) {
			switch rec.Status {
			case StatusOK:
				cur, ok := byKey[rec.Key]
				if !ok || cur.Status != StatusOK || rec.Epoch >= cur.Epoch {
					byKey[rec.Key] = rec
				}
			case StatusQuarantined:
				if cur, ok := byKey[rec.Key]; !ok || cur.Status != StatusOK {
					byKey[rec.Key] = rec
				}
			}
		}, &skipped)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out, nil
}

// WriteMerged writes records as a plain JSONL journal at path via a
// temp file + rename, so a crashed merge never leaves a half journal a
// resume could mistake for the whole run.
func WriteMerged(path string, recs []Record) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".merge-*")
	if err != nil {
		return fmt.Errorf("resilience: write merged journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("resilience: write merged journal: %w", err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("resilience: write merged journal: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("resilience: write merged journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resilience: write merged journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resilience: write merged journal: %w", err)
	}
	return nil
}
