package resilience

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Record statuses.
const (
	// StatusOK marks a completed cell; Value carries its JSON result.
	StatusOK = "ok"
	// StatusQuarantined marks a cell that exhausted its retries. Resumed
	// runs rerun these cells (the environment — or the chaos flags — may
	// have changed).
	StatusQuarantined = "quarantined"
)

// Record is one journal line. Keys are config fingerprint × subject
// hash, so a journal written by one process addresses the same cells in
// any other build of the same matrix.
type Record struct {
	Key      string          `json:"key"`
	Status   string          `json:"status"`
	Attempts int             `json:"attempts,omitempty"`
	Kind     string          `json:"kind,omitempty"`
	Pass     string          `json:"pass,omitempty"`
	Error    string          `json:"error,omitempty"`
	Value    json.RawMessage `json:"value,omitempty"`
}

// Journal is an append-only JSONL checkpoint file. Every Append is
// fsynced before returning, so a killed process loses at most the
// record being written — and that half-written line is detected and
// discarded on resume. Records are unordered (workers append as cells
// complete); the last record per key wins.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	seen map[string]Record
	torn bool
}

// CreateJournal starts a fresh journal at path, truncating any previous
// file: the run records cells but consults nothing.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: create journal: %w", err)
	}
	return &Journal{f: f, seen: map[string]Record{}}, nil
}

// ResumeJournal opens an existing journal, loads its records (last per
// key wins), discards a torn final record if the previous process died
// mid-write, and positions the file for appending.
func ResumeJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	j := &Journal{f: f, seen: map[string]Record{}}
	keep, err := j.load(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(keep)); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	return j, nil
}

// load parses the journal body and returns the byte length of the valid
// prefix to keep. A line that fails to parse is fatal corruption unless
// it is the final, newline-less line of the file — the torn record an
// interrupted write leaves — which is discarded.
func (j *Journal) load(data []byte) (keep int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		line := data[off:]
		terminated := nl >= 0
		if terminated {
			line = data[off : off+nl]
		}
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if uerr := json.Unmarshal(line, &rec); uerr != nil {
				if !terminated {
					// Torn final record: the write was cut mid-line.
					j.torn = true
					return off, nil
				}
				return 0, fmt.Errorf("resilience: corrupt journal record at byte %d: %v", off, uerr)
			}
			j.seen[rec.Key] = rec
		}
		if !terminated {
			// Final line parsed but carries no newline (e.g. a crash
			// exactly between the record and its terminator): keep the
			// record but rewrite from its start so the file stays valid
			// JSONL after the next append.
			return off, nil
		}
		off += nl + 1
	}
	return off, nil
}

// Torn reports whether a torn final record was discarded on resume.
func (j *Journal) Torn() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

// Len returns the number of distinct keys loaded or appended.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Lookup returns the last record appended or loaded for key.
func (j *Journal) Lookup(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.seen[key]
	return rec, ok
}

// Append writes one record as a JSON line and fsyncs it.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resilience: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("resilience: append journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: sync journal: %w", err)
	}
	j.seen[rec.Key] = rec
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
