package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record statuses.
const (
	// StatusOK marks a completed cell; Value carries its JSON result.
	StatusOK = "ok"
	// StatusQuarantined marks a cell that exhausted its retries. Resumed
	// runs rerun these cells (the environment — or the chaos flags — may
	// have changed).
	StatusQuarantined = "quarantined"
	// StatusLeased marks a lease claim in a multi-process work directory:
	// the owner promised to compute the cell before the deadline. Leases
	// live only in the lease ledger, never in merged journals.
	StatusLeased = "leased"
)

// ErrJournalLive is wrapped by CreateJournal when the target file is
// advisorily locked by a live journal — truncating another process's
// checkpoints would silently destroy its run, so the caller must pick a
// different path (or resume instead).
var ErrJournalLive = errors.New("journal is held by a live process")

// Record is one journal line. Keys are config fingerprint × subject
// hash, so a journal written by one process addresses the same cells in
// any other build of the same matrix. Owner/Epoch/Deadline exist for the
// multi-process protocol: a lease record carries all three, and result
// records written by workers carry Owner/Epoch for provenance.
type Record struct {
	Key      string          `json:"key"`
	Status   string          `json:"status"`
	Attempts int             `json:"attempts,omitempty"`
	Kind     string          `json:"kind,omitempty"`
	Pass     string          `json:"pass,omitempty"`
	Error    string          `json:"error,omitempty"`
	Value    json.RawMessage `json:"value,omitempty"`
	// Owner identifies the worker process that wrote the record.
	Owner string `json:"owner,omitempty"`
	// Epoch counts lease generations for a key: a re-lease after expiry
	// appends a record with a higher epoch, which supersedes the old one.
	Epoch int `json:"epoch,omitempty"`
	// Deadline is the lease expiry as unix milliseconds; a lease past it
	// may be claimed by any worker (the owner is presumed dead).
	Deadline int64 `json:"deadline,omitempty"`
}

// Journal is an append-only JSONL checkpoint file. Every Append is
// fsynced before returning, so a killed process loses at most the
// record being written — and that half-written line is detected and
// discarded on resume. Records are unordered (workers append as cells
// complete); the last record per key wins.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	seen map[string]Record
	torn bool
	// pending is a final record that parsed but lacked its newline (a
	// crash exactly between record and terminator): load truncates the
	// file to the record's start, and resume must re-write it immediately
	// — otherwise a process that exits without re-appending that key has
	// silently dropped a completed cell from the durable file.
	pending *Record
}

// CreateJournal starts a fresh journal at path: the run records cells
// but consults nothing. The journal holds an advisory exclusive lock for
// its lifetime, and creation refuses — with a typed ErrJournalLive —
// to truncate a file another live journal holds, so two processes
// pointed at the same -journal path cannot clobber each other's
// checkpoints.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: create journal: %w", err)
	}
	locked, err := flockExclusive(f, false)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: create journal: lock %s: %w", path, err)
	}
	if !locked {
		f.Close()
		return nil, fmt.Errorf("resilience: create journal %s: %w", path, ErrJournalLive)
	}
	// Only truncate once the lock proves no live journal owns the file.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: create journal: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: create journal: %w", err)
	}
	return &Journal{f: f, seen: map[string]Record{}}, nil
}

// ResumeJournal opens an existing journal, loads its records (last per
// key wins), discards a torn final record if the previous process died
// mid-write, and positions the file for appending. It blocks until any
// live journal holding the file releases it (normally: until the owning
// process exits).
func ResumeJournal(path string) (*Journal, error) {
	return resumeJournal(path, true)
}

// resumeJournal is ResumeJournal with an explicit blocking mode: the
// multi-process worker journals resume non-blocking so a duplicate
// worker id fails fast with ErrJournalLive instead of deadlocking on a
// peer that never exits.
func resumeJournal(path string, block bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	locked, err := flockExclusive(f, block)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: lock %s: %w", path, err)
	}
	if !locked {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal %s: %w", path, ErrJournalLive)
	}
	// Read through the locked descriptor, not the path: a separate
	// os.ReadFile could race a concurrent appender (or a path swap) and
	// the Truncate below would then destroy records we never loaded.
	if _, err := f.Seek(0, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	j := &Journal{f: f, seen: map[string]Record{}}
	keep, err := j.load(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(keep)); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	if _, err := f.Seek(int64(keep), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("resilience: resume journal: %w", err)
	}
	if rec := j.pending; rec != nil {
		// The truncation above dropped a record that parsed fine and is
		// in seen; re-write it (with its newline) right now, so the cell
		// stays in the durable file even if this process never appends
		// that key again.
		j.pending = nil
		if err := j.append(*rec); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load parses the journal body and returns the byte length of the valid
// prefix to keep. A line that fails to parse is fatal corruption unless
// it is the final, newline-less line of the file — the torn record an
// interrupted write leaves — which is discarded.
func (j *Journal) load(data []byte) (keep int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		line := data[off:]
		terminated := nl >= 0
		if terminated {
			line = data[off : off+nl]
		}
		if len(bytes.TrimSpace(line)) > 0 {
			var rec Record
			if uerr := json.Unmarshal(line, &rec); uerr != nil {
				if !terminated {
					// Torn final record: the write was cut mid-line.
					j.torn = true
					return off, nil
				}
				return 0, fmt.Errorf("resilience: corrupt journal record at byte %d: %v", off, uerr)
			}
			j.seen[rec.Key] = rec
			if !terminated {
				// Final line parsed but carries no newline (e.g. a crash
				// exactly between the record and its terminator): keep
				// the record, truncate from its start, and have resume
				// re-write it immediately so the file stays valid JSONL
				// and the cell survives even if this process never
				// re-appends its key.
				j.pending = &rec
			}
		}
		if !terminated {
			return off, nil
		}
		off += nl + 1
	}
	return off, nil
}

// Torn reports whether a torn final record was discarded on resume.
func (j *Journal) Torn() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.torn
}

// Len returns the number of distinct keys loaded or appended.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.seen)
}

// Lookup returns the last record appended or loaded for key.
func (j *Journal) Lookup(key string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.seen[key]
	return rec, ok
}

// Append writes one record as a JSON line and fsyncs it.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(rec)
}

// append is Append without the mutex, for use while the journal is
// still private to its constructor.
func (j *Journal) append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("resilience: marshal journal record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("resilience: append journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("resilience: sync journal: %w", err)
	}
	j.seen[rec.Key] = rec
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
