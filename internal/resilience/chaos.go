package resilience

import (
	"fmt"
	"strconv"
	"strings"
)

// FaultKind is one injected failure mode.
type FaultKind int

const (
	// FaultNone: the cell runs untouched.
	FaultNone FaultKind = iota
	// FaultTransient: the attempt fails with a transient error.
	FaultTransient
	// FaultPanic: the attempt panics inside the cell goroutine.
	FaultPanic
	// FaultStall: the attempt stalls past the cell deadline (or, with no
	// deadline configured, sleeps briefly and fails transiently).
	FaultStall
)

func (k FaultKind) String() string {
	switch k {
	case FaultTransient:
		return "transient"
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	}
	return "none"
}

// Chaos is the deterministic fault injector. Whether and how a cell is
// faulted depends only on (Seed, cell key, attempt) — never on timing,
// scheduling, or worker count — so two runs with the same seed produce
// byte-identical quarantine reports at any -j.
//
// A faulted cell draws one of five schedules, uniformly by hash:
//
//	transient-once, panic-once, stall-once  fail attempt 0 only, proving
//	                                        the retry path end to end
//	transient-always, panic-always          fail every attempt, forcing
//	                                        the cell into quarantine
type Chaos struct {
	// Rate is the fraction of cells faulted, in [0, 1].
	Rate float64
	// Seed drives every injection decision.
	Seed uint64
}

// ParseChaos parses a -chaos flag spec of the form "rate=0.05,seed=7".
func ParseChaos(spec string) (*Chaos, error) {
	c := &Chaos{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("resilience: bad chaos item %q (want key=value)", item)
		}
		switch k {
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("resilience: bad chaos rate %q (want [0,1])", v)
			}
			c.Rate = r
		case "seed":
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("resilience: bad chaos seed %q", v)
			}
			c.Seed = s
		default:
			return nil, fmt.Errorf("resilience: unknown chaos key %q (have rate, seed)", k)
		}
	}
	if c.Rate == 0 {
		return nil, fmt.Errorf("resilience: chaos spec %q sets no rate", spec)
	}
	return c, nil
}

func (c *Chaos) String() string {
	return fmt.Sprintf("rate=%g,seed=%d", c.Rate, c.Seed)
}

// Decide returns the fault to inject into one attempt of one cell.
func (c *Chaos) Decide(key string, attempt int) FaultKind {
	if c == nil || c.Rate <= 0 {
		return FaultNone
	}
	const den = 1 << 20
	h := hashParts(c.Seed, "cell", key)
	if float64(h%den)/den >= c.Rate {
		return FaultNone
	}
	once := attempt == 0
	switch hashParts(c.Seed, "kind", key) % 5 {
	case 0:
		if once {
			return FaultTransient
		}
	case 1:
		if once {
			return FaultPanic
		}
	case 2:
		if once {
			return FaultStall
		}
	case 3:
		return FaultTransient
	case 4:
		return FaultPanic
	}
	return FaultNone
}
