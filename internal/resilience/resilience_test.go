package resilience

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"debugtuner/internal/ir"
	"debugtuner/internal/vm"
)

// fastPolicy keeps test retries near-instant.
func fastPolicy(retries int) Policy {
	return Policy{
		Retries:     retries,
		BackoffBase: time.Microsecond,
		BackoffCap:  10 * time.Microsecond,
	}
}

func TestRunNilExecutorIsDirectCall(t *testing.T) {
	called := 0
	v, err := Run(nil, context.Background(), "k", func(context.Context) (int, error) {
		called++
		return 42, nil
	})
	if err != nil || v != 42 || called != 1 {
		t.Fatalf("v=%d err=%v called=%d", v, err, called)
	}
}

func TestRunCapturesPanic(t *testing.T) {
	ex := NewExecutor(fastPolicy(1))
	calls := 0
	_, err := Run(ex, context.Background(), "cell-a", func(context.Context) (int, error) {
		calls++
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("expected quarantine error")
	}
	ce := AsCellError(err)
	if ce == nil {
		t.Fatalf("error %v is not a CellError", err)
	}
	if ce.Kind != KindPanic {
		t.Fatalf("kind = %s, want panic", ce.Kind)
	}
	if calls != 2 {
		t.Fatalf("panicking cell ran %d times, want 2 (1 retry)", calls)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("quarantine error hides the panic value: %v", err)
	}
	if got := len(ex.Quarantined()); got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
}

func TestRunRetriesTransientThenSucceeds(t *testing.T) {
	ex := NewExecutor(fastPolicy(2))
	calls := 0
	v, err := Run(ex, context.Background(), "cell-b", func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, Transient(errors.New("flaky"))
		}
		return 7, nil
	})
	if err != nil || v != 7 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
	if len(ex.Quarantined()) != 0 {
		t.Fatal("recovered cell must not be quarantined")
	}
}

func TestBudgetErrorsArePermanent(t *testing.T) {
	for _, berr := range []error{vm.ErrStepBudget, vm.ErrHeapBudget, ir.ErrStepLimit, ir.ErrHeapBudget} {
		if Classify(berr) != ClassPermanent {
			t.Fatalf("%v classified transient, want permanent", berr)
		}
		// And through a wrap, as call sites return them.
		if Classify(fmt.Errorf("trace: %w", berr)) != ClassPermanent {
			t.Fatalf("wrapped %v classified transient", berr)
		}
	}
	if !errors.Is(vm.ErrHeapBudget, vm.ErrBudget) || !errors.Is(ir.ErrHeapBudget, ir.ErrBudget) {
		t.Fatal("heap budget sentinels must match the base budget sentinel via errors.Is")
	}
	ex := NewExecutor(fastPolicy(3))
	calls := 0
	_, err := Run(ex, context.Background(), "cell-budget", func(context.Context) (int, error) {
		calls++
		return 0, vm.ErrStepBudget
	})
	if calls != 1 {
		t.Fatalf("permanent failure retried %d times, want 1 attempt total", calls)
	}
	ce := AsCellError(err)
	if ce == nil || ce.Kind != KindPermanent {
		t.Fatalf("err = %v, want permanent CellError", err)
	}
}

func TestRunDeadline(t *testing.T) {
	p := fastPolicy(1)
	p.CellTimeout = 20 * time.Millisecond
	ex := NewExecutor(p)
	release := make(chan struct{})
	defer close(release)
	start := time.Now()
	_, err := Run(ex, context.Background(), "cell-slow", func(context.Context) (int, error) {
		<-release // stalls well past the deadline on every attempt
		return 0, nil
	})
	elapsed := time.Since(start)
	ce := AsCellError(err)
	if ce == nil || ce.Kind != KindDeadline {
		t.Fatalf("err = %v, want deadline CellError", err)
	}
	if ce.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (deadline is transient)", ce.Attempts)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

func TestRunParentCancellationIsNotQuarantine(t *testing.T) {
	ex := NewExecutor(fastPolicy(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ex, ctx, "cell-cancel", func(context.Context) (int, error) {
		t.Fatal("fn must not run under a cancelled parent")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ex.Quarantined()) != 0 {
		t.Fatal("parent cancellation must not quarantine the cell")
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	p := DefaultPolicy()
	p.Seed = 11
	ex := NewExecutor(p)
	ex2 := NewExecutor(p)
	for a := 0; a < 8; a++ {
		d1 := ex.backoff("cell-x", a)
		d2 := ex2.backoff("cell-x", a)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff %v != %v across executors", a, d1, d2)
		}
		if d1 > p.BackoffCap {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", a, d1, p.BackoffCap)
		}
		if d1 <= 0 {
			t.Fatalf("attempt %d: non-positive backoff %v", a, d1)
		}
	}
	if ex.backoff("cell-x", 0) == ex.backoff("cell-y", 0) {
		t.Log("identical jitter for two keys (possible, but suspicious)")
	}
}

func TestChaosDeterministicSchedule(t *testing.T) {
	c := &Chaos{Rate: 0.3, Seed: 99}
	c2 := &Chaos{Rate: 0.3, Seed: 99}
	faulted, quarantineClass := 0, 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("cell-%04d", i)
		k0 := c.Decide(key, 0)
		if k0 != c2.Decide(key, 0) {
			t.Fatalf("key %s: schedule differs across instances", key)
		}
		if k0 != FaultNone {
			faulted++
			if c.Decide(key, 1) != FaultNone {
				quarantineClass++
			}
		}
	}
	// ~30% of cells faulted, ~2/5 of those on every attempt.
	if faulted < 400 || faulted > 800 {
		t.Fatalf("faulted %d of 2000 at rate 0.3", faulted)
	}
	if quarantineClass == 0 || quarantineClass == faulted {
		t.Fatalf("always-faults = %d of %d, want a strict subset", quarantineClass, faulted)
	}
	if other := (&Chaos{Rate: 0.3, Seed: 100}).Decide("cell-0000", 0); other == c.Decide("cell-0000", 0) {
		t.Log("same decision under different seed for one key (possible)")
	}
}

func TestChaosRetryAndQuarantinePaths(t *testing.T) {
	// Drive enough cells through a chaotic executor that both schedules
	// (fail-once → recovered, fail-always → quarantined) occur.
	p := fastPolicy(2)
	ex := NewExecutor(p)
	ex.Chaos = &Chaos{Rate: 0.5, Seed: 3}
	recovered, quarantined := 0, 0
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("cell-%02d", i)
		calls := 0
		_, err := Run(ex, context.Background(), key, func(context.Context) (int, error) {
			calls++
			return 1, nil
		})
		switch {
		case err == nil && calls == 0:
			recovered++ // chaos consumed attempt 0 before fn ran
		case err == nil:
		case IsQuarantined(err):
			quarantined++
		default:
			t.Fatalf("cell %s: unexpected error %v", key, err)
		}
	}
	if quarantined == 0 {
		t.Fatal("no cell quarantined at rate 0.5")
	}
	if got := len(ex.Quarantined()); got != quarantined {
		t.Fatalf("registry has %d cells, observed %d", got, quarantined)
	}
	// The registry report is sorted and stable.
	var b1, b2 strings.Builder
	ex.WriteReport(&b1)
	ex.WriteReport(&b2)
	if b1.String() != b2.String() {
		t.Fatal("quarantine report not stable")
	}
	if !strings.HasPrefix(b1.String(), fmt.Sprintf("QUARANTINED(%d)\n", quarantined)) {
		t.Fatalf("report header wrong:\n%s", b1.String())
	}
}

func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("rate=0.25,seed=7")
	if err != nil || c.Rate != 0.25 || c.Seed != 7 {
		t.Fatalf("c=%+v err=%v", c, err)
	}
	for _, bad := range []string{"", "rate=2", "rate=0.1,seed=x", "nope=1", "rate"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Fatalf("ParseChaos(%q) accepted", bad)
		}
	}
}

func TestJournalRoundTripAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(fastPolicy(0))
	ex.Journal = j
	type cell struct{ X, Y int64 }
	want := cell{X: 1 << 60, Y: -9} // int64 past float53 must round-trip exactly
	v, err := Run(ex, context.Background(), "k1", func(context.Context) (cell, error) {
		return want, nil
	})
	if err != nil || v != want {
		t.Fatalf("v=%+v err=%v", v, err)
	}
	_, _ = Run(ex, context.Background(), "k2", func(context.Context) (cell, error) {
		return cell{}, errors.New("deterministic failure")
	})
	j.Close()

	j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Torn() {
		t.Fatal("clean journal reported torn")
	}
	ex2 := NewExecutor(fastPolicy(0))
	ex2.Journal = j2
	ran := false
	v2, err := Run(ex2, context.Background(), "k1", func(context.Context) (cell, error) {
		ran = true
		return cell{}, nil
	})
	if err != nil || v2 != want {
		t.Fatalf("resume: v=%+v err=%v", v2, err)
	}
	if ran {
		t.Fatal("completed cell recomputed on resume")
	}
	// The quarantined cell reruns — and succeeds this time.
	v3, err := Run(ex2, context.Background(), "k2", func(context.Context) (cell, error) {
		return cell{X: 5}, nil
	})
	if err != nil || v3.X != 5 {
		t.Fatalf("quarantined cell not rerun: v=%+v err=%v", v3, err)
	}
	if rec, ok := j2.Lookup("k2"); !ok || rec.Status != StatusOK {
		t.Fatalf("journal not updated after rerun: %+v ok=%v", rec, ok)
	}
}

func TestJournalTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	body := `{"key":"a","status":"ok","value":1}` + "\n" +
		`{"key":"b","status":"ok","val` // torn mid-write, no newline
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Torn() {
		t.Fatal("torn record not detected")
	}
	if _, ok := j.Lookup("b"); ok {
		t.Fatal("torn record survived")
	}
	if _, ok := j.Lookup("a"); !ok {
		t.Fatal("valid record lost")
	}
	// Appending after the truncation keeps the file valid JSONL.
	if err := j.Append(Record{Key: "c", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Torn() {
		t.Fatal("repaired journal still torn")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := j2.Lookup(k); !ok {
			t.Fatalf("record %q lost after repair", k)
		}
	}
}

func TestJournalCorruptMiddleRecordFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	body := `{"key":"a","status":"ok"}` + "\n" + `garbage` + "\n" + `{"key":"b","status":"ok"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestInstallActive(t *testing.T) {
	if Active() != nil {
		t.Fatal("executor installed at test start")
	}
	ex := NewExecutor(DefaultPolicy())
	prev := Install(ex)
	defer Install(prev)
	if Active() != ex {
		t.Fatal("Install did not take")
	}
}

func TestAttributePass(t *testing.T) {
	stack := []byte(`goroutine 7 [running]:
debugtuner/internal/passes.LICM(0xc0000b2000, 0x1)
	/root/repo/internal/passes/licm.go:42 +0x19
debugtuner/internal/pipeline.Build(...)
`)
	if got := attributePass(stack); got != "LICM" {
		t.Fatalf("attributePass = %q, want LICM", got)
	}
	if got := attributePass([]byte("no pass frames here")); got != "" {
		t.Fatalf("attributePass on foreign stack = %q, want empty", got)
	}
}

func TestRunConcurrentCellsDeterministicRegistry(t *testing.T) {
	// The same chaotic matrix run with different concurrency must end in
	// the same quarantine registry.
	run := func(par int) string {
		ex := NewExecutor(fastPolicy(1))
		ex.Chaos = &Chaos{Rate: 0.4, Seed: 8}
		sem := make(chan struct{}, par)
		var wg sync.WaitGroup
		for i := 0; i < 40; i++ {
			key := fmt.Sprintf("cell-%02d", i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				_, _ = Run(ex, context.Background(), key, func(context.Context) (int, error) {
					return 1, nil
				})
			}()
		}
		wg.Wait()
		var b strings.Builder
		ex.WriteReport(&b)
		return b.String()
	}
	if r1, r8 := run(1), run(8); r1 != r8 {
		t.Fatalf("quarantine report depends on concurrency:\n-- j1 --\n%s\n-- j8 --\n%s", r1, r8)
	}
}
