//go:build unix

package resilience

import (
	"os"
	"syscall"
)

// flockExclusive takes an advisory exclusive lock (flock LOCK_EX) on f.
// With block=false it returns (false, nil) when another open file
// description holds the lock; with block=true it waits. flock locks
// attach to the open file description, so two opens of the same path —
// even inside one process — conflict, which is exactly the live-journal
// protection CreateJournal and the lease ledger need.
func flockExclusive(f *os.File, block bool) (bool, error) {
	how := syscall.LOCK_EX
	if !block {
		how |= syscall.LOCK_NB
	}
	for {
		err := syscall.Flock(int(f.Fd()), how)
		switch err {
		case nil:
			return true, nil
		case syscall.EINTR:
			continue
		case syscall.EWOULDBLOCK:
			if !block {
				return false, nil
			}
			return false, err
		default:
			return false, err
		}
	}
}

// funlock releases the advisory lock. Closing the file releases it too;
// this exists for the lease ledger, which locks per operation on a
// long-lived descriptor.
func funlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
