// Package resilience is the fault-tolerant execution layer wrapped
// around the evaluation matrix. DebugTuner's methodology rebuilds every
// program once per disabled pass — a (program × config) matrix of
// thousands of cells — and before this package existed one panicking
// pass, one runaway build, or one killed process destroyed the entire
// run. Production experiment fleets (AutoFDO-style build/measure
// pipelines, OSS-Fuzz-style crash-resilient harnesses) survive
// individual cell failures instead; this package brings the same
// discipline to the reproduction:
//
//   - Cell isolation (Run): each (subject, config) build/trace executes
//     on its own goroutine with panics converted to typed errors,
//     per-cell deadlines enforced via context, and transiently-failed
//     cells retried under capped exponential backoff with seeded,
//     deterministic jitter — output stays byte-identical at any -j.
//
//   - Quarantine: cells that exhaust their retries are recorded, not
//     fatal. Rankings, Pareto fronts, and experiment tables render with
//     explicit QUARANTINED gaps, and the process exits with a distinct
//     nonzero code instead of aborting the run.
//
//   - Journaled checkpoint/resume (Journal): an append-only, fsynced
//     JSONL journal keyed by config fingerprint × subject hash lets an
//     interrupted matrix resume, skipping completed cells and rerunning
//     only incomplete or quarantined ones. A torn final record (the
//     half-written line a kill leaves behind) is detected and discarded.
//
//   - Deterministic chaos (Chaos): a seeded fault injector makes wrapped
//     cells panic, stall past their deadline, or fail transiently on a
//     schedule derived only from the cell key, so tests and the CI smoke
//     can prove isolation, retry, quarantine, and resume actually work.
//
// Like telemetry, the layer is off by default: a nil *Executor makes Run
// a direct call with zero overhead, so the fault-free fast path is
// byte-for-byte the pre-resilience evaluation.
package resilience

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"debugtuner/internal/telemetry"
)

// Policy bounds one executor's cell handling.
type Policy struct {
	// Retries is the number of additional attempts after the first for
	// transiently-failed cells. Permanent failures never retry.
	Retries int
	// CellTimeout, when > 0, is the per-cell deadline. A cell that
	// overruns it is abandoned (its goroutine keeps running but its
	// result is discarded) and the attempt counts as transient.
	CellTimeout time.Duration
	// BackoffBase is the first retry's backoff; each further retry
	// doubles it up to BackoffCap. Jitter is derived deterministically
	// from Seed and the cell key, so wall-clock is the only thing that
	// varies between runs — never results or output bytes.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed feeds the deterministic backoff jitter.
	Seed uint64
}

// DefaultPolicy returns the policy NewExecutor normalizes toward.
func DefaultPolicy() Policy {
	return Policy{
		Retries:     2,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  250 * time.Millisecond,
	}
}

// Checkpointer is the journal surface Run consults: Lookup may return a
// completed record (short-circuiting the cell), and Append records an
// outcome. The single-file Journal implements it, and so does the
// multi-process WorkJournal — whose Lookup additionally blocks until the
// cell is either completed by a peer or leased to this process.
type Checkpointer interface {
	Lookup(key string) (Record, bool)
	Append(rec Record) error
	Close() error
}

// Executor runs cells under a policy and records quarantines. The zero
// executor is not usable; construct with NewExecutor.
type Executor struct {
	Policy  Policy
	Chaos   *Chaos
	Journal Checkpointer

	mu          sync.Mutex
	quarantined map[string]*CellError
}

// NewExecutor creates an executor, filling unset policy fields from
// DefaultPolicy.
func NewExecutor(p Policy) *Executor {
	def := DefaultPolicy()
	if p.Retries < 0 {
		p.Retries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = def.BackoffBase
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = def.BackoffCap
	}
	return &Executor{Policy: p, quarantined: map[string]*CellError{}}
}

// active is the process-global executor; nil means the resilience layer
// is disabled and Run degenerates to a direct call.
var active atomic.Pointer[Executor]

// Install makes ex the process-global executor (nil disables) and
// returns the previously installed one.
func Install(ex *Executor) *Executor { return active.Swap(ex) }

// Active returns the installed executor, or nil when disabled.
func Active() *Executor { return active.Load() }

// Quarantined returns the executor's quarantined cells sorted by key —
// a deterministic order regardless of worker count or completion order.
func (ex *Executor) Quarantined() []*CellError {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	out := make([]*CellError, 0, len(ex.quarantined))
	for _, ce := range ex.quarantined {
		out = append(out, ce)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// WriteReport renders the deterministic quarantine gap report: a
// "QUARANTINED(n)" header followed by one sorted line per cell. It
// writes nothing when no cell is quarantined, so fault-free runs stay
// byte-identical to pre-resilience output.
func (ex *Executor) WriteReport(w io.Writer) {
	qs := ex.Quarantined()
	if len(qs) == 0 {
		return
	}
	fmt.Fprintf(w, "QUARANTINED(%d)\n", len(qs))
	for _, ce := range qs {
		fmt.Fprintf(w, "  %s: %s after %d attempt(s)", ce.Key, ce.Kind, ce.Attempts)
		if ce.Pass != "" {
			fmt.Fprintf(w, " [pass %s]", ce.Pass)
		}
		fmt.Fprintln(w)
	}
}

// Run executes one cell under the executor's policy: chaos injection,
// panic capture, deadline enforcement, retry with deterministic backoff,
// journal lookup/append, and quarantine on exhaustion. A nil executor is
// a direct call. V must round-trip through encoding/json for journaled
// results to be reusable on resume; values that fail to marshal are
// simply recomputed on resume.
func Run[V any](ex *Executor, ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	if ex == nil {
		return fn(ctx)
	}
	telemetry.Add("resilience.cells", 1)
	if ex.Journal != nil {
		if rec, ok := ex.Journal.Lookup(key); ok && rec.Status == StatusOK && len(rec.Value) > 0 {
			var v V
			if err := json.Unmarshal(rec.Value, &v); err == nil {
				telemetry.Add("resilience.journal.hits", 1)
				return v, nil
			}
			// Undecodable value (the journaled type changed shape):
			// fall through and recompute.
		}
	}
	v, used, err := runCell(ex, ctx, key, fn)
	if err == nil {
		ex.journalOK(key, used, v)
		return v, nil
	}
	if ce := AsCellError(err); ce != nil && ex.Journal != nil {
		_ = ex.Journal.Append(Record{
			Key: key, Status: StatusQuarantined, Attempts: ce.Attempts,
			Kind: string(ce.Kind), Pass: ce.Pass, Error: ce.Err.Error(),
		})
	}
	return zero, err
}

// RunEphemeral is Run without journal interaction: same isolation,
// retries, chaos, and quarantine, but nothing read from or written to the
// checkpoint journal. It exists for cells whose key cannot address their
// full inputs — FDO configurations fall outside the fingerprint domain,
// so a journaled value could be replayed against a different profile
// payload.
func RunEphemeral[V any](ex *Executor, ctx context.Context, key string, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	if ex == nil {
		return fn(ctx)
	}
	telemetry.Add("resilience.cells", 1)
	v, _, err := runCell(ex, ctx, key, fn)
	if err != nil {
		return zero, err
	}
	return v, nil
}

// runCell is the attempt loop shared by Run and RunEphemeral; it returns
// the cell's value and the attempt count, or its terminal *CellError.
func runCell[V any](ex *Executor, ctx context.Context, key string, fn func(context.Context) (V, error)) (V, int, error) {
	var zero V
	attempts := ex.Policy.Retries + 1
	var lastErr error
	used := 0
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return zero, used, err
		}
		used = a + 1
		v, err := runOnce(ex, ctx, key, a, fn)
		if err == nil {
			return v, used, nil
		}
		if err == ctx.Err() && err != nil {
			// Parent cancellation is the caller's signal, not a cell
			// fault: propagate without quarantining.
			return zero, used, err
		}
		lastErr = err
		if Classify(err) == ClassPermanent {
			break
		}
		if a < attempts-1 {
			telemetry.Add("resilience.retries", 1)
			sleepCtx(ctx, ex.backoff(key, a))
		}
	}
	return zero, used, ex.quarantine(key, used, lastErr)
}

// runOnce executes a single attempt on its own goroutine so panics are
// captured and a deadline overrun abandons the cell instead of hanging
// the pool. The abandoned goroutine is charged to the cell's deadline
// budget — there is no way to kill it, matching every Go watchdog.
func runOnce[V any](ex *Executor, ctx context.Context, key string, attempt int, fn func(context.Context) (V, error)) (V, error) {
	var zero V
	cctx := ctx
	cancel := func() {}
	if ex.Policy.CellTimeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, ex.Policy.CellTimeout)
	}
	defer cancel()
	fault := FaultNone
	if ex.Chaos != nil {
		fault = ex.Chaos.Decide(key, attempt)
		if fault != FaultNone {
			telemetry.Add("resilience.chaos.injected", 1)
		}
	}
	type outcome struct {
		v   V
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				stack := debug.Stack()
				telemetry.Add("resilience.panics", 1)
				ch <- outcome{err: &panicError{val: p, pass: attributePass(stack), stack: stack}}
			}
		}()
		switch fault {
		case FaultPanic:
			panic("chaos: injected panic")
		case FaultTransient:
			ch <- outcome{err: Transient(errors.New("chaos: injected transient fault"))}
			return
		case FaultStall:
			// Stall past the cell deadline when one exists (the watchdog
			// below converts that into a deadline error); otherwise a
			// bounded sleep followed by a transient error.
			stallMax := 50 * time.Millisecond
			if d := ex.Policy.CellTimeout; d > 0 {
				stallMax = 2 * d
			}
			select {
			case <-cctx.Done():
				ch <- outcome{err: cctx.Err()}
			case <-time.After(stallMax):
				ch <- outcome{err: Transient(errors.New("chaos: injected stall"))}
			}
			return
		}
		v, err := fn(cctx)
		ch <- outcome{v: v, err: err}
	}()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-cctx.Done():
		if err := ctx.Err(); err != nil {
			return zero, err // parent cancelled, not a cell fault
		}
		telemetry.Add("resilience.deadlines", 1)
		return zero, fmt.Errorf("cell deadline %v exceeded: %w",
			ex.Policy.CellTimeout, context.DeadlineExceeded)
	}
}

// backoff computes the deterministic attempt backoff: exponential from
// BackoffBase, capped at BackoffCap, with jitter in [0.5d, 1.0d) derived
// from (seed, key, attempt) — identical at any worker count.
func (ex *Executor) backoff(key string, attempt int) time.Duration {
	d := ex.Policy.BackoffBase << uint(attempt)
	if d > ex.Policy.BackoffCap || d <= 0 {
		d = ex.Policy.BackoffCap
	}
	h := hashParts(ex.Policy.Seed, "backoff", key, fmt.Sprint(attempt))
	frac := float64(h%1024) / 1024
	return d/2 + time.Duration(frac*float64(d/2))
}

// sleepCtx sleeps for d or until the context is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// quarantine records the cell's terminal failure and returns the typed
// error callers test with IsQuarantined.
func (ex *Executor) quarantine(key string, attempts int, cause error) *CellError {
	ce := &CellError{Key: key, Kind: kindOf(cause), Attempts: attempts, Err: cause}
	var pe *panicError
	if errors.As(cause, &pe) {
		ce.Pass = pe.pass
	}
	ex.mu.Lock()
	if _, dup := ex.quarantined[key]; !dup {
		ex.quarantined[key] = ce
	}
	ex.mu.Unlock()
	telemetry.Add("resilience.quarantined", 1)
	return ce
}

// journalOK appends a completed cell's result. Marshal failures drop the
// value (the cell will recompute on resume) but never fail the run.
func (ex *Executor) journalOK(key string, attempts int, v any) {
	if ex.Journal == nil {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		raw = nil
	}
	_ = ex.Journal.Append(Record{
		Key: key, Status: StatusOK, Attempts: attempts, Value: raw,
	})
}
