package resilience

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeJournalFile writes raw journal bytes for crash-shape tests.
func writeJournalFile(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustResume(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := ResumeJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestResumeRewritesUnterminatedFinalRecord locks the fix for the
// lost-checkpoint bug: a final record that parses but lacks its newline
// (a crash exactly between record and terminator) was kept in memory but
// truncated from disk, so a resumed process that never re-appended that
// key silently dropped a completed cell from the durable file. Resume
// must re-write the record (with newline) immediately after truncating.
func TestResumeRewritesUnterminatedFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeJournalFile(t, path,
		`{"key":"a","status":"ok","value":1}`+"\n"+
			`{"key":"b","status":"ok","value":2}`) // no trailing newline

	j := mustResume(t, path)
	if _, ok := j.Lookup("b"); !ok {
		t.Fatal("parseable unterminated record not loaded")
	}
	// Close WITHOUT appending anything: the pre-fix journal leaves "b"
	// truncated away at this point.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("journal does not end in a newline after resume: %q", data)
	}
	j2 := mustResume(t, path)
	defer j2.Close()
	rec, ok := j2.Lookup("b")
	if !ok {
		t.Fatal("record b lost: resume truncated it without re-writing")
	}
	var v int
	if err := json.Unmarshal(rec.Value, &v); err != nil || v != 2 {
		t.Fatalf("record b value = %s, want 2", rec.Value)
	}
	if _, ok := j2.Lookup("a"); !ok {
		t.Fatal("record a lost")
	}
}

// TestResumeReadsThroughLockedDescriptor locks the fix for the
// read-aside bug: resume used to os.ReadFile the path separately from
// the descriptor it would then truncate, so it could load a stale
// snapshot while a live journal was still appending — and truncate away
// records it never saw. Post-fix, resume blocks on the file lock until
// the live journal closes and reads through the same descriptor, so it
// must observe every appended record. (flock attaches to the open file
// description, so two opens conflict even within one process.)
func TestResumeReadsThroughLockedDescriptor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j1, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(Record{Key: "early", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(150 * time.Millisecond)
		if err := j1.Append(Record{Key: "late", Status: StatusOK}); err != nil {
			t.Error(err)
		}
		j1.Close()
	}()

	// Blocks until j1 releases the lock; must then see both records.
	j2 := mustResume(t, path)
	defer j2.Close()
	<-done
	if _, ok := j2.Lookup("early"); !ok {
		t.Fatal("record appended before resume is missing")
	}
	if _, ok := j2.Lookup("late"); !ok {
		t.Fatal("resume read a stale snapshot: record appended while it waited is missing")
	}
}

// TestCreateJournalRefusesLiveJournal locks the fix for the O_TRUNC
// clobber bug: CreateJournal used to truncate unconditionally, so two
// processes pointed at the same -journal path silently destroyed each
// other's checkpoints. Creation must fail with the typed ErrJournalLive
// while another journal holds the file, leave its contents intact, and
// succeed again once the holder closes.
func TestCreateJournalRefusesLiveJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j1, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(Record{Key: "precious", Status: StatusOK}); err != nil {
		t.Fatal(err)
	}

	if _, err := CreateJournal(path); !errors.Is(err, ErrJournalLive) {
		t.Fatalf("second CreateJournal on a live journal: err = %v, want ErrJournalLive", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "precious") {
		t.Fatalf("refused create still clobbered the live journal: %q", data)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// With the holder gone, create (and its truncate) is legitimate.
	j2, err := CreateJournal(path)
	if err != nil {
		t.Fatalf("CreateJournal after holder closed: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 0 {
		t.Fatalf("fresh journal has %d records, want 0", j2.Len())
	}
}
