package debugger

import (
	"testing"

	"debugtuner/internal/pipeline"
)

const dbgSrc = `
var g: int = 100;

func scale(x: int): int {
	var factor: int = 3;
	var scaled: int = x * factor;
	return scaled + g;
}
func main() {
	var total: int = 0;
	for (var i: int = 0; i < 4; i = i + 1) {
		total = total + scale(i);
	}
	print(total);
}
`

func session(t *testing.T, cfg pipeline.Config) *Session {
	t.Helper()
	bin, _, err := pipeline.CompileSource("d.mc", []byte(dbgSrc), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(bin)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestO0TraceIsComplete(t *testing.T) {
	s := session(t, pipeline.MustConfig(pipeline.GCC, "O0"))
	tr, err := s.TraceMain("main", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Stepped) != tr.Steppable {
		t.Fatalf("stepped %d of %d steppable lines at O0",
			len(tr.Stepped), tr.Steppable)
	}
	// At O0, every line inside scale must show factor, scaled (after
	// decl, via whole-scope home slots), x, and the global g.
	line6 := tr.Avail[6] // "var scaled: int = x * factor;"
	if len(line6) < 3 {
		t.Fatalf("only %d variables visible at line 6: %v", len(line6), line6)
	}
}

func TestOptimizedTraceLosesInformation(t *testing.T) {
	base := session(t, pipeline.MustConfig(pipeline.GCC, "O0"))
	baseTr, err := base.TraceMain("main", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	opt := session(t, pipeline.MustConfig(pipeline.GCC, "O2"))
	optTr, err := opt.TraceMain("main", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if len(optTr.Stepped) > len(baseTr.Stepped) {
		t.Fatal("optimized build stepped more lines than O0")
	}
	baseVars, optVars := 0, 0
	for l := range baseTr.Stepped {
		baseVars += len(baseTr.Avail[l])
	}
	for l := range optTr.Stepped {
		optVars += len(optTr.Avail[l])
	}
	if optVars >= baseVars {
		t.Fatalf("optimization lost no variable visibility: %d vs %d",
			optVars, baseVars)
	}
}

func TestTemporaryBreakpointsFireOnce(t *testing.T) {
	s := session(t, pipeline.MustConfig(pipeline.GCC, "O1"))
	tr, err := s.TraceMain("main", 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	// The loop body line is executed 4 times but recorded once: the
	// availability set of any single line stays bounded by the symbol
	// count (a second visit would have to re-add identical IDs anyway;
	// this asserts the map exists exactly for stepped lines).
	for l := range tr.Avail {
		if !tr.Stepped[l] {
			t.Fatalf("availability recorded for unstepped line %d", l)
		}
	}
}

func TestHarnessTrace(t *testing.T) {
	src := `
func fuzz_h(input: int[], n: int) {
	var seen: int = 0;
	for (var i: int = 0; i < n; i = i + 1) {
		if (input[i] > 10) {
			seen = seen + 1;
		}
	}
	print(seen);
}`
	bin, _, err := pipeline.CompileSource("h.mc", []byte(src),
		pipeline.MustConfig(pipeline.Clang, "O1"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(bin)
	if err != nil {
		t.Fatal(err)
	}
	// The second input reaches the then-branch; one session over both
	// must cover it.
	tr, err := s.Trace("fuzz_h", [][]int64{{1, 2}, {50, 60}}, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Stepped[6] {
		t.Fatalf("then-branch line not stepped: %v", tr.Lines())
	}
}

func TestNoDebugSectionRejected(t *testing.T) {
	bin, _, err := pipeline.CompileSource("d.mc", []byte(dbgSrc),
		pipeline.MustConfig(pipeline.GCC, "O0"))
	if err != nil {
		t.Fatal(err)
	}
	bin.Debug = nil
	if _, err := NewSession(bin); err == nil {
		t.Fatal("session without debug info should fail")
	}
}
