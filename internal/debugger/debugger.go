// Package debugger implements the source-level debugger used for trace
// extraction (DebugTuner stage 2, §III.A): it loads a binary's debug
// information, plants a temporary breakpoint on every line in the line
// table, runs the program over a set of inputs in one session, and at
// each stop records which variables are visible with a value.
//
// "Visible with a value" is checked against runtime ground truth: a
// register (or shared spill slot) location only counts when the register
// still holds that variable's value, and frame-based locations only
// count once the prologue has run. Locations present in the debug
// information that fail these checks are exactly the entries static
// metrics over-count (§II).
package debugger

import (
	"errors"
	"fmt"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/vm"
)

// Session drives one binary under the debugger.
type Session struct {
	Bin   *vm.Binary
	Table *debuginfo.Table

	// lineAddrs maps each steppable line to its breakpoint addresses.
	lineAddrs map[int][]uint32
	// varsByFunc caches the variable records per function index, plus
	// the globals under index -1.
	varsByFunc map[int][]*debuginfo.Variable
}

// NewSession decodes the binary's debug section.
func NewSession(bin *vm.Binary) (*Session, error) {
	if bin.Debug == nil {
		return nil, fmt.Errorf("debugger: binary has no debug information")
	}
	table, err := debuginfo.Decode(bin.Debug)
	if err != nil {
		return nil, err
	}
	s := &Session{
		Bin: bin, Table: table,
		lineAddrs:  table.BreakAddrs(),
		varsByFunc: map[int][]*debuginfo.Variable{},
	}
	for i := range table.Vars {
		v := &table.Vars[i]
		s.varsByFunc[int(v.FuncIdx)] = append(s.varsByFunc[int(v.FuncIdx)], v)
	}
	return s, nil
}

// SteppableLines returns the number of breakpoint-eligible lines.
func (s *Session) SteppableLines() int { return len(s.lineAddrs) }

// Trace runs the harness over every input in one debug session with
// temporary breakpoints on all steppable lines, and returns the trace.
// Each input is an argument vector (array contents); the harness is
// called as harness(input, len(input)).
func (s *Session) Trace(harness string, inputs [][]int64, budget int64) (*dbgtrace.Trace, error) {
	tr := dbgtrace.NewTrace()
	tr.Steppable = len(s.lineAddrs)

	m := vm.New(s.Bin)
	m.StepBudget = budget
	for _, addrs := range s.lineAddrs {
		for _, a := range addrs {
			m.SetBreak(int(a))
		}
	}
	m.OnBreak = func(m *vm.Machine, addr int) {
		line := int(s.Table.LineForAddr(uint32(addr)))
		if line <= 0 {
			m.ClearBreak(addr)
			return
		}
		vars := s.availableVars(m, uint32(addr))
		tr.Record(line, vars)
		// Temporary breakpoint: once the line is stepped, all of its
		// addresses are released.
		for _, a := range s.lineAddrs[line] {
			m.ClearBreak(int(a))
		}
	}
	for _, in := range inputs {
		h := m.NewArray(in)
		if _, err := m.Call(harness, h, int64(len(in))); err != nil {
			if errors.Is(err, vm.ErrBudget) {
				// Budget exhaustion truncates the trace but the session
				// remains valid — matching a debugger session killed by
				// a watchdog.
				break
			}
			return nil, err
		}
		if m.BreakCount() == 0 {
			break // every line stepped; later inputs add nothing
		}
	}
	return tr, nil
}

// TraceMain runs a zero-argument entry point (synthetic programs and
// examples use main-style entry) under the same temporary-breakpoint
// session.
func (s *Session) TraceMain(entry string, budget int64) (*dbgtrace.Trace, error) {
	tr := dbgtrace.NewTrace()
	tr.Steppable = len(s.lineAddrs)
	m := vm.New(s.Bin)
	m.StepBudget = budget
	for _, addrs := range s.lineAddrs {
		for _, a := range addrs {
			m.SetBreak(int(a))
		}
	}
	m.OnBreak = func(m *vm.Machine, addr int) {
		line := int(s.Table.LineForAddr(uint32(addr)))
		if line <= 0 {
			m.ClearBreak(addr)
			return
		}
		tr.Record(line, s.availableVars(m, uint32(addr)))
		for _, a := range s.lineAddrs[line] {
			m.ClearBreak(int(a))
		}
	}
	if _, err := m.Call(entry); err != nil && !errors.Is(err, vm.ErrBudget) {
		return nil, err
	}
	return tr, nil
}

// availableVars evaluates each in-scope variable's location at the stop
// and returns the symbol IDs that materialize.
func (s *Session) availableVars(m *vm.Machine, addr uint32) []int {
	var out []int
	fr := m.Frame()
	fd := s.Table.FuncForAddr(addr)
	if fd != nil && fr != nil {
		fi := -1
		for i := range s.Table.Funcs {
			if &s.Table.Funcs[i] == fd {
				fi = i
				break
			}
		}
		for _, v := range s.varsByFunc[fi] {
			if s.materializes(m, fr, v, addr) {
				out = append(out, int(v.SymID))
			}
		}
	}
	for _, v := range s.varsByFunc[-1] { // globals: static storage
		if e := v.LocAt(addr); e != nil && e.Kind == debuginfo.LocGlobal {
			out = append(out, int(v.SymID))
		}
	}
	return out
}

// materializes checks a local variable's location against the frame.
func (s *Session) materializes(m *vm.Machine, fr *vm.Frame, v *debuginfo.Variable, addr uint32) bool {
	e := v.LocAt(addr)
	if e == nil {
		return false
	}
	switch e.Kind {
	case debuginfo.LocConst:
		return true
	case debuginfo.LocReg:
		r := int(e.Operand)
		return r >= 0 && r < vm.NumRegs && fr.Owner[r] == v.SymID+1
	case debuginfo.LocSlot:
		// Home slots read unconditionally once the frame exists — the
		// DWARF whole-scope behavior at -O0.
		return fr.PrologueDone && int(e.Operand) < len(fr.Slots)
	case debuginfo.LocSpill:
		sl := int(e.Operand)
		return fr.PrologueDone && sl >= 0 && sl < len(fr.SlotOwn) &&
			fr.SlotOwn[sl] == v.SymID+1
	}
	return false
}

// ReadVar returns the variable's value at the current stop, for
// interactive use (cmd/mdb); ok is false when it does not materialize.
func (s *Session) ReadVar(m *vm.Machine, name string, addr uint32) (int64, bool) {
	fr := m.Frame()
	fd := s.Table.FuncForAddr(addr)
	if fr == nil || fd == nil {
		return 0, false
	}
	for i := range s.Table.Funcs {
		if &s.Table.Funcs[i] != fd {
			continue
		}
		for _, v := range s.varsByFunc[i] {
			if v.Name != name || !s.materializes(m, fr, v, addr) {
				continue
			}
			e := v.LocAt(addr)
			switch e.Kind {
			case debuginfo.LocConst:
				return e.Operand, true
			case debuginfo.LocReg:
				return fr.Regs[e.Operand], true
			case debuginfo.LocSlot, debuginfo.LocSpill:
				return fr.Slots[e.Operand], true
			}
		}
	}
	for _, v := range s.varsByFunc[-1] {
		if v.Name == name {
			if e := v.LocAt(addr); e != nil && e.Kind == debuginfo.LocGlobal {
				return m.Globals[e.Operand], true
			}
		}
	}
	return 0, false
}
