// Package irbuild lowers a type-checked MiniC AST into unoptimized SSA IR.
//
// The lowering deliberately mirrors a -O0 clang build: every source
// variable lives in a stack slot, assignments are slot stores, and reads
// are slot loads. The mem2reg/SROA pass later promotes slots to SSA
// values; everything DebugTuner measures about variable availability
// starts from the OpDbgValue markers this package plants at each
// source-level assignment.
package irbuild

import (
	"fmt"

	"debugtuner/internal/ast"
	"debugtuner/internal/ir"
	"debugtuner/internal/sema"
)

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type builder struct {
	prog     *ir.Program
	f        *ir.Func
	cur      *ir.Block
	slotOf   map[*ast.Symbol]int
	globalOf map[*ast.Symbol]*ir.Global
}

// Build lowers the checked program into IR.
func Build(info *sema.Info) (*ir.Program, error) {
	b := &builder{
		prog:     &ir.Program{Symbols: info.Symbols},
		globalOf: make(map[*ast.Symbol]*ir.Global),
	}
	for _, g := range info.Program.Globals {
		d := g.Decl
		ig := &ir.Global{
			Name: d.Name, Index: len(b.prog.Globals),
			IsArray: d.Type == ast.TypeArray, Sym: d.Sym,
		}
		switch init := d.Init.(type) {
		case *ast.IntLit:
			ig.Init = init.Val
		case *ast.Unary:
			lit, ok := init.X.(*ast.IntLit)
			if !ok || init.Op != "-" {
				return nil, fmt.Errorf("%s: global initializer for %q must be constant", d.PosVal, d.Name)
			}
			ig.Init = -lit.Val
		case *ast.NewArray:
			sz, ok := init.Size.(*ast.IntLit)
			if !ok {
				return nil, fmt.Errorf("%s: global array %q size must be a literal", d.PosVal, d.Name)
			}
			ig.Init = sz.Val
		case nil:
			// zero scalar
		}
		b.prog.Globals = append(b.prog.Globals, ig)
		b.globalOf[d.Sym] = ig
	}
	// The last closing brace bounds the source extent; ir.Verify uses it
	// to reject stale out-of-range lines, so set it before building.
	for _, fd := range info.Program.Funcs {
		if fd.EndPos.Line > b.prog.MaxLine {
			b.prog.MaxLine = fd.EndPos.Line
		}
	}
	for _, fd := range info.Program.Funcs {
		if err := b.buildFunc(fd); err != nil {
			return nil, err
		}
	}
	return b.prog, nil
}

func (b *builder) buildFunc(fd *ast.FuncDecl) error {
	f := &ir.Func{Name: fd.Name, NParams: len(fd.Params), Prog: b.prog, StartLine: fd.PosVal.Line}
	b.prog.Funcs = append(b.prog.Funcs, f)
	b.f = f
	b.slotOf = make(map[*ast.Symbol]int)
	b.cur = f.NewBlock()

	for i, p := range fd.Params {
		f.ParamVars = append(f.ParamVars, p.Sym)
		pv := b.emit(ir.OpParam, fd.PosVal.Line)
		pv.AuxInt = int64(i)
		slot := b.newSlot(p.Sym)
		b.emitStore(slot, pv, fd.PosVal.Line)
		b.dbgValue(p.Sym, pv, fd.PosVal.Line)
	}
	b.buildBlock(fd.Body, nil)
	if b.cur != nil && b.cur.Term() == nil {
		line := fd.EndPos.Line
		if fd.Result == ast.TypeInt {
			zero := b.emit(ir.OpConst, line)
			zero.AuxInt = 0
			b.emit(ir.OpRet, line, zero)
		} else {
			b.emit(ir.OpRet, line)
		}
	}
	// Terminate any dangling blocks created after returns.
	for _, blk := range f.Blocks {
		if blk.Term() == nil {
			v := f.NewValue(blk, ir.OpRet, 0)
			blk.Instrs = append(blk.Instrs, v)
		}
	}
	ir.RemoveUnreachable(f)
	return ir.Verify(f)
}

func (b *builder) newSlot(sym *ast.Symbol) int {
	slot := b.f.NumSlots
	b.f.NumSlots++
	b.f.SlotVars = append(b.f.SlotVars, sym)
	if sym != nil {
		b.slotOf[sym] = slot
	}
	return slot
}

// emit appends an instruction to the current block.
func (b *builder) emit(op ir.Op, line int, args ...*ir.Value) *ir.Value {
	v := b.f.NewValue(b.cur, op, line, args...)
	b.cur.Instrs = append(b.cur.Instrs, v)
	return v
}

func (b *builder) emitConst(c int64, line int) *ir.Value {
	v := b.emit(ir.OpConst, line)
	v.AuxInt = c
	return v
}

func (b *builder) emitStore(slot int, val *ir.Value, line int) {
	s := b.emit(ir.OpSlotStore, line, val)
	s.AuxInt = int64(slot)
}

func (b *builder) emitLoad(slot int, line int) *ir.Value {
	v := b.emit(ir.OpSlotLoad, line)
	v.AuxInt = int64(slot)
	return v
}

// dbgValue plants the marker that binds sym to val from this point on.
func (b *builder) dbgValue(sym *ast.Symbol, val *ir.Value, line int) {
	v := b.emit(ir.OpDbgValue, line, val)
	v.Var = sym
}

// jump terminates the current block with a jump to target.
func (b *builder) jump(target *ir.Block, line int) {
	b.emit(ir.OpJmp, line)
	ir.AddEdge(b.cur, target)
}

// branch terminates the current block with a conditional branch.
func (b *builder) branch(cond *ir.Value, then, els *ir.Block, line int) {
	b.emit(ir.OpBr, line, cond)
	ir.AddEdge(b.cur, then)
	ir.AddEdge(b.cur, els)
}

func (b *builder) buildBlock(blk *ast.Block, loops []loopCtx) {
	for _, s := range blk.Stmts {
		b.buildStmt(s, loops)
	}
}

func (b *builder) buildStmt(s ast.Stmt, loops []loopCtx) {
	switch s := s.(type) {
	case *ast.VarDecl:
		line := s.PosVal.Line
		slot := b.newSlot(s.Sym)
		var val *ir.Value
		if s.Init != nil {
			val = b.buildExpr(s.Init, loops)
		} else {
			val = b.emitConst(0, line)
		}
		b.emitStore(slot, val, line)
		b.dbgValue(s.Sym, val, line)
	case *ast.Assign:
		line := s.PosVal.Line
		if s.Target != nil {
			val := b.buildExpr(s.Value, loops)
			b.assignVar(s.Target.Sym, val, line)
			return
		}
		arr := b.buildExpr(s.Arr, loops)
		idx := b.buildExpr(s.Idx, loops)
		val := b.buildExpr(s.Value, loops)
		b.emit(ir.OpAStore, line, arr, idx, val)
	case *ast.ExprStmt:
		b.buildExpr(s.X, loops)
	case *ast.PrintStmt:
		val := b.buildExpr(s.X, loops)
		b.emit(ir.OpPrint, s.PosVal.Line, val)
	case *ast.If:
		line := s.PosVal.Line
		cond := b.buildExpr(s.Cond, loops)
		then := b.f.NewBlock()
		var els *ir.Block
		join := b.f.NewBlock()
		if s.Else != nil {
			els = b.f.NewBlock()
			b.branch(cond, then, els, line)
		} else {
			b.branch(cond, then, join, line)
		}
		b.cur = then
		b.buildBlock(s.Then, loops)
		if b.cur.Term() == nil {
			b.jump(join, s.Then.EndPos.Line)
		}
		if s.Else != nil {
			b.cur = els
			b.buildStmt(s.Else, loops)
			if b.cur.Term() == nil {
				b.jump(join, line)
			}
		}
		b.cur = join
	case *ast.While:
		line := s.PosVal.Line
		head := b.f.NewBlock()
		body := b.f.NewBlock()
		exit := b.f.NewBlock()
		b.jump(head, line)
		b.cur = head
		cond := b.buildExpr(s.Cond, loops)
		b.branch(cond, body, exit, line)
		b.cur = body
		inner := append(loops, loopCtx{breakTo: exit, continueTo: head})
		for _, st := range s.Body.Stmts {
			b.buildStmt(st, inner)
		}
		if b.cur.Term() == nil {
			b.jump(head, s.Body.EndPos.Line)
		}
		b.cur = exit
	case *ast.For:
		line := s.PosVal.Line
		if s.Init != nil {
			b.buildStmt(s.Init, loops)
		}
		head := b.f.NewBlock()
		body := b.f.NewBlock()
		post := b.f.NewBlock()
		exit := b.f.NewBlock()
		b.jump(head, line)
		b.cur = head
		if s.Cond != nil {
			cond := b.buildExpr(s.Cond, loops)
			b.branch(cond, body, exit, line)
		} else {
			b.jump(body, line)
		}
		b.cur = body
		inner := append(loops, loopCtx{breakTo: exit, continueTo: post})
		for _, st := range s.Body.Stmts {
			b.buildStmt(st, inner)
		}
		if b.cur.Term() == nil {
			b.jump(post, s.Body.EndPos.Line)
		}
		b.cur = post
		if s.Post != nil {
			b.buildStmt(s.Post, loops)
		}
		if b.cur.Term() == nil {
			b.jump(head, line)
		}
		b.cur = exit
	case *ast.Break:
		b.jump(loops[len(loops)-1].breakTo, s.PosVal.Line)
		b.cur = b.f.NewBlock()
	case *ast.Continue:
		b.jump(loops[len(loops)-1].continueTo, s.PosVal.Line)
		b.cur = b.f.NewBlock()
	case *ast.Return:
		line := s.PosVal.Line
		if s.Value != nil {
			val := b.buildExpr(s.Value, loops)
			b.emit(ir.OpRet, line, val)
		} else {
			b.emit(ir.OpRet, line)
		}
		b.cur = b.f.NewBlock()
	case *ast.Block:
		for _, st := range s.Stmts {
			b.buildStmt(st, loops)
		}
	}
}

// assignVar stores val into the variable's storage and plants a DbgValue.
func (b *builder) assignVar(sym *ast.Symbol, val *ir.Value, line int) {
	if sym.Kind == ast.SymGlobal {
		g := b.globalOf[sym]
		st := b.emit(ir.OpGStore, line, val)
		st.AuxInt = int64(g.Index)
		return
	}
	slot, ok := b.slotOf[sym]
	if !ok {
		slot = b.newSlot(sym)
	}
	b.emitStore(slot, val, line)
	b.dbgValue(sym, val, line)
}

func (b *builder) readVar(sym *ast.Symbol, line int) *ir.Value {
	if sym.Kind == ast.SymGlobal {
		g := b.globalOf[sym]
		if g.IsArray {
			v := b.emit(ir.OpGArr, line)
			v.AuxInt = int64(g.Index)
			return v
		}
		v := b.emit(ir.OpGLoad, line)
		v.AuxInt = int64(g.Index)
		return v
	}
	return b.emitLoad(b.slotOf[sym], line)
}

var binOps = map[string]ir.Op{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpDiv, "%": ir.OpRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpShr,
	"==": ir.OpEq, "!=": ir.OpNe, "<": ir.OpLt, "<=": ir.OpLe,
	">": ir.OpGt, ">=": ir.OpGe,
}

func (b *builder) buildExpr(e ast.Expr, loops []loopCtx) *ir.Value {
	switch e := e.(type) {
	case *ast.IntLit:
		return b.emitConst(e.Val, e.PosVal.Line)
	case *ast.Name:
		return b.readVar(e.Sym, e.PosVal.Line)
	case *ast.Unary:
		x := b.buildExpr(e.X, loops)
		if e.Op == "-" {
			return b.emit(ir.OpNeg, e.PosVal.Line, x)
		}
		return b.emit(ir.OpNot, e.PosVal.Line, x)
	case *ast.Binary:
		if e.Op == "&&" || e.Op == "||" {
			return b.buildShortCircuit(e, loops)
		}
		x := b.buildExpr(e.X, loops)
		y := b.buildExpr(e.Y, loops)
		return b.emit(binOps[e.Op], e.PosVal.Line, x, y)
	case *ast.Index:
		arr := b.buildExpr(e.Arr, loops)
		idx := b.buildExpr(e.Idx, loops)
		return b.emit(ir.OpALoad, e.PosVal.Line, arr, idx)
	case *ast.Call:
		var args []*ir.Value
		for _, a := range e.Args {
			args = append(args, b.buildExpr(a, loops))
		}
		c := b.emit(ir.OpCall, e.PosVal.Line, args...)
		c.Aux = e.Fun
		return c
	case *ast.NewArray:
		size := b.buildExpr(e.Size, loops)
		return b.emit(ir.OpNewArray, e.PosVal.Line, size)
	case *ast.LenExpr:
		arr := b.buildExpr(e.Arr, loops)
		return b.emit(ir.OpLen, e.PosVal.Line, arr)
	}
	panic("irbuild: unhandled expression")
}

// buildShortCircuit lowers && and || with control flow through a
// temporary slot, the same shape clang emits at -O0. mem2reg turns the
// slot into a phi.
func (b *builder) buildShortCircuit(e *ast.Binary, loops []loopCtx) *ir.Value {
	line := e.PosVal.Line
	slot := b.newSlot(nil)
	x := b.buildExpr(e.X, loops)
	xb := b.emit(ir.OpNe, line, x, b.emitConst(0, line))
	rhs := b.f.NewBlock()
	join := b.f.NewBlock()
	if e.Op == "&&" {
		// x == 0: result is 0, skip rhs.
		b.emitStore(slot, xb, line)
		b.branch(xb, rhs, join, line)
	} else {
		// x != 0: result is 1, skip rhs.
		b.emitStore(slot, xb, line)
		b.branch(xb, join, rhs, line)
	}
	b.cur = rhs
	y := b.buildExpr(e.Y, loops)
	yb := b.emit(ir.OpNe, line, y, b.emitConst(0, line))
	b.emitStore(slot, yb, line)
	b.jump(join, line)
	b.cur = join
	return b.emitLoad(slot, line)
}
