package irbuild

import (
	"testing"

	"debugtuner/internal/ir"
	"debugtuner/internal/parser"
	"debugtuner/internal/sema"
)

// compile parses, checks, and lowers a MiniC source string.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.ParseString("test.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	p, err := Build(info)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := ir.VerifyProgram(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return p
}

// run executes fn and returns the print stream.
func run(t *testing.T, p *ir.Program, fn string, args ...int64) []int64 {
	t.Helper()
	in := ir.NewInterp(p, 1<<24)
	if _, err := in.Call(fn, args...); err != nil {
		t.Fatalf("interp: %v", err)
	}
	return in.Output()
}

func eq(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	p := compile(t, `
func main() {
	var sum: int = 0;
	for (var i: int = 1; i <= 10; i = i + 1) {
		if (i % 2 == 0) {
			sum = sum + i;
		}
	}
	print(sum); // 2+4+6+8+10 = 30
	var x: int = 7;
	while (x > 0) {
		x = x - 3;
	}
	print(x); // 7 -> 4 -> 1 -> -2
}
`)
	eq(t, run(t, p, "main"), []int64{30, -2})
}

func TestFunctionsAndRecursion(t *testing.T) {
	p := compile(t, `
func fib(n: int): int {
	if (n < 2) {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}
func main() {
	print(fib(10));
}
`)
	eq(t, run(t, p, "main"), []int64{55})
}

func TestArraysAndGlobals(t *testing.T) {
	p := compile(t, `
var total: int = 0;
var table: int[] = new int[8];

func fill(n: int) {
	for (var i: int = 0; i < n; i = i + 1) {
		table[i] = i * i;
	}
}
func main() {
	fill(8);
	for (var i: int = 0; i < len(table); i = i + 1) {
		total = total + table[i];
	}
	print(total); // 0+1+4+9+16+25+36+49 = 140
	table[100] = 5; // OOB store: no-op
	print(table[100]); // OOB load: 0
}
`)
	eq(t, run(t, p, "main"), []int64{140, 0})
}

func TestShortCircuit(t *testing.T) {
	p := compile(t, `
var calls: int = 0;

func bump(v: int): int {
	calls = calls + 1;
	return v;
}
func main() {
	if (0 && bump(1)) {
		print(111);
	}
	print(calls); // 0: rhs not evaluated
	if (1 || bump(1)) {
		print(222);
	}
	print(calls); // still 0
	if (bump(1) && bump(1)) {
		print(333);
	}
	print(calls); // 2
}
`)
	eq(t, run(t, p, "main"), []int64{0, 222, 0, 333, 2})
}

func TestBreakContinueNested(t *testing.T) {
	p := compile(t, `
func main() {
	var acc: int = 0;
	for (var i: int = 0; i < 5; i = i + 1) {
		for (var j: int = 0; j < 5; j = j + 1) {
			if (j == 3) {
				break;
			}
			if (j == 1) {
				continue;
			}
			acc = acc + 10 * i + j;
		}
		if (i == 3) {
			break;
		}
	}
	print(acc);
}
`)
	// Inner loop adds j in {0, 2} per i, for i in 0..3:
	// sum over i of (10i+0 + 10i+2) = sum(20i + 2) for i=0..3 = 120+8 = 128
	eq(t, run(t, p, "main"), []int64{128})
}

func TestTotalSemantics(t *testing.T) {
	p := compile(t, `
func main() {
	print(7 / 0);      // 0
	print(7 % 0);      // 0
	print(1 << 70);    // shift masked to 6 bits: 1 << 6 = 64
	print(-8 >> 1);    // arithmetic: -4
	print(0x10 + 'a'); // 16 + 97 = 113
}
`)
	eq(t, run(t, p, "main"), []int64{0, 0, 64, -4, 113})
}

func TestHarnessDetection(t *testing.T) {
	prog, err := parser.ParseString("h.mc", `
func fuzz_one(input: int[], n: int) {
	var s: int = 0;
	for (var i: int = 0; i < n; i = i + 1) {
		s = s + input[i];
	}
	print(s);
}
func helper(x: int): int { return x; }
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Harnesses) != 1 || info.Harnesses[0] != "fuzz_one" {
		t.Fatalf("harnesses = %v, want [fuzz_one]", info.Harnesses)
	}
	p, err := Build(info)
	if err != nil {
		t.Fatal(err)
	}
	in := ir.NewInterp(p, 1<<20)
	h := in.NewArray([]int64{1, 2, 3, 4})
	if _, err := in.Call("fuzz_one", h, 4); err != nil {
		t.Fatal(err)
	}
	eq(t, in.Output(), []int64{10})
}

func TestDbgValuesPresent(t *testing.T) {
	p := compile(t, `
func main() {
	var a: int = 1;
	var b: int = 2;
	a = a + b;
	print(a);
}
`)
	st := ir.CollectStats(p)
	if st.DbgValues < 3 { // decl a, decl b, assign a
		t.Fatalf("DbgValues = %d, want >= 3", st.DbgValues)
	}
}
