package hunt

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"debugtuner/internal/resilience"
	"debugtuner/internal/workerpool"
)

func cancelledContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// smallOpts is a campaign small enough for unit tests.
func smallOpts() Options {
	o := DefaultOptions()
	o.Epochs = 1
	o.Candidates = 3
	o.Spec = "gcc-O2"
	o.ReduceProbes = 120
	return o
}

func runCampaign(t *testing.T, opts Options) (string, *Report) {
	t.Helper()
	var buf bytes.Buffer
	rep, err := Run(&buf, opts)
	if err != nil {
		t.Fatalf("hunt.Run: %v\n%s", err, buf.String())
	}
	return buf.String(), rep
}

// TestPlantedBugFoundBucketedReduced is the campaign acceptance drill:
// a violation planted after a known pass must be found by every
// candidate, bucketed under exactly (rule, pass), reduced, and
// committed to the corpus with trend state.
func TestPlantedBugFoundBucketedReduced(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.Plant = "scope-nesting@dse"
	opts.CorpusDir = dir

	out, rep := runCampaign(t, opts)
	if rep.Findings == 0 || rep.NewBuckets == 0 {
		t.Fatalf("planted bug not found:\n%s", out)
	}
	if !strings.Contains(out, "[scope-nesting @ dse] count 3") {
		t.Fatalf("planted bug not bucketed under (scope-nesting, dse):\n%s", out)
	}
	if !strings.Contains(out, "reduced ") {
		t.Fatalf("witness not reduced:\n%s", out)
	}
	fixture := filepath.Join(dir, "scope-nesting-dse.mc")
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("fixture not committed: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(data), "// hunt witness: [scope-nesting @ dse]") {
		t.Fatalf("fixture missing provenance header:\n%s", data)
	}
	if _, err := os.Stat(filepath.Join(dir, "hunt-state.json")); err != nil {
		t.Fatalf("trend state not committed: %v", err)
	}
}

// TestPlantedLocStaleDrill: the binary-level loc-stale plant exercises
// the mid-chain attribution path — the corruption is invisible to
// CheckModule and only the per-pass base-options compile inside
// BuildVerifiedTamper can catch it, so a passing drill proves the
// flow-sensitive rules participate in find/bucket/reduce end to end.
func TestPlantedLocStaleDrill(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.Plant = "loc-stale@dse"
	opts.CorpusDir = dir

	out, rep := runCampaign(t, opts)
	if rep.Findings == 0 || rep.NewBuckets == 0 {
		t.Fatalf("planted loc-stale not found:\n%s", out)
	}
	if !strings.Contains(out, "[loc-stale @ dse] count 3") {
		t.Fatalf("planted loc-stale not bucketed under (loc-stale, dse):\n%s", out)
	}
	if !strings.Contains(out, "reduced ") {
		t.Fatalf("witness not reduced:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "loc-stale-dse.mc"))
	if err != nil {
		t.Fatalf("fixture not committed: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(data), "// hunt witness: [loc-stale @ dse]") {
		t.Fatalf("fixture missing provenance header:\n%s", data)
	}
}

// TestCampaignDeterministicAcrossWorkers: report bytes must not depend
// on the worker-pool size.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	opts := smallOpts()
	workerpool.SetWorkers(1)
	a, _ := runCampaign(t, opts)
	workerpool.SetWorkers(4)
	b, _ := runCampaign(t, opts)
	workerpool.SetWorkers(0)
	if a != b {
		t.Fatalf("report differs between -j1 and -j4:\n--- j1:\n%s--- j4:\n%s", a, b)
	}
	c, _ := runCampaign(t, opts)
	if a != c {
		t.Fatalf("report differs between runs:\n%s\nvs\n%s", a, c)
	}
}

// TestResumeByteIdentical: a journaled campaign resumed from its own
// journal replays every cell from disk and renders identical bytes.
func TestResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "hunt.jsonl")
	opts := smallOpts()
	opts.Plant = "dbg-orphan@dce"

	withJournal := func(open func() (resilience.Checkpointer, error)) string {
		j, err := open()
		if err != nil {
			t.Fatal(err)
		}
		ex := resilience.NewExecutor(resilience.DefaultPolicy())
		ex.Journal = j
		prev := resilience.Install(ex)
		defer resilience.Install(prev)
		out, _ := runCampaign(t, opts)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := withJournal(func() (resilience.Checkpointer, error) {
		return resilience.CreateJournal(jpath)
	})
	resumed := withJournal(func() (resilience.Checkpointer, error) {
		return resilience.ResumeJournal(jpath)
	})
	if first != resumed {
		t.Fatalf("resumed report differs:\n--- first:\n%s--- resumed:\n%s", first, resumed)
	}
}

// TestWorkerLeaseMergeDedup: two workers sharing a -work-dir report the
// same buckets; the merge deduplicates cells, the render pass commits
// exactly one fixture, and the merged report matches the
// single-process run byte for byte.
func TestWorkerLeaseMergeDedup(t *testing.T) {
	opts := smallOpts()
	// The dse plant stays a single bucket: later passes do not clone the
	// planted binding (an early-pass plant gets duplicated by downstream
	// unrolling/jump-threading into extra per-pass buckets).
	opts.Plant = "scope-nesting@dse"

	// Reference: plain single-process run with a commit dir.
	refDir := t.TempDir()
	refOpts := opts
	refOpts.CorpusDir = refDir
	want, _ := runCampaign(t, refOpts)

	workDir := t.TempDir()
	runWorker := func(id string) {
		wj, err := resilience.OpenWork(workDir, id, resilience.DefaultLeaseTTL)
		if err != nil {
			t.Fatal(err)
		}
		ex := resilience.NewExecutor(resilience.DefaultPolicy())
		ex.Journal = wj
		prev := resilience.Install(ex)
		defer resilience.Install(prev)
		wopts := opts
		wopts.Commit = false // leased workers never write fixtures
		runCampaign(t, wopts)
		if err := wj.Close(); err != nil {
			t.Fatal(err)
		}
	}
	runWorker("w1")
	runWorker("w2") // every cell already journaled: pure replay, no dup work

	recs, err := resilience.MergeDir(workDir)
	if err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(workDir, "merged.jsonl")
	if err := resilience.WriteMerged(merged, recs); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range recs {
		seen[r.Key]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("merge kept %d records for cell %s", n, k)
		}
	}

	// Render pass: resume from the merge with commit on.
	j, err := resilience.ResumeJournal(merged)
	if err != nil {
		t.Fatal(err)
	}
	ex := resilience.NewExecutor(resilience.DefaultPolicy())
	ex.Journal = j
	prev := resilience.Install(ex)
	defer resilience.Install(prev)
	outDir := t.TempDir()
	ropts := opts
	ropts.CorpusDir = outDir
	got, _ := runCampaign(t, ropts)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	if got != want {
		t.Fatalf("merged render differs from single-process run:\n--- merged:\n%s--- plain:\n%s", got, want)
	}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	fixtures := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mc") {
			fixtures++
		}
	}
	if fixtures != 1 {
		t.Fatalf("want exactly 1 fixture from the merged render, got %d", fixtures)
	}
}

// TestInterruptedCampaignReportsAndSkipsCommit: a cancelled Interrupt
// context stops the run, marks the report interrupted, and commits
// nothing.
func TestInterruptedCampaignReportsAndSkipsCommit(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.CorpusDir = dir
	opts.Interrupt = cancelledContext()

	var buf bytes.Buffer
	rep, err := Run(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	if !strings.Contains(buf.String(), "HUNT INTERRUPTED") {
		t.Fatalf("missing interrupted banner:\n%s", buf.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "hunt-state.json")); !os.IsNotExist(err) {
		t.Fatal("interrupted run committed state")
	}
}

// TestCommittedCorpusReplays: every reduced witness committed under
// testdata/hunt must still reproduce a finding of its recorded
// (rule, pass) class — the regression corpus is only worth committing
// if it keeps regressing.
func TestCommittedCorpusReplays(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "hunt")
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		t.Skip("no committed corpus")
	}
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var rule, pass, plant string
		for _, line := range strings.Split(string(data), "\n") {
			if s, ok := strings.CutPrefix(line, "// hunt witness: ["); ok {
				if r, p, ok := strings.Cut(strings.TrimSuffix(s, "]"), " @ "); ok {
					rule, pass = r, p
				}
			}
			if s, ok := strings.CutPrefix(line, "// plant: "); ok {
				plant = s
			}
		}
		if rule == "" {
			t.Errorf("%s: missing witness header", e.Name())
			continue
		}
		opts := smallOpts()
		opts.Plant = plant
		c, err := newCampaign(opts)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !c.verifyPredicate(rule, pass)(data) {
			t.Errorf("%s: no longer reproduces [%s @ %s]", e.Name(), rule, pass)
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("committed corpus has no fixtures")
	}
}

// TestBadOptionsRejected: bad specs fail at option time, not mid-run.
func TestBadOptionsRejected(t *testing.T) {
	for _, mod := range []func(*Options){
		func(o *Options) { o.Plant = "nonsense" },
		func(o *Options) { o.Plant = "loc-overlap@dse" },            // no plant recipe
		func(o *Options) { o.Plant = "scope-nesting@no-such" },      // unknown pass
		func(o *Options) { o.Plant = "scope-nesting@crossjumping" }, // back-end stage: hook never fires
		func(o *Options) { o.Spec = "gcc-O9" },
		func(o *Options) { o.Denom = "line-table" },
		func(o *Options) { o.Epochs = 0 },
		func(o *Options) { o.Spec = "gcc-O0" }, // unoptimized primary
	} {
		opts := smallOpts()
		mod(&opts)
		if _, err := Run(&bytes.Buffer{}, opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
}
