package hunt

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"debugtuner/internal/dbgtrace"
	"debugtuner/internal/debugger"
	"debugtuner/internal/debuginfo"
	"debugtuner/internal/difftest"
	"debugtuner/internal/ir"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/sema"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/synth"
	"debugtuner/internal/telemetry"
)

// huntTraceBudget bounds the O0 baseline trace behind the stepped-o0
// denominator; synthetic candidates finish well inside it.
const huntTraceBudget int64 = 1 << 24

// candidate is one generated program of the campaign.
type candidate struct {
	Name string
	Src  []byte
}

// generate derives one epoch's candidates from the campaign seed: even
// indices are plain default-profile programs (coverage floor), odd
// indices are mutated under the feedback weights (directed search).
// Everything is a pure function of (campaign fingerprint, epoch, index,
// weights), so a resumed or re-rendered run regenerates the exact set.
func (c *campaign) generate(epoch int, w synth.Weights) []candidate {
	out := make([]candidate, 0, c.opts.Candidates)
	for i := 0; i < c.opts.Candidates; i++ {
		sub := int64(resilience.HashString(c.fp, "cand",
			fmt.Sprint(epoch), fmt.Sprint(i)) >> 1)
		prof := synth.DefaultOptions()
		if i%2 == 1 {
			prof = synth.Mutate(rand.New(rand.NewSource(sub)), prof, w)
		}
		out = append(out, candidate{
			Name: fmt.Sprintf("hunt-e%dc%02d", epoch, i),
			Src:  []byte(synth.Generate(sub, prof)),
		})
	}
	return out
}

// weightsFor is the current feedback signal: the calibration baseline
// plus a boost per known bucket's pass family (state buckets and the
// ones this run already found). Deterministic on resume because journal
// replay reproduces earlier epochs' buckets exactly.
func (c *campaign) weightsFor() synth.Weights {
	w := c.base
	boost := func(pass string) {
		const step, cap = 0.5, 3.0
		switch passFamily(pass) {
		case "loops":
			if w.Loops < cap {
				w.Loops += step
			}
		case "calls":
			if w.Calls < cap {
				w.Calls += step
			}
		case "vars":
			if w.Vars < cap {
				w.Vars += step
			}
		default:
			if w.Exprs < cap {
				w.Exprs += step
			}
		}
	}
	var passes []string
	for key := range c.state.Buckets {
		if _, pass, ok := strings.Cut(key, "@"); ok {
			passes = append(passes, pass)
		}
	}
	for _, key := range c.order {
		passes = append(passes, c.buckets[key].Pass)
	}
	sort.Strings(passes)
	for _, p := range passes {
		boost(p)
	}
	return w
}

// calibrate builds a few fixed synthetic programs under the primary
// config with a scoped telemetry sink and turns the damage ledger into
// family weights: families whose passes dropped bindings or zeroed
// lines get proportionally more generation effort. Only count fields
// are read — wall-clock would make the weights (and so the whole
// campaign) nondeterministic.
func calibrate(primary pipeline.Config) synth.Weights {
	snk := telemetry.NewSink()
	prev := telemetry.Install(snk)
	for seed := int64(101); seed <= 103; seed++ {
		src := []byte(synth.Generate(seed, synth.DefaultOptions()))
		if ir0, _, err := frontendIR("calib.mc", src); err == nil {
			pipeline.Build(ir0, primary)
		}
	}
	telemetry.Install(prev)

	fam := map[string]int64{}
	var total int64
	for pass, d := range snk.DamageByPass() {
		score := d.DbgDropped + d.LinesZeroed
		fam[passFamily(pass)] += score
		total += score
	}
	w := synth.Neutral()
	if total == 0 {
		return w
	}
	scale := func(s int64) float64 { return 1 + 2*float64(s)/float64(total) }
	w.Loops = scale(fam["loops"])
	w.Calls = scale(fam["calls"])
	w.Vars = scale(fam["vars"])
	w.Exprs = scale(fam["exprs"])
	return w
}

// passFamily maps a pass (or step label) to the synth construct family
// its transformations feed on.
func passFamily(pass string) string {
	p := strings.TrimPrefix(pass, "cleanup/")
	switch {
	case strings.Contains(p, "loop"), strings.Contains(p, "unroll"),
		strings.Contains(p, "licm"), p == "tree-ch", p == "gvn":
		return "loops"
	case strings.Contains(p, "inline"), strings.Contains(p, "ipa"):
		return "calls"
	case strings.Contains(p, "dse"), strings.Contains(p, "dce"),
		strings.Contains(p, "sink"), strings.Contains(p, "ter"),
		strings.Contains(p, "coalesce"), strings.Contains(p, "spill"),
		strings.Contains(p, "shrink"), strings.Contains(p, "reg"):
		return "vars"
	default:
		return "exprs"
	}
}

// cellFinding is one attributed finding; fields are exported so the
// resilience journal round-trips the cell result through JSON.
type cellFinding struct {
	Rule   string
	Pass   string
	Config string
	Kind   string
	Detail string
}

// cellResult is one candidate's journaled evaluation. Scored marks a
// completed measurement: quarantined and frontend-failed cells carry no
// score, and folding their zero into the geomean would zero it.
type cellResult struct {
	Name     string
	Findings []cellFinding
	Score    float64
	Scored   bool
}

// runCell evaluates one candidate as a resilience cell: journaled and
// resumable under -journal/-resume, leased under -work-dir, and — when
// the candidate is pathological — retried, timed out, and finally
// quarantined into an explicit bucket entry instead of killing the run.
func (c *campaign) runCell(cand candidate) (*cellResult, error) {
	key := fmt.Sprintf("hunt|%s#%016x|%s",
		cand.Name, resilience.HashBytes(cand.Src), c.fp)
	res, err := resilience.Run(c.ex, context.Background(), key,
		func(context.Context) (*cellResult, error) {
			return c.evaluate(cand)
		})
	if resilience.IsQuarantined(err) {
		return &cellResult{Name: cand.Name, Findings: []cellFinding{{
			Rule: "quarantine", Pass: "cell", Config: c.plabel,
			Kind:   difftest.KindQuarantine,
			Detail: "candidate quarantined: " + err.Error(),
		}}}, nil
	}
	return res, err
}

// evaluate runs both detection channels over one candidate and scores
// it. Channel one is the differential oracle across the full matrix;
// channel two is the verify-each build under the primary config, which
// attributes every analyzer violation to the exact pass (and is where a
// planted bug is injected). Findings are sorted so the journaled value
// is canonical.
func (c *campaign) evaluate(cand candidate) (*cellResult, error) {
	res := &cellResult{Name: cand.Name}
	ir0, info, err := frontendIR(cand.Name+".mc", cand.Src)
	if err != nil {
		// A generator bug degrades into a bucket entry, not a dead run.
		res.Findings = []cellFinding{{
			Rule: "frontend", Pass: "frontend", Config: c.plabel,
			Kind: "harness", Detail: err.Error(),
		}}
		return res, nil
	}

	// Channel one: the differential oracle.
	o := difftest.NewOracle(c.configs)
	oracleFindings, err := o.CheckSubject(difftest.SourceSubject(cand.Name, cand.Src))
	if err != nil {
		return nil, err
	}
	failing := map[string]bool{}
	for _, f := range oracleFindings {
		failing[f.Kind+"\x00"+oracleRule(f)+"\x00"+f.Config] = true
	}
	for _, f := range oracleFindings {
		res.Findings = append(res.Findings, c.attributeOracle(f, failing))
	}

	// Channel two: verify-each under the primary config, planted bug
	// included. Violations carry exact step attribution.
	rep := pipeline.BuildVerifiedTamper(ir0, c.primary, false, c.plantHook())
	for _, v := range rep.InitialViolations {
		res.Findings = append(res.Findings, cellFinding{
			Rule: string(v.Rule), Pass: "frontend", Config: c.plabel,
			Kind: "verify", Detail: v.String(),
		})
	}
	for _, st := range rep.Steps {
		if st.VerifyErr != "" {
			res.Findings = append(res.Findings, cellFinding{
				Rule: "ir-verify", Pass: st.Label, Config: c.plabel,
				Kind: "verify", Detail: st.VerifyErr,
			})
		}
		for _, v := range st.NewViolations {
			res.Findings = append(res.Findings, cellFinding{
				Rule: string(v.Rule), Pass: st.Label, Config: c.plabel,
				Kind: "verify", Detail: v.String(),
			})
		}
	}

	score, err := c.score(rep.Bin.Debug, ir0, info)
	if err != nil {
		return nil, err
	}
	res.Score = score
	res.Scored = true

	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Detail < b.Detail
	})
	return res, nil
}

// plantableLabels probes the primary config's verified pipeline for the
// step labels the tamper hook actually fires with — the ground truth
// for plant-spec validation. Pass listings include back-end stages,
// which are prefix-compiled and never see the hook; a plant aimed there
// would silently never fire and the drill would report a hunt that
// "found nothing" instead of a bad spec.
func plantableLabels(primary pipeline.Config) map[string]bool {
	labels := map[string]bool{}
	src := []byte(synth.Generate(1, synth.DefaultOptions()))
	ir0, _, err := frontendIR("probe.mc", src)
	if err != nil {
		return labels
	}
	pipeline.BuildVerifiedTamper(ir0, primary, false,
		func(label string, _ *ir.Program) { labels[label] = true })
	return labels
}

// plantHook is the verify-each tamper that injects the planted bug
// right after the configured pass; nil when the drill is off.
func (c *campaign) plantHook() func(label string, prog *ir.Program) {
	if c.opts.Plant == "" {
		return nil
	}
	return func(label string, prog *ir.Program) {
		if label == c.plantPass {
			// Plant errors only on unsupported rules, rejected at option
			// parse time.
			staticdbg.Plant(prog, c.plantRule)
		}
	}
}

// score runs the static measurement of the primary build under the
// campaign denominator.
func (c *campaign) score(debug []byte, ir0 *ir.Program, info *sema.Info) (float64, error) {
	table, err := debuginfo.Decode(debug)
	if err != nil {
		return 0, fmt.Errorf("hunt: decode debug section: %w", err)
	}
	stmt := sema.StatementLines(info)
	dr := sema.ComputeDefRanges(info)
	var base *dbgtrace.Trace
	if c.opts.Denom == metrics.DenomSteppedO0 {
		bin0 := pipeline.Build(ir0, pipeline.MustConfig(pipeline.GCC, "O0"))
		sess, err := debugger.NewSession(bin0)
		if err != nil {
			return 0, err
		}
		base, err = sess.TraceMain("main", huntTraceBudget)
		if err != nil {
			return 0, err
		}
	}
	sc, err := metrics.StaticWith(table, c.opts.Denom, stmt, base, dr)
	if err != nil {
		return 0, err
	}
	return sc.Product, nil
}

// attributeOracle maps one oracle finding to its responsible pass. A
// finding under a toggle-disabled config names the toggle directly; a
// finding under a plain config is attributed to the first matrix toggle
// whose disabling makes the same (kind, rule) finding disappear — no
// extra builds, the matrix already ran. When every variant still fails
// (or the matrix has no toggles), the whole level owns it.
func (c *campaign) attributeOracle(f difftest.Finding, failing map[string]bool) cellFinding {
	rule := oracleRule(f)
	pass := "level"
	switch f.Kind {
	case difftest.KindReference:
		// The O0 build diverged from the IR interpreter: a back-end bug by
		// construction (no middle-end pass runs at O0).
		pass = "codegen"
	case difftest.KindQuarantine:
		pass = "cell"
	default:
		if _, toggle, ok := strings.Cut(f.Config, "!"); ok {
			pass = toggle
			if i := strings.IndexByte(pass, '!'); i >= 0 {
				pass = pass[:i]
			}
		} else {
			for _, t := range c.toggles[f.Config] {
				if !failing[f.Kind+"\x00"+rule+"\x00"+f.Config+"!"+t] {
					pass = t
					break
				}
			}
		}
	}
	return cellFinding{Rule: rule, Pass: pass, Config: f.Config, Kind: f.Kind, Detail: f.Detail}
}

// oracleRule derives the bucket rule ID of an oracle finding: invariant
// details carry a "[rule]" prefix from the staticdbg analyzer; dynamic
// availability checks and session failures have none and bucket as
// dynamic-avail; the remaining kinds are their own rule class.
func oracleRule(f difftest.Finding) string {
	if f.Kind == difftest.KindInvariant {
		if strings.HasPrefix(f.Detail, "[") {
			if i := strings.IndexByte(f.Detail, ']'); i > 1 {
				return f.Detail[1:i]
			}
		}
		return "dynamic-avail"
	}
	return f.Kind
}

// frontendIR is the shared front-end step: parse, check, lower.
func frontendIR(name string, src []byte) (*ir.Program, *sema.Info, error) {
	info, err := pipeline.Frontend(name, src)
	if err != nil {
		return nil, nil, err
	}
	ir0, err := pipeline.BuildIR(info)
	if err != nil {
		return nil, nil, err
	}
	return ir0, info, nil
}
