package hunt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"debugtuner/internal/difftest"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
)

// reduceNew ddmin-reduces one witness per bucket that is new to this
// campaign (absent from the loaded state), each as its own journaled
// resilience cell so reductions resume and lease like evaluations.
// Quarantine buckets have nothing to reduce — the cell never produced a
// verdict.
func (c *campaign) reduceNew() error {
	for _, key := range c.order {
		if c.stopped() {
			c.interrupted = true
			return nil
		}
		b := c.buckets[key]
		if c.known(key) || b.Rule == "quarantine" || b.Rule == "frontend" {
			continue
		}
		pred := c.reducePredicate(b)
		if pred == nil {
			continue
		}
		rkey := fmt.Sprintf("hunt-reduce|%s#%016x|%s",
			key, resilience.HashBytes(b.WitnessSrc), c.fp)
		src := b.WitnessSrc
		budget := difftest.Budget{MaxProbes: c.opts.ReduceProbes}
		reduced, err := resilience.Run(c.ex, context.Background(), rkey,
			func(context.Context) (string, error) {
				return string(difftest.ReduceWith(src, pred, budget)), nil
			})
		if resilience.IsQuarantined(err) {
			continue // reported as "(not reduced)"
		}
		if err != nil {
			return err
		}
		b.Reduced = []byte(reduced)
	}
	return nil
}

// reducePredicate builds the bucket's failure predicate: the reduced
// source must still front-end and still reproduce a finding of the same
// (rule, pass) class through the channel that found it.
func (c *campaign) reducePredicate(b *bucket) func([]byte) bool {
	if b.Kind == "verify" {
		return c.verifyPredicate(b.Rule, b.Pass)
	}
	cfg, err := difftest.ParseConfigLabel(b.Config)
	if err != nil {
		return nil
	}
	kind, rule := b.Kind, b.Rule
	return func(src []byte) bool {
		o := difftest.NewOracle(nil)
		fs, err := o.DiffOne(difftest.SourceSubject("reduce", src), cfg)
		if err != nil {
			return false
		}
		for _, f := range fs {
			if f.Kind == kind && oracleRule(f) == rule {
				return true
			}
		}
		return false
	}
}

// verifyPredicate reproduces a verify-channel bucket: the candidate's
// verified build (planted tamper included) must still introduce a
// violation of the rule at the same step.
func (c *campaign) verifyPredicate(rule, pass string) func([]byte) bool {
	return func(src []byte) bool {
		ir0, _, err := frontendIR("reduce.mc", src)
		if err != nil {
			return false
		}
		rep := pipeline.BuildVerifiedTamper(ir0, c.primary, false, c.plantHook())
		if pass == "frontend" {
			for _, v := range rep.InitialViolations {
				if string(v.Rule) == rule {
					return true
				}
			}
			return false
		}
		for _, st := range rep.Steps {
			if st.Label != pass {
				continue
			}
			if rule == "ir-verify" && st.VerifyErr != "" {
				return true
			}
			for _, v := range st.NewViolations {
				if string(v.Rule) == rule {
					return true
				}
			}
		}
		return false
	}
}

// commit writes the regression corpus: one fixture per new reduced
// bucket plus the updated trend state. Leased workers never get here
// (Commit off); the single committing process writes state atomically
// (temp + rename), so a kill mid-commit leaves the previous state
// intact rather than a torn file.
func (c *campaign) commit(rep *Report) error {
	if c.opts.CorpusDir != "" {
		for _, key := range c.order {
			b := c.buckets[key]
			if c.known(key) || b.Reduced == nil {
				continue
			}
			if err := writeFixture(c.opts.CorpusDir, b, c.opts.Seed, c.fp, c.opts.Plant); err != nil {
				return err
			}
		}
	}
	if c.opts.StatePath == "" {
		return nil
	}
	run := len(c.state.Runs) + 1
	c.state.Runs = append(c.state.Runs, stateRun{
		Run: run, Candidates: rep.Candidates,
		Findings: rep.Findings, NewBuckets: rep.NewBuckets,
	})
	for _, key := range c.order {
		b := c.buckets[key]
		sb := c.state.Buckets[key]
		if sb == nil {
			sb = &stateBucket{FirstRun: run, Fixture: b.Fixture}
			c.state.Buckets[key] = sb
		}
		sb.Count += b.Count
	}
	return saveState(c.opts.StatePath, c.state)
}

// writeFixture stores one reduced witness with a provenance header. The
// plant line (present when the drill was armed) is what lets a replay
// re-arm the same tamper and check the fixture still reproduces.
func writeFixture(dir string, b *bucket, seed int64, fp, plant string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "// hunt witness: [%s @ %s]\n", b.Rule, b.Pass)
	fmt.Fprintf(&buf, "// campaign: seed %d (fp %s), witness %s under %s\n",
		seed, fp, b.Witness, b.Config)
	if plant != "" {
		fmt.Fprintf(&buf, "// plant: %s\n", plant)
	}
	fmt.Fprintf(&buf, "// finding: %s\n", b.Detail)
	buf.Write(b.Reduced)
	return os.WriteFile(filepath.Join(dir, b.Fixture), buf.Bytes(), 0o644)
}

// stateFile is the cross-run trend state. No timestamps: state content
// must be identical for identical campaign histories.
type stateFile struct {
	V       int                     `json:"v"`
	Runs    []stateRun              `json:"runs"`
	Buckets map[string]*stateBucket `json:"buckets"`
}

type stateRun struct {
	Run        int `json:"run"`
	Candidates int `json:"candidates"`
	Findings   int `json:"findings"`
	NewBuckets int `json:"new_buckets"`
}

type stateBucket struct {
	Count    int    `json:"count"`
	FirstRun int    `json:"first_run"`
	Fixture  string `json:"fixture"`
}

func defaultStatePath(corpusDir string) string {
	return filepath.Join(corpusDir, "hunt-state.json")
}

// loadState reads the trend state; a missing file (or empty path) is an
// empty history, a corrupt file is an error — silently restarting the
// trend would hide corpus history loss.
func loadState(path string) (*stateFile, error) {
	st := &stateFile{V: 1, Buckets: map[string]*stateBucket{}}
	if path == "" {
		return st, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("hunt: state %s: %w", path, err)
	}
	if st.Buckets == nil {
		st.Buckets = map[string]*stateBucket{}
	}
	return st, nil
}

// saveState writes the state atomically.
func saveState(path string, st *stateFile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
