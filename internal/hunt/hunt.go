// Package hunt is the feedback-directed campaign driver on top of the
// correctness layers: it generates candidate programs (plain synthetic
// seeds plus mutations biased toward the construct families whose
// optimization passes historically produced findings), runs each
// candidate through the differential oracle and the verify-each static
// analyzer, buckets every finding by (rule ID, responsible pass),
// auto-reduces one witness per new bucket under a hard probe budget,
// and maintains a committed regression corpus plus a trend report
// across campaign runs.
//
// Robustness contract: every candidate evaluation and every reduction
// is one resilience cell, keyed by candidate fingerprint × source hash
// × campaign fingerprint, so a -journal'd campaign killed mid-run and
// resumed with -resume replays completed cells from disk and produces a
// byte-identical final report; under -work-dir the same cells are
// leased across worker processes (each computed at most once), and the
// supervisor's merge-render yields the same bytes as a single-process
// run. A cancelled Interrupt context stops the campaign between
// candidates: work in flight finishes and checkpoints, the report
// covers everything completed, and Report.Interrupted tells the caller
// to exit with the distinct interrupted code. A pathological candidate
// (stalling build, crashing pass) degrades into a quarantine bucket
// entry via the executor's per-cell timeout and bounded retries instead
// of hanging the campaign.
package hunt

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"debugtuner/internal/difftest"
	"debugtuner/internal/metrics"
	"debugtuner/internal/pipeline"
	"debugtuner/internal/resilience"
	"debugtuner/internal/staticdbg"
	"debugtuner/internal/synth"
	"debugtuner/internal/workerpool"
)

// Options bounds one campaign run.
type Options struct {
	// Seed is the campaign seed; every candidate derives from it.
	Seed int64
	// Epochs × Candidates is the campaign size. Feedback updates between
	// epochs: buckets found in epoch e bias generation in epoch e+1.
	Epochs     int
	Candidates int
	// Spec selects the differential configuration matrix
	// (difftest.ParseMatrix); the first entry is the primary config the
	// verify-each channel and the score run under.
	Spec string
	// Denom selects the line-coverage denominator for the per-candidate
	// static score (metrics.StaticWith).
	Denom metrics.Denom
	// Plant, "rule@pass", arms the planted-bug drill: the named
	// violation is injected into every candidate right after the named
	// pass runs, end-to-end testing that the campaign finds it, buckets
	// it under exactly (rule, pass), and reduces a witness.
	Plant string
	// CorpusDir is the committed regression corpus; "" disables fixture
	// and state writing.
	CorpusDir string
	// StatePath is the cross-run trend state file (default
	// CorpusDir/hunt-state.json; "" with no CorpusDir = stateless).
	StatePath string
	// ReduceProbes caps ddmin predicate evaluations per witness. Wall
	// budgets would make reduction timing-dependent; the probe cap keeps
	// it deterministic.
	ReduceProbes int
	// Commit enables writing fixtures and state. Leased workers run with
	// Commit off — only the supervisor's render pass (or a plain
	// single-process run) commits, so N workers write each fixture once.
	Commit bool
	// Interrupt, when non-nil and cancelled, stops the campaign between
	// candidates (the SIGINT/SIGTERM drain).
	Interrupt context.Context
}

// DefaultOptions is a small campaign that finishes in seconds.
func DefaultOptions() Options {
	return Options{
		Seed: 1, Epochs: 2, Candidates: 8,
		Spec:         "gcc-O2*",
		Denom:        metrics.DenomStmtLines,
		ReduceProbes: 300,
		Commit:       true,
	}
}

// Report is the deterministic outcome of a campaign run.
type Report struct {
	Candidates int // evaluated (excludes interrupted skips)
	Findings   int
	Buckets    int // distinct buckets seen this run
	NewBuckets int // not in the loaded state
	// Interrupted: the campaign stopped early on the Interrupt context;
	// the report covers completed work and nothing was committed.
	Interrupted bool
}

// bucket is one (rule, pass) finding class.
type bucket struct {
	Rule, Pass string
	Count      int
	Witness    string // first candidate name, in campaign order
	WitnessSrc []byte
	Config     string // config label of the first finding
	Kind       string // oracle finding kind, or "verify"
	Detail     string
	Reduced    []byte // nil until reduction ran
	Fixture    string // corpus filename (printed even when not committed)
}

func (b *bucket) key() string { return b.Rule + "@" + b.Pass }

// campaign is the in-flight run state.
type campaign struct {
	opts    Options
	configs []pipeline.Config
	primary pipeline.Config
	plabel  string
	// toggles maps a plain config label to the single-toggle variant
	// names present in the matrix, sorted — the attribution index.
	toggles map[string][]string
	fp      string

	plantRule staticdbg.Rule
	plantPass string

	// ex executes every cell. It is the installed resilience executor
	// when the command's flags built one (journal, leases, chaos); with
	// none installed the campaign still gets a local default executor, so
	// a panicking candidate quarantines into a bucket entry instead of
	// killing the run — the degrade-not-die contract must not depend on
	// resilience flags.
	ex *resilience.Executor

	state   *stateFile
	base    synth.Weights // calibration weights (damage ledger)
	buckets map[string]*bucket
	order   []string // bucket keys in discovery order
	scores  []float64

	epochLines  []string
	interrupted bool
}

// Run executes the campaign and writes the deterministic report.
func Run(w io.Writer, opts Options) (*Report, error) {
	c, err := newCampaign(opts)
	if err != nil {
		return nil, err
	}

	total, findings := 0, 0
	for e := 0; e < c.opts.Epochs; e++ {
		if c.stopped() {
			c.interrupted = true
			break
		}
		weights := c.weightsFor()
		cands := c.generate(e, weights)
		results, err := workerpool.Map(context.Background(), cands,
			func(_ context.Context, _ int, cand candidate) (*cellResult, error) {
				if c.stopped() {
					return nil, nil
				}
				return c.runCell(cand)
			})
		if err != nil {
			return nil, err
		}
		// Fold in candidate order: bucket witnesses and discovery order
		// must not depend on worker scheduling.
		epochFindings, epochNew := 0, 0
		for i, res := range results {
			if res == nil {
				c.interrupted = true
				continue
			}
			total++
			if res.Scored {
				c.scores = append(c.scores, res.Score)
			}
			for _, f := range res.Findings {
				epochFindings++
				key := f.Rule + "@" + f.Pass
				b := c.buckets[key]
				if b == nil {
					b = &bucket{
						Rule: f.Rule, Pass: f.Pass,
						Witness: res.Name, WitnessSrc: cands[i].Src,
						Config: f.Config, Kind: f.Kind, Detail: f.Detail,
					}
					b.Fixture = difftest.FixtureName(b.Rule, b.Pass)
					c.buckets[key] = b
					c.order = append(c.order, key)
					if !c.known(key) {
						epochNew++
					}
				}
				b.Count++
			}
		}
		findings += epochFindings
		c.epochLines = append(c.epochLines, fmt.Sprintf(
			"epoch %d: %d candidates, %d findings, %d new buckets",
			e, len(results), epochFindings, epochNew))
	}

	if !c.interrupted {
		if err := c.reduceNew(); err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Candidates:  total,
		Findings:    findings,
		Buckets:     len(c.order),
		Interrupted: c.interrupted,
	}
	for _, key := range c.order {
		if !c.known(key) {
			rep.NewBuckets++
		}
	}

	// Render before commit: commit folds this run into the trend state,
	// and the report must describe the run against the state it started
	// from (otherwise every new bucket prints as already known).
	c.render(w, rep)
	if c.opts.Commit && !c.interrupted {
		if err := c.commit(rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func newCampaign(opts Options) (*campaign, error) {
	if opts.Epochs <= 0 || opts.Candidates <= 0 {
		return nil, fmt.Errorf("hunt: campaign needs positive epochs and candidates")
	}
	if opts.Denom == "" {
		opts.Denom = metrics.DenomStmtLines
	}
	if _, err := metrics.ParseDenom(string(opts.Denom)); err != nil {
		return nil, err
	}
	if opts.Spec == "" {
		opts.Spec = "gcc-O2*"
	}
	configs, err := difftest.ParseMatrix(opts.Spec)
	if err != nil {
		return nil, err
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("hunt: empty configuration matrix")
	}
	c := &campaign{
		opts:    opts,
		configs: configs,
		primary: configs[0],
		buckets: map[string]*bucket{},
		toggles: map[string][]string{},
	}
	if c.primary.Level == "O0" {
		return nil, fmt.Errorf("hunt: primary config %s is unoptimized; lead the matrix with an optimizing config",
			difftest.ConfigLabel(c.primary))
	}
	c.plabel = difftest.ConfigLabel(c.primary)
	for _, cfg := range configs {
		label := difftest.ConfigLabel(cfg)
		if base, toggle, ok := strings.Cut(label, "!"); ok && !strings.Contains(toggle, "!") {
			c.toggles[base] = append(c.toggles[base], toggle)
		}
	}
	for _, ts := range c.toggles {
		sort.Strings(ts)
	}
	if opts.Plant != "" {
		rule, pass, ok := strings.Cut(opts.Plant, "@")
		if !ok {
			return nil, fmt.Errorf("hunt: bad plant spec %q (want rule@pass)", opts.Plant)
		}
		c.plantRule, err = parseRule(rule)
		if err != nil {
			return nil, err
		}
		if !staticdbg.Plantable(c.plantRule) {
			return nil, fmt.Errorf("hunt: rule %s has no plant recipe", rule)
		}
		if !plantableLabels(c.primary)[pass] {
			return nil, fmt.Errorf("hunt: plant pass %q is not a tamperable middle-end step of %s",
				pass, c.plabel)
		}
		c.plantPass = pass
	}
	c.fp = fmt.Sprintf("%016x", resilience.HashString(
		"hunt", fmt.Sprint(opts.Seed), fmt.Sprint(opts.Epochs),
		fmt.Sprint(opts.Candidates), opts.Spec, string(opts.Denom),
		opts.Plant, fmt.Sprint(opts.ReduceProbes)))

	if opts.StatePath == "" && opts.CorpusDir != "" {
		c.opts.StatePath = defaultStatePath(opts.CorpusDir)
	}
	c.state, err = loadState(c.opts.StatePath)
	if err != nil {
		return nil, err
	}
	c.ex = resilience.Active()
	if c.ex == nil {
		c.ex = resilience.NewExecutor(resilience.DefaultPolicy())
	}
	c.base = calibrate(c.primary)
	return c, nil
}

// stopped reports whether the Interrupt context has been cancelled.
func (c *campaign) stopped() bool {
	return c.opts.Interrupt != nil && c.opts.Interrupt.Err() != nil
}

// known reports whether the bucket key was already in the loaded state.
func (c *campaign) known(key string) bool {
	_, ok := c.state.Buckets[key]
	return ok
}

func parseRule(s string) (staticdbg.Rule, error) {
	for _, r := range staticdbg.Rules() {
		if string(r) == s {
			return r, nil
		}
	}
	return "", fmt.Errorf("hunt: unknown rule %q", s)
}

// render writes the deterministic campaign report: header, per-epoch
// lines, score aggregate, sorted bucket lines, trend, and the verdict.
// Nothing time- or host-dependent is printed.
func (c *campaign) render(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "hunt: seed %d, %d epochs x %d candidates, configs %s, denom %s\n",
		c.opts.Seed, c.opts.Epochs, c.opts.Candidates, c.opts.Spec, c.opts.Denom)
	if c.opts.Plant != "" {
		fmt.Fprintf(w, "plant: %s\n", c.opts.Plant)
	}
	for _, l := range c.epochLines {
		fmt.Fprintln(w, l)
	}
	if len(c.scores) > 0 {
		fmt.Fprintf(w, "score geomean: %.4f (%d candidates)\n",
			metrics.GeoMean(c.scores), len(c.scores))
	}
	if len(c.order) > 0 {
		keys := append([]string(nil), c.order...)
		sort.Strings(keys)
		fmt.Fprintf(w, "buckets (%d):\n", len(keys))
		for _, key := range keys {
			b := c.buckets[key]
			line := fmt.Sprintf("  [%s @ %s] count %d, witness %s", b.Rule, b.Pass, b.Count, b.Witness)
			if c.known(key) {
				line += fmt.Sprintf(" (known since run %d)", c.state.Buckets[key].FirstRun)
			} else if b.Reduced != nil {
				line += fmt.Sprintf(", reduced %d -> %d lines, fixture %s",
					countLines(b.WitnessSrc), countLines(b.Reduced), b.Fixture)
			} else {
				line += " (not reduced)"
			}
			fmt.Fprintln(w, line)
		}
	}
	if c.opts.StatePath != "" && !c.interrupted {
		fmt.Fprintln(w, "trend:")
		for _, r := range c.trendRuns(rep) {
			fmt.Fprintf(w, "  run %d: %d candidates, %d findings, %d new buckets\n",
				r.Run, r.Candidates, r.Findings, r.NewBuckets)
		}
	}
	switch {
	case c.interrupted:
		fmt.Fprintf(w, "HUNT INTERRUPTED: %d candidates evaluated, %d findings; resume to complete\n",
			rep.Candidates, rep.Findings)
	case rep.Findings > 0:
		fmt.Fprintf(w, "HUNT FINDINGS(%d) in %d buckets (%d new)\n",
			rep.Findings, rep.Buckets, rep.NewBuckets)
	default:
		fmt.Fprintln(w, "HUNT CLEAN")
	}
}

// trendRuns is the state's run history plus the current run.
func (c *campaign) trendRuns(rep *Report) []stateRun {
	runs := append([]stateRun(nil), c.state.Runs...)
	return append(runs, stateRun{
		Run:        len(c.state.Runs) + 1,
		Candidates: rep.Candidates,
		Findings:   rep.Findings,
		NewBuckets: rep.NewBuckets,
	})
}

func countLines(src []byte) int {
	return strings.Count(strings.TrimRight(string(src), "\n"), "\n") + 1
}
