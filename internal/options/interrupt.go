package options

import (
	"context"
	"errors"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the exit code for a run stopped by SIGINT/SIGTERM
// after flushing its journal: distinct from failure (1), usage (2), and
// quarantine gaps (3) so CI and the work supervisor can tell "killed
// but resumable" apart from "broken".
const ExitInterrupted = 4

// ErrInterrupted is the sentinel an experiment returns when it stopped
// early on the interrupt context. The command maps it to
// ExitInterrupted after flushing the runtime, so the journal written so
// far is complete and a -resume run picks up where the signal landed.
var ErrInterrupted = errors.New("interrupted by signal")

// IsInterrupted reports whether err means "stopped by signal, journal
// intact" — either the sentinel itself or the context cancellation that
// the worker pool surfaces when the interrupt context fires mid-map.
func IsInterrupted(err error) bool {
	return errors.Is(err, ErrInterrupted) || errors.Is(err, context.Canceled)
}

// NotifyInterrupt returns a context cancelled by the first SIGINT or
// SIGTERM. After the first signal the handler uninstalls itself, so a
// second signal kills the process the default way — the escape hatch
// when a graceful stop hangs.
func NotifyInterrupt() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		signal.Stop(ch)
		cancel()
	}()
	return ctx
}
