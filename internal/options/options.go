// Package options is the one place the shared runtime flags of the
// DebugTuner commands live: the worker-pool size, telemetry outputs,
// the persistent evalcache directory, and the resilience layer's
// retry/timeout/chaos/journal knobs. Before this package each command
// re-declared its own copies and they drifted (debugtuner had no
// -cachedir, minicc no -j); now every command calls Install on its flag
// set and Build once flags are parsed, and the flags cannot diverge.
package options

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"debugtuner/internal/evalcache"
	"debugtuner/internal/resilience"
	"debugtuner/internal/telemetry"
	"debugtuner/internal/workerpool"
)

// Flags holds the parsed-flag storage registered by Install. Values
// are meaningful only after the owning flag set's Parse.
type Flags struct {
	Jobs        *int
	Trace       *string
	Metrics     *string
	Journal     *string
	Resume      *string
	Chaos       *string
	CacheDir    *string
	CellTimeout *time.Duration
	Retries     *int
	WorkDir     *string
	WorkID      *string
	LeaseTTL    *time.Duration
}

// Install registers the shared flags on fs and returns their storage.
func Install(fs *flag.FlagSet) *Flags {
	return &Flags{
		Jobs: fs.Int("j", 0,
			"worker-pool size for the evaluation engine (0 = GOMAXPROCS)"),
		Trace: fs.String("trace", "",
			"write spans and counters as Chrome trace-event JSON to this file"),
		Metrics: fs.String("metrics", "",
			"write a JSON telemetry summary (counters, maxima, damage ledger) to this file"),
		Journal: fs.String("journal", "",
			"resilience: write a fresh checkpoint journal (JSONL) to this file"),
		Resume: fs.String("resume", "",
			"resilience: resume from an existing checkpoint journal, skipping completed cells"),
		Chaos: fs.String("chaos", "",
			"resilience: deterministic fault injection, e.g. rate=0.05,seed=7"),
		CacheDir: fs.String("cachedir", "",
			"persistent evalcache directory (default $DEBUGTUNER_CACHE_DIR, "+
				"else the user cache dir); \"off\" disables persistence"),
		CellTimeout: fs.Duration("cell-timeout", 0,
			"resilience: per-cell deadline (0 = none); overruns count as transient failures"),
		Retries: fs.Int("retries", 2,
			"resilience: extra attempts per cell after the first"),
		WorkDir: fs.String("work-dir", "",
			"resilience: shared multi-process journal directory; cells are "+
				"leased from it and results checkpoint to a per-worker journal"),
		WorkID: fs.String("work-id", "",
			"resilience: this worker's id within -work-dir (default: derived from the pid)"),
		LeaseTTL: fs.Duration("lease-ttl", resilience.DefaultLeaseTTL,
			"resilience: lease deadline for -work-dir cells; an expired lease "+
				"may be re-leased by any worker"),
	}
}

// UsageError marks a Build failure the command should report as bad
// usage (exit 2) rather than an environment failure (exit 1).
type UsageError struct{ msg string }

func (e *UsageError) Error() string { return e.msg }

// IsUsage reports whether err is a usage error.
func IsUsage(err error) bool {
	_, ok := err.(*UsageError)
	return ok
}

// Runtime is the shared state Build installed; Finish tears it down.
type Runtime struct {
	// Executor is the installed resilience executor, nil when no
	// resilience flag asked for one (the byte-identical fault-free path).
	Executor *resilience.Executor
	// Sink is the telemetry sink, non-nil when -trace or -metrics was
	// given (commands may enable one themselves for other reasons).
	Sink *telemetry.Sink

	trace, metrics string
}

// Build applies the parsed flags to the process-wide runtime: the
// persistent evalcache, the worker pool, the resilience executor, and
// telemetry. Diagnostics that are warnings (an unusable cache
// directory) go to stderr; real failures return an error, marked
// UsageError when the flags themselves are wrong.
func (f *Flags) Build() (*Runtime, error) {
	if *f.Journal != "" && *f.Resume != "" {
		return nil, &UsageError{"-journal and -resume are mutually exclusive"}
	}
	if *f.WorkDir != "" && (*f.Journal != "" || *f.Resume != "") {
		return nil, &UsageError{"-work-dir is mutually exclusive with -journal and -resume"}
	}
	if *f.WorkID != "" && *f.WorkDir == "" {
		return nil, &UsageError{"-work-id requires -work-dir"}
	}
	// The persistent measurement store makes warm reruns skip the
	// build+trace work entirely. Results are keyed by tool hash × store
	// format × subject source hash × config fingerprint, so stdout is
	// byte-identical with a cold cache, a warm cache, or none at all.
	if *f.CacheDir != "off" {
		d, err := evalcache.OpenDisk(*f.CacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cachedir: %v (persistence disabled)\n", err)
		} else {
			evalcache.SetDefaultDisk(d)
		}
	}
	workerpool.SetWorkers(*f.Jobs)

	rt := &Runtime{trace: *f.Trace, metrics: *f.Metrics}
	// The resilience layer stays uninstalled (nil executor = direct call,
	// byte-identical fault-free path) unless a resilience flag asks for it.
	if *f.Chaos != "" || *f.Journal != "" || *f.Resume != "" ||
		*f.WorkDir != "" || *f.CellTimeout > 0 || *f.Retries != 2 {
		pol := resilience.DefaultPolicy()
		pol.Retries = *f.Retries
		pol.CellTimeout = *f.CellTimeout
		ex := resilience.NewExecutor(pol)
		if *f.Chaos != "" {
			c, err := resilience.ParseChaos(*f.Chaos)
			if err != nil {
				return nil, &UsageError{fmt.Sprintf("-chaos: %v", err)}
			}
			ex.Chaos = c
			ex.Policy.Seed = c.Seed
		}
		switch {
		case *f.WorkDir != "":
			wj, err := resilience.OpenWork(*f.WorkDir, *f.WorkID, *f.LeaseTTL)
			if err != nil {
				return nil, fmt.Errorf("-work-dir: %v", err)
			}
			ex.Journal = wj
		case *f.Journal != "":
			j, err := resilience.CreateJournal(*f.Journal)
			if err != nil {
				return nil, fmt.Errorf("-journal: %v", err)
			}
			ex.Journal = j
		case *f.Resume != "":
			j, err := resilience.ResumeJournal(*f.Resume)
			if err != nil {
				return nil, fmt.Errorf("-resume: %v", err)
			}
			if j.Torn() {
				fmt.Fprintln(os.Stderr, "resume: discarded torn final journal record")
			}
			ex.Journal = j
		}
		resilience.Install(ex)
		rt.Executor = ex
	}
	if *f.Trace != "" || *f.Metrics != "" {
		rt.Sink = telemetry.Enable()
	}
	return rt, nil
}

// Finish flushes the runtime at the end of a command: the quarantine
// gap report and journal (when an executor was installed) and the
// telemetry exports. It returns the command's exit code — 3 when the
// run completed but quarantined cells — or an error for IO failures
// (exit 1 at the caller).
func (rt *Runtime) Finish(w io.Writer) (int, error) {
	code := 0
	if rt.Executor != nil {
		rt.Executor.WriteReport(w)
		if rt.Executor.Journal != nil {
			if err := rt.Executor.Journal.Close(); err != nil {
				return 1, fmt.Errorf("journal close: %v", err)
			}
		}
		if len(rt.Executor.Quarantined()) > 0 {
			code = 3
		}
	}
	if rt.Sink != nil {
		if err := telemetry.ExportFiles(rt.Sink, rt.trace, rt.metrics); err != nil {
			return 1, fmt.Errorf("telemetry export: %v", err)
		}
	}
	return code, nil
}
