// Package dbgtrace defines debug-session traces: which source lines a
// debugger stopped on and which variables were readable at each stop.
// Traces are the raw material of every debuggability metric, and the
// package also implements the paper's greedy set-cover input pruning
// (§IV): inputs that step no new lines are discarded.
package dbgtrace

import (
	"encoding/json"
	"sort"
)

// Trace is the outcome of one debug session (one binary, any number of
// inputs run back to back, temporary breakpoints on every line).
type Trace struct {
	// Stepped is the set of lines the debugger stopped on.
	Stepped map[int]bool
	// Avail maps each stepped line to the set of variables (symbol IDs)
	// that were visible with a value at the stop.
	Avail map[int]map[int]bool
	// Steppable is the number of distinct lines in the binary's line
	// table (breakpoint-eligible lines).
	Steppable int
}

// NewTrace allocates an empty trace.
func NewTrace() *Trace {
	return &Trace{Stepped: map[int]bool{}, Avail: map[int]map[int]bool{}}
}

// Record adds one stop observation.
func (t *Trace) Record(line int, vars []int) {
	t.Stepped[line] = true
	set := t.Avail[line]
	if set == nil {
		set = map[int]bool{}
		t.Avail[line] = set
	}
	for _, v := range vars {
		set[v] = true
	}
}

// Merge unions another trace into this one.
func (t *Trace) Merge(o *Trace) {
	for l := range o.Stepped {
		t.Stepped[l] = true
	}
	for l, vars := range o.Avail {
		set := t.Avail[l]
		if set == nil {
			set = map[int]bool{}
			t.Avail[l] = set
		}
		for v := range vars {
			set[v] = true
		}
	}
	if o.Steppable > t.Steppable {
		t.Steppable = o.Steppable
	}
}

// Lines returns the stepped lines in ascending order.
func (t *Trace) Lines() []int {
	out := make([]int, 0, len(t.Stepped))
	for l := range t.Stepped {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// jsonTrace is the export schema (one object per stepped line), matching
// the paper's JSON trace export for offline comparison.
type jsonTrace struct {
	Steppable int            `json:"steppable_lines"`
	Lines     []jsonLineStop `json:"lines"`
}

type jsonLineStop struct {
	Line int   `json:"line"`
	Vars []int `json:"vars"`
}

// MarshalJSON exports the trace deterministically.
func (t *Trace) MarshalJSON() ([]byte, error) {
	out := jsonTrace{Steppable: t.Steppable}
	for _, l := range t.Lines() {
		var vars []int
		for v := range t.Avail[l] {
			vars = append(vars, v)
		}
		sort.Ints(vars)
		out.Lines = append(out.Lines, jsonLineStop{Line: l, Vars: vars})
	}
	return json.Marshal(out)
}

// UnmarshalJSON imports an exported trace.
func (t *Trace) UnmarshalJSON(data []byte) error {
	var in jsonTrace
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	t.Stepped = map[int]bool{}
	t.Avail = map[int]map[int]bool{}
	t.Steppable = in.Steppable
	for _, ls := range in.Lines {
		t.Record(ls.Line, ls.Vars)
	}
	return nil
}

// CoverPrune implements the paper's fast set-cover approximation over
// per-input traces: inputs are processed in order of most unique stepped
// lines first, and an input that steps no line beyond those already
// covered is discarded. It returns the indices of the retained inputs,
// in processing order.
func CoverPrune(perInput []*Trace) []int {
	order := make([]int, len(perInput))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(perInput[order[a]].Stepped) > len(perInput[order[b]].Stepped)
	})
	covered := map[int]bool{}
	var kept []int
	for _, idx := range order {
		fresh := false
		for l := range perInput[idx].Stepped {
			if !covered[l] {
				fresh = true
				break
			}
		}
		if !fresh && len(covered) > 0 {
			continue
		}
		for l := range perInput[idx].Stepped {
			covered[l] = true
		}
		kept = append(kept, idx)
	}
	return kept
}
