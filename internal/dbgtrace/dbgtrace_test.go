package dbgtrace

import (
	"encoding/json"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRecordAndMerge(t *testing.T) {
	a := NewTrace()
	a.Record(10, []int{1, 2})
	a.Record(10, []int{3})
	a.Record(20, nil)
	b := NewTrace()
	b.Record(20, []int{4})
	b.Record(30, []int{5})
	b.Steppable = 50

	a.Merge(b)
	if !reflect.DeepEqual(a.Lines(), []int{10, 20, 30}) {
		t.Fatalf("lines = %v", a.Lines())
	}
	if !a.Avail[10][1] || !a.Avail[10][3] || !a.Avail[20][4] {
		t.Fatal("availability union broken")
	}
	if a.Steppable != 50 {
		t.Fatalf("steppable = %d", a.Steppable)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.Steppable = 7
	tr.Record(3, []int{9, 1})
	tr.Record(1, []int{2})
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Lines(), back.Lines()) ||
		back.Steppable != 7 || !back.Avail[3][9] {
		t.Fatalf("round trip: %s", data)
	}
	// Deterministic output.
	data2, _ := json.Marshal(tr)
	if string(data) != string(data2) {
		t.Fatal("nondeterministic JSON")
	}
}

func TestCoverPruneBasic(t *testing.T) {
	mk := func(lines ...int) *Trace {
		tr := NewTrace()
		for _, l := range lines {
			tr.Record(l, nil)
		}
		return tr
	}
	traces := []*Trace{
		mk(1, 2),       // 0
		mk(1, 2, 3, 4), // 1: superset of 0
		mk(5),          // 2: new line
		mk(2, 3),       // 3: fully covered by 1
	}
	kept := CoverPrune(traces)
	want := map[int]bool{1: true, 2: true}
	if len(kept) != len(want) {
		t.Fatalf("kept %v", kept)
	}
	for _, k := range kept {
		if !want[k] {
			t.Fatalf("kept unexpected input %d", k)
		}
	}
}

// TestCoverPruneProperty (property): pruning preserves the union of
// stepped lines and never keeps a fully-redundant input after the first.
func TestCoverPruneProperty(t *testing.T) {
	check := func(raw [][]uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var traces []*Trace
		union := map[int]bool{}
		for _, lines := range raw {
			tr := NewTrace()
			for _, l := range lines {
				tr.Record(int(l%31), nil)
				union[int(l%31)] = true
			}
			traces = append(traces, tr)
		}
		kept := CoverPrune(traces)
		covered := map[int]bool{}
		for _, k := range kept {
			for l := range traces[k].Stepped {
				covered[l] = true
			}
		}
		return reflect.DeepEqual(union, covered) ||
			(len(union) == 0 && len(covered) == 0)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
